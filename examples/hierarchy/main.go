// Hierarchy: the paper's §VI future work, demonstrated on a daisy tree.
// OCA first finds the fine structure (petals and cores); building the
// community hierarchy then groups them back into whole flowers — the
// quotient level discovers which communities belong to the same daisy.
//
//	go run ./examples/hierarchy [-flowers 6] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	flowers := flag.Int("flowers", 6, "number of daisies in the tree")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	d := repro.DefaultDaisyParams()
	bench, err := repro.GenerateDaisyTree(repro.DaisyTreeParams{
		Daisy: d, K: *flowers - 1, Gamma: 0.08, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := bench.Graph
	fmt.Printf("daisy tree: %d flowers, %d nodes, %d edges, %d planted communities\n",
		bench.Flowers, g.N(), g.M(), bench.Communities.Len())

	// Level 0: fine-grained communities found by OCA.
	res, err := repro.OCA(g, repro.OCAOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OCA base cover: %d communities (Θ vs planted petals/cores: %.3f)\n\n",
		res.Cover.Len(), repro.Theta(bench.Communities, res.Cover))

	levels, err := repro.BuildHierarchy(g, res.Cover, repro.HierarchyOptions{
		MinWeight: 2,
		Core:      repro.OCAOptions{Seed: *seed + 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for the coarse level: each flower's full node set.
	flowerCover := &repro.Cover{}
	for f := 0; f < bench.Flowers; f++ {
		members := make([]int32, d.N)
		for i := range members {
			members[i] = int32(f*d.N + i)
		}
		flowerCover.Communities = append(flowerCover.Communities, repro.NewCommunity(members))
	}

	for li, level := range levels {
		fmt.Printf("level %d: %d communities", li, level.Cover.Len())
		if li > 0 {
			fmt.Printf("  (Θ vs whole flowers: %.3f)", repro.Theta(flowerCover, level.Cover))
		}
		fmt.Println()
		for ci, c := range level.Cover.Communities {
			if ci >= 10 {
				fmt.Printf("  ... %d more\n", level.Cover.Len()-ci)
				break
			}
			// Describe each community by which flowers it draws from.
			counts := map[int]int{}
			for _, v := range c {
				counts[int(v)/d.N]++
			}
			fmt.Printf("  community %-3d size=%-5d flowers=%v\n", ci, len(c), counts)
		}
	}
	fmt.Println("\nExpected: the coarse level groups petals and cores into whole")
	fmt.Println("daisies; flowers joined by strong petal attachments may merge,")
	fmt.Println("since the attachment edges are exactly the relations the quotient")
	fmt.Println("graph encodes.")
}
