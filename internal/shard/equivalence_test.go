package shard

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/spectral"
)

func mergedGlobalCover(t testing.TB, r *Router) *cover.Cover {
	t.Helper()
	views, err := r.Views()
	if err != nil {
		t.Fatal(err)
	}
	return MergeCovers(views)
}

// TestShardedEquivalence is the acceptance gate for the sharded serving
// path: on a well-separated LFR benchmark (where OCA recovers the
// planted structure exactly, so any gap is partitioning loss, not
// algorithmic noise) the union of the K=4 per-shard covers must match
// an unsharded cold OCA run with overlapping NMI ≥ 0.99, per-node
// batch lookups must agree with the merged cover, and seeded searches
// over shard halos must find the same communities as over the full
// graph.
func TestShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OCA-run equivalence test")
	}
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()

	// Pin c from the full graph for both paths, so sharded and cold
	// searches use the same inner-product parameter.
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}
	opt := core.Options{Seed: 11, C: c}

	cold, err := core.Run(g, opt)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	const k = 4
	r, err := NewRouter(g, k, Config{OCA: opt})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	sharded := mergedGlobalCover(t, r)
	nmi := metrics.NMI(sharded, cold.Cover, n)
	if nmi < 0.99 {
		t.Errorf("NMI(sharded, cold) = %.4f, want ≥ 0.99 (sharded %d communities, cold %d)",
			nmi, sharded.Len(), cold.Cover.Len())
	}
	// Guard against a trivially degenerate pair: both paths must also
	// recover the planted structure.
	if truthNMI := metrics.NMI(cold.Cover, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("cold run vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}
	if truthNMI := metrics.NMI(sharded, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("sharded cover vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}

	// Batch-lookup equivalence: every node's owning-shard membership
	// answer must be exactly its memberships in that shard's served
	// cover (internal consistency of the fan-out path), and every node
	// covered by the cold run must be covered through the router too.
	uncovered := 0
	for v := int32(0); int(v) < n; v++ {
		view, local, ok, err := r.ViewFor(v)
		if err != nil || !ok {
			t.Fatalf("ViewFor(%d): ok=%v err=%v", v, ok, err)
		}
		cis := view.Snap.Index.Communities(local)
		for _, ci := range cis {
			if !view.Snap.Cover.Communities[ci].Contains(local) {
				t.Fatalf("node %d: shard %d community %d does not contain it", v, view.Shard, ci)
			}
		}
		if len(cis) == 0 {
			uncovered++
		}
	}
	coldUncovered := n - cold.Cover.Stats(n).CoveredNodes
	if uncovered > coldUncovered+n/50 {
		t.Errorf("sharded lookups leave %d nodes uncovered, cold leaves %d", uncovered, coldUncovered)
	}

	// Search equivalence: a seeded search over the owning shard's halo
	// graph must find (essentially) the same community as over the full
	// graph. On this benchmark both recover the seed's planted
	// community, so demand high Jaccard.
	sOpt := core.Options{Seed: 11, C: c}
	for _, seed := range []int32{3, 77, 140, 201} {
		full, _ := core.FindCommunity(g, seed, c, rand.New(rand.NewSource(5)), sOpt)
		view, local, ok, _ := r.ViewFor(seed)
		if !ok {
			t.Fatalf("ViewFor(%d) not ok", seed)
		}
		shardRes, _ := core.FindCommunity(view.Snap.Graph, local, c, rand.New(rand.NewSource(5)), sOpt)
		global := cover.NewCommunity(view.Members(shardRes))
		if rho := metrics.Rho(cover.NewCommunity(full), global); rho < 0.8 {
			t.Errorf("seed %d: sharded search ρ=%.3f vs full-graph search (sizes %d vs %d)",
				seed, rho, len(shardRes), len(full))
		}
	}
}
