package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
)

func randomCover(seed int64, k, maxNode int) *cover.Cover {
	rng := rand.New(rand.NewSource(seed))
	cs := make([]cover.Community, k)
	for i := range cs {
		members := make([]int32, 10+rng.Intn(40))
		for j := range members {
			members[j] = int32(rng.Intn(maxNode))
		}
		cs[i] = cover.NewCommunity(members)
	}
	return cover.NewCover(cs)
}

// BenchmarkTheta measures eq. V.2 on covers of 100 communities.
func BenchmarkTheta(b *testing.B) {
	ref := randomCover(1, 100, 2000)
	obs := randomCover(2, 100, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Theta(ref, obs)
	}
}

// BenchmarkOmega measures the pairwise agreement index.
func BenchmarkOmega(b *testing.B) {
	ref := randomCover(1, 40, 500)
	obs := randomCover(2, 40, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OmegaIndex(ref, obs, 500)
	}
}
