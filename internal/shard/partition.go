// The deterministic modulo-K partition and the ghost-halo split (see
// doc.go for the package overview).

package shard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Partition is the deterministic node→shard assignment: node v belongs
// to shard v mod K. The zero value is invalid; use NewPartition.
type Partition struct {
	k int
}

// NewPartition returns the modulo-K partition. K must be at least 1.
func NewPartition(k int) (Partition, error) {
	if k < 1 {
		return Partition{}, fmt.Errorf("shard: K=%d must be at least 1", k)
	}
	return Partition{k: k}, nil
}

// K returns the number of shards.
func (p Partition) K() int { return p.k }

// Shard returns the shard owning node v. Negative ids are the caller's
// responsibility to reject.
func (p Partition) Shard(v int32) int { return int(v % int32(p.k)) }

// Piece is one shard's slice of a Split graph: the owned nodes plus a
// ghost halo of their cross-shard neighbors, renumbered to a dense
// local id space.
type Piece struct {
	// Shard is this piece's index in [0, K).
	Shard int
	// Graph is the local CSR graph: owned nodes first (ascending global
	// id), then ghosts (ascending global id), with every edge of the
	// original graph whose endpoints both lie in that node set.
	Graph *graph.Graph
	// Locals maps each local node id to its global id.
	Locals []int32
	// Owned counts the owned nodes; locals at or beyond it are ghosts.
	Owned int
}

// Owns reports whether the given local node id is owned by this piece
// (as opposed to being a ghost copy of another shard's node).
func (pc *Piece) Owns(local int32) bool { return int(local) < pc.Owned }

// Split partitions g into k node-disjoint pieces under the modulo-K
// partition, each with its ghost halo. Every global edge appears in the
// piece(s) that own at least one endpoint, and additionally in any
// piece ghosting both endpoints — so each piece's graph is the induced
// subgraph on (owned ∪ ghosts). Split is deterministic: equal inputs
// yield identical pieces.
func Split(g *graph.Graph, k int) ([]Piece, error) {
	p, err := NewPartition(k)
	if err != nil {
		return nil, err
	}
	n := g.N()
	pieces := make([]Piece, k)
	for s := 0; s < k; s++ {
		pieces[s] = splitOne(g, p, s, n)
	}
	return pieces, nil
}

// SplitOne materializes a single shard's piece of the modulo-K split —
// what a shard-server process needs — at O(piece) cost instead of
// building all K pieces the way Split does. SplitOne(g, k, s) equals
// Split(g, k)[s] exactly.
func SplitOne(g *graph.Graph, k, s int) (Piece, error) {
	p, err := NewPartition(k)
	if err != nil {
		return Piece{}, err
	}
	if s < 0 || s >= k {
		return Piece{}, fmt.Errorf("shard: index %d out of range [0, %d)", s, k)
	}
	return splitOne(g, p, s, g.N()), nil
}

func splitOne(g *graph.Graph, p Partition, s, n int) Piece {
	// Owned nodes ascending, then their cross-shard neighbors ascending.
	var locals []int32
	for v := int32(s); int(v) < n; v += int32(p.k) {
		locals = append(locals, v)
	}
	owned := len(locals)
	ghostSet := make(map[int32]struct{})
	for _, u := range locals[:owned] {
		for _, w := range g.Neighbors(u) {
			if p.Shard(w) != s {
				ghostSet[w] = struct{}{}
			}
		}
	}
	ghosts := make([]int32, 0, len(ghostSet))
	for w := range ghostSet {
		ghosts = append(ghosts, w)
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	locals = append(locals, ghosts...)

	index := make(map[int32]int32, len(locals))
	for l, gv := range locals {
		index[gv] = int32(l)
	}

	b := graph.NewBuilder(len(locals))
	// Owned-owned and owned-ghost edges: only the owned side iterates,
	// so each appears exactly once (owned-owned when u < w).
	for l := 0; l < owned; l++ {
		u := locals[l]
		for _, w := range g.Neighbors(u) {
			if p.Shard(w) == s {
				if w > u {
					b.AddEdge(int32(l), index[w])
				}
			} else {
				b.AddEdge(int32(l), index[w])
			}
		}
	}
	// Ghost-ghost edges complete the induced halo: a boundary
	// community's internal edge set is then fully present, so the
	// per-shard OCA scores it exactly as the unsharded run would.
	for _, z := range ghosts {
		for _, w := range g.Neighbors(z) {
			if w > z && p.Shard(w) != s {
				if lw, ok := index[w]; ok {
					b.AddEdge(index[z], lw)
				}
			}
		}
	}
	return Piece{Shard: s, Graph: b.Build(), Locals: locals, Owned: owned}
}
