package cover

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/graph"
)

// DOTOptions configure WriteDOT.
type DOTOptions struct {
	// MaxNodes refuses to render graphs larger than this (Graphviz
	// becomes useless far earlier). Default 2000.
	MaxNodes int
	// IncludeUncovered, when true, renders nodes outside every
	// community (in gray); otherwise they are omitted along with their
	// edges.
	IncludeUncovered bool
}

// palette holds visually distinct fill colors; community i uses
// palette[i % len(palette)].
var palette = []string{
	"#e6194b", "#3cb44b", "#ffe119", "#4363d8", "#f58231",
	"#911eb4", "#46f0f0", "#f032e6", "#bcf60c", "#fabebe",
	"#008080", "#e6beff", "#9a6324", "#fffac8", "#800000",
	"#aaffc3", "#808000", "#ffd8b1", "#000075", "#808080",
}

// WriteDOT renders g with its cover as a Graphviz dot document: nodes
// are filled with their first community's color, nodes in several
// communities are drawn with double periphery (the overlap), and edges
// inside a shared community inherit its color. It is how this
// repository draws the paper's Figure 4 pictures.
func WriteDOT(w io.Writer, g *graph.Graph, cv *Cover, opt DOTOptions) error {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 2000
	}
	if g.N() > opt.MaxNodes {
		return fmt.Errorf("cover: graph has %d nodes, above the DOT limit %d", g.N(), opt.MaxNodes)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph communities {")
	fmt.Fprintln(bw, "  layout=neato; overlap=false; splines=true;")
	fmt.Fprintln(bw, "  node [shape=circle, style=filled, fontsize=8, width=0.25, fixedsize=true];")

	membership := cv.MembershipIndex(g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		ms := membership[v]
		if len(ms) == 0 {
			if !opt.IncludeUncovered {
				continue
			}
			fmt.Fprintf(bw, "  %d [fillcolor=\"#d3d3d3\"];\n", v)
			continue
		}
		color := palette[int(ms[0])%len(palette)]
		if len(ms) > 1 {
			fmt.Fprintf(bw, "  %d [fillcolor=\"%s\", peripheries=2];\n", v, color)
		} else {
			fmt.Fprintf(bw, "  %d [fillcolor=\"%s\"];\n", v, color)
		}
	}
	var err error
	g.Edges(func(u, v int32) bool {
		mu, mv := membership[u], membership[v]
		if (len(mu) == 0 || len(mv) == 0) && !opt.IncludeUncovered {
			return true
		}
		if shared, ok := firstShared(mu, mv); ok {
			_, err = fmt.Fprintf(bw, "  %d -- %d [color=\"%s\"];\n", u, v, palette[int(shared)%len(palette)])
		} else {
			_, err = fmt.Fprintf(bw, "  %d -- %d [color=\"#cccccc\"];\n", u, v)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func firstShared(a, b []int32) (int32, bool) {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return x, true
			}
		}
	}
	return 0, false
}
