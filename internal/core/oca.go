package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cover"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/postprocess"
	"repro/internal/search"
	"repro/internal/spectral"
	"repro/internal/xrand"
)

// Options configure a Run of OCA. The zero value gives the paper's
// defaults (c computed from the spectrum, neighbor inclusion ½, merging
// enabled, orphan assignment disabled).
type Options struct {
	// C overrides the inner-product parameter. When 0 it is computed as
	// -1/λmin via the power method (the paper's choice).
	C float64
	// Spectral tunes the power iterations used when C is computed.
	Spectral spectral.Options
	// Seed drives all randomness (seed choice, initial neighborhoods).
	// Runs with equal seeds produce identical covers, regardless of the
	// number of workers.
	Seed int64
	// NeighborProb is the probability that each neighbor of the seed
	// joins the initial set ("a random neighborhood of the seed").
	// Default 0.5.
	NeighborProb float64
	// MaxSteps caps greedy moves per seed (safety valve; the search
	// terminates on its own because every move strictly increases L).
	// Default 100000. Negative means unlimited.
	MaxSteps int
	// MaxCommunitySize, when positive, stops additions at that size.
	MaxCommunitySize int
	// MinCommunitySize drops smaller local optima from the result.
	// Default 3.
	MinCommunitySize int
	// Seeding selects the seed-choice policy. Default SeedUncovered.
	Seeding SeedStrategy
	// Halting configures when to stop trying new seeds.
	Halting Halting
	// Workers is the number of concurrent seed searches. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// DisableMerge skips the ρ-threshold merge post-processing step.
	DisableMerge bool
	// MergeThreshold is the ρ at or above which two communities merge.
	// Default postprocess.DefaultMergeThreshold.
	MergeThreshold float64
	// AssignOrphans enables the orphan-assignment step: every uncovered
	// node joins the community holding most of its neighbors.
	AssignOrphans bool
	// Orphans configures orphan assignment when enabled.
	Orphans postprocess.OrphanOptions
	// Warm seeds the run with communities assumed already found (for
	// example from a previous cover whose region of the graph did not
	// change). Their members count as covered from the start — steering
	// SeedUncovered and the coverage/patience halting away from known
	// structure — and they join the raw community list ahead of merging.
	// Members must lie in [0, n); the communities are never mutated.
	Warm []cover.Community
	// Restrict, when non-nil, scopes the run to a dirty region: seeds
	// are drawn only from these nodes, the coverage halting criterion
	// measures coverage of this set instead of the whole graph, and the
	// default MaxSeeds budget scales with the region, not with n. The
	// local searches themselves still roam the full graph — restriction
	// is about where exploration starts, not where communities may grow.
	// Nodes must lie in [0, n); duplicates are ignored. An empty non-nil
	// set finds nothing beyond Warm. This is the engine behind
	// incremental refresh: a mutation batch dirties only the mutated
	// endpoints and the members of the communities they touched, so the
	// re-run costs O(|dirty region|) seeds instead of O(n).
	Restrict []int32
}

// SeedStrategy selects where new local searches start. The paper leaves
// seed selection open ("the selection of the initial set" is outside its
// scope); these are the natural policies.
type SeedStrategy int

const (
	// SeedUncovered draws uniformly from nodes not yet in any community,
	// falling back to uniform over all nodes (the default: "randomly
	// distributed initial seeds" with a bias toward unexplored regions).
	SeedUncovered SeedStrategy = iota
	// SeedUniform draws uniformly from all nodes regardless of coverage.
	SeedUniform
	// SeedHighDegree draws the highest-degree uncovered node (ties by
	// id), probing dense regions first.
	SeedHighDegree
)

// Halting is the stopping policy across seeds. The paper deliberately
// leaves this open ("outside the scope of this paper"); Run stops as
// soon as any enabled criterion fires.
type Halting struct {
	// MaxSeeds bounds the number of seeds tried. Default 4·n.
	MaxSeeds int
	// TargetCoverage ∈ (0, 1] stops once that fraction of nodes belongs
	// to some community. Default 1.0.
	TargetCoverage float64
	// Patience stops after this many consecutive seeds whose community
	// is not novel. Default 20.
	Patience int
	// MinNovelFraction is the fraction of a community's members that
	// must be newly covered for the community to count as novel (reset
	// the patience counter). Below it the search is considered to be
	// rediscovering known structure. Default 0.05.
	MinNovelFraction float64
}

func (o Options) withDefaults(n int) Options {
	if o.NeighborProb <= 0 {
		o.NeighborProb = 0.5
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.MinCommunitySize <= 0 {
		o.MinCommunitySize = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MergeThreshold <= 0 {
		o.MergeThreshold = postprocess.DefaultMergeThreshold
	}
	if o.Halting.MaxSeeds <= 0 {
		// The seed budget scales with the region being explored: the
		// whole graph normally, the dirty region on a Restrict run —
		// that proportionality is what makes incremental refresh cost
		// O(|dirty|) instead of O(n).
		domain := n
		if o.Restrict != nil {
			domain = len(o.Restrict)
		}
		o.Halting.MaxSeeds = 4 * domain
		if o.Halting.MaxSeeds < 16 {
			o.Halting.MaxSeeds = 16
		}
	}
	if o.Halting.TargetCoverage <= 0 || o.Halting.TargetCoverage > 1 {
		o.Halting.TargetCoverage = 1
	}
	if o.Halting.Patience <= 0 {
		o.Halting.Patience = 20
	}
	if o.Halting.MinNovelFraction <= 0 {
		o.Halting.MinNovelFraction = 0.05
	}
	return o
}

// Result is the outcome of a Run.
type Result struct {
	// Cover holds the final communities (after post-processing).
	Cover *cover.Cover
	// C is the inner-product parameter actually used.
	C float64
	// SeedsTried counts local searches performed.
	SeedsTried int
	// Steps is the total number of greedy moves across all seeds.
	Steps int64
	// RawCommunities counts local optima accepted before merging.
	RawCommunities int
	// Fresh holds the communities this run itself discovered — Warm
	// excluded, merging not applied. The incremental refresh path reads
	// it to combine fresh discoveries with the warm cover through
	// postprocess.MergeInto instead of re-merging the whole cover.
	Fresh []cover.Community
}

// Run executes OCA on g and returns the overlapping communities.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	opt = opt.withDefaults(n)
	res := &Result{Cover: cover.NewCover(nil)}
	if n == 0 {
		return res, nil
	}

	c := opt.C
	if c == 0 {
		var err error
		c, err = spectral.C(g, opt.Spectral)
		if err != nil {
			return nil, fmt.Errorf("core: computing c: %w", err)
		}
	}
	if c < 0 || c >= 1 {
		return nil, fmt.Errorf("core: c=%g out of range [0, 1)", c)
	}
	res.C = c

	for _, v := range opt.Restrict {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: restrict node %d outside graph range [0, %d)", v, n)
		}
	}
	driver := newSeedDriver(g, opt.Seeding, xrand.New(opt.Seed, -1), opt.Restrict)
	maxDeg := g.MaxDegree()
	states := make([]*search.State, opt.Workers)
	for i := range states {
		states[i] = search.NewState(g, maxDeg)
	}
	sOpts := searchOpts{
		neighborProb: opt.NeighborProb,
		maxSteps:     opt.MaxSteps,
		maxSize:      opt.MaxCommunitySize,
	}

	var raw []cover.Community
	for _, wc := range opt.Warm {
		for _, v := range wc {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("core: warm community member %d outside graph range [0, %d)", v, n)
			}
		}
		driver.markCovered(wc)
		raw = append(raw, wc)
	}
	drought := 0
	seedIndex := int64(0)

	type outcome struct {
		members []int32
		steps   int
	}
	for {
		if driver.coverage() >= opt.Halting.TargetCoverage {
			break
		}
		if res.SeedsTried >= opt.Halting.MaxSeeds || drought >= opt.Halting.Patience {
			break
		}
		batch := opt.Workers
		if rem := opt.Halting.MaxSeeds - res.SeedsTried; batch > rem {
			batch = rem
		}
		seeds := driver.drawSeeds(batch)
		outcomes := make([]outcome, len(seeds))
		var wg sync.WaitGroup
		for i, seed := range seeds {
			wg.Add(1)
			go func(i int, seed int32, stream int64) {
				defer wg.Done()
				st := states[i]
				st.Reset()
				rng := xrand.New(opt.Seed, stream)
				steps, _ := localSearch(g, st, seed, c, rng, sOpts)
				outcomes[i] = outcome{members: st.Members(), steps: steps}
			}(i, seed, seedIndex+int64(i))
		}
		wg.Wait()
		seedIndex += int64(len(seeds))

		for _, oc := range outcomes {
			res.SeedsTried++
			res.Steps += int64(oc.steps)
			if len(oc.members) < opt.MinCommunitySize {
				drought++
				continue
			}
			needNovel := int(opt.Halting.MinNovelFraction * float64(len(oc.members)))
			if needNovel < 1 {
				needNovel = 1
			}
			if driver.markCovered(oc.members) >= needNovel {
				drought = 0
			} else {
				drought++
			}
			raw = append(raw, cover.Community(oc.members))
		}
	}
	res.RawCommunities = len(raw)
	// Copy the slice headers: NewCover takes ownership of raw and
	// SortBySize below reorders its backing array.
	res.Fresh = append([]cover.Community(nil), raw[len(opt.Warm):]...)

	cv := cover.NewCover(raw)
	if !opt.DisableMerge {
		cv = postprocess.Merge(cv, opt.MergeThreshold)
	}
	if opt.AssignOrphans {
		cv = postprocess.AssignOrphans(g, cv, opt.Orphans)
	}
	cv.SortBySize()
	res.Cover = cv
	return res, nil
}

// FindCommunity runs a single local search from the given seed node and
// returns the resulting community and its fitness. It is the building
// block Run parallelizes; exposed for tests, examples and interactive
// exploration of individual seeds.
func FindCommunity(g *graph.Graph, seedNode int32, c float64, rng *rand.Rand, opt Options) (cover.Community, float64) {
	return FindCommunityWith(g, search.NewState(g, g.MaxDegree()), seedNode, c, rng, opt)
}

// FindCommunityWith is FindCommunity with a caller-provided search
// state, which it resets before use. Long-running callers (the ocad
// query service) keep a pool of states and reuse their buffers across
// requests instead of allocating O(maxDegree) queues per search. The
// state must have been built over g with capacity ≥ g.MaxDegree().
func FindCommunityWith(g *graph.Graph, st *search.State, seedNode int32, c float64, rng *rand.Rand, opt Options) (cover.Community, float64) {
	opt = opt.withDefaults(g.N())
	st.Reset()
	_, fit := localSearch(g, st, seedNode, c, rng, searchOpts{
		neighborProb: opt.NeighborProb,
		maxSteps:     opt.MaxSteps,
		maxSize:      opt.MaxCommunitySize,
	})
	return cover.Community(st.Members()), fit
}

// seedDriver tracks covered nodes and samples seeds according to the
// configured SeedStrategy. A non-nil domain scopes it to a dirty
// region: seeds come only from the domain and coverage() measures the
// domain, while the covered set still spans the whole graph (warm
// communities and community spill-over cover nodes anywhere).
type seedDriver struct {
	strategy  SeedStrategy
	rng       *rand.Rand
	covered   *ds.Bitset
	uncovered []int32 // swap-removal pool (SeedUncovered), domain members only
	pos       []int32 // node -> index in uncovered, -1 once covered (or outside the domain)
	byDegree  []int32 // domain sorted by decreasing degree (SeedHighDegree)
	tried     *ds.Bitset
	cursor    int
	n         int

	domain        []int32    // deduplicated domain, nil = all nodes
	inDomain      *ds.Bitset // nil = all nodes
	domainSize    int
	coveredDomain int // covered nodes inside the domain
}

func newSeedDriver(g *graph.Graph, strategy SeedStrategy, rng *rand.Rand, restrict []int32) *seedDriver {
	n := g.N()
	d := &seedDriver{
		strategy: strategy,
		rng:      rng,
		covered:  ds.NewBitset(n),
		pos:      make([]int32, n),
		n:        n,
	}
	if restrict == nil {
		d.domainSize = n
		d.uncovered = make([]int32, n)
		for i := range d.uncovered {
			d.uncovered[i] = int32(i)
			d.pos[i] = int32(i)
		}
	} else {
		for i := range d.pos {
			d.pos[i] = -1
		}
		d.inDomain = ds.NewBitset(n)
		d.domain = make([]int32, 0, len(restrict))
		for _, v := range restrict {
			if !d.inDomain.Add(v) {
				continue // duplicate
			}
			d.pos[v] = int32(len(d.uncovered))
			d.uncovered = append(d.uncovered, v)
			d.domain = append(d.domain, v)
		}
		d.domainSize = len(d.domain)
	}
	if strategy == SeedHighDegree {
		d.tried = ds.NewBitset(n)
		if d.domain != nil {
			d.byDegree = append([]int32(nil), d.domain...)
		} else {
			d.byDegree = make([]int32, n)
			for i := range d.byDegree {
				d.byDegree[i] = int32(i)
			}
		}
		sort.SliceStable(d.byDegree, func(i, j int) bool {
			di, dj := g.Degree(d.byDegree[i]), g.Degree(d.byDegree[j])
			if di != dj {
				return di > dj
			}
			return d.byDegree[i] < d.byDegree[j]
		})
	}
	return d
}

func (d *seedDriver) coverage() float64 {
	if d.domainSize == 0 {
		return 1
	}
	if d.domain == nil {
		return float64(d.covered.Len()) / float64(d.domainSize)
	}
	return float64(d.coveredDomain) / float64(d.domainSize)
}

// uniformSeed draws one seed uniformly from the domain.
func (d *seedDriver) uniformSeed() int32 {
	if d.domain != nil {
		return d.domain[d.rng.Intn(len(d.domain))]
	}
	return int32(d.rng.Intn(d.n))
}

// drawSeeds samples k seeds according to the strategy.
func (d *seedDriver) drawSeeds(k int) []int32 {
	switch d.strategy {
	case SeedUniform:
		seeds := make([]int32, k)
		for i := range seeds {
			seeds[i] = d.uniformSeed()
		}
		return seeds
	case SeedHighDegree:
		seeds := make([]int32, 0, k)
		for len(seeds) < k && d.cursor < len(d.byDegree) {
			v := d.byDegree[d.cursor]
			d.cursor++
			if d.covered.Contains(v) || d.tried.Contains(v) {
				continue
			}
			d.tried.Add(v)
			seeds = append(seeds, v)
		}
		for len(seeds) < k { // pool exhausted: uniform fallback
			seeds = append(seeds, d.uniformSeed())
		}
		return seeds
	}
	// SeedUncovered: without replacement from the uncovered pool while
	// it lasts, then uniformly from the domain.
	seeds := make([]int32, 0, k)
	// Reservoir of drawn uncovered seeds to restore afterwards (drawing
	// without replacement within the batch, but not marking covered).
	drawn := make([]int32, 0, k)
	for len(seeds) < k && len(d.uncovered) > 0 {
		i := d.rng.Intn(len(d.uncovered))
		v := d.uncovered[i]
		d.removeUncovered(v)
		drawn = append(drawn, v)
		seeds = append(seeds, v)
	}
	for _, v := range drawn {
		d.pos[v] = int32(len(d.uncovered))
		d.uncovered = append(d.uncovered, v)
	}
	for len(seeds) < k {
		seeds = append(seeds, d.uniformSeed())
	}
	return seeds
}

// markCovered marks the members covered and returns how many of them
// were previously uncovered.
func (d *seedDriver) markCovered(members []int32) int {
	novel := 0
	for _, v := range members {
		if d.covered.Add(v) {
			novel++
			if d.inDomain != nil && d.inDomain.Contains(v) {
				d.coveredDomain++
			}
			d.removeUncovered(v)
		}
	}
	return novel
}

func (d *seedDriver) removeUncovered(v int32) {
	i := d.pos[v]
	if i < 0 {
		return
	}
	last := int32(len(d.uncovered) - 1)
	moved := d.uncovered[last]
	d.uncovered[i] = moved
	d.pos[moved] = i
	d.uncovered = d.uncovered[:last]
	d.pos[v] = -1
}
