package lfr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func testParams(seed int64) Params {
	return Params{
		N:      500,
		AvgDeg: 12,
		MaxDeg: 40,
		Mu:     0.2,
		MinCom: 20,
		MaxCom: 60,
		Seed:   seed,
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	bench, err := Generate(testParams(1))
	if err != nil {
		t.Fatal(err)
	}
	g := bench.Graph
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	// Average degree within 15% of target (stub dropping causes a small
	// deficit).
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 12*0.85 || avg > 12*1.15 {
		t.Fatalf("avg degree %.2f, want ≈12", avg)
	}
	if g.MaxDegree() > 40 {
		t.Fatalf("max degree %d exceeds cap 40", g.MaxDegree())
	}
	// Community sizes within bounds.
	for i, c := range bench.Communities.Communities {
		if len(c) < 20 || len(c) > 60 {
			t.Fatalf("community %d size %d out of [20, 60]", i, len(c))
		}
	}
	// Every node in exactly one community (no overlap requested).
	for v, ms := range bench.Memberships {
		if len(ms) != 1 {
			t.Fatalf("node %d has %d memberships, want 1", v, len(ms))
		}
	}
	// Total community slots = N.
	total := 0
	for _, c := range bench.Communities.Communities {
		total += len(c)
	}
	if total != 500 {
		t.Fatalf("total slots %d, want 500", total)
	}
}

func TestGenerateMixingParameter(t *testing.T) {
	for _, mu := range []float64{0.1, 0.3, 0.5} {
		p := testParams(7)
		p.Mu = mu
		p.N = 1000
		bench, err := Generate(p)
		if err != nil {
			t.Fatalf("mu=%g: %v", mu, err)
		}
		got := MeasureMixing(bench.Graph, bench.Memberships)
		if math.Abs(got-mu) > 0.07 {
			t.Fatalf("mu=%g realized %.3f, want within ±0.07", mu, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testParams(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testParams(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M() != b.Graph.M() || a.Communities.Len() != b.Communities.Len() {
		t.Fatal("same seed produced different instances")
	}
	equal := true
	a.Graph.Edges(func(u, v int32) bool {
		if !b.Graph.HasEdge(u, v) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Fatal("edge sets differ for identical seeds")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(testParams(1))
	b, _ := Generate(testParams(2))
	same := true
	a.Graph.Edges(func(u, v int32) bool {
		if !b.Graph.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	if same && a.Graph.M() == b.Graph.M() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateOverlap(t *testing.T) {
	p := testParams(11)
	p.N = 600
	p.OverlapNodes = 50
	p.OverlapMemb = 2
	bench, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, ms := range bench.Memberships {
		switch len(ms) {
		case 1:
		case 2:
			over++
		default:
			t.Fatalf("membership count %d, want 1 or 2", len(ms))
		}
	}
	if over != 50 {
		t.Fatalf("overlapping nodes %d, want 50", over)
	}
	// Total slots = N + on·(om−1).
	total := 0
	for _, c := range bench.Communities.Communities {
		total += len(c)
	}
	if total != 650 {
		t.Fatalf("total slots %d, want 650", total)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Params{
		{},
		{N: 100, AvgDeg: 10, MaxDeg: 5, MinCom: 10, MaxCom: 20},   // avg > max
		{N: 100, AvgDeg: 10, MaxDeg: 200, MinCom: 10, MaxCom: 20}, // maxdeg >= n
		{N: 100, AvgDeg: 5, MaxDeg: 20, MinCom: 10, MaxCom: 20, Mu: 1.0},
		{N: 100, AvgDeg: 5, MaxDeg: 20, MinCom: 1, MaxCom: 20},
		{N: 100, AvgDeg: 5, MaxDeg: 20, MinCom: 10, MaxCom: 200},
		{N: 100, AvgDeg: 5, MaxDeg: 20, MinCom: 10, MaxCom: 20, OverlapNodes: -1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

// TestDegreeSequencePowerLaw checks the sampler: mean near target, all
// samples within bounds, heavy tail present.
func TestDegreeSequencePowerLaw(t *testing.T) {
	rng := xrand.New(5, 0)
	xmin := solveXmin(2, 150, 50)
	pl := powerLaw{exp: 2, xmin: xmin, xmax: 150}
	nSamples := 200000
	sum := 0
	countAbove100 := 0
	for i := 0; i < nSamples; i++ {
		k := pl.sample(rng)
		if k < 1 || k > 150 {
			t.Fatalf("sample %d out of [1, 150]", k)
		}
		sum += k
		if k > 100 {
			countAbove100++
		}
	}
	mean := float64(sum) / float64(nSamples)
	if math.Abs(mean-50) > 2 {
		t.Fatalf("sampled mean %.2f, want ≈50", mean)
	}
	if countAbove100 == 0 {
		t.Fatal("no heavy-tail samples above 100")
	}
}

func TestSolveXminMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed, 0)
		exp := 1.5 + rng.Float64()*1.5
		xmax := 50 + rng.Float64()*200
		target := 2 + rng.Float64()*(xmax/3)
		xmin := solveXmin(exp, xmax, target)
		if xmin < 1 || xmin > xmax {
			return false
		}
		lowest := (powerLaw{exp, 1, xmax}).mean()
		if target <= lowest {
			// Unreachable target: solveXmin clamps to the bound.
			return xmin == 1
		}
		got := (powerLaw{exp, xmin, xmax}).mean()
		return math.Abs(got-target) < 0.05*target+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawMeanClosedForms(t *testing.T) {
	// Monte Carlo check of the three mean() branches.
	for _, exp := range []float64{1, 2, 2.5} {
		pl := powerLaw{exp: exp, xmin: 5, xmax: 100}
		rng := xrand.New(3, int64(exp*10))
		sum := 0.0
		n := 300000
		for i := 0; i < n; i++ {
			sum += float64(pl.sample(rng))
		}
		mc := sum / float64(n)
		want := pl.mean()
		if math.Abs(mc-want) > 0.02*want+0.5 {
			t.Fatalf("exp=%g: MC mean %.2f vs closed form %.2f", exp, mc, want)
		}
	}
}

// TestInternalDegreeFeasibility: every node's per-membership internal
// degree must be strictly below its community's size.
func TestInternalDegreeFeasibility(t *testing.T) {
	p := testParams(13)
	bench, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Realized internal degree per node ≤ community size − 1 is implied
	// by simple-graph structure; here we check the planted community
	// actually contains enough of each member's edges (no member is
	// isolated inside its community for µ=0.2).
	g := bench.Graph
	isolatedInside := 0
	for v := 0; v < g.N(); v++ {
		ms := bench.Memberships[v]
		internal := 0
		for _, w := range g.Neighbors(int32(v)) {
			if share(ms, bench.Memberships[w]) {
				internal++
			}
		}
		if internal == 0 && g.Degree(int32(v)) > 0 {
			isolatedInside++
		}
	}
	if frac := float64(isolatedInside) / float64(g.N()); frac > 0.02 {
		t.Fatalf("%.1f%% of nodes have no intra-community edge at µ=0.2", 100*frac)
	}
}

func TestFig5ScaleParams(t *testing.T) {
	// The Fig. 5 workload uses large communities (500–700) and high
	// degree (50/150). Verify generation succeeds at the smallest sweep
	// size used by the scaled-down default experiment.
	if testing.Short() {
		t.Skip("large generation in -short mode")
	}
	p := Params{
		N: 2000, AvgDeg: 50, MaxDeg: 150,
		Mu: 0.2, MinCom: 500, MaxCom: 700, Seed: 4,
	}
	bench, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(bench.Graph.M()) / float64(bench.Graph.N())
	if avg < 40 || avg > 60 {
		t.Fatalf("avg degree %.1f, want ≈50", avg)
	}
}

func TestGenerateOverlapOmThree(t *testing.T) {
	p := testParams(17)
	p.N = 900
	p.OverlapNodes = 30
	p.OverlapMemb = 3
	bench, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	three := 0
	for _, ms := range bench.Memberships {
		switch len(ms) {
		case 1:
		case 3:
			three++
			// Memberships must be distinct communities.
			seen := map[int32]bool{}
			for _, c := range ms {
				if seen[c] {
					t.Fatalf("duplicate membership %v", ms)
				}
				seen[c] = true
			}
		default:
			t.Fatalf("membership count %d, want 1 or 3", len(ms))
		}
	}
	if three != 30 {
		t.Fatalf("overlap nodes %d, want 30", three)
	}
	total := 0
	for _, c := range bench.Communities.Communities {
		total += len(c)
	}
	if total != 900+30*2 {
		t.Fatalf("total slots %d, want %d", total, 900+30*2)
	}
}

func TestRelaxedPlacementPreservesDegrees(t *testing.T) {
	// The Fig. 6 stress configuration exercises relaxed placement; the
	// realized graph must still be close to the requested density.
	if testing.Short() {
		t.Skip("heavy generation")
	}
	b, err := Generate(Params{
		N: 3000, AvgDeg: 50, MaxDeg: 150, Mu: 0.2,
		MinCom: 50, MaxCom: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(b.Graph.M()) / float64(b.Graph.N())
	if avg < 40 || avg > 60 {
		t.Fatalf("avg degree %.1f, want ≈50", avg)
	}
}
