package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func always(error) bool { return false }
func transientOnly(err error) bool {
	return errors.Is(err, errTransient)
}

// TestRetrySucceedsAfterTransientFailures: the op runs up to
// MaxAttempts times and the retry counter reflects launched retries.
func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}, nil)
	calls := 0
	err := r.Do(context.Background(), transientOnly, func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", r.Retries())
	}
}

// TestRetryStopsAtAttemptCap: a persistently failing op returns its
// last error after exactly MaxAttempts tries.
func TestRetryStopsAtAttemptCap(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 4, BaseDelay: time.Microsecond}, nil)
	calls := 0
	err := r.Do(context.Background(), transientOnly, func() error { calls++; return errTransient })
	if !errors.Is(err, errTransient) || calls != 4 {
		t.Fatalf("Do = %v after %d calls, want transient after 4", err, calls)
	}
}

// TestRetryNonRetryableRunsOnce: errors the classifier rejects never
// retry (the "never apply" contract rides on this).
func TestRetryNonRetryableRunsOnce(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 5, BaseDelay: time.Microsecond}, nil)
	calls := 0
	sticky := errors.New("permanent")
	err := r.Do(context.Background(), transientOnly, func() error { calls++; return sticky })
	if !errors.Is(err, sticky) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want permanent after 1", err, calls)
	}
	calls = 0
	if err := r.Do(context.Background(), always, func() error { calls++; return errTransient }); !errors.Is(err, errTransient) || calls != 1 {
		t.Fatalf("never-retryable: %v after %d calls, want 1 call", err, calls)
	}
	if r.Retries() != 0 {
		t.Fatalf("retries = %d, want 0", r.Retries())
	}
}

// TestRetryBudgetExhaustion: a drained token bucket stops retries
// across callers and counts every refusal.
func TestRetryBudgetExhaustion(t *testing.T) {
	// max 2 tokens, tiny deposit ratio: two retries spend the bucket.
	budget := NewBudget(2, 0.01)
	r := NewRetryer(RetryConfig{MaxAttempts: 2, BaseDelay: time.Microsecond}, budget)
	fail := func() error { return errTransient }
	for i := 0; i < 2; i++ {
		if err := r.Do(context.Background(), transientOnly, fail); !errors.Is(err, errTransient) {
			t.Fatalf("Do %d = %v", i, err)
		}
	}
	if r.Retries() != 2 {
		t.Fatalf("retries with budget = %d, want 2", r.Retries())
	}
	// Bucket empty (2 - 2 + 2*0.01 < 1): further retries are refused.
	if err := r.Do(context.Background(), transientOnly, fail); !errors.Is(err, errTransient) {
		t.Fatalf("Do = %v", err)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries after exhaustion = %d, want still 2", r.Retries())
	}
	if budget.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", budget.Exhausted())
	}
	// Deposits refill: ~100 first attempts buy one more retry.
	for i := 0; i < 100; i++ {
		budget.Deposit()
	}
	if err := r.Do(context.Background(), transientOnly, fail); !errors.Is(err, errTransient) {
		t.Fatalf("Do = %v", err)
	}
	if r.Retries() != 3 {
		t.Fatalf("retries after refill = %d, want 3", r.Retries())
	}
}

// TestRetryRespectsContext: an expired context suppresses further
// attempts, and backoff never sleeps past the deadline.
func TestRetryRespectsContext(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, transientOnly, func() error {
		calls++
		cancel()
		return errTransient
	})
	if !errors.Is(err, errTransient) || calls != 1 {
		t.Fatalf("canceled ctx: %v after %d calls, want 1 call", err, calls)
	}

	// A deadline shorter than the backoff returns immediately instead
	// of sleeping into it.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	start := time.Now()
	calls = 0
	err = r.Do(dctx, transientOnly, func() error { calls++; return errTransient })
	if !errors.Is(err, errTransient) || calls != 1 {
		t.Fatalf("deadline ctx: %v after %d calls, want 1 call", err, calls)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("Do slept %v into a 5ms deadline", elapsed)
	}
}

// TestJitterBounds: every drawn delay is in (0, ceiling].
func TestJitterBounds(t *testing.T) {
	r := NewRetryer(RetryConfig{}, nil)
	const ceiling = 20 * time.Millisecond
	for i := 0; i < 1000; i++ {
		if d := r.jitter(ceiling); d <= 0 || d > ceiling {
			t.Fatalf("jitter(%v) = %v out of (0, %v]", ceiling, d, ceiling)
		}
	}
}

// TestBudgetConcurrent hammers one budget from many goroutines (-race)
// and checks conservation: withdrawals never exceed deposits + burst.
func TestBudgetConcurrent(t *testing.T) {
	budget := NewBudget(10, 0.5)
	var withdrawn, deposits atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				budget.Deposit()
				deposits.Add(1)
				if budget.Withdraw() {
					withdrawn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	maxAllowed := uint64(10 + float64(deposits.Load())*0.5)
	if w := withdrawn.Load(); w > maxAllowed {
		t.Fatalf("withdrew %d tokens from at most %d", w, maxAllowed)
	}
	if withdrawn.Load()+budget.Exhausted() != deposits.Load() {
		t.Fatalf("withdrawn %d + exhausted %d != attempts %d",
			withdrawn.Load(), budget.Exhausted(), deposits.Load())
	}
}
