package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/shard"
)

// Rebalancer is the optional SnapshotProvider extension behind
// POST /v1/admin/rebalance: a provider that can migrate ownership of a
// node range between shards live (the shard.Router). Providers without
// it — the single-graph path, read-only aggregations — answer 501.
type Rebalancer interface {
	// Rebalance migrates ownership of [lo, hi) from shard from to
	// shard to with the two-generation handoff, returning the new
	// partition epoch (see docs/PROTOCOL.md "Partition map &
	// rebalancing").
	Rebalance(ctx context.Context, lo, hi int32, from, to int) (uint64, error)
	// RebalanceStatus reports the current epoch and migration counters.
	RebalanceStatus() shard.RebalanceStatus
}

// HaloRefresher is the optional SnapshotProvider extension behind
// POST /v1/admin/halo-refresh: re-sync every shard's ghost-ghost halo
// edges from their owning shards (normal write fan-out skips pure-ghost
// holders, so halos drift under churn). Providers without it answer
// 501.
type HaloRefresher interface {
	// RefreshHalos runs one sweep over the slice-transfer path.
	RefreshHalos(ctx context.Context) error
}

// handleHaloRefresh runs one halo re-sync sweep synchronously.
func (s *Server) handleHaloRefresh(w http.ResponseWriter, r *http.Request) {
	hf, ok := s.sp.(HaloRefresher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "this deployment cannot refresh halos (no sharded router provider)")
		return
	}
	if err := hf.RefreshHalos(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, "halo refresh: %v", err)
		return
	}
	resp := map[string]any{"ok": true}
	if rb, ok := s.sp.(Rebalancer); ok {
		resp["halo_syncs"] = rb.RebalanceStatus().HaloSyncs
	}
	writeJSON(w, http.StatusOK, resp)
}

// rebalanceRequest is the POST /v1/admin/rebalance body: move every
// node in [lo, hi) currently owned by shard from to shard to.
type rebalanceRequest struct {
	Lo   int32 `json:"lo"`
	Hi   int32 `json:"hi"`
	From int   `json:"from"`
	To   int   `json:"to"`
}

// rebalanceResponse reports the outcome: the epoch now routing (the
// new epoch on success; the unchanged one after an abort), the
// provider's rebalancing counters, and — when the flip committed but a
// post-flip install failed — a warning naming the step to retry.
type rebalanceResponse struct {
	Epoch   uint64                `json:"epoch"`
	Status  shard.RebalanceStatus `json:"status"`
	Error   string                `json:"error,omitempty"`
	Warning string                `json:"warning,omitempty"`
}

// handleRebalance runs a live migration synchronously: the response
// arrives after the flip (or the abort). The request's deadline bounds
// the transfer. Outcomes: 200 with the new epoch on success (with a
// warning in the body when the flip committed but a post-flip install
// needs a retry), 400 for a malformed move request (nothing was
// attempted), 409 for an in-flight conflict or a genuine abort — the
// preserved epoch tells the operator the cluster is exactly as before.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.sp.(Rebalancer)
	if !ok {
		writeError(w, http.StatusNotImplemented, "this deployment cannot rebalance (no sharded router provider)")
		return
	}
	var req rebalanceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	_, err := rb.Rebalance(r.Context(), req.Lo, req.Hi, req.From, req.To)
	// The status epoch is the router's actual routing truth, which on
	// the post-flip-failure path differs from "unchanged".
	status := rb.RebalanceStatus()
	resp := rebalanceResponse{Epoch: status.Epoch, Status: status}
	var fc *shard.FlipCommittedError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.As(err, &fc):
		resp.Warning = err.Error()
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, shard.ErrInvalidMove):
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
	default:
		resp.Error = err.Error()
		writeJSON(w, http.StatusConflict, resp)
	}
}
