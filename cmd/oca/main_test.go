package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPipelineGenRunEval drives the full CLI pipeline on temp files:
// generate an LFR benchmark, run each algorithm, evaluate against the
// ground truth, inspect stats and per-community quality.
func TestPipelineGenRunEval(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	truthPath := filepath.Join(dir, "t.txt")
	foundPath := filepath.Join(dir, "c.txt")

	err := cmdGen([]string{
		"-type", "lfr", "-n", "300", "-avgdeg", "10", "-maxdeg", "30",
		"-minc", "15", "-maxc", "60", "-mu", "0.2", "-seed", "5",
		"-out", graphPath, "-truth", truthPath,
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	for _, p := range []string{graphPath, truthPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("missing output %s: %v", p, err)
		}
	}

	for _, algo := range []string{"oca", "lfk", "cpm", "cfinder"} {
		if err := cmdRun([]string{
			"-algo", algo, "-in", graphPath, "-out", foundPath, "-seed", "7",
		}); err != nil {
			t.Fatalf("run %s: %v", algo, err)
		}
		if err := cmdEval([]string{
			"-truth", truthPath, "-found", foundPath, "-n", "300",
		}); err != nil {
			t.Fatalf("eval %s: %v", algo, err)
		}
	}

	if err := cmdStats([]string{"-in", graphPath, "-triangles"}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdAnalyze([]string{"-in", graphPath, "-cover", foundPath, "-top", "3"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
}

func TestGenAllTypes(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-type", "daisy", "-n", "300", "-dn", "100"},
		{"-type", "ba", "-n", "200", "-m", "3"},
		{"-type", "gnm", "-n", "200", "-m", "500"},
		{"-type", "rmat", "-scale", "8", "-ef", "4"},
		{"-type", "wiki", "-scale", "8"},
	}
	for _, args := range cases {
		out := filepath.Join(dir, args[1]+".txt")
		if err := cmdGen(append(args, "-out", out, "-seed", "3")); err != nil {
			t.Fatalf("gen %v: %v", args, err)
		}
	}
	// Unknown type errors.
	if err := cmdGen([]string{"-type", "nope", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	// Truth requested from a generator without ground truth.
	if err := cmdGen([]string{"-type", "ba", "-n", "50", "-m", "2",
		"-out", filepath.Join(dir, "b.txt"), "-truth", filepath.Join(dir, "bt.txt")}); err == nil {
		t.Fatal("truth from ba should error")
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	if err := cmdGen([]string{"-type", "gnm", "-n", "50", "-m", "100", "-out", graphPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-algo", "nope", "-in", graphPath}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err=%v", err)
	}
}

func TestEvalMissingFlags(t *testing.T) {
	if err := cmdEval([]string{}); err == nil {
		t.Fatal("eval without flags should error")
	}
}

func TestReadGraphMissingFile(t *testing.T) {
	if _, err := readGraphFrom("/definitely/not/here.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := readCoverFrom("/definitely/not/here.txt"); err == nil {
		t.Fatal("missing cover accepted")
	}
}

func TestSummarizeCommand(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	truthPath := filepath.Join(dir, "t.txt")
	if err := cmdGen([]string{
		"-type", "daisy", "-n", "300", "-dn", "150",
		"-out", graphPath, "-truth", truthPath, "-seed", "2",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSummarize([]string{"-in", graphPath, "-cover", truthPath}); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if err := cmdSummarize([]string{"-in", graphPath}); err == nil {
		t.Fatal("summarize without -cover should error")
	}
}

func TestDotCommand(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	truthPath := filepath.Join(dir, "t.txt")
	dotPath := filepath.Join(dir, "g.dot")
	if err := cmdGen([]string{
		"-type", "daisy", "-n", "150", "-dn", "150",
		"-out", graphPath, "-truth", truthPath, "-seed", "4",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDot([]string{"-in", graphPath, "-cover", truthPath, "-out", dotPath}); err != nil {
		t.Fatalf("dot: %v", err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil || !strings.Contains(string(data), "graph communities") {
		t.Fatalf("dot output wrong: %v", err)
	}
	if err := cmdDot([]string{"-in", graphPath}); err == nil {
		t.Fatal("dot without -cover should error")
	}
}
