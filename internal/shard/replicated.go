package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// ReplicaSetConfig tunes a ReplicaSet's read routing.
type ReplicaSetConfig struct {
	// HedgeFraction caps hedged reads as a fraction of all reads — the
	// budget that keeps tail-latency insurance from doubling traffic.
	// 0 uses the default 0.05; a negative value disables hedging.
	HedgeFraction float64
	// HedgeDelayMin and HedgeDelayMax clamp the p99-derived hedge delay
	// (defaults 1ms and 25ms). Until the latency sampler has enough
	// observations the delay is HedgeDelayMax — hedging starts
	// conservative, never eager.
	HedgeDelayMin time.Duration
	HedgeDelayMax time.Duration
}

func (c ReplicaSetConfig) withDefaults() ReplicaSetConfig {
	switch {
	case c.HedgeFraction < 0:
		c.HedgeFraction = -1 // disabled
	case c.HedgeFraction == 0:
		c.HedgeFraction = 0.05
	}
	if c.HedgeDelayMin <= 0 {
		c.HedgeDelayMin = time.Millisecond
	}
	if c.HedgeDelayMax < c.HedgeDelayMin {
		c.HedgeDelayMax = 25 * time.Millisecond
	}
	return c
}

// ReplicaSet serves one shard from N backends — a single writable
// primary plus read replicas — behind the plain Backend interface, so a
// Router fans out over replica sets exactly as it does over single
// backends. Writes (Lookup, EnsureLocal, Apply, Flush) and the
// admission Status go only to the primary: a dead primary degrades
// writes exactly as a single remote backend does. Reads route to any
// sufficiently fresh member:
//
//   - Generation floor: Flush raises a read-your-writes floor (the
//     same contract as the transport client's mirror floor), and every
//     generation served ratchets a monotone-read floor — a reply never
//     goes backwards, even across a failover to a laggier member.
//   - Least-loaded selection: members are ranked by in-flight reads,
//     EWMA read latency, and the shard's queue-depth gauge.
//   - Hedged reads: Read re-issues a slow read to the next-best member
//     after a p99-derived delay and takes the first answer, within the
//     HedgeFraction budget.
//
// A member whose backend reports an error, lags the floor, or is
// draining is excluded from read selection; if no member qualifies the
// primary's own (possibly degraded) view is served so error semantics
// match the unreplicated path.
type ReplicaSet struct {
	shardID int
	members []Backend // members[0] is the primary
	cfg     ReplicaSetConfig

	minGen atomic.Uint64 // read-your-writes floor raised by Flush
	served atomic.Uint64 // monotone-read ratchet: highest generation served

	reads     atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	failovers atomic.Uint64
	stale     atomic.Uint64 // replies rejected for answering below the floor

	load []memberLoad // parallel to members
	lat  latencySampler
}

// memberLoad is one member's live load signal.
type memberLoad struct {
	inflight   atomic.Int64
	ewmaMicros atomic.Uint64
}

func (ld *memberLoad) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	if us == 0 {
		us = 1
	}
	for {
		cur := ld.ewmaMicros.Load()
		nv := us
		if cur != 0 {
			nv = (cur*7 + us) / 8
		}
		if ld.ewmaMicros.CompareAndSwap(cur, nv) {
			return
		}
	}
}

// latencySampler keeps a ring of recent read latencies and a cached p99
// for deriving the hedge delay.
type latencySampler struct {
	mu  sync.Mutex
	buf [256]int64 // microseconds
	n   int
	p99 atomic.Int64 // cached p99 in microseconds; 0 until warm
}

// samplerWarmup is the observation count below which the hedge delay
// stays at its conservative maximum.
const samplerWarmup = 32

func (s *latencySampler) observe(d time.Duration) {
	us := d.Microseconds()
	s.mu.Lock()
	s.buf[s.n%len(s.buf)] = us
	s.n++
	var snapshot []int64
	if s.n >= samplerWarmup && s.n%samplerWarmup == 0 {
		m := s.n
		if m > len(s.buf) {
			m = len(s.buf)
		}
		snapshot = append([]int64(nil), s.buf[:m]...)
	}
	s.mu.Unlock()
	if snapshot != nil {
		sort.Slice(snapshot, func(a, b int) bool { return snapshot[a] < snapshot[b] })
		s.p99.Store(snapshot[int(0.99*float64(len(snapshot)-1))])
	}
}

// NewReplicaSet assembles a replica set from a primary backend and its
// read replicas. It takes ownership of all of them: Close closes every
// member.
func NewReplicaSet(primary Backend, replicas []Backend, cfg ReplicaSetConfig) *ReplicaSet {
	members := append([]Backend{primary}, replicas...)
	return &ReplicaSet{
		shardID: primary.Status().Shard,
		members: members,
		cfg:     cfg.withDefaults(),
		load:    make([]memberLoad, len(members)),
	}
}

// NumMembers returns the member count including the primary.
func (rs *ReplicaSet) NumMembers() int { return len(rs.members) }

// Member returns member i's backend (0 is the primary).
func (rs *ReplicaSet) Member(i int) Backend { return rs.members[i] }

// floor is the generation below which no read may answer.
func (rs *ReplicaSet) floor() uint64 {
	f, s := rs.minGen.Load(), rs.served.Load()
	if s > f {
		return s
	}
	return f
}

func (rs *ReplicaSet) ratchet(gen uint64) {
	for {
		cur := rs.served.Load()
		if gen <= cur || rs.served.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// score is the least-loaded ranking key: in-flight reads dominate, the
// EWMA latency and queue-depth gauge break ties so a slow or backlogged
// member sheds read traffic before it stalls anyone.
func (rs *ReplicaSet) score(i int) float64 {
	ld := &rs.load[i]
	s := float64(ld.inflight.Load())
	s += float64(ld.ewmaMicros.Load()) / 1000 / 25 // EWMA ms, softened
	s += float64(rs.members[i].Status().Status.Pending) / 64
	return s
}

type readCandidate struct {
	idx   int
	view  View
	score float64
}

// candidates returns the members eligible at floor fl, least-loaded
// first. Stable sort: on equal load the primary (freshest) wins.
func (rs *ReplicaSet) candidates(fl uint64) []readCandidate {
	out := make([]readCandidate, 0, len(rs.members))
	for i, m := range rs.members {
		v := m.View()
		if v.Err != nil || v.Snap == nil || v.Snap.Gen < fl {
			continue
		}
		if d, ok := m.(interface{ Draining() bool }); ok && d.Draining() {
			continue
		}
		// A member whose circuit breaker is open (or probing) is skipped
		// before paying its timeout; mirror reads of the member would
		// succeed, but routing load to a known-broken backend delays its
		// recovery and risks stale amplification.
		if b, ok := m.(interface{ BreakerOpen() bool }); ok && b.BreakerOpen() {
			continue
		}
		out = append(out, readCandidate{idx: i, view: v, score: rs.score(i)})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].score < out[b].score })
	return out
}

// staleCandidates is the optimistic tier Read falls back to when no
// member's *mirror* is known to be at the floor — routine in the
// instant after a live reply from a server running ahead of its mirror
// raised the floor, and lasting at most one poll interval. Members are
// ordered freshest-mirror first (then least-loaded); Read enforces the
// floor on the reply itself, rejecting and failing over stale answers,
// so routing to them is safe. View has no reply to check and must NOT
// use this tier — it would serve a regression.
func (rs *ReplicaSet) staleCandidates() []readCandidate {
	out := make([]readCandidate, 0, len(rs.members))
	for i, m := range rs.members {
		v := m.View()
		if v.Err != nil || v.Snap == nil {
			continue
		}
		if d, ok := m.(interface{ Draining() bool }); ok && d.Draining() {
			continue
		}
		if b, ok := m.(interface{ BreakerOpen() bool }); ok && b.BreakerOpen() {
			continue
		}
		out = append(out, readCandidate{idx: i, view: v, score: rs.score(i)})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if ga, gb := out[a].view.Snap.Gen, out[b].view.Snap.Gen; ga != gb {
			return ga > gb
		}
		return out[a].score < out[b].score
	})
	return out
}

// hedgeDelay derives the backup-request delay from the sampled read
// p99, clamped to the configured window.
func (rs *ReplicaSet) hedgeDelay() time.Duration {
	p99 := time.Duration(rs.lat.p99.Load()) * time.Microsecond
	if p99 <= 0 {
		return rs.cfg.HedgeDelayMax
	}
	if p99 < rs.cfg.HedgeDelayMin {
		return rs.cfg.HedgeDelayMin
	}
	if p99 > rs.cfg.HedgeDelayMax {
		return rs.cfg.HedgeDelayMax
	}
	return p99
}

// hedgeOK admits one more hedge if the budget allows it.
func (rs *ReplicaSet) hedgeOK() bool {
	if rs.cfg.HedgeFraction < 0 {
		return false
	}
	return float64(rs.hedges.Load()+1) <= rs.cfg.HedgeFraction*float64(rs.reads.Load())
}

// ReadResult describes how a hedged read was served.
type ReadResult struct {
	// Member is the member index that answered (0 = primary).
	Member int
	// Hedged reports that a backup request was fired for this read;
	// HedgeWon that the backup answered first.
	Hedged   bool
	HedgeWon bool
}

// Read executes one remote read with least-loaded selection, error
// failover, floor enforcement and budgeted hedging. do performs the
// read against the given member and returns the generation its reply
// was served from; a reply below the set's floor counts as a failure
// (the next member is tried) so no caller ever observes a generation
// regression. The winning attempt's member index is returned so the
// caller can pick up per-member results it stashed from do.
func (rs *ReplicaSet) Read(ctx context.Context, do func(ctx context.Context, member Backend, idx int) (uint64, error)) (ReadResult, error) {
	fl := rs.floor()
	cands := rs.candidates(fl)
	if len(cands) == 0 {
		cands = rs.staleCandidates()
	}
	if len(cands) == 0 {
		return ReadResult{}, fmt.Errorf("shard %d: %w: no replica at generation >= %d", rs.shardID, ErrUnavailable, fl)
	}
	rs.reads.Add(1)

	type outcome struct {
		idx     int
		err     error
		isHedge bool
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan outcome, len(cands))
	next, outstanding := 0, 0
	attempt := func(isHedge bool) {
		c := cands[next]
		next++
		outstanding++
		ld := &rs.load[c.idx]
		ld.inflight.Add(1)
		go func() {
			start := time.Now()
			gen, err := do(ctx, rs.members[c.idx], c.idx)
			elapsed := time.Since(start)
			ld.inflight.Add(-1)
			ld.observe(elapsed)
			if err == nil {
				rs.lat.observe(elapsed)
				if gen < fl {
					rs.stale.Add(1)
					err = fmt.Errorf("shard %d member %d: %w: answered generation %d behind floor %d",
						rs.shardID, c.idx, ErrUnavailable, gen, fl)
				} else {
					rs.ratchet(gen)
				}
			}
			results <- outcome{idx: c.idx, err: err, isHedge: isHedge}
		}()
	}
	attempt(false)

	var hedgeC <-chan time.Time
	if rs.cfg.HedgeFraction >= 0 && len(cands) > 1 {
		t := time.NewTimer(rs.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	var firstErr error
	for {
		select {
		case o := <-results:
			outstanding--
			if o.err == nil {
				if o.isHedge {
					rs.hedgeWins.Add(1)
				}
				return ReadResult{Member: o.idx, Hedged: hedged, HedgeWon: o.isHedge}, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if next < len(cands) {
				// Failover on a hard error is free — only hedges (backup
				// requests racing a still-running one) consume budget.
				rs.failovers.Add(1)
				attempt(false)
			} else if outstanding == 0 {
				return ReadResult{Hedged: hedged}, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) && rs.hedgeOK() {
				hedged = true
				rs.hedges.Add(1)
				attempt(true)
			}
		case <-ctx.Done():
			return ReadResult{Hedged: hedged}, ctx.Err()
		}
	}
}

// --- Backend ---

// Lookup resolves a global id in the primary's translation table (the
// single writable table; replicas mirror it).
func (rs *ReplicaSet) Lookup(global int32) (int32, bool) { return rs.members[0].Lookup(global) }

// EnsureLocal grows the primary's translation table.
func (rs *ReplicaSet) EnsureLocal(global int32) int32 { return rs.members[0].EnsureLocal(global) }

// Apply ships the batch to the primary; replicas pick it up through
// their snapshot sync.
func (rs *ReplicaSet) Apply(ctx context.Context, add, remove [][2]int32) error {
	return rs.members[0].Apply(ctx, add, remove)
}

// InstallPartitionMap forwards a partition-map install to the primary,
// the set's only writer; replicas adopt the map by mirroring the
// primary's published state. Without this a replicated backend would
// refuse the rebalancer's map broadcast.
func (rs *ReplicaSet) InstallPartitionMap(ctx context.Context, pm *PartitionMap, pending bool) error {
	return installMap(ctx, rs.members[0], pm, pending)
}

// Ingest ships slice-transfer traffic to the primary on its dedicated
// path (falling back to Apply for primaries without one).
func (rs *ReplicaSet) Ingest(ctx context.Context, add, remove [][2]int32) error {
	return ingestEdges(ctx, rs.members[0], add, remove)
}

// Flush flushes the primary and raises the read-your-writes floor to
// the flushed generation: until a replica's mirror catches up it is
// excluded from read selection.
func (rs *ReplicaSet) Flush(ctx context.Context) (uint64, error) {
	gen, err := rs.members[0].Flush(ctx)
	if err != nil {
		return gen, err
	}
	for {
		cur := rs.minGen.Load()
		if gen <= cur || rs.minGen.CompareAndSwap(cur, gen) {
			return gen, nil
		}
	}
}

// View serves the least-loaded member at or above the floor. With no
// eligible member it returns the primary's own view — stale mirror plus
// explicit error, the same degraded shape as an unreplicated backend —
// with the floor enforced on top.
func (rs *ReplicaSet) View() View {
	fl := rs.floor()
	cands := rs.candidates(fl)
	if len(cands) == 0 {
		v := rs.members[0].View()
		if v.Err == nil && v.Snap != nil && v.Snap.Gen < fl {
			v.Err = fmt.Errorf("shard %d: %w: no replica at generation >= %d (primary at %d)",
				rs.shardID, ErrUnavailable, fl, v.Snap.Gen)
		}
		return v
	}
	best := cands[0]
	rs.ratchet(best.view.Snap.Gen)
	return best.view
}

// Status reports the primary's status — the router's write-admission
// signal, so a dead primary rejects mutations exactly as an
// unreplicated dead backend does while reads keep serving.
func (rs *ReplicaSet) Status() WorkerStatus { return rs.members[0].Status() }

// Close closes every member.
func (rs *ReplicaSet) Close() {
	for _, m := range rs.members {
		m.Close()
	}
}

// --- observability ---

// ReplicaStat is one member's point-in-time replication state.
type ReplicaStat struct {
	// Addr identifies the member (its base URL for remote members,
	// "primary"/"replica-N" otherwise); Role is "primary" or "replica".
	Addr string `json:"addr"`
	Role string `json:"role"`
	// Generation is the member's mirrored generation as this router
	// sees it; Lag is the primary's generation minus it (0 when the
	// member is current or ahead of the last primary probe).
	Generation uint64 `json:"generation"`
	Lag        uint64 `json:"lag_generations"`
	// InFlight and EWMAMillis are this router's live load signals for
	// the member; QueueDepth is the shard's pending-mutation gauge as
	// reported through the member.
	InFlight   int     `json:"inflight"`
	EWMAMillis float64 `json:"ewma_ms"`
	QueueDepth int     `json:"queue_depth"`
	// Healthy is false while the member's backend reports an error;
	// Draining while it advertises a shutdown in progress.
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	Error    string `json:"error,omitempty"`
	// Resilience carries the member's breaker/retry/deadline counters
	// (remote members only — in-process backends have no transport to
	// break).
	Resilience *resilience.Stats `json:"resilience,omitempty"`
}

// ReplicaSetStats is one shard's replica-set state: counters plus every
// member's freshness and load.
type ReplicaSetStats struct {
	Shard     int           `json:"shard"`
	Floor     uint64        `json:"floor"`
	Reads     uint64        `json:"reads"`
	Hedges    uint64        `json:"hedges"`
	HedgeWins uint64        `json:"hedge_wins"`
	Failovers uint64        `json:"failovers"`
	Stale     uint64        `json:"stale_rejected"`
	Members   []ReplicaStat `json:"members"`
}

// ResilienceStats aggregates every member's breaker/retry/deadline
// counters (breaker state pessimistically: any open member reports
// open) — the shard-level rollup the router exports. Members without a
// transport (in-process workers) contribute nothing.
func (rs *ReplicaSet) ResilienceStats() resilience.Stats {
	var agg resilience.Stats
	for _, m := range rs.members {
		if rst, ok := m.(interface{ ResilienceStats() resilience.Stats }); ok {
			agg.Add(rst.ResilienceStats())
		}
	}
	return agg
}

// ReplicaStats reports the set's counters and per-member freshness. It
// never blocks and triggers no I/O: generations and statuses come from
// the members' local mirrors.
func (rs *ReplicaSet) ReplicaStats() ReplicaSetStats {
	st := ReplicaSetStats{
		Shard:     rs.shardID,
		Floor:     rs.floor(),
		Reads:     rs.reads.Load(),
		Hedges:    rs.hedges.Load(),
		HedgeWins: rs.hedgeWins.Load(),
		Failovers: rs.failovers.Load(),
		Stale:     rs.stale.Load(),
		Members:   make([]ReplicaStat, len(rs.members)),
	}
	gens := make([]uint64, len(rs.members))
	for i, m := range rs.members {
		if g, ok := m.(interface{ MirrorGen() uint64 }); ok {
			gens[i] = g.MirrorGen()
		} else if v := m.View(); v.Snap != nil {
			gens[i] = v.Snap.Gen
		}
	}
	for i, m := range rs.members {
		ms := m.Status()
		// Healthy is the serving signal — the same one candidates() routes
		// by: can this router read from the member right now. Status errors
		// (a replica relaying its dead upstream, say) surface in Error
		// without flipping Healthy; a replica serving its mirror under a
		// dead primary is healthy by design.
		v := m.View()
		r := ReplicaStat{
			Role:       "replica",
			Generation: gens[i],
			InFlight:   int(rs.load[i].inflight.Load()),
			EWMAMillis: float64(rs.load[i].ewmaMicros.Load()) / 1000,
			QueueDepth: ms.Status.Pending,
			Healthy:    v.Err == nil && v.Snap != nil,
			Error:      ms.Err,
		}
		if v.Err != nil {
			r.Error = v.Err.Error()
		}
		if i == 0 {
			r.Role = "primary"
		} else if gens[0] > gens[i] {
			r.Lag = gens[0] - gens[i]
		}
		if a, ok := m.(interface{ Addr() string }); ok {
			r.Addr = a.Addr()
		} else if i == 0 {
			r.Addr = "primary"
		} else {
			r.Addr = fmt.Sprintf("replica-%d", i)
		}
		if d, ok := m.(interface{ Draining() bool }); ok {
			r.Draining = d.Draining()
		}
		if rst, ok := m.(interface{ ResilienceStats() resilience.Stats }); ok {
			s := rst.ResilienceStats()
			r.Resilience = &s
		}
		st.Members[i] = r
	}
	return st
}
