package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/refresh"
	"repro/internal/wal"
)

// Options configures a Store.
type Options struct {
	// Dir is the data directory. Created if missing.
	Dir string
	// FsyncEveryBatch fsyncs each WAL record before the batch is
	// acknowledged (the -wal-fsync flag). Off, durability of the tail is
	// bounded by the OS flush interval, but order and atomicity still
	// hold.
	FsyncEveryBatch bool
	// SegmentEvery writes a snapshot segment every N publishes
	// (default 8). A clean shutdown always seals a final segment
	// regardless.
	SegmentEvery uint64
	// Retain keeps the newest N segments on disk (default 3, min 1);
	// older segments and the WAL files wholly covered by a retained
	// segment are deleted. Retained segments serve ?generation=
	// point-in-time reads.
	Retain int
	// Shard/Shards identify the partition slice persisted here
	// (Shards 0 = single-graph role); MaxNodes is the growth ceiling.
	// All three are stamped into segment metadata and verified on load.
	Shard    int
	Shards   int
	MaxNodes int
}

// Stats is a point-in-time view of the store for observability
// endpoints.
type Stats struct {
	Dir             string    `json:"dir"`
	Segments        int       `json:"segments"`
	NewestSegment   uint64    `json:"newest_segment_generation,omitempty"`
	LastSegmentAt   time.Time `json:"last_segment_at,omitzero"`
	WALBaseGen      uint64    `json:"wal_base_generation"`
	WALBytes        int64     `json:"wal_bytes"`
	WALFsync        bool      `json:"wal_fsync"`
	LoggedBatches   uint64    `json:"logged_batches"`
	SegmentFailures uint64    `json:"segment_failures"`
	// Recovery facts from the startup Load, frozen afterwards.
	Recovered RecoveryStats `json:"recovered"`
}

// RecoveryStats summarizes what the startup recovery found.
type RecoveryStats struct {
	// Source is "cold" (empty dir), "segment" (no WAL tail) or
	// "segment+wal" (tail replayed).
	Source string `json:"source"`
	// SegmentGen is the generation of the segment served from.
	SegmentGen uint64 `json:"segment_generation,omitempty"`
	// ReplayedBatches/ReplayedOps count the WAL tail replayed on top.
	ReplayedBatches int `json:"replayed_batches,omitempty"`
	ReplayedOps     int `json:"replayed_ops,omitempty"`
	// TornTail reports a WAL that ended mid-record and was truncated at
	// its last intact record.
	TornTail bool `json:"torn_tail,omitempty"`
	// SkippedSegments counts segment files that failed validation and
	// were passed over for an older one.
	SkippedSegments int `json:"skipped_segments,omitempty"`
}

// Store owns one data directory: the retained snapshot segments and the
// live WAL. All methods are safe for concurrent use.
type Store struct {
	opts Options

	mu            sync.Mutex
	log           *wal.Log
	logBase       uint64 // base generation of the live WAL
	newestSeg     uint64
	segments      int
	lastSegAt     time.Time
	pubsSinceSeg  uint64
	loggedBatches uint64
	segFailures   uint64
	recovered     RecoveryStats

	// epoch/pmap are the partition-map facts stamped into every segment
	// sealed from now on (see SetPartition). Zero/nil = epoch-0 base.
	// sealedEpoch is the epoch the newest segment carries: Seal's
	// same-generation skip must not suppress a seal whose only change
	// is the partition map (a map install on an unaffected shard
	// advances the epoch without publishing a generation).
	epoch       uint64
	pmap        []byte
	sealedEpoch uint64
}

// Open creates (if needed) the data directory and returns a Store over
// it. No files are read or written yet: call Load to recover, then
// Begin to start the live WAL.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: data dir must not be empty")
	}
	if opts.SegmentEvery == 0 {
		opts.SegmentEvery = 8
	}
	if opts.Retain < 1 {
		opts.Retain = 3
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	s := &Store{opts: opts}
	s.segments, s.newestSeg = s.scanSegments()
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.opts.Dir }

// SetPartition records the partition map the shard now routes under;
// every segment sealed afterwards carries it. enc is the map's binary
// encoding (shard.PartitionMap.Encode) — the store treats it as opaque
// bytes so persist stays below the shard package. Call it from the
// rebalance map-change hook before forcing the durability seal, so a
// recovery after the flip comes back at the flipped epoch.
func (s *Store) SetPartition(epoch uint64, enc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
	s.pmap = append([]byte(nil), enc...)
}

func (s *Store) scanSegments() (count int, newest uint64) {
	for _, gen := range s.listSegments() {
		count++
		if gen > newest {
			newest = gen
		}
	}
	return count, newest
}

// listSegments returns the generations with a segment file present, in
// ascending order.
func (s *Store) listSegments() []uint64 {
	return listByPattern(s.opts.Dir, SegmentPattern, ".ocaseg")
}

func (s *Store) listWALs() []uint64 {
	return listByPattern(s.opts.Dir, WALPattern, ".ocawal")
}

func listByPattern(dir, pattern, ext string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ext {
			continue
		}
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), pattern, &gen); err == nil {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Begin starts the live WAL for batches accepted after generation gen
// (the recovered — or freshly built — snapshot's generation). Call once
// after Load, before serving mutations.
func (s *Store) Begin(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked(gen)
}

func (s *Store) beginLocked(gen uint64) error {
	l, err := wal.Create(filepath.Join(s.opts.Dir, WALName(gen)), gen, s.opts.FsyncEveryBatch)
	if err != nil {
		return fmt.Errorf("persist: creating WAL: %w", err)
	}
	if err := syncDir(s.opts.Dir); err != nil {
		l.Close()
		return fmt.Errorf("persist: syncing data dir: %w", err)
	}
	if s.log != nil {
		s.log.Close()
	}
	s.log, s.logBase = l, gen
	return nil
}

// LogBatch is the refresh.Config.LogBatch hook for the single-graph
// role: it logs one accepted mutation batch. It runs under the refresh
// worker's mutex, so with FsyncEveryBatch the fsync serializes intake —
// the price of "acknowledged means durable".
func (s *Store) LogBatch(add, remove [][2]int32, seq uint64) error {
	return s.LogEdgeBatch(wal.EdgeBatch{Seq: seq, Add: add, Remove: remove})
}

// LogEdgeBatch logs one accepted batch with its translation-table
// growth — the sharded role's variant, fed from shard.Config.LogBatch
// through glue that converts shard.Batch.
func (s *Store) LogEdgeBatch(b wal.EdgeBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("persist: store has no live WAL (Begin not called)")
	}
	if err := s.log.AppendEdgeBatch(b); err != nil {
		return err
	}
	s.loggedBatches++
	return nil
}

// OnPublish records a published generation: a publish marker is
// appended to the WAL, and every Options.SegmentEvery publishes the
// snapshot is written as a new segment, the WAL is rotated and
// retention pruning runs. table is the generation's local→global
// translation prefix (nil on the single role). Call it from the
// publish hook (refresh.Config.OnSwap) — segment writes block the
// worker goroutine, never readers.
func (s *Store) OnPublish(snap *refresh.Snapshot, table []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("persist: store has no live WAL (Begin not called)")
	}
	if err := s.log.AppendPublish(wal.Publish{Gen: snap.Gen, Seq: snap.Seq}); err != nil {
		return err
	}
	s.pubsSinceSeg++
	if s.pubsSinceSeg < s.opts.SegmentEvery {
		return nil
	}
	if err := s.sealLocked(snap, table); err != nil {
		s.segFailures++
		return err
	}
	return nil
}

// Seal writes snap as a segment and rotates the WAL, so a subsequent
// restart recovers by a pure segment load with no replay. Call on
// graceful shutdown (after the refresh worker stopped) and at startup
// after a cold build.
func (s *Store) Seal(snap *refresh.Snapshot, table []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.newestSeg == snap.Gen && s.segments > 0 && s.sealedEpoch == s.epoch {
		return nil // already sealed at this generation and epoch
	}
	return s.sealLocked(snap, table)
}

// sealLocked writes the segment, rotates the WAL onto the new base
// generation and prunes. Crash-safe ordering: the segment lands
// atomically first, so a crash at any later step only leaves extra WAL
// files, which recovery filters by sequence number.
func (s *Store) sealLocked(snap *refresh.Snapshot, table []int32) error {
	path := filepath.Join(s.opts.Dir, SegmentName(snap.Gen))
	err := WriteSegment(path, SegmentData{
		Info:     snap.Info(),
		Shard:    s.opts.Shard,
		Shards:   s.opts.Shards,
		MaxNodes: s.opts.MaxNodes,
		Epoch:    s.epoch,
		PMap:     s.pmap,
		Graph:    snap.Graph,
		Cover:    snap.Cover,
		Table:    table,
	})
	if err != nil {
		return fmt.Errorf("persist: writing segment %d: %w", snap.Gen, err)
	}
	if snap.Gen != s.newestSeg {
		s.segments++
	}
	s.newestSeg = snap.Gen
	s.sealedEpoch = s.epoch
	s.lastSegAt = time.Now()
	s.pubsSinceSeg = 0
	if err := s.beginLocked(snap.Gen); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// Close closes the live WAL. The store's files stay valid for the next
// process.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// pruneLocked enforces Options.Retain: the newest Retain segments stay;
// older segments go, along with every WAL file other than the live one
// whose records are wholly covered by a retained segment (base
// generation below the newest segment's).
func (s *Store) pruneLocked() {
	segs := s.listSegments()
	if drop := len(segs) - s.opts.Retain; drop > 0 {
		for _, gen := range segs[:drop] {
			if os.Remove(filepath.Join(s.opts.Dir, SegmentName(gen))) == nil {
				s.segments--
			}
		}
	}
	for _, gen := range s.listWALs() {
		if gen < s.newestSeg && gen != s.logBase {
			os.Remove(filepath.Join(s.opts.Dir, WALName(gen)))
		}
	}
}

// Generations lists the retained segment generations, ascending — the
// point-in-time reads ?generation= can serve.
func (s *Store) Generations() []uint64 { return s.listSegments() }

// OpenGeneration loads the retained segment for generation gen (a
// point-in-time read). The caller owns the returned Segment and must
// Close it.
func (s *Store) OpenGeneration(gen uint64) (*Segment, error) {
	seg, err := LoadSegment(filepath.Join(s.opts.Dir, SegmentName(gen)))
	if err != nil {
		return nil, err
	}
	if err := s.checkIdentity(seg); err != nil {
		seg.Close()
		return nil, err
	}
	return seg, nil
}

func (s *Store) checkIdentity(seg *Segment) error {
	if seg.Shard != s.opts.Shard || seg.Shards != s.opts.Shards {
		return fmt.Errorf("persist: %s belongs to shard %d/%d, this store serves %d/%d",
			seg.Path, seg.Shard, seg.Shards, s.opts.Shard, s.opts.Shards)
	}
	return nil
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:             s.opts.Dir,
		Segments:        s.segments,
		NewestSegment:   s.newestSeg,
		LastSegmentAt:   s.lastSegAt,
		WALBaseGen:      s.logBase,
		WALFsync:        s.opts.FsyncEveryBatch,
		LoggedBatches:   s.loggedBatches,
		SegmentFailures: s.segFailures,
		Recovered:       s.recovered,
	}
	if s.log != nil {
		st.WALBytes = s.log.Size()
	}
	return st
}
