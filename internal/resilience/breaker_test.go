package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// step is one scripted event against the breaker. anyState skips the
// post-event state check (for steps where it isn't the point).
const anyState = State(-1)

type step struct {
	event     string // "fail", "ok", "allow", "probe", "advance"
	d         time.Duration
	wantOK    bool  // for allow/probe
	wantState State // checked after the event unless anyState
}

// TestBreakerStateMachine is the table-driven transition matrix:
// trip threshold, cooldown gating, half-open probe success and
// failure, and the fast-fail behavior of open/half-open states.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 100 * time.Millisecond
	cases := []struct {
		name  string
		steps []step
	}{
		{"closed allows", []step{
			{event: "allow", wantOK: true, wantState: Closed},
		}},
		{"failures below threshold stay closed", []step{
			{event: "fail", wantState: Closed},
			{event: "fail", wantState: Closed},
			{event: "allow", wantOK: true, wantState: Closed},
		}},
		{"success resets the failure count", []step{
			{event: "fail", wantState: Closed},
			{event: "fail", wantState: Closed},
			{event: "ok", wantState: Closed},
			{event: "fail", wantState: Closed},
			{event: "fail", wantState: Closed},
			{event: "allow", wantOK: true, wantState: Closed},
		}},
		{"threshold trips open and fast-fails", []step{
			{event: "fail", wantState: Closed}, {event: "fail", wantState: Closed}, {event: "fail", wantState: Open},
			{event: "allow", wantOK: false, wantState: Open},
			{event: "probe", wantOK: false, wantState: Open}, // cooldown not elapsed
		}},
		{"cooldown admits one probe into half-open", []step{
			{event: "fail", wantState: anyState}, {event: "fail", wantState: anyState}, {event: "fail", wantState: Open},
			{event: "advance", d: cooldown, wantState: Open},
			{event: "probe", wantOK: true, wantState: HalfOpen},
			{event: "probe", wantOK: false, wantState: HalfOpen}, // already probing
			{event: "allow", wantOK: false, wantState: HalfOpen}, // regular traffic still blocked
		}},
		{"half-open probe success closes", []step{
			{event: "fail", wantState: anyState}, {event: "fail", wantState: anyState}, {event: "fail", wantState: Open},
			{event: "advance", d: cooldown, wantState: Open},
			{event: "probe", wantOK: true, wantState: HalfOpen},
			{event: "ok", wantState: Closed},
			{event: "allow", wantOK: true, wantState: Closed},
		}},
		{"half-open probe failure reopens", []step{
			{event: "fail", wantState: anyState}, {event: "fail", wantState: anyState}, {event: "fail", wantState: Open},
			{event: "advance", d: cooldown, wantState: Open},
			{event: "probe", wantOK: true, wantState: HalfOpen},
			{event: "fail", wantState: Open},
			{event: "probe", wantOK: false, wantState: Open}, // new cooldown started
			{event: "advance", d: cooldown, wantState: Open},
			{event: "probe", wantOK: true, wantState: HalfOpen},
		}},
		{"failures while open carry no news", []step{
			{event: "fail", wantState: anyState}, {event: "fail", wantState: anyState}, {event: "fail", wantState: Open},
			{event: "advance", d: cooldown / 2, wantState: Open},
			{event: "fail", wantState: Open}, // straggler must not extend the cooldown
			{event: "advance", d: cooldown / 2, wantState: Open},
			{event: "probe", wantOK: true, wantState: HalfOpen},
		}},
		{"success while open closes directly", []step{
			{event: "fail", wantState: anyState}, {event: "fail", wantState: anyState}, {event: "fail", wantState: Open},
			{event: "ok", wantState: Closed},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{now: time.Unix(0, 0)}
			b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: cooldown, Now: clk.Now})
			for i, s := range tc.steps {
				var ok bool
				switch s.event {
				case "fail":
					b.Failure()
				case "ok":
					b.Success()
				case "allow":
					ok = b.Allow()
				case "probe":
					ok = b.Probe()
				case "advance":
					clk.advance(s.d)
				default:
					t.Fatalf("step %d: unknown event %q", i, s.event)
				}
				if s.event == "allow" || s.event == "probe" {
					if ok != s.wantOK {
						t.Fatalf("step %d (%s): got %v, want %v", i, s.event, ok, s.wantOK)
					}
				}
				if got := b.State(); s.wantState != anyState && got != s.wantState {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.event, got, s.wantState)
				}
			}
		})
	}
}

// TestBreakerCounters checks the trips / fast-fails exports.
func TestBreakerCounters(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clk.Now})
	b.Failure()
	b.Failure()
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatal("open breaker allowed a request")
		}
	}
	if b.FastFails() != 3 {
		t.Fatalf("fast fails = %d, want 3", b.FastFails())
	}
	clk.advance(time.Second)
	if !b.Probe() {
		t.Fatal("probe refused after cooldown")
	}
	b.Failure() // reopen
	if b.Trips() != 2 {
		t.Fatalf("trips after half-open failure = %d, want 2", b.Trips())
	}
}

// TestBreakerConcurrentTrippers hammers one breaker from many
// goroutines (run under -race): the breaker must stay internally
// consistent and end in a deterministic terminal state.
func TestBreakerConcurrentTrippers(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 5, Cooldown: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch {
				case i%7 == 0:
					b.Probe()
				case i%3 == 0:
					b.Allow()
				default:
					b.Failure()
				}
			}
		}(g)
	}
	wg.Wait()
	// With a 1-hour cooldown and thousands of failures, the breaker
	// must have tripped and stayed open.
	if got := b.State(); got != Open {
		t.Fatalf("state after storm = %v, want open", got)
	}
	if b.Trips() == 0 {
		t.Fatal("no trips recorded")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half_open", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	var agg Stats
	agg.Add(Stats{BreakerState: "closed", Retries: 2, DeadlineExceeded: 1})
	agg.Add(Stats{BreakerState: "open", BreakerTrips: 3, BreakerFastFails: 4, RetryBudgetExhausted: 5})
	if agg.BreakerState != "open" {
		t.Errorf("aggregate state = %q, want open (pessimistic)", agg.BreakerState)
	}
	if agg.Retries != 2 || agg.BreakerTrips != 3 || agg.BreakerFastFails != 4 || agg.RetryBudgetExhausted != 5 || agg.DeadlineExceeded != 1 {
		t.Errorf("aggregate counters wrong: %+v", agg)
	}
	var agg2 Stats
	agg2.Add(Stats{BreakerState: "half_open"})
	agg2.Add(Stats{BreakerState: "closed"})
	if agg2.BreakerState != "half_open" {
		t.Errorf("aggregate state = %q, want half_open", agg2.BreakerState)
	}
}
