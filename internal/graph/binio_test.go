package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		ok := true
		g.Edges(func(u, v int32) bool {
			if !g2.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := complete(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated adjacency.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Out-of-range neighbor: flip a node id in the adjacency section to
	// a large value.
	bad = append([]byte{}, good...)
	bad[len(bad)-1] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range adjacency accepted")
	}
	// Empty input.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadAuto(t *testing.T) {
	g := complete(6)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*bytes.Buffer{"binary": &bin, "text": &txt} {
		got, err := ReadAuto(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N() != 6 || got.M() != 15 {
			t.Fatalf("%s: n=%d m=%d", name, got.N(), got.M())
		}
	}
	// Auto on junk falls through to the edge-list parser and errors.
	if _, err := ReadAuto(strings.NewReader("not a graph\n")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil || g2.N() != 0 || g2.M() != 0 {
		t.Fatalf("empty graph round trip: %v", err)
	}
}

func TestBinaryAbsurdHeaderDoesNotPreallocate(t *testing.T) {
	// A file with valid magic but a header claiming 2^30 nodes and only
	// a few bytes of payload must fail quickly on truncation.
	var buf bytes.Buffer
	buf.Write([]byte("OCAG"))
	for _, v := range []int64{1 /* version */, 1 << 30 /* n */, 1 << 32 /* half edges */} {
		b8 := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b8[i] = byte(v >> (8 * i))
		}
		buf.Write(b8)
	}
	buf.Write(make([]byte, 64)) // token payload
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated absurd-header file accepted")
	}
}
