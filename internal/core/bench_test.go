package core

import (
	"testing"

	"repro/internal/lfr"
	"repro/internal/search"
	"repro/internal/xrand"
)

func benchGraph(b *testing.B) *lfr.Benchmark {
	b.Helper()
	bench, err := lfr.Generate(lfr.Params{
		N: 2000, AvgDeg: 20, MaxDeg: 60, Mu: 0.2,
		MinCom: 30, MaxCom: 120, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bench
}

// BenchmarkLocalSearch measures one seeded community search on an LFR
// graph — the inner loop of OCA.
func BenchmarkLocalSearch(b *testing.B) {
	bench := benchGraph(b)
	g := bench.Graph
	st := search.NewState(g, g.MaxDegree())
	c := 0.15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		rng := xrand.New(1, int64(i))
		seed := int32(i % g.N())
		localSearch(g, st, seed, c, rng, searchOpts{neighborProb: 0.5, maxSteps: 100000})
	}
}

// BenchmarkRun measures a full OCA run (c computation, all seeds,
// merging) on the same LFR graph.
func BenchmarkRun(b *testing.B) {
	bench := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bench.Graph, Options{Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitness measures the closed-form L evaluation.
func BenchmarkFitness(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += L(100+(i&1023), int64(i&4095), 0.3)
	}
	_ = sink
}

// BenchmarkGreedySelectionBucketQueue vs ...LinearScan is the DESIGN.md
// §6 ablation: the bucket queue answers argmax d_S in O(1) while a
// linear frontier scan costs O(|frontier|) per step.
func BenchmarkGreedySelectionBucketQueue(b *testing.B) {
	bench := benchGraph(b)
	g := bench.Graph
	st := search.NewState(g, g.MaxDegree())
	for v := int32(0); v < 60; v++ {
		st.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.BestAddition()
	}
}

func BenchmarkGreedySelectionLinearScan(b *testing.B) {
	bench := benchGraph(b)
	g := bench.Graph
	st := search.NewState(g, g.MaxDegree())
	for v := int32(0); v < 60; v++ {
		st.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, bestD := int32(-1), int32(-1)
		st.ForEachFrontier(func(v int32, d int32) {
			if d > bestD {
				best, bestD = v, d
			}
		})
		_ = best
	}
}
