package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
)

// liveConfig is the Config used by the refresh-centric tests: fixed c
// (no spectral run), deterministic OCA, short debounce.
func liveConfig() Config {
	return Config{
		OCA:             core.Options{Seed: 1, C: 0.5},
		RefreshDebounce: time.Millisecond,
	}
}

// doJSON issues a request with a JSON body and decodes 2xx responses
// into out.
func doJSON(t testing.TB, method, url string, in, out any) int {
	t.Helper()
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func TestBatchCommunities(t *testing.T) {
	_, ts := newTestServer(t, liveConfig())
	url := ts.URL + "/v1/nodes/communities"

	t.Run("table", func(t *testing.T) {
		tests := []struct {
			name     string
			req      any
			wantCode int
			check    func(t *testing.T, got batchCommunitiesResponse)
		}{
			{
				name:     "empty body",
				req:      nil,
				wantCode: http.StatusBadRequest,
			},
			{
				name:     "empty ids",
				req:      BatchCommunitiesRequest{IDs: []int32{}},
				wantCode: http.StatusBadRequest,
			},
			{
				name:     "single id",
				req:      BatchCommunitiesRequest{IDs: []int32{4}},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if got.Count != 1 || len(got.Results) != 1 {
						t.Fatalf("got %+v, want one result", got)
					}
					if got.Results[0].Count != 2 {
						t.Errorf("overlap node 4: %d communities, want 2", got.Results[0].Count)
					}
					if got.Generation == 0 {
						t.Error("generation missing from batch response")
					}
				},
			},
			{
				name:     "duplicate ids answered identically",
				req:      BatchCommunitiesRequest{IDs: []int32{5, 5, 5}},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if len(got.Results) != 3 {
						t.Fatalf("got %d results, want 3", len(got.Results))
					}
					first := fmt.Sprint(got.Results[0])
					for _, r := range got.Results[1:] {
						if fmt.Sprint(r) != first {
							t.Errorf("duplicate id answered differently: %v vs %v", got.Results[0], r)
						}
					}
				},
			},
			{
				name:     "out of range ids yield per-id errors",
				req:      BatchCommunitiesRequest{IDs: []int32{0, -3, 99}},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if got.Results[0].Error != "" || got.Results[0].Count != 1 {
						t.Errorf("valid id errored: %+v", got.Results[0])
					}
					for _, i := range []int{1, 2} {
						if got.Results[i].Error == "" || got.Results[i].Count != 0 {
							t.Errorf("bad id %d passed: %+v", got.Results[i].Node, got.Results[i])
						}
					}
				},
			},
			{
				name:     "members included on request",
				req:      BatchCommunitiesRequest{IDs: []int32{0}, Members: true},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if len(got.Results[0].Communities) != 1 || len(got.Results[0].Communities[0].Members) != 6 {
						t.Errorf("members not included: %+v", got.Results[0])
					}
				},
			},
			{
				name:     "shared intersection",
				req:      BatchCommunitiesRequest{IDs: []int32{4, 5}, Shared: true},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if got.Shared == nil || len(*got.Shared) != 2 {
						t.Fatalf("shared = %v, want both communities", got.Shared)
					}
				},
			},
			{
				name:     "shared empty but present",
				req:      BatchCommunitiesRequest{IDs: []int32{0, 9}, Shared: true},
				wantCode: http.StatusOK,
				check: func(t *testing.T, got batchCommunitiesResponse) {
					if got.Shared == nil || len(*got.Shared) != 0 {
						t.Fatalf("shared = %v, want present and empty", got.Shared)
					}
				},
			},
		}
		for _, tt := range tests {
			t.Run(tt.name, func(t *testing.T) {
				var got batchCommunitiesResponse
				code := doJSON(t, http.MethodPost, url, tt.req, &got)
				if code != tt.wantCode {
					t.Fatalf("status = %d, want %d", code, tt.wantCode)
				}
				if tt.check != nil && code == http.StatusOK {
					tt.check(t, got)
				}
			})
		}
	})

	t.Run("oversized batch clamps", func(t *testing.T) {
		s, err := NewWithCover(twoCliqueGraph(t), fixedCover(), Config{
			OCA:         core.Options{Seed: 1, C: 0.5},
			MaxBatchIDs: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var got batchCommunitiesResponse
		req := BatchCommunitiesRequest{IDs: []int32{0, 1, 2, 3, 4, 5}}
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/nodes/communities", req, &got); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if !got.Clamped || got.Count != 3 || len(got.Results) != 3 {
			t.Errorf("clamping: %+v, want 3 clamped results", got)
		}
	})

	t.Run("malformed body", func(t *testing.T) {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"ids": [1,`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed body: status = %d, want 400", resp.StatusCode)
		}
	})
}

// manyCommunityServer serves a synthetic cover with enough communities
// to span several export flush windows.
func manyCommunityServer(t testing.TB, communities int) (*Server, *httptest.Server) {
	t.Helper()
	n := 3 * communities
	b := graph.NewBuilder(n)
	cs := make([]cover.Community, communities)
	for i := 0; i < communities; i++ {
		u, v, w := int32(3*i), int32(3*i+1), int32(3*i+2)
		b.AddEdge(u, v)
		b.AddEdge(v, w)
		b.AddEdge(u, w)
		cs[i] = cover.Community{u, v, w}
	}
	s, err := NewWithCover(b.Build(), cover.NewCover(cs), Config{OCA: core.Options{Seed: 1, C: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// readExport parses an NDJSON export stream.
func readExport(t testing.TB, body io.Reader) (exportMeta, []exportCommunity) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("export stream empty: %v", sc.Err())
	}
	var meta exportMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("export meta line %q: %v", sc.Text(), err)
	}
	var comms []exportCommunity
	for sc.Scan() {
		var c exportCommunity
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("export line %q: %v", sc.Text(), err)
		}
		comms = append(comms, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("export scan: %v", err)
	}
	return meta, comms
}

func TestCoverExport(t *testing.T) {
	const k = 600 // > 2 flush windows
	_, ts := manyCommunityServer(t, k)
	resp, err := http.Get(ts.URL + "/v1/cover/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	meta, comms := readExport(t, resp.Body)
	if meta.Communities != k || meta.Nodes != 3*k || meta.Generation != 1 {
		t.Errorf("meta = %+v", meta)
	}
	if len(comms) != k {
		t.Fatalf("exported %d communities, meta declared %d", len(comms), k)
	}
	for i, c := range comms {
		if int(c.ID) != i || c.Size != 3 || len(c.Members) != 3 {
			t.Fatalf("community line %d inconsistent: %+v", i, c)
		}
	}
}

// TestCoverExportClientDisconnect closes the connection after the first
// line; the handler must abandon the stream and the server must keep
// serving.
func TestCoverExportClientDisconnect(t *testing.T) {
	_, ts := manyCommunityServer(t, 2000)
	resp, err := http.Get(ts.URL + "/v1/cover/export")
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then hang up mid-stream.
	buf := make([]byte, 256)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("reading first bytes: %v", err)
	}
	resp.Body.Close()

	// The server is still healthy afterwards; a fresh export completes.
	resp, err = http.Get(ts.URL + "/v1/cover/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	meta, comms := readExport(t, resp.Body)
	if len(comms) != meta.Communities {
		t.Errorf("post-disconnect export: %d lines, meta declared %d", len(comms), meta.Communities)
	}
}

func TestEdgesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, liveConfig())
	url := ts.URL + "/v1/edges"
	tests := []struct {
		name     string
		body     string
		wantCode int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"no edges", `{"add":[],"remove":[]}`, http.StatusBadRequest},
		{"self loop", `{"add":[[2,2]]}`, http.StatusBadRequest},
		{"out of range", `{"add":[[0,42]]}`, http.StatusBadRequest},
		{"negative", `{"remove":[[-1,2]]}`, http.StatusBadRequest},
		{"unknown field", `{"edges":[[0,1]]}`, http.StatusBadRequest},
		{"valid queue", `{"add":[[0,9]]}`, http.StatusAccepted},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(url, "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tt.wantCode {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tt.wantCode, body)
			}
		})
	}
}

// TestAcceptanceLiveRefresh is the issue's acceptance scenario: a
// running server takes mutations, keeps serving during the rebuild, and
// subsequent lookups reflect the new cover under a bumped generation.
func TestAcceptanceLiveRefresh(t *testing.T) {
	// Two disjoint K5 cliques: OCA finds two separate communities.
	b := graph.NewBuilder(10)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
			b.AddEdge(5+i, 5+j)
		}
	}
	s, err := New(b.Build(), liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var before batchCommunitiesResponse
	req := BatchCommunitiesRequest{IDs: []int32{0, 9}, Shared: true}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/nodes/communities", req, &before); code != http.StatusOK {
		t.Fatalf("pre-refresh batch status = %d", code)
	}
	if before.Shared == nil || len(*before.Shared) != 0 {
		t.Fatalf("nodes 0 and 9 share communities before the merge: %v", before.Shared)
	}

	// Fuse the cliques into one K10 and wait for the refresh.
	var add [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := int32(5); j < 10; j++ {
			add = append(add, [2]int32{i, j})
		}
	}
	var edgeResp EdgesResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/edges", EdgesRequest{Add: add, Wait: true}, &edgeResp); code != http.StatusOK {
		t.Fatalf("edges wait status = %d", code)
	}
	if !edgeResp.Applied || edgeResp.Generation <= before.Generation {
		t.Fatalf("edges response %+v, want applied with bumped generation (was %d)", edgeResp, before.Generation)
	}

	var after batchCommunitiesResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/nodes/communities", req, &after); code != http.StatusOK {
		t.Fatalf("post-refresh batch status = %d", code)
	}
	if after.Generation < edgeResp.Generation {
		t.Errorf("lookup generation %d below applied generation %d", after.Generation, edgeResp.Generation)
	}
	if after.Shared == nil || len(*after.Shared) == 0 {
		t.Errorf("nodes 0 and 9 still share no community after fusing the cliques: %+v", after)
	}

	var h healthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Generation != edgeResp.Generation || h.Edges != 45 {
		t.Errorf("healthz = %+v, want generation %d over 45 edges", h, edgeResp.Generation)
	}
}

// TestRefreshUnderConcurrentTraffic is the race-hardened suite: several
// mutators toggle edges while batch readers and exporters hammer the
// server. Every response must succeed (no 5xx: readers never block on
// rebuilds) and be internally consistent with exactly one generation —
// duplicate ids in one batch answered identically, export line counts
// matching their own meta line. Run under -race via `make race`.
func TestRefreshUnderConcurrentTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{
		OCA:             core.Options{Seed: 3, C: 0.5},
		RefreshDebounce: 100 * time.Microsecond,
		SearchWorkers:   2,
	})
	client := ts.Client()
	const mutators, readers, exporters, reps = 3, 5, 2, 40
	var wg sync.WaitGroup
	errs := make(chan error, (mutators+readers+exporters)*reps)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				e := [2]int32{int32(m), int32(6 + (i+m)%4)}
				req := EdgesRequest{Add: [][2]int32{e}}
				if i%2 == 1 {
					req = EdgesRequest{Remove: [][2]int32{e}}
				}
				payload, _ := json.Marshal(req)
				resp, err := client.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("mutator %d: status %d", m, resp.StatusCode)
				}
			}
		}(m)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < reps; i++ {
				node := int32((rd + i) % 10)
				payload, _ := json.Marshal(BatchCommunitiesRequest{IDs: []int32{node, 4, node, 4}, Members: true})
				resp, err := client.Post(ts.URL+"/v1/nodes/communities", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err
					return
				}
				var got batchCommunitiesResponse
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d (%s)", rd, resp.StatusCode, body)
					continue
				}
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- fmt.Errorf("reader %d: %v", rd, err)
					continue
				}
				if got.Generation < lastGen {
					errs <- fmt.Errorf("reader %d: generation went backwards: %d after %d", rd, got.Generation, lastGen)
				}
				lastGen = got.Generation
				if len(got.Results) != 4 {
					errs <- fmt.Errorf("reader %d: %d results, want 4", rd, len(got.Results))
					continue
				}
				// Duplicate ids in one batch: answered from one snapshot,
				// so they must be byte-identical.
				if fmt.Sprint(got.Results[0]) != fmt.Sprint(got.Results[2]) ||
					fmt.Sprint(got.Results[1]) != fmt.Sprint(got.Results[3]) {
					errs <- fmt.Errorf("reader %d: duplicate ids answered differently across one batch: %+v", rd, got.Results)
				}
			}
		}(rd)
	}
	for ex := 0; ex < exporters; ex++ {
		wg.Add(1)
		go func(ex int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				resp, err := client.Get(ts.URL + "/v1/cover/export")
				if err != nil {
					errs <- err
					return
				}
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				var meta exportMeta
				lines := 0
				for sc.Scan() {
					if lines == 0 {
						if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
							errs <- fmt.Errorf("exporter %d: meta: %v", ex, err)
						}
					}
					lines++
				}
				resp.Body.Close()
				if err := sc.Err(); err != nil {
					errs <- fmt.Errorf("exporter %d: %v", ex, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("exporter %d: status %d", ex, resp.StatusCode)
					continue
				}
				if lines-1 != meta.Communities {
					errs <- fmt.Errorf("exporter %d: %d community lines, own meta declared %d", ex, lines-1, meta.Communities)
				}
			}
		}(ex)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Drain: a final waited mutation settles everything, and the served
	// generation must have advanced past the initial cover.
	var final EdgesResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 7}}, Wait: true}, &final); code != http.StatusOK {
		t.Fatalf("drain mutation status = %d", code)
	}
	if final.Generation < 2 {
		t.Errorf("final generation = %d, want ≥ 2 after concurrent mutations", final.Generation)
	}
	var h healthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.PendingMutations != 0 {
		t.Errorf("post-drain healthz (code %d): %+v", code, h)
	}
}

// TestLazyServerMutation verifies POST /v1/edges on a lazy server
// forces the first cover build, then applies the mutation on top.
func TestLazyServerMutation(t *testing.T) {
	cfg := liveConfig()
	cfg.Lazy = true
	s, err := New(twoCliqueGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var got EdgesResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 9}}, Wait: true}, &got); code != http.StatusOK {
		t.Fatalf("lazy mutation status = %d", code)
	}
	if !got.Applied || got.Generation < 2 {
		t.Errorf("lazy mutation response = %+v", got)
	}
	var h healthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK || !h.CoverReady || h.Edges != 30 {
		t.Errorf("healthz after lazy mutation (code %d): %+v", code, h)
	}
}
