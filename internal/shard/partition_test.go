package shard

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/synth"
)

func emptyIndex(n int) *index.Membership {
	return index.Build(cover.NewCover(nil), n)
}

func TestNewPartition(t *testing.T) {
	if _, err := NewPartition(0); err == nil {
		t.Error("NewPartition(0) succeeded, want error")
	}
	p, err := NewPartition(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 {
		t.Errorf("K() = %d, want 4", p.K())
	}
	for v := int32(0); v < 100; v++ {
		if got := p.Shard(v); got != int(v)%4 {
			t.Fatalf("Shard(%d) = %d, want %d", v, got, v%4)
		}
	}
}

// twoCliques builds two K_6 cliques sharing nodes 4 and 5.
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(4); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestSplitSingleShardIsIdentity(t *testing.T) {
	g := twoCliques()
	pieces, err := Split(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("got %d pieces", len(pieces))
	}
	pc := pieces[0]
	if pc.Owned != g.N() || pc.Graph.N() != g.N() || pc.Graph.M() != g.M() {
		t.Fatalf("K=1 piece dims (%d owned, %d nodes, %d edges), want full graph", pc.Owned, pc.Graph.N(), pc.Graph.M())
	}
	for l, gv := range pc.Locals {
		if int32(l) != gv {
			t.Fatalf("K=1 locals[%d] = %d, want identity", l, gv)
		}
	}
}

// TestSplitHaloInvariant checks, on a random graph, that each piece is
// exactly the induced subgraph of the original on (owned ∪ ghosts),
// that ownership partitions the node set, and that per-piece owned
// edges sum to the global edge count.
func TestSplitHaloInvariant(t *testing.T) {
	g, err := synth.GNM(60, 240, 42)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	pieces, err := Split(g, k)
	if err != nil {
		t.Fatal(err)
	}
	ownedTotal := 0
	for _, pc := range pieces {
		ownedTotal += pc.Owned
		// Every owned global must be ≡ shard (mod k); ghosts must not.
		for l, gv := range pc.Locals {
			owns := int(gv)%k == pc.Shard
			if owns != pc.Owns(int32(l)) {
				t.Fatalf("shard %d: local %d (global %d) ownership mismatch", pc.Shard, l, gv)
			}
		}
		// Local edges = induced subgraph: both directions.
		inPiece := make(map[int32]int32, len(pc.Locals))
		for l, gv := range pc.Locals {
			inPiece[gv] = int32(l)
		}
		pc.Graph.Edges(func(lu, lv int32) bool {
			if !g.HasEdge(pc.Locals[lu], pc.Locals[lv]) {
				t.Errorf("shard %d: local edge (%d,%d) has no global counterpart (%d,%d)",
					pc.Shard, lu, lv, pc.Locals[lu], pc.Locals[lv])
			}
			return true
		})
		g.Edges(func(u, v int32) bool {
			lu, ok1 := inPiece[u]
			lv, ok2 := inPiece[v]
			if ok1 && ok2 && !pc.Graph.HasEdge(lu, lv) {
				t.Errorf("shard %d: global edge (%d,%d) missing from induced halo", pc.Shard, u, v)
			}
			return true
		})
	}
	if ownedTotal != g.N() {
		t.Errorf("owned nodes sum to %d, want %d", ownedTotal, g.N())
	}

	// Determinism: a second split is structurally identical.
	again, err := Split(g, k)
	if err != nil {
		t.Fatal(err)
	}
	for s := range pieces {
		if pieces[s].Graph.N() != again[s].Graph.N() || pieces[s].Graph.M() != again[s].Graph.M() {
			t.Fatalf("shard %d differs between identical splits", s)
		}
		for l := range pieces[s].Locals {
			if pieces[s].Locals[l] != again[s].Locals[l] {
				t.Fatalf("shard %d locals differ between identical splits", s)
			}
		}
	}
}

// TestSplitMetaEdgeAccounting checks that buildMeta's owned-edge rule
// sums exactly to the global edge count across shards.
func TestSplitMetaEdgeAccounting(t *testing.T) {
	g, err := synth.BarabasiAlbert(80, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	pieces, err := Split(g, k)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, pc := range pieces {
		// An index over an empty cover suffices for edge accounting.
		m := buildMeta(pc.Shard, &PartitionMap{K: k}, pc.Graph, emptyIndex(pc.Graph.N()), pc.Locals)
		total += m.OwnedEdges
		if m.OwnedNodes != pc.Owned {
			t.Errorf("shard %d: meta owned %d, piece owned %d", pc.Shard, m.OwnedNodes, pc.Owned)
		}
	}
	if total != g.M() {
		t.Errorf("owned edges sum to %d, want %d", total, g.M())
	}
}

// TestSplitOneMatchesSplit: the single-piece split a shard-server
// process uses must equal the corresponding piece of the full split.
func TestSplitOneMatchesSplit(t *testing.T) {
	g, err := synth.GNM(60, 240, 42)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	pieces, err := Split(g, k)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < k; s++ {
		one, err := SplitOne(g, k, s)
		if err != nil {
			t.Fatalf("SplitOne(%d): %v", s, err)
		}
		want := pieces[s]
		if one.Shard != want.Shard || one.Owned != want.Owned ||
			one.Graph.N() != want.Graph.N() || one.Graph.M() != want.Graph.M() {
			t.Fatalf("shard %d: SplitOne piece differs: %+v vs %+v", s, one, want)
		}
		for l, gv := range one.Locals {
			if want.Locals[l] != gv {
				t.Fatalf("shard %d local %d: global %d, want %d", s, l, gv, want.Locals[l])
			}
		}
		for v := int32(0); int(v) < one.Graph.N(); v++ {
			a, b := one.Graph.Neighbors(v), want.Graph.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("shard %d node %d: degree %d, want %d", s, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shard %d node %d: adjacency differs", s, v)
				}
			}
		}
	}
	if _, err := SplitOne(g, k, k); err == nil {
		t.Error("SplitOne with out-of-range index succeeded")
	}
}
