// Command refreshbench gates the incremental rebuild engine: on an LFR
// graph it measures, for each rung of a mutation-batch ladder, the
// latency of an incremental (dirty-region) rebuild against the full
// rebuild path and a truly cold OCA run, plus the NMI between the
// incremental result and the cold cover — the equivalence evidence that
// the fast path is still computing the same communities.
//
// The procedure per rung: strip b random edges from the generated
// graph, build a cover on the stripped graph, then re-add the b edges
// as one mutation batch through a refresh.Worker — once with the
// incremental engine forced on, once with it off — and compare both
// against core.Run on the full graph.
//
//	refreshbench [-n 50000] [-batches 1,10,100,1000] [-out BENCH_refresh.json]
//
// With -short it runs a scaled-down smoke version (CI): the paths are
// exercised and the NMI floor enforced, but latencies are reported
// without being judged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/refresh"
	"repro/internal/spectral"
)

type rungResult struct {
	Batch          int     `json:"batch"`
	Mode           string  `json:"mode"`
	DirtyNodes     int     `json:"dirty_nodes"`
	IncrementalMS  float64 `json:"incremental_ms"`
	FullMS         float64 `json:"full_ms"`
	ColdMS         float64 `json:"cold_ms"`
	SpeedupVsFull  float64 `json:"speedup_vs_full"`
	SpeedupVsCold  float64 `json:"speedup_vs_cold"`
	NMIVsCold      float64 `json:"nmi_vs_cold"`
	IncCommunities int     `json:"incremental_communities"`
}

type benchReport struct {
	Nodes         int          `json:"nodes"`
	Edges         int64        `json:"edges"`
	C             float64      `json:"c"`
	Seed          int64        `json:"seed"`
	Short         bool         `json:"short"`
	ColdRunMS     float64      `json:"cold_run_ms"`
	ColdNMITruth  float64      `json:"cold_nmi_vs_planted"`
	Rungs         []rungResult `json:"rungs"`
	GeneratedUnix int64        `json:"generated_unix"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "refreshbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("refreshbench", flag.ContinueOnError)
	n := fs.Int("n", 50000, "LFR graph size")
	batchesFlag := fs.String("batches", "1,10,100,1000", "comma-separated mutation batch sizes")
	out := fs.String("out", "BENCH_refresh.json", "output report path")
	seed := fs.Int64("seed", 42, "randomness seed (graph, stripping, OCA)")
	mu := fs.Float64("mu", 0.02, "LFR mixing parameter; the default keeps communities well separated so the NMI gate isolates incremental-engine drift from OCA's own run-to-run noise")
	short := fs.Bool("short", false, "CI smoke mode: small graph, loose gates, latencies reported but not judged")
	minSpeedup := fs.Float64("min-speedup", 5, "fail unless the 100-mutation incremental rebuild beats the cold rebuild path by this factor (ignored with -short)")
	minNMI := fs.Float64("min-nmi", 0.98, "fail when NMI(incremental, cold) drops below this at any rung")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *short {
		if *n == 50000 {
			*n = 1500
		}
		if *batchesFlag == "1,10,100,1000" {
			*batchesFlag = "1,25"
		}
		if *minNMI == 0.98 {
			// Loosen only the untouched default: on the tiny smoke graph
			// OCA's own run-to-run noise exceeds the full-scale floor. An
			// explicit -min-nmi always wins.
			*minNMI = 0.9
		}
	}
	batches, err := parseBatches(*batchesFlag)
	if err != nil {
		return err
	}

	log.Printf("generating LFR graph: n=%d", *n)
	// Community sizes are kept dense relative to the degree (20–40
	// members at average degree 16): in this regime whole planted
	// communities are L-optima, OCA's covers are reproducible
	// run-to-run (NMI ≥ 0.99 between independent seeds), and the
	// incremental-vs-cold NMI therefore measures engine drift, not
	// baseline noise.
	avgDeg, maxDeg := 16.0, 50
	minCom, maxCom := 20, 40
	if *n < 5000 {
		avgDeg, maxDeg, minCom, maxCom = 12, 30, 20, 60
	}
	bench, err := lfr.Generate(lfr.Params{
		N: *n, AvgDeg: avgDeg, MaxDeg: maxDeg, Mu: *mu,
		MinCom: minCom, MaxCom: maxCom, Seed: *seed,
	})
	if err != nil {
		return fmt.Errorf("lfr.Generate: %w", err)
	}
	final := bench.Graph
	log.Printf("graph ready: %d nodes, %d edges", final.N(), final.M())

	c, err := spectral.C(final, spectral.Options{})
	if err != nil {
		return fmt.Errorf("spectral.C: %w", err)
	}
	// Patience 100 explores the coverage tail further than the default
	// 20, trading some cold-path time for materially stabler covers at
	// this scale (the paper leaves the halting policy open).
	opt := core.Options{Seed: *seed, C: c, Halting: core.Halting{Patience: 100}}
	log.Printf("c = %.4f; running the cold reference", c)

	coldStart := time.Now()
	cold, err := core.Run(final, opt)
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	coldMS := millis(time.Since(coldStart))
	report := benchReport{
		Nodes:         final.N(),
		Edges:         final.M(),
		C:             c,
		Seed:          *seed,
		Short:         *short,
		ColdRunMS:     coldMS,
		ColdNMITruth:  metrics.NMI(cold.Cover, bench.Communities, final.N()),
		GeneratedUnix: time.Now().Unix(),
	}
	log.Printf("cold run: %d communities in %.0fms (NMI vs planted %.3f)",
		cold.Cover.Len(), coldMS, report.ColdNMITruth)

	var all [][2]int32
	final.Edges(func(u, v int32) bool {
		all = append(all, [2]int32{u, v})
		return true
	})
	rng := rand.New(rand.NewSource(*seed + 1))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	failed := false
	for _, b := range batches {
		if b > len(all) {
			return fmt.Errorf("batch %d exceeds edge count %d", b, len(all))
		}
		rr, err := runRung(final, all[:b], opt, cold)
		if err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		report.Rungs = append(report.Rungs, rr)
		log.Printf("batch %4d: incremental %.1fms (%s, dirty %d) vs full %.1fms / cold %.1fms — %.1fx vs cold, NMI %.4f",
			rr.Batch, rr.IncrementalMS, rr.Mode, rr.DirtyNodes, rr.FullMS, rr.ColdMS, rr.SpeedupVsCold, rr.NMIVsCold)
		if rr.Mode != refresh.ModeIncremental {
			log.Printf("batch %4d: FAIL — rebuild took mode %q, want incremental", rr.Batch, rr.Mode)
			failed = true
		}
		if rr.NMIVsCold < *minNMI {
			log.Printf("batch %4d: FAIL — NMI %.4f below floor %.2f", rr.Batch, rr.NMIVsCold, *minNMI)
			failed = true
		}
		if !*short && rr.Batch == 100 && rr.SpeedupVsCold < *minSpeedup {
			log.Printf("batch %4d: FAIL — speedup %.1fx below %.1fx", rr.Batch, rr.SpeedupVsCold, *minSpeedup)
			failed = true
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("report written to %s", *out)
	if failed {
		return fmt.Errorf("gates failed (see log)")
	}
	return nil
}

// runRung measures one ladder rung: strip the batch from the final
// graph, cover the stripped graph, then re-add the batch through an
// incremental worker and through a full-path worker, timing both
// rebuilds from the published snapshots.
func runRung(final *graph.Graph, batch [][2]int32, opt core.Options, cold *core.Result) (rungResult, error) {
	d := graph.NewDelta(final)
	for _, e := range batch {
		if err := d.RemoveEdge(e[0], e[1]); err != nil {
			return rungResult{}, err
		}
	}
	start := d.Apply()
	init, err := core.Run(start, opt)
	if err != nil {
		return rungResult{}, fmt.Errorf("initial cover: %w", err)
	}

	incSnap, err := rebuildThrough(start, init, batch, refresh.Config{OCA: opt, Debounce: -1, IncrementalThreshold: 1})
	if err != nil {
		return rungResult{}, fmt.Errorf("incremental rebuild: %w", err)
	}
	fullSnap, err := rebuildThrough(start, init, batch, refresh.Config{OCA: opt, Debounce: -1})
	if err != nil {
		return rungResult{}, fmt.Errorf("full rebuild: %w", err)
	}
	// The cold rebuild path: same batch through a worker that re-runs
	// OCA from scratch (no warm carry-over) — the baseline the issue's
	// ≥5x gate is judged against.
	coldSnap, err := rebuildThrough(start, init, batch, refresh.Config{OCA: opt, Debounce: -1, DisableWarmStart: true})
	if err != nil {
		return rungResult{}, fmt.Errorf("cold rebuild: %w", err)
	}

	rr := rungResult{
		Batch:          len(batch),
		Mode:           incSnap.RebuildMode,
		DirtyNodes:     incSnap.DirtyNodes,
		IncrementalMS:  millis(incSnap.BuildTime),
		FullMS:         millis(fullSnap.BuildTime),
		ColdMS:         millis(coldSnap.BuildTime),
		NMIVsCold:      metrics.NMI(incSnap.Cover, cold.Cover, final.N()),
		IncCommunities: incSnap.Cover.Len(),
	}
	if rr.IncrementalMS > 0 {
		rr.SpeedupVsFull = rr.FullMS / rr.IncrementalMS
		rr.SpeedupVsCold = rr.ColdMS / rr.IncrementalMS
	}
	return rr, nil
}

// rebuildThrough applies one batch through a fresh worker over the
// start graph's cover and returns the published snapshot (whose
// BuildTime is the rebuild latency).
func rebuildThrough(start *graph.Graph, init *core.Result, batch [][2]int32, cfg refresh.Config) (*refresh.Snapshot, error) {
	w := refresh.New(refresh.NewSnapshot(start, init.Cover, init, init.C, 0), cfg)
	w.Start()
	defer w.Close()
	if _, _, err := w.Enqueue(batch, nil); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	return w.Flush(ctx)
}

func parseBatches(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid batch size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no batch sizes given")
	}
	return out, nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
