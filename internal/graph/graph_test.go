package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := int32(0); i < int32(n-1); i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2 (dedup + loop removal)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edges present")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range endpoint")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestGraphBasics(t *testing.T) {
	g := complete(5)
	if g.N() != 5 || g.M() != 10 {
		t.Fatalf("K5: n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("K5 max degree %d", g.MaxDegree())
	}
	count := 0
	g.Edges(func(u, v int32) bool {
		if u >= v {
			t.Fatalf("Edges emitted u=%d >= v=%d", u, v)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("Edges visited %d, want 10", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v int32) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d, want 1", count)
	}
}

func TestEdgesWithinAndDegreeSum(t *testing.T) {
	g := complete(6)
	set := []int32{0, 2, 4}
	mem := map[int32]bool{0: true, 2: true, 4: true}
	in := g.EdgesWithin(set, func(v int32) bool { return mem[v] })
	if in != 3 { // triangle among {0,2,4}
		t.Fatalf("EdgesWithin=%d, want 3", in)
	}
	if s := g.DegreeSum(set); s != 15 {
		t.Fatalf("DegreeSum=%d, want 15", s)
	}
}

// TestCSRInvariants checks, on random graphs, that adjacency lists are
// sorted, deduplicated, loop-free and symmetric, and that M matches.
func TestCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		em := 5 * n
		for i := 0; i < em; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var halfEdges int64
		for v := int32(0); v < int32(n); v++ {
			nb := g.Neighbors(v)
			halfEdges += int64(len(nb))
			for i, w := range nb {
				if w == v {
					return false // self loop survived
				}
				if i > 0 && nb[i-1] >= w {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(w, v) {
					return false // asymmetric
				}
			}
		}
		return halfEdges == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5 and 6 isolated
	g := b.Build()
	labels, count := Components(g)
	if count != 4 {
		t.Fatalf("components=%d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("3,4 should share a component")
	}
	if labels[5] == labels[6] {
		t.Fatal("5 and 6 should be separate components")
	}
	lc := LargestComponent(g)
	want := []int32{0, 1, 2}
	if len(lc) != 3 || lc[0] != want[0] || lc[1] != want[1] || lc[2] != want[2] {
		t.Fatalf("largest component %v, want %v", lc, want)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	d := BFSDistances(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d]=%d, want %d", i, d[i], want)
		}
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.Build()
	d2 := BFSDistances(g2, 0)
	if d2[2] != -1 {
		t.Fatalf("unreachable node distance %d, want -1", d2[2])
	}
}

func TestSubgraph(t *testing.T) {
	g := complete(6)
	sub, orig := Subgraph(g, []int32{1, 3, 5})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("subgraph n=%d m=%d, want 3,3", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 5 {
		t.Fatalf("orig mapping %v", orig)
	}
	// Path: keep only endpoints -> no edges.
	sub2, _ := Subgraph(path(5), []int32{0, 4})
	if sub2.M() != 0 {
		t.Fatalf("induced subgraph should have no edges, got %d", sub2.M())
	}
}

func TestStats(t *testing.T) {
	g := complete(4) // 4 triangles
	st := ComputeStats(g, true)
	if st.Nodes != 4 || st.Edges != 6 || st.MinDegree != 3 || st.MaxDegree != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Triangles != 4 {
		t.Fatalf("K4 triangles=%d, want 4", st.Triangles)
	}
	if st.Components != 1 || st.Isolated != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

// TestTriangleCountMatchesBrute cross-checks the forward algorithm
// against O(n^3) enumeration on random graphs.
func TestTriangleCountMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var brute int64
		for a := int32(0); a < int32(n); a++ {
			for c := a + 1; c < int32(n); c++ {
				for d := c + 1; d < int32(n); d++ {
					if g.HasEdge(a, c) && g.HasEdge(c, d) && g.HasEdge(a, d) {
						brute++
					}
				}
			}
		}
		return CountTriangles(g) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachTriangleUnique ensures each triangle is reported exactly once.
func TestForEachTriangleUnique(t *testing.T) {
	g := complete(6)
	seen := map[[3]int32]bool{}
	ForEachTriangle(g, func(a, b, c int32) {
		key := [3]int32{a, b, c}
		sort.Slice(key[:], func(i, j int) bool { return key[i] < key[j] })
		if seen[key] {
			t.Fatalf("triangle %v reported twice", key)
		}
		seen[key] = true
	})
	if len(seen) != 20 { // C(6,3)
		t.Fatalf("K6 triangles=%d, want 20", len(seen))
	}
}

func TestNewFromCSR(t *testing.T) {
	// Manual CSR for the path 0-1-2.
	g := NewFromCSR([]int64{0, 1, 3, 4}, []int32{1, 0, 2, 1})
	if g.N() != 3 || g.M() != 2 || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("CSR graph wrong: n=%d m=%d", g.N(), g.M())
	}
}
