// Package bench is the experiment harness: it defines the workload of
// every table and figure in the paper's evaluation (Table I, Figures
// 2–6, and the Wikipedia run), executes the algorithms on them, and
// renders the same rows/series the paper reports, as aligned text or
// CSV. The cmd/ocabench binary and the repository's testing.B benches
// are thin wrappers around this package.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve of a figure: y values over the shared x axis.
type Series struct {
	Name string
	Y    []float64 // NaN marks a skipped point
}

// Figure is a reproduced figure: one x axis, several named series.
type Figure struct {
	ID     string // e.g. "fig2"
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Note records workload parameters and deviations worth printing.
	Note string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	if f.Note != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", f.Note); err != nil {
			return err
		}
	}
	header := fmt.Sprintf("%12s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf("%12s", s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, x := range f.X {
		row := fmt.Sprintf("%12s", formatNum(x))
		for _, s := range f.Series {
			row += fmt.Sprintf("%12s", formatCell(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the figure as comma-separated values with a header row.
func (f *Figure) CSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range f.X {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			row = append(row, formatCell(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func formatCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// TableResult is a reproduced table (Table I).
type TableResult struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// Render writes the table as aligned text.
func (t *TableResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", strings.ToUpper(t.ID), t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], cell)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *TableResult) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
