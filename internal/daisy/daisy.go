// Package daisy implements the paper's own overlapping benchmark
// (Section V): "daisy" graphs whose petals and core overlap by
// construction, joined into "daisy trees".
//
// A daisy with parameters p, q, n and probabilities α, β has vertices
// 0..n−1. The i-th petal (1 ≤ i ≤ p−1) holds the vertices with
// v ≡ i (mod p); the core holds {v ≡ 0 (mod p)} ∪ {v ≡ 0 (mod q)}.
// A vertex with v ≢ 0 (mod p) but v ≡ 0 (mod q) therefore lies in both a
// petal and the core — the planted overlap. Every pair inside a petal is
// an edge with probability α; every pair inside the core with
// probability β.
//
// A daisy tree with parameters k, γ grows from one daisy by attaching k
// further daisies: each new daisy picks a random existing daisy, a
// random petal on each side, and joins the two petals' vertex sets with
// edge probability γ.
package daisy

import (
	"fmt"
	"math/rand"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Params describe one daisy flower.
type Params struct {
	// P is the modulus defining the petals; the daisy has P−1 petals.
	P int
	// Q is the modulus defining the extra core members (the overlap).
	Q int
	// N is the number of vertices of the daisy.
	N int
	// Alpha is the intra-petal edge probability.
	Alpha float64
	// Beta is the intra-core edge probability.
	Beta float64
}

func (p Params) validate() error {
	switch {
	case p.P < 3:
		return fmt.Errorf("daisy: P=%d, need ≥ 3 (at least two petals)", p.P)
	case p.Q < 2:
		return fmt.Errorf("daisy: Q=%d, need ≥ 2", p.Q)
	case p.N < 2*p.P:
		return fmt.Errorf("daisy: N=%d too small for P=%d petals", p.N, p.P)
	case p.Alpha < 0 || p.Alpha > 1 || p.Beta < 0 || p.Beta > 1:
		return fmt.Errorf("daisy: probabilities α=%g β=%g out of [0,1]", p.Alpha, p.Beta)
	}
	return nil
}

// DefaultParams are the defaults used by the experiment harness. The
// paper publishes the construction but not its constants; these were
// calibrated (see DESIGN.md §5) so the three algorithms reproduce the
// paper's Fig. 3/Fig. 4 behavior: petals dense enough to be unambiguous
// communities, a core that overlaps every petal, OCA recovering the
// planted structure while LFK over-merges and CFinder's percolation
// blurs petals into flowers as the tree grows.
func DefaultParams() Params {
	return Params{P: 6, Q: 4, N: 150, Alpha: 0.7, Beta: 0.45}
}

// TableIParams are the parameters the harness uses for the Table I
// dataset row ("Daisy, 10⁵ nodes, ≈4·10⁵ edges"): same shape as
// DefaultParams but with sparser petals and core so the edge/node ratio
// lands near the paper's ≈4.
func TableIParams() Params {
	return Params{P: 5, Q: 7, N: 100, Alpha: 0.4, Beta: 0.2}
}

// TreeParams describe a daisy tree.
type TreeParams struct {
	// Daisy is the template for every flower in the tree.
	Daisy Params
	// K is the number of additional daisies attached to the initial one
	// (total flowers = K+1).
	K int
	// Gamma is the inter-petal attachment edge probability.
	Gamma float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultGamma is the harness default for the attachment probability:
// sparse enough that attachments read as inter-community noise.
const DefaultGamma = 0.05

// Benchmark is a generated daisy tree with its planted ground truth.
type Benchmark struct {
	Graph *graph.Graph
	// Communities holds every petal and every core of every daisy.
	Communities *cover.Cover
	// Flowers is the number of daisies in the tree.
	Flowers int
}

// Generate builds a daisy tree.
func Generate(tp TreeParams) (*Benchmark, error) {
	if err := tp.Daisy.validate(); err != nil {
		return nil, err
	}
	if tp.K < 0 {
		return nil, fmt.Errorf("daisy: K=%d negative", tp.K)
	}
	if tp.Gamma < 0 || tp.Gamma > 1 {
		return nil, fmt.Errorf("daisy: γ=%g out of [0,1]", tp.Gamma)
	}
	rng := xrand.New(tp.Seed, 0)
	flowers := tp.K + 1
	n := tp.Daisy.N
	b := graph.NewBuilderHint(flowers*n, int64(float64(flowers)*estimateEdges(tp.Daisy)))

	var communities []cover.Community
	// petals[f][i] lists the members of petal i+1 of flower f (global ids).
	petals := make([][][]int32, flowers)
	for f := 0; f < flowers; f++ {
		offset := int32(f * n)
		flowerPetals, core := buildFlower(b, tp.Daisy, offset, rng)
		petals[f] = flowerPetals
		for _, petal := range flowerPetals {
			communities = append(communities, cover.NewCommunity(petal))
		}
		communities = append(communities, cover.NewCommunity(core))
		if f > 0 {
			// Attach to a random earlier daisy by a random petal pair.
			target := rng.Intn(f)
			pa := petals[f][rng.Intn(len(petals[f]))]
			pb := petals[target][rng.Intn(len(petals[target]))]
			for _, u := range pa {
				for _, v := range pb {
					if rng.Float64() < tp.Gamma {
						b.AddEdge(u, v)
					}
				}
			}
		}
	}
	return &Benchmark{
		Graph:       b.Build(),
		Communities: cover.NewCover(communities),
		Flowers:     flowers,
	}, nil
}

// GenerateToSize builds a daisy tree with enough flowers to reach at
// least targetNodes nodes.
func GenerateToSize(d Params, gamma float64, targetNodes int, seed int64) (*Benchmark, error) {
	if targetNodes < d.N {
		targetNodes = d.N
	}
	flowers := (targetNodes + d.N - 1) / d.N
	return Generate(TreeParams{Daisy: d, K: flowers - 1, Gamma: gamma, Seed: seed})
}

// buildFlower emits the edges of one daisy at the given id offset and
// returns its petal member lists and core member list (global ids).
func buildFlower(b *graph.Builder, d Params, offset int32, rng *rand.Rand) (petals [][]int32, core []int32) {
	petals = make([][]int32, d.P-1)
	for v := 0; v < d.N; v++ {
		id := offset + int32(v)
		if r := v % d.P; r != 0 {
			petals[r-1] = append(petals[r-1], id)
		}
		if v%d.P == 0 || v%d.Q == 0 {
			core = append(core, id)
		}
	}
	for _, petal := range petals {
		randomSubgraph(b, petal, d.Alpha, rng)
	}
	randomSubgraph(b, core, d.Beta, rng)
	return petals, core
}

// randomSubgraph adds each pair of the member list as an edge with the
// given probability.
func randomSubgraph(b *graph.Builder, members []int32, prob float64, rng *rand.Rand) {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if rng.Float64() < prob {
				b.AddEdge(members[i], members[j])
			}
		}
	}
}

// estimateEdges approximates the expected edge count of one flower, used
// only as a builder capacity hint.
func estimateEdges(d Params) float64 {
	petalSize := float64(d.N) / float64(d.P)
	coreSize := float64(d.N)/float64(d.P) + float64(d.N)/float64(d.Q)
	perPetal := d.Alpha * petalSize * (petalSize - 1) / 2
	core := d.Beta * coreSize * (coreSize - 1) / 2
	return float64(d.P-1)*perPetal + core
}

// Membership answers, for a single daisy with parameters d, which planted
// communities vertex v (0-based within the flower) belongs to: petal
// index (1..P−1, or 0 if none) and core membership. Exposed for tests
// and the Fig. 4 composition report.
func Membership(d Params, v int) (petal int, inCore bool) {
	if r := v % d.P; r != 0 {
		petal = r
	}
	inCore = v%d.P == 0 || v%d.Q == 0
	return petal, inCore
}
