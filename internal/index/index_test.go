package index

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cover"
)

func TestBuild(t *testing.T) {
	tests := []struct {
		name string
		cv   *cover.Cover
		n    int
		want map[int32][]int32 // expected memberships for probed nodes
	}{
		{
			name: "empty cover",
			cv:   cover.NewCover(nil),
			n:    4,
			want: map[int32][]int32{0: {}, 3: {}},
		},
		{
			name: "zero nodes",
			cv:   cover.NewCover(nil),
			n:    0,
			want: map[int32][]int32{},
		},
		{
			name: "disjoint communities",
			cv: cover.NewCover([]cover.Community{
				{0, 1, 2},
				{3, 4},
			}),
			n:    6,
			want: map[int32][]int32{0: {0}, 2: {0}, 3: {1}, 4: {1}, 5: {}},
		},
		{
			name: "overlapping memberships",
			cv: cover.NewCover([]cover.Community{
				{0, 1, 2, 3},
				{2, 3, 4},
				{3, 5},
			}),
			n: 7,
			want: map[int32][]int32{
				0: {0},
				2: {0, 1},
				3: {0, 1, 2},
				4: {1},
				6: {}, // orphan node
			},
		},
		{
			name: "members outside range ignored",
			cv: cover.NewCover([]cover.Community{
				{0, 1, 9},
			}),
			n:    3,
			want: map[int32][]int32{0: {0}, 1: {0}, 2: {}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ix := Build(tt.cv, tt.n)
			if ix.N() != tt.n {
				t.Fatalf("N() = %d, want %d", ix.N(), tt.n)
			}
			if ix.NumCommunities() != tt.cv.Len() {
				t.Fatalf("NumCommunities() = %d, want %d", ix.NumCommunities(), tt.cv.Len())
			}
			for v, want := range tt.want {
				got := ix.Communities(v)
				if len(got) != len(want) {
					t.Fatalf("Communities(%d) = %v, want %v", v, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Communities(%d) = %v, want %v", v, got, want)
					}
				}
				if ix.Degree(v) != len(want) {
					t.Errorf("Degree(%d) = %d, want %d", v, ix.Degree(v), len(want))
				}
				if ix.Covered(v) != (len(want) > 0) {
					t.Errorf("Covered(%d) = %v, want %v", v, ix.Covered(v), len(want) > 0)
				}
			}
		})
	}
}

func TestBuildMatchesMembershipIndex(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		{0, 2, 4, 6},
		{1, 2, 3},
		{2, 5, 6, 7},
		{},
		{7},
	})
	n := 9
	ix := Build(cv, n)
	ref := cv.MembershipIndex(n)
	var total int64
	for v := 0; v < n; v++ {
		got := ix.Communities(int32(v))
		if len(got) != len(ref[v]) || (len(got) > 0 && !reflect.DeepEqual([]int32(got), ref[v])) {
			t.Errorf("node %d: index %v, MembershipIndex %v", v, got, ref[v])
		}
		total += int64(len(got))
	}
	if ix.Memberships() != total {
		t.Errorf("Memberships() = %d, want %d", ix.Memberships(), total)
	}
}

func TestCommunitiesOutOfRange(t *testing.T) {
	ix := Build(cover.NewCover([]cover.Community{{0, 1}}), 2)
	if got := ix.Communities(-1); len(got) != 0 {
		t.Errorf("Communities(-1) = %v, want empty", got)
	}
	if got := ix.Communities(2); len(got) != 0 {
		t.Errorf("Communities(2) = %v, want empty", got)
	}
	if ix.Degree(-5) != 0 || ix.Covered(17) {
		t.Error("out-of-range nodes must report no memberships")
	}
}

func TestShared(t *testing.T) {
	ix := Build(cover.NewCover([]cover.Community{
		{0, 1, 2},
		{1, 2, 3},
		{2, 3, 4},
	}), 5)
	tests := []struct {
		u, v int32
		want []int32
	}{
		{1, 2, []int32{0, 1}},
		{2, 3, []int32{1, 2}},
		{0, 4, nil},
		{2, 2, []int32{0, 1, 2}},
		{0, 9, nil}, // out of range
	}
	for _, tt := range tests {
		got := ix.Shared(tt.u, tt.v)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Shared(%d, %d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

// TestConcurrentReaders exercises the concurrent-reader guarantee under
// the race detector.
func TestConcurrentReaders(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		{0, 1, 2, 3, 4},
		{3, 4, 5, 6},
		{0, 6, 7},
	})
	ix := Build(cv, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 1000; rep++ {
				for v := int32(0); v < 8; v++ {
					_ = ix.Communities(v)
					_ = ix.Shared(v, (v+3)%8)
				}
			}
		}()
	}
	wg.Wait()
}

func TestCommon(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		{0, 1, 2},    // 0
		{1, 2, 3},    // 1
		{2, 3, 4},    // 2
		{0, 1, 2, 3}, // 3
	})
	ix := Build(cv, 5)
	tests := []struct {
		name string
		ids  []int32
		want []int32
	}{
		{"no ids", nil, nil},
		{"single", []int32{2}, []int32{0, 1, 2, 3}},
		{"pair", []int32{1, 2}, []int32{0, 1, 3}},
		{"triple", []int32{1, 2, 3}, []int32{1, 3}},
		{"disjoint", []int32{0, 4}, []int32{}},
		{"duplicate ids", []int32{1, 1, 1}, []int32{0, 1, 3}},
		{"out of range", []int32{1, 99}, []int32{}},
		{"negative", []int32{-1, 1}, []int32{}},
	}
	for _, tt := range tests {
		got := ix.Common(tt.ids)
		if len(got) != len(tt.want) {
			t.Errorf("%s: Common(%v) = %v, want %v", tt.name, tt.ids, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("%s: Common(%v) = %v, want %v", tt.name, tt.ids, got, tt.want)
				break
			}
		}
	}
	// Pairwise agreement with Shared.
	if !reflect.DeepEqual(append([]int32{}, ix.Common([]int32{1, 2})...), append([]int32{}, ix.Shared(1, 2)...)) {
		t.Errorf("Common disagrees with Shared: %v vs %v", ix.Common([]int32{1, 2}), ix.Shared(1, 2))
	}
}
