package cover

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCommunitySortsAndDedups(t *testing.T) {
	c := NewCommunity([]int32{5, 1, 3, 1, 5, 2})
	want := Community{1, 2, 3, 5}
	if !c.Equal(want) {
		t.Fatalf("got %v, want %v", c, want)
	}
	if !c.Contains(3) || c.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestIntersectionAndUnion(t *testing.T) {
	a := NewCommunity([]int32{1, 2, 3, 4})
	b := NewCommunity([]int32{3, 4, 5})
	if got := a.IntersectionSize(b); got != 2 {
		t.Fatalf("intersection=%d, want 2", got)
	}
	u := a.Union(b)
	if !u.Equal(NewCommunity([]int32{1, 2, 3, 4, 5})) {
		t.Fatalf("union=%v", u)
	}
	empty := NewCommunity(nil)
	if a.IntersectionSize(empty) != 0 || !a.Union(empty).Equal(a) {
		t.Fatal("empty set identities broken")
	}
}

// TestSetOpsMatchMaps cross-checks intersection/union against map-based
// implementations on random sets.
func TestSetOpsMatchMaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() (Community, map[int32]bool) {
			n := rng.Intn(40)
			m := map[int32]bool{}
			var vals []int32
			for i := 0; i < n; i++ {
				v := int32(rng.Intn(60))
				m[v] = true
				vals = append(vals, v)
			}
			return NewCommunity(vals), m
		}
		a, am := mk()
		b, bm := mk()
		inter := 0
		union := map[int32]bool{}
		for v := range am {
			if bm[v] {
				inter++
			}
			union[v] = true
		}
		for v := range bm {
			union[v] = true
		}
		if a.IntersectionSize(b) != inter {
			return false
		}
		u := a.Union(b)
		if len(u) != len(union) {
			return false
		}
		if !sort.SliceIsSorted(u, func(i, j int) bool { return u[i] < u[j] }) {
			return false
		}
		for _, v := range u {
			if !union[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverCoverageAndIndex(t *testing.T) {
	cv := NewCover([]Community{
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{2, 3}),
	})
	if cv.Len() != 2 {
		t.Fatalf("len=%d", cv.Len())
	}
	nodes := cv.CoveredNodes()
	if len(nodes) != 4 {
		t.Fatalf("covered=%v", nodes)
	}
	if got := cv.Coverage(8); got != 0.5 {
		t.Fatalf("coverage=%g, want 0.5", got)
	}
	idx := cv.MembershipIndex(8)
	if len(idx[2]) != 2 || len(idx[0]) != 1 || len(idx[7]) != 0 {
		t.Fatalf("index=%v", idx)
	}
}

func TestCoverStats(t *testing.T) {
	cv := NewCover([]Community{
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{2, 3}),
		NewCommunity([]int32{2, 4, 5, 6}),
	})
	st := cv.Stats(10)
	if st.Communities != 3 || st.MinSize != 2 || st.MaxSize != 4 {
		t.Fatalf("%+v", st)
	}
	if st.CoveredNodes != 7 || st.OverlapNodes != 1 || st.MaxMembership != 3 {
		t.Fatalf("%+v", st)
	}
	if st.MeanSize != 3 {
		t.Fatalf("mean size %g", st.MeanSize)
	}
	empty := NewCover(nil)
	if s := empty.Stats(10); s.Communities != 0 || s.CoveredNodes != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	cv := NewCover([]Community{NewCommunity([]int32{1, 2})})
	cl := cv.Clone()
	cl.Communities[0][0] = 99
	if cv.Communities[0][0] == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestSortBySize(t *testing.T) {
	cv := NewCover([]Community{
		NewCommunity([]int32{9}),
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{4, 5}),
	})
	cv.SortBySize()
	if len(cv.Communities[0]) != 3 || len(cv.Communities[2]) != 1 {
		t.Fatalf("sort order wrong: %v", cv.Communities)
	}
}

// TestSortBySizeDeterministic: the canonical order is a pure function
// of the community set — equal-size communities tie-break by full
// lexicographic member comparison, not just the first member, so two
// covers holding the same communities in different construction orders
// sort identically.
func TestSortBySizeDeterministic(t *testing.T) {
	cs := []Community{
		NewCommunity([]int32{0, 3, 5}),
		NewCommunity([]int32{0, 3, 4}),
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{7, 8}),
		NewCommunity([]int32{0, 2, 9}),
	}
	a := NewCover([]Community{cs[0], cs[1], cs[2], cs[3], cs[4]})
	b := NewCover([]Community{cs[4], cs[2], cs[0], cs[3], cs[1]})
	a.SortBySize()
	b.SortBySize()
	for i := range a.Communities {
		if !a.Communities[i].Equal(b.Communities[i]) {
			t.Fatalf("order depends on construction history at position %d: %v vs %v",
				i, a.Communities[i], b.Communities[i])
		}
	}
	want := []Community{cs[2], cs[4], cs[1], cs[0], cs[3]}
	for i := range want {
		if !a.Communities[i].Equal(want[i]) {
			t.Fatalf("canonical order position %d = %v, want %v", i, a.Communities[i], want[i])
		}
	}
}

// TestSortPermApplyPerm: SortPerm's permutation applied via ApplyPerm
// must equal SortBySize, and an already-sorted cover reports sorted
// with a nil permutation.
func TestSortPermApplyPerm(t *testing.T) {
	cv := NewCover([]Community{
		NewCommunity([]int32{9}),
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{0, 1, 3}),
		NewCommunity([]int32{4, 5}),
	})
	want := cv.Clone()
	want.SortBySize()

	perm, sorted := cv.SortPerm()
	if sorted {
		t.Fatal("unsorted cover reported as sorted")
	}
	cv.ApplyPerm(perm)
	for i := range want.Communities {
		if !cv.Communities[i].Equal(want.Communities[i]) {
			t.Fatalf("ApplyPerm(SortPerm) != SortBySize at position %d", i)
		}
	}
	if perm2, sorted2 := cv.SortPerm(); !sorted2 || perm2 != nil {
		t.Fatalf("sorted cover: SortPerm = (%v, %v), want (nil, true)", perm2, sorted2)
	}
	empty := NewCover(nil)
	if _, sorted := empty.SortPerm(); !sorted {
		t.Fatal("empty cover should be sorted")
	}
}

func TestIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10)
		cs := make([]Community, 0, k)
		for i := 0; i < k; i++ {
			sz := 1 + rng.Intn(20)
			m := make([]int32, sz)
			for j := range m {
				m[j] = int32(rng.Intn(100))
			}
			cs = append(cs, NewCommunity(m))
		}
		cv := NewCover(cs)
		var buf bytes.Buffer
		if err := Write(&buf, cv); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != cv.Len() {
			return false
		}
		for i := range cs {
			if !got.Communities[i].Equal(cs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("expected error for non-numeric member")
	}
	if _, err := Read(strings.NewReader("1 -2\n")); err == nil {
		t.Fatal("expected error for negative member")
	}
	cv, err := Read(strings.NewReader("# empty\n\n"))
	if err != nil || cv.Len() != 0 {
		t.Fatalf("empty read: %v, len=%d", err, cv.Len())
	}
}
