package transport

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/refresh"
)

// TestShardServerEndpoints exercises the wire surface a router doesn't
// hit on the happy path: direct batch lookup, snapshot conditional
// fetch, malformed requests, and the draining gate.
func TestShardServerEndpoints(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 64, testOCA())
	base := cl.addrs[0]
	c := newClient(base, 0, 2, ClientConfig{RequestTimeout: 2 * time.Second})
	defer c.Close()

	// Direct lookup: node 0 is owned by shard 0; node 20 was never
	// materialized; members translate to global ids.
	resp, err := c.LookupRemote(context.Background(), []int32{0, 20}, true)
	if err != nil {
		t.Fatalf("LookupRemote: %v", err)
	}
	if resp.Generation == 0 || len(resp.Results) != 2 {
		t.Fatalf("lookup response: %+v", resp)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Count == 0 {
		t.Errorf("owned node result: %+v", resp.Results[0])
	}
	for _, lc := range resp.Results[0].Communities {
		for _, m := range lc.Members {
			if m < 0 || int(m) >= g.N() {
				t.Errorf("member %d not a global id", m)
			}
		}
	}
	if resp.Results[1].Error == "" {
		t.Errorf("unknown node answered without error: %+v", resp.Results[1])
	}
	// Empty id list is a bad request.
	if _, err := c.LookupRemote(context.Background(), nil, false); err == nil {
		t.Error("empty lookup accepted")
	}

	// Conditional snapshot fetch: current generation answers 304.
	gen := cl.workers[0].Snapshot().Gen
	get := func(url string) *http.Response {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Body.Close() })
		return r
	}
	if r := get(base + PathSnapshot + "?since=" + strconv.FormatUint(gen, 10)); r.StatusCode != http.StatusNotModified {
		t.Errorf("snapshot since=current = %d, want 304", r.StatusCode)
	}
	if r := get(base + PathSnapshot + "?since=0"); r.StatusCode != http.StatusOK {
		t.Errorf("snapshot since=0 = %d, want 200", r.StatusCode)
	} else if ct := r.Header.Get("Content-Type"); ct != ContentTypeSnapshot {
		t.Errorf("snapshot content type = %q", ct)
	}
	if r := get(base + PathSnapshot + "?since=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("snapshot since=bogus = %d, want 400", r.StatusCode)
	}

	// Malformed apply body.
	r, err := http.Post(base+PathApply, "application/json", strings.NewReader(`{"nope": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed apply = %d, want 400", r.StatusCode)
	}

	// Draining: mutations refused with the closed code, reads and the
	// health probe keep answering (with draining flagged).
	cl.shards[0].SetDraining(true)
	if err := c.Apply(context.Background(), [][2]int32{{0, 1}}, nil); err == nil {
		t.Error("apply accepted while draining")
	} else if !strings.Contains(err.Error(), refresh.ErrClosed.Error()) {
		t.Errorf("draining apply error = %v, want ErrClosed mapping", err)
	}
	if _, err := c.Flush(context.Background()); err == nil {
		t.Error("flush accepted while draining")
	}
	h, err := c.health(context.Background())
	if err != nil {
		t.Fatalf("health while draining: %v", err)
	}
	if !h.Draining {
		t.Error("health does not report draining")
	}
	if _, err := c.LookupRemote(context.Background(), []int32{0}, false); err != nil {
		t.Errorf("reads refused while draining: %v", err)
	}
	cl.shards[0].SetDraining(false)
	if err := c.Apply(context.Background(), nil, [][2]int32{{0, 1}}); err != nil {
		t.Errorf("apply after drain cleared: %v", err)
	}
}
