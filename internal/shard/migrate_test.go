package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/spectral"
)

func rebalance(t testing.TB, r *Router, lo, hi int32, from, to int) uint64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	epoch, err := r.Rebalance(ctx, lo, hi, from, to)
	if err != nil {
		t.Fatalf("Rebalance([%d,%d) %d→%d): %v", lo, hi, from, to, err)
	}
	return epoch
}

// TestMigrationMovesOwnership is the basic in-process handoff: after
// migrating the even nodes of [0, 6) from shard 0 to shard 1, the
// router routes them to shard 1, shard 1 serves them as owned nodes
// with their full adjacency, and the donor no longer counts them as
// owned. Post-flip mutations to the moved range land on the new owner.
func TestMigrationMovesOwnership(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())
	if got := r.PartitionEpoch(); got != 0 {
		t.Fatalf("fresh router at epoch %d", got)
	}
	epoch := rebalance(t, r, 0, 6, 0, 1)
	if epoch != 1 || r.PartitionEpoch() != 1 {
		t.Fatalf("epoch after migration = %d (router %d), want 1", epoch, r.PartitionEpoch())
	}
	st := r.RebalanceStatus()
	if st.Migrations != 1 || st.Aborted != 0 || st.Active {
		t.Fatalf("status after migration = %+v", st)
	}

	// Moved evens {0, 2, 4} route to shard 1 and are served there.
	for _, v := range []int32{0, 2, 4} {
		if s := r.ShardOf(v); s != 1 {
			t.Fatalf("ShardOf(%d) = %d after migration, want 1", v, s)
		}
		view, local, ok, err := r.ViewFor(v)
		if err != nil || !ok || view.Shard != 1 {
			t.Fatalf("ViewFor(%d): shard=%d ok=%v err=%v", v, view.Shard, ok, err)
		}
		if len(view.Snap.Index.Communities(local)) == 0 {
			t.Errorf("migrated node %d serves no communities on its new owner", v)
		}
	}
	// Unmoved evens {6, 8} stay on shard 0.
	for _, v := range []int32{6, 8} {
		if s := r.ShardOf(v); s != 0 {
			t.Fatalf("ShardOf(%d) = %d after migration, want 0", v, s)
		}
	}

	// The receiver's meta reflects the new ownership under epoch 1, and
	// the donor stopped counting the moved nodes.
	views, err := r.Views()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if m := v.Meta(); m.Epoch != 1 {
			t.Errorf("shard %d serves meta at epoch %d, want 1", v.Shard, m.Epoch)
		}
	}
	owned0, owned1 := views[0].Meta().OwnedNodes, views[1].Meta().OwnedNodes
	if owned0 != 2 || owned1 != 8 {
		t.Errorf("owned nodes after migration = (%d, %d), want (2, 8)", owned0, owned1)
	}
	// The moved nodes' adjacency survived the transfer: node 0's clique
	// {0..5} is intact on the receiver.
	v1 := views[1]
	l0, ok := v1.Local(0)
	if !ok {
		t.Fatal("receiver cannot resolve moved node 0")
	}
	for u := int32(1); u < 6; u++ {
		lu, ok := v1.Local(u)
		if !ok || !v1.Snap.Graph.HasEdge(l0, lu) {
			t.Errorf("receiver missing moved edge {0, %d}", u)
		}
	}

	// Post-flip mutations to the moved range land on the new owner.
	if _, queued, touched, err := r.Enqueue(context.Background(), [][2]int32{{0, 7}}, nil); err != nil || queued != 1 {
		t.Fatalf("post-flip enqueue: queued=%d err=%v", queued, err)
	} else if len(touched) != 1 || touched[0] != 1 {
		t.Fatalf("post-flip {0,7} touched shards %v, want only the new owner 1", touched)
	}
	flush(t, r)
	view, l0b, _, _ := r.ViewFor(0)
	if l7, ok := view.Local(7); !ok || !view.Snap.Graph.HasEdge(l0b, l7) {
		t.Error("post-flip edge {0,7} not served by the new owner")
	}
}

// TestMigrationRoundTrip moves a range away and back: the map returns
// to zero overrides at epoch 2 and both shards serve exactly their
// original node sets again.
func TestMigrationRoundTrip(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())
	rebalance(t, r, 0, 6, 0, 1)
	epoch := rebalance(t, r, 0, 6, 1, 0)
	if epoch != 2 {
		t.Fatalf("epoch after round trip = %d, want 2", epoch)
	}
	// The round trip must also return the odd nodes of [0, 6) that the
	// second move swept along... which it does not: the second move only
	// moves what shard 1 owns in [0, 6), which is the migrated evens
	// plus its own base odds — and odds moving to 0 would be a fresh
	// override. Assert the actual contract instead: every node routes
	// somewhere valid and is served by its owner.
	pm := r.PartitionMap()
	if err := pm.Validate(); err != nil {
		t.Fatalf("map after round trip invalid: %v", err)
	}
	for v := int32(0); v < 10; v++ {
		want := pm.ShardOf(v)
		view, _, ok, err := r.ViewFor(v)
		if err != nil || !ok || view.Shard != want {
			t.Fatalf("ViewFor(%d): shard=%d ok=%v err=%v, map says %d", v, view.Shard, ok, err, want)
		}
	}
}

// TestEnqueueDoubleAppliesDuringWindow opens a transfer window by hand
// (white-box: the test lives in package shard) and checks the router's
// in-window contract: an add touching the moving range lands on donor
// and receiver, and a remove is recorded so a stale slice chunk cannot
// resurrect it.
func TestEnqueueDoubleAppliesDuringWindow(t *testing.T) {
	cfg := testRouterConfig()
	cfg.Debounce = time.Hour // mutations stay visibly pending
	r := newTestRouter(t, 2, cfg)
	cur := r.PartitionMap()
	pending, err := cur.Move(0, 6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mig := &migration{
		pending: pending, lo: 0, hi: 6, from: 0, to: 1,
		removed: make(map[[2]int32]struct{}),
		added:   make(map[[2]int32]struct{}),
	}
	r.mu.Lock()
	r.mig = mig
	r.mu.Unlock()

	// {0, 6}: both endpoints shard 0 under the current map, but 0 moves
	// to shard 1 under the pending one — the window double-applies.
	if _, queued, touched, err := r.Enqueue(context.Background(), [][2]int32{{0, 6}}, nil); err != nil || queued != 1 {
		t.Fatalf("in-window enqueue: queued=%d err=%v", queued, err)
	} else if len(touched) != 2 {
		t.Fatalf("in-window {0,6} touched shards %v, want both donor and receiver", touched)
	}
	sts := r.Statuses()
	if sts[0].Status.Pending == 0 || sts[1].Status.Pending == 0 {
		t.Fatalf("in-window pending = (%d, %d), want both nonzero",
			sts[0].Status.Pending, sts[1].Status.Pending)
	}

	// An in-window remove of a moving-range edge is recorded for the
	// slice filter.
	if _, _, _, err := r.Enqueue(context.Background(), nil, [][2]int32{{2, 4}}); err != nil {
		t.Fatalf("in-window remove: %v", err)
	}
	if _, ok := mig.removed[normEdge([2]int32{2, 4})]; !ok {
		t.Error("in-window removal not recorded in the migration window")
	}

	// A mutation NOT touching the migrating range is not recorded: the
	// window maps are bounded by migration-relevant traffic, not by all
	// write traffic during a long transfer.
	if _, _, _, err := r.Enqueue(context.Background(), nil, [][2]int32{{1, 3}}); err != nil {
		t.Fatalf("in-window unrelated remove: %v", err)
	}
	if _, ok := mig.removed[normEdge([2]int32{1, 3})]; ok {
		t.Error("unrelated removal recorded in the migration window")
	}

	r.mu.Lock()
	r.mig = nil
	r.mu.Unlock()
}

// failingSlicer wraps a Worker backend and fails slice-transfer ingests
// on demand — the remote-receiver-down case, in process.
type failingSlicer struct {
	*Worker
	fail atomic.Bool
}

func (f *failingSlicer) Ingest(ctx context.Context, add, remove [][2]int32) error {
	if f.fail.Load() {
		return errors.New("injected ingest failure")
	}
	return f.Worker.Apply(ctx, add, remove)
}

// TestMigrationAbortRestoresEpoch fails the slice transfer and checks
// the abort contract: the epoch is unchanged, routing is exactly as
// before, the receiver is reset to the current map, and a retry after
// the fault clears completes normally.
func TestMigrationAbortRestoresEpoch(t *testing.T) {
	g := twoCliques()
	const k = 2
	backends := make([]Backend, k)
	var recv *failingSlicer
	for s := 0; s < k; s++ {
		pc, err := SplitOne(g, k, s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(pc, k, testRouterConfig(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		if s == 1 {
			recv = &failingSlicer{Worker: w}
			backends[s] = recv
		} else {
			backends[s] = w
		}
	}
	r, err := NewRouterBackends(backends, g.N(), g.N(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	recv.fail.Store(true)
	if _, err := r.Rebalance(context.Background(), 0, 6, 0, 1); err == nil {
		t.Fatal("rebalance with a failing receiver succeeded")
	}
	st := r.RebalanceStatus()
	if st.Epoch != 0 || st.Aborted != 1 || st.Migrations != 0 || st.Active {
		t.Fatalf("status after abort = %+v, want epoch 0, one abort, window closed", st)
	}
	if pm := recv.PartitionMap(); pm.Epoch != 0 {
		t.Fatalf("receiver left at epoch %d after abort, want 0", pm.Epoch)
	}
	for v := int32(0); v < 10; v++ {
		if s := r.ShardOf(v); s != int(v%2) {
			t.Fatalf("ShardOf(%d) = %d after abort, want base %d", v, s, v%2)
		}
	}

	// The fault clears; the same migration completes.
	recv.fail.Store(false)
	if epoch := rebalance(t, r, 0, 6, 0, 1); epoch != 1 {
		t.Fatalf("retry epoch = %d, want 1", epoch)
	}
	if st := r.RebalanceStatus(); st.Migrations != 1 || st.Aborted != 1 {
		t.Fatalf("status after retry = %+v", st)
	}
}

// failingInstaller wraps a Worker backend and fails final (non-pending)
// map installs on demand — the shard-missed-the-broadcast case, in
// process. Pending installs and the rollback path stay healthy.
type failingInstaller struct {
	*Worker
	failFinal atomic.Bool
}

func (f *failingInstaller) InstallPartitionMap(ctx context.Context, pm *PartitionMap, pending bool) error {
	if !pending && f.failFinal.Load() {
		return errors.New("injected final-install failure")
	}
	return f.Worker.SetPartitionMap(pm)
}

// TestMigrationPostFlipFailureDoesNotAbort fails the final map
// broadcast — a step that runs only after the flip committed — and
// checks the post-flip contract: no abort (an abort would install the
// stale epoch-e map on the receiver, ghost-filtering the range it now
// owns), the committed epoch is returned inside a *FlipCommittedError,
// routing serves at e+1, and retrying the named install converges the
// lagging shard.
func TestMigrationPostFlipFailureDoesNotAbort(t *testing.T) {
	g := twoCliques()
	const k = 2
	backends := make([]Backend, k)
	var donor *failingInstaller
	for s := 0; s < k; s++ {
		pc, err := SplitOne(g, k, s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(pc, k, testRouterConfig(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			donor = &failingInstaller{Worker: w}
			backends[s] = donor
		} else {
			backends[s] = w
		}
	}
	r, err := NewRouterBackends(backends, g.N(), g.N(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	donor.failFinal.Store(true)
	epoch, err := r.Rebalance(context.Background(), 0, 6, 0, 1)
	if err == nil {
		t.Fatal("rebalance with a failing final install reported clean success")
	}
	var fc *FlipCommittedError
	if !errors.As(err, &fc) || fc.Epoch != 1 {
		t.Fatalf("post-flip failure = %v, want *FlipCommittedError at epoch 1", err)
	}
	if epoch != 1 {
		t.Fatalf("returned epoch = %d alongside the post-flip error, want committed 1", epoch)
	}
	st := r.RebalanceStatus()
	if st.Epoch != 1 || st.Migrations != 1 || st.Aborted != 0 || st.Active {
		t.Fatalf("status after post-flip failure = %+v, want committed epoch 1 and no abort", st)
	}
	// The receiver keeps the flipped map and serves the moved range.
	if pm := backends[1].(*Worker).PartitionMap(); pm.Epoch != 1 {
		t.Fatalf("receiver at epoch %d after post-flip failure, want 1", pm.Epoch)
	}
	for _, v := range []int32{0, 2, 4} {
		if s := r.ShardOf(v); s != 1 {
			t.Fatalf("ShardOf(%d) = %d after the flip, want receiver 1", v, s)
		}
		if view, _, ok, err := r.ViewFor(v); err != nil || !ok || view.Shard != 1 {
			t.Fatalf("ViewFor(%d): shard=%d ok=%v err=%v", v, view.Shard, ok, err)
		}
	}

	// The remedy the error names: retry the idempotent install on the
	// lagging shard — not the whole migration.
	donor.failFinal.Store(false)
	if err := installMap(context.Background(), donor, r.PartitionMap(), false); err != nil {
		t.Fatalf("retried final install: %v", err)
	}
	if pm := donor.Worker.PartitionMap(); pm.Epoch != 1 {
		t.Fatalf("donor at epoch %d after the retried install, want 1", pm.Epoch)
	}
}

// TestRefreshHalos creates exactly the drift the sweep exists to bound:
// an odd-odd edge is added (fanned out to shard 1 only — shard 0 merely
// ghosts both endpoints), so shard 0's halo is stale until RefreshHalos
// re-ships it from the owner.
func TestRefreshHalos(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())

	// {1, 7} spans the two cliques; both odd, so only shard 1 gets it.
	if _, _, touched, err := r.Enqueue(context.Background(), [][2]int32{{1, 7}}, nil); err != nil {
		t.Fatal(err)
	} else if len(touched) != 1 || touched[0] != 1 {
		t.Fatalf("{1,7} touched %v, want only shard 1", touched)
	}
	flush(t, r)

	hasEdge := func(s int, u, v int32) bool {
		views, err := r.Views()
		if err != nil {
			t.Fatal(err)
		}
		lu, ok1 := views[s].Local(u)
		lv, ok2 := views[s].Local(v)
		return ok1 && ok2 && views[s].Snap.Graph.HasEdge(lu, lv)
	}
	if !hasEdge(1, 1, 7) {
		t.Fatal("owner shard 1 missing the new edge")
	}
	if hasEdge(0, 1, 7) {
		t.Fatal("shard 0 already has the ghost-ghost edge; the test no longer exercises drift")
	}

	if err := r.RefreshHalos(context.Background()); err != nil {
		t.Fatalf("RefreshHalos: %v", err)
	}
	flush(t, r)
	if !hasEdge(0, 1, 7) {
		t.Error("halo refresh did not re-ship the ghost-ghost edge to shard 0")
	}
	if st := r.RebalanceStatus(); st.HaloSyncs != 1 {
		t.Errorf("HaloSyncs = %d, want 1", st.HaloSyncs)
	}
	// The sweep never grows node sets: shard 0 must not have
	// materialized anything new (it already ghosted 1 and 7).
	views, _ := r.Views()
	if n := views[0].Snap.Graph.N(); n != 10 {
		t.Errorf("shard 0 grew to %d nodes during the sweep", n)
	}
}

// TestMigrationEquivalence is the post-flip acceptance gate from the
// issue: on a well-separated LFR benchmark, migrate a slice of a K=4
// deployment mid-traffic and compare against an identical router that
// never migrated — merged covers must agree with the unmigrated control
// and with a cold unsharded run at NMI ≥ 0.99, and seeded searches over
// the new owner's halo must match full-graph searches at ρ ≥ 0.8.
func TestMigrationEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OCA-run equivalence test")
	}
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}
	opt := core.Options{Seed: 11, C: c}
	cold, err := core.Run(g, opt)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	const k = 4
	newR := func() *Router {
		r, err := NewRouter(g, k, Config{OCA: opt, Debounce: time.Millisecond})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		t.Cleanup(r.Close)
		return r
	}
	r, control := newR(), newR()

	// Mid-traffic: net-zero edge toggles run against both routers while
	// r migrates, so the final graphs are identical and the only
	// difference between the two deployments is the handoff itself.
	toggles := [][2]int32{}
	g.Edges(func(u, v int32) bool {
		if (u+v)%41 == 0 {
			toggles = append(toggles, [2]int32{u, v})
		}
		return true
	})
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			e := toggles[i%len(toggles)]
			for _, rr := range []*Router{r, control} {
				if _, _, _, err := rr.Enqueue(context.Background(), nil, [][2]int32{e}); err != nil {
					t.Errorf("toggle remove: %v", err)
					return
				}
				if _, _, _, err := rr.Enqueue(context.Background(), [][2]int32{e}, nil); err != nil {
					t.Errorf("toggle add: %v", err)
					return
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	// Move the class-1 nodes of the lower half to shard 3.
	epoch := rebalance(t, r, 0, int32(n/2), 1, 3)
	close(done)
	wg.Wait()
	if epoch != 1 {
		t.Fatalf("epoch after migration = %d, want 1", epoch)
	}
	flush(t, r)
	flush(t, control)

	migrated := mergedGlobalCover(t, r)
	unmigrated := mergedGlobalCover(t, control)
	if nmi := metrics.NMI(migrated, unmigrated, n); nmi < 0.99 {
		t.Errorf("NMI(migrated, unmigrated control) = %.4f, want ≥ 0.99 (%d vs %d communities)",
			nmi, migrated.Len(), unmigrated.Len())
	}
	if nmi := metrics.NMI(migrated, cold.Cover, n); nmi < 0.99 {
		t.Errorf("NMI(migrated, cold) = %.4f, want ≥ 0.99 (%d vs %d communities)",
			nmi, migrated.Len(), cold.Cover.Len())
	}
	if truthNMI := metrics.NMI(migrated, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("migrated cover vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}

	// Search equivalence over the new owner's halo, seeded inside and
	// outside the migrated range.
	for _, seed := range []int32{5, 13, 77, 201} {
		full, _ := core.FindCommunity(g, seed, c, rand.New(rand.NewSource(5)), opt)
		view, local, ok, _ := r.ViewFor(seed)
		if !ok {
			t.Fatalf("ViewFor(%d) not ok", seed)
		}
		if want := r.PartitionMap().ShardOf(seed); view.Shard != want {
			t.Fatalf("seed %d served by shard %d, map says %d", seed, view.Shard, want)
		}
		shardRes, _ := core.FindCommunity(view.Snap.Graph, local, c, rand.New(rand.NewSource(5)), opt)
		global := cover.NewCommunity(view.Members(shardRes))
		if rho := metrics.Rho(cover.NewCommunity(full), global); rho < 0.8 {
			t.Errorf("seed %d: post-migration search ρ=%.3f vs full graph (sizes %d vs %d)",
				seed, rho, len(shardRes), len(full))
		}
	}
}

// TestMigrationsUnderConcurrentTraffic is the randomized property test:
// arbitrary migration sequences run while mutators toggle disjoint edge
// sets, and afterwards (a) every node is served by exactly the shard
// ShardOf names, and (b) the union of authoritative per-shard
// adjacencies equals a single-process control of the same final edge
// set. Run under -race via `make race`.
func TestMigrationsUnderConcurrentTraffic(t *testing.T) {
	bench, err := lfr.Generate(lfr.Params{
		N: 120, AvgDeg: 10, MaxDeg: 20, Mu: 0.05,
		MinCom: 20, MaxCom: 35, Seed: 3,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()
	const k = 3
	r, err := NewRouter(g, k, Config{OCA: core.Options{Seed: 1, C: 0.5}, Debounce: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	// control is the single-process truth: the final edge set after all
	// toggles, independent of interleaving because each mutator owns a
	// disjoint edge set and toggle counts are fixed per edge.
	control := make(map[[2]int32]bool)
	g.Edges(func(u, v int32) bool {
		control[normEdge([2]int32{u, v})] = true
		return true
	})
	var all [][2]int32
	for e := range control {
		all = append(all, e)
	}

	const mutators = 3
	var wg sync.WaitGroup
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := m; i < len(all); i += mutators {
				e := all[i]
				// Odd indexes toggle twice (net zero), even ones once
				// (net removal).
				times := 1 + i%2
				for tgl := 0; tgl < times; tgl++ {
					var err error
					if tgl%2 == 0 {
						_, _, _, err = r.Enqueue(context.Background(), nil, [][2]int32{e})
					} else {
						_, _, _, err = r.Enqueue(context.Background(), [][2]int32{e}, nil)
					}
					if err != nil {
						t.Errorf("mutator %d edge %v: %v", m, e, err)
						return
					}
				}
			}
		}(m)
	}
	for i := 0; i < len(all); i += 2 {
		control[all[i]] = false
	}

	// Arbitrary migration sequence, concurrent with the mutators.
	rng := rand.New(rand.NewSource(99))
	migrated := 0
	for migrated < 4 {
		lo := int32(rng.Intn(n))
		hi := lo + 1 + int32(rng.Intn(n-int(lo)))
		from, to := rng.Intn(k), rng.Intn(k)
		if from == to {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		_, err := r.Rebalance(ctx, lo, hi, from, to)
		cancel()
		if err != nil {
			// Only the owns-no-node rejection is legal here.
			if want := fmt.Sprintf("shard %d owns no node", from); !errors.Is(err, context.DeadlineExceeded) &&
				!strings.Contains(err.Error(), want) {
				t.Fatalf("migration [%d,%d) %d→%d failed: %v", lo, hi, from, to, err)
			}
			continue
		}
		migrated++
	}
	wg.Wait()
	flush(t, r)

	if st := r.RebalanceStatus(); st.Epoch != uint64(migrated) || st.Migrations != uint64(migrated) || st.Active {
		t.Fatalf("status after %d migrations = %+v", migrated, st)
	}

	// (a) Routing agreement: every surviving node is served by the
	// shard the map names, under the map's epoch.
	pm := r.PartitionMap()
	views, err := r.Views()
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < n; v++ {
		want := pm.ShardOf(v)
		view, local, ok, err := r.ViewFor(v)
		if err != nil {
			t.Fatalf("ViewFor(%d): %v", v, err)
		}
		if !ok {
			continue // every edge of v may have been removed
		}
		if view.Shard != want {
			t.Fatalf("node %d served by shard %d, ShardOf says %d", v, view.Shard, want)
		}
		if view.Global(local) != v {
			t.Fatalf("node %d: round trip through shard %d broken", v, view.Shard)
		}
	}

	// (b) Served-graph agreement: the union over shards of edges with
	// at least one owned endpoint must equal the control edge set.
	served := make(map[[2]int32]bool)
	for _, view := range views {
		m := view.Meta()
		view.Snap.Graph.Edges(func(lu, lv int32) bool {
			gu, gv := m.Locals[lu], m.Locals[lv]
			if pm.ShardOf(gu) == view.Shard || pm.ShardOf(gv) == view.Shard {
				served[normEdge([2]int32{gu, gv})] = true
			}
			return true
		})
	}
	for e, present := range control {
		if present && !served[e] {
			t.Errorf("edge %v present in control but not served by any owner", e)
		}
		if !present && served[e] {
			t.Errorf("edge %v removed in control but still served authoritatively", e)
		}
	}
	for e := range served {
		if _, known := control[e]; !known {
			t.Errorf("served edge %v never existed in control", e)
		}
	}
}
