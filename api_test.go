package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
)

// TestPublicAPIEndToEnd walks the whole public surface: build a graph,
// run all three algorithms, post-process, score, and round-trip through
// the file formats.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Two K6 cliques sharing two nodes.
	k, shared := 6, 2
	n := 2*k - shared
	b := repro.NewGraphBuilder(n)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(k - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()

	st := repro.Stats(g, true)
	if st.Nodes != n || st.Components != 1 {
		t.Fatalf("stats %+v", st)
	}

	c, err := repro.CParameter(g, repro.SpectralOptions{Seed: 1})
	if err != nil || c <= 0 || c >= 1 {
		t.Fatalf("c=%v err=%v", c, err)
	}
	lmin, err := repro.LambdaMin(g, repro.SpectralOptions{Seed: 1})
	if err != nil || lmin >= 0 {
		t.Fatalf("λmin=%v err=%v", lmin, err)
	}

	want := repro.NewCommunity([]int32{0, 1, 2, 3, 4, 5})
	truth := &repro.Cover{Communities: []repro.Community{
		want,
		repro.NewCommunity([]int32{4, 5, 6, 7, 8, 9}),
	}}

	ocaRes, err := repro.OCA(g, repro.OCAOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if th := repro.Theta(truth, ocaRes.Cover); th < 0.9 {
		t.Fatalf("OCA Θ=%v", th)
	}

	lfkRes, err := repro.LFK(g, repro.LFKOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lfkRes.Cover.Coverage(n) != 1 {
		t.Fatal("LFK should cover all nodes")
	}

	cpmRes, err := repro.CPM(g, repro.CPMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfRes, err := repro.CFinder(g, repro.CPMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cpmRes.Cover.Len() != cfRes.Cover.Len() {
		t.Fatal("CPM and CFinder disagree")
	}

	merged := repro.MergeCommunities(ocaRes.Cover, repro.MergeThreshold)
	full := repro.AssignOrphans(g, merged, repro.OrphanOptions{Rounds: 2})
	if full.Coverage(n) < merged.Coverage(n) {
		t.Fatal("orphan assignment lost coverage")
	}

	if f1 := repro.BestMatchF1(truth, ocaRes.Cover); f1 <= 0 {
		t.Fatalf("F1=%v", f1)
	}
	if om := repro.OmegaIndex(truth, truth, n); om != 1 {
		t.Fatalf("Ω(self)=%v", om)
	}
	if r := repro.Rho(want, want); r != 1 {
		t.Fatalf("ρ(self)=%v", r)
	}
	if fit := repro.Fitness(2, 1, 0.5); fit <= 0 {
		t.Fatalf("L=%v", fit)
	}

	// File round trips.
	var gbuf, cbuf bytes.Buffer
	if err := repro.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := repro.ReadGraph(&gbuf)
	if err != nil || g2.M() != g.M() {
		t.Fatalf("graph round trip: %v", err)
	}
	if err := repro.WriteCover(&cbuf, ocaRes.Cover); err != nil {
		t.Fatal(err)
	}
	cv2, err := repro.ReadCover(&cbuf)
	if err != nil || cv2.Len() != ocaRes.Cover.Len() {
		t.Fatalf("cover round trip: %v", err)
	}
}

func TestPublicGenerators(t *testing.T) {
	lb, err := repro.GenerateLFR(repro.LFRParams{
		N: 300, AvgDeg: 10, MaxDeg: 30, Mu: 0.2, MinCom: 15, MaxCom: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Graph.N() != 300 || lb.Communities.Len() == 0 {
		t.Fatal("LFR generation wrong")
	}
	if mu := repro.MeasureMixing(lb.Graph, lb.Memberships); mu < 0.05 || mu > 0.4 {
		t.Fatalf("mixing=%v", mu)
	}

	db, err := repro.GenerateDaisyTree(repro.DaisyTreeParams{
		Daisy: repro.DefaultDaisyParams(), K: 1, Gamma: 0.1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Flowers != 2 {
		t.Fatalf("flowers=%d", db.Flowers)
	}

	ba, err := repro.GenerateBarabasiAlbert(200, 3, 3)
	if err != nil || ba.N() != 200 {
		t.Fatalf("BA: %v", err)
	}
	er, err := repro.GenerateGNM(100, 300, 4)
	if err != nil || er.M() != 300 {
		t.Fatalf("GNM: %v", err)
	}
	rm, err := repro.GenerateRMAT(repro.RMATParams{Scale: 8, EdgeFactor: 4, Seed: 5})
	if err != nil || rm.N() != 256 {
		t.Fatalf("RMAT: %v", err)
	}
	wk, err := repro.GenerateWikipediaLike(8, 6)
	if err != nil || wk.N() != 256 {
		t.Fatalf("wiki: %v", err)
	}
}

// TestIndexLookup exercises the public inverted-index entry points.
func TestIndexLookup(t *testing.T) {
	cv := &repro.Cover{Communities: []repro.Community{
		repro.NewCommunity([]int32{0, 1, 2}),
		repro.NewCommunity([]int32{2, 3}),
	}}
	ix := repro.Index(cv, 5)
	tests := []struct {
		v    int32
		want []int32
	}{
		{0, []int32{0}},
		{2, []int32{0, 1}},
		{3, []int32{1}},
		{4, nil},
	}
	for _, tt := range tests {
		got := repro.Lookup(ix, tt.v)
		if len(got) != len(tt.want) {
			t.Fatalf("Lookup(%d) = %v, want %v", tt.v, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("Lookup(%d) = %v, want %v", tt.v, got, tt.want)
			}
		}
	}
	if !ix.Covered(2) || ix.Covered(4) {
		t.Error("Covered misreports")
	}
	if s := ix.Shared(1, 2); len(s) != 1 || s[0] != 0 {
		t.Errorf("Shared(1,2) = %v, want [0]", s)
	}
}

// TestGraphDeltaAndNMI covers the live-refresh public surface: the
// copy-on-write delta, the size-limited reader and the overlapping NMI.
func TestGraphDeltaAndNMI(t *testing.T) {
	b := repro.NewGraphBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()

	d := repro.NewGraphDelta(g)
	if err := d.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	ng := d.Apply()
	if g.M() != 2 || ng.M() != 2 || !ng.HasEdge(2, 3) || ng.HasEdge(0, 1) {
		t.Errorf("delta apply wrong: base m=%d, new m=%d", g.M(), ng.M())
	}

	if _, err := repro.ReadGraphLimits(bytes.NewReader([]byte("0 999999\n")), repro.GraphReadLimits{MaxNodes: 100}); err == nil {
		t.Error("ReadGraphLimits accepted a node id far over the limit")
	}

	a, err := repro.ReadCover(bytes.NewReader([]byte("0 1 2\n3 4 5\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got := repro.NMI(a, a, 6); got != 1 {
		t.Errorf("NMI(a, a) = %v, want 1", got)
	}
}

// TestRhoEdgeCases locks the exported Rho's totality contract: nil and
// empty communities are interchangeable and never produce NaN — the
// server's cache carry-forward calls it on communities that may have
// shrunk to empty across a rebuild.
func TestRhoEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		c, d repro.Community
		want float64
	}{
		{"nil nil", nil, nil, 1},
		{"nil empty", nil, repro.Community{}, 1},
		{"empty populated", repro.Community{}, repro.Community{1, 2}, 0},
		{"populated nil", repro.Community{1, 2}, nil, 0},
		{"overlap", repro.Community{1, 2, 3}, repro.Community{2, 3, 4}, 0.5},
	}
	for _, tc := range cases {
		got := repro.Rho(tc.c, tc.d)
		if math.IsNaN(got) || got != tc.want {
			t.Errorf("%s: Rho = %v, want %v", tc.name, got, tc.want)
		}
	}
}
