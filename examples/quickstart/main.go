// Quickstart: build a small social graph with two overlapping friend
// groups, run OCA, and print the communities it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two tightly knit groups of six that share two members (nodes 4
	// and 5) — the textbook overlapping-community picture from the
	// paper's introduction: a person belongs to both their friend group
	// and their work group.
	const (
		groupSize = 6
		shared    = 2
	)
	n := 2*groupSize - shared
	b := repro.NewGraphBuilder(n)
	for i := int32(0); i < groupSize; i++ {
		for j := i + 1; j < groupSize; j++ {
			b.AddEdge(i, j) // group A: nodes 0..5
		}
	}
	for i := int32(groupSize - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j) // group B: nodes 4..9
		}
	}
	g := b.Build()
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// The only parameter OCA derives from the data is c = -1/λmin.
	c, err := repro.CParameter(g, repro.SpectralOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inner-product parameter c = %.4f\n\n", c)

	res, err := repro.OCA(g, repro.OCAOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OCA tried %d seeds, found %d communities:\n", res.SeedsTried, res.Cover.Len())
	for i, community := range res.Cover.Communities {
		fmt.Printf("  community %d: %v\n", i, community)
	}

	// Nodes 4 and 5 should appear in both communities. The inverted
	// index answers per-node membership queries in O(memberships) —
	// the same lookup the ocad daemon serves over HTTP.
	ix := repro.Index(res.Cover, g.N())
	for _, v := range []int32{4, 5} {
		fmt.Printf("node %d belongs to %d communities (overlap!)\n", v, len(repro.Lookup(ix, v)))
	}
}
