# Single source of truth for build/test invocations — CI runs these
# same targets, so a green `make check` locally means a green CI run.

GO ?= go
RACE_PKGS := ./internal/core/... ./internal/search/... ./internal/graph/... ./internal/server/... ./internal/index/... ./internal/refresh/... ./internal/shard/... ./internal/postprocess/... ./internal/transport/... ./internal/wal/... ./internal/persist/... ./internal/resilience/... ./internal/faultinject/...
# Packages whose statement coverage must stay at or above COVER_MIN:
# the concurrent serving layer, where untested paths hide races, plus
# the correctness-critical incremental-rebuild primitives (index
# patching, incremental merge), the multi-process shard transport, and
# the durability layer (WAL framing, segment files, crash recovery).
COVER_PKGS := repro/internal/server repro/internal/refresh repro/internal/shard repro/internal/index repro/internal/postprocess repro/internal/transport repro/internal/wal repro/internal/persist repro/internal/resilience repro/internal/faultinject
COVER_MIN := 75

.PHONY: build test race vet fmt-check bench-smoke bench-shard bench-refresh bench-refresh-smoke bench-recovery bench-recovery-smoke bench-search bench-search-smoke bench-replica bench-replica-smoke fuzz-smoke cover-check examples test-cluster test-chaos test-chaos-smoke test-migrate-smoke run-cluster check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run over the concurrency-bearing packages (OCA's worker
# fan-out, the search state pool, the refresh worker's atomic snapshot
# swap, the HTTP handlers).
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# One iteration of every benchmark — checks they still compile and run,
# and emits the raw output for trend tooling. Redirect instead of tee so
# a failing benchmark fails the target (sh has no pipefail).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > BENCH_smoke.json; \
		status=$$?; cat BENCH_smoke.json; exit $$status

# Sharded vs unsharded batch-lookup throughput on an LFR graph: the
# router's fan-out overhead must stay small against the K=1 baseline.
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkRouterBatchLookup' -benchtime 2s ./internal/shard

# Incremental-rebuild gate on a ~50k-node LFR graph: rebuild latency vs
# mutation batch size, incremental vs full vs cold, with an NMI
# equivalence ladder. Fails unless the 100-mutation incremental rebuild
# is ≥5x faster than the cold rebuild path at NMI ≥ 0.98; writes the
# evidence to BENCH_refresh.json.
bench-refresh:
	$(GO) run ./cmd/refreshbench -out BENCH_refresh.json

# CI smoke version: small graph, paths exercised (mode + NMI floor
# enforced), latencies reported but not judged.
bench-refresh-smoke:
	$(GO) run ./cmd/refreshbench -short -out BENCH_refresh_smoke.json

# Restart-recovery gate on a ~50k-node LFR graph: crash recovery
# (newest segment mmap + WAL-tail replay) must be ≥5x faster than the
# cold ready-to-serve path (spectral c + full OCA) AND bit-identical to
# the pre-crash cover at the pre-crash generation; writes the evidence
# to BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/recoverybench -out BENCH_recovery.json

# CI smoke version: small graph, recovery exactness enforced, speedup
# reported but not judged.
bench-recovery-smoke:
	$(GO) run ./cmd/recoverybench -short -out BENCH_recovery_smoke.json

# Seeded-search hot-path gate: two identical serving stacks (result
# cache on vs off) under a skewed read/write load on a dense LFR
# graph. Fails unless the cached hot-seed p99 beats uncached by ≥5x at
# NMI-equivalent results, a 64-way identical-request stampede runs
# exactly one search, and a cache entry survives an untouched
# incremental publish; writes the evidence to BENCH_search.json.
bench-search:
	$(GO) run ./cmd/loadgen -out BENCH_search.json

# CI smoke version: small graph, functional gates (single search per
# stampede, carry-forward, NMI floor) enforced, latencies reported but
# not judged.
bench-search-smoke:
	$(GO) run ./cmd/loadgen -short -out BENCH_search_smoke.json

# Replicated-read gate: each shard served by a primary plus two
# replicas behind slot-bound capacity gates. Fails unless K×3 mixed
# read throughput is ≥2x K×1 at no worse tail latency, hedged requests
# cut the p99 of a tail-at-scale stall scenario ≥3x versus hedging
# disabled, and no read ever observes a generation regression; writes
# the evidence to BENCH_replica.json.
bench-replica:
	$(GO) run ./cmd/replicabench -out BENCH_replica.json

# CI smoke version: small graph, short legs, monotonicity + floor +
# hedge-activity gates enforced, speedup/tail ratios reported but not
# judged.
bench-replica-smoke:
	$(GO) run ./cmd/replicabench -short -out BENCH_replica_smoke.json

# Short fuzz runs over the untrusted-input parsers. The checked-in seed
# corpus (internal/graph/testdata/fuzz) always runs under plain `make
# test`; this target additionally mutates for a few seconds per target.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadAuto$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzPartitionMap$$' -fuzztime $(FUZZTIME) ./internal/shard

# Per-package coverage summary, failing if any COVER_PKGS package drops
# below COVER_MIN% of statements. Redirect instead of tee so a test
# failure fails the target (sh has no pipefail).
cover-check:
	@$(GO) test -cover ./... > cover.txt 2>&1; status=$$?; cat cover.txt; \
	if [ $$status -ne 0 ]; then rm -f cover.txt; exit $$status; fi; \
	fail=0; \
	for pkg in $(COVER_PKGS); do \
		pct=$$(awk -v p="$$pkg" '$$1=="ok" && $$2==p { for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { gsub("%","",$$i); print $$i } }' cover.txt); \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage found for $$pkg"; fail=1; \
		elif [ $$(printf '%.0f' "$$pct") -lt $(COVER_MIN) ]; then \
			echo "cover-check: $$pkg coverage $$pct% below $(COVER_MIN)%"; fail=1; \
		else echo "cover-check: $$pkg coverage $$pct% >= $(COVER_MIN)%"; fi; \
	done; \
	rm -f cover.txt; exit $$fail

# Multi-process acceptance gate: boots three real `ocad -serve-shard`
# processes plus a router process over the wire protocol
# (docs/PROTOCOL.md) and proves LFR NMI >= 0.99 vs an unsharded cold
# run, no 5xx during rebuilds, explicit degradation when a shard is
# SIGKILLed, disk recovery of the killed shard at its exact pre-kill
# generation (docs/PERSISTENCE.md), and clean SIGTERM drains.
test-cluster:
	$(GO) test -run 'TestMultiProcessCluster' -count=1 -v ./internal/transport

# Deterministic chaos gate: boots the real replicated multi-process
# cluster with seeded fault plans (internal/faultinject) and drives it
# through scripted fault storms — a blackholed replica must trip the
# breaker and reads must route around it without paying its timeout, a
# stalled primary must shed abandoned writes (deadline_exceeded), and
# a flapping shard must degrade and recover with monotone generations.
test-chaos:
	$(GO) test -run 'TestChaosCluster' -count=1 -v ./internal/transport

# First storm only (breaker trip + routing around the dead member) —
# the cheap PR-gate variant CI runs on every push.
test-chaos-smoke:
	$(GO) test -run 'TestChaosCluster' -short -count=1 -v ./internal/transport

# Live-rebalancing smoke gate: a real multi-process cluster runs one
# mid-traffic partition-map migration (two-generation handoff) with
# zero 5xx, wire-level epoch agreement afterwards, and the NMI >= 0.99
# equivalence gate on the post-flip cover. The crash/abort legs run in
# the full `make test-cluster` gate.
test-migrate-smoke:
	$(GO) test -run 'TestMultiProcessClusterMigration' -short -count=1 -v ./internal/transport

# Local dev convenience: spawn SHARDS shard-server processes plus a
# router on this machine (generating a demo LFR graph when GRAPH is
# unset); Ctrl-C tears everything down.
SHARDS ?= 3
run-cluster:
	SHARDS=$(SHARDS) GRAPH=$(GRAPH) sh scripts/run-cluster.sh

# Each example is a main package with no test files except quickstart;
# build them all so they cannot rot invisibly.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; $(GO) build -o /dev/null ./$$d || exit 1; done

check: build vet fmt-check test race cover-check examples

clean:
	rm -f BENCH_smoke.json BENCH_refresh_smoke.json BENCH_recovery.json BENCH_recovery_smoke.json BENCH_search_smoke.json BENCH_replica_smoke.json cover.txt
