package cpm

import (
	"fmt"
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
)

// MaximalCliques enumerates all maximal cliques of g with Bron–Kerbosch
// and pivoting, returned as sorted member slices. It aborts with an
// error once more than maxCliques cliques are found (the count can be
// exponential), or with ErrCanceled when cancel fires.
func MaximalCliques(g *graph.Graph, maxCliques int, cancel func() bool) ([][]int32, error) {
	if maxCliques <= 0 {
		maxCliques = 5_000_000
	}
	var out [][]int32
	n := g.N()
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	var r []int32
	var bk func(r []int32, p, x []int32) error
	bk = func(r []int32, p, x []int32) error {
		if len(p) == 0 && len(x) == 0 {
			if len(out) >= maxCliques {
				return fmt.Errorf("cpm: maximal clique enumeration exceeded %d cliques", maxCliques)
			}
			if cancel != nil && len(out)%1024 == 0 && cancel() {
				return ErrCanceled
			}
			clique := make([]int32, len(r))
			copy(clique, r)
			sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
			out = append(out, clique)
			return nil
		}
		// Pivot: the vertex of P ∪ X with most neighbors in P.
		pivot := int32(-1)
		best := -1
		for _, cand := range [][]int32{p, x} {
			for _, u := range cand {
				cnt := intersectCount(p, g.Neighbors(u))
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		pivotNb := g.Neighbors(pivot)
		// Iterate over a copy: p mutates during the loop.
		cands := subtractSorted(p, pivotNb)
		for _, v := range cands {
			nb := g.Neighbors(v)
			if err := bk(append(r, v), intersectSorted(p, nb), intersectSorted(x, nb)); err != nil {
				return err
			}
			p = removeSorted(p, v)
			x = insertSorted(x, v)
		}
		return nil
	}
	if n == 0 {
		return nil, nil
	}
	if cancel != nil && cancel() {
		return nil, ErrCanceled
	}
	if err := bk(r, p, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// RunCFinder reproduces the CFinder tool's method (Palla et al. 2005):
// enumerate all maximal cliques, keep those of size ≥ k, and connect two
// of them when they share at least k−1 nodes; communities are the node
// unions of the connected components. This is provably equivalent to
// k-clique percolation (Run), but its clique–clique overlap phase is
// quadratic in the number of maximal cliques — the cost that makes
// CFinder "prohibitively slow" on large graphs in the paper's Fig. 5.
func RunCFinder(g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.K < 3 {
		return nil, fmt.Errorf("cpm: k=%d, need k >= 3", opt.K)
	}
	all, err := MaximalCliques(g, opt.MaxCliques, opt.Cancel)
	if err != nil {
		return nil, err
	}
	var cliques [][]int32
	for _, c := range all {
		if len(c) >= opt.K {
			cliques = append(cliques, c)
		}
	}
	dsu := ds.NewDSU(len(cliques))
	// The quadratic clique-clique overlap matrix: this is the faithful
	// CFinder bottleneck; do not "optimize" it away, Fig. 5 measures it.
	for i := 0; i < len(cliques); i++ {
		if opt.Cancel != nil && i%256 == 0 && opt.Cancel() {
			return nil, ErrCanceled
		}
		for j := i + 1; j < len(cliques); j++ {
			if dsu.Same(i, j) {
				continue
			}
			if intersectCount(cliques[i], cliques[j]) >= opt.K-1 {
				dsu.Union(i, j)
			}
		}
	}
	groups := map[int]map[int32]struct{}{}
	for i, c := range cliques {
		root := dsu.Find(i)
		set, ok := groups[root]
		if !ok {
			set = make(map[int32]struct{})
			groups[root] = set
		}
		for _, v := range c {
			set[v] = struct{}{}
		}
	}
	return &Result{Cover: coverFromSets(groups), Cliques: int64(len(cliques))}, nil
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectSorted returns a ∩ b as a new sorted slice.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subtractSorted returns a \ b as a new sorted slice.
func subtractSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

// removeSorted removes v from sorted slice a in place (a must contain v
// at most once).
func removeSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i < len(a) && a[i] == v {
		return append(a[:i], a[i+1:]...)
	}
	return a
}

// insertSorted inserts v into sorted slice a keeping order.
func insertSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	return a
}
