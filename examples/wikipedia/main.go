// Wikipedia-scale run: generate the R-MAT substitute for the paper's
// Wikipedia link graph (Section V.B: 16 986 429 nodes, 176 454 501
// edges, "all relevant communities in less than 3.25 hours") and run OCA
// on it, reporting wall-clock time and throughput.
//
// The default scale 16 (65 536 nodes, ≈600 k edges) finishes in seconds;
// raise -scale toward 24 to approach the paper's node count if you have
// the memory and patience.
//
//	go run ./examples/wikipedia [-scale 16] [-workers 0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 16, "log2 of the node count")
	workers := flag.Int("workers", 0, "parallel seed searches (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("generating R-MAT scale=%d (Graph500 parameters, edge factor 10)...\n", *scale)
	start := time.Now()
	g, err := repro.GenerateWikipediaLike(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges (generated in %s)\n",
		g.N(), g.M(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	res, err := repro.OCA(g, repro.OCAOptions{
		Seed:    *seed,
		Workers: *workers,
		Halting: repro.OCAHalting{TargetCoverage: 0.8, Patience: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	stats := res.Cover.Stats(g.N())
	fmt.Printf("\nOCA finished in %s (c=%.4f, %d seeds, %d greedy steps)\n",
		elapsed.Round(time.Millisecond), res.C, res.SeedsTried, res.Steps)
	fmt.Printf("communities: %d (sizes %d..%d, mean %.1f)\n",
		stats.Communities, stats.MinSize, stats.MaxSize, stats.MeanSize)
	fmt.Printf("coverage: %.1f%% of nodes, %d nodes in ≥2 communities\n",
		100*res.Cover.Coverage(g.N()), stats.OverlapNodes)
	fmt.Printf("throughput: %.0f edges/second\n", float64(g.M())/elapsed.Seconds())
	fmt.Println("\npaper reference: 16 986 429 nodes / 176 454 501 edges in < 3.25 h")
	fmt.Println("(2.83 GHz single core, 2010; ≈15 000 edges/second)")
}
