package core
