package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/refresh"
)

func testRouterConfig() Config {
	return Config{
		OCA:      core.Options{Seed: 1, C: 0.5},
		Debounce: time.Millisecond,
	}
}

func newTestRouter(t testing.TB, k int, cfg Config) *Router {
	t.Helper()
	r, err := NewRouter(twoCliques(), k, cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func flush(t testing.TB, r *Router) GenVector {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gv, err := r.Flush(ctx, nil)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return gv
}

// globalCommunities returns a view's communities translated to global
// member sets.
func globalCommunities(v View) [][]int32 {
	out := make([][]int32, v.Snap.Cover.Len())
	for i, c := range v.Snap.Cover.Communities {
		out[i] = v.Members(c)
	}
	return out
}

func TestRouterServesBothCliques(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())
	if r.NumShards() != 2 || !r.Ready() {
		t.Fatalf("NumShards=%d Ready=%v", r.NumShards(), r.Ready())
	}
	// Every node must resolve through its owning shard and belong to at
	// least one community containing one of its clique-mates.
	for v := int32(0); v < 10; v++ {
		view, local, ok, err := r.ViewFor(v)
		if err != nil || !ok {
			t.Fatalf("ViewFor(%d): ok=%v err=%v", v, ok, err)
		}
		if view.Shard != int(v)%2 {
			t.Fatalf("ViewFor(%d) routed to shard %d", v, view.Shard)
		}
		if view.Global(local) != v {
			t.Fatalf("round trip %d → %d → %d", v, local, view.Global(local))
		}
		cis := view.Snap.Index.Communities(local)
		if len(cis) == 0 {
			t.Errorf("node %d has no communities in its owning shard", v)
		}
	}
	// The overlap nodes 4 and 5 should sit in two communities in their
	// owning shards (each shard's halo sees both cliques in full).
	for _, v := range []int32{4, 5} {
		view, local, _, _ := r.ViewFor(v)
		if got := len(view.Snap.Index.Communities(local)); got < 2 {
			t.Errorf("overlap node %d: %d communities in shard %d, want ≥ 2", v, got, view.Shard)
		}
	}
	// Member lists translate to valid global ids.
	views, _ := r.Views()
	for _, view := range views {
		for _, c := range globalCommunities(view) {
			for _, gv := range c {
				if gv < 0 || gv >= 10 {
					t.Fatalf("shard %d community member %d out of global range", view.Shard, gv)
				}
			}
		}
	}
	// Unknown ids resolve to !ok.
	if _, _, ok, _ := r.ViewFor(-1); ok {
		t.Error("ViewFor(-1) ok")
	}
	if _, _, ok, _ := r.ViewFor(99); ok {
		t.Error("ViewFor(99) ok")
	}
}

func TestRouterEnqueueValidation(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())
	cases := []struct {
		name string
		add  [][2]int32
		rm   [][2]int32
	}{
		{"self loop", [][2]int32{{3, 3}}, nil},
		{"negative", [][2]int32{{-1, 2}}, nil},
		{"out of range add (growth off)", [][2]int32{{0, 10}}, nil},
		{"out of range remove", nil, [][2]int32{{0, 99}}},
	}
	for _, tc := range cases {
		if _, queued, _, err := r.Enqueue(context.Background(), tc.add, tc.rm); err == nil || queued != 0 {
			t.Errorf("%s: err=%v queued=%d, want rejection", tc.name, err, queued)
		}
	}
	for _, st := range r.Statuses() {
		if st.Status.Pending != 0 {
			t.Errorf("shard %d: rejected batches left %d pending ops", st.Shard, st.Status.Pending)
		}
	}
}

// TestRouterBacklogFullRejectsWholeBatch fills one shard's backlog and
// then posts a cross-shard batch: admission must be atomic — the
// healthy shard gets nothing either, so a 503 really means "retry the
// whole batch" and the two sides of a cross-shard edge can't diverge.
func TestRouterBacklogFullRejectsWholeBatch(t *testing.T) {
	cfg := testRouterConfig()
	cfg.MaxPending = 2
	cfg.Debounce = time.Hour // nothing drains during the test
	r := newTestRouter(t, 2, cfg)
	// Two same-shard ops fill shard 0 ({0,6} and {2,8} are both even).
	if _, _, _, err := r.Enqueue(context.Background(), [][2]int32{{0, 6}, {2, 8}}, nil); err != nil {
		t.Fatalf("fill shard 0: %v", err)
	}
	// A cross-shard edge needs one slot on each shard; shard 0 has none.
	if _, _, _, err := r.Enqueue(context.Background(), [][2]int32{{0, 9}}, nil); !strings.Contains(fmt.Sprint(err), refresh.ErrBacklogFull.Error()) {
		t.Fatalf("over-full cross-shard enqueue: err = %v, want backlog-full", err)
	}
	sts := r.Statuses()
	if sts[0].Status.Pending != 2 || sts[1].Status.Pending != 0 {
		t.Errorf("pending after rejection = (%d, %d), want (2, 0): nothing from the rejected batch may land",
			sts[0].Status.Pending, sts[1].Status.Pending)
	}
}

// TestRouterLagVisibleInGenVector holds one shard's rebuild back via a
// long debounce: after a same-shard mutation the generation vector
// still shows the old generation for that shard (the lag a client can
// detect), and only the flush advances it — and only for the mutated
// shard.
func TestRouterLagVisibleInGenVector(t *testing.T) {
	cfg := testRouterConfig()
	cfg.Debounce = time.Hour // rebuilds only happen on Flush
	r := newTestRouter(t, 2, cfg)
	before := flushlessGens(r)

	// {0, 6} is a new edge living entirely on shard 0 (both even).
	gv, queued, touched, err := r.Enqueue(context.Background(), [][2]int32{{0, 6}}, nil)
	if err != nil || queued != 1 {
		t.Fatalf("Enqueue: queued=%d err=%v", queued, err)
	}
	for s, e := range gv {
		if e.Gen != before[s] {
			t.Errorf("enqueue-time vector shard %d gen %d, want pre-mutation %d", s, e.Gen, before[s])
		}
	}
	if len(touched) != 1 || touched[0] != 0 {
		t.Fatalf("touched = %v, want only shard 0", touched)
	}
	if st := r.Statuses()[0]; st.Status.Pending != 1 {
		t.Fatalf("shard 0 pending = %d, want 1 (lagging)", st.Status.Pending)
	}

	after := flush(t, r)
	if after[0].Gen != before[0]+1 {
		t.Errorf("shard 0 gen %d after flush, want %d", after[0].Gen, before[0]+1)
	}
	if after[1].Gen != before[1] {
		t.Errorf("shard 1 gen advanced to %d without mutations", after[1].Gen)
	}
}

func flushlessGens(r *Router) map[int]uint64 {
	out := make(map[int]uint64)
	views, _ := r.Views()
	for _, v := range views {
		out[v.Shard] = v.Snap.Gen
	}
	return out
}

// TestRouterOneShardFailingOthersAdvance injects a failing OCA (invalid
// c) into shard 1's rebuild worker: its rebuilds publish the new graph
// with the previous cover carried over and a recorded error, while
// shard 0 keeps advancing with fresh covers. Reads never fail.
func TestRouterOneShardFailingOthersAdvance(t *testing.T) {
	cfg := testRouterConfig()
	cfg.workerOCA = func(shard int, opt core.Options) core.Options {
		if shard == 1 {
			opt.C = 2 // out of range: every core.Run fails
		}
		return opt
	}
	r := newTestRouter(t, 2, cfg)

	// A cross-shard edge mutates both shards.
	if _, _, _, err := r.Enqueue(context.Background(), [][2]int32{{0, 9}}, nil); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	gv := flush(t, r)
	if gv[0].Gen != 2 || gv[1].Gen != 2 {
		t.Fatalf("generations %v, want both bumped to 2", gv)
	}
	sts := r.Statuses()
	if sts[0].Status.LastErr != "" {
		t.Errorf("healthy shard 0 reports error %q", sts[0].Status.LastErr)
	}
	if !strings.Contains(sts[1].Status.LastErr, "out of range") {
		t.Errorf("failing shard 1 LastErr = %q, want a c-range error", sts[1].Status.LastErr)
	}
	// Shard 1 still serves a cover (carried over) and its graph has the
	// new edge; shard 0's cover reflects a fresh run.
	views, _ := r.Views()
	if views[1].Snap.Cover.Len() == 0 {
		t.Error("failing shard dropped its carried-over cover")
	}
	l0, ok0 := views[1].Local(9)
	l9, ok9 := views[1].Local(0)
	if !ok0 || !ok9 || !views[1].Snap.Graph.HasEdge(l0, l9) {
		t.Error("failing shard's graph is missing the applied edge")
	}
}

// TestRouterGrowth adds an edge naming a brand-new global node: the
// owning shard materializes it as an owned node, the other endpoint's
// shard gains it as a ghost, and lookups resolve after the flush.
func TestRouterGrowth(t *testing.T) {
	cfg := testRouterConfig()
	cfg.MaxNodes = 64
	r := newTestRouter(t, 2, cfg)

	if _, _, ok, _ := r.ViewFor(12); ok {
		t.Fatal("unmaterialized node 12 resolved before growth")
	}
	// 12 is even → owned by shard 0; endpoint 9 is odd → shard 1 gains
	// 12 as a ghost.
	if _, queued, _, err := r.Enqueue(context.Background(), [][2]int32{{9, 12}}, nil); err != nil || queued != 1 {
		t.Fatalf("growth enqueue: queued=%d err=%v", queued, err)
	}
	flush(t, r)

	view, local, ok, _ := r.ViewFor(12)
	if !ok || view.Shard != 0 {
		t.Fatalf("ViewFor(12) after growth: ok=%v shard=%d", ok, view.Shard)
	}
	if g9, ok9 := view.Local(9); !ok9 || !view.Snap.Graph.HasEdge(local, g9) {
		t.Errorf("shard 0 missing grown edge {12, 9}")
	}
	v1, l12, ok, _ := r.ViewFor(9)
	if !ok {
		t.Fatal("ViewFor(9) broken after growth")
	}
	if g12, okg := v1.Local(12); !okg {
		t.Error("shard 1 did not materialize ghost 12")
	} else if !v1.Snap.Graph.HasEdge(l12, g12) {
		t.Error("shard 1 missing ghost edge {9, 12}")
	}
	if r.NodeBound() != 13 {
		t.Errorf("NodeBound = %d, want 13", r.NodeBound())
	}
	// Beyond MaxNodes is still rejected.
	if _, _, _, err := r.Enqueue(context.Background(), [][2]int32{{0, 64}}, nil); err == nil {
		t.Error("enqueue past MaxNodes succeeded")
	}
}

// TestRouterConcurrentMutatorsAndFanOutReaders is the router-level race
// suite: mutators hammer same-shard and cross-shard edges while readers
// fan out over all shards asserting per-shard generation monotonicity
// and internal consistency of every view. Run under -race via `make
// race`.
func TestRouterConcurrentMutatorsAndFanOutReaders(t *testing.T) {
	cfg := testRouterConfig()
	cfg.Debounce = 100 * time.Microsecond
	r := newTestRouter(t, 2, cfg)
	const mutators, readers, reps = 3, 6, 60
	var wg sync.WaitGroup
	errs := make(chan error, (mutators+readers)*2)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				// Alternate cross-shard and same-shard toggles.
				e := [2]int32{int32(m % 4), int32(6 + (i+m)%4)}
				var err error
				if i%2 == 0 {
					_, _, _, err = r.Enqueue(context.Background(), [][2]int32{e}, nil)
				} else {
					_, _, _, err = r.Enqueue(context.Background(), nil, [][2]int32{e})
				}
				if err != nil {
					errs <- fmt.Errorf("mutator %d: %v", m, err)
					return
				}
			}
		}(m)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			last := make([]uint64, r.NumShards())
			for i := 0; i < reps; i++ {
				views, _ := r.Views()
				for s, view := range views {
					if view.Snap.Gen < last[s] {
						errs <- fmt.Errorf("reader %d: shard %d generation went backwards: %d after %d", rd, s, view.Snap.Gen, last[s])
						return
					}
					last[s] = view.Snap.Gen
					meta := view.Meta()
					if meta == nil || len(meta.Locals) != view.Snap.Graph.N() {
						errs <- fmt.Errorf("reader %d: shard %d meta/locals inconsistent with graph", rd, s)
						return
					}
					if view.Snap.Index.N() != view.Snap.Graph.N() {
						errs <- fmt.Errorf("reader %d: shard %d index over %d nodes, graph has %d", rd, s, view.Snap.Index.N(), view.Snap.Graph.N())
					}
					// Spot-check a lookup against the view's own cover.
					if local, ok := view.Local(int32(4 + s)); ok {
						for _, ci := range view.Snap.Index.Communities(local) {
							if !view.Snap.Cover.Communities[ci].Contains(local) {
								errs <- fmt.Errorf("reader %d: shard %d index/cover disagree", rd, s)
								return
							}
						}
					}
				}
			}
		}(rd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	gv := flush(t, r)
	for s, st := range r.Statuses() {
		if st.Status.Pending != 0 || gv[s].Gen != st.Status.Gen {
			t.Errorf("post-drain shard %d: %+v vs vector %v", s, st.Status, gv)
		}
	}
}

func TestRouterCloseRejectsMutationsKeepsReads(t *testing.T) {
	r := newTestRouter(t, 2, testRouterConfig())
	r.Close()
	if _, _, _, err := r.Enqueue(context.Background(), [][2]int32{{0, 9}}, nil); err == nil {
		t.Error("Enqueue after Close succeeded")
	} else if !strings.Contains(err.Error(), refresh.ErrClosed.Error()) && err != refresh.ErrClosed {
		t.Errorf("Enqueue after Close: %v, want ErrClosed", err)
	}
	views, err := r.Views()
	if err != nil || len(views) != 2 || views[0].Snap == nil {
		t.Errorf("reads broken after Close: %v", err)
	}
	r.Close() // idempotent
}
