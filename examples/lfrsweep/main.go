// LFR sweep: generate LFR benchmarks across the mixing parameter µ and
// watch OCA's recovered structure degrade as communities blur — a small
// interactive version of the paper's Figure 2.
//
//	go run ./examples/lfrsweep [-n 1000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 1000, "graph size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("%6s %10s %10s %12s %12s %12s\n",
		"mu", "realized", "theta", "communities", "planted", "coverage")
	for _, mu := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		bench, err := repro.GenerateLFR(repro.LFRParams{
			N: *n, AvgDeg: 20, MaxDeg: 50, Mu: mu,
			MinCom: 20, MaxCom: 50, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		g := bench.Graph

		res, err := repro.OCA(g, repro.OCAOptions{Seed: *seed + 1})
		if err != nil {
			log.Fatal(err)
		}
		// Orphan assignment completes the cover, as the paper's quality
		// experiments do.
		cv := repro.AssignOrphans(g, res.Cover, repro.OrphanOptions{Rounds: 3})

		fmt.Printf("%6.2f %10.3f %10.3f %12d %12d %11.1f%%\n",
			mu,
			repro.MeasureMixing(g, bench.Memberships),
			repro.Theta(bench.Communities, cv),
			cv.Len(),
			bench.Communities.Len(),
			100*cv.Coverage(g.N()))
	}
	fmt.Println("\nExpected (paper, Fig. 2): Θ ≈ 1 up to µ = 0.5, reliable to ≈ 0.7,")
	fmt.Println("collapsing as µ approaches 0.8 (no community structure remains).")
}
