package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain text edge list: a header line
// "# nodes <n> edges <m>" followed by one "u v" pair per line with u < v.
// The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var writeErr error
	g.Edges(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' other than the header, and blank lines, are ignored. If no
// header is present the node count is inferred as max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var pairs [][2]int32
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn int
			var hm int64
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two node ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		iu, iv := int32(u), int32(v)
		if iu > maxID {
			maxID = iu
		}
		if iv > maxID {
			maxID = iv
		}
		pairs = append(pairs, [2]int32{iu, iv})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: node id %d exceeds declared node count %d", maxID, n)
	}
	return FromEdges(n, pairs), nil
}
