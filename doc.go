// Package repro is an open-source Go reproduction of "Overlapping
// Community Search for Social Networks" (Padrol-Sureda, Perarnau-Llobet,
// Pfeifle, Muntés-Mulero; ICDE 2010): the OCA algorithm for detecting
// overlapping communities in large graphs, together with everything the
// paper's evaluation depends on.
//
// The root package is the public API. It wraps:
//
//   - OCA itself: greedy local maximization of the directed-Laplacian
//     fitness L(S) = s − √(s(s−1)) + 2·c·Ein(S)·(1 − (s−2)/√(s(s−1)))
//     over node sets, with c = −1/λmin computed by the power method, plus
//     the paper's ρ-merge and orphan-assignment post-processing.
//   - The two baselines the paper compares against: LFK (Lancichinetti,
//     Fortunato, Kertész 2008) and CFinder (Palla et al. 2005, k-clique
//     percolation).
//   - The benchmark generators: LFR graphs (with the overlapping on/om
//     extension), the paper's daisy trees, a density-matched synthetic
//     substitute for the Wikipedia link graph, and general R-MAT,
//     Barabási–Albert and G(n,m) generators.
//   - The paper's quality metrics ρ (eq. V.1) and Θ (eq. V.2), plus
//     best-match F1, the Omega index and the overlapping NMI
//     (Lancichinetti–Fortunato–Kertész 2009) as cross-checks.
//
// A minimal end-to-end run:
//
//	b := repro.NewGraphBuilder(8)
//	// ... b.AddEdge(u, v) for every edge ...
//	res, err := repro.OCA(b.Build(), repro.OCAOptions{Seed: 1})
//	if err != nil { ... }
//	for _, community := range res.Cover.Communities { ... }
//
// Beyond batch runs, the package supports the paper's titular *search*
// workload: Index builds an inverted node→community index over a cover
// (CSR-style, O(memberships) Lookup, safe for concurrent readers), and
// cmd/ocad is a long-running daemon serving it over HTTP — GET
// /v1/node/{id}/communities answers "which communities does this node
// belong to?", POST /v1/search runs one seeded community search with
// per-request options against a bounded pool of reusable search states,
// GET /v1/cover/stats summarizes the served cover, and GET /healthz
// reports liveness. The served graph is live: POST /v1/edges mutations
// are applied copy-on-write (GraphDelta) by a background worker that
// re-runs OCA warm-started from unaffected communities and atomically
// swaps in the next generation-numbered snapshot, while POST
// /v1/nodes/communities answers batch lookups from a single snapshot
// and GET /v1/cover/export streams the cover as NDJSON. See README.md
// for curl examples.
//
// The daemon scales out: with -shards K the graph and its cover are
// partitioned across K node-disjoint shards with ghost halos (boundary
// communities score exactly as unsharded), each kept live by its own
// refresh worker behind a fan-out router, and the same deployment runs
// multi-process — one `ocad -serve-shard i` process per shard behind a
// versioned wire protocol, with an `ocad -shard-addrs ...` router
// serving the unchanged public API over mirrored per-shard snapshots.
// docs/ARCHITECTURE.md maps the layers and seams; docs/PROTOCOL.md is
// the normative wire protocol.
//
// The experiment harness reproducing every table and figure of the
// paper's Section V lives in cmd/ocabench; runnable demonstrations live
// under examples/. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package repro
