package transport

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/refresh"
	"repro/internal/shard"
)

// ReplicaConfig tunes a replica server.
type ReplicaConfig struct {
	// Client tunes the mirror client that follows the primary (timeouts,
	// poll cadence — the poll interval bounds replication lag).
	Client ClientConfig
	// ConnectTimeout bounds the initial handshake with the primary
	// (default 60s) — like a router, a replica may start before the
	// primary's cover finishes building.
	ConnectTimeout time.Duration
	// MaxRequestBody caps lookup body sizes. Default 32 MiB.
	MaxRequestBody int64
}

// ReplicaServer is the `ocad -follow` role: a read-only mirror of one
// primary shard server. It rides the same resolution a router uses —
// health polls plus `/shard/v1/snapshot?since` catch-up — and re-serves
// the mirrored generation behind the identical wire surface
// (ReplicaRoutes), so routers consume a replica exactly like a primary
// for reads. Writes (apply, flush) answer 503/not_primary; when the
// primary dies the replica keeps serving its last mirrored generation,
// which is precisely the degraded-reads contract replication exists
// for.
type ReplicaServer struct {
	c       *Client
	primary string
	shardID int
	k       int

	globalNodes int
	maxNodes    int
	maxBody     int64
	draining    atomic.Bool
	shed        atomic.Uint64
}

// NewReplica connects to a primary shard server, mirrors its snapshot,
// and starts the background follow poller. Chained replication
// (following another replica) is refused: lag would compound silently
// and the `?since` table-prefix guarantees only hold one hop from the
// writer.
func NewReplica(ctx context.Context, primaryAddr string, cfg ReplicaConfig) (*ReplicaServer, error) {
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 60 * time.Second
	}
	if cfg.MaxRequestBody <= 0 {
		cfg.MaxRequestBody = 32 << 20
	}
	base := normalizeAddr(primaryAddr)
	ctx, cancel := context.WithTimeout(ctx, cfg.ConnectTimeout)
	defer cancel()

	// Probe with a throwaway client first: the shard identity (shard
	// index, partition width) must be known before the real mirror
	// client can be constructed.
	probe := newClient(base, 0, 0, cfg.Client)
	var h Health
	for {
		hctx, hcancel := context.WithTimeout(ctx, probe.reqTO)
		var err error
		h, err = probe.health(hctx)
		hcancel()
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("replica: probing primary %s: %w", primaryAddr, err)
		case <-time.After(250 * time.Millisecond):
		}
	}
	if h.Protocol != Version {
		return nil, fmt.Errorf("replica: primary %s speaks protocol %d, this build speaks %d", primaryAddr, h.Protocol, Version)
	}
	if h.Role == RoleReplica {
		return nil, fmt.Errorf("replica: %s is itself a replica (of %s): chained replication not supported", primaryAddr, h.Primary)
	}

	c := newClient(base, h.Shard, h.Shards, cfg.Client)
	if _, err := c.handshake(ctx); err != nil {
		c.Close()
		return nil, fmt.Errorf("replica: mirroring primary %s: %w", primaryAddr, err)
	}
	c.startPolling()
	return &ReplicaServer{
		c:           c,
		primary:     base,
		shardID:     h.Shard,
		k:           h.Shards,
		globalNodes: h.GlobalNodes,
		maxNodes:    h.MaxNodes,
		maxBody:     cfg.MaxRequestBody,
	}, nil
}

// Primary returns the upstream's base URL.
func (s *ReplicaServer) Primary() string { return s.primary }

// Shard returns the shard index this replica mirrors.
func (s *ReplicaServer) Shard() int { return s.shardID }

// Gen returns the mirrored generation (0 before the first sync).
func (s *ReplicaServer) Gen() uint64 { return s.c.MirrorGen() }

// SetDraining flips the shutdown gate: while draining the replica
// advertises it in health so replica sets route new reads elsewhere;
// in-flight reads finish against the mirror.
func (s *ReplicaServer) SetDraining(v bool) { s.draining.Store(v) }

// Close stops the follow poller.
func (s *ReplicaServer) Close() { s.c.Close() }

// protocolMiddleware stamps and enforces the protocol-version header
// and imposes the client's Ocad-Deadline-Ms budget on the handler
// context — shared by the primary and replica servers so both surfaces
// negotiate identically. Requests whose budget is already spent are
// shed before dispatch (504, counted in shed).
func protocolMiddleware(mux http.Handler, shed *atomic.Uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderProtocol, strconv.Itoa(Version))
		if v := r.Header.Get(HeaderProtocol); v != "" && v != strconv.Itoa(Version) {
			writeCode(w, http.StatusBadRequest, CodeProtocolMismatch,
				"protocol version %s not supported, this server speaks %d", v, Version)
			return
		}
		r, cancel, ok := withDeadlineHeader(w, r)
		if !ok {
			return
		}
		defer cancel()
		if r.Context().Err() != nil {
			shed.Add(1)
			writeCode(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"caller deadline expired before dispatch")
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// Handler returns the replica's http.Handler — exactly the
// ReplicaRoutes manifest.
func (s *ReplicaServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	mux.HandleFunc("GET "+PathSnapshot, s.handleSnapshot)
	mux.HandleFunc("POST "+PathApply, s.handleNotPrimary)
	mux.HandleFunc("POST "+PathFlush, s.handleNotPrimary)
	mux.HandleFunc("POST "+PathLookup, s.handleLookup)
	mux.HandleFunc("GET "+PathMap, s.handleMapGet)
	mux.HandleFunc("POST "+PathMap, s.handleNotPrimary)
	mux.HandleFunc("POST "+PathIngest, s.handleNotPrimary)
	return protocolMiddleware(mux, &s.shed)
}

// mirroredMap is the partition map this replica re-advertises: the
// primary's last advertised map, or the epoch-0 base when the primary
// never advertised one.
func (s *ReplicaServer) mirroredMap() MapResponse {
	if mr := s.c.RemoteMap(); mr != nil {
		return *mr
	}
	pm, _ := shard.NewPartitionMap(s.k)
	return MapResponse{Epoch: 0, Map: pm.Encode()}
}

// handleMapGet re-serves the primary's partition map from the mirror —
// like every replica read, deliberately even while the primary is
// unreachable.
func (s *ReplicaServer) handleMapGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mirroredMap())
}

func (s *ReplicaServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	var info refresh.SnapshotInfo
	if m := s.c.mirror.Load(); m != nil && m.snap != nil {
		info = m.snap.Info()
	}
	mm := s.mirroredMap()
	writeJSON(w, http.StatusOK, Health{
		Epoch:        mm.Epoch,
		Map:          mm.Map,
		Protocol:     Version,
		Shard:        s.shardID,
		Shards:       s.k,
		GlobalNodes:  s.globalNodes,
		MaxNodes:     s.maxNodes,
		TableLen:     s.c.tableLen(),
		Draining:     s.draining.Load(),
		DeadlineShed: s.shed.Load(),
		Role:         RoleReplica,
		Primary:      s.primary,
		Snapshot:     info,
		Status:       s.c.Status(),
	})
}

// handleSnapshot re-serves the mirrored generation — the same `?since`
// resolution a primary offers, so a router following this replica (or
// tooling) needs no special casing. The table is captured after the
// mirror load: replication is append-only, so the capture is a
// superset of the generation's prefix, the same invariant the primary
// maintains.
func (s *ReplicaServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	m := s.c.mirror.Load()
	if m == nil || m.snap == nil {
		retryAfter(w, s.c.pollIvl)
		writeCode(w, http.StatusServiceUnavailable, "", "no snapshot mirrored from primary yet")
		return
	}
	snap := m.snap
	if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
		since, err := strconv.ParseUint(sinceStr, 10, 64)
		if err != nil {
			writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid since=%q", sinceStr)
			return
		}
		if snap.Gen <= since {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", ContentTypeSnapshot)
	_ = encodeSnapshot(w, s.shardID, s.k, snap, s.c.tableCopy())
}

// handleLookup answers from the mirror — deliberately even while the
// primary is unreachable: serving the last mirrored generation under a
// dead primary is the availability contract replicas exist to provide.
// The response's Generation tells the caller exactly how fresh the
// answer is.
func (s *ReplicaServer) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req LookupRequest
	if !decodeJSONBody(w, r, s.maxBody, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "ids must name at least one node")
		return
	}
	m := s.c.mirror.Load()
	if m == nil || m.snap == nil {
		retryAfter(w, s.c.pollIvl)
		writeCode(w, http.StatusServiceUnavailable, "", "no snapshot mirrored from primary yet")
		return
	}
	view := shard.RemoteView(s.shardID, m.snap, s.c.Lookup, nil)
	writeJSON(w, http.StatusOK, answerLookup(view, req))
}

func (s *ReplicaServer) handleNotPrimary(w http.ResponseWriter, _ *http.Request) {
	// Retrying here is only useful after a failover promotes this
	// replica; a poll interval is the soonest that could be visible.
	retryAfter(w, s.c.pollIvl)
	writeCode(w, http.StatusServiceUnavailable, CodeNotPrimary,
		"read-only replica of %s: mutations must go to the primary", s.primary)
}
