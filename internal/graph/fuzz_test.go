package graph

import (
	"bytes"
	"testing"
)

// fuzzLimits keeps a single fuzz input from demanding gigabytes: a few
// bytes of text can declare billions of nodes, which is exactly the
// class of input the limits exist for.
var fuzzLimits = ReadLimits{MaxNodes: 1 << 16, MaxEdges: 1 << 16}

// checkParsedGraph asserts the structural invariants every successful
// parse must deliver, then round-trips the graph through both formats.
func checkParsedGraph(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	if n < 0 || g.M() < 0 {
		t.Fatalf("negative dimensions: n=%d m=%d", n, g.M())
	}
	for v := int32(0); int(v) < n; v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				t.Fatalf("node %d: neighbor %d out of range [0, %d)", v, w, n)
			}
			if w == v {
				t.Fatalf("node %d: self loop survived parsing", v)
			}
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("node %d: adjacency not strictly sorted: %v", v, nb)
			}
			if !g.HasEdge(w, v) {
				t.Fatalf("edge {%d,%d} not symmetric", v, w)
			}
		}
	}

	var text bytes.Buffer
	if err := WriteEdgeList(&text, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&text)
	if err != nil {
		t.Fatalf("re-reading written edge list: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("edge-list round trip changed the graph")
	}

	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g3, err := ReadBinary(&bin)
	if err != nil {
		t.Fatalf("re-reading written binary: %v", err)
	}
	if !graphsEqual(g, g3) {
		t.Fatal("binary round trip changed the graph")
	}
}

// FuzzReadAuto drives the format-sniffing entry point ocad loads graphs
// through: arbitrary bytes must either fail cleanly or produce a valid
// CSR graph that round-trips through both serializations.
func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("# nodes 4 edges 3\n0 1\n1 2\n2 3\n"))
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# nodes 9999999999 edges 0\n"))
	f.Add([]byte("0 2147483647\n"))
	f.Add([]byte("# comment\n\n 3   4 \n4 3\n3 3\n"))
	f.Add([]byte("1 zebra\n"))
	f.Add([]byte("-1 2\n"))
	var bin bytes.Buffer
	if err := WriteBinary(&bin, FromEdges(3, [][2]int32{{0, 1}, {1, 2}})); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add([]byte("OCAG garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAutoLimits(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
	})
}

// FuzzReadBinary hits the binary decoder directly (no magic sniffing),
// exercising header and CSR validation on corrupted streams.
func FuzzReadBinary(f *testing.F) {
	for _, pairs := range [][][2]int32{
		nil,
		{{0, 1}},
		{{0, 1}, {1, 2}, {0, 2}},
	} {
		n := 3
		if pairs == nil {
			n = 0
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, FromEdges(n, pairs)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Truncations and bit flips of valid files make good seeds.
		b := buf.Bytes()
		if len(b) > 8 {
			f.Add(b[:len(b)/2])
			flipped := append([]byte(nil), b...)
			flipped[len(flipped)-1] ^= 0xff
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinaryLimits(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
	})
}
