package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cpm"
	"repro/internal/daisy"
	"repro/internal/graph"
	"repro/internal/lfk"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/postprocess"
	"repro/internal/synth"
	"repro/internal/xrand"
)

// Config controls every experiment runner.
type Config struct {
	// Full switches to the paper-scale parameters (Section V); the
	// default is a scaled-down workload that completes in minutes.
	Full bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Workers is the OCA parallelism. The default 1 keeps the timing
	// figures comparable with the single-threaded baselines (the paper
	// used one 2.83 GHz core).
	Workers int
	// Trials averages quality/time over this many generated instances.
	// Default 1.
	Trials int
	// TimeLimit drops an algorithm from the remaining points of a
	// timing sweep once a single run exceeds it (the paper does the same
	// with CFinder: "prohibitively slow, so we discard it"). Default
	// 60s (quick) / 900s (full).
	TimeLimit time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// Sweep overrides. When set they replace the quick/full defaults:
	// tests and the CLI use them to resize workloads.
	Fig2Mus     []float64 // µ values of Fig. 2
	Fig2N       int       // LFR size of Fig. 2
	Fig3Sizes   []int     // daisy-tree sizes of Fig. 3
	Fig5Sizes   []int     // LFR sizes of Fig. 5
	Fig6Ks      []int     // community sizes of Fig. 6
	Fig6N       int       // LFR size of Fig. 6
	WikiScale   int       // scale of the Wikipedia-substitute run
	ScaleScales []int     // graph scales of the scalability extension
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	if c.TimeLimit <= 0 {
		if c.Full {
			c.TimeLimit = 900 * time.Second
		} else {
			c.TimeLimit = 60 * time.Second
		}
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// algorithm is a uniform wrapper over the three competitors.
type algorithm struct {
	name string
	run  func(g *graph.Graph, seed int64) (*cover.Cover, error)
}

// ocaAlgo runs OCA with the given parallelism and the paper's defaults.
func ocaAlgo(workers int) algorithm {
	return algorithm{name: "OCA", run: func(g *graph.Graph, seed int64) (*cover.Cover, error) {
		res, err := core.Run(g, core.Options{
			Seed:         seed,
			Workers:      workers,
			DisableMerge: true, // post-processing is applied (or not) by the caller
		})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	}}
}

func lfkAlgo() algorithm {
	return algorithm{name: "LFK", run: func(g *graph.Graph, seed int64) (*cover.Cover, error) {
		res, err := lfk.Run(g, lfk.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	}}
}

// cfinderFast uses the k-clique percolation fast path — identical output
// to CFinder (equivalence is property-tested) at a fraction of the cost;
// used for the quality figures.
func cfinderFast() algorithm {
	return algorithm{name: "CFinder", run: func(g *graph.Graph, seed int64) (*cover.Cover, error) {
		res, err := cpm.Run(g, cpm.Options{K: 3})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	}}
}

// cfinderFaithful reproduces the CFinder tool's maximal-clique pipeline,
// including its quadratic clique-overlap phase; used for the timing
// figures, where that cost is the paper's measured behavior. Runs that
// exceed limit abort with cpm.ErrCanceled and the sweep drops the
// algorithm, as the paper did.
func cfinderFaithful(limit time.Duration) algorithm {
	return algorithm{name: "CFinder", run: func(g *graph.Graph, seed int64) (*cover.Cover, error) {
		deadline := time.Now().Add(limit)
		res, err := cpm.RunCFinder(g, cpm.Options{
			K:      3,
			Cancel: func() bool { return time.Now().After(deadline) },
		})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	}}
}

// postprocessAll applies the paper's post-processing (ρ-merge, then
// orphan assignment) — Section V applies it to every algorithm's output
// for the quality comparisons.
func postprocessAll(g *graph.Graph, cv *cover.Cover) *cover.Cover {
	cv = postprocess.Merge(cv, postprocess.DefaultMergeThreshold)
	return postprocess.AssignOrphans(g, cv, postprocess.OrphanOptions{Rounds: 3})
}

// RunTable1 regenerates Table I: the dataset inventory. The Wikipedia
// row is the synthetic substitute (DESIGN.md §3.6).
func RunTable1(cfg Config) (*TableResult, error) {
	cfg = cfg.withDefaults()
	t := &TableResult{
		ID:     "table1",
		Title:  "Datasets analyzed by OCA",
		Header: []string{"Name", "#nodes", "#edges", "paper #nodes", "paper #edges"},
		Note:   "Wikipedia row is the synthetic substitute; see DESIGN.md §3.6",
	}
	lfrN := 10_000
	daisyN := 10_000
	wikiScale := 15
	if cfg.Full {
		lfrN = 100_000
		daisyN = 100_000
		wikiScale = 20
	}

	cfg.logf("table1: generating LFR n=%d", lfrN)
	lb, err := lfr.Generate(lfr.Params{
		N: lfrN, AvgDeg: 20, MaxDeg: 50, Mu: 0.2,
		MinCom: 20, MaxCom: 50, Seed: xrand.Derive(cfg.Seed, 101),
	})
	if err != nil {
		return nil, fmt.Errorf("table1 LFR: %w", err)
	}
	t.Rows = append(t.Rows, []string{"LFR-benchmark",
		fmt.Sprint(lb.Graph.N()), fmt.Sprint(lb.Graph.M()), "10^4 - 10^6", "~10^5 - 10^7"})

	cfg.logf("table1: generating daisy n=%d", daisyN)
	db, err := daisy.GenerateToSize(daisy.TableIParams(), daisy.DefaultGamma, daisyN, xrand.Derive(cfg.Seed, 102))
	if err != nil {
		return nil, fmt.Errorf("table1 daisy: %w", err)
	}
	t.Rows = append(t.Rows, []string{"Daisy",
		fmt.Sprint(db.Graph.N()), fmt.Sprint(db.Graph.M()), "10^5", "~4*10^5"})

	cfg.logf("table1: generating wikipedia substitute scale=%d", wikiScale)
	wg, err := synth.WikipediaLike(wikiScale, xrand.Derive(cfg.Seed, 103))
	if err != nil {
		return nil, fmt.Errorf("table1 wikipedia: %w", err)
	}
	t.Rows = append(t.Rows, []string{"Wikipedia (synthetic substitute)",
		fmt.Sprint(wg.N()), fmt.Sprint(wg.M()), "16986429", "176454501"})
	return t, nil
}

// fig2Params returns the LFR workload of Figure 2: the LFR paper's
// default benchmark (the paper says "parameters ... set to default
// values").
func fig2Params(cfg Config) lfr.Params {
	n := 1000
	if cfg.Full {
		n = 5000
	}
	if cfg.Fig2N > 0 {
		n = cfg.Fig2N
	}
	maxDeg, minCom, maxCom := 50, 20, 50
	avgDeg := 20.0
	if n <= 200 { // tiny test workloads need feasible bounds
		maxDeg, minCom, maxCom, avgDeg = n/4, 10, n/3, 8
	}
	return lfr.Params{N: n, AvgDeg: avgDeg, MaxDeg: maxDeg, MinCom: minCom, MaxCom: maxCom}
}

// RunFig2 regenerates Figure 2: Θ against the mixing parameter µ for
// OCA, LFK and CFinder on LFR benchmarks, post-processing applied to all
// three (as in the paper).
func RunFig2(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	mus := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	if len(cfg.Fig2Mus) > 0 {
		mus = cfg.Fig2Mus
	}
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo(), cfinderFast()}
	p := fig2Params(cfg)

	fig := &Figure{
		ID: "fig2", Title: "Evolution of Θ against µ",
		XLabel: "mu", YLabel: "Theta",
		X:    mus,
		Note: fmt.Sprintf("LFR n=%d avg.deg=%g max.deg=%d com.size=[%d,%d], %d trial(s)", p.N, p.AvgDeg, p.MaxDeg, p.MinCom, p.MaxCom, cfg.Trials),
	}
	ys := make([][]float64, len(algos))
	for i := range ys {
		ys[i] = make([]float64, len(mus))
	}
	for xi, mu := range mus {
		for trial := 0; trial < cfg.Trials; trial++ {
			p := p
			p.Mu = mu
			p.Seed = xrand.Derive(cfg.Seed, int64(1000+100*xi+trial))
			bench, err := lfr.Generate(p)
			if err != nil {
				return nil, fmt.Errorf("fig2 µ=%g: %w", mu, err)
			}
			for ai, algo := range algos {
				cv, err := algo.run(bench.Graph, xrand.Derive(cfg.Seed, int64(2000+100*xi+10*ai+trial)))
				if err != nil {
					return nil, fmt.Errorf("fig2 µ=%g %s: %w", mu, algo.name, err)
				}
				cv = postprocessAll(bench.Graph, cv)
				th := metrics.Theta(bench.Communities, cv)
				ys[ai][xi] += th / float64(cfg.Trials)
				cfg.logf("fig2: µ=%.2f %s trial %d Θ=%.3f", mu, algo.name, trial, th)
			}
		}
	}
	for ai, algo := range algos {
		fig.Series = append(fig.Series, Series{Name: algo.name, Y: ys[ai]})
	}
	return fig, nil
}

// RunFig3 regenerates Figure 3: Θ of the daisy community structure
// against the daisy-tree size for OCA, LFK and CFinder.
func RunFig3(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	sizes := []int{100, 500, 1000, 5000}
	if cfg.Full {
		sizes = []int{100, 1000, 10000, 100000}
	}
	if len(cfg.Fig3Sizes) > 0 {
		sizes = cfg.Fig3Sizes
	}
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo(), cfinderFast()}
	d := daisy.DefaultParams()

	fig := &Figure{
		ID: "fig3", Title: "Θ of daisy community structure with different sizes",
		XLabel: "size", YLabel: "Theta",
		Note: fmt.Sprintf("daisy p=%d q=%d n=%d α=%g β=%g γ=%g, %d trial(s)",
			d.P, d.Q, d.N, d.Alpha, d.Beta, daisy.DefaultGamma, cfg.Trials),
	}
	for _, s := range sizes {
		fig.X = append(fig.X, float64(s))
	}
	ys := make([][]float64, len(algos))
	for i := range ys {
		ys[i] = make([]float64, len(sizes))
	}
	for xi, size := range sizes {
		for trial := 0; trial < cfg.Trials; trial++ {
			bench, err := daisy.GenerateToSize(d, daisy.DefaultGamma, size, xrand.Derive(cfg.Seed, int64(3000+100*xi+trial)))
			if err != nil {
				return nil, fmt.Errorf("fig3 size=%d: %w", size, err)
			}
			for ai, algo := range algos {
				cv, err := algo.run(bench.Graph, xrand.Derive(cfg.Seed, int64(4000+100*xi+10*ai+trial)))
				if err != nil {
					return nil, fmt.Errorf("fig3 size=%d %s: %w", size, algo.name, err)
				}
				cv = postprocessAll(bench.Graph, cv)
				th := metrics.Theta(bench.Communities, cv)
				ys[ai][xi] += th / float64(cfg.Trials)
				cfg.logf("fig3: size=%d %s trial %d Θ=%.3f", size, algo.name, trial, th)
			}
		}
	}
	for ai, algo := range algos {
		fig.Series = append(fig.Series, Series{Name: algo.name, Y: ys[ai]})
	}
	return fig, nil
}

// CommunityComposition describes one found community as overlap counts
// against the planted daisy communities.
type CommunityComposition struct {
	Size  int
	Parts map[string]int // ground-truth name -> shared members
}

// AlgoComposition is Figure 4's content for one algorithm.
type AlgoComposition struct {
	Name        string
	Theta       float64
	Communities []CommunityComposition
}

// CompositionReport reproduces Figure 4: the typical communities each
// algorithm finds on a single daisy, reported as their composition with
// respect to the planted petals and core.
type CompositionReport struct {
	Daisy      daisy.Params
	GroundSize map[string]int
	Algorithms []AlgoComposition
}

// Render writes the report as readable text.
func (r *CompositionReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIG4: typical communities found in the daisy tree (p=%d q=%d n=%d α=%g β=%g)\n",
		r.Daisy.P, r.Daisy.Q, r.Daisy.N, r.Daisy.Alpha, r.Daisy.Beta)
	ground := make([]string, 0, len(r.GroundSize))
	for name := range r.GroundSize {
		ground = append(ground, name)
	}
	sort.Strings(ground)
	fmt.Fprintf(w, "  planted:")
	for _, name := range ground {
		fmt.Fprintf(w, " %s=%d", name, r.GroundSize[name])
	}
	fmt.Fprintln(w)
	for _, a := range r.Algorithms {
		fmt.Fprintf(w, "  %s (Θ=%.3f): %d communities\n", a.Name, a.Theta, len(a.Communities))
		for i, c := range a.Communities {
			if i >= 12 {
				fmt.Fprintf(w, "    ... %d more\n", len(a.Communities)-i)
				break
			}
			fmt.Fprintf(w, "    size=%-4d", c.Size)
			for _, name := range ground {
				if c.Parts[name] > 0 {
					fmt.Fprintf(w, " %s:%d", name, c.Parts[name])
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunFig4 regenerates Figure 4's content on a small daisy tree (three
// flowers: on a single flower all algorithms agree; the differentiation
// the paper draws — petals recovered vs whole flowers blurred — needs
// the attachments of a tree).
func RunFig4(cfg Config) (*CompositionReport, error) {
	cfg = cfg.withDefaults()
	d := daisy.DefaultParams()
	bench, err := daisy.Generate(daisy.TreeParams{
		Daisy: d, K: 2, Gamma: daisy.DefaultGamma, Seed: xrand.Derive(cfg.Seed, 500),
	})
	if err != nil {
		return nil, err
	}
	// Communities arrive flower-major: P-1 petals then the core, per
	// flower.
	names := make([]string, bench.Communities.Len())
	report := &CompositionReport{Daisy: d, GroundSize: map[string]int{}}
	for i, c := range bench.Communities.Communities {
		flower := i / d.P
		if pos := i % d.P; pos < d.P-1 {
			names[i] = fmt.Sprintf("f%d.petal%d", flower, pos+1)
		} else {
			names[i] = fmt.Sprintf("f%d.core", flower)
		}
		report.GroundSize[names[i]] = len(c)
	}
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo(), cfinderFast()}
	for ai, algo := range algos {
		cv, err := algo.run(bench.Graph, xrand.Derive(cfg.Seed, int64(600+ai)))
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", algo.name, err)
		}
		cv = postprocess.Merge(cv, postprocess.DefaultMergeThreshold)
		cv.SortBySize()
		ac := AlgoComposition{Name: algo.name, Theta: metrics.Theta(bench.Communities, cv)}
		for _, c := range cv.Communities {
			comp := CommunityComposition{Size: len(c), Parts: map[string]int{}}
			for gi, gc := range bench.Communities.Communities {
				if inter := c.IntersectionSize(gc); inter > 0 {
					comp.Parts[names[gi]] = inter
				}
			}
			ac.Communities = append(ac.Communities, comp)
		}
		report.Algorithms = append(report.Algorithms, ac)
	}
	return report, nil
}

// RunFig5 regenerates Figure 5: execution time against graph size on the
// LFR workload with av.deg=50, max.deg=150, com.size=[500,700]; log
// scale in the paper, raw seconds here. No post-processing is applied
// (as in the paper). CFinder uses the faithful maximal-clique pipeline
// and is dropped once it exceeds cfg.TimeLimit.
func RunFig5(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	sizes := []int{1000, 2000, 4000}
	if cfg.Full {
		sizes = []int{5000, 10000, 15000, 20000, 25000}
	}
	if len(cfg.Fig5Sizes) > 0 {
		sizes = cfg.Fig5Sizes
	}
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo(), cfinderFaithful(cfg.TimeLimit)}
	fig := &Figure{
		ID: "fig5", Title: "Execution time on LFR benchmarks (seconds)",
		XLabel: "nodes", YLabel: "seconds",
		Note: fmt.Sprintf("av.deg=50 max.deg=150 com.size=[500,700] µ=0.2, workers=%d, no post-processing", cfg.Workers),
	}
	for _, s := range sizes {
		fig.X = append(fig.X, float64(s))
	}
	return timeSweep(cfg, fig, algos, func(xi, trial int) (*graph.Graph, error) {
		b, err := lfr.Generate(scaledLFR(sizes[xi], 50, 150, 500, 700, 0.2,
			xrand.Derive(cfg.Seed, int64(5000+100*xi+trial))))
		if err != nil {
			return nil, err
		}
		return b.Graph, nil
	})
}

// RunFig6 regenerates Figure 6: execution time against community size k
// (communities in [k, k+50]) for OCA and LFK; the paper reports CFinder
// "was not able to perform these experiments in a reasonable time", so
// it is excluded.
func RunFig6(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	n := 2000
	ks := []int{50, 150, 250}
	if cfg.Full {
		n = 10000
		ks = []int{50, 100, 150, 200, 250, 300, 350, 400, 450}
	}
	if len(cfg.Fig6Ks) > 0 {
		ks = cfg.Fig6Ks
	}
	if cfg.Fig6N > 0 {
		n = cfg.Fig6N
	}
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo()}
	fig := &Figure{
		ID: "fig6", Title: "Execution time vs community size k (seconds)",
		XLabel: "k", YLabel: "seconds",
		Note: fmt.Sprintf("LFR n=%d av.deg=50 max.deg=150 com.size=[k,k+50] µ=0.2, workers=%d", n, cfg.Workers),
	}
	for _, k := range ks {
		fig.X = append(fig.X, float64(k))
	}
	return timeSweep(cfg, fig, algos, func(xi, trial int) (*graph.Graph, error) {
		b, err := lfr.Generate(scaledLFR(n, 50, 150, ks[xi], ks[xi]+50, 0.2,
			xrand.Derive(cfg.Seed, int64(6000+100*xi+trial))))
		if err != nil {
			return nil, err
		}
		return b.Graph, nil
	})
}

// scaledLFR clamps the paper's LFR parameters so they stay feasible when
// the sweep visits sizes far below the paper's (test and quick configs):
// max degree below n, average degree below max, and community bounds
// that fit the graph. At paper scale the clamps are no-ops.
func scaledLFR(n int, avg float64, maxDeg, minCom, maxCom int, mu float64, seed int64) lfr.Params {
	if maxDeg >= n/3 {
		maxDeg = n / 3
		if maxDeg < 4 {
			maxDeg = 4
		}
	}
	if avg > float64(maxDeg)/2 {
		avg = float64(maxDeg) / 2
	}
	if maxCom > n {
		maxCom = n
	}
	if minCom > maxCom/2 {
		minCom = maxCom / 2
	}
	if minCom < 2 {
		minCom = 2
	}
	return lfr.Params{
		N: n, AvgDeg: avg, MaxDeg: maxDeg, Mu: mu,
		MinCom: minCom, MaxCom: maxCom, Seed: seed,
	}
}

// timeSweep times each algorithm on each generated instance, averaging
// over trials, dropping an algorithm for the remaining points once a run
// exceeds the time limit.
func timeSweep(cfg Config, fig *Figure, algos []algorithm, gen func(xi, trial int) (*graph.Graph, error)) (*Figure, error) {
	ys := make([][]float64, len(algos))
	for i := range ys {
		ys[i] = make([]float64, len(fig.X))
	}
	dropped := make([]bool, len(algos))
	for xi := range fig.X {
		for trial := 0; trial < cfg.Trials; trial++ {
			g, err := gen(xi, trial)
			if err != nil {
				return nil, fmt.Errorf("%s x=%v: %w", fig.ID, fig.X[xi], err)
			}
			for ai, algo := range algos {
				if dropped[ai] {
					ys[ai][xi] = math.NaN()
					continue
				}
				start := time.Now()
				_, err := algo.run(g, xrand.Derive(cfg.Seed, int64(7000+100*xi+10*ai+trial)))
				elapsed := time.Since(start)
				if err != nil {
					cfg.logf("%s: %s failed at x=%v (%v), dropping", fig.ID, algo.name, fig.X[xi], err)
					dropped[ai] = true
					ys[ai][xi] = math.NaN()
					continue
				}
				ys[ai][xi] += elapsed.Seconds() / float64(cfg.Trials)
				cfg.logf("%s: x=%v %s trial %d %.2fs", fig.ID, fig.X[xi], algo.name, trial, elapsed.Seconds())
				if elapsed > cfg.TimeLimit {
					cfg.logf("%s: %s exceeded time limit %v, dropping from larger sizes", fig.ID, algo.name, cfg.TimeLimit)
					dropped[ai] = true
				}
			}
		}
	}
	for ai, algo := range algos {
		fig.Series = append(fig.Series, Series{Name: algo.name, Y: ys[ai]})
	}
	return fig, nil
}

// WikiResult is the Wikipedia-substitute run (Section V.B's closing
// experiment: "we ran OCA on the Wikipedia dataset, and found all
// relevant communities in less than 3.25 hours").
type WikiResult struct {
	Nodes       int
	Edges       int64
	Communities int
	Coverage    float64
	Elapsed     time.Duration
	EdgesPerSec float64
	C           float64
}

// Render writes the result as readable text.
func (r *WikiResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "WIKI: OCA on the Wikipedia substitute (heavy-tailed LFR)\n")
	fmt.Fprintf(w, "  nodes=%d edges=%d c=%.4f\n", r.Nodes, r.Edges, r.C)
	fmt.Fprintf(w, "  communities=%d coverage=%.1f%%\n", r.Communities, 100*r.Coverage)
	fmt.Fprintf(w, "  elapsed=%s throughput=%.0f edges/s\n", r.Elapsed.Round(time.Millisecond), r.EdgesPerSec)
	fmt.Fprintf(w, "  paper: 16986429 nodes, 176454501 edges, < 3.25 h (2.83 GHz single core, 2010)\n")
	return nil
}

// RunWiki executes OCA on the Wikipedia substitute.
func RunWiki(cfg Config) (*WikiResult, error) {
	cfg = cfg.withDefaults()
	scale := 15
	if cfg.Full {
		scale = 20
	}
	if cfg.WikiScale > 0 {
		scale = cfg.WikiScale
	}
	cfg.logf("wiki: generating R-MAT scale=%d", scale)
	g, err := synth.WikipediaLike(scale, xrand.Derive(cfg.Seed, 900))
	if err != nil {
		return nil, err
	}
	cfg.logf("wiki: n=%d m=%d, running OCA", g.N(), g.M())
	start := time.Now()
	res, err := core.Run(g, core.Options{
		Seed:    xrand.Derive(cfg.Seed, 901),
		Workers: cfg.Workers,
		Halting: core.Halting{TargetCoverage: 0.8, Patience: 100},
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return &WikiResult{
		Nodes:       g.N(),
		Edges:       g.M(),
		Communities: res.Cover.Len(),
		Coverage:    res.Cover.Coverage(g.N()),
		Elapsed:     elapsed,
		EdgesPerSec: float64(g.M()) / elapsed.Seconds(),
		C:           res.C,
	}, nil
}
