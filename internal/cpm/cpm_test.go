package cpm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/graph"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	return graph.FromEdges(n, edges)
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestTwoTrianglesSharingEdge(t *testing.T) {
	// Triangles {0,1,2} and {1,2,3} share edge {1,2}: one community.
	g := buildGraph(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}})
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cliques != 2 {
		t.Fatalf("cliques=%d, want 2", res.Cliques)
	}
	if res.Cover.Len() != 1 {
		t.Fatalf("communities=%d, want 1", res.Cover.Len())
	}
	if !res.Cover.Communities[0].Equal(cover.NewCommunity([]int32{0, 1, 2, 3})) {
		t.Fatalf("community=%v", res.Cover.Communities[0])
	}
}

func TestTwoTrianglesSharingNode(t *testing.T) {
	// Triangles {0,1,2} and {2,3,4} share only node 2: two communities
	// overlapping at node 2 — the canonical CPM overlap example.
	g := buildGraph(5, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 2 {
		t.Fatalf("communities=%d, want 2: %v", res.Cover.Len(), res.Cover.Communities)
	}
	idx := res.Cover.MembershipIndex(5)
	if len(idx[2]) != 2 {
		t.Fatalf("node 2 memberships=%v, want 2", idx[2])
	}
}

func TestEdgeNotInTriangleExcluded(t *testing.T) {
	// Triangle {0,1,2} plus pendant edge {2,3}: node 3 in no community.
	g := buildGraph(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 1 {
		t.Fatalf("communities=%d, want 1", res.Cover.Len())
	}
	if res.Cover.Communities[0].Contains(3) {
		t.Fatal("pendant node should be in no community")
	}
}

func TestTriangleFreeGraph(t *testing.T) {
	// A 4-cycle has no triangles: no communities.
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 0 || res.Cliques != 0 {
		t.Fatalf("cliques=%d communities=%d, want 0,0", res.Cliques, res.Cover.Len())
	}
}

func TestKMustBeAtLeast3(t *testing.T) {
	if _, err := Run(complete(4), Options{K: 2}); err == nil {
		t.Fatal("expected error for k=2")
	}
}

func TestGeneralK4OnTwoK5s(t *testing.T) {
	// Two K5s sharing 2 nodes: k=4 percolation keeps them separate
	// (no K4 spans the 2-node cut... K4 needs 4 nodes; any K4 within the
	// union lies inside one K5 because only 2 shared nodes exist), but
	// k=3 merges them (triangles through the shared pair chain both
	// sides when the shared nodes are adjacent).
	k, shared := 5, 2
	n := 2*k - shared
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(k - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	res3, err := Run(g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cover.Len() != 1 {
		t.Fatalf("k=3 communities=%d, want 1 (merged)", res3.Cover.Len())
	}
	res4, err := Run(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Cover.Len() != 2 {
		t.Fatalf("k=4 communities=%d, want 2: %v", res4.Cover.Len(), res4.Cover.Communities)
	}
	idx := res4.Cover.MembershipIndex(n)
	for v := int32(k - shared); v < int32(k); v++ {
		if len(idx[v]) != 2 {
			t.Fatalf("shared node %d memberships=%d, want 2", v, len(idx[v]))
		}
	}
}

func TestCliqueCountsOnCompleteGraphs(t *testing.T) {
	// K6 has C(6,3)=20 triangles, C(6,4)=15 4-cliques, C(6,5)=6 5-cliques.
	g := complete(6)
	for _, tc := range []struct {
		k    int
		want int64
	}{{3, 20}, {4, 15}, {5, 6}} {
		res, err := Run(g, Options{K: tc.k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cliques != tc.want {
			t.Fatalf("k=%d cliques=%d, want %d", tc.k, res.Cliques, tc.want)
		}
		if res.Cover.Len() != 1 {
			t.Fatalf("k=%d communities=%d, want 1", tc.k, res.Cover.Len())
		}
	}
}

func TestMaxCliquesGuard(t *testing.T) {
	if _, err := Run(complete(12), Options{K: 4, MaxCliques: 10}); err == nil {
		t.Fatal("expected MaxCliques error")
	}
}

// TestTrianglePathMatchesGeneralK3 cross-validates the fast edge-DSU path
// against the general clique enumeration on random graphs.
func TestTrianglePathMatchesGeneralK3(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		fast := runTriangles(g)
		slow, err := runGeneral(g, Options{K: 3, MaxCliques: 1 << 20})
		if err != nil {
			return false
		}
		if fast.Cliques != slow.Cliques || fast.Cover.Len() != slow.Cover.Len() {
			return false
		}
		for i := range fast.Cover.Communities {
			if !fast.Cover.Communities[i].Equal(slow.Cover.Communities[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeIndexBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		idx := newEdgeIndex(g)
		seen := map[int64]bool{}
		ok := true
		var count int64
		g.Edges(func(u, v int32) bool {
			id := idx.id(u, v)
			if id < 0 || id >= idx.m || seen[id] {
				ok = false
				return false
			}
			// Symmetric lookup must agree.
			if idx.id(v, u) != id {
				ok = false
				return false
			}
			seen[id] = true
			count++
			return true
		})
		return ok && count == idx.m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).Build(), Options{})
	if err != nil || res.Cover.Len() != 0 {
		t.Fatalf("empty: %v, %d", err, res.Cover.Len())
	}
}
