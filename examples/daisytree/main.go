// Daisy tree: generate the paper's overlapping benchmark (Section V),
// run all three algorithms (OCA, LFK, CFinder) on it, and compare how
// well each recovers the planted petals and cores — the story of the
// paper's Figures 3 and 4.
//
//	go run ./examples/daisytree [-flowers 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	flowers := flag.Int("flowers", 8, "number of daisies in the tree")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	d := repro.DefaultDaisyParams()
	bench, err := repro.GenerateDaisyTree(repro.DaisyTreeParams{
		Daisy: d, K: *flowers - 1, Gamma: 0.05, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := bench.Graph
	fmt.Printf("daisy tree: %d flowers (p=%d q=%d n=%d α=%g β=%g)\n",
		bench.Flowers, d.P, d.Q, d.N, d.Alpha, d.Beta)
	fmt.Printf("graph: %d nodes, %d edges, %d planted communities\n",
		g.N(), g.M(), bench.Communities.Len())
	st := bench.Communities.Stats(g.N())
	fmt.Printf("planted overlap: %d nodes in ≥2 communities\n\n", st.OverlapNodes)

	run := func(name string, f func() (*repro.Cover, error)) {
		cv, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		// The paper applies its post-processing to every algorithm for
		// the quality comparison.
		cv = repro.MergeCommunities(cv, repro.MergeThreshold)
		cv = repro.AssignOrphans(g, cv, repro.OrphanOptions{Rounds: 3})
		fmt.Printf("%-8s communities=%-4d Θ=%.3f  F1=%.3f\n",
			name, cv.Len(),
			repro.Theta(bench.Communities, cv),
			repro.BestMatchF1(bench.Communities, cv))
	}

	run("OCA", func() (*repro.Cover, error) {
		res, err := repro.OCA(g, repro.OCAOptions{Seed: *seed, DisableMerge: true})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	})
	run("LFK", func() (*repro.Cover, error) {
		res, err := repro.LFK(g, repro.LFKOptions{Seed: *seed})
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	})
	run("CFinder", func() (*repro.Cover, error) {
		res, err := repro.CPM(g, repro.CPMOptions{K: 3}) // fast path, same output as CFinder
		if err != nil {
			return nil, err
		}
		return res.Cover, nil
	})

	fmt.Println("\nExpected (paper, Fig. 3): OCA recovers the petal/core structure" +
		"\nbest; LFK over-merges flowers; CFinder's percolation blurs with size.")
}
