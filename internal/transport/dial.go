package transport

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/shard"
)

// Options tunes Dial.
type Options struct {
	// Client tunes every shard client (timeouts, poll cadence).
	Client ClientConfig
	// ConnectTimeout bounds the whole handshake — health probes are
	// retried until every shard answers, so the router may start before
	// slow shard covers finish building. Default 60s.
	ConnectTimeout time.Duration
	// MaxPending is the per-shard backlog bound the router's admission
	// check assumes; it should match the shard servers' worker
	// configuration (0 uses refresh.Config's default).
	MaxPending int
}

// Dial connects to K shard servers (addrs[i] must host shard i of a
// K-way split), validates that they form one consistent deployment,
// mirrors every shard's published snapshot, and assembles a
// shard.Router over remote backends — a drop-in
// server.SnapshotProvider, so the HTTP serving layer works unchanged
// over processes. The returned router's Close stops the mirror pollers;
// the shard processes keep running.
func Dial(ctx context.Context, addrs []string, opt Options) (*shard.Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no shard addresses")
	}
	if opt.ConnectTimeout <= 0 {
		opt.ConnectTimeout = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, opt.ConnectTimeout)
	defer cancel()

	k := len(addrs)
	clients := make([]*Client, k)
	healths := make([]Health, k)
	errs := make([]error, k)
	done := make(chan int, k)
	for i, addr := range addrs {
		clients[i] = newClient(normalizeAddr(addr), i, k, opt.Client)
		go func(i int) {
			healths[i], errs[i] = clients[i].handshake(ctx)
			done <- i
		}(i)
	}
	for range clients {
		<-done
	}
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
	}
	for i, err := range errs {
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("transport: shard %d at %s: %w", i, addrs[i], err)
		}
	}
	// The K servers must describe one deployment: same partition width,
	// same global dimensions, each hosting the shard index its position
	// in addrs claims.
	for i, h := range healths {
		if h.Protocol != Version {
			closeAll()
			return nil, fmt.Errorf("transport: shard %d speaks protocol %d, this router speaks %d", i, h.Protocol, Version)
		}
		if h.Shard != i || h.Shards != k {
			closeAll()
			return nil, fmt.Errorf("transport: %s hosts shard %d of %d, want shard %d of %d",
				addrs[i], h.Shard, h.Shards, i, k)
		}
		if h.GlobalNodes != healths[0].GlobalNodes || h.MaxNodes != healths[0].MaxNodes {
			closeAll()
			return nil, fmt.Errorf("transport: shard %d disagrees on deployment dimensions (%d/%d nodes vs %d/%d)",
				i, h.GlobalNodes, h.MaxNodes, healths[0].GlobalNodes, healths[0].MaxNodes)
		}
	}
	// The valid global id range must cover growth already applied by a
	// previous router: every replicated table entry is a live global id.
	curN := healths[0].GlobalNodes
	backends := make([]shard.Backend, k)
	for i, c := range clients {
		backends[i] = c
		c.tabMu.RLock()
		for _, gv := range c.locals {
			if int(gv) >= curN {
				curN = int(gv) + 1
			}
		}
		c.tabMu.RUnlock()
	}
	r, err := shard.NewRouterBackends(backends, curN, healths[0].MaxNodes, opt.MaxPending)
	if err != nil {
		closeAll()
		return nil, err
	}
	for _, c := range clients {
		c.startPolling()
	}
	return r, nil
}

// handshake probes the shard until it answers (covers may still be
// building when the router starts) and mirrors its first snapshot.
func (c *Client) handshake(ctx context.Context) (Health, error) {
	var lastErr error
	for {
		hctx, cancel := context.WithTimeout(ctx, c.reqTO)
		h, err := c.health(hctx)
		cancel()
		if err == nil {
			if err = c.syncSnapshotCtx(ctx); err == nil {
				return h, nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return Health{}, fmt.Errorf("handshake: %w", lastErr)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// normalizeAddr accepts host:port or a full URL.
func normalizeAddr(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}
