// Package hierarchy implements the paper's §VI future work: "now that
// the communities are identified, we will explore the hierarchies and
// relations among them". It builds a quotient graph whose super-nodes
// are communities — two communities are related by the edges running
// between them and by the members they share — and reapplies OCA to the
// quotient, producing successively coarser levels of community
// structure over the original node ids.
package hierarchy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
)

// Options configure Build.
type Options struct {
	// MinWeight is the relation strength two communities need for an
	// edge in the quotient graph. The weight between communities A and B
	// is (#graph edges between A\B and B\A) + SharedNodeWeight·|A ∩ B|.
	// Default 1.
	MinWeight int
	// SharedNodeWeight is how much one shared member contributes to the
	// relation weight; overlap is the strongest signal of relatedness in
	// an overlapping cover. Default 3.
	SharedNodeWeight int
	// MaxLevels bounds the number of coarsening rounds. Default 5.
	MaxLevels int
	// Core configures the OCA runs on the quotient graphs. Communities
	// of super-nodes as small as two are meaningful, so
	// MinCommunitySize defaults to 2 here (not core's default 3).
	Core core.Options
}

func (o Options) withDefaults() Options {
	if o.MinWeight <= 0 {
		o.MinWeight = 1
	}
	if o.SharedNodeWeight <= 0 {
		o.SharedNodeWeight = 3
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 5
	}
	if o.Core.MinCommunitySize == 0 {
		o.Core.MinCommunitySize = 2
	}
	return o
}

// Level is one layer of the hierarchy.
type Level struct {
	// Cover holds this level's communities in original node ids.
	Cover *cover.Cover
	// Quotient is the community-relation graph this level's cover
	// induced (the input to the next level); nil for the final level.
	Quotient *graph.Graph
	// QuotientWeights holds the relation weight of every quotient edge,
	// keyed by packed (min<<32 | max) community-index pairs.
	QuotientWeights map[uint64]int
}

// Build returns the hierarchy bottom-up: level 0 is the base cover,
// each further level groups the previous level's communities by running
// OCA on their quotient graph. Coarsening stops when a level has at
// most one community, the quotient has no edges, or a round fails to
// reduce the community count.
func Build(g *graph.Graph, base *cover.Cover, opt Options) ([]Level, error) {
	opt = opt.withDefaults()
	if base.Len() == 0 {
		return []Level{{Cover: base.Clone()}}, nil
	}
	levels := []Level{{Cover: base.Clone()}}
	for round := 0; round < opt.MaxLevels; round++ {
		cur := &levels[len(levels)-1]
		if cur.Cover.Len() <= 1 {
			break
		}
		quotient, weights := Quotient(g, cur.Cover, opt.MinWeight, opt.SharedNodeWeight)
		cur.Quotient = quotient
		cur.QuotientWeights = weights
		if quotient.M() == 0 {
			break
		}
		coreOpt := opt.Core
		coreOpt.Seed = opt.Core.Seed + int64(round+1)
		res, err := core.Run(quotient, coreOpt)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: level %d: %w", round+1, err)
		}
		if res.Cover.Len() == 0 || res.Cover.Len() >= cur.Cover.Len() {
			break
		}
		next := expand(cur.Cover, res.Cover)
		levels = append(levels, Level{Cover: next})
	}
	return levels, nil
}

// Quotient builds the community-relation graph of cv over g: one node
// per community, an edge where the relation weight reaches minWeight.
// It returns the graph and the weight of every edge.
func Quotient(g *graph.Graph, cv *cover.Cover, minWeight, sharedWeight int) (*graph.Graph, map[uint64]int) {
	n := g.N()
	membership := index.Build(cv, n)
	weights := make(map[uint64]int)
	bump := func(a, b int32, w int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		weights[uint64(a)<<32|uint64(uint32(b))] += w
	}
	// Cross edges: an edge {u, v} relates every community of u to every
	// community of v they do not share.
	g.Edges(func(u, v int32) bool {
		for _, cu := range membership.Communities(u) {
			for _, cvi := range membership.Communities(v) {
				bump(cu, cvi, 1)
			}
		}
		return true
	})
	// Shared members.
	for v := 0; v < n; v++ {
		ms := membership.Communities(int32(v))
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				bump(ms[i], ms[j], sharedWeight)
			}
		}
	}
	b := graph.NewBuilderHint(cv.Len(), int64(len(weights)))
	for key, w := range weights {
		if w >= minWeight {
			b.AddEdge(int32(key>>32), int32(uint32(key)))
		}
	}
	return b.Build(), weights
}

// expand maps a cover over community indices back to original node ids:
// each super-community becomes the union of its constituent communities.
func expand(base *cover.Cover, super *cover.Cover) *cover.Cover {
	out := make([]cover.Community, 0, super.Len())
	for _, sc := range super.Communities {
		var union cover.Community
		for _, ci := range sc {
			union = union.Union(base.Communities[ci])
		}
		out = append(out, union)
	}
	return cover.NewCover(out)
}
