package resilience

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryConfig tunes a Retryer. Zero values take the defaults.
type RetryConfig struct {
	// MaxAttempts is the total attempt count including the first
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry
	// (default 10ms); it doubles per retry up to MaxDelay (default
	// 250ms). Each actual delay is full-jittered: uniform in
	// (0, ceiling], so synchronized callers spread out instead of
	// retrying in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 250 * time.Millisecond
	}
	return c
}

// Budget is a token-bucket retry budget shared by all requests to one
// backend: each first attempt deposits a fraction of a token, each
// retry withdraws a whole one, so during an outage retries are bounded
// to roughly Ratio of the offered load instead of multiplying it.
// Safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64

	exhausted atomic.Uint64
}

// NewBudget returns a budget allowing roughly ratio retries per
// request, with burst capacity max (defaults: max 10, ratio 0.1).
// The bucket starts full so startup blips can retry immediately.
func NewBudget(max, ratio float64) *Budget {
	if max <= 0 {
		max = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	return &Budget{tokens: max, max: max, ratio: ratio}
}

// Deposit credits one first attempt's worth of retry allowance.
func (b *Budget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting false (and counting the
// exhaustion) when the bucket is empty.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok {
		b.exhausted.Add(1)
	}
	return ok
}

// Exhausted is the number of retries the budget refused.
func (b *Budget) Exhausted() uint64 { return b.exhausted.Load() }

// Retryer runs operations with jittered-exponential-backoff retries,
// bounded by an optional shared Budget. It must only wrap idempotent
// operations — reads, health probes, snapshot fetches — never writes:
// a retried write that already landed is a duplicate, and this layer
// cannot know. Safe for concurrent use.
type Retryer struct {
	cfg    RetryConfig
	budget *Budget

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Uint64
}

// NewRetryer returns a Retryer; budget may be nil (unbudgeted).
func NewRetryer(cfg RetryConfig, budget *Budget) *Retryer {
	return &Retryer{
		cfg:    cfg.withDefaults(),
		budget: budget,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Do runs op, retrying while retryable(err) is true, the budget and
// attempt cap allow, and ctx is alive. The returned error is the last
// attempt's. Backoff never sleeps past ctx's deadline: when the
// remaining budget cannot cover the delay, the last error is returned
// immediately instead of burning the caller's deadline in a sleep.
func (r *Retryer) Do(ctx context.Context, retryable func(error) bool, op func() error) error {
	delay := r.cfg.BaseDelay
	for attempt := 1; ; attempt++ {
		if r.budget != nil && attempt == 1 {
			r.budget.Deposit()
		}
		err := op()
		if err == nil || attempt >= r.cfg.MaxAttempts || !retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if r.budget != nil && !r.budget.Withdraw() {
			return err
		}
		d := r.jitter(delay)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			return err
		}
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return err
		}
		r.retries.Add(1)
		if delay *= 2; delay > r.cfg.MaxDelay {
			delay = r.cfg.MaxDelay
		}
	}
}

// jitter draws a full-jittered delay: uniform in (0, ceiling].
func (r *Retryer) jitter(ceiling time.Duration) time.Duration {
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceiling))) + 1
	r.mu.Unlock()
	return d
}

// Retries is the number of retry attempts actually launched.
func (r *Retryer) Retries() uint64 { return r.retries.Load() }
