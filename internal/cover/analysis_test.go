package cover

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestAnalyzeClique(t *testing.T) {
	g := clique(6)
	q := Analyze(g, NewCommunity([]int32{0, 1, 2, 3, 4, 5}))
	if q.Size != 6 || q.InternalEdges != 15 || q.CutEdges != 0 {
		t.Fatalf("%+v", q)
	}
	if q.Density != 1 || q.Conductance != 0 || q.MixingRatio != 0 {
		t.Fatalf("%+v", q)
	}
	if q.AvgInternalDegree != 5 {
		t.Fatalf("avg internal degree %v", q.AvgInternalDegree)
	}
}

func TestAnalyzeHalfClique(t *testing.T) {
	g := clique(6)
	q := Analyze(g, NewCommunity([]int32{0, 1, 2}))
	// Inside: triangle (3 edges); cut: each of 3 members has 3 outside
	// neighbors.
	if q.InternalEdges != 3 || q.CutEdges != 9 {
		t.Fatalf("%+v", q)
	}
	// vol = 15, 2M - vol = 15 -> conductance = 9/15.
	if math.Abs(q.Conductance-0.6) > 1e-12 {
		t.Fatalf("conductance %v, want 0.6", q.Conductance)
	}
	if math.Abs(q.MixingRatio-0.6) > 1e-12 {
		t.Fatalf("mixing %v, want 0.6", q.MixingRatio)
	}
	if q.Density != 1 {
		t.Fatalf("density %v", q.Density)
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	g := clique(4)
	if q := Analyze(g, NewCommunity(nil)); q.Size != 0 || q.Density != 0 {
		t.Fatalf("%+v", q)
	}
	q := Analyze(g, NewCommunity([]int32{0}))
	if q.Size != 1 || q.Density != 0 || q.CutEdges != 3 {
		t.Fatalf("singleton: %+v", q)
	}
	// Isolated node in a graph with other edges.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.Build()
	q = Analyze(g2, NewCommunity([]int32{2}))
	if q.CutEdges != 0 || q.Conductance != 0 || q.MixingRatio != 0 {
		t.Fatalf("isolated: %+v", q)
	}
}

func TestAnalyzeCoverOrder(t *testing.T) {
	g := clique(6)
	cv := NewCover([]Community{
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{0, 1, 2, 3, 4, 5}),
	})
	qs := AnalyzeCover(g, cv)
	if len(qs) != 2 || qs[0].Size != 3 || qs[1].Size != 6 {
		t.Fatalf("%+v", qs)
	}
}

func TestWriteDOT(t *testing.T) {
	g := clique(4)
	cv := NewCover([]Community{
		NewCommunity([]int32{0, 1, 2}),
		NewCommunity([]int32{2, 3}),
	})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, cv, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph communities {",
		"peripheries=2", // node 2 overlaps
		"0 -- 1",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTUncovered(t *testing.T) {
	g := clique(3)
	cv := NewCover([]Community{NewCommunity([]int32{0, 1})})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, cv, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#d3d3d3") {
		t.Fatal("uncovered node rendered without IncludeUncovered")
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, cv, DOTOptions{IncludeUncovered: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#d3d3d3") {
		t.Fatal("uncovered node missing with IncludeUncovered")
	}
}

func TestWriteDOTSizeLimit(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, NewCover(nil), DOTOptions{MaxNodes: 5})
	if err == nil {
		t.Fatal("size limit not enforced")
	}
}
