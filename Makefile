# Single source of truth for build/test invocations — CI runs these
# same targets, so a green `make check` locally means a green CI run.

GO ?= go
RACE_PKGS := ./internal/core/... ./internal/search/... ./internal/graph/... ./internal/server/... ./internal/index/...

.PHONY: build test race vet fmt-check bench-smoke examples check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run over the concurrency-bearing packages (OCA's worker
# fan-out, the search state pool, the HTTP handlers).
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# One iteration of every benchmark — checks they still compile and run,
# and emits the raw output for trend tooling. Redirect instead of tee so
# a failing benchmark fails the target (sh has no pipefail).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > BENCH_smoke.json; \
		status=$$?; cat BENCH_smoke.json; exit $$status

# Each example is a main package with no test files except quickstart;
# build them all so they cannot rot invisibly.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; $(GO) build -o /dev/null ./$$d || exit 1; done

check: build vet fmt-check test race examples

clean:
	rm -f BENCH_smoke.json
