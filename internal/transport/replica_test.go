package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// startReplica boots an `ocad -follow` equivalent against a primary and
// serves it over httptest, wrapped in a slowable for stall injection.
func startReplica(t testing.TB, primary string) (*ReplicaServer, *httptest.Server, *slowable) {
	t.Helper()
	rs, err := NewReplica(context.Background(), primary, ReplicaConfig{
		Client:         testDialOptions().Client,
		ConnectTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewReplica(%s): %v", primary, err)
	}
	sl := &slowable{h: rs.Handler()}
	ts := httptest.NewServer(sl)
	t.Cleanup(func() {
		ts.Close()
		rs.Close()
	})
	return rs, ts, sl
}

// postForCode POSTs a JSON body and returns the status plus the typed
// error code of a non-2xx answer (postJSON only decodes success bodies).
func postForCode(t testing.TB, url string, in any) (int, string) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var er struct {
		Code string `json:"code"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, er.Code
}

func waitReplicaGen(t *testing.T, rs *ReplicaServer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rs.Gen() >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica stuck at generation %d, want >= %d", rs.Gen(), want)
}

// TestReplicaFollowsPrimary covers the follow protocol end to end on a
// single shard: the replica mirrors the primary's snapshot, advertises
// its role and upstream in health, answers lookups identically to the
// primary, refuses mutations with not_primary, re-serves `?since`
// resolution, and tracks the primary's generation as it advances.
func TestReplicaFollowsPrimary(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 0, testOCA())
	rs, rts, _ := startReplica(t, cl.addrs[0])

	var h Health
	if code := getJSON(t, rts.URL+PathHealth, &h); code != http.StatusOK {
		t.Fatalf("replica health = %d", code)
	}
	if h.Role != RoleReplica || h.Primary != cl.addrs[0] {
		t.Errorf("replica health role=%q primary=%q, want %q/%q", h.Role, h.Primary, RoleReplica, cl.addrs[0])
	}
	if h.Shard != 0 || h.Shards != 1 || h.GlobalNodes != g.N() {
		t.Errorf("replica identity: %+v", h)
	}
	if h.Snapshot.Gen < 1 {
		t.Errorf("replica mirrored generation %d, want >= 1", h.Snapshot.Gen)
	}

	// Lookup answers must be byte-equivalent to the primary's at the
	// same generation.
	req := LookupRequest{Protocol: Version, IDs: []int32{0, 3, 7, 9}, Members: true}
	var fromPrimary, fromReplica LookupResponse
	if code := postJSON(t, cl.addrs[0]+PathLookup, req, &fromPrimary); code != http.StatusOK {
		t.Fatalf("primary lookup = %d", code)
	}
	if code := postJSON(t, rts.URL+PathLookup, req, &fromReplica); code != http.StatusOK {
		t.Fatalf("replica lookup = %d", code)
	}
	if !reflect.DeepEqual(fromPrimary, fromReplica) {
		t.Errorf("replica lookup diverges from primary:\n primary: %+v\n replica: %+v", fromPrimary, fromReplica)
	}

	// Mutations are refused with the typed not_primary code.
	if code, ec := postForCode(t, rts.URL+PathApply, map[string]any{"protocol": Version}); code != http.StatusServiceUnavailable || ec != CodeNotPrimary {
		t.Errorf("replica apply = %d code=%q, want 503 %q", code, ec, CodeNotPrimary)
	}
	if code, ec := postForCode(t, rts.URL+PathFlush, map[string]any{"protocol": Version}); code != http.StatusServiceUnavailable || ec != CodeNotPrimary {
		t.Errorf("replica flush = %d code=%q, want 503 %q", code, ec, CodeNotPrimary)
	}

	// `?since` on the replica resolves like on a primary: current
	// generation answers 304, stale asks get a full snapshot.
	if code := getJSON(t, fmt.Sprintf("%s%s?since=%d", rts.URL, PathSnapshot, rs.Gen()), nil); code != http.StatusNotModified {
		t.Errorf("replica snapshot?since=current = %d, want 304", code)
	}
	resp, err := http.Get(fmt.Sprintf("%s%s?since=0", rts.URL, PathSnapshot))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ContentTypeSnapshot {
		t.Errorf("replica snapshot?since=0 = %d %q, want 200 %q",
			resp.StatusCode, resp.Header.Get("Content-Type"), ContentTypeSnapshot)
	}

	// Advance the primary: the replica's poller must catch the new
	// generation via `?since` incremental resolution.
	w := cl.workers[0]
	la, oka := w.Lookup(0)
	lb, okb := w.Lookup(7)
	if !oka || !okb {
		t.Fatal("globals 0/7 missing from the single shard's table")
	}
	if err := w.Apply(context.Background(), [][2]int32{{la, lb}}, nil); err != nil {
		t.Fatalf("primary apply: %v", err)
	}
	gen, err := w.Flush(context.Background())
	if err != nil {
		t.Fatalf("primary flush: %v", err)
	}
	waitReplicaGen(t, rs, gen)
	if code := getJSON(t, rts.URL+PathHealth, &h); code != http.StatusOK || h.Snapshot.Gen < gen {
		t.Errorf("replica health after primary advance: code=%d gen=%d, want 200 gen>=%d", code, h.Snapshot.Gen, gen)
	}
}

// TestReplicaRefusesChaining: a replica must not follow another replica.
func TestReplicaRefusesChaining(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 0, testOCA())
	_, rts, _ := startReplica(t, cl.addrs[0])

	if _, err := NewReplica(context.Background(), rts.URL, ReplicaConfig{
		Client:         testDialOptions().Client,
		ConnectTimeout: 2 * time.Second,
	}); err == nil || !strings.Contains(err.Error(), "chained replication") {
		t.Fatalf("NewReplica(replica) err = %v, want chained-replication refusal", err)
	}
}

// TestDialReplicaValidation: Dial must refuse a replica listed as a
// primary and a primary listed as a replica (a second writer).
func TestDialReplicaValidation(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 0, testOCA())
	_, rts, _ := startReplica(t, cl.addrs[0])

	opt := testDialOptions()
	opt.ConnectTimeout = 2 * time.Second
	if _, err := Dial(context.Background(), []string{rts.URL}, opt); err == nil || !strings.Contains(err.Error(), "read-only replica") {
		t.Errorf("Dial(replica as primary) err = %v, want refusal", err)
	}
	opt.Replicas = [][]string{{cl.addrs[0]}}
	if _, err := Dial(context.Background(), cl.addrs, opt); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Errorf("Dial(primary as replica) err = %v, want refusal", err)
	}
	opt.Replicas = [][]string{}
	if _, err := Dial(context.Background(), cl.addrs, opt); err == nil || !strings.Contains(err.Error(), "replica lists") {
		t.Errorf("Dial(short replica lists) err = %v, want refusal", err)
	}
}

// TestReplicatedClusterEndToEnd is the replicated deployment's
// acceptance test over the public API: healthz surfaces per-replica
// freshness, read-your-writes holds through the replica set's floor,
// /debug/metrics exports replica gauges, and — the availability
// contract — killing a primary keeps reads flowing from its replica
// with zero 5xx while writes degrade to an explicit 503.
func TestReplicatedClusterEndToEnd(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 64, testOCA())
	repl0, r0, _ := startReplica(t, cl.addrs[0])
	_, r1, _ := startReplica(t, cl.addrs[1])

	opt := testDialOptions()
	opt.Replicas = [][]string{{r0.URL}, {r1.URL}}
	rt, err := Dial(context.Background(), cl.addrs, opt)
	if err != nil {
		t.Fatalf("Dial replicated: %v", err)
	}
	srv, err := server.NewWithProvider(rt, server.Config{})
	if err != nil {
		t.Fatalf("NewWithProvider: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// healthz lists each shard's members with role and freshness.
	var hr struct {
		Status string `json:"status"`
		Shards []struct {
			Shard    int `json:"shard"`
			Replicas []struct {
				Role    string `json:"role"`
				Lag     uint64 `json:"lag_generations"`
				Healthy bool   `json:"healthy"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, hr.Status)
	}
	for _, sh := range hr.Shards {
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d healthz lists %d members, want primary+replica", sh.Shard, len(sh.Replicas))
		}
		if sh.Replicas[0].Role != "primary" || sh.Replicas[1].Role != "replica" {
			t.Errorf("shard %d member roles: %+v", sh.Shard, sh.Replicas)
		}
		for _, m := range sh.Replicas {
			if !m.Healthy {
				t.Errorf("shard %d member unhealthy at boot: %+v", sh.Shard, m)
			}
		}
	}

	// Read-your-writes through the set: a flushed write is immediately
	// visible — the floor forbids routing the follow-up read to a
	// replica still mirroring the pre-write generation.
	for i := 0; i < 3; i++ {
		var er struct {
			Generation uint64 `json:"generation"`
		}
		u, v := int32(i), int32(9-i)
		if code := postJSON(t, ts.URL+"/v1/edges", map[string]any{"add": [][2]int32{{u, v}}, "wait": true}, &er); code != http.StatusOK {
			t.Fatalf("edges wait=true = %d", code)
		}
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", ts.URL, u), nil); code != http.StatusOK {
			t.Fatalf("read-your-writes lookup after gen %d = %d", er.Generation, code)
		}
	}

	// Replica metrics are exported in both JSON and Prometheus form.
	var mr struct {
		Replicas []struct {
			Shard   int `json:"shard"`
			Members []struct {
				Role string `json:"role"`
			} `json:"members"`
		} `json:"replicas"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &mr); code != http.StatusOK || len(mr.Replicas) != 2 {
		t.Fatalf("/debug/metrics replicas: code=%d %+v", code, mr.Replicas)
	}
	resp, err := http.Get(ts.URL + "/debug/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	promBody := make([]byte, 1<<20)
	n, _ := resp.Body.Read(promBody)
	resp.Body.Close()
	prom := string(promBody[:n])
	for _, metric := range []string{"ocad_replica_lag_generations", "ocad_replica_inflight", "ocad_replica_hedges_total", "ocad_replica_hedge_wins_total"} {
		if !strings.Contains(prom, metric) {
			t.Errorf("prometheus export missing %s", metric)
		}
	}

	// Kill shard 0's primary. Let the replica finish mirroring the last
	// flushed generation first so the floor stays satisfiable.
	vec, err := rt.Flush(context.Background(), []int{0})
	if err != nil {
		t.Fatalf("Flush before kill: %v", err)
	}
	var target uint64
	for _, e := range vec {
		if e.Shard == 0 {
			target = e.Gen
		}
	}
	waitReplicaGen(t, repl0, target)
	// ... and the router's own mirror of that replica, which catches up
	// on its separate poll cadence: the floor is the flushed generation,
	// so the replica is only a read candidate once the router sees it
	// there.
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		stats := rt.ReplicaStats()
		if len(stats) == 2 && stats[0] != nil && stats[0].Members[1].Generation >= target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router mirror of shard 0's replica never reached gen %d: %+v", target, stats[0])
		}
	}
	cl.servers[0].Close()

	// Writes degrade to an explicit 503 once the poller notices.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code := postJSON(t, ts.URL+"/v1/edges", map[string]any{"add": [][2]int32{{0, 2}}}, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes to the dead primary's shard still answer %d, want 503", code)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Reads on the dead primary's shard keep flowing from its replica:
	// zero 5xx across a barrage, and healthz stays ok (views are served).
	for i := 0; i < 50; i++ {
		id := i % g.N()
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", ts.URL, id), nil); code != http.StatusOK {
			t.Fatalf("lookup id %d with dead primary = %d, want 200 (read %d/50)", id, code, i)
		}
	}
	// The poller marks the dead primary unhealthy on its own cadence —
	// the write 503 above can come straight from a refused connection
	// before the next health tick, so give the poller a beat.
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		if code := getJSON(t, ts.URL+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
			t.Fatalf("healthz with dead primary = %d %q, want 200 ok (reads are served)", code, hr.Status)
		}
		settled := true
		for _, sh := range hr.Shards {
			if sh.Shard != 0 {
				continue
			}
			if sh.Replicas[0].Healthy {
				settled = false
			}
			if !sh.Replicas[1].Healthy {
				t.Error("serving replica reported unhealthy")
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead primary still reported healthy")
		}
	}
}

// TestReplicaRejoin: a replica that dies and restarts on its old
// address is picked back up by the router's poller and catches up to
// the primary's advanced generation via `?since` resolution.
func TestReplicaRejoin(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 64, testOCA())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raddr := ln.Addr().String()
	rsA, err := NewReplica(context.Background(), cl.addrs[0], ReplicaConfig{
		Client: testDialOptions().Client, ConnectTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewUnstartedServer(rsA.Handler())
	tsA.Listener.Close()
	tsA.Listener = ln
	tsA.Start()

	opt := testDialOptions()
	opt.Replicas = [][]string{{"http://" + raddr}}
	rt, err := Dial(context.Background(), cl.addrs, opt)
	if err != nil {
		t.Fatalf("Dial replicated: %v", err)
	}
	t.Cleanup(rt.Close)

	memberGen := func(idx int) (uint64, bool) {
		stats := rt.ReplicaStats()
		if len(stats) != 1 || stats[0] == nil || len(stats[0].Members) != 2 {
			t.Fatalf("replica stats: %+v", stats)
		}
		m := stats[0].Members[idx]
		return m.Generation, m.Healthy
	}

	// Kill the replica, then advance the primary past its last mirror.
	tsA.Close()
	rsA.Close()
	if _, _, _, err := rt.Enqueue(context.Background(), [][2]int32{{0, 8}}, nil); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	vec, err := rt.Flush(context.Background(), nil)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	target := vec[0].Gen

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, healthy := memberGen(1); !healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the replica dying")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart on the same address: the router's existing client must
	// reconnect and `?since` catch up to the advanced generation.
	var ln2 net.Listener
	for deadline = time.Now().Add(5 * time.Second); ; time.Sleep(25 * time.Millisecond) {
		if ln2, err = net.Listen("tcp", raddr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", raddr, err)
		}
	}
	rsB, err := NewReplica(context.Background(), cl.addrs[0], ReplicaConfig{
		Client: testDialOptions().Client, ConnectTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewUnstartedServer(rsB.Handler())
	tsB.Listener.Close()
	tsB.Listener = ln2
	tsB.Start()
	t.Cleanup(func() {
		tsB.Close()
		rsB.Close()
	})

	for deadline = time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		gen, healthy := memberGen(1)
		if healthy && gen >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined replica stuck at gen %d healthy=%v, want gen >= %d", gen, healthy, target)
		}
	}
}

// TestLookupAnyHedgesOnStall: with the primary stalled well past the
// hedge delay, a budgeted backup request to the replica must win —
// the remote analogue of the tail-at-scale contract the shard-level
// tests prove in-process.
func TestLookupAnyHedgesOnStall(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 0, testOCA())
	_, r0, rslow := startReplica(t, cl.addrs[0])

	opt := testDialOptions()
	opt.Replicas = [][]string{{r0.URL}}
	opt.Replication = shard.ReplicaSetConfig{HedgeFraction: 1} // budget never binds here
	backends, _, err := DialBackends(context.Background(), cl.addrs, opt)
	if err != nil {
		t.Fatalf("DialBackends: %v", err)
	}
	t.Cleanup(func() {
		for _, b := range backends {
			b.Close()
		}
	})
	grp, ok := backends[0].(*ReplicaGroup)
	if !ok {
		t.Fatalf("backend is %T, want *ReplicaGroup", backends[0])
	}

	// Warm read: all scores zero, the tie goes to the primary — which
	// also gives the primary a nonzero EWMA, so the next read prefers
	// the (still unmeasured) replica.
	if _, rr, err := grp.LookupAny(context.Background(), []int32{0, 5}, false); err != nil || rr.Member != 0 {
		t.Fatalf("warm read: member=%d err=%v, want primary", rr.Member, err)
	}

	// Stall the now-preferred replica past HedgeDelayMax (25ms) but
	// under the request timeout: the hedge must fire and the primary
	// must win the race.
	rslow.setDelay(200 * time.Millisecond)
	defer rslow.setDelay(0)
	resp, rr, err := grp.LookupAny(context.Background(), []int32{0, 5}, false)
	if err != nil {
		t.Fatalf("stalled read: %v", err)
	}
	if !rr.Hedged || !rr.HedgeWon || rr.Member != 0 {
		t.Errorf("stalled read result %+v, want hedge fired and primary won", rr)
	}
	if resp.Generation < 1 || len(resp.Results) != 2 {
		t.Errorf("hedged response: gen=%d results=%d", resp.Generation, len(resp.Results))
	}
	st := grp.ReplicaStats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Errorf("hedge counters: %+v", st)
	}
}
