package graph

// Components labels every node with the id of its connected component
// (component ids are dense, assigned in order of the smallest node in
// each component) and returns the labels along with the component count.
func Components(g *Graph) (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	next := int32(0)
	for s := int32(0); s < int32(n); s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// LargestComponent returns the members of the largest connected component
// in increasing node order.
func LargestComponent(g *Graph) []int32 {
	labels, count := Components(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	out := make([]int32, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, int32(v))
		}
	}
	return out
}

// BFSDistances returns the hop distance from src to every node, with -1
// for unreachable nodes.
func BFSDistances(g *Graph, src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Subgraph extracts the induced subgraph on the given nodes. It returns
// the subgraph (with dense ids 0..len(nodes)-1 in the order given) and
// the mapping from new id to original id.
func Subgraph(g *Graph, nodes []int32) (*Graph, []int32) {
	remap := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		remap[v] = int32(i)
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, w := range g.Neighbors(v) {
			if j, ok := remap[w]; ok && j > int32(i) {
				b.AddEdge(int32(i), j)
			}
		}
	}
	sub := b.Build()
	orig := make([]int32, len(nodes))
	copy(orig, nodes)
	return sub, orig
}
