package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func tinyConfig() Config {
	return Config{
		Seed:        1,
		Workers:     2,
		Fig2Mus:     []float64{0.2},
		Fig2N:       150,
		Fig3Sizes:   []int{100},
		Fig5Sizes:   []int{150},
		Fig6Ks:      []int{30},
		Fig6N:       150,
		WikiScale:   8,
		ScaleScales: []int{8},
		TimeLimit:   time.Minute,
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "test", XLabel: "x", YLabel: "y",
		X: []float64{1, 2},
		Series: []Series{
			{Name: "A", Y: []float64{0.5, math.NaN()}},
			{Name: "B", Y: []float64{1, 2}},
		},
		Note: "note",
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FIGX", "note", "A", "B", "0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := f.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,A,B" {
		t.Fatalf("csv wrong:\n%s", buf.String())
	}
}

func TestTableRender(t *testing.T) {
	tb := &TableResult{
		ID: "table1", Title: "datasets",
		Header: []string{"Name", "#nodes"},
		Rows:   [][]string{{"LFR", "1000"}},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LFR") {
		t.Fatalf("table render:\n%s", buf.String())
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Name,#nodes") {
		t.Fatalf("table csv:\n%s", buf.String())
	}
}

func TestRunFig2Tiny(t *testing.T) {
	fig, err := RunFig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series=%d, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 1 {
			t.Fatalf("%s: %d points", s.Name, len(s.Y))
		}
		if s.Y[0] < 0 || s.Y[0] > 1 {
			t.Fatalf("%s: Θ=%v out of [0,1]", s.Name, s.Y[0])
		}
	}
	// At µ=0.2 every algorithm should find meaningful structure.
	if fig.Series[0].Y[0] < 0.2 {
		t.Fatalf("OCA Θ=%.3f at µ=0.2, suspiciously low", fig.Series[0].Y[0])
	}
}

func TestRunFig3Tiny(t *testing.T) {
	fig, err := RunFig3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 || len(fig.X) != 1 {
		t.Fatalf("shape wrong: %d series, %d x", len(fig.Series), len(fig.X))
	}
	// OCA should beat random on the overlapping benchmark.
	if fig.Series[0].Name != "OCA" || fig.Series[0].Y[0] < 0.3 {
		t.Fatalf("OCA Θ=%v", fig.Series[0].Y[0])
	}
}

func TestRunFig4Tiny(t *testing.T) {
	rep, err := RunFig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Algorithms) != 3 {
		t.Fatalf("algorithms=%d", len(rep.Algorithms))
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OCA", "LFK", "CFinder", "petal1", "core"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("fig4 render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunFig5And6Tiny(t *testing.T) {
	cfg := tinyConfig()
	fig5, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.Series) != 3 {
		t.Fatalf("fig5 series=%d", len(fig5.Series))
	}
	for _, s := range fig5.Series {
		if !math.IsNaN(s.Y[0]) && s.Y[0] < 0 {
			t.Fatalf("%s: negative time", s.Name)
		}
	}
	fig6, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Series) != 2 {
		t.Fatalf("fig6 series=%d, want 2 (no CFinder)", len(fig6.Series))
	}
}

func TestRunWikiTiny(t *testing.T) {
	res, err := RunWiki(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 256 {
		t.Fatalf("nodes=%d, want 2^8", res.Nodes)
	}
	if res.EdgesPerSec <= 0 {
		t.Fatalf("throughput=%v", res.EdgesPerSec)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "paper: 16986429") {
		t.Fatalf("wiki render:\n%s", buf.String())
	}
}

func TestRunTable1Tiny(t *testing.T) {
	// Table 1 has no size override; run it quick but skip in -short.
	if testing.Short() {
		t.Skip("table1 generates 10^4-node datasets")
	}
	tb, err := RunTable1(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
	}
}

func TestTimeSweepDropsSlowAlgorithm(t *testing.T) {
	cfg := tinyConfig()
	cfg.TimeLimit = time.Nanosecond // everything exceeds this
	fig, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With a single x point nothing visible drops, so use two points.
	cfg.Fig6Ks = []int{30, 40}
	fig, err = RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if !math.IsNaN(s.Y[1]) {
			t.Fatalf("%s not dropped after exceeding the limit: %v", s.Name, s.Y)
		}
	}
}
