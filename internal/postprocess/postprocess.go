// Package postprocess implements the two result post-processing steps of
// the paper's Section IV: merging communities that are "too similar"
// (ρ above a threshold) and assigning orphan nodes to the community
// holding most of their neighbors. The paper applies these to OCA's
// output and, for the quality comparisons, to the baselines' output too.
package postprocess

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/metrics"
)

// DefaultMergeThreshold is the ρ above which two communities are
// considered duplicates of each other. The paper does not publish its
// value; 0.5 ("more common than distinct members") is our default and
// the ablation bench sweeps it.
const DefaultMergeThreshold = 0.5

// Merge repeatedly unions pairs of communities whose similarity
// ρ (eq. V.1) is at least threshold, until no such pair remains, and
// returns a new Cover. Only pairs sharing at least one node can have
// ρ > 0, so candidates come from an inverted node→community index.
// Empty communities are dropped.
func Merge(cv *cover.Cover, threshold float64) *cover.Cover {
	cs := make([]cover.Community, 0, cv.Len())
	for _, c := range cv.Communities {
		if len(c) > 0 {
			cc := make(cover.Community, len(c))
			copy(cc, c)
			cs = append(cs, cc)
		}
	}
	var sc mergeScratch
	for {
		merged := mergePass(cs, threshold, &sc)
		if merged == nil {
			break
		}
		cs = merged
	}
	return cover.NewCover(cs)
}

// mergeScratch holds the buffers mergePass reuses across passes: the
// CSR-style inverted node→community index (offsets + flat lists) and a
// stamped candidate-dedup array. One Merge call allocates the buffers
// once, on the first pass — later passes, whose covers only shrink, run
// allocation-free.
type mergeScratch struct {
	offsets []int64 // len maxID+2
	cursor  []int64 // fill cursors, len maxID+1
	lists   []int32 // flat community-id lists
	seen    []int32 // candidate dedup stamps, len = community count
	stamp   int32
	cands   []int32
}

// ensure sizes the buffers for node ids up to maxID over k communities.
func (sc *mergeScratch) ensure(maxID int32, k, memberships int) {
	if need := int(maxID) + 2; cap(sc.offsets) < need {
		sc.offsets = make([]int64, need)
		sc.cursor = make([]int64, need-1)
	} else {
		sc.offsets = sc.offsets[:need]
		sc.cursor = sc.cursor[:need-1]
		for i := range sc.offsets {
			sc.offsets[i] = 0
		}
	}
	if cap(sc.lists) < memberships {
		sc.lists = make([]int32, memberships)
	} else {
		sc.lists = sc.lists[:memberships]
	}
	if cap(sc.seen) < k {
		sc.seen = make([]int32, k)
		sc.stamp = 0
	} else {
		sc.seen = sc.seen[:k]
	}
}

// mergePass performs one greedy pass. It returns the new community list
// if at least one merge happened, or nil if none did.
func mergePass(cs []cover.Community, threshold float64, sc *mergeScratch) []cover.Community {
	maxID := int32(-1)
	memberships := 0
	for _, c := range cs {
		memberships += len(c)
		for _, v := range c {
			if v > maxID {
				maxID = v
			}
		}
	}
	sc.ensure(maxID, len(cs), memberships)
	// Build the inverted index CSR-style: count, prefix-sum, fill.
	// Communities are visited in ascending index order, so each node's
	// list comes out sorted. Negative ids are skipped (they cannot be
	// shared, so they never produce candidates).
	for _, c := range cs {
		for _, v := range c {
			if v >= 0 {
				sc.offsets[v+1]++
			}
		}
	}
	for v := int32(0); v <= maxID; v++ {
		sc.offsets[v+1] += sc.offsets[v]
	}
	copy(sc.cursor, sc.offsets[:maxID+1])
	for ci, c := range cs {
		for _, v := range c {
			if v >= 0 {
				sc.lists[sc.cursor[v]] = int32(ci)
				sc.cursor[v]++
			}
		}
	}

	dead := make([]bool, len(cs))
	anyMerge := false
	for i := range cs {
		if dead[i] {
			continue
		}
		// Collect distinct candidate partners sharing a node with i,
		// deduplicated by stamp (first-seen order, sorted below so merge
		// order stays deterministic).
		sc.stamp++
		sc.cands = sc.cands[:0]
		for _, v := range cs[i] {
			if v < 0 {
				continue
			}
			for _, j := range sc.lists[sc.offsets[v]:sc.offsets[v+1]] {
				if int(j) > i && !dead[j] && sc.seen[j] != sc.stamp {
					sc.seen[j] = sc.stamp
					sc.cands = append(sc.cands, j)
				}
			}
		}
		sort.Slice(sc.cands, func(a, b int) bool { return sc.cands[a] < sc.cands[b] })
		for _, j := range sc.cands {
			if dead[j] {
				continue
			}
			if metrics.Rho(cs[i], cs[j]) >= threshold {
				cs[i] = cs[i].Union(cs[j])
				dead[j] = true
				anyMerge = true
			}
		}
	}
	if !anyMerge {
		return nil
	}
	out := cs[:0]
	for i, c := range cs {
		if !dead[i] {
			out = append(out, c)
		}
	}
	return out
}

// OrphanOptions configure AssignOrphans.
type OrphanOptions struct {
	// Rounds bounds the propagation rounds: nodes assigned in round r
	// count as covered neighbors in round r+1, letting coverage spread
	// through regions no community reached. Default 1 (single pass, as a
	// literal reading of the paper suggests).
	Rounds int
	// Singletons, when true, turns nodes still uncovered after all
	// rounds into singleton communities so the result is a full cover.
	Singletons bool
}

// AssignOrphans returns a new Cover in which every node of g that was
// covered by no community joins the community containing the largest
// number of its neighbors (ties: the community that appears first).
// Nodes with no covered neighbors are left unassigned unless propagation
// rounds or Singletons place them.
func AssignOrphans(g *graph.Graph, cv *cover.Cover, opt OrphanOptions) *cover.Cover {
	if opt.Rounds <= 0 {
		opt.Rounds = 1
	}
	n := g.N()
	out := cv.Clone()

	// Original memberships come from the inverted index; an orphan
	// assigned during propagation gains exactly one community, tracked
	// in assigned (-1 = still uncovered).
	ix := index.Build(out, n)
	assigned := make([]int32, n)
	for i := range assigned {
		assigned[i] = -1
	}
	// appended[ci] accumulates new members per community.
	appended := make(map[int32][]int32)

	for round := 0; round < opt.Rounds; round++ {
		assignedAny := false
		// Collect this round's assignments first so a round is a
		// simultaneous update (deterministic, order-independent).
		roundAssign := make(map[int32]int32)
		for v := int32(0); v < int32(n); v++ {
			if ix.Covered(v) || assigned[v] >= 0 {
				continue
			}
			counts := map[int32]int{}
			for _, w := range g.Neighbors(v) {
				for _, ci := range ix.Communities(w) {
					counts[ci]++
				}
				if ci := assigned[w]; ci >= 0 {
					counts[ci]++
				}
			}
			if len(counts) == 0 {
				continue
			}
			best := int32(-1)
			bestCount := 0
			for ci, k := range counts {
				if k > bestCount || (k == bestCount && (best == -1 || ci < best)) {
					best, bestCount = ci, k
				}
			}
			roundAssign[v] = best
			assignedAny = true
		}
		for v, ci := range roundAssign {
			assigned[v] = ci
			appended[ci] = append(appended[ci], v)
		}
		if !assignedAny {
			break
		}
	}

	for ci, extra := range appended {
		out.Communities[ci] = out.Communities[ci].Union(cover.NewCommunity(extra))
	}
	if opt.Singletons {
		for v := int32(0); v < int32(n); v++ {
			if !ix.Covered(v) && assigned[v] < 0 {
				out.Communities = append(out.Communities, cover.Community{v})
			}
		}
	}
	return out
}
