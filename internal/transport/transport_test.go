package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/shard"
)

// twoCliques builds two K5 cliques (0–4, 5–9) joined by one bridge
// edge — small enough for fast OCA, structured enough that every shard
// serves real communities.
func twoCliques(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
			b.AddEdge(5+i, 5+j)
		}
	}
	b.AddEdge(4, 5)
	return b.Build()
}

func testOCA() core.Options { return core.Options{Seed: 1, C: 0.5} }

// cluster is an in-process multi-"process" deployment: K shard workers
// behind real HTTP shard servers (httptest), for provider-level tests.
type cluster struct {
	workers []*shard.Worker
	servers []*httptest.Server
	shards  []*ShardServer
	addrs   []string
}

// slowable wraps a handler with a switchable delay, to simulate a slow
// shard process.
type slowable struct {
	h     http.Handler
	delay atomic.Int64 // nanoseconds
}

func (s *slowable) setDelay(d time.Duration) { s.delay.Store(int64(d)) }

func (s *slowable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(s.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	s.h.ServeHTTP(w, r)
}

func startCluster(t testing.TB, g *graph.Graph, k, maxNodes int, opt core.Options) (*cluster, []*slowable) {
	t.Helper()
	pieces, err := shard.Split(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if maxNodes < g.N() {
		maxNodes = g.N()
	}
	cl := &cluster{}
	var slows []*slowable
	for s := 0; s < k; s++ {
		w, err := shard.NewWorker(pieces[s], k, shard.Config{
			OCA:                  opt,
			Debounce:             time.Millisecond,
			IncrementalThreshold: 0.5,
		}, maxNodes)
		if err != nil {
			t.Fatalf("shard %d worker: %v", s, err)
		}
		ss := NewShardServer(w, ServerConfig{GlobalNodes: g.N(), MaxNodes: maxNodes})
		sl := &slowable{h: ss.Handler()}
		ts := httptest.NewServer(sl)
		cl.workers = append(cl.workers, w)
		cl.shards = append(cl.shards, ss)
		cl.servers = append(cl.servers, ts)
		cl.addrs = append(cl.addrs, ts.URL)
		slows = append(slows, sl)
	}
	t.Cleanup(func() {
		for _, ts := range cl.servers {
			ts.Close()
		}
		for _, w := range cl.workers {
			w.Close()
		}
	})
	return cl, slows
}

func testDialOptions() Options {
	return Options{
		Client: ClientConfig{
			RequestTimeout:  500 * time.Millisecond,
			SnapshotTimeout: 2 * time.Second,
			PollInterval:    10 * time.Millisecond,
		},
		ConnectTimeout: 10 * time.Second,
	}
}

func dialCluster(t testing.TB, cl *cluster) *shard.Router {
	t.Helper()
	rt, err := Dial(context.Background(), cl.addrs, testDialOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return rt
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestSnapshotRoundTrip: a shard's published generation survives the
// wire encoding byte-for-byte in everything a reader consumes — graph
// dimensions and edges, cover, rebuilt index/stats, ownership metadata,
// and the scalar snapshot facts.
func TestSnapshotRoundTrip(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 0, testOCA())
	w := cl.workers[0]
	snap := w.Snapshot()

	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, w.Shard(), w.K(), snap, w.Table()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, table, err := decodeSnapshot(&buf, w.Shard(), w.K())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Gen != snap.Gen || got.C != snap.C || got.RebuildMode != snap.RebuildMode {
		t.Errorf("scalars: got gen=%d c=%g mode=%q, want gen=%d c=%g mode=%q",
			got.Gen, got.C, got.RebuildMode, snap.Gen, snap.C, snap.RebuildMode)
	}
	if got.Graph.N() != snap.Graph.N() || got.Graph.M() != snap.Graph.M() {
		t.Errorf("graph dims: got (%d, %d), want (%d, %d)", got.Graph.N(), got.Graph.M(), snap.Graph.N(), snap.Graph.M())
	}
	for v := int32(0); int(v) < snap.Graph.N(); v++ {
		gn, wn := got.Graph.Neighbors(v), snap.Graph.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("node %d degree %d, want %d", v, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
	if got.Cover.Len() != snap.Cover.Len() {
		t.Fatalf("cover: %d communities, want %d", got.Cover.Len(), snap.Cover.Len())
	}
	for i, c := range snap.Cover.Communities {
		if !got.Cover.Communities[i].Equal(c) {
			t.Fatalf("community %d differs", i)
		}
	}
	if got.Stats != snap.Stats {
		t.Errorf("stats: %+v, want %+v", got.Stats, snap.Stats)
	}
	gm, wm := got.Aux.(*shard.Meta), snap.Aux.(*shard.Meta)
	if gm.OwnedNodes != wm.OwnedNodes || gm.OwnedEdges != wm.OwnedEdges ||
		gm.CoveredOwned != wm.CoveredOwned || gm.OverlapOwned != wm.OverlapOwned ||
		gm.OwnedMemberships != wm.OwnedMemberships || gm.MaxMembershipOwned != wm.MaxMembershipOwned {
		t.Errorf("meta: %+v, want %+v", *gm, *wm)
	}
	if len(table) < got.Graph.N() || len(gm.Locals) != got.Graph.N() {
		t.Errorf("table/locals lengths: %d/%d for %d nodes", len(table), len(gm.Locals), got.Graph.N())
	}
}

// TestRemoteMatchesInProcess: the same graph served through the remote
// transport and through the in-process sharded router answers node
// lookups identically (same per-shard covers: identical seeds and
// pinned c make per-shard OCA deterministic).
func TestRemoteMatchesInProcess(t *testing.T) {
	g := twoCliques(t)
	const k = 2
	cl, _ := startCluster(t, g, k, 0, testOCA())
	rt := dialCluster(t, cl)

	remote, err := server.NewWithProvider(rt, server.Config{})
	if err != nil {
		t.Fatalf("NewWithProvider: %v", err)
	}
	t.Cleanup(remote.Close)
	remoteTS := httptest.NewServer(remote.Handler())
	t.Cleanup(remoteTS.Close)

	local, err := server.New(twoCliques(t), server.Config{OCA: testOCA(), Shards: k})
	if err != nil {
		t.Fatalf("New local: %v", err)
	}
	t.Cleanup(local.Close)
	localTS := httptest.NewServer(local.Handler())
	t.Cleanup(localTS.Close)

	type nodeResp struct {
		Node        int32  `json:"node"`
		Count       int    `json:"count"`
		Communities []any  `json:"communities"`
		Shards      []any  `json:"shards"`
		Generation  uint64 `json:"generation"`
	}
	for v := 0; v < g.N(); v++ {
		var rr, lr nodeResp
		rc := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities?members=1", remoteTS.URL, v), &rr)
		lc := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities?members=1", localTS.URL, v), &lr)
		if rc != http.StatusOK || lc != http.StatusOK {
			t.Fatalf("node %d: remote %d, local %d", v, rc, lc)
		}
		if rr.Count != lr.Count {
			t.Errorf("node %d: remote count %d, local %d", v, rr.Count, lr.Count)
		}
	}

	// Aggregate shapes agree too: same owned dims, both generation 1.
	var rh, lh struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Edges  int64  `json:"edges"`
	}
	getJSON(t, remoteTS.URL+"/healthz", &rh)
	getJSON(t, localTS.URL+"/healthz", &lh)
	if rh != lh {
		t.Errorf("healthz: remote %+v, local %+v", rh, lh)
	}
	if rh.Status != "ok" {
		t.Errorf("remote healthz status = %q", rh.Status)
	}
}

// TestRemoteMutationFlow: mutations posted through the remote-backed
// server fan out over the wire, wait=true flushes only the touched
// shards, and — the read-your-writes contract — an immediately
// following lookup observes the flushed generation. Growth materializes
// new nodes across processes.
func TestRemoteMutationFlow(t *testing.T) {
	g := twoCliques(t)
	const k = 2
	cl, _ := startCluster(t, g, k, 64, testOCA())
	rt := dialCluster(t, cl)
	remote, err := server.NewWithProvider(rt, server.Config{})
	if err != nil {
		t.Fatalf("NewWithProvider: %v", err)
	}
	t.Cleanup(remote.Close)
	ts := httptest.NewServer(remote.Handler())
	t.Cleanup(ts.Close)

	var er struct {
		Queued     int             `json:"queued"`
		Generation uint64          `json:"generation"`
		Applied    bool            `json:"applied"`
		Shards     shard.GenVector `json:"shards"`
	}
	code := postJSON(t, ts.URL+"/v1/edges", map[string]any{
		"add":  [][2]int32{{0, 7}, {10, 11}},
		"wait": true,
	}, &er)
	if code != http.StatusOK {
		t.Fatalf("edges wait=true status = %d", code)
	}
	if !er.Applied || er.Queued != 2 {
		t.Fatalf("edges response: %+v", er)
	}
	if er.Generation < 2 {
		t.Fatalf("generation after flush = %d, want >= 2", er.Generation)
	}
	if len(er.Shards) != k {
		t.Fatalf("shard vector has %d entries, want %d", len(er.Shards), k)
	}
	for _, e := range er.Shards {
		if e.Err != "" {
			t.Fatalf("shard %d degraded: %s", e.Shard, e.Err)
		}
	}

	// Read-your-writes: the grown node answers immediately (200, not
	// 404) and the response quotes a generation at or past the flush.
	var nr struct {
		Generation uint64 `json:"generation"`
	}
	if code := getJSON(t, ts.URL+"/v1/node/10/communities", &nr); code != http.StatusOK {
		t.Fatalf("lookup of grown node 10 = %d, want 200", code)
	}
	// The added cross-clique edge is in both owning shards' graphs.
	for _, w := range cl.workers {
		view := w.View()
		lu, ok1 := view.Local(0)
		lv, ok2 := view.Local(7)
		if ok1 && ok2 && !view.Snap.Graph.HasEdge(lu, lv) {
			t.Errorf("shard %d: edge (0,7) missing after flush", w.Shard())
		}
	}
}

// TestApplyBatchReconciliation: re-shipped table entries are verified
// and skipped (retry safety), gaps and contradictions are conflicts.
func TestApplyBatchReconciliation(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 64, testOCA())
	w := cl.workers[0]
	base := len(w.Table())

	// New ghost entries 20, 22 (globals of shard 0) appended at base.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base, NewLocals: []int32{20, 22}}); err != nil {
		t.Fatalf("first apply: %v", err)
	}
	// Identical re-ship: idempotent.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base, NewLocals: []int32{20, 22}}); err != nil {
		t.Fatalf("re-ship: %v", err)
	}
	// Overlapping re-ship plus one new entry.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base, NewLocals: []int32{20, 22, 24}}); err != nil {
		t.Fatalf("overlap ship: %v", err)
	}
	if got := len(w.Table()); got != base+3 {
		t.Fatalf("table length %d, want %d", got, base+3)
	}
	// Contradicting re-ship: conflict.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base, NewLocals: []int32{26}}); err == nil {
		t.Fatal("contradicting re-ship accepted, want conflict")
	}
	// Gap beyond the table: conflict.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base + 10, NewLocals: []int32{28}}); err == nil {
		t.Fatal("gapped base accepted, want conflict")
	}
	// Duplicate global at a new local: conflict.
	if _, _, err := w.ApplyBatch(shard.Batch{Base: base + 3, NewLocals: []int32{20}}); err == nil {
		t.Fatal("duplicate global accepted, want conflict")
	}
}

// TestProtocolVersionGate: a request carrying a foreign protocol
// version is refused with the protocol_mismatch code.
func TestProtocolVersionGate(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 0, testOCA())

	req, _ := http.NewRequest(http.MethodGet, cl.addrs[0]+PathHealth, nil)
	req.Header.Set(HeaderProtocol, "999")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeProtocolMismatch {
		t.Fatalf("code = %q, want %q", er.Code, CodeProtocolMismatch)
	}
	if got := resp.Header.Get(HeaderProtocol); got != "1" {
		t.Fatalf("response protocol header = %q, want 1", got)
	}
}

// TestDialValidation: a shard hosted at the wrong position, or an
// inconsistent deployment, fails the handshake.
func TestDialValidation(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 0, testOCA())

	opt := testDialOptions()
	opt.ConnectTimeout = 2 * time.Second
	// Swapped addresses: addr 0 hosts shard 1.
	if _, err := Dial(context.Background(), []string{cl.addrs[1], cl.addrs[0]}, opt); err == nil {
		t.Fatal("Dial accepted swapped shard addresses")
	}
	// Wrong K: two copies of shard 0's address.
	if _, err := Dial(context.Background(), []string{cl.addrs[0], cl.addrs[0]}, opt); err == nil {
		t.Fatal("Dial accepted a duplicate shard address")
	}
}
