package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/search"
)

// gainTol is the minimum fitness improvement for a greedy move. Moves
// must strictly improve L; the tolerance absorbs float round-off and, by
// bounding each step's progress away from zero, guarantees termination.
const gainTol = 1e-9

// localSearch grows a community from seed by greedy optimization of L
// (Section IV): start from the seed plus a random subset of its
// neighborhood, then repeatedly apply the single best addition or
// removal until no move improves the fitness.
//
// st must be empty (or Reset); it is left holding the final community so
// the caller can extract members. Returns the number of greedy steps
// applied and the final fitness.
func localSearch(g *graph.Graph, st *search.State, seed int32, c float64, rng *rand.Rand, opt searchOpts) (steps int, fitness float64) {
	st.Add(seed)
	for _, w := range g.Neighbors(seed) {
		if rng.Float64() < opt.neighborProb {
			if opt.maxSize > 0 && st.Size() >= opt.maxSize {
				break
			}
			st.Add(w)
		}
	}

	for opt.maxSteps <= 0 || steps < opt.maxSteps {
		s, m := st.Size(), st.Ein()
		cur := L(s, m, c)

		bestGain := 0.0
		bestIsAdd := false
		var bestNode int32
		haveMove := false

		if v, d, ok := st.BestAddition(); ok && (opt.maxSize <= 0 || s < opt.maxSize) {
			if gain := gainAdd(s, m, d, c); gain > gainTol {
				bestGain, bestNode, bestIsAdd, haveMove = gain, v, true, true
			}
		}
		if s > 1 {
			if u, d, ok := st.WorstMember(); ok {
				if gain := gainRemove(s, m, d, c); gain > gainTol && gain > bestGain {
					bestGain, bestNode, bestIsAdd, haveMove = gain, u, false, true
				}
			}
		}
		if !haveMove {
			return steps, cur
		}
		if bestIsAdd {
			st.Add(bestNode)
		} else {
			st.Remove(bestNode)
		}
		steps++
	}
	return steps, L(st.Size(), st.Ein(), c)
}

// searchOpts are the per-seed knobs of the local search, extracted from
// Options by the driver.
type searchOpts struct {
	neighborProb float64
	maxSteps     int
	maxSize      int
}
