package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		b.AddEdge(i, (i+1)%int32(n))
	}
	return b.Build()
}

func star(leaves int) *graph.Graph {
	b := graph.NewBuilder(leaves + 1)
	for i := int32(1); i <= int32(leaves); i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n-1); i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// Known spectra:
//
//	K_n:     λmax = n-1, λmin = -1
//	C_n:     λk = 2cos(2πk/n); λmax = 2, λmin = -2 (even n)
//	K_{1,s}: λmax = √s, λmin = -√s
//	P_n:     λk = 2cos(kπ/(n+1))
func TestLambdaMaxKnownGraphs(t *testing.T) {
	opt := Options{Seed: 1}
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K5", complete(5), 4},
		{"K10", complete(10), 9},
		{"C8", cycle(8), 2},
		{"star9", star(9), 3},
		{"P5", pathGraph(5), 2 * math.Cos(math.Pi/6)},
	}
	for _, tc := range cases {
		got, err := LambdaMax(tc.g, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		approx(t, tc.name+" λmax", got, tc.want, 1e-4)
	}
}

func TestLambdaMinKnownGraphs(t *testing.T) {
	opt := Options{Seed: 1}
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K5", complete(5), -1},
		{"C8", cycle(8), -2},
		{"star9", star(9), -3}, // bipartite: λmin = -λmax
		{"P5", pathGraph(5), -2 * math.Cos(math.Pi/6)},
	}
	for _, tc := range cases {
		got, err := LambdaMin(tc.g, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		approx(t, tc.name+" λmin", got, tc.want, 1e-3)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	if _, err := LambdaMax(g, Options{}); err != ErrNoEdges {
		t.Fatalf("LambdaMax err=%v, want ErrNoEdges", err)
	}
	if _, err := LambdaMin(g, Options{}); err != ErrNoEdges {
		t.Fatalf("LambdaMin err=%v, want ErrNoEdges", err)
	}
	c, err := C(g, Options{})
	if err != nil || c != 0 {
		t.Fatalf("C=%g err=%v, want 0,<nil>", c, err)
	}
}

func TestCClamp(t *testing.T) {
	// Single edge: λmin = -1 so raw c = 1, must clamp to CMax < 1.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	c, err := C(b.Build(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c != CMax {
		t.Fatalf("c=%g, want clamp to %g", c, CMax)
	}
	// K10: λmin = -1 exactly -> also clamped.
	c, err = C(complete(10), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c != CMax {
		t.Fatalf("K10 c=%g, want %g", c, CMax)
	}
	// C8: λmin=-2 -> c=0.5.
	c, err = C(cycle(8), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "C(C8)", c, 0.5, 1e-3)
}

func TestExactEigenvaluesKnown(t *testing.T) {
	eig := ExactEigenvalues(complete(4), 0)
	want := []float64{-1, -1, -1, 3}
	for i := range want {
		approx(t, "K4 eig", eig[i], want[i], 1e-8)
	}
	eig = ExactEigenvalues(star(4), 0)
	approx(t, "star4 min", eig[0], -2, 1e-8)
	approx(t, "star4 max", eig[len(eig)-1], 2, 1e-8)
}

// TestPowerMatchesJacobi compares the power method estimates with the
// exact Jacobi spectrum on random graphs.
func TestPowerMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		if g.M() == 0 {
			return true
		}
		eig := ExactEigenvalues(g, 0)
		opt := Options{Seed: seed, MaxIter: 5000, Tol: 1e-10}
		lmax, err := LambdaMax(g, opt)
		if err != nil {
			return false
		}
		lmin, err := LambdaMin(g, opt)
		if err != nil {
			return false
		}
		// λmin is clamped to <= -1, mirror that for the exact value.
		exactMin := math.Min(eig[0], -1)
		return math.Abs(lmax-eig[len(eig)-1]) < 1e-3 &&
			math.Abs(lmin-exactMin) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnected verifies λmax is the max over components.
func TestDisconnected(t *testing.T) {
	// K5 plus disjoint K3: λmax = 4 (from K5), λmin = -1.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(5, 7)
	g := b.Build()
	lmax, err := LambdaMax(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "λmax", lmax, 4, 1e-4)
	lmin, err := LambdaMin(g, Options{Seed: 2, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Both components have λmin = -1... path component K3 has λmin=-1 too.
	approx(t, "λmin", lmin, -1, 1e-2)
}

func TestDeterminism(t *testing.T) {
	g := cycle(50)
	a, err := LambdaMin(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LambdaMin(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %g and %g", a, b)
	}
}

func BenchmarkLambdaMinCycle(b *testing.B) {
	g := cycle(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LambdaMin(g, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
