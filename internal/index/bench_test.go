package index

import (
	"testing"

	"repro/internal/cover"
)

// benchCover builds a cover with many mid-sized communities so the
// index-vs-scan gap is visible: per-query work is O(memberships of the
// node) for the index against O(total cover size) for a scan.
func benchCover(nComms, size, n int) *cover.Cover {
	cs := make([]cover.Community, nComms)
	for ci := range cs {
		c := make(cover.Community, size)
		for i := range c {
			c[i] = int32((ci*size + i) % n)
		}
		cs[ci] = cover.NewCommunity(c)
	}
	return cover.NewCover(cs)
}

// BenchmarkLookup measures one membership query through the index —
// the hot path of ocad's GET /v1/node/{id}/communities.
func BenchmarkLookup(b *testing.B) {
	const n = 100000
	cv := benchCover(2000, 100, n)
	ix := Build(cv, n)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(ix.Communities(int32(i % n)))
	}
	_ = sink
}

// BenchmarkLookupLinearScan is the ablation: answering the same query
// by scanning every community, which the index exists to avoid.
func BenchmarkLookupLinearScan(b *testing.B) {
	const n = 100000
	cv := benchCover(2000, 100, n)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		v := int32(i % n)
		for _, c := range cv.Communities {
			if c.Contains(v) {
				sink++
			}
		}
	}
	_ = sink
}

// BenchmarkBuild measures one-time index construction.
func BenchmarkBuild(b *testing.B) {
	const n = 100000
	cv := benchCover(2000, 100, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cv, n)
	}
}
