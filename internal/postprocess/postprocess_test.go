package postprocess

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func com(vs ...int32) cover.Community { return cover.NewCommunity(vs) }

func TestMergeCollapsesDuplicates(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		com(0, 1, 2, 3),
		com(0, 1, 2, 3), // exact duplicate
		com(0, 1, 2, 4), // ρ = 3/5 = 0.6
		com(10, 11, 12), // unrelated
	})
	got := Merge(cv, 0.5)
	if got.Len() != 2 {
		t.Fatalf("got %d communities, want 2: %v", got.Len(), got.Communities)
	}
	// The merged community is the union of the three similar ones.
	var big cover.Community
	for _, c := range got.Communities {
		if c.Contains(0) {
			big = c
		}
	}
	if !big.Equal(com(0, 1, 2, 3, 4)) {
		t.Fatalf("merged community %v", big)
	}
}

func TestMergeRespectsThreshold(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		com(0, 1, 2, 3),
		com(2, 3, 4, 5), // ρ = 2/6 = 0.333
	})
	if got := Merge(cv, 0.5); got.Len() != 2 {
		t.Fatalf("ρ below threshold merged anyway: %v", got.Communities)
	}
	if got := Merge(cv, 0.3); got.Len() != 1 {
		t.Fatalf("ρ above threshold not merged: %v", got.Communities)
	}
}

func TestMergeCascades(t *testing.T) {
	// a~b and (a∪b)~c but a!~c: merging must cascade across passes.
	a := com(0, 1, 2, 3, 4, 5)
	b := com(3, 4, 5, 6, 7, 8)             // ρ(a,b)=3/9=0.33
	c := com(0, 1, 2, 3, 4, 5, 6, 7, 8, 9) // ρ(a∪b, c) = 9/10
	cv := cover.NewCover([]cover.Community{a, b, c})
	got := Merge(cv, 0.3)
	if got.Len() != 1 {
		t.Fatalf("cascade failed: %d communities remain", got.Len())
	}
}

func TestMergeDropsEmpty(t *testing.T) {
	cv := cover.NewCover([]cover.Community{com(), com(1, 2)})
	if got := Merge(cv, 0.5); got.Len() != 1 {
		t.Fatalf("empty community survived: %v", got.Communities)
	}
}

// TestMergeFixpoint: after Merge, no pair has ρ ≥ threshold.
func TestMergeFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(12)
		cs := make([]cover.Community, k)
		for i := range cs {
			var vals []int32
			for j := 0; j < 2+rng.Intn(10); j++ {
				vals = append(vals, int32(rng.Intn(30)))
			}
			cs[i] = cover.NewCommunity(vals)
		}
		threshold := 0.2 + 0.7*rng.Float64()
		got := Merge(cover.NewCover(cs), threshold)
		for i := 0; i < got.Len(); i++ {
			for j := i + 1; j < got.Len(); j++ {
				if metrics.Rho(got.Communities[i], got.Communities[j]) >= threshold {
					return false
				}
			}
		}
		// Every original node is still covered.
		origCovered := map[int32]bool{}
		for _, c := range cs {
			for _, v := range c {
				origCovered[v] = true
			}
		}
		newCovered := map[int32]bool{}
		for _, c := range got.Communities {
			for _, v := range c {
				newCovered[v] = true
			}
		}
		if len(origCovered) != len(newCovered) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n-1); i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestAssignOrphansBasic(t *testing.T) {
	// Path 0-1-2-3-4; community {0,1}. Node 2 has one neighbor covered.
	g := pathGraph(5)
	cv := cover.NewCover([]cover.Community{com(0, 1)})
	got := AssignOrphans(g, cv, OrphanOptions{})
	if !got.Communities[0].Contains(2) {
		t.Fatalf("node 2 not adopted: %v", got.Communities)
	}
	// One round: nodes 3,4 still orphans.
	if got.Communities[0].Contains(3) || got.Communities[0].Contains(4) {
		t.Fatalf("distant orphans adopted in a single round: %v", got.Communities)
	}
}

func TestAssignOrphansPropagation(t *testing.T) {
	g := pathGraph(5)
	cv := cover.NewCover([]cover.Community{com(0, 1)})
	got := AssignOrphans(g, cv, OrphanOptions{Rounds: 10})
	want := com(0, 1, 2, 3, 4)
	if !got.Communities[0].Equal(want) {
		t.Fatalf("propagation incomplete: %v", got.Communities)
	}
}

func TestAssignOrphansMajorityWins(t *testing.T) {
	// Star: center 0 with neighbors 1,2,3. Communities {1,2} and {3}.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	cv := cover.NewCover([]cover.Community{com(1, 2), com(3)})
	got := AssignOrphans(g, cv, OrphanOptions{})
	if !got.Communities[0].Contains(0) {
		t.Fatal("center should join the majority community")
	}
	if got.Communities[1].Contains(0) {
		t.Fatal("center joined the minority community")
	}
}

func TestAssignOrphansSingletons(t *testing.T) {
	// Isolated node 3 can never be adopted; Singletons gives it its own
	// community.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	cv := cover.NewCover([]cover.Community{com(0, 1, 2)})
	got := AssignOrphans(g, cv, OrphanOptions{Singletons: true})
	if got.Len() != 2 {
		t.Fatalf("want singleton community, got %v", got.Communities)
	}
	if !got.Communities[1].Equal(com(3)) {
		t.Fatalf("singleton wrong: %v", got.Communities[1])
	}
}

func TestAssignOrphansFullCoverInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		// Random partial cover.
		var members []int32
		for v := int32(0); v < int32(n); v++ {
			if rng.Intn(3) == 0 {
				members = append(members, v)
			}
		}
		if len(members) == 0 {
			members = append(members, 0)
		}
		cv := cover.NewCover([]cover.Community{cover.NewCommunity(members)})
		got := AssignOrphans(g, cv, OrphanOptions{Rounds: n, Singletons: true})
		return got.Coverage(n) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignOrphansDoesNotMutateInput(t *testing.T) {
	g := pathGraph(3)
	orig := com(0, 1)
	cv := cover.NewCover([]cover.Community{orig})
	AssignOrphans(g, cv, OrphanOptions{})
	if len(cv.Communities[0]) != 2 {
		t.Fatal("input cover mutated")
	}
}
