package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/refresh"
)

func openTestStore(t *testing.T, dir string) *persist.Store {
	t.Helper()
	st, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	return st
}

// recoverSnapshot runs the full startup recovery sequence a fresh
// process would: scan the directory, replay the WAL tail, hand back the
// pre-shutdown snapshot (nil on a cold start).
func recoverSnapshot(t *testing.T, store *persist.Store, oca core.Options) *refresh.Snapshot {
	t.Helper()
	st, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := persist.ReplaySingle(st, persist.ReplayConfig{Refresh: refresh.Config{OCA: oca}})
	if err != nil {
		t.Fatalf("ReplaySingle: %v", err)
	}
	if st.Segment != nil {
		t.Cleanup(func() { st.Segment.Close() })
	}
	return snap
}

// TestServerPersistRestartRoundTrip drives the durability cycle through
// the HTTP layer: a server logging to a store, a mutation, a clean
// shutdown (final seal), a restart serving the recovered snapshot at
// the exact pre-shutdown generation, then a simulated crash whose WAL
// tail replays on the next recovery.
func TestServerPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oca := core.Options{Seed: 1, C: 0.5}

	store := openTestStore(t, dir)
	if snap := recoverSnapshot(t, store, oca); snap != nil {
		t.Fatalf("cold start returned snapshot %+v", snap)
	}
	s, err := New(twoCliqueGraph(t), Config{OCA: oca, Persist: store})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())

	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 9}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges status = %d", code)
	}
	if !er.Applied || er.Generation != 2 {
		t.Fatalf("edges response = %+v, want applied at generation 2", er)
	}
	var h healthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Persistence == nil || h.Persistence.LoggedBatches != 1 {
		t.Fatalf("healthz persistence = %+v, want 1 logged batch", h.Persistence)
	}
	if h.Persistence.Recovered.Source != "cold" {
		t.Errorf("recovery source = %q, want cold", h.Persistence.Recovered.Source)
	}
	preCover := append([]int32(nil), s.worker.Snapshot().Cover.Communities[0]...)
	ts.Close()
	s.Close() // clean shutdown: seals the final segment
	store.Close()

	// Restart: recovery is a pure segment load (no WAL tail after a
	// clean shutdown) and the served generation does not regress.
	store2 := openTestStore(t, dir)
	snap := recoverSnapshot(t, store2, oca)
	if snap == nil || snap.Gen != 2 {
		t.Fatalf("recovered snapshot = %+v, want generation 2", snap)
	}
	s2, err := NewWithSnapshot(snap, Config{Persist: store2})
	if err != nil {
		t.Fatalf("NewWithSnapshot: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	if got := s2.Generation(); got != 2 {
		t.Fatalf("restarted generation = %d, want 2", got)
	}
	if !snap.Graph.HasEdge(0, 9) {
		t.Error("recovered graph lost the mutation")
	}
	if got := []int32(snap.Cover.Communities[0]); !reflect.DeepEqual(got, preCover) {
		t.Errorf("recovered cover community 0 = %v, want %v", got, preCover)
	}
	getJSON(t, ts2.URL+"/healthz", &h)
	if h.Persistence == nil || h.Persistence.Recovered.Source != "segment" {
		t.Fatalf("restart healthz persistence = %+v, want source segment", h.Persistence)
	}

	// A mutation accepted after restart, then a crash (no seal): the
	// next recovery replays it from the WAL tail.
	if code := postJSON(t, ts2.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{1, 8}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("post-restart edges status = %d", code)
	}
	store2.Close() // kill: the server never seals

	store3 := openTestStore(t, dir)
	snap3 := recoverSnapshot(t, store3, oca)
	defer store3.Close()
	if snap3 == nil || snap3.Gen != 3 {
		t.Fatalf("post-crash snapshot = %+v, want generation 3", snap3)
	}
	if !snap3.Graph.HasEdge(1, 8) || !snap3.Graph.HasEdge(0, 9) {
		t.Error("post-crash recovery lost a mutation")
	}
	if st := store3.Stats(); st.Recovered.Source != "segment+wal" || st.Recovered.ReplayedBatches != 1 {
		t.Errorf("post-crash recovery stats = %+v, want segment+wal with 1 batch", st.Recovered)
	}
}

// TestExportGenerationParam exercises the point-in-time export: retained
// generations stream from segments, the live one from the snapshot, and
// the error paths are explicit.
func TestExportGenerationParam(t *testing.T) {
	dir := t.TempDir()
	oca := core.Options{Seed: 1, C: 0.5}
	store := openTestStore(t, dir)
	defer store.Close()
	s, err := New(twoCliqueGraph(t), Config{OCA: oca, Persist: store})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 9}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges status = %d", code)
	}

	// Generation 1 was sealed at startup; generation 2 is live and
	// unsealed. Both must export, with matching meta lines.
	for gen, wantEdges := range map[uint64]int64{1: 29, 2: 30} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/cover/export?generation=%d", ts.URL, gen))
		if err != nil {
			t.Fatal(err)
		}
		var meta exportMeta
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&meta) != nil {
			t.Fatalf("export generation %d: status %d", gen, resp.StatusCode)
		}
		resp.Body.Close()
		if meta.Generation != gen || meta.Edges != wantEdges {
			t.Errorf("export generation %d meta = %+v, want edges %d", gen, meta, wantEdges)
		}
	}

	if code := getJSON(t, ts.URL+"/v1/cover/export?generation=99", nil); code != http.StatusNotFound {
		t.Errorf("unknown generation status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cover/export?generation=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bad generation status = %d, want 400", code)
	}

	// Without a data directory the parameter is an explicit error, not
	// silently ignored.
	bare, bts := newTestServer(t, Config{})
	_ = bare
	if code := getJSON(t, bts.URL+"/v1/cover/export?generation=1", nil); code != http.StatusBadRequest {
		t.Errorf("no-store generation status = %d, want 400", code)
	}
}

// TestPersistUnsupportedTopologies pins the roles that must refuse a
// store: in-process sharding and the provider-backed router.
func TestPersistUnsupportedTopologies(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	defer store.Close()
	if _, err := New(twoCliqueGraph(t), Config{Shards: 2, OCA: core.Options{Seed: 1, C: 0.5}, Persist: store}); err == nil {
		t.Error("in-process sharded server accepted a store")
	}
	if _, err := NewWithSnapshot(refresh.NewSnapshot(twoCliqueGraph(t), fixedCover(), nil, 0.5, 0), Config{Shards: 2}); err == nil {
		t.Error("sharded NewWithSnapshot accepted")
	}
}
