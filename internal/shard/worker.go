package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/spectral"
)

// ErrUnavailable marks a shard whose backend cannot be reached — a
// remote shard process that is down, unreachable or answering too
// slowly. The in-process Worker never returns it; the transport layer
// wraps its failures with it so the HTTP layer can map a degraded shard
// to 503 instead of 400.
var ErrUnavailable = errors.New("shard: backend unavailable")

// ErrTableConflict marks a shipped translation-table update that
// contradicts the shard's table — evidence of a second writer growing
// it, which the single-router protocol forbids. Not retryable.
var ErrTableConflict = errors.New("shard: translation-table conflict")

// Backend is one shard's serving engine as the Router sees it: the
// shard's authoritative (or replicated) global↔local translation table
// plus its query/mutation surface. Two implementations exist — the
// in-process *Worker below, and the transport package's remote client,
// which replays the same operations over the wire to a Worker hosted in
// another process. All methods except EnsureLocal are safe for
// concurrent use.
type Backend interface {
	// Lookup resolves a global node id in the shard's translation
	// table (including entries pending publication).
	Lookup(global int32) (int32, bool)
	// EnsureLocal returns the local id for a global node, appending a
	// new table entry when unseen. Callers serialize through the
	// router's mutation lock; the append order defines the shard's id
	// space, so it must be identical on every replica of the table.
	EnsureLocal(global int32) int32
	// Apply queues a batch of translated local-id mutations, bounded by
	// ctx for remote backends (a canceled caller cancels the in-flight
	// RPC). The remote implementation ships any translation-table growth
	// since the last successful Apply alongside the batch (the
	// ghost-table update riding the mutation fan-out).
	Apply(ctx context.Context, add, remove [][2]int32) error
	// View returns the shard's current published generation. It never
	// blocks; a degraded remote shard returns its last mirrored
	// snapshot with View.Err set.
	View() View
	// Flush blocks until previously applied mutations are reflected in
	// a published generation, returning that generation.
	Flush(ctx context.Context) (uint64, error)
	// Status is the shard's point-in-time worker status; for remote
	// shards it is the last health probe (Status.Err set when stale).
	Status() WorkerStatus
	// Close releases the backend (stops the in-process refresh worker,
	// or the remote mirror's poller — never the remote process itself).
	Close()
}

// Worker is one shard's authoritative serving engine: the shard graph
// kept live by its own refresh.Worker, the append-only global↔local
// translation table, and the ghost-filtering snapshot assembly. It is
// used in-process as the Router's local Backend, and out-of-process as
// the state behind a transport shard server (`ocad -serve-shard`).
type Worker struct {
	id       int
	k        int
	maxNodes int

	// pm is the partition map ownership is evaluated under. Reads are
	// lock-free; SetPartitionMap swaps it and forces an ownership
	// rebuild when the shard's owned set changes.
	pm atomic.Pointer[PartitionMap]

	mu     sync.RWMutex // guards locals/index growth vs readers
	locals []int32
	index  map[int32]int32

	applyMu sync.Mutex // serializes ApplyBatch table reconciliation

	// shipping stashes the table growth of the batch ApplyBatch is
	// currently queueing, for the refresh-level LogBatch hook to attach
	// to the WAL record. Guarded by applyMu: the hook fires inside
	// Enqueue, synchronously under ApplyBatch's critical section.
	shipping Batch

	worker *refresh.Worker
}

// NewWorker computes the shard's first generation from its piece of the
// split graph (running OCA unless the piece has no edges) and starts
// its refresh worker. maxNodes is the global node-set ceiling: local
// growth is always possible up to it, because even a fixed global node
// set grows a shard locally when new ghosts materialize.
func NewWorker(pc Piece, k int, cfg Config, maxNodes int) (*Worker, error) {
	w := &Worker{id: pc.Shard, k: k, maxNodes: maxNodes, locals: pc.Locals}
	if err := w.initMap(cfg, k); err != nil {
		return nil, err
	}
	w.index = make(map[int32]int32, len(w.locals))
	for l, gv := range w.locals {
		w.index[gv] = int32(l)
	}

	pg := pc.Graph
	start := time.Now()
	var (
		cv  *cover.Cover
		res *core.Result
		c   = cfg.OCA.C
	)
	if pg.M() == 0 {
		// No edges: nothing to search, and the spectrum (hence c) is
		// undefined. Serve an empty cover; mutations can populate it.
		cv = cover.NewCover(nil)
		c = 0
	} else {
		if c == 0 {
			var err error
			if c, err = spectral.C(pg, cfg.OCA.Spectral); err != nil {
				return nil, fmt.Errorf("deriving c: %w", err)
			}
		}
		opt := cfg.OCA
		opt.C = c
		var err error
		if res, err = core.Run(pg, opt); err != nil {
			return nil, fmt.Errorf("initial OCA: %w", err)
		}
		cv = res.Cover
	}
	snap := w.buildSnapshot(pg, cv, res, c, time.Since(start))

	wopt := cfg.OCA
	wopt.C = c // pin the shard's derived c; RederiveCAfter handles drift
	if cfg.workerOCA != nil {
		wopt = cfg.workerOCA(pc.Shard, wopt)
	}
	w.worker = refresh.New(snap, w.refreshConfig(cfg, wopt))
	w.worker.Start()
	return w, nil
}

// NewWorkerFromSnapshot rebuilds a shard worker from persisted state —
// a recovered snapshot's graph and cover plus its local→global
// translation table — without running OCA: the index, stats and
// ownership metadata are reassembled deterministically and the
// snapshot's generation, sequence and parameter facts carry over. The
// table must be exactly the snapshot graph's node count (the persisted
// prefix); growth beyond it replays through ApplyBatch.
func NewWorkerFromSnapshot(snap *refresh.Snapshot, table []int32, shardID, k int, cfg Config, maxNodes int) *Worker {
	w := &Worker{id: shardID, k: k, maxNodes: maxNodes}
	if err := w.initMap(cfg, k); err != nil {
		// K was validated by every caller already; an invalid recovered
		// map is caught by cmd/ocad's boot validation before this point.
		panic(err)
	}
	w.locals = append([]int32(nil), table...)
	w.index = make(map[int32]int32, len(w.locals))
	for l, gv := range w.locals {
		w.index[gv] = int32(l)
	}
	restored := w.buildSnapshot(snap.Graph, snap.Cover, snap.Result, snap.C, snap.BuildTime)
	restored.Gen, restored.Seq = snap.Gen, snap.Seq
	restored.BuiltAt = snap.BuiltAt
	restored.RebuildMode = snap.RebuildMode

	wopt := cfg.OCA
	wopt.C = snap.C
	if cfg.workerOCA != nil {
		wopt = cfg.workerOCA(shardID, wopt)
	}
	w.worker = refresh.New(restored, w.refreshConfig(cfg, wopt))
	w.worker.Start()
	return w
}

// refreshConfig assembles the shard worker's refresh.Config, wiring
// the snapshot-assembly hooks and translating the shard-level publish
// and WAL hooks onto the refresh-level ones.
func (w *Worker) refreshConfig(cfg Config, wopt core.Options) refresh.Config {
	wcfg := refresh.Config{
		OCA:              wopt,
		DisableWarmStart: cfg.DisableWarmStart,
		Debounce:         cfg.Debounce,
		MaxPending:       cfg.MaxPending,
		// Local growth must always be possible even under a fixed global
		// node set: a cross-shard edge can materialize a new ghost here.
		// A shard's locals never exceed the global node count.
		MaxNodes:             w.maxNodes,
		RederiveCAfter:       cfg.RederiveCAfter,
		IncrementalThreshold: cfg.IncrementalThreshold,
		BuildSnapshot:        w.buildSnapshot,
		PatchSnapshot:        w.patchSnapshot,
	}
	if cfg.OnSwap != nil {
		wcfg.OnSwap = func(snap *refresh.Snapshot) { cfg.OnSwap(w.id, snap) }
	}
	if cfg.LogBatch != nil {
		wcfg.LogBatch = func(add, remove [][2]int32, seq uint64) error {
			b := w.shipping
			b.Add, b.Remove = add, remove
			return cfg.LogBatch(b, seq)
		}
	}
	return wcfg
}

// initMap installs the worker's initial partition map: Config's (the
// recovered map on restart) or the epoch-0 modulo-K base.
func (w *Worker) initMap(cfg Config, k int) error {
	pm := cfg.PartitionMap
	if pm == nil {
		var err error
		if pm, err = NewPartitionMap(k); err != nil {
			return err
		}
	} else {
		if pm.K != k {
			return fmt.Errorf("shard %d: partition map K=%d does not match shard count %d", w.id, pm.K, k)
		}
		if err := pm.Validate(); err != nil {
			return err
		}
	}
	w.pm.Store(pm)
	return nil
}

// PartitionMap returns the map ownership is currently evaluated under.
func (w *Worker) PartitionMap() *PartitionMap { return w.pm.Load() }

// SetPartitionMap installs a new partition map. When the shard's owned
// set changes under it (donor dropping a migrated range, receiver
// adopting one) a full ownership rebuild is forced, publishing the next
// generation with the new map's filtering; callers needing the rebuild
// reflected synchronously Flush afterwards. Installing a structurally
// identical map is a no-op, so flip broadcasts are idempotent.
func (w *Worker) SetPartitionMap(pm *PartitionMap) error {
	if pm == nil {
		return fmt.Errorf("shard %d: nil partition map", w.id)
	}
	if pm.K != w.k {
		return fmt.Errorf("shard %d: partition map K=%d does not match shard count %d", w.id, pm.K, w.k)
	}
	if err := pm.Validate(); err != nil {
		return err
	}
	old := w.pm.Load()
	if pm.Equal(old) {
		return nil
	}
	w.pm.Store(pm)
	if pm.AffectsShard(old, w.id) {
		if _, err := w.worker.ForceRebuild(); err != nil {
			return err
		}
	}
	return nil
}

// Shard returns the worker's shard index within its K-way partition.
func (w *Worker) Shard() int { return w.id }

// K returns the partition width the worker was built for.
func (w *Worker) K() int { return w.k }

// MaxNodes returns the global node-set ceiling the worker validates
// growth against.
func (w *Worker) MaxNodes() int { return w.maxNodes }

// Lookup resolves a global node id to this shard's local id.
func (w *Worker) Lookup(global int32) (int32, bool) {
	w.mu.RLock()
	l, ok := w.index[global]
	w.mu.RUnlock()
	return l, ok
}

// EnsureLocal returns the local id for a global node, appending a new
// mapping entry when unseen. Callers must serialize (the router's
// mutation lock, or ApplyBatch's); the shard lock still guards against
// concurrent readers.
func (w *Worker) EnsureLocal(global int32) int32 {
	if l, ok := w.Lookup(global); ok {
		return l
	}
	w.mu.Lock()
	l := int32(len(w.locals))
	w.locals = append(w.locals, global)
	w.index[global] = l
	w.mu.Unlock()
	return l
}

// localsPrefix returns the stable local→global table for a graph of n
// nodes. The mapping is append-only, so the prefix never changes after
// capture.
func (w *Worker) localsPrefix(n int) []int32 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.locals[:n:n]
}

// Table returns the full current translation table (a stable snapshot:
// the mapping is append-only) — including entries pending publication,
// i.e. possibly longer than the published generation's node count. The
// transport layer ships it so a reconnecting router can resume table
// replication mid-growth.
func (w *Worker) Table() []int32 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.locals[:len(w.locals):len(w.locals)]
}

// buildSnapshot is the refresh.Config.BuildSnapshot hook: it drops
// ghost-only communities and attaches the shard Meta for this
// generation's node set.
func (w *Worker) buildSnapshot(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration) *refresh.Snapshot {
	locals := w.localsPrefix(g.N())
	pm := w.pm.Load()
	snap := refresh.NewSnapshot(g, filterOwned(cv, locals, pm, w.id), res, c, buildTime)
	snap.Aux = buildMeta(w.id, pm, g, snap.Index, locals)
	return snap
}

// View returns the shard's current published generation with its id
// translation. It never blocks (one atomic snapshot load).
func (w *Worker) View() View {
	return View{Shard: w.id, Snap: w.worker.Snapshot(), lookup: w.Lookup}
}

// Apply queues a batch of local-id mutations on the shard's refresh
// worker. The caller has already translated and validated the batch
// (router fan-out); the worker re-validates defensively. The enqueue
// itself never blocks, so ctx is unused in-process.
func (w *Worker) Apply(_ context.Context, add, remove [][2]int32) error {
	_, _, err := w.worker.Enqueue(add, remove)
	return err
}

// Batch is the unit a mutation fan-out ships to one shard over the
// wire: the translated local-id operations plus the translation-table
// entries appended since the sender's last successful ship (the ghost
// copies the batch materializes). Base is the table length the sender
// believes the shard has; NewLocals holds the global ids of table
// entries [Base, Base+len(NewLocals)). Re-shipping already-applied
// entries is legal (the receiver verifies and skips them), so retrying
// a failed Apply is safe.
type Batch struct {
	Base      int        `json:"base"`
	NewLocals []int32    `json:"new_locals,omitempty"`
	Add       [][2]int32 `json:"add,omitempty"`
	Remove    [][2]int32 `json:"remove,omitempty"`
}

// ApplyBatch reconciles a shipped translation-table update and queues
// the batch's mutations: the wire-side counterpart of the router
// calling EnsureLocal then Apply in-process. It returns the generation
// current at enqueue time (any strictly larger published generation
// includes the batch) and the number of operations queued. A table
// conflict — entries that contradict the existing mapping, or a gap
// beyond the current table — reports an error and queues nothing; it
// means a second writer grew the table, which the protocol forbids.
func (w *Worker) ApplyBatch(b Batch) (gen uint64, queued int, err error) {
	w.applyMu.Lock()
	defer w.applyMu.Unlock()

	table := w.Table()
	cur := len(table)
	if b.Base > cur {
		return 0, 0, fmt.Errorf("shard %d: %w: batch base %d beyond table length %d", w.id, ErrTableConflict, b.Base, cur)
	}
	// Entries below the current length are re-ships: verify, don't append.
	overlap := cur - b.Base
	if overlap > len(b.NewLocals) {
		overlap = len(b.NewLocals)
	}
	for i := 0; i < overlap; i++ {
		if table[b.Base+i] != b.NewLocals[i] {
			return 0, 0, fmt.Errorf("shard %d: %w at local %d: have global %d, batch ships %d",
				w.id, ErrTableConflict, b.Base+i, table[b.Base+i], b.NewLocals[i])
		}
	}
	for _, gv := range b.NewLocals[overlap:] {
		if l, ok := w.Lookup(gv); ok {
			return 0, 0, fmt.Errorf("shard %d: %w: global %d already mapped to local %d", w.id, ErrTableConflict, gv, l)
		}
	}
	for _, gv := range b.NewLocals[overlap:] {
		w.EnsureLocal(gv)
	}
	// Stash the shipped growth for the WAL hook firing inside Enqueue:
	// the log records Base/NewLocals verbatim so a replay reconciles the
	// table exactly like this call did (re-ships included).
	w.shipping = Batch{Base: b.Base, NewLocals: b.NewLocals}
	gen, queued, err = w.worker.Enqueue(b.Add, b.Remove)
	w.shipping = Batch{}
	return gen, queued, err
}

// Flush blocks until every previously applied mutation is reflected in
// a published generation, returning that generation.
func (w *Worker) Flush(ctx context.Context) (uint64, error) {
	snap, err := w.worker.Flush(ctx)
	if err != nil {
		return 0, err
	}
	return snap.Gen, nil
}

// Status is the shard's point-in-time worker status with its active c.
// It never blocks on rebuilds.
func (w *Worker) Status() WorkerStatus {
	return WorkerStatus{
		Shard:  w.id,
		C:      w.worker.Snapshot().C,
		Status: w.worker.Status(),
	}
}

// Snapshot returns the current published generation (the refresh-level
// view; View adds the id translation).
func (w *Worker) Snapshot() *refresh.Snapshot { return w.worker.Snapshot() }

// MaxPending is the backlog capacity of the shard's refresh worker,
// the denominator behind backlog-derived Retry-After hints.
func (w *Worker) MaxPending() int { return w.worker.MaxPending() }

// Close stops the shard's refresh worker. Reads keep serving the last
// published generation; mutations fail afterwards.
func (w *Worker) Close() { w.worker.Close() }
