// Package transport takes the sharded serving topology across process
// boundaries: it is the SnapshotProvider seam of internal/server —
// concretely, the shard.Backend seam of internal/shard — implemented
// over a compact, versioned HTTP/JSON wire protocol, so each shard's
// worker runs in its own process (or machine) while the router's HTTP
// handlers stay byte-for-byte the ones that serve the in-process
// deployment.
//
// Three pieces:
//
//   - ShardServer hosts one shard.Worker behind the protocol (the
//     `ocad -serve-shard i` role): generation/health probes, snapshot
//     resolution (JSON header + binary CSR graph), mutation apply with
//     the ghost-table updates riding the fan-out, a flush barrier, and
//     direct batch lookup.
//   - Client is the remote shard.Backend (inside the `ocad
//     -shard-addrs` router role): it replicates the shard's
//     translation table, mirrors its published snapshots so reads stay
//     local and lock-free, raises a read-your-writes floor on flush,
//     and maps transport failures to shard.ErrUnavailable so a down or
//     slow shard degrades into explicit partial results — never a
//     hang, never silent staleness.
//   - Dial handshakes K shard servers (positional addresses, identity
//     and dimension cross-checks), mirrors their first snapshots and
//     assembles a shard.Router over remote backends.
//
// The protocol is versioned as a whole (Version, the
// Ocad-Shard-Protocol header, the /shard/v1/ path prefix); the
// normative description lives in docs/PROTOCOL.md, and
// TestProtocolDocSync keeps that document and the Routes manifest in
// lockstep. Replication — N mirrors of a shard, read from any — is the
// ROADMAP's next step on this seam.
package transport
