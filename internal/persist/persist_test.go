package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/wal"
)

// twoCliques builds two K_6 cliques sharing nodes 4 and 5 — the same
// fixture the refresh tests use, small enough that incremental replay
// is instant.
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(4); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func testSnap(gen, seq uint64) *refresh.Snapshot {
	g := twoCliques()
	cv := cover.NewCover([]cover.Community{{0, 1, 2, 3, 4, 5}, {4, 5, 6, 7, 8, 9}})
	snap := refresh.NewSnapshot(g, cv, nil, 0.5, 0)
	snap.Gen, snap.Seq = gen, seq
	return snap
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSegmentRoundTrip(t *testing.T) {
	snap := testSnap(3, 17)
	table := []int32{5, 8, 2, 9, 0, 1, 3, 4, 6, 7}
	path := filepath.Join(t.TempDir(), SegmentName(3))
	err := WriteSegment(path, SegmentData{
		Info: snap.Info(), Shard: 1, Shards: 4, MaxNodes: 64,
		Graph: snap.Graph, Cover: snap.Cover, Table: table,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := LoadSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.Info.Gen != 3 || seg.Info.Seq != 17 || seg.Shard != 1 || seg.Shards != 4 || seg.MaxNodes != 64 {
		t.Errorf("meta = %+v shard %d/%d max %d", seg.Info, seg.Shard, seg.Shards, seg.MaxNodes)
	}
	if !reflect.DeepEqual(seg.Table, table) {
		t.Errorf("table = %v, want %v", seg.Table, table)
	}
	if seg.Graph.N() != snap.Graph.N() || seg.Graph.M() != snap.Graph.M() {
		t.Errorf("graph %d nodes %d edges, want %d/%d", seg.Graph.N(), seg.Graph.M(), snap.Graph.N(), snap.Graph.M())
	}
	for v := int32(0); int(v) < seg.Graph.N(); v++ {
		if !reflect.DeepEqual(seg.Graph.Neighbors(v), snap.Graph.Neighbors(v)) {
			t.Fatalf("adjacency of node %d differs", v)
		}
	}
	if !reflect.DeepEqual(seg.Cover.Communities, snap.Cover.Communities) {
		t.Errorf("cover = %v, want %v", seg.Cover.Communities, snap.Cover.Communities)
	}
	rt := seg.Snapshot()
	if rt.Gen != 3 || rt.Seq != 17 || rt.Index == nil {
		t.Errorf("reassembled snapshot gen %d seq %d", rt.Gen, rt.Seq)
	}
}

// TestSegmentCorruption is the crash-injection table: every way a
// segment file can be damaged must be detected at load, never served.
func TestSegmentCorruption(t *testing.T) {
	snap := testSnap(2, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(2))
	if err := WriteSegment(path, SegmentData{Info: snap.Info(), Graph: snap.Graph, Cover: snap.Cover}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated mid-section": func(b []byte) []byte { return b[:len(b)/2] },
		"missing ENDS":          func(b []byte) []byte { return b[:len(b)-secHeaderSize] },
		"checksum flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[segHeaderSize+secHeaderSize] ^= 0x40 // first byte of META payload
			return c
		},
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		},
		"bad version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 99
			return c
		},
		"empty": func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), SegmentName(2))
			if err := os.WriteFile(p, mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if seg, err := LoadSegment(p); err == nil {
				seg.Close()
				t.Fatal("corrupt segment loaded without error")
			}
		})
	}
}

func TestLoadEmptyDirIsColdStart(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segment != nil || len(st.Tail) != 0 || st.Stats.Source != "cold" {
		t.Errorf("cold start state = %+v", st)
	}
}

func TestSealLoadReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{FsyncEveryBatch: true})
	snap := testSnap(4, 10)
	if err := s.Seal(snap, nil); err != nil {
		t.Fatal(err)
	}
	// Log a post-segment tail: two batches, then a publish marker.
	if err := s.LogBatch([][2]int32{{0, 9}}, nil, 11); err != nil {
		t.Fatal(err)
	}
	if err := s.LogBatch([][2]int32{{1, 9}}, [][2]int32{{0, 1}}, 13); err != nil {
		t.Fatal(err)
	}
	after := testSnap(5, 13)
	if err := s.OnPublish(after, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// "Restart": a fresh store over the same dir.
	s2 := openStore(t, dir, Options{})
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segment == nil || st.Segment.Info.Gen != 4 {
		t.Fatalf("recovered segment = %+v", st.Segment)
	}
	if len(st.Tail) != 2 || st.Tail[0].Seq != 11 || st.Tail[1].Seq != 13 {
		t.Fatalf("tail = %+v, want seqs 11, 13", st.Tail)
	}
	if st.LastGen != 5 || st.LastSeq != 13 {
		t.Errorf("publish high-water = gen %d seq %d, want 5/13", st.LastGen, st.LastSeq)
	}
	if st.Stats.Source != "segment+wal" || st.Stats.ReplayedOps != 3 {
		t.Errorf("stats = %+v", st.Stats)
	}

	got, err := ReplaySingle(st, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 5 || got.Seq != 13 {
		t.Errorf("replayed snapshot gen %d seq %d, want 5/13", got.Gen, got.Seq)
	}
	if !got.Graph.HasEdge(0, 9) || !got.Graph.HasEdge(1, 9) || got.Graph.HasEdge(0, 1) {
		t.Error("replayed graph does not reflect the WAL tail")
	}
}

func TestLoadTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	snap := testSnap(2, 3)
	if err := s.Seal(snap, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.LogBatch([][2]int32{{0, 9}}, nil, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.LogBatch([][2]int32{{1, 9}}, nil, 5); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the tail mid-record: the last batch must be dropped, the
	// first survives.
	walPath := filepath.Join(dir, WALName(2))
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := openStore(t, dir, Options{}).Load()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stats.TornTail {
		t.Error("torn tail not reported")
	}
	if len(st.Tail) != 1 || st.Tail[0].Seq != 4 {
		t.Fatalf("tail = %+v, want only seq 4", st.Tail)
	}
	got, err := ReplaySingle(st, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Graph.HasEdge(0, 9) || got.Graph.HasEdge(1, 9) {
		t.Error("replay does not match the intact WAL prefix")
	}
}

func TestLoadFallsBackOverCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Retain: 5})
	if err := s.Seal(testSnap(2, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(testSnap(6, 9), nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer segment (flip a payload byte): recovery must
	// fall back to generation 2.
	p := filepath.Join(dir, SegmentName(6))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderSize+secHeaderSize] ^= 0x01 // first META payload byte
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := openStore(t, dir, Options{Retain: 5}).Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segment == nil || st.Segment.Info.Gen != 2 {
		t.Fatalf("recovered segment gen = %+v, want fallback to 2", st.Segment)
	}
	if st.Stats.SkippedSegments != 1 {
		t.Errorf("skipped = %d, want 1", st.Stats.SkippedSegments)
	}
	// Fallback is best-effort: the live WAL was rotated at gen 6, so
	// batches between the generations are gone and the high-water mark
	// is the surviving segment's.
	if st.LastGen != 2 {
		t.Errorf("LastGen = %d, want 2", st.LastGen)
	}
}

func TestRetentionPrunes(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Retain: 2})
	for gen := uint64(1); gen <= 5; gen++ {
		if err := s.Seal(testSnap(gen, gen), nil); err != nil {
			t.Fatal(err)
		}
	}
	gens := s.Generations()
	if !reflect.DeepEqual(gens, []uint64{4, 5}) {
		t.Fatalf("retained = %v, want [4 5]", gens)
	}
	wals := s.listWALs()
	if !reflect.DeepEqual(wals, []uint64{5}) {
		t.Fatalf("WALs = %v, want only the live [5]", wals)
	}
	// Retained generations stay readable for point-in-time reads.
	seg, err := s.OpenGeneration(4)
	if err != nil {
		t.Fatal(err)
	}
	seg.Close()
	if _, err := s.OpenGeneration(1); err == nil {
		t.Error("pruned generation still opens")
	}
}

func TestOnPublishWritesSegmentEveryN(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentEvery: 2, Retain: 10})
	if err := s.Seal(testSnap(1, 0), nil); err != nil {
		t.Fatal(err)
	}
	for gen := uint64(2); gen <= 5; gen++ {
		if err := s.LogEdgeBatch(wal.EdgeBatch{Seq: gen, Add: [][2]int32{{0, 9}}}); err != nil {
			t.Fatal(err)
		}
		if err := s.OnPublish(testSnap(gen, gen), nil); err != nil {
			t.Fatal(err)
		}
	}
	if gens := s.Generations(); !reflect.DeepEqual(gens, []uint64{1, 3, 5}) {
		t.Fatalf("segments = %v, want [1 3 5] (every 2nd publish)", gens)
	}
}

func TestStoreIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Shard: 0, Shards: 2})
	if err := s.Seal(testSnap(1, 0), []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	wrong := openStore(t, dir, Options{Shard: 1, Shards: 2})
	if _, err := wrong.Load(); err == nil {
		t.Fatal("shard 1 loaded shard 0's segment")
	}
}
