package lfr

import "testing"

// BenchmarkGenerate measures full benchmark generation at the Fig. 2
// scale (n=1000, the LFR paper's default configuration).
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Params{
			N: 1000, AvgDeg: 20, MaxDeg: 50, Mu: 0.3,
			MinCom: 20, MaxCom: 50, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateOverlap measures the overlapping variant.
func BenchmarkGenerateOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Params{
			N: 1000, AvgDeg: 20, MaxDeg: 50, Mu: 0.3,
			MinCom: 20, MaxCom: 50, OverlapNodes: 100, OverlapMemb: 2,
			Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
