package transport

// Live-rebalancing gate (`make test-cluster`, smoke leg in
// `make test-migrate-smoke`): a real multi-process cluster — three
// `ocad -serve-shard` processes persisting to a shared -data-dir plus a
// router process — must survive a live partition-map migration with the
// two-generation handoff:
//
//   - a mid-traffic rebalance flips the router to epoch e+1 with zero
//     5xx on concurrent reads and writes;
//   - every shard process adopts and persists the flipped map (their
//     /shard/v1/health all advertise the new epoch);
//   - the post-flip served cover still passes the NMI ≥ 0.99
//     equivalence gate against an unsharded cold run;
//   - SIGKILLing the receiver mid slice-transfer aborts the handoff
//     cleanly back to epoch e (409 with the preserved epoch), and the
//     restarted receiver rejoins at epoch e — pending maps are never
//     persisted;
//   - SIGKILLing the donor after a completed flip loses nothing: it
//     recovers from its data directory already at epoch e+1 with the
//     migrated range dropped;
//   - per-shard generations stay monotone throughout, and SIGTERM
//     drains everything cleanly.
//
// With -short only the mid-traffic migration, epoch agreement and NMI
// legs run — that is the `make test-migrate-smoke` CI gate.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/postprocess"
	"repro/internal/shard"
	"repro/internal/spectral"
)

// migrateHealthz is the healthz shape the migration gate inspects: the
// router-level partition epoch plus per-shard generations.
type migrateHealthz struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	Shards []struct {
		Shard      int    `json:"shard"`
		Generation uint64 `json:"generation"`
	} `json:"shards"`
}

// rebalanceReply is the POST /v1/admin/rebalance response body.
type rebalanceReply struct {
	Epoch   uint64                `json:"epoch"`
	Status  shard.RebalanceStatus `json:"status"`
	Error   string                `json:"error,omitempty"`
	Warning string                `json:"warning,omitempty"`
}

// postRebalance runs one admin rebalance and decodes the reply whatever
// the status code — the abort contract (409 with the preserved epoch)
// is as much under test as the success path.
func postRebalance(t *testing.T, base string, lo, hi int32, from, to int) (int, rebalanceReply) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"lo": lo, "hi": hi, "from": from, "to": to})
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 120 * time.Second}
	resp, err := cl.Post(base+"/v1/admin/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/admin/rebalance: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var rr rebalanceReply
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("rebalance reply %d %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, rr
}

// shardEpoch reads one shard process's advertised partition epoch
// straight off its wire health endpoint.
func shardEpoch(t *testing.T, addr string) uint64 {
	t.Helper()
	var h Health
	if code := getJSON(t, "http://"+addr+PathHealth, &h); code != http.StatusOK {
		t.Fatalf("GET %s%s = %d", addr, PathHealth, code)
	}
	return h.Epoch
}

func TestMultiProcessClusterMigration(t *testing.T) {
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}

	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(gf, g); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	// Every shard starts with an empty (inject-nothing) fault plan; the
	// receiver-kill leg swaps a real one in over the control endpoint.
	planPath := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(planPath, []byte(`{"seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Three shard servers persisting under one -data-dir (the crash legs
	// recover from it), one router.
	const k = 3
	dataDir := filepath.Join(dir, "data")
	common := []string{"-in", graphPath, "-seed", "11", "-c", fmt.Sprintf("%g", c),
		"-refresh-debounce", "5ms", "-fault-plan", planPath, "-addr", "127.0.0.1:0"}
	shardArgs := func(s int, af string) []string {
		return append(append([]string{}, common...),
			"-shards", fmt.Sprint(k), "-serve-shard", fmt.Sprint(s),
			"-data-dir", dataDir, "-addr-file", af)
	}
	shardProcs := make([]*ocadProc, k)
	shardAddrs := make([]string, k)
	for s := 0; s < k; s++ {
		af := filepath.Join(dir, fmt.Sprintf("shard%d.addr", s))
		shardProcs[s] = startOcad(t, shardArgs(s, af)...)
		shardAddrs[s] = waitAddrFile(t, shardProcs[s], af, 60*time.Second)
	}
	routerAF := filepath.Join(dir, "router.addr")
	router := startOcad(t,
		"-shard-addrs", strings.Join(shardAddrs, ","),
		"-shards", fmt.Sprint(k),
		"-shard-poll-interval", "25ms",
		"-addr", "127.0.0.1:0", "-addr-file", routerAF)
	base := "http://" + waitAddrFile(t, router, routerAF, 60*time.Second)

	// (0) Boot: healthy at the epoch-0 base map.
	var hr migrateHealthz
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("boot healthz = %d %q; router logs:\n%s", code, hr.Status, router.logs())
	}
	if hr.Epoch != 0 {
		t.Fatalf("boot epoch = %d, want 0", hr.Epoch)
	}
	gens := shardGens(t, base)

	// Toggle set for the in-window write traffic: real graph edges the
	// writer removes and re-adds, so the graph is back to its pristine
	// edge set whenever a toggle round completes — the NMI gate below
	// compares against a cold run over the original graph.
	var all [][2]int32
	g.Edges(func(u, v int32) bool {
		all = append(all, [2]int32{u, v})
		return true
	})
	toggles := make([][2]int32, 0, 10)
	for i := 0; i < 10; i++ {
		toggles = append(toggles, all[(i*len(all))/10])
	}

	// (1) Mid-traffic migration: readers and a toggle writer run across
	// the flip; every read and write must stay under 500.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		reads    atomic.Int64
		fiveXX   atomic.Int64
		writeRnd atomic.Int64
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cl.Get(fmt.Sprintf("%s/v1/node/%d/communities", base, rng.Intn(n)))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				reads.Add(1)
				if resp.StatusCode >= 500 {
					fiveXX.Add(1)
					t.Errorf("read answered %d during migration", resp.StatusCode)
				}
			}
		}(int64(500 + r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return // loop top: the previous round re-added its edge
			default:
			}
			e := toggles[i%len(toggles)]
			for _, req := range []map[string]any{
				{"remove": [][2]int32{e}},
				{"add": [][2]int32{e}, "wait": i%3 == 0},
			} {
				code := postJSON(t, base+"/v1/edges", req, nil)
				if code != http.StatusOK && code != http.StatusAccepted {
					if code >= 500 {
						fiveXX.Add(1)
					}
					t.Errorf("toggle write %d answered %d during migration", i, code)
				}
			}
			writeRnd.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The migration: class-1 nodes of [0, 125) move from shard 1 to
	// shard 2 while the traffic above keeps flowing.
	code, rr := postRebalance(t, base, 0, 125, 1, 2)
	if code != http.StatusOK {
		t.Fatalf("rebalance = %d (%s); router logs:\n%s", code, rr.Error, router.logs())
	}
	if rr.Epoch != 1 || rr.Status.Migrations != 1 || rr.Status.Active {
		t.Fatalf("rebalance reply: %+v, want epoch 1, one completed migration", rr)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if reads.Load() == 0 || writeRnd.Load() == 0 {
		t.Fatalf("no concurrent traffic ran across the flip (%d reads, %d write rounds)",
			reads.Load(), writeRnd.Load())
	}
	if fiveXX.Load() != 0 {
		t.Fatalf("%d requests answered 5xx across the flip, want 0", fiveXX.Load())
	}

	// (2) Epoch agreement: the router and all three shard processes
	// advertise epoch 1, and migrated nodes still serve.
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Epoch != 1 {
		t.Fatalf("post-flip healthz = %d epoch %d, want 200 at epoch 1", code, hr.Epoch)
	}
	for s, addr := range shardAddrs {
		if ep := shardEpoch(t, addr); ep != 1 {
			t.Errorf("shard %d advertises epoch %d after the flip, want 1", s, ep)
		}
	}
	for _, id := range []int{1, 4, 7, 124} { // class-1 ids inside the moved range
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", base, id), nil); code != http.StatusOK {
			t.Errorf("migrated node %d lookup = %d, want 200", id, code)
		}
	}
	after := shardGens(t, base)
	assertGensMonotone(t, "migration", gens, after)
	gens = after

	// Malformed moves are 400s that attempt nothing: no abort counted,
	// and the reported epoch is the actual routing truth.
	if code, rr := postRebalance(t, base, 9, 3, 1, 2); code != http.StatusBadRequest || rr.Epoch != 1 {
		t.Errorf("inverted-range rebalance = %d epoch %d (%s), want 400 at epoch 1", code, rr.Epoch, rr.Error)
	}
	if code, rr := postRebalance(t, base, 0, 125, 1, 1); code != http.StatusBadRequest || rr.Status.Aborted != 0 {
		t.Errorf("self-move rebalance = %d (%+v), want 400 with no abort counted", code, rr)
	}

	// The operator halo-refresh sweep rides the same ingest path; it
	// must run cleanly against the migrated cluster — and change no
	// ownership, which the NMI gate below would catch.
	var hrefresh struct {
		HaloSyncs uint64 `json:"halo_syncs"`
	}
	if code := postJSON(t, base+"/v1/admin/halo-refresh", map[string]any{}, &hrefresh); code != http.StatusOK || hrefresh.HaloSyncs == 0 {
		t.Errorf("halo refresh = %d with %d sweeps, want 200 with a counted sweep", code, hrefresh.HaloSyncs)
	}

	// (3) Equivalence: the served cover after the migration still
	// matches an unsharded cold run. A wait=true no-op write first, as a
	// barrier past the last toggle round.
	if code := postJSON(t, base+"/v1/edges", map[string]any{"add": [][2]int32{toggles[0]}, "wait": true}, nil); code != http.StatusOK {
		t.Fatalf("barrier write = %d", code)
	}
	exported := exportCover(t, base, n)
	cold, err := core.Run(g, core.Options{Seed: 11, C: c})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	merged := postprocess.Merge(exported, postprocess.DefaultMergeThreshold)
	if nmi := metrics.NMI(merged, cold.Cover, n); nmi < 0.99 {
		t.Errorf("post-migration NMI(exported, cold) = %.4f, want >= 0.99 (exported %d communities, cold %d)",
			nmi, merged.Len(), cold.Cover.Len())
	}
	if truthNMI := metrics.NMI(merged, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("post-migration cover vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}

	if testing.Short() {
		return // smoke gate ends here; the crash legs need the full gate
	}

	// (4) Receiver crash mid slice-transfer: slow shard 0's ingest path
	// so the transfer window is reliably open, SIGKILL the receiver
	// mid-chunk, and the handoff must abort cleanly back to epoch 1 —
	// then the restarted receiver rejoins at epoch 1 because pending
	// maps are never persisted.
	putPlan(t, shardAddrs[0], faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Path: PathIngest, LatencyMs: 4000},
	}})
	type rbResult struct {
		code int
		rr   rebalanceReply
	}
	done := make(chan rbResult, 1)
	go func() {
		code, rr := postRebalance(t, base, 0, 60, 2, 0)
		done <- rbResult{code, rr}
	}()
	time.Sleep(750 * time.Millisecond) // flush+map install are ms; the chunk is held 4s
	if err := shardProcs[0].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing receiver: %v", err)
	}
	res := <-done
	if res.code != http.StatusConflict {
		t.Fatalf("rebalance with dead receiver = %d (%+v), want 409", res.code, res.rr)
	}
	if res.rr.Epoch != 1 || res.rr.Status.Aborted == 0 || res.rr.Status.Active {
		t.Fatalf("abort reply: %+v, want preserved epoch 1 with an aborted count", res.rr)
	}
	waitForStatus(t, base, "degraded")
	af0 := filepath.Join(dir, "shard0-restart.addr")
	shardProcs[0] = startOcad(t, append(shardArgs(0, af0), "-addr", shardAddrs[0])...)
	if got := waitAddrFile(t, shardProcs[0], af0, 60*time.Second); got != shardAddrs[0] {
		t.Fatalf("restarted receiver bound %s, want %s", got, shardAddrs[0])
	}
	waitForStatus(t, base, "ok")
	if ep := shardEpoch(t, shardAddrs[0]); ep != 1 {
		t.Errorf("restarted receiver rejoined at epoch %d, want pre-abort epoch 1", ep)
	}
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Epoch != 1 {
		t.Errorf("post-abort healthz = %d epoch %d, want 200 at epoch 1", code, hr.Epoch)
	}
	if logs := shardProcs[0].logs(); !strings.Contains(logs, "recovered generation") {
		t.Errorf("restarted receiver did not log recovery:\n%s", logs)
	}
	after = shardGens(t, base)
	assertGensMonotone(t, "aborted migration", gens, after)
	gens = after

	// (5) Donor crash after the flip: rerun the same migration to
	// completion (the restarted receiver's fault plan is clean), then
	// SIGKILL the donor. It must recover from its data directory
	// already at epoch 2 — the flip was persisted before the rebalance
	// answered.
	code, rr = postRebalance(t, base, 0, 60, 2, 0)
	if code != http.StatusOK || rr.Epoch != 2 {
		t.Fatalf("retried rebalance = %d epoch %d (%s), want 200 at epoch 2", code, rr.Epoch, rr.Error)
	}
	if err := shardProcs[2].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing donor: %v", err)
	}
	waitForStatus(t, base, "degraded")
	af2 := filepath.Join(dir, "shard2-restart.addr")
	shardProcs[2] = startOcad(t, append(shardArgs(2, af2), "-addr", shardAddrs[2])...)
	if got := waitAddrFile(t, shardProcs[2], af2, 60*time.Second); got != shardAddrs[2] {
		t.Fatalf("restarted donor bound %s, want %s", got, shardAddrs[2])
	}
	waitForStatus(t, base, "ok")
	if ep := shardEpoch(t, shardAddrs[2]); ep != 2 {
		t.Errorf("restarted donor rejoined at epoch %d, want post-flip epoch 2", ep)
	}
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Epoch != 2 {
		t.Errorf("post-donor-restart healthz = %d epoch %d, want 200 at epoch 2", code, hr.Epoch)
	}
	for _, id := range []int{2, 5, 59, 62} { // ids across the twice-moved range
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", base, id), nil); code != http.StatusOK {
			t.Errorf("post-recovery lookup of node %d = %d, want 200", id, code)
		}
	}
	after = shardGens(t, base)
	assertGensMonotone(t, "donor crash", gens, after)

	// (6) Graceful drain.
	procs := []*ocadProc{router, shardProcs[0], shardProcs[1], shardProcs[2]}
	for _, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
	}
	for i, p := range procs {
		exit := make(chan error, 1)
		go func() { exit <- p.cmd.Wait() }()
		select {
		case err := <-exit:
			if err != nil {
				t.Errorf("process %d exited with %v; logs:\n%s", i, err, p.logs())
			}
		case <-time.After(30 * time.Second):
			t.Errorf("process %d did not exit after SIGTERM; logs:\n%s", i, p.logs())
		}
	}
}
