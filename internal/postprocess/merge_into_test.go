package postprocess

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/index"
)

// warmFixture builds a previous-generation cover, its index, and the
// warm slice/ids left after dropping the touched communities.
func warmFixture(prev []cover.Community, touched []int, n int) (warm []cover.Community, warmOldID []int32, prevIx *index.Membership) {
	cv := cover.NewCover(prev)
	prevIx = index.Build(cv, n)
	dropped := make(map[int]bool, len(touched))
	for _, t := range touched {
		dropped[t] = true
	}
	for ci, c := range prev {
		if !dropped[ci] {
			warm = append(warm, c)
			warmOldID = append(warmOldID, int32(ci))
		}
	}
	return warm, warmOldID, prevIx
}

func TestMergeIntoKeepsDisjointFresh(t *testing.T) {
	prev := []cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3}),
		cover.NewCommunity([]int32{4, 5, 6, 7}),
	}
	warm, ids, ix := warmFixture(prev, nil, 10)
	fresh := []cover.Community{cover.NewCommunity([]int32{8, 9})}
	cv, kept, keptOld := MergeInto(warm, ids, ix, fresh, 0.5)
	if kept != 2 || len(keptOld) != 2 || cv.Len() != 3 {
		t.Fatalf("kept=%d keptOld=%v len=%d, want 2 kept and 3 total", kept, keptOld, cv.Len())
	}
	// Unchanged warm communities must alias the inputs, in order.
	for i := 0; i < kept; i++ {
		if &cv.Communities[i][0] != &warm[i][0] {
			t.Fatalf("kept community %d does not alias its warm input", i)
		}
	}
	if !cv.Communities[2].Equal(fresh[0]) {
		t.Fatalf("appended fresh community = %v", cv.Communities[2])
	}
}

func TestMergeIntoAbsorbsNearDuplicate(t *testing.T) {
	prev := []cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3}),
		cover.NewCommunity([]int32{10, 11, 12, 13}),
	}
	warm, ids, ix := warmFixture(prev, nil, 20)
	// Shares 3 of 4 members with warm 0: ρ well above 0.5.
	fresh := []cover.Community{cover.NewCommunity([]int32{0, 1, 2, 4})}
	cv, kept, keptOld := MergeInto(warm, ids, ix, fresh, 0.5)
	if kept != 1 || len(keptOld) != 1 || keptOld[0] != 1 {
		t.Fatalf("kept=%d keptOld=%v, want only previous community 1 unchanged", kept, keptOld)
	}
	if cv.Len() != 2 {
		t.Fatalf("cover has %d communities, want 2", cv.Len())
	}
	want := cover.NewCommunity([]int32{0, 1, 2, 3, 4})
	if !cv.Communities[1].Equal(want) {
		t.Fatalf("merged community = %v, want %v", cv.Communities[1], want)
	}
	// The warm input must not have been mutated.
	if len(warm[0]) != 4 {
		t.Fatalf("warm input mutated: %v", warm[0])
	}
}

// TestMergeIntoBridgesWarmPair: a fresh community overlapping two warm
// communities can pull both in — the grown set is re-tested, so
// warm–warm merges bridged by fresh structure still happen even though
// warm pairs are never tested directly.
func TestMergeIntoBridgesWarmPair(t *testing.T) {
	prev := []cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3}),
		cover.NewCommunity([]int32{2, 3, 4, 5}),
	}
	warm, ids, ix := warmFixture(prev, nil, 10)
	fresh := []cover.Community{cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5})}
	cv, kept, _ := MergeInto(warm, ids, ix, fresh, 0.5)
	if kept != 0 || cv.Len() != 1 {
		t.Fatalf("kept=%d len=%d, want one fully merged community", kept, cv.Len())
	}
	want := cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5})
	if !cv.Communities[0].Equal(want) {
		t.Fatalf("merged community = %v, want %v", cv.Communities[0], want)
	}
}

// TestMergeIntoMatchesMergeOnFixpoint: when warm is a Merge fixpoint,
// running MergeInto with fresh discoveries must land on the same
// communities as a full Merge over warm ∪ fresh (set-of-sets equality;
// ordering differs by design).
func TestMergeIntoMatchesMergeOnFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200
	for trial := 0; trial < 25; trial++ {
		// A warm fixpoint: random communities, pre-merged.
		var raw []cover.Community
		for i := 0; i < 12; i++ {
			members := make([]int32, 8+rng.Intn(10))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			raw = append(raw, cover.NewCommunity(members))
		}
		warmCv := Merge(cover.NewCover(raw), 0.5)
		prev := warmCv.Communities
		warm, ids, ix := warmFixture(prev, nil, n)

		var fresh []cover.Community
		for i := 0; i < 4; i++ {
			// Noisy copy of a warm community, or a random new one.
			if len(prev) > 0 && rng.Intn(2) == 0 {
				base := prev[rng.Intn(len(prev))]
				noisy := append(cover.Community{}, base...)
				noisy[rng.Intn(len(noisy))] = int32(rng.Intn(n))
				fresh = append(fresh, cover.NewCommunity(noisy))
			} else {
				members := make([]int32, 6+rng.Intn(6))
				for j := range members {
					members[j] = int32(rng.Intn(n))
				}
				fresh = append(fresh, cover.NewCommunity(members))
			}
		}

		got, _, _ := MergeInto(warm, ids, ix, fresh, 0.5)
		all := append(append([]cover.Community{}, warm...), fresh...)
		want := Merge(cover.NewCover(all), 0.5)
		if !sameCommunitySets(got, want) {
			t.Fatalf("trial %d: MergeInto=%v, Merge=%v", trial, got.Communities, want.Communities)
		}
	}
}

// sameCommunitySets compares two covers as multisets of member sets.
func sameCommunitySets(a, b *cover.Cover) bool {
	if a.Len() != b.Len() {
		return false
	}
	used := make([]bool, b.Len())
outer:
	for _, ca := range a.Communities {
		for j, cb := range b.Communities {
			if !used[j] && ca.Equal(cb) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
