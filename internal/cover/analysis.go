package cover

import (
	"repro/internal/graph"
)

// Quality describes one community's structural quality in a graph —
// the quantities a practitioner inspects before trusting a community:
// internal density, boundary conductance, and average internal degree.
type Quality struct {
	Size          int
	InternalEdges int64
	// CutEdges counts edges with exactly one endpoint inside.
	CutEdges int64
	// Density is 2·InternalEdges / (Size·(Size−1)); 1 for a clique.
	Density float64
	// Conductance is CutEdges / min(vol, 2M − vol), the standard
	// boundary sharpness measure; lower is better. Defined as 0 when
	// the denominator vanishes.
	Conductance float64
	// AvgInternalDegree is 2·InternalEdges / Size.
	AvgInternalDegree float64
	// MixingRatio is CutEdges / vol: the community-local analogue of
	// the LFR µ parameter.
	MixingRatio float64
}

// Analyze computes Quality for one community in g.
func Analyze(g *graph.Graph, c Community) Quality {
	q := Quality{Size: len(c)}
	if len(c) == 0 {
		return q
	}
	member := make(map[int32]struct{}, len(c))
	for _, v := range c {
		member[v] = struct{}{}
	}
	var vol int64
	for _, v := range c {
		vol += int64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if _, in := member[w]; in {
				if w > v {
					q.InternalEdges++
				}
			} else {
				q.CutEdges++
			}
		}
	}
	if q.Size > 1 {
		q.Density = 2 * float64(q.InternalEdges) / (float64(q.Size) * float64(q.Size-1))
	}
	q.AvgInternalDegree = 2 * float64(q.InternalEdges) / float64(q.Size)
	if denom := min64(vol, 2*g.M()-vol); denom > 0 {
		q.Conductance = float64(q.CutEdges) / float64(denom)
	}
	if vol > 0 {
		q.MixingRatio = float64(q.CutEdges) / float64(vol)
	}
	return q
}

// AnalyzeCover computes Quality for every community of cv, in order.
func AnalyzeCover(g *graph.Graph, cv *Cover) []Quality {
	out := make([]Quality, cv.Len())
	for i, c := range cv.Communities {
		out[i] = Analyze(g, c)
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
