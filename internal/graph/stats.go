package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph for dataset tables and sanity checks.
type Stats struct {
	Nodes      int
	Edges      int64
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	Isolated   int // nodes with degree 0
	Components int
	Triangles  int64 // counted only when countTriangles is requested
}

// ComputeStats gathers Stats for g. Triangle counting is optional because
// it costs O(m^{3/2}) and is unnecessary for large-scale runs.
func ComputeStats(g *Graph, countTriangles bool) Stats {
	n := g.N()
	st := Stats{Nodes: n, Edges: g.M()}
	if n == 0 {
		return st
	}
	st.MinDegree = g.Degree(0)
	for v := int32(0); v < int32(n); v++ {
		d := g.Degree(v)
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.AvgDegree = 2 * float64(st.Edges) / float64(n)
	_, st.Components = Components(g)
	if countTriangles {
		st.Triangles = CountTriangles(g)
	}
	return st
}

// String renders the stats as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d deg[min=%d avg=%.2f max=%d] isolated=%d components=%d",
		s.Nodes, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.Isolated, s.Components)
}

// CountTriangles counts the triangles of g with the forward algorithm:
// orient every edge from lower to higher rank (degree order, ties by id)
// and intersect out-neighborhoods. This is the same core used by the CPM
// baseline's k=3 fast path.
func CountTriangles(g *Graph) int64 {
	var count int64
	ForEachTriangle(g, func(a, b, c int32) { count++ })
	return count
}

// ForEachTriangle calls fn for every triangle {a, b, c} of g exactly once,
// with a, b, c in increasing rank order.
func ForEachTriangle(g *Graph, fn func(a, b, c int32)) {
	n := g.N()
	rank := triangleRank(g)
	// Forward adjacency: for each node, neighbors of higher rank, sorted by rank.
	fwd := make([][]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for _, w := range g.Neighbors(v) {
			if rank[v] < rank[w] {
				fwd[v] = append(fwd[v], w)
			}
		}
		lst := fwd[v]
		sort.Slice(lst, func(i, j int) bool { return rank[lst[i]] < rank[lst[j]] })
	}
	for v := int32(0); v < int32(n); v++ {
		for _, w := range fwd[v] {
			intersectByRank(fwd[v], fwd[w], rank, func(x int32) { fn(v, w, x) })
		}
	}
}

// triangleRank orders nodes by (degree, id); low-degree nodes first. The
// forward algorithm's work bound O(m^{3/2}) relies on this ordering.
func triangleRank(g *Graph) []int32 {
	n := g.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	return rank
}

// intersectByRank walks two rank-sorted lists and calls fn on every common
// element.
func intersectByRank(a, b []int32, rank []int32, fn func(x int32)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := rank[a[i]], rank[b[j]]
		switch {
		case ra < rb:
			i++
		case ra > rb:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}
