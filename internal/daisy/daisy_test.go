package daisy

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestMembershipRules(t *testing.T) {
	d := Params{P: 5, Q: 7, N: 100, Alpha: 1, Beta: 1}
	for v := 0; v < d.N; v++ {
		petal, inCore := Membership(d, v)
		if v%d.P == 0 {
			if petal != 0 || !inCore {
				t.Fatalf("v=%d: multiples of p are core-only, got petal=%d core=%v", v, petal, inCore)
			}
			continue
		}
		if petal != v%d.P {
			t.Fatalf("v=%d: petal=%d, want %d", v, petal, v%d.P)
		}
		if (v%d.Q == 0) != inCore {
			t.Fatalf("v=%d: core=%v, want %v", v, inCore, v%d.Q == 0)
		}
	}
	// v=35: 35%5=0 -> core only. v=14: 14%7=0, 14%5=4 -> petal 4 AND core.
	if petal, inCore := Membership(d, 14); petal != 4 || !inCore {
		t.Fatalf("v=14 should overlap petal 4 and core, got %d/%v", petal, inCore)
	}
}

func TestSingleDaisyStructure(t *testing.T) {
	d := Params{P: 5, Q: 7, N: 100, Alpha: 1, Beta: 1}
	bench, err := Generate(TreeParams{Daisy: d, K: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bench.Flowers != 1 {
		t.Fatalf("flowers=%d", bench.Flowers)
	}
	// p communities: p-1 petals + core.
	if bench.Communities.Len() != d.P {
		t.Fatalf("communities=%d, want %d", bench.Communities.Len(), d.P)
	}
	// With α=β=1 each community is a clique.
	g := bench.Graph
	for ci, c := range bench.Communities.Communities {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("community %d not a clique at α=β=1: missing %d-%d", ci, c[i], c[j])
				}
			}
		}
	}
	// Overlap nodes exist: v ≡ 0 mod 7, v ≢ 0 mod 5 (7, 14, 21, 28, ...).
	idx := bench.Communities.MembershipIndex(g.N())
	if len(idx[7]) != 2 || len(idx[14]) != 2 {
		t.Fatalf("nodes 7/14 should be in two communities, got %d/%d", len(idx[7]), len(idx[14]))
	}
	if len(idx[35]) != 1 {
		t.Fatalf("node 35 (0 mod 5 and 0 mod 7) should be core-only, got %d", len(idx[35]))
	}
	// No edges between distinct petals (modulo the core cliques):
	// nodes 1 and 2 are in petals 1 and 2 and not in the core.
	if g.HasEdge(1, 2) {
		t.Fatal("nodes of different petals must not be adjacent")
	}
}

func TestEdgeProbability(t *testing.T) {
	// α=0.5 petals: realized density should be near 0.5.
	d := Params{P: 3, Q: 1000003, N: 3000, Alpha: 0.5, Beta: 0} // prime q > n: no overlap
	bench, err := Generate(TreeParams{Daisy: d, K: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each petal has ~1000 nodes -> ~C(1000,2)·0.5 edges.
	com := bench.Communities.Communities[0] // first petal
	var within int64
	member := map[int32]bool{}
	for _, v := range com {
		member[v] = true
	}
	within = bench.Graph.EdgesWithin([]int32(com), func(v int32) bool { return member[v] })
	possible := float64(len(com)) * float64(len(com)-1) / 2
	density := float64(within) / possible
	if math.Abs(density-0.5) > 0.03 {
		t.Fatalf("petal density %.3f, want ≈0.5", density)
	}
}

func TestTreeAttachment(t *testing.T) {
	// Coprime p, q: every petal shares a node with the core, so a single
	// flower is connected and γ-attachments connect the whole tree.
	// (DefaultParams uses gcd(p,q)=2, where odd petals legitimately
	// float free of the core — the construction never promises
	// connectivity.)
	d := Params{P: 5, Q: 7, N: 100, Alpha: 0.7, Beta: 0.5}
	bench, err := Generate(TreeParams{Daisy: d, K: 4, Gamma: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if bench.Flowers != 5 {
		t.Fatalf("flowers=%d", bench.Flowers)
	}
	if bench.Graph.N() != 5*d.N {
		t.Fatalf("n=%d, want %d", bench.Graph.N(), 5*d.N)
	}
	if bench.Communities.Len() != 5*d.P {
		t.Fatalf("communities=%d, want %d", bench.Communities.Len(), 5*d.P)
	}
	// The tree must be connected across flowers: some edge crosses a
	// flower boundary.
	cross := false
	bench.Graph.Edges(func(u, v int32) bool {
		if int(u)/d.N != int(v)/d.N {
			cross = true
			return false
		}
		return true
	})
	if !cross {
		t.Fatal("no attachment edges between flowers")
	}
	// Whole tree forms one connected component (γ high enough here).
	if _, count := graph.Components(bench.Graph); count != 1 {
		t.Fatalf("components=%d, want 1", count)
	}
}

func TestGenerateToSize(t *testing.T) {
	d := DefaultParams()
	bench, err := GenerateToSize(d, DefaultGamma, 950, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Graph.N() < 950 || bench.Graph.N() >= 950+d.N {
		t.Fatalf("n=%d, want within one flower above 950", bench.Graph.N())
	}
	// Smaller than one flower clamps to one flower.
	bench, err = GenerateToSize(d, DefaultGamma, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Flowers != 1 {
		t.Fatalf("flowers=%d, want 1", bench.Flowers)
	}
}

func TestValidation(t *testing.T) {
	bad := []TreeParams{
		{Daisy: Params{P: 2, Q: 7, N: 100, Alpha: 0.5, Beta: 0.5}},
		{Daisy: Params{P: 5, Q: 1, N: 100, Alpha: 0.5, Beta: 0.5}},
		{Daisy: Params{P: 5, Q: 7, N: 5, Alpha: 0.5, Beta: 0.5}},
		{Daisy: Params{P: 5, Q: 7, N: 100, Alpha: 1.5, Beta: 0.5}},
		{Daisy: DefaultParams(), K: -1},
		{Daisy: DefaultParams(), Gamma: 2},
	}
	for i, tp := range bad {
		if _, err := Generate(tp); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	tp := TreeParams{Daisy: DefaultParams(), K: 3, Gamma: 0.1, Seed: 9}
	a, err := Generate(tp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M() != b.Graph.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph.M(), b.Graph.M())
	}
	same := true
	a.Graph.Edges(func(u, v int32) bool {
		if !b.Graph.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("same seed, different graphs")
	}
}

func TestPaperScaleDensity(t *testing.T) {
	// Table I reports the 1e5-node daisy with ≈4e5 edges. Our defaults
	// are denser; this test pins the Table-I configuration used by the
	// harness (sparser petals on larger flowers) to the paper's density
	// within a factor ~2.
	if testing.Short() {
		t.Skip("large generation in -short mode")
	}
	d := TableIParams()
	bench, err := GenerateToSize(d, DefaultGamma, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bench.Graph.M()) / float64(bench.Graph.N())
	if ratio < 2 || ratio > 8 {
		t.Fatalf("edges/nodes=%.2f, want ≈4 (Table I)", ratio)
	}
}
