package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The on-disk constants below are normative: docs/PERSISTENCE.md
// describes them and TestPersistenceDocSync (internal/persist) fails if
// the two diverge.

// MagicLog opens every WAL file.
var MagicLog = [4]byte{'O', 'C', 'A', 'W'}

// VersionLog is the WAL format version this package reads and writes.
const VersionLog = 1

// Record types. A reader must stop (treating the file as ending) at the
// first record whose type it does not know only if it cannot skip it;
// since every record is length-prefixed, unknown types are skippable —
// forward-compatible additive records are allowed without a version
// bump.
const (
	// RecEdgeBatch is one accepted mutation batch: the durable unit of
	// /v1/edges. Payload: seq u64, base u32, nNew u32, nAdd u32,
	// nRemove u32, then nNew locals (i32), nAdd pairs (i32,i32), nRemove
	// pairs (i32,i32).
	RecEdgeBatch = byte(1)
	// RecPublish marks a published generation: gen u64, seq u64 (the
	// ops included in that generation). Recovery uses the last publish
	// marker to restore generation numbering after replay.
	RecPublish = byte(2)
)

// MaxRecordBytes caps a record's declared payload size when parsing, so
// a corrupt length prefix cannot demand an absurd allocation.
const MaxRecordBytes = 1 << 24

// headerSize is the WAL file header: magic, version u32, baseGen u64.
const headerSize = 4 + 4 + 8

// frameHead is the per-record frame: payload length u32, CRC u32 (over
// the type byte and payload), type byte.
const frameHead = 4 + 4 + 1

// castagnoli is the CRC-32C polynomial table shared by WAL records and
// segment sections.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC-32C over b — the checksum every WAL record and
// segment section carries.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ErrTorn marks a WAL tail that ends mid-record — a crash between
// writing and syncing. Everything before the torn record is valid;
// recovery truncates at the reported offset and replays the prefix.
var ErrTorn = errors.New("wal: torn record at tail")

// Header identifies a WAL file: the generation of the snapshot segment
// it logs batches after.
type Header struct {
	Version int
	BaseGen uint64
}

// Record is one framed WAL entry.
type Record struct {
	Type    byte
	Payload []byte
}

// EdgeBatch is the payload of a RecEdgeBatch record: one accepted
// mutation batch with its cumulative operation sequence number (the
// worker's op count after this batch) and, on sharded deployments, the
// translation-table growth shipped alongside it (Base/NewLocals mirror
// shard.Batch; both are zero on the single-graph role).
type EdgeBatch struct {
	Seq       uint64
	Base      int
	NewLocals []int32
	Add       [][2]int32
	Remove    [][2]int32
}

// Publish is the payload of a RecPublish record.
type Publish struct {
	Gen uint64
	Seq uint64
}

// AppendEdgeBatch encodes b as a RecEdgeBatch payload.
func (b EdgeBatch) encode() []byte {
	n := 8 + 4 + 4 + 4 + 4 + 4*len(b.NewLocals) + 8*len(b.Add) + 8*len(b.Remove)
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint64(out, b.Seq)
	out = binary.LittleEndian.AppendUint32(out, uint32(b.Base))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.NewLocals)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Add)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Remove)))
	for _, v := range b.NewLocals {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	for _, e := range b.Add {
		out = binary.LittleEndian.AppendUint32(out, uint32(e[0]))
		out = binary.LittleEndian.AppendUint32(out, uint32(e[1]))
	}
	for _, e := range b.Remove {
		out = binary.LittleEndian.AppendUint32(out, uint32(e[0]))
		out = binary.LittleEndian.AppendUint32(out, uint32(e[1]))
	}
	return out
}

// DecodeEdgeBatch parses a RecEdgeBatch payload.
func DecodeEdgeBatch(p []byte) (EdgeBatch, error) {
	var b EdgeBatch
	if len(p) < 24 {
		return b, fmt.Errorf("wal: edge-batch payload %d bytes, want >= 24", len(p))
	}
	b.Seq = binary.LittleEndian.Uint64(p[0:])
	base := binary.LittleEndian.Uint32(p[8:])
	nNew := binary.LittleEndian.Uint32(p[12:])
	nAdd := binary.LittleEndian.Uint32(p[16:])
	nRemove := binary.LittleEndian.Uint32(p[20:])
	const maxInt32 = 1 << 31
	if base >= maxInt32 {
		return b, fmt.Errorf("wal: edge-batch base %d out of range", base)
	}
	b.Base = int(base)
	want := 24 + 4*int64(nNew) + 8*int64(nAdd) + 8*int64(nRemove)
	if int64(len(p)) != want {
		return b, fmt.Errorf("wal: edge-batch payload %d bytes, counts demand %d", len(p), want)
	}
	p = p[24:]
	if nNew > 0 {
		b.NewLocals = make([]int32, nNew)
		for i := range b.NewLocals {
			b.NewLocals[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
		}
		p = p[4*nNew:]
	}
	readPairs := func(n uint32) [][2]int32 {
		if n == 0 {
			return nil
		}
		out := make([][2]int32, n)
		for i := range out {
			out[i][0] = int32(binary.LittleEndian.Uint32(p[8*i:]))
			out[i][1] = int32(binary.LittleEndian.Uint32(p[8*i+4:]))
		}
		p = p[8*n:]
		return out
	}
	b.Add = readPairs(nAdd)
	b.Remove = readPairs(nRemove)
	return b, nil
}

func (pub Publish) encode() []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out[0:], pub.Gen)
	binary.LittleEndian.PutUint64(out[8:], pub.Seq)
	return out
}

// DecodePublish parses a RecPublish payload.
func DecodePublish(p []byte) (Publish, error) {
	if len(p) != 16 {
		return Publish{}, fmt.Errorf("wal: publish payload %d bytes, want 16", len(p))
	}
	return Publish{
		Gen: binary.LittleEndian.Uint64(p[0:]),
		Seq: binary.LittleEndian.Uint64(p[8:]),
	}, nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = append(dst, typ)
	return append(dst, payload...)
}

// ReadLog parses an entire WAL stream. It returns the header, every
// intact record in order, and the number of bytes those cover. A tail
// that ends mid-record or fails its checksum stops the scan and is
// reported as an error wrapping ErrTorn — the records before it are
// still returned, and valid says where a recovery pass should truncate.
// Any other error means the file is not a WAL (bad magic/version).
func ReadLog(r io.Reader) (hdr Header, recs []Record, valid int64, err error) {
	var head [headerSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return hdr, nil, 0, fmt.Errorf("wal: reading header: %w", err)
	}
	if [4]byte(head[:4]) != MagicLog {
		return hdr, nil, 0, fmt.Errorf("wal: bad magic %q, not a WAL file", head[:4])
	}
	hdr.Version = int(binary.LittleEndian.Uint32(head[4:8]))
	if hdr.Version != VersionLog {
		return hdr, nil, 0, fmt.Errorf("wal: unsupported version %d", hdr.Version)
	}
	hdr.BaseGen = binary.LittleEndian.Uint64(head[8:16])
	valid = headerSize

	var fh [frameHead]byte
	for {
		n, err := io.ReadFull(r, fh[:])
		if err == io.EOF {
			return hdr, recs, valid, nil // clean end at a record boundary
		}
		if err != nil {
			return hdr, recs, valid, fmt.Errorf("%w: frame head %d of %d bytes at offset %d", ErrTorn, n, frameHead, valid)
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		crc := binary.LittleEndian.Uint32(fh[4:8])
		typ := fh[8]
		if plen > MaxRecordBytes {
			return hdr, recs, valid, fmt.Errorf("%w: declared payload %d exceeds %d at offset %d", ErrTorn, plen, MaxRecordBytes, valid)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return hdr, recs, valid, fmt.Errorf("%w: payload truncated at offset %d", ErrTorn, valid)
		}
		if got := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload); got != crc {
			return hdr, recs, valid, fmt.Errorf("%w: checksum %08x != %08x at offset %d", ErrTorn, got, crc, valid)
		}
		recs = append(recs, Record{Type: typ, Payload: payload})
		valid += int64(frameHead) + int64(plen)
	}
}
