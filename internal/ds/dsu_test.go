package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDSUBasic(t *testing.T) {
	d := NewDSU(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("fresh DSU: sets=%d len=%d, want 5,5", d.Sets(), d.Len())
	}
	if !d.Union(0, 1) {
		t.Fatal("Union(0,1) should merge")
	}
	if d.Union(1, 0) {
		t.Fatal("Union(1,0) should not merge again")
	}
	if !d.Same(0, 1) {
		t.Fatal("0 and 1 should be in the same set")
	}
	if d.Same(0, 2) {
		t.Fatal("0 and 2 should be in different sets")
	}
	if d.Sets() != 4 {
		t.Fatalf("sets=%d, want 4", d.Sets())
	}
	if d.SetSize(1) != 2 {
		t.Fatalf("SetSize(1)=%d, want 2", d.SetSize(1))
	}
}

func TestDSUGroups(t *testing.T) {
	d := NewDSU(6)
	d.Union(0, 1)
	d.Union(1, 2)
	d.Union(4, 5)
	groups := d.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("group size histogram %v, want one each of 3,2,1", sizes)
	}
}

// naiveDSU tracks set labels explicitly for cross-checking.
type naiveDSU struct{ label []int }

func newNaiveDSU(n int) *naiveDSU {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return &naiveDSU{label: l}
}

func (nd *naiveDSU) union(x, y int) bool {
	lx, ly := nd.label[x], nd.label[y]
	if lx == ly {
		return false
	}
	for i, l := range nd.label {
		if l == ly {
			nd.label[i] = lx
		}
	}
	return true
}

func (nd *naiveDSU) same(x, y int) bool { return nd.label[x] == nd.label[y] }

func (nd *naiveDSU) sets() int {
	seen := map[int]bool{}
	for _, l := range nd.label {
		seen[l] = true
	}
	return len(seen)
}

// TestDSUMatchesNaive drives random union/same sequences against a naive
// labeling implementation.
func TestDSUMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		d := NewDSU(n)
		nd := newNaiveDSU(n)
		for op := 0; op < 200; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				if d.Union(x, y) != nd.union(x, y) {
					return false
				}
			} else if d.Same(x, y) != nd.same(x, y) {
				return false
			}
			if d.Sets() != nd.sets() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDSUSetSizesSumToN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		d := NewDSU(n)
		for op := 0; op < n; op++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		total := 0
		for _, g := range d.Groups() {
			if d.SetSize(g[0]) != len(g) {
				return false
			}
			total += len(g)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
