// Command oca is the command-line front end of the library: generate
// benchmark graphs, run the community-search algorithms, evaluate found
// communities against ground truth, and inspect graphs.
//
// Usage:
//
//	oca gen   -type lfr|daisy|ba|gnm|rmat|wiki [params...] -out g.txt [-truth t.txt]
//	oca run   -algo oca|lfk|cpm|cfinder -in g.txt [-out c.txt] [params...]
//	oca eval  -truth t.txt -found c.txt [-n nodes]
//	oca stats -in g.txt [-triangles]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "oca: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oca:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `oca - overlapping community search (ICDE 2010 reproduction)

subcommands:
  gen    generate a benchmark graph (lfr, daisy, ba, gnm, rmat, wiki)
  run    run an algorithm (oca, lfk, cpm, cfinder) on an edge-list graph
  eval    score found communities against ground truth (Θ, F1, Ω)
  stats   print graph statistics
  analyze per-community quality (density, conductance, mixing)
  summarize lossless community-based graph compression
  dot     render graph + communities as Graphviz dot

run "oca <subcommand> -h" for flags.
`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	typ := fs.String("type", "lfr", "generator: lfr, daisy, ba, gnm, rmat, wiki")
	out := fs.String("out", "", "output edge-list file (default stdout)")
	truthPath := fs.String("truth", "", "also write ground-truth communities to this file")
	seed := fs.Int64("seed", 1, "random seed")
	n := fs.Int("n", 1000, "nodes (lfr, daisy target size, ba, gnm)")
	avgDeg := fs.Float64("avgdeg", 20, "lfr: average degree")
	maxDeg := fs.Int("maxdeg", 50, "lfr: maximum degree")
	mu := fs.Float64("mu", 0.2, "lfr: mixing parameter")
	minCom := fs.Int("minc", 20, "lfr: min community size")
	maxCom := fs.Int("maxc", 50, "lfr: max community size")
	on := fs.Int("on", 0, "lfr: overlapping nodes")
	om := fs.Int("om", 2, "lfr: memberships per overlapping node")
	p := fs.Int("p", 5, "daisy: petal modulus")
	q := fs.Int("q", 7, "daisy: core modulus")
	dn := fs.Int("dn", 100, "daisy: nodes per flower")
	alpha := fs.Float64("alpha", 0.7, "daisy: petal edge probability")
	beta := fs.Float64("beta", 0.5, "daisy: core edge probability")
	gamma := fs.Float64("gamma", 0.05, "daisy: attachment edge probability")
	m := fs.Int64("m", 3, "ba: edges per node / gnm: edge count")
	scale := fs.Int("scale", 15, "rmat, wiki: log2 of node count")
	ef := fs.Int("ef", 10, "rmat: edge factor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g     *repro.Graph
		truth *repro.Cover
		err   error
	)
	switch *typ {
	case "lfr":
		var b *repro.LFRBenchmark
		b, err = repro.GenerateLFR(repro.LFRParams{
			N: *n, AvgDeg: *avgDeg, MaxDeg: *maxDeg, Mu: *mu,
			MinCom: *minCom, MaxCom: *maxCom,
			OverlapNodes: *on, OverlapMemb: *om, Seed: *seed,
		})
		if err == nil {
			g, truth = b.Graph, b.Communities
		}
	case "daisy":
		var b *repro.DaisyBenchmark
		d := repro.DaisyParams{P: *p, Q: *q, N: *dn, Alpha: *alpha, Beta: *beta}
		flowers := (*n + *dn - 1) / *dn
		b, err = repro.GenerateDaisyTree(repro.DaisyTreeParams{
			Daisy: d, K: flowers - 1, Gamma: *gamma, Seed: *seed,
		})
		if err == nil {
			g, truth = b.Graph, b.Communities
		}
	case "ba":
		g, err = repro.GenerateBarabasiAlbert(*n, int(*m), *seed)
	case "gnm":
		g, err = repro.GenerateGNM(*n, *m, *seed)
	case "rmat":
		g, err = repro.GenerateRMAT(repro.RMATParams{Scale: *scale, EdgeFactor: *ef, Seed: *seed})
	case "wiki":
		g, err = repro.GenerateWikipediaLike(*scale, *seed)
	default:
		return fmt.Errorf("unknown generator %q", *typ)
	}
	if err != nil {
		return err
	}

	if err := writeTo(*out, func(w io.Writer) error { return repro.WriteGraph(w, g) }); err != nil {
		return err
	}
	if *truthPath != "" {
		if truth == nil {
			return fmt.Errorf("generator %q has no ground truth", *typ)
		}
		if err := writeTo(*truthPath, func(w io.Writer) error { return repro.WriteCover(w, truth) }); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d nodes, %d edges\n", *typ, g.N(), g.M())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	algo := fs.String("algo", "oca", "algorithm: oca, lfk, cpm, cfinder")
	in := fs.String("in", "", "input edge-list file (default stdin)")
	out := fs.String("out", "", "output community file (default stdout)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "oca: parallel seed searches (default GOMAXPROCS)")
	cParam := fs.Float64("c", 0, "oca: inner-product parameter override (0 = compute)")
	noMerge := fs.Bool("nomerge", false, "oca: skip ρ-merge post-processing")
	mergeThreshold := fs.Float64("merge", repro.MergeThreshold, "oca: merge threshold")
	orphans := fs.Bool("orphans", false, "oca: assign orphan nodes")
	alpha := fs.Float64("alpha", 1, "lfk: fitness exponent α")
	k := fs.Int("k", 3, "cpm/cfinder: clique size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := readGraphFrom(*in)
	if err != nil {
		return err
	}

	var cv *repro.Cover
	switch *algo {
	case "oca":
		res, err := repro.OCA(g, repro.OCAOptions{
			Seed: *seed, Workers: *workers, C: *cParam,
			DisableMerge: *noMerge, MergeThreshold: *mergeThreshold,
			AssignOrphans: *orphans,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "oca: c=%.4f seeds=%d raw=%d communities=%d coverage=%.1f%%\n",
			res.C, res.SeedsTried, res.RawCommunities, res.Cover.Len(),
			100*res.Cover.Coverage(g.N()))
		cv = res.Cover
	case "lfk":
		res, err := repro.LFK(g, repro.LFKOptions{Seed: *seed, Alpha: *alpha})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lfk: seeds=%d communities=%d\n", res.SeedsTried, res.Cover.Len())
		cv = res.Cover
	case "cpm":
		res, err := repro.CPM(g, repro.CPMOptions{K: *k})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cpm: cliques=%d communities=%d\n", res.Cliques, res.Cover.Len())
		cv = res.Cover
	case "cfinder":
		res, err := repro.CFinder(g, repro.CPMOptions{K: *k})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cfinder: cliques(≥k)=%d communities=%d\n", res.Cliques, res.Cover.Len())
		cv = res.Cover
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return writeTo(*out, func(w io.Writer) error { return repro.WriteCover(w, cv) })
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	truthPath := fs.String("truth", "", "ground-truth community file (required)")
	foundPath := fs.String("found", "", "found community file (required)")
	n := fs.Int("n", 0, "node count for the Omega index (0 = max id + 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *truthPath == "" || *foundPath == "" {
		return fmt.Errorf("eval needs -truth and -found")
	}
	truth, err := readCoverFrom(*truthPath)
	if err != nil {
		return err
	}
	found, err := readCoverFrom(*foundPath)
	if err != nil {
		return err
	}
	nodes := *n
	if nodes == 0 {
		for _, cv := range []*repro.Cover{truth, found} {
			for _, c := range cv.Communities {
				for _, v := range c {
					if int(v)+1 > nodes {
						nodes = int(v) + 1
					}
				}
			}
		}
	}
	fmt.Printf("reference communities: %d\n", truth.Len())
	fmt.Printf("observed communities:  %d\n", found.Len())
	fmt.Printf("Theta (eq. V.2):       %.4f\n", repro.Theta(truth, found))
	fmt.Printf("best-match F1:         %.4f\n", repro.BestMatchF1(truth, found))
	fmt.Printf("Omega index:           %.4f\n", repro.OmegaIndex(truth, found, nodes))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file (default stdin)")
	triangles := fs.Bool("triangles", false, "count triangles (O(m^1.5))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := readGraphFrom(*in)
	if err != nil {
		return err
	}
	st := repro.Stats(g, *triangles)
	fmt.Println(st)
	if *triangles {
		fmt.Printf("triangles=%d\n", st.Triangles)
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file (default stdin)")
	coverPath := fs.String("cover", "", "community file (required)")
	top := fs.Int("top", 20, "show at most this many communities (largest first)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coverPath == "" {
		return fmt.Errorf("analyze needs -cover")
	}
	g, err := readGraphFrom(*in)
	if err != nil {
		return err
	}
	cv, err := readCoverFrom(*coverPath)
	if err != nil {
		return err
	}
	cv.SortBySize()
	qs := repro.AnalyzeCover(g, cv)
	fmt.Printf("%6s %8s %10s %8s %12s %8s\n", "#", "size", "edges", "density", "conductance", "mixing")
	for i, q := range qs {
		if i >= *top {
			fmt.Printf("... %d more\n", len(qs)-i)
			break
		}
		fmt.Printf("%6d %8d %10d %8.3f %12.3f %8.3f\n",
			i, q.Size, q.InternalEdges, q.Density, q.Conductance, q.MixingRatio)
	}
	return nil
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file (default stdin)")
	coverPath := fs.String("cover", "", "community file (required)")
	verify := fs.Bool("verify", true, "reconstruct and compare against the original")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coverPath == "" {
		return fmt.Errorf("summarize needs -cover")
	}
	g, err := readGraphFrom(*in)
	if err != nil {
		return err
	}
	cv, err := readCoverFrom(*coverPath)
	if err != nil {
		return err
	}
	s, err := repro.Summarize(g, cv)
	if err != nil {
		return err
	}
	dense := 0
	for _, d := range s.SelfDense {
		if d {
			dense++
		}
	}
	fmt.Printf("supernodes:  %d (%d dense interiors)\n", len(s.Supernodes), dense)
	fmt.Printf("superedges:  %d\n", len(s.Superedges))
	fmt.Printf("additions:   %d\n", len(s.Additions))
	fmt.Printf("exceptions:  %d\n", len(s.Exceptions))
	fmt.Printf("cost:        %d entries vs %d edges (ratio %.3f)\n",
		s.Cost(), g.M(), float64(s.Cost())/float64(g.M()))
	if *verify {
		g2 := repro.ReconstructGraph(s)
		if g2.N() != g.N() || g2.M() != g.M() {
			return fmt.Errorf("reconstruction mismatch: %d/%d nodes, %d/%d edges",
				g2.N(), g.N(), g2.M(), g.M())
		}
		mismatch := false
		g.Edges(func(u, v int32) bool {
			if !g2.HasEdge(u, v) {
				mismatch = true
				return false
			}
			return true
		})
		if mismatch {
			return fmt.Errorf("reconstruction mismatch: edge sets differ")
		}
		fmt.Println("verified:    reconstruction is exact")
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file (default stdin)")
	coverPath := fs.String("cover", "", "community file (required)")
	out := fs.String("out", "", "output dot file (default stdout)")
	maxNodes := fs.Int("maxnodes", 2000, "refuse larger graphs")
	uncovered := fs.Bool("uncovered", false, "include uncovered nodes (gray)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coverPath == "" {
		return fmt.Errorf("dot needs -cover")
	}
	g, err := readGraphFrom(*in)
	if err != nil {
		return err
	}
	cv, err := readCoverFrom(*coverPath)
	if err != nil {
		return err
	}
	return writeTo(*out, func(w io.Writer) error {
		return repro.WriteDOT(w, g, cv, repro.DOTOptions{
			MaxNodes:         *maxNodes,
			IncludeUncovered: *uncovered,
		})
	})
}

func readGraphFrom(path string) (*repro.Graph, error) {
	if path == "" {
		return repro.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return repro.ReadGraph(f)
}

func readCoverFrom(path string) (*repro.Cover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return repro.ReadCover(f)
}

func writeTo(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
