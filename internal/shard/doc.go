// Package shard partitions a graph — and the overlapping community
// cover served over it — across K node-disjoint shards, and routes
// queries and mutations to them. It is the serving-scale layer the
// ROADMAP's north star calls for.
//
// # Partitioning
//
// Node v belongs to shard v mod K (Partition). Each shard's graph
// (Split, Piece) contains its owned nodes plus "ghost" copies of every
// boundary neighbor, with the full induced halo (owned–ghost and
// ghost–ghost edges), so the per-shard OCA run still sees complete
// boundary neighborhoods — the paper's fitness L(s, m, c) depends only
// on a set's size and internal edges, so a community whose induced
// subgraph is present in the halo scores identically to the unsharded
// run. Communities containing no owned node are dropped before
// publication (ghost filtering); the surviving per-shard covers,
// translated back to global ids, form the served sharded cover
// (MergeCovers for the offline merged view).
//
// # The pieces and their seams
//
//   - Worker is one shard's authoritative engine: the shard graph kept
//     live by its own refresh.Worker, the append-only global↔local
//     translation table, ghost filtering and ownership metadata (Meta)
//     on every published generation — assembled by a full rebuild
//     (BuildSnapshot hook) or patched in O(|dirty region|) on
//     fastpath/incremental rebuilds (PatchSnapshot hook).
//   - Backend is the seam the Router fans out over: Worker implements
//     it in-process, and internal/transport's Client implements it
//     over the wire (each shard in its own process), shipping
//     translation-table growth with each mutation batch (Batch,
//     ApplyBatch) and mirroring snapshots for reads.
//   - Router owns K backends: all-or-nothing mutation admission,
//     global→local translation with ghost materialization, per-request
//     Views, and the (shard, generation) vector (GenVector) every
//     response quotes — including each degraded shard's explicit error
//     (View.Err, ErrUnavailable) so a down or slow shard yields
//     partial results instead of hangs or silent staleness.
//
// internal/server consumes the Router through its SnapshotProvider
// seam; the same handlers serve one in-process worker, K in-process
// shards, and K shard processes.
package shard
