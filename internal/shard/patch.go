package shard

// The shard layer's incremental snapshot assembly: the
// refresh.Config.PatchSnapshot hook. Before this hook existed, every
// per-shard fastpath/incremental rebuild went through buildSnapshot —
// a full index.Build, Stats re-tally and O(n+m) Meta scan — because
// ghost filtering invalidated the built-in patch contract. The hook
// restores cost ∝ |dirty region| on the shard path: fresh communities
// are ghost-filtered on their own (carried communities survived the
// previous generation's filter, so they need no re-check), the index
// and overlap stats are patched with the same primitives as the
// unsharded path (index.Patch, cover.PatchStats), and the ownership
// Meta is adjusted from the batch's effective edge delta and the
// affected nodes' membership changes instead of rescanned.

import (
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/refresh"
)

// patchSnapshot is the refresh.Config.PatchSnapshot hook: assemble the
// published per-shard snapshot for a fastpath or incremental rebuild by
// patching the previous generation's derived state. It falls back to
// buildSnapshot when the previous generation lacks the shard metadata
// the patch starts from (never the case for worker-published
// generations; defensive only).
func (w *Worker) patchSnapshot(ng *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration, pc *refresh.PatchContext) *refresh.Snapshot {
	old := pc.Old
	oldMeta, ok := old.Aux.(*Meta)
	if !ok || old.Index == nil {
		return w.buildSnapshot(ng, cv, res, c, buildTime)
	}
	locals := w.localsPrefix(ng.N())
	owns := func(l int32) bool { return int(locals[l])%w.k == w.id }

	// Ghost filtering applies to the fresh communities only: the carried
	// prefix survived the previous generation's filter, and the
	// incremental merge only unions members into them.
	added := cv.Communities[pc.Kept:]
	fresh := make([]cover.Community, 0, len(added))
	for _, cm := range added {
		for _, l := range cm {
			if owns(l) {
				fresh = append(fresh, cm)
				break
			}
		}
	}
	newCv := cv
	if len(fresh) != len(added) {
		kept := cv.Communities[:pc.Kept:pc.Kept]
		newCv = cover.NewCover(append(kept, fresh...))
	}

	ix := index.Patch(old.Index, pc.Removed, fresh, ng.N())
	stats := old.Stats
	var affected []int32
	if len(pc.Removed) > 0 || len(fresh) > 0 {
		affected = refresh.AffectedNodes(old.Cover, pc.Removed, fresh, ng.N())
		// Ids the batch grew past the previous index's range report
		// Degree 0 there, matching "did not exist, had no memberships".
		stats = cover.PatchStats(old.Stats, newCv, ng.N(), affected, old.Index.Degree, ix.Degree)
	}

	return &refresh.Snapshot{
		Graph:     ng,
		Cover:     newCv,
		Index:     ix,
		Stats:     stats,
		Result:    res,
		C:         c,
		MaxDegree: ng.MaxDegree(),
		BuildTime: buildTime,
		BuiltAt:   time.Now(),
		Aux:       w.patchMeta(oldMeta, old, ng, locals, affected, old.Index.Degree, ix, pc),
	}
}

// patchMeta adjusts the previous generation's ownership metadata for
// the batch: O(|batch| + |affected|) instead of buildMeta's O(n + m)
// rescan, except the rare full membership re-scan when the owned
// membership maximum may have shrunk (mirroring cover.PatchStats).
func (w *Worker) patchMeta(oldMeta *Meta, old *refresh.Snapshot, ng *graph.Graph, locals []int32, affected []int32, oldDeg func(int32) int, ix *index.Membership, pc *refresh.PatchContext) *Meta {
	m := &Meta{
		Shard:              w.id,
		K:                  w.k,
		Locals:             locals,
		OwnedNodes:         oldMeta.OwnedNodes,
		OwnedEdges:         oldMeta.OwnedEdges,
		CoveredOwned:       oldMeta.CoveredOwned,
		OverlapOwned:       oldMeta.OverlapOwned,
		OwnedMemberships:   oldMeta.OwnedMemberships,
		MaxMembershipOwned: oldMeta.MaxMembershipOwned,
	}
	owns := func(l int32) bool { return int(locals[l])%w.k == w.id }

	// Node growth: every local id past the previous graph is new here
	// (owned only when a mutation named a new globally-owned id).
	oldN := old.Graph.N()
	for l := oldN; l < ng.N(); l++ {
		if owns(int32(l)) {
			m.OwnedNodes++
		}
	}

	// Accountable-edge delta: compare each distinct mutated pair's
	// presence in the previous and new graphs — adds of existing edges
	// and removals of absent ones cancel out here exactly as they did in
	// the graph delta.
	seen := make(map[[2]int32]struct{}, len(pc.Add)+len(pc.Remove))
	visit := func(u, v int32) {
		if u > v {
			u, v = v, u
		}
		p := [2]int32{u, v}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		was := int(u) < oldN && int(v) < oldN && old.Graph.HasEdge(u, v)
		is := ng.HasEdge(u, v)
		if was == is {
			return
		}
		gu, gv := locals[u], locals[v]
		ou, ov := owns(u), owns(v)
		// Same accountability rule as buildMeta: internal edges, plus
		// cross-shard edges whose smaller-global-id endpoint is owned.
		accountable := (ou && ov) || (ou && gu < gv) || (ov && gv < gu)
		if !accountable {
			return
		}
		if is {
			m.OwnedEdges++
		} else {
			m.OwnedEdges--
		}
	}
	for _, e := range pc.Add {
		visit(e[0], e[1])
	}
	for _, e := range pc.Remove {
		visit(e[0], e[1])
	}

	// Membership tallies over the affected owned nodes, mirroring
	// cover.PatchStats for the owned-only aggregates.
	maxMayDrop := false
	for _, v := range affected {
		if !owns(v) {
			continue
		}
		od, nd := oldDeg(v), ix.Degree(v)
		if od == nd {
			continue
		}
		m.OwnedMemberships += int64(nd - od)
		switch {
		case od == 0 && nd > 0:
			m.CoveredOwned++
		case od > 0 && nd == 0:
			m.CoveredOwned--
		}
		switch {
		case od <= 1 && nd >= 2:
			m.OverlapOwned++
		case od >= 2 && nd <= 1:
			m.OverlapOwned--
		}
		if nd > m.MaxMembershipOwned {
			m.MaxMembershipOwned = nd
		}
		if nd < od && od >= oldMeta.MaxMembershipOwned {
			maxMayDrop = true
		}
	}
	if maxMayDrop {
		max := 0
		for l := int32(0); int(l) < ng.N(); l++ {
			if owns(l) {
				if d := ix.Degree(l); d > max {
					max = d
				}
			}
		}
		m.MaxMembershipOwned = max
	}
	return m
}
