//go:build !linux

package persist

import "os"

// mapFile on platforms without the mmap fast path reports no mapping;
// callers fall back to reading the file into memory.
func mapFile(f *os.File, size int64) ([]byte, error) { return nil, nil }

func unmapFile(m []byte) error { return nil }
