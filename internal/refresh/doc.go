// Package refresh keeps a served community cover live under graph
// mutation. A Worker owns the current (graph, cover, index, stats)
// tuple as a generation-numbered immutable Snapshot behind an atomic
// pointer: readers load the pointer once per request and never block,
// while a single background goroutine applies queued edge mutations to
// the CSR graph (graph.Delta, copy-on-write), recomputes what the
// batch invalidated, and publishes the result as the next generation.
//
// # Rebuild modes
//
// Config.IncrementalThreshold routes each taken batch (planRebuild):
//
//   - ModeFull — whole-graph OCA, warm-started from communities the
//     batch did not touch, index and stats rebuilt;
//   - ModeIncremental — OCA re-seeded only over the dirty region
//     (mutated endpoints plus members of touched communities, via
//     core.Options.Restrict), fresh discoveries folded into the
//     carried cover by postprocess.MergeInto, index.Patch and
//     cover.PatchStats instead of rebuilds — cost proportional to the
//     batch, not the graph;
//   - ModeFastpath — the batch touched no community and added no
//     structure: the new graph publishes with the cover carried
//     pointer-identical and no OCA at all.
//
// A rebuild failure publishes the new graph with the previous cover
// carried over (mutations never shrink the node set, so the old cover
// remains valid) rather than failing reads.
//
// # Seams for custom snapshot layers
//
// Config.BuildSnapshot lets a layer above assemble the published
// Snapshot on full rebuilds (the shard layer filters ghost-only
// communities and attaches ownership metadata via Snapshot.Aux);
// Config.PatchSnapshot is its incremental counterpart, handed a
// PatchContext describing exactly what changed so that layer can patch
// its derived state in O(|dirty region|) too. SnapshotInfo is the
// wire-serializable summary of a generation (with Snapshot.Restore as
// the receiving half) used by the multi-process shard transport.
//
// By default the node set is fixed for the lifetime of a Worker;
// Config.MaxNodes lets added edges name new node ids, growing the
// graph across rebuilds (the sharded router relies on this to
// materialize ghost copies of boundary nodes on demand). Mutation
// batches are validated and accepted atomically (ValidateBatch, shared
// with the shard router so both layers accept exactly the same
// batches), rebuilds are debounced so bursts coalesce into one OCA
// run, and Flush gives writers a publication barrier.
package refresh
