package index

import (
	"fmt"

	"repro/internal/cover"
)

// Patch builds the index of a cover derived from prev's cover by
// removing some communities and appending new ones, editing prev's flat
// CSR slices by filtered copy instead of re-traversing the whole cover
// the way Build does: kept memberships stream straight from prev's
// arrays (one branch per membership, cache-friendly), and only the
// added communities' members are visited at all.
//
// The contract matches what refresh's incremental rebuild produces (see
// postprocess.MergeInto): the new cover keeps the surviving communities
// of prev's cover in their previous relative order, ahead of all added
// ones. Kept community ids therefore stay monotone and added ids exceed
// them, so every node's membership list remains sorted without a
// per-node sort. removed is indexed by previous community id and must
// cover all of them; n is the new node count and may exceed prev.N()
// (grown nodes are isolated and uncovered). Added members outside
// [0, n) are ignored, matching Build.
//
// Pure growth — nothing removed, nothing added, larger n — extends the
// offsets table and shares prev's membership array outright; a nil/nil
// patch at the same n returns prev itself.
// Permute returns the index relabeled by a community permutation —
// perm[old] is the new id of community old, as produced by
// cover.SortPerm on the indexed cover. Offsets are shared with prev
// (every node keeps the same membership count); only the id payload is
// remapped, and each node's short list re-sorted to restore the
// ascending-per-node invariant: O(memberships) total. An identity (or
// empty) permutation returns prev itself.
func Permute(prev *Membership, perm []int32) *Membership {
	if len(perm) != prev.k {
		panic(fmt.Sprintf("index: Permute got %d ids for %d communities", len(perm), prev.k))
	}
	identity := true
	for i, p := range perm {
		if int32(i) != p {
			identity = false
			break
		}
	}
	if identity {
		return prev
	}
	comms := make([]int32, len(prev.comms))
	for i, ci := range prev.comms {
		comms[i] = perm[ci]
	}
	ix := &Membership{offsets: prev.offsets, comms: comms, k: prev.k}
	// Membership lists are short (a node's overlap degree), so insertion
	// sort beats sort.Slice's interface overhead here.
	for v, n := 0, ix.N(); v < n; v++ {
		lst := comms[ix.offsets[v]:ix.offsets[v+1]]
		for i := 1; i < len(lst); i++ {
			for j := i; j > 0 && lst[j] < lst[j-1]; j-- {
				lst[j], lst[j-1] = lst[j-1], lst[j]
			}
		}
	}
	return ix
}

func Patch(prev *Membership, removed []bool, added []cover.Community, n int) *Membership {
	if len(removed) != 0 && len(removed) != prev.k {
		panic(fmt.Sprintf("index: Patch removed has %d entries for %d communities", len(removed), prev.k))
	}
	pn := prev.N()
	if n < pn {
		panic(fmt.Sprintf("index: Patch shrinks the node set from %d to %d", pn, n))
	}
	anyRemoved := false
	for _, r := range removed {
		if r {
			anyRemoved = true
			break
		}
	}
	if !anyRemoved && len(added) == 0 {
		if n == pn {
			return prev
		}
		// Pure growth: new nodes are uncovered, so the membership array
		// is unchanged and only the offsets table extends.
		offsets := make([]int64, n+1)
		copy(offsets, prev.offsets)
		for v := pn + 1; v <= n; v++ {
			offsets[v] = offsets[pn]
		}
		return &Membership{offsets: offsets, comms: prev.comms, k: prev.k}
	}

	// newID maps surviving previous community ids to their ids in the
	// new cover; kept counts them.
	newID := make([]int32, prev.k)
	kept := int32(0)
	for ci := range newID {
		if anyRemoved && removed[ci] {
			newID[ci] = -1
			continue
		}
		newID[ci] = kept
		kept++
	}

	ix := &Membership{offsets: make([]int64, n+1), k: int(kept) + len(added)}
	for v := 0; v < pn; v++ {
		for _, ci := range prev.comms[prev.offsets[v]:prev.offsets[v+1]] {
			if newID[ci] >= 0 {
				ix.offsets[v+1]++
			}
		}
	}
	for _, c := range added {
		for _, v := range c {
			if v >= 0 && int(v) < n {
				ix.offsets[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		ix.offsets[v+1] += ix.offsets[v]
	}
	ix.comms = make([]int32, ix.offsets[n])
	fill := make([]int64, n)
	copy(fill, ix.offsets[:n])
	// Kept memberships first: prev's per-node lists are ascending and
	// newID is monotone over survivors, so the copied prefix is sorted.
	for v := 0; v < pn; v++ {
		for _, ci := range prev.comms[prev.offsets[v]:prev.offsets[v+1]] {
			if id := newID[ci]; id >= 0 {
				ix.comms[fill[v]] = id
				fill[v]++
			}
		}
	}
	// Added memberships after: their ids all exceed the kept ids and
	// are assigned in visit order, keeping each node's list sorted.
	for ai, c := range added {
		id := kept + int32(ai)
		for _, v := range c {
			if v >= 0 && int(v) < n {
				ix.comms[fill[v]] = id
				fill[v]++
			}
		}
	}
	return ix
}
