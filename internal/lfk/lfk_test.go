package lfk

import (
	"math"
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/search"
)

func twoCliquesBridge(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
			b.AddEdge(int32(k)+i, int32(k)+j)
		}
	}
	b.AddEdge(int32(k-1), int32(k))
	return b.Build()
}

func TestFitnessFormula(t *testing.T) {
	// kin=2·Ein, vol=kin+kout. Ein=3, vol=10 -> f = 6/10 with α=1.
	if got := fitness(3, 10, 1); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("f=%v, want 0.6", got)
	}
	// α=2: 6/100.
	if got := fitness(3, 10, 2); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("f=%v, want 0.06", got)
	}
	if fitness(0, 0, 1) != 0 {
		t.Fatal("empty fitness should be 0")
	}
}

func TestNaturalCommunityIsClique(t *testing.T) {
	g := twoCliquesBridge(6)
	st := search.NewState(g, g.MaxDegree())
	naturalCommunity(g, st, 0, Options{}.withDefaults(g.N()))
	got := cover.Community(st.Members())
	want := cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5})
	if !got.Equal(want) {
		t.Fatalf("natural community of 0 = %v, want clique A", got)
	}
	// From the other side.
	st.Reset()
	naturalCommunity(g, st, 9, Options{}.withDefaults(g.N()))
	got = cover.Community(st.Members())
	want = cover.NewCommunity([]int32{6, 7, 8, 9, 10, 11})
	if !got.Equal(want) {
		t.Fatalf("natural community of 9 = %v, want clique B", got)
	}
}

func TestRunCoversAllNodes(t *testing.T) {
	g := twoCliquesBridge(5)
	res, err := Run(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cover.Coverage(g.N()); got != 1 {
		t.Fatalf("coverage=%v, want 1 (LFK covers every node)", got)
	}
	want := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3, 4}),
		cover.NewCommunity([]int32{5, 6, 7, 8, 9}),
	})
	if th := metrics.Theta(want, res.Cover); th < 0.95 {
		t.Fatalf("Θ=%v, cover=%v", th, res.Cover.Communities)
	}
}

func TestRunDeterministic(t *testing.T) {
	g := twoCliquesBridge(6)
	a, err := Run(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cover.Len() != b.Cover.Len() {
		t.Fatal("same seed, different community count")
	}
	for i := range a.Cover.Communities {
		if !a.Cover.Communities[i].Equal(b.Cover.Communities[i]) {
			t.Fatalf("community %d differs", i)
		}
	}
}

func TestRunEmptyAndEdgeless(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).Build(), Options{})
	if err != nil || res.Cover.Len() != 0 {
		t.Fatalf("empty graph: %v, %d", err, res.Cover.Len())
	}
	// Edgeless graph: every node becomes its own singleton community.
	res, err = Run(graph.NewBuilder(4).Build(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 4 {
		t.Fatalf("edgeless: %d communities, want 4 singletons", res.Cover.Len())
	}
	if res.Cover.Coverage(4) != 1 {
		t.Fatal("edgeless graph not fully covered")
	}
}

func TestMaxSeedsBudget(t *testing.T) {
	g := twoCliquesBridge(6)
	res, err := Run(g, Options{Seed: 2, MaxSeeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedsTried != 1 {
		t.Fatalf("seeds=%d, want 1", res.SeedsTried)
	}
}

// TestNaturalCommunityFitnessMonotone replays a search and verifies every
// applied operation strictly increased f(S) — the termination argument.
func TestNaturalCommunityFitnessMonotone(t *testing.T) {
	g := twoCliquesBridge(7)
	st := search.NewState(g, g.MaxDegree())
	opt := Options{}.withDefaults(g.N())
	// Reimplement the loop, checking monotonicity at each step.
	st.Add(0)
	prev := fitness(st.Ein(), st.Volume(), opt.Alpha)
	for steps := 0; steps < 1000; steps++ {
		cur := fitness(st.Ein(), st.Volume(), opt.Alpha)
		if cur < prev-1e-12 {
			t.Fatalf("fitness decreased: %v -> %v", prev, cur)
		}
		prev = cur
		if st.Size() > 1 {
			if u, gain := worstRemoval(g, st, cur, opt.Alpha); gain > gainTol {
				st.Remove(u)
				continue
			}
		}
		v, gain := bestAddition(g, st, cur, opt.Alpha)
		if gain <= gainTol {
			break
		}
		st.Add(v)
	}
}

// TestOverlapFromSharedNodes: two K7s sharing two nodes — LFK grown from
// each side should include the shared nodes in both communities.
func TestOverlapFromSharedNodes(t *testing.T) {
	k, shared := 7, 2
	n := 2*k - shared
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(k - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	st := search.NewState(g, g.MaxDegree())
	opt := Options{}.withDefaults(n)
	naturalCommunity(g, st, 0, opt)
	comA := cover.Community(st.Members())
	st.Reset()
	naturalCommunity(g, st, int32(n-1), opt)
	comB := cover.Community(st.Members())
	for _, sharedNode := range []int32{int32(k - shared), int32(k - 1)} {
		if !comA.Contains(sharedNode) || !comB.Contains(sharedNode) {
			t.Fatalf("shared node %d missing from one side: A=%v B=%v", sharedNode, comA, comB)
		}
	}
}

func TestCoveredSeedsSkipped(t *testing.T) {
	// On a single clique, the first natural community covers everything,
	// so exactly one seed is tried.
	b := graph.NewBuilder(6)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	res, err := Run(b.Build(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedsTried != 1 {
		t.Fatalf("seeds=%d, want 1", res.SeedsTried)
	}
	if res.Cover.Len() != 1 || len(res.Cover.Communities[0]) != 6 {
		t.Fatalf("cover=%v", res.Cover.Communities)
	}
}
