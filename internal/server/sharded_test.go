package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// shardedConfig serves the two-clique graph across k shards with a
// pinned c and fast refresh.
func shardedConfig(k int) Config {
	return Config{
		OCA:             core.Options{Seed: 1, C: 0.5},
		Shards:          k,
		RefreshDebounce: time.Millisecond,
		MaxNodes:        64,
	}
}

func newShardedServer(t testing.TB, k int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(twoCliqueGraph(t), shardedConfig(k))
	if err != nil {
		t.Fatalf("New sharded: %v", err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// mustJSON renders a value for comparison — pointer-tagged fields
// (shard refs) compare by value, not address.
func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestShardedConstructionRules(t *testing.T) {
	cfg := shardedConfig(2)
	cfg.Lazy = true
	if _, err := New(twoCliqueGraph(t), cfg); err == nil {
		t.Error("lazy sharded server constructed, want error")
	}
	if _, err := NewWithCover(twoCliqueGraph(t), fixedCover(), shardedConfig(2)); err == nil {
		t.Error("sharded server with precomputed cover constructed, want error")
	}
}

func TestShardedHealthz(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	var h healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "ok" || !h.CoverReady {
		t.Errorf("healthz basics: %+v", h)
	}
	if len(h.Shards) != 2 {
		t.Fatalf("healthz shards = %d entries, want 2", len(h.Shards))
	}
	// Owned nodes and edges sum to the global dimensions.
	if h.Nodes != 10 || h.Edges != 29 {
		t.Errorf("global dims (%d nodes, %d edges), want (10, 29)", h.Nodes, h.Edges)
	}
	for i, sh := range h.Shards {
		if sh.Shard != i || sh.Generation != 1 || sh.Nodes != 5 {
			t.Errorf("shard entry %d: %+v", i, sh)
		}
		if sh.C != 0.5 {
			t.Errorf("shard %d active c = %g, want pinned 0.5", i, sh.C)
		}
	}
	// The healthz request itself (and this second one) shows up in the
	// per-endpoint summary.
	var again healthzResponse
	getJSON(t, ts.URL+"/healthz", &again)
	if again.Requests == nil || again.Requests.Total == 0 {
		t.Errorf("requests summary missing: %+v", again.Requests)
	} else if rs, ok := again.Requests.Routes["GET /healthz"]; !ok || rs.Count == 0 {
		t.Errorf("healthz route missing from summary: %+v", again.Requests.Routes)
	}
}

func TestShardedStats(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("stats shards = %d entries, want 2", len(st.Shards))
	}
	for _, sh := range st.Shards {
		if sh.C != 0.5 {
			t.Errorf("shard %d c = %g, want 0.5", sh.Shard, sh.C)
		}
		if sh.Communities == 0 {
			t.Errorf("shard %d serves no communities", sh.Shard)
		}
	}
	if st.Nodes != 10 || st.CoveredNodes != 10 || st.Coverage != 1 {
		t.Errorf("aggregate coverage: %+v", st)
	}
	if st.Communities < 2 || st.MinSize == 0 || st.MaxSize < st.MinSize {
		t.Errorf("aggregate size stats: %+v", st)
	}
}

func TestShardedNodeLookup(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	var resp nodeCommunitiesResponse
	if code := getJSON(t, ts.URL+"/v1/node/4/communities?members=1", &resp); code != http.StatusOK {
		t.Fatalf("lookup status = %d", code)
	}
	if resp.Node != 4 || resp.Count < 2 {
		t.Errorf("overlap node 4: %+v (halo should show both cliques)", resp)
	}
	if len(resp.Shards) != 1 || resp.Shards[0].Shard != 0 {
		t.Errorf("lookup shards vector = %v, want owning shard 0", resp.Shards)
	}
	for _, ref := range resp.Communities {
		if ref.Shard == nil || *ref.Shard != 0 {
			t.Errorf("community ref missing owning shard: %+v", ref)
		}
		for _, m := range ref.Members {
			if m < 0 || m >= 10 {
				t.Errorf("member %d is not a global id", m)
			}
		}
	}
	if code := getJSON(t, ts.URL+"/v1/node/99/communities", nil); code != http.StatusNotFound {
		t.Errorf("unknown node status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/node/bogus/communities", nil); code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", code)
	}
}

func TestShardedBatchFanOut(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	var got batchCommunitiesResponse
	req := BatchCommunitiesRequest{IDs: []int32{0, 9, 0, -2, 42, 5}, Members: true, Shared: false}
	if code := postJSON(t, ts.URL+"/v1/nodes/communities", req, &got); code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if len(got.Results) != 6 || len(got.Shards) != 2 {
		t.Fatalf("batch shape: %d results, %d shard entries", len(got.Results), len(got.Shards))
	}
	// Duplicate ids (cross-request order) answered identically.
	if j0, j2 := mustJSON(t, got.Results[0]), mustJSON(t, got.Results[2]); j0 != j2 {
		t.Errorf("duplicate id answered differently: %s vs %s", j0, j2)
	}
	// Cross-shard ids both answered; invalid ids yield per-id errors.
	if got.Results[1].Count == 0 || got.Results[5].Count == 0 {
		t.Errorf("cross-shard ids unanswered: %+v", got.Results)
	}
	for _, i := range []int{3, 4} {
		if got.Results[i].Error == "" {
			t.Errorf("bad id %d passed: %+v", got.Results[i].Node, got.Results[i])
		}
	}

	// Shared across shards: nodes 4 and 5 sit in both cliques; every
	// shard's halo contains both, so shard-scoped shared refs exist.
	var shared batchCommunitiesResponse
	if code := postJSON(t, ts.URL+"/v1/nodes/communities", BatchCommunitiesRequest{IDs: []int32{4, 5}, Shared: true}, &shared); code != http.StatusOK {
		t.Fatalf("shared batch status = %d", code)
	}
	if shared.Shared != nil {
		t.Errorf("sharded response used the unsharded shared field")
	}
	if shared.SharedRefs == nil || len(*shared.SharedRefs) == 0 {
		t.Errorf("no shared refs for the overlap pair: %+v", shared)
	}
}

func TestShardedSearch(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	var resp SearchResponse
	req := SearchRequest{Seed: 0, RNGSeed: 7}
	if code := postJSON(t, ts.URL+"/v1/search", req, &resp); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if resp.Shard == nil || *resp.Shard != 0 || resp.Generation != 1 {
		t.Errorf("search origin: shard=%v gen=%d, want shard 0 gen 1", resp.Shard, resp.Generation)
	}
	if resp.Size < 4 || resp.Size != len(resp.Members) {
		t.Errorf("search result: %+v", resp)
	}
	found := false
	for _, m := range resp.Members {
		if m >= 10 || m < 0 {
			t.Fatalf("member %d not a global id", m)
		}
		if m == 0 {
			found = true
		}
	}
	if !found {
		t.Error("search from seed 0 does not contain the seed after translation")
	}
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 77}, nil); code != http.StatusNotFound {
		t.Errorf("unknown seed status = %d, want 404", code)
	}
}

func TestShardedEdgesAndGrowth(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	// A cross-shard edge mutates both shards.
	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 9}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges status = %d", code)
	}
	if !er.Applied || len(er.Shards) != 2 {
		t.Fatalf("edges response: %+v", er)
	}
	for _, sg := range er.Shards {
		if sg.Gen < 2 {
			t.Errorf("shard %d generation %d after cross-shard mutation, want ≥ 2", sg.Shard, sg.Gen)
		}
	}

	// Growth: node 12 (even → shard 0) materializes through an edge.
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{9, 12}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("growth edges status = %d", code)
	}
	var h healthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Nodes != 11 {
		t.Errorf("healthz nodes = %d after growth, want 11", h.Nodes)
	}
	var lu nodeCommunitiesResponse
	if code := getJSON(t, ts.URL+"/v1/node/12/communities", &lu); code != http.StatusOK {
		t.Errorf("grown node lookup status = %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/v1/node/13/communities", nil); code != http.StatusNotFound {
		t.Errorf("never-grown node status = %d, want 404", code)
	}
	// Past the cap: rejected atomically.
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 64}}}, nil); code != http.StatusBadRequest {
		t.Errorf("past-cap growth status = %d, want 400", code)
	}
}

func TestShardedExport(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	resp, err := http.Get(ts.URL + "/v1/cover/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	meta, comms := readExport(t, resp.Body)
	if len(meta.Shards) != 2 || meta.Nodes != 10 || meta.Edges != 29 {
		t.Errorf("export meta: %+v", meta)
	}
	if len(comms) != meta.Communities {
		t.Fatalf("%d community lines, meta declared %d", len(comms), meta.Communities)
	}
	perShard := map[int]int{}
	for _, c := range comms {
		if c.Shard == nil {
			t.Fatal("community line missing shard tag")
		}
		perShard[*c.Shard]++
		for _, m := range c.Members {
			if m < 0 || m >= 10 {
				t.Fatalf("exported member %d is not a global id", m)
			}
		}
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Errorf("export missing a shard's communities: %v", perShard)
	}
}

func TestDebugMetricsEndpoint(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	// Generate some traffic first.
	getJSON(t, ts.URL+"/healthz", nil)
	getJSON(t, ts.URL+"/v1/node/0/communities", nil)
	getJSON(t, ts.URL+"/v1/node/999/communities", nil)

	var m metricsResponse
	if code := getJSON(t, ts.URL+"/debug/metrics", &m); code != http.StatusOK {
		t.Fatalf("debug/metrics status = %d", code)
	}
	if len(m.BoundsMillis) == 0 {
		t.Error("bounds missing")
	}
	rm, ok := m.Routes["GET /v1/node/{id}/communities"]
	if !ok || rm.Count != 2 {
		t.Fatalf("node route metrics = %+v (ok=%v), want count 2", rm, ok)
	}
	if len(rm.Buckets) != len(m.BoundsMillis)+1 {
		t.Errorf("bucket count %d, want %d", len(rm.Buckets), len(m.BoundsMillis)+1)
	}
	var total uint64
	for _, b := range rm.Buckets {
		total += b
	}
	if total != rm.Count {
		t.Errorf("histogram total %d != count %d", total, rm.Count)
	}
	if hr, ok := m.Routes["GET /healthz"]; !ok || hr.Count == 0 {
		t.Errorf("healthz route metrics missing: %+v", m.Routes)
	}
}

// TestShardedConcurrentTraffic is the acceptance -race suite for the
// fan-out path: mutators toggle same-shard and cross-shard edges while
// batch readers fan out across shards; every batch response's
// (shard, generation) vector must be per-shard monotone per reader and
// no request may fail. Run under -race via `make race`.
func TestShardedConcurrentTraffic(t *testing.T) {
	_, ts := newShardedServer(t, 2)
	client := ts.Client()
	const mutators, readers, reps = 3, 5, 40
	var wg sync.WaitGroup
	errs := make(chan error, (mutators+readers)*reps)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				e := [2]int32{int32(m), int32(6 + (i+m)%4)}
				req := EdgesRequest{Add: [][2]int32{e}}
				if i%2 == 1 {
					req = EdgesRequest{Remove: [][2]int32{e}}
				}
				payload, _ := json.Marshal(req)
				resp, err := client.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("mutator %d: status %d", m, resp.StatusCode)
				}
			}
		}(m)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			last := map[int]uint64{}
			for i := 0; i < reps; i++ {
				node := int32((rd + i) % 10)
				payload, _ := json.Marshal(BatchCommunitiesRequest{IDs: []int32{node, 4, node, 9}})
				resp, err := client.Post(ts.URL+"/v1/nodes/communities", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d (%s)", rd, resp.StatusCode, body)
					continue
				}
				var got batchCommunitiesResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- fmt.Errorf("reader %d: %v", rd, err)
					continue
				}
				if len(got.Shards) != 2 {
					errs <- fmt.Errorf("reader %d: shard vector %v", rd, got.Shards)
					continue
				}
				for _, sg := range got.Shards {
					if sg.Gen < last[sg.Shard] {
						errs <- fmt.Errorf("reader %d: shard %d generation went backwards: %d after %d",
							rd, sg.Shard, sg.Gen, last[sg.Shard])
					}
					last[sg.Shard] = sg.Gen
				}
				// Duplicate ids in one batch answered identically
				// (per-shard single-view consistency).
				if j0, j2 := mustJSON(t, got.Results[0]), mustJSON(t, got.Results[2]); j0 != j2 {
					errs <- fmt.Errorf("reader %d: duplicate ids answered differently: %s vs %s", rd, j0, j2)
				}
			}
		}(rd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Drain and verify the vector settles consistently.
	var final EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 7}}, Wait: true}, &final); code != http.StatusOK {
		t.Fatalf("drain mutation status = %d", code)
	}
	var h healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.PendingMutations != 0 {
		t.Errorf("post-drain healthz (code %d): %+v", code, h)
	}
}

// TestSingleGrowthOverHTTP exercises the K=1 growth satellite: with
// MaxNodes configured, /v1/edges extends the node set and lookups reach
// the new nodes after the rebuild.
func TestSingleGrowthOverHTTP(t *testing.T) {
	cfg := liveConfig()
	cfg.MaxNodes = 20
	s, err := New(twoCliqueGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 12}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("growth edges status = %d", code)
	}
	if !er.Applied || er.Generation < 2 || er.Shards != nil {
		t.Errorf("growth response: %+v (single path must not quote a shard vector)", er)
	}
	var h healthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Nodes != 13 {
		t.Errorf("healthz nodes = %d after growth, want 13", h.Nodes)
	}
	var lu nodeCommunitiesResponse
	if code := getJSON(t, ts.URL+"/v1/node/12/communities", &lu); code != http.StatusOK {
		t.Errorf("grown node lookup status = %d", code)
	}
	if lu.Shards != nil {
		t.Errorf("single-path lookup quoted a shard vector: %+v", lu)
	}
	if code := getJSON(t, ts.URL+"/v1/node/25/communities", nil); code != http.StatusNotFound {
		t.Errorf("past-cap node lookup status = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 21}}}, nil); code != http.StatusBadRequest {
		t.Errorf("past-cap growth status = %d, want 400", code)
	}
}
