package postprocess

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
)

// BenchmarkMerge measures the ρ-threshold merge on a cover with many
// near-duplicates (OCA's raw output shape).
func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]cover.Community, 50)
	for i := range base {
		members := make([]int32, 40)
		for j := range members {
			members[j] = int32(rng.Intn(2000))
		}
		base[i] = cover.NewCommunity(members)
	}
	// Three noisy copies of each.
	var cs []cover.Community
	for _, c := range base {
		for rep := 0; rep < 3; rep++ {
			noisy := append(cover.Community{}, c...)
			noisy[rng.Intn(len(noisy))] = int32(rng.Intn(2000))
			cs = append(cs, cover.NewCommunity(noisy))
		}
	}
	cv := cover.NewCover(cs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(cv, 0.5)
	}
}
