// Package lfr reimplements the LFR benchmark (Lancichinetti, Fortunato,
// Radicchi 2008): synthetic graphs with power-law degree and community
// size distributions, planted ground-truth communities and a tunable
// mixing parameter µ (the fraction of each node's edges that leave its
// community). The paper uses LFR for its quality sweep (Fig. 2), its
// scalability sweep (Fig. 5) and its community-size sweep (Fig. 6).
//
// The construction follows the published recipe: sample degrees, sample
// community sizes, assign nodes to communities respecting internal-
// degree feasibility, then realize internal and external edges by stub
// matching with invalid-pair rejection. The overlapping extension
// (on/om) of the later LFR papers is included for the extension
// experiments.
package lfr

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Params configure a benchmark instance. Zero fields take the defaults
// of the original implementation where one exists.
type Params struct {
	// N is the number of nodes (required).
	N int
	// AvgDeg is the target average degree (required).
	AvgDeg float64
	// MaxDeg is the degree cutoff (required).
	MaxDeg int
	// DegExp is the degree power-law exponent τ1. Default 2.
	DegExp float64
	// ComExp is the community-size exponent τ2. Default 1.
	ComExp float64
	// Mu ∈ [0, 1) is the mixing parameter: the expected fraction of each
	// node's edges that leave its communities.
	Mu float64
	// MinCom, MaxCom bound community sizes (required).
	MinCom, MaxCom int
	// OverlapNodes (on) is the number of nodes belonging to more than
	// one community. Default 0 (the paper's Fig. 2/5/6 setting).
	OverlapNodes int
	// OverlapMemb (om) is the number of memberships of each overlapping
	// node. Default 2 when OverlapNodes > 0.
	OverlapMemb int
	// Seed drives all randomness.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.DegExp == 0 {
		p.DegExp = 2
	}
	if p.ComExp == 0 {
		p.ComExp = 1
	}
	if p.OverlapNodes > 0 && p.OverlapMemb < 2 {
		p.OverlapMemb = 2
	}
	if p.OverlapNodes == 0 {
		p.OverlapMemb = 1
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("lfr: N=%d must be positive", p.N)
	case p.AvgDeg <= 0 || p.MaxDeg <= 0:
		return fmt.Errorf("lfr: AvgDeg=%g and MaxDeg=%d must be positive", p.AvgDeg, p.MaxDeg)
	case p.AvgDeg > float64(p.MaxDeg):
		return fmt.Errorf("lfr: AvgDeg=%g exceeds MaxDeg=%d", p.AvgDeg, p.MaxDeg)
	case p.MaxDeg >= p.N:
		return fmt.Errorf("lfr: MaxDeg=%d must be < N=%d", p.MaxDeg, p.N)
	case p.Mu < 0 || p.Mu >= 1:
		return fmt.Errorf("lfr: Mu=%g out of [0, 1)", p.Mu)
	case p.MinCom <= 1 || p.MaxCom < p.MinCom:
		return fmt.Errorf("lfr: community size bounds [%d, %d] invalid", p.MinCom, p.MaxCom)
	case p.MaxCom > p.N:
		return fmt.Errorf("lfr: MaxCom=%d exceeds N=%d", p.MaxCom, p.N)
	case p.OverlapNodes < 0 || p.OverlapNodes > p.N:
		return fmt.Errorf("lfr: OverlapNodes=%d out of [0, N]", p.OverlapNodes)
	}
	return nil
}

// Benchmark is a generated instance: the graph plus its planted
// community structure.
type Benchmark struct {
	Graph *graph.Graph
	// Communities is the planted ground truth.
	Communities *cover.Cover
	// Memberships maps each node to the indices of its communities.
	Memberships [][]int32
	// Params echoes the (defaulted) parameters used.
	Params Params
}

// Generate builds an LFR benchmark instance.
func Generate(p Params) (*Benchmark, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(p.Seed, 0)

	degrees := sampleDegrees(p, rng)
	sizes, err := sampleCommunitySizes(p, rng)
	if err != nil {
		return nil, err
	}
	intDeg := internalDegrees(p, degrees, rng)
	memberships, err := assignMemberships(p, degrees, intDeg, sizes, rng)
	if err != nil {
		return nil, err
	}

	b := graph.NewBuilderHint(p.N, int64(p.AvgDeg*float64(p.N)/2*1.1))
	used := make(map[uint64]struct{}, int(p.AvgDeg*float64(p.N)/2*13/10))
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := uint64(a)<<32 | uint64(uint32(c))
		if _, dup := used[key]; dup {
			return false
		}
		used[key] = struct{}{}
		b.AddEdge(a, c)
		return true
	}

	buildInternalEdges(p, degrees, intDeg, sizes, memberships, addEdge, rng)
	buildExternalEdges(p, degrees, intDeg, memberships, addEdge, rng)

	g := b.Build()
	comms := make([]cover.Community, len(sizes))
	tmp := make([][]int32, len(sizes))
	for v, ms := range memberships {
		for _, c := range ms {
			tmp[c] = append(tmp[c], int32(v))
		}
	}
	for i := range tmp {
		comms[i] = cover.NewCommunity(tmp[i])
	}
	return &Benchmark{
		Graph:       g,
		Communities: cover.NewCover(comms),
		Memberships: memberships,
		Params:      p,
	}, nil
}

// sampleDegrees draws the degree sequence: a truncated power law with
// exponent τ1, cutoff MaxDeg and lower bound solved so the mean matches
// AvgDeg. The sum is made even so stub matching can pair everything.
func sampleDegrees(p Params, rng *rand.Rand) []int {
	xmin := solveXmin(p.DegExp, float64(p.MaxDeg), p.AvgDeg)
	pl := powerLaw{exp: p.DegExp, xmin: xmin, xmax: float64(p.MaxDeg)}
	degrees := make([]int, p.N)
	total := 0
	for i := range degrees {
		degrees[i] = pl.sample(rng)
		total += degrees[i]
	}
	if total%2 == 1 {
		for {
			i := rng.Intn(p.N)
			if degrees[i] < p.MaxDeg {
				degrees[i]++
				break
			}
		}
	}
	return degrees
}

// sampleCommunitySizes draws power-law community sizes until the total
// membership slots reach N + on·(om−1), then trims/pads sizes within
// bounds so the total is exact.
func sampleCommunitySizes(p Params, rng *rand.Rand) ([]int, error) {
	target := p.N + p.OverlapNodes*(p.OverlapMemb-1)
	pl := powerLaw{exp: p.ComExp, xmin: float64(p.MinCom), xmax: float64(p.MaxCom)}
	var sizes []int
	total := 0
	for total < target {
		s := pl.sample(rng)
		if s < p.MinCom {
			s = p.MinCom
		}
		sizes = append(sizes, s)
		total += s
	}
	// Trim the excess, keeping every size within [MinCom, MaxCom].
	excess := total - target
	for attempts := 0; excess > 0; attempts++ {
		if attempts > 100*len(sizes)+1000 {
			return nil, fmt.Errorf("lfr: cannot fit community sizes to %d total slots", target)
		}
		i := rng.Intn(len(sizes))
		if sizes[i] > p.MinCom {
			sizes[i]--
			excess--
			continue
		}
		// All-at-MinCom deadlock: drop one community and grow others.
		if allAtMin(sizes, p.MinCom) {
			if len(sizes) <= 1 {
				return nil, fmt.Errorf("lfr: community size constraints unsatisfiable for N=%d", p.N)
			}
			sizes = sizes[:len(sizes)-1]
			excess -= p.MinCom
			for grow := 0; excess < 0; grow++ {
				if grow > 100*len(sizes)+1000 {
					return nil, fmt.Errorf("lfr: cannot fit community sizes to %d total slots", target)
				}
				j := rng.Intn(len(sizes))
				if sizes[j] < p.MaxCom {
					sizes[j]++
					excess++
				}
			}
		}
	}
	return sizes, nil
}

func allAtMin(sizes []int, min int) bool {
	for _, s := range sizes {
		if s > min {
			return false
		}
	}
	return true
}

// internalDegrees computes each node's total internal degree
// (1−µ)·k with probabilistic rounding (so the expectation is exact).
func internalDegrees(p Params, degrees []int, rng *rand.Rand) []int {
	out := make([]int, p.N)
	for i, k := range degrees {
		exact := (1 - p.Mu) * float64(k)
		d := int(exact)
		if rng.Float64() < exact-float64(d) {
			d++
		}
		if d > k {
			d = k
		}
		out[i] = d
	}
	return out
}

// assignMemberships places every node into its communities: overlapping
// nodes receive om memberships, the rest one. A node fits a community
// only if the community is larger than the node's per-membership
// internal degree. Full communities evict a random member (the original
// implementation's trick) so the process cannot wedge on ordering.
func assignMemberships(p Params, degrees, intDeg, sizes []int, rng *rand.Rand) ([][]int32, error) {
	nc := len(sizes)
	memberships := make([][]int32, p.N)
	members := make([][]int32, nc)

	// Membership quota per node: om for the first OverlapNodes of a
	// random permutation, 1 otherwise.
	quota := make([]int, p.N)
	for i := range quota {
		quota[i] = 1
	}
	perm := rng.Perm(p.N)
	for i := 0; i < p.OverlapNodes; i++ {
		quota[perm[i]] = p.OverlapMemb
	}

	// perDeg[v] = internal degree demanded from each community of v,
	// clamped so the largest community can host it (the reference
	// implementation likewise trims hub internal degrees when the
	// community-size range cannot absorb them, e.g. max.deg=150 with
	// communities of ≤100 in the paper's Fig. 6 workload; the clamp
	// shifts those hubs' surplus edges to the external pool).
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	perDeg := make([]int, p.N)
	for v := range perDeg {
		d := intDeg[v] / quota[v]
		if d >= maxSize {
			d = maxSize - 1
			intDeg[v] = d * quota[v]
		}
		perDeg[v] = d
	}

	// Place the hardest nodes first (largest per-membership internal
	// degree fits the fewest communities), randomizing within equal
	// demand. The queue is consumed from the back, so sort ascending.
	queue := make([]int32, 0, p.N+p.OverlapNodes*(p.OverlapMemb-1))
	for v := 0; v < p.N; v++ {
		for q := 0; q < quota[v]; q++ {
			queue = append(queue, int32(v))
		}
	}
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	sort.SliceStable(queue, func(i, j int) bool {
		return perDeg[queue[i]] < perDeg[queue[j]]
	})

	inCommunity := func(v int32, c int) bool {
		for _, m := range memberships[v] {
			if int(m) == c {
				return true
			}
		}
		return false
	}

	// Evictions are bounded: when demand for large communities
	// structurally exceeds their capacity (e.g. Fig. 6's max.deg=150
	// with communities capped at k+50), no placement satisfying the fit
	// constraint exists, and continued eviction is musical chairs. After
	// the budget we place nodes into any free slot; the internal-edge
	// builder clamps their realized internal degree to the community
	// size and the surplus moves to the external pool — the reference
	// implementation's compromise.
	evictBudget := 10*len(queue) + 1000
	maxIters := 220*len(queue) + 20000
	iters := 0
	for len(queue) > 0 {
		if iters++; iters > maxIters {
			return nil, fmt.Errorf("lfr: membership assignment did not converge (N=%d, communities=%d)", p.N, nc)
		}
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Pick a random community the node fits into, preferring ones
		// with a free slot; if random probing misses, scan from a random
		// offset.
		c, full := -1, -1
		for try := 0; try < nc+10; try++ {
			cand := rng.Intn(nc)
			if sizes[cand] <= perDeg[v] { // need size-1 ≥ perDeg ⇒ size > perDeg
				continue
			}
			if inCommunity(v, cand) {
				continue
			}
			if len(members[cand]) < sizes[cand] {
				c = cand
				break
			}
			full = cand
		}
		if c < 0 {
			start := rng.Intn(nc)
			for off := 0; off < nc; off++ {
				cand := (start + off) % nc
				if sizes[cand] <= perDeg[v] || inCommunity(v, cand) {
					continue
				}
				if len(members[cand]) < sizes[cand] {
					c = cand
					break
				}
				if full < 0 {
					full = cand
				}
			}
		}
		if c < 0 && full >= 0 && evictBudget > 0 {
			// Every fitting community is full: evict the member with the
			// smallest demand (it can fit elsewhere most easily).
			evictBudget--
			c = full
			j := 0
			for k, m := range members[c] {
				if perDeg[m] < perDeg[members[c][j]] {
					j = k
				}
			}
			evicted := members[c][j]
			members[c][j] = members[c][len(members[c])-1]
			members[c] = members[c][:len(members[c])-1]
			removeMembership(memberships, evicted, int32(c))
			queue = append(queue, evicted)
		}
		if c < 0 {
			// Relaxed placement: any community with a free slot.
			start := rng.Intn(nc)
			for off := 0; off < nc; off++ {
				cand := (start + off) % nc
				if len(members[cand]) < sizes[cand] && !inCommunity(v, cand) {
					c = cand
					break
				}
			}
		}
		if c < 0 {
			return nil, fmt.Errorf("lfr: node %d (internal degree %d) fits no community", v, perDeg[v])
		}
		members[c] = append(members[c], v)
		memberships[v] = append(memberships[v], int32(c))
	}
	return memberships, nil
}

func removeMembership(memberships [][]int32, v, c int32) {
	ms := memberships[v]
	for i, m := range ms {
		if m == c {
			ms[i] = ms[len(ms)-1]
			memberships[v] = ms[:len(ms)-1]
			return
		}
	}
}

// buildInternalEdges realizes each community's internal edges by stub
// matching with rejection of self loops and duplicates. Each member
// contributes its per-membership internal degree, clamped to size−1.
func buildInternalEdges(p Params, degrees, intDeg, sizes []int, memberships [][]int32, addEdge func(u, v int32) bool, rng *rand.Rand) {
	nc := len(sizes)
	members := make([][]int32, nc)
	for v, ms := range memberships {
		for _, c := range ms {
			members[c] = append(members[c], int32(v))
		}
	}
	for c := 0; c < nc; c++ {
		mem := members[c]
		if len(mem) < 2 {
			continue
		}
		var stubs []int32
		for _, v := range mem {
			d := intDeg[v] / len(memberships[v])
			if d > len(mem)-1 {
				d = len(mem) - 1
			}
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		matchStubs(stubs, addEdge, rng, 20)
	}
}

// buildExternalEdges realizes the inter-community edges: every node
// offers k − kin stubs, and a pair is valid only when the endpoints
// share no community.
func buildExternalEdges(p Params, degrees, intDeg []int, memberships [][]int32, addEdge func(u, v int32) bool, rng *rand.Rand) {
	var stubs []int32
	for v := 0; v < p.N; v++ {
		ext := degrees[v] - intDeg[v]
		for i := 0; i < ext; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	shareCommunity := func(u, v int32) bool {
		for _, a := range memberships[u] {
			for _, b := range memberships[v] {
				if a == b {
					return true
				}
			}
		}
		return false
	}
	matchStubs(stubs, func(u, v int32) bool {
		if shareCommunity(u, v) {
			return false
		}
		return addEdge(u, v)
	}, rng, 20)
}

// matchStubs pairs stubs randomly in passes: shuffle, pair adjacent
// entries, keep the stubs of rejected pairs for the next pass. After
// maxPasses the remaining stubs are dropped (a bounded degree deficit,
// standard for stub-matching benchmark generators; the tests bound it).
func matchStubs(stubs []int32, addEdge func(u, v int32) bool, rng *rand.Rand, maxPasses int) {
	for pass := 0; pass < maxPasses && len(stubs) > 1; pass++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		var leftover []int32
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if !addEdge(u, v) {
				leftover = append(leftover, u, v)
			}
		}
		if len(stubs)%2 == 1 {
			leftover = append(leftover, stubs[len(stubs)-1])
		}
		if len(leftover) == len(stubs) {
			return // no progress; every remaining pair is invalid
		}
		stubs = leftover
	}
}
