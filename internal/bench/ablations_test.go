package bench

import (
	"math"
	"testing"
)

func TestRunFig2OverlapTiny(t *testing.T) {
	cfg := tinyConfig()
	fig, err := RunFig2Overlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 || len(fig.X) != 1 {
		t.Fatalf("shape: %d series, %d x", len(fig.Series), len(fig.X))
	}
	for _, s := range fig.Series {
		if s.Y[0] < 0 || s.Y[0] > 1 {
			t.Fatalf("%s Θ=%v", s.Name, s.Y[0])
		}
	}
}

func TestRunAblateCTiny(t *testing.T) {
	cfg := tinyConfig()
	fig, err := RunAblateC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seven fixed c values plus the computed one.
	if len(fig.X) != 8 || len(fig.Series) != 1 || len(fig.Series[0].Y) != 8 {
		t.Fatalf("shape: %d x, %d series", len(fig.X), len(fig.Series))
	}
	// The computed c (last x) must be a valid parameter.
	last := fig.X[len(fig.X)-1]
	if last <= 0 || last >= 1 {
		t.Fatalf("computed c=%v out of (0,1)", last)
	}
}

func TestRunAblateMergeTiny(t *testing.T) {
	cfg := tinyConfig()
	fig, err := RunAblateMerge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series=%d, want Theta + inflation", len(fig.Series))
	}
	// Last x encodes "merging off".
	if !math.IsInf(fig.X[len(fig.X)-1], 1) {
		t.Fatalf("last x=%v, want +Inf", fig.X[len(fig.X)-1])
	}
	// Without merging the inflation cannot be below the merged counts.
	infl := fig.Series[1].Y
	if infl[len(infl)-1] < infl[0]-1e-9 {
		t.Fatalf("merging-off inflation %v below merged %v", infl[len(infl)-1], infl[0])
	}
}
