package transport

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/shard"
)

// Options tunes Dial.
type Options struct {
	// Client tunes every shard client (timeouts, poll cadence).
	Client ClientConfig
	// ConnectTimeout bounds the whole handshake — health probes are
	// retried until every shard answers, so the router may start before
	// slow shard covers finish building. Default 60s.
	ConnectTimeout time.Duration
	// MaxPending is the per-shard backlog bound the router's admission
	// check assumes; it should match the shard servers' worker
	// configuration (0 uses refresh.Config's default).
	MaxPending int
	// Replicas lists each shard's replica servers (`ocad -follow`
	// processes mirroring that shard's primary): Replicas[i] belongs to
	// addrs[i]. When non-nil it must have one entry per shard (empty
	// lists are fine) and every backend becomes a replica set — reads
	// route to any sufficiently fresh member with least-loaded selection
	// and hedging, writes go to the primary only. Nil keeps the plain
	// one-backend-per-shard topology.
	Replicas [][]string
	// Replication tunes the replica sets' hedging (ignored when
	// Replicas is nil).
	Replication shard.ReplicaSetConfig
}

// DeployInfo is what a successful handshake learned about the
// deployment: the live global id bound (graph nodes plus growth already
// replicated to the shards), the growth ceiling, and the agreed
// partition map (nil when every shard advertised the epoch-0 base).
type DeployInfo struct {
	CurN     int
	MaxNodes int
	Map      *shard.PartitionMap
}

// Dial connects to K shard servers (addrs[i] must host shard i of a
// K-way split), validates that they form one consistent deployment,
// mirrors every shard's published snapshot, and assembles a
// shard.Router over remote backends — a drop-in
// server.SnapshotProvider, so the HTTP serving layer works unchanged
// over processes. With Options.Replicas set, each shard's backend is a
// replica set fanning reads over the primary and its mirrors. The
// returned router's Close stops the mirror pollers; the shard
// processes keep running.
func Dial(ctx context.Context, addrs []string, opt Options) (*shard.Router, error) {
	backends, info, err := DialBackends(ctx, addrs, opt)
	if err != nil {
		return nil, err
	}
	r, err := shard.NewRouterBackends(backends, info.CurN, info.MaxNodes, opt.MaxPending)
	if err == nil && info.Map != nil {
		err = r.AdoptPartitionMap(info.Map)
	}
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	return r, nil
}

// DialBackends is Dial up to (but not including) router assembly: it
// returns the validated, polling per-shard backends plus the deployment
// facts a router needs. Callers that want direct access to the replica
// groups (hedged remote lookups via ReplicaGroup.LookupAny) use this
// and build the router themselves.
func DialBackends(ctx context.Context, addrs []string, opt Options) ([]shard.Backend, DeployInfo, error) {
	if len(addrs) == 0 {
		return nil, DeployInfo{}, fmt.Errorf("transport: no shard addresses")
	}
	if opt.Replicas != nil && len(opt.Replicas) != len(addrs) {
		return nil, DeployInfo{}, fmt.Errorf("transport: %d replica lists for %d shards", len(opt.Replicas), len(addrs))
	}
	if opt.ConnectTimeout <= 0 {
		opt.ConnectTimeout = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, opt.ConnectTimeout)
	defer cancel()

	k := len(addrs)
	clients := make([]*Client, k)
	healths := make([]Health, k)
	errs := make([]error, k)
	rclients := make([][]*Client, k)
	rhealths := make([][]Health, k)
	rerrs := make([][]error, k)
	var wg sync.WaitGroup
	for i, addr := range addrs {
		clients[i] = newClient(normalizeAddr(addr), i, k, opt.Client)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			healths[i], errs[i] = clients[i].handshake(ctx)
		}(i)
		if opt.Replicas == nil {
			continue
		}
		rclients[i] = make([]*Client, len(opt.Replicas[i]))
		rhealths[i] = make([]Health, len(opt.Replicas[i]))
		rerrs[i] = make([]error, len(opt.Replicas[i]))
		for j, raddr := range opt.Replicas[i] {
			rclients[i][j] = newClient(normalizeAddr(raddr), i, k, opt.Client)
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				rhealths[i][j], rerrs[i][j] = rclients[i][j].handshake(ctx)
			}(i, j)
		}
	}
	wg.Wait()
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
		for _, rs := range rclients {
			for _, c := range rs {
				c.Close()
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: shard %d at %s: %w", i, addrs[i], err)
		}
	}
	// The K servers must describe one deployment: same partition width,
	// same global dimensions, each hosting the shard index its position
	// in addrs claims — and each actually writable.
	for i, h := range healths {
		if h.Protocol != Version {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: shard %d speaks protocol %d, this router speaks %d", i, h.Protocol, Version)
		}
		if h.Shard != i || h.Shards != k {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: %s hosts shard %d of %d, want shard %d of %d",
				addrs[i], h.Shard, h.Shards, i, k)
		}
		if h.Role == RoleReplica {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: %s is a read-only replica (of %s); shard addresses must name primaries",
				addrs[i], h.Primary)
		}
		if h.GlobalNodes != healths[0].GlobalNodes || h.MaxNodes != healths[0].MaxNodes {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: shard %d disagrees on deployment dimensions (%d/%d nodes vs %d/%d)",
				i, h.GlobalNodes, h.MaxNodes, healths[0].GlobalNodes, healths[0].MaxNodes)
		}
		if h.Epoch != healths[0].Epoch {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf(
				"transport: shards disagree on the partition epoch (shard %d at epoch %d, shard 0 at epoch %d) — "+
					"a shard likely crashed around a rebalance flip; re-install the newer map on the lagging shard "+
					"(POST %s with the map from the shard at the higher epoch) and retry",
				i, h.Epoch, healths[0].Epoch, PathMap)
		}
	}
	// Decode the agreed map once (nil when everyone runs the epoch-0
	// base — pre-rebalancing servers omit the field entirely).
	var deployMap *shard.PartitionMap
	if len(healths[0].Map) > 0 {
		var err error
		if deployMap, err = shard.DecodePartitionMap(healths[0].Map); err != nil {
			closeAll()
			return nil, DeployInfo{}, fmt.Errorf("transport: shard 0 advertises an invalid partition map: %w", err)
		}
	}
	// Replicas must mirror the shard they are listed under and belong to
	// the same deployment; a primary listed as a replica is a second
	// writer and is refused.
	for i := range rclients {
		for j, rerr := range rerrs[i] {
			if rerr != nil {
				closeAll()
				return nil, DeployInfo{}, fmt.Errorf("transport: shard %d replica %s: %w", i, opt.Replicas[i][j], rerr)
			}
			rh := rhealths[i][j]
			switch {
			case rh.Protocol != Version:
				closeAll()
				return nil, DeployInfo{}, fmt.Errorf("transport: shard %d replica %s speaks protocol %d, this router speaks %d",
					i, opt.Replicas[i][j], rh.Protocol, Version)
			case rh.Role != RoleReplica:
				closeAll()
				return nil, DeployInfo{}, fmt.Errorf("transport: %s is not a replica; only `ocad -follow` servers may be listed as replicas",
					opt.Replicas[i][j])
			case rh.Shard != i || rh.Shards != k:
				closeAll()
				return nil, DeployInfo{}, fmt.Errorf("transport: %s mirrors shard %d of %d, want shard %d of %d",
					opt.Replicas[i][j], rh.Shard, rh.Shards, i, k)
			case rh.GlobalNodes != healths[0].GlobalNodes || rh.MaxNodes != healths[0].MaxNodes:
				closeAll()
				return nil, DeployInfo{}, fmt.Errorf("transport: shard %d replica %s disagrees on deployment dimensions",
					i, opt.Replicas[i][j])
			}
		}
	}
	// The valid global id range must cover growth already applied by a
	// previous router: every replicated table entry is a live global id.
	curN := healths[0].GlobalNodes
	backends := make([]shard.Backend, k)
	for i, c := range clients {
		c.tabMu.RLock()
		for _, gv := range c.locals {
			if int(gv) >= curN {
				curN = int(gv) + 1
			}
		}
		c.tabMu.RUnlock()
		if opt.Replicas == nil {
			backends[i] = c
			continue
		}
		reps := make([]shard.Backend, len(rclients[i]))
		for j, rc := range rclients[i] {
			reps[j] = rc
		}
		backends[i] = &ReplicaGroup{
			ReplicaSet: shard.NewReplicaSet(c, reps, opt.Replication),
			clients:    append([]*Client{c}, rclients[i]...),
		}
	}
	for _, c := range clients {
		c.startPolling()
	}
	for _, rs := range rclients {
		for _, c := range rs {
			c.startPolling()
		}
	}
	return backends, DeployInfo{CurN: curN, MaxNodes: healths[0].MaxNodes, Map: deployMap}, nil
}

// ReplicaGroup is one shard's replica set over transport clients: the
// shard.ReplicaSet routing plus the remote-lookup fan that rides it.
type ReplicaGroup struct {
	*shard.ReplicaSet
	clients []*Client // parallel to the set's members; [0] is the primary
}

// LookupAny answers a remote batch lookup through the replica set's
// read path: least-loaded member selection, failover, floor enforcement
// and budgeted hedging. The returned ReadResult says which member
// answered and whether a hedge fired.
func (g *ReplicaGroup) LookupAny(ctx context.Context, ids []int32, members bool) (LookupResponse, shard.ReadResult, error) {
	// One slot per member: each member is attempted at most once per
	// Read, and the winner's slot is written before Read returns.
	slots := make([]LookupResponse, len(g.clients))
	rr, err := g.Read(ctx, func(ctx context.Context, _ shard.Backend, idx int) (uint64, error) {
		resp, err := g.clients[idx].LookupRemote(ctx, ids, members)
		if err != nil {
			return 0, err
		}
		slots[idx] = resp
		return resp.Generation, nil
	})
	if err != nil {
		return LookupResponse{}, rr, err
	}
	return slots[rr.Member], rr, nil
}

// handshake probes the shard until it answers (covers may still be
// building when the router starts) and mirrors its first snapshot.
func (c *Client) handshake(ctx context.Context) (Health, error) {
	var lastErr error
	for {
		hctx, cancel := context.WithTimeout(ctx, c.reqTO)
		h, err := c.health(hctx)
		cancel()
		if err == nil {
			if err = c.syncSnapshotCtx(ctx); err == nil {
				c.draining.Store(h.Draining)
				return h, nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return Health{}, fmt.Errorf("handshake: %w", lastErr)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// normalizeAddr accepts host:port or a full URL.
func normalizeAddr(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}
