package refresh

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/spectral"
)

// cliquesAndFringe builds two disjoint K6 cliques (nodes 0–5 and 6–11)
// plus an uncovered fringe: nodes 12 and 13 joined by a single edge —
// a size-2 local optimum that MinCommunitySize drops, so the fringe is
// covered by no community.
func cliquesAndFringe() *graph.Graph {
	b := graph.NewBuilder(14)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(12, 13)
	return b.Build()
}

func flushOne(t *testing.T, w *Worker, add, remove [][2]int32) *Snapshot {
	t.Helper()
	if _, _, err := w.Enqueue(add, remove); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return snap
}

// TestFastpathSkipsOCA: a batch touching no community and adding no
// structure (removing the uncovered fringe edge) publishes a new
// generation in ModeFastpath with the community list carried unchanged
// — the same community slices, not merely equal ones, proving OCA never
// ran.
func TestFastpathSkipsOCA(t *testing.T) {
	opt := core.Options{Seed: 3, C: 0.5}
	w := New(testSnapshot(t, cliquesAndFringe(), opt), Config{
		OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 0.5,
	})
	w.Start()
	defer w.Close()
	old := w.Snapshot()
	if old.Cover.Len() != 2 {
		t.Fatalf("initial cover has %d communities, want the 2 cliques", old.Cover.Len())
	}

	snap := flushOne(t, w, nil, [][2]int32{{12, 13}})
	if snap.RebuildMode != ModeFastpath {
		t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, ModeFastpath)
	}
	if snap.Gen != old.Gen+1 {
		t.Fatalf("generation = %d, want %d", snap.Gen, old.Gen+1)
	}
	if snap.Graph.HasEdge(12, 13) {
		t.Fatal("removed edge still present in the published graph")
	}
	if snap.Cover.Len() != old.Cover.Len() {
		t.Fatalf("community count changed: %d -> %d", old.Cover.Len(), snap.Cover.Len())
	}
	for i := range snap.Cover.Communities {
		if &snap.Cover.Communities[i][0] != &old.Cover.Communities[i][0] {
			t.Fatalf("community %d was rebuilt, want the carried slice", i)
		}
	}
	if snap.DirtyNodes != 0 {
		t.Fatalf("fastpath dirty nodes = %d, want 0", snap.DirtyNodes)
	}
}

// TestIncrementalModeSelection drives the threshold boundary: the same
// one-community batch rebuilds incrementally when the touched fraction
// is within the threshold, fully when it is above it, and additions in
// an uncovered region take the scoped incremental path even though they
// touch no community.
func TestIncrementalModeSelection(t *testing.T) {
	opt := core.Options{Seed: 3, C: 0.5}
	cases := []struct {
		name      string
		threshold float64
		add       [][2]int32
		remove    [][2]int32
		wantMode  string
	}{
		// One touched community out of 2 = fraction 0.5.
		{"within threshold", 0.5, [][2]int32{{0, 12}}, nil, ModeIncremental},
		{"above threshold", 0.49, [][2]int32{{0, 12}}, nil, ModeFull},
		{"disabled", 0, [][2]int32{{0, 12}}, nil, ModeFull},
		// Touches both communities: fraction 1 > 0.5.
		{"cross-community above", 0.5, [][2]int32{{0, 6}}, nil, ModeFull},
		{"cross-community within", 1, [][2]int32{{0, 6}}, nil, ModeIncremental},
		// Uncovered fringe: additions must still be searched (they can
		// seed new structure), removals need no OCA at all.
		{"uncovered addition", 0.5, [][2]int32{{12, 13}, {12, 5}}, nil, ModeIncremental},
		{"uncovered removal", 0.5, nil, [][2]int32{{12, 13}}, ModeFastpath},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := cliquesAndFringe()
			if tc.name == "uncovered addition" {
				// Start without the fringe edge so both mutations are real
				// additions between uncovered nodes.
				d := graph.NewDelta(g)
				if err := d.RemoveEdge(12, 13); err != nil {
					t.Fatal(err)
				}
				g = d.Apply()
			}
			w := New(testSnapshot(t, g, opt), Config{
				OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: tc.threshold,
			})
			w.Start()
			defer w.Close()
			snap := flushOne(t, w, tc.add, tc.remove)
			if snap.RebuildMode != tc.wantMode {
				t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, tc.wantMode)
			}
			if tc.wantMode == ModeIncremental && snap.DirtyNodes == 0 {
				t.Fatal("incremental rebuild reported an empty dirty region")
			}
		})
	}
}

// TestUnmergedCoverForcesFullRebuild: a generation without a Result —
// a preloaded cover, or a carry-over after a failed rebuild — never
// went through the ρ-merge, so MergeInto's fixpoint premise does not
// hold; the first rebuild must take the full path even for a tiny
// batch, after which the engine is live again.
func TestUnmergedCoverForcesFullRebuild(t *testing.T) {
	opt := core.Options{Seed: 3, C: 0.5}
	g := cliquesAndFringe()
	res, err := core.Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a preloaded cover: same communities, no Result.
	w := New(NewSnapshot(g, res.Cover, nil, res.C, 0), Config{
		OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 1,
	})
	w.Start()
	defer w.Close()
	snap := flushOne(t, w, [][2]int32{{0, 12}}, nil)
	if snap.RebuildMode != ModeFull {
		t.Fatalf("first rebuild over an unmerged cover: mode = %q, want %q", snap.RebuildMode, ModeFull)
	}
	snap = flushOne(t, w, nil, [][2]int32{{0, 12}})
	if snap.RebuildMode != ModeIncremental {
		t.Fatalf("second rebuild: mode = %q, want %q (engine re-enabled)", snap.RebuildMode, ModeIncremental)
	}
}

// TestIncrementalBootstrapsEmptyCover: a worker starting from an
// edgeless graph (empty cover) must still discover communities once
// mutations create structure — the scoped run over the new endpoints is
// the bootstrap path, so enabling the incremental engine cannot leave a
// shard coverless forever.
func TestIncrementalBootstrapsEmptyCover(t *testing.T) {
	g := graph.NewBuilder(8).Build()
	opt := core.Options{Seed: 5, C: 0.5}
	w := New(testSnapshot(t, g, opt), Config{
		OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 0.25,
	})
	w.Start()
	defer w.Close()
	if w.Snapshot().Cover.Len() != 0 {
		t.Fatal("edgeless graph should start with an empty cover")
	}
	var add [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			add = append(add, [2]int32{i, j})
		}
	}
	snap := flushOne(t, w, add, nil)
	if snap.RebuildMode != ModeIncremental {
		t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, ModeIncremental)
	}
	if snap.Cover.Len() != 1 {
		t.Fatalf("cover has %d communities after clique creation, want 1", snap.Cover.Len())
	}
	if got := snap.Cover.Communities[0]; len(got) != 5 {
		t.Fatalf("bootstrap community = %v, want the 5-clique", got)
	}
	// The patched index and stats must describe the new cover.
	for v := int32(0); v < 5; v++ {
		if !snap.Index.Covered(v) {
			t.Fatalf("node %d not covered in the patched index", v)
		}
	}
	if snap.Stats.CoveredNodes != 5 || snap.Stats.Communities != 1 {
		t.Fatalf("patched stats = %+v, want 5 covered nodes in 1 community", snap.Stats)
	}
}

// TestIncrementalSnapshotConsistency: after an incremental rebuild the
// patched index and stats must be byte-identical to what a from-scratch
// Build/Stats over the served cover would produce.
func TestIncrementalSnapshotConsistency(t *testing.T) {
	opt := core.Options{Seed: 3, C: 0.5}
	w := New(testSnapshot(t, cliquesAndFringe(), opt), Config{
		OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 1,
	})
	w.Start()
	defer w.Close()
	// Grow clique A by pulling in the fringe, then shrink it again.
	snap := flushOne(t, w, [][2]int32{{0, 12}, {1, 12}, {2, 12}, {3, 12}}, nil)
	snap = flushOne(t, w, nil, [][2]int32{{0, 12}, {1, 12}})
	if snap.RebuildMode != ModeIncremental {
		t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, ModeIncremental)
	}
	n := snap.Graph.N()
	wantStats := snap.Cover.Stats(n)
	if snap.Stats != wantStats {
		t.Fatalf("patched stats %+v != recomputed %+v", snap.Stats, wantStats)
	}
	for v := int32(0); int(v) < n; v++ {
		got := snap.Index.Communities(v)
		var want []int32
		for ci, c := range snap.Cover.Communities {
			if c.Contains(v) {
				want = append(want, int32(ci))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d memberships = %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d memberships = %v, want %v", v, got, want)
			}
		}
	}
}

// TestIncrementalCoverOrderCanonical is the regression test for the
// carried ordering bug: incremental rebuilds used to publish covers in
// patch order (kept survivors first, fresh discoveries appended), so a
// fresh community larger than the carried ones came out last instead of
// first. Published order must be the canonical size-sorted order
// (cover.Less) regardless of rebuild mode, with the patched index
// permuted to match.
func TestIncrementalCoverOrderCanonical(t *testing.T) {
	opt := core.Options{Seed: 3, C: 0.5}
	w := New(testSnapshot(t, cliquesAndFringe(), opt), Config{
		OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 0.5,
	})
	w.Start()
	defer w.Close()

	// Grow clique B (nodes 6–11) to 7 members by wiring in node 12. In
	// patch order the untouched clique A (size 6) stays at position 0
	// and the regrown B (size 7) is appended after it — the buggy order.
	add := make([][2]int32, 0, 6)
	for i := int32(6); i < 12; i++ {
		add = append(add, [2]int32{i, 12})
	}
	snap := flushOne(t, w, add, nil)
	if snap.RebuildMode != ModeIncremental {
		t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, ModeIncremental)
	}
	if snap.Cover.Len() < 2 {
		t.Fatalf("cover has %d communities, want at least 2", snap.Cover.Len())
	}
	for i := 1; i < snap.Cover.Len(); i++ {
		if cover.Less(snap.Cover.Communities[i], snap.Cover.Communities[i-1]) {
			t.Fatalf("published cover not canonically sorted: community %d (size %d) after %d (size %d)",
				i, len(snap.Cover.Communities[i]), i-1, len(snap.Cover.Communities[i-1]))
		}
	}
	if len(snap.Cover.Communities[0]) != 7 {
		t.Fatalf("largest community size = %d at position 0, want the regrown 7-clique first",
			len(snap.Cover.Communities[0]))
	}
	// The permuted index must describe the sorted cover exactly.
	for v := int32(0); int(v) < snap.Graph.N(); v++ {
		got := snap.Index.Communities(v)
		var want []int32
		for ci, c := range snap.Cover.Communities {
			if c.Contains(v) {
				want = append(want, int32(ci))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d memberships = %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d memberships = %v, want %v", v, got, want)
			}
		}
	}
	// Canonical order is a pure function of the community set: sorting
	// any shuffle of the published communities reproduces it.
	shuffled := snap.Cover.Clone()
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled.Communities), func(i, j int) {
		shuffled.Communities[i], shuffled.Communities[j] = shuffled.Communities[j], shuffled.Communities[i]
	})
	shuffled.SortBySize()
	for i, c := range shuffled.Communities {
		if !c.Equal(snap.Cover.Communities[i]) {
			t.Fatalf("canonical order not a pure function of the set: position %d differs", i)
		}
	}
}

// TestIncrementalLadder is the batch-size equivalence gate: starting
// from an LFR graph with b edges stripped, one incremental rebuild that
// re-adds them must land within NMI ≥ 0.98 of a cold full run on the
// final graph, at every rung of the ladder. The threshold is 1 so even
// the large rungs take the incremental path.
func TestIncrementalLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OCA-run equivalence ladder")
	}
	// Well-separated communities (µ = 0.02): in this regime OCA recovers
	// the planted structure essentially exactly, so the NMI gap isolates
	// warm-start/patching drift rather than algorithmic noise (same
	// reasoning as TestIncrementalEquivalence).
	bench, err := lfr.Generate(lfr.Params{
		N: 600, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 60, Seed: 17,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	final := bench.Graph
	n := final.N()
	c, err := spectral.C(final, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}
	opt := core.Options{Seed: 11, C: c}
	cold, err := core.Run(final, opt)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	var all [][2]int32
	final.Edges(func(u, v int32) bool {
		all = append(all, [2]int32{u, v})
		return true
	})
	rng := rand.New(rand.NewSource(23))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	for _, batch := range []int{1, 10, 100, 1000} {
		if batch > len(all) {
			t.Fatalf("ladder rung %d exceeds edge count %d", batch, len(all))
		}
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			removed := all[:batch]
			d := graph.NewDelta(final)
			for _, e := range removed {
				if err := d.RemoveEdge(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
			}
			start := d.Apply()
			w := New(testSnapshot(t, start, opt), Config{
				OCA: opt, Debounce: time.Millisecond, IncrementalThreshold: 1,
			})
			w.Start()
			defer w.Close()
			snap := flushOne(t, w, removed, nil)
			if snap.Graph.M() != final.M() {
				t.Fatalf("rebuilt graph has %d edges, want %d", snap.Graph.M(), final.M())
			}
			if snap.RebuildMode != ModeIncremental {
				t.Fatalf("rebuild_mode = %q, want %q", snap.RebuildMode, ModeIncremental)
			}
			nmi := metrics.NMI(snap.Cover, cold.Cover, n)
			if nmi < 0.98 {
				t.Errorf("NMI(incremental, cold) = %.4f at batch %d, want ≥ 0.98 (incremental %d communities, cold %d, dirty %d)",
					nmi, batch, snap.Cover.Len(), cold.Cover.Len(), snap.DirtyNodes)
			}
		})
	}
	// Anchor against degeneracy: the cold reference must recover the
	// planted structure.
	if truthNMI := metrics.NMI(cold.Cover, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("cold run vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}
}
