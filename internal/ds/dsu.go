// Package ds provides the small data structures shared by the community
// search algorithms: a disjoint-set union (union-find), an integer-keyed
// bucket priority queue, and a fixed-size bitset.
package ds

// DSU is a disjoint-set union (union-find) over the elements 0..n-1 with
// union by size and path halving. The zero value is unusable; create one
// with NewDSU.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// NewDSU returns a DSU over n singleton sets labeled 0..n-1.
func NewDSU(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Len returns the number of elements the DSU was created with.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	p := int32(x)
	for d.parent[p] != p {
		d.parent[p] = d.parent[d.parent[p]] // path halving
		p = d.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// SetSize returns the size of the set containing x.
func (d *DSU) SetSize(x int) int { return int(d.size[d.Find(x)]) }

// Groups returns the disjoint sets as slices of their members, keyed by
// canonical representative. Members appear in increasing order.
func (d *DSU) Groups() map[int][]int {
	groups := make(map[int][]int)
	for i := range d.parent {
		r := d.Find(i)
		groups[r] = append(groups[r], i)
	}
	return groups
}
