// Package wal implements the mutation write-ahead log behind durable
// ocad restarts: an append-only file of length-prefixed, CRC-protected
// records, one per accepted /v1/edges batch, written (and optionally
// fsynced) before the batch is acknowledged. Between snapshot segments
// the WAL is the only durable copy of accepted mutations; on startup
// the tail with sequence numbers beyond the latest segment is replayed
// through the incremental rebuild engine, so recovery costs O(batch)
// per record instead of a cold OCA run.
//
// The package owns only the on-disk format — record framing, the edge
// batch and publish-marker payloads, and the torn-tail read semantics.
// File placement, rotation and retention live in internal/persist;
// the normative format specification is docs/PERSISTENCE.md, which a
// doc-sync test locks to this package's constants.
package wal
