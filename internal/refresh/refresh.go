// The Worker: mutation intake, the debounced rebuild loop, and
// generation publication (see doc.go for the package overview).

package refresh

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
)

// ErrBacklogFull is returned by Enqueue when the pending-mutation queue
// has reached Config.MaxPending; callers should shed load (HTTP 503)
// rather than buffer unboundedly.
var ErrBacklogFull = errors.New("refresh: mutation backlog full")

// ErrClosed is returned by Enqueue and Flush after Close.
var ErrClosed = errors.New("refresh: worker closed")

// DefaultMaxPending is Config.MaxPending's default backlog capacity.
const DefaultMaxPending = 1 << 20

// RetryAfter suggests how long a shedding caller should wait before
// retrying a mutation refused with ErrBacklogFull, scaled by how full
// the backlog is: a nearly-empty queue drains within a rebuild or two
// (1s), a saturated one needs the full drain window (10s). Serves the
// Retry-After headers on 503 responses (docs/OPERATIONS.md).
func RetryAfter(pending, capacity int) time.Duration {
	if capacity <= 0 || pending <= 0 {
		return time.Second
	}
	if pending > capacity {
		pending = capacity
	}
	d := time.Duration(float64(10*time.Second) * float64(pending) / float64(capacity))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Rebuild modes recorded in Snapshot.RebuildMode.
const (
	// ModeFull is a whole-graph rebuild: OCA seeded over all nodes,
	// global merge, index and stats rebuilt. Initial builds and
	// carried-over failures report it too.
	ModeFull = "full"
	// ModeIncremental is a dirty-region rebuild: OCA scoped to the
	// mutated endpoints and the members of the communities they
	// touched, fresh discoveries merged into the carried cover and the
	// index/stats patched instead of rebuilt.
	ModeIncremental = "incremental"
	// ModeFastpath published a new graph without running OCA at all:
	// the batch touched no community (and added no structure), so the
	// cover was carried unchanged.
	ModeFastpath = "fastpath"
)

// Snapshot is one immutable generation of the served state. All fields
// are read-only after publication; readers obtain a consistent view by
// loading the snapshot once and using only it for the whole request.
type Snapshot struct {
	// Gen numbers generations from 1; every rebuild increments it.
	Gen uint64
	// Seq is the cumulative count of mutation operations reflected in
	// this generation. The persistence layer uses it to decide which WAL
	// records a recovered segment already includes; a restored initial
	// snapshot's Seq also seeds the worker's op counter so sequence
	// numbers stay monotone across restarts.
	Seq uint64
	// Graph is the CSR graph this generation was computed over.
	Graph *graph.Graph
	// Cover holds the communities served in this generation.
	Cover *cover.Cover
	// Index is the inverted node→community index over Cover.
	Index *index.Membership
	// Stats are the cover-wide overlap statistics, computed once.
	Stats cover.OverlapStats
	// Result is the OCA run that produced Cover, nil when the cover was
	// preloaded or carried over after a failed rebuild.
	Result *core.Result
	// C is the inner-product parameter associated with this generation
	// (0 when not yet known, e.g. a preloaded cover before any search).
	C float64
	// MaxDegree is Graph.MaxDegree(), computed once for search pools.
	MaxDegree int
	// BuildTime is how long this generation took to compute.
	BuildTime time.Duration
	// BuiltAt is when this generation was published.
	BuiltAt time.Time
	// Aux carries layer-specific immutable metadata attached by a
	// Config.BuildSnapshot hook (the shard layer stores its local→global
	// ownership tables here). Nil on the plain single-graph path.
	Aux any
	// RebuildMode records how this generation was computed: ModeFull,
	// ModeIncremental or ModeFastpath.
	RebuildMode string
	// DirtyNodes is the dirty-region size of an incremental rebuild
	// (mutated endpoints plus members of touched communities); 0 on the
	// other modes.
	DirtyNodes int
	// Dirty lists the nodes this generation may answer differently from
	// its predecessor: the incremental dirty region, or just the mutated
	// endpoints on the fastpath. Nil after a full rebuild (everything may
	// differ). A seeded search whose seed and previous result avoid Dirty
	// still returned a locally optimal community on this generation's
	// graph — the reuse test behind the server's cache carry-forward.
	Dirty []int32
}

// NewSnapshot assembles a Snapshot (index, stats, max degree) for the
// given graph and cover. Gen is left for the caller to assign.
func NewSnapshot(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration) *Snapshot {
	return &Snapshot{
		Graph:       g,
		Cover:       cv,
		Index:       index.Build(cv, g.N()),
		Stats:       cv.Stats(g.N()),
		Result:      res,
		C:           c,
		MaxDegree:   g.MaxDegree(),
		BuildTime:   buildTime,
		BuiltAt:     time.Now(),
		RebuildMode: ModeFull,
	}
}

// Config tunes a Worker. The zero value re-runs OCA with the paper's
// defaults, warm-starts from the previous cover, coalesces mutations
// for 50ms and bounds the backlog at 1<<20 operations.
type Config struct {
	// OCA configures the re-run performed on every rebuild. When OCA.C
	// is 0 each rebuild derives c from the then-current graph's
	// spectrum; pinning a value makes rebuilds cheaper and generations
	// directly comparable.
	OCA core.Options
	// DisableWarmStart forces every rebuild to run OCA cold instead of
	// carrying over communities untouched by the mutations.
	DisableWarmStart bool
	// Debounce is how long a rebuild waits after the first queued
	// mutation so bursts coalesce into one OCA run. Flush skips it.
	// Default 50ms; negative means no wait.
	Debounce time.Duration
	// MaxPending caps the queued-mutation backlog. Default 1<<20.
	MaxPending int
	// MaxNodes caps how far mutations may grow the node set. When 0 (the
	// default) the node set is fixed at the initial snapshot's size and
	// edges naming ids beyond it are rejected; a larger value lets added
	// edges name new node ids up to it, extending the graph (new nodes
	// are isolated until an edge names them).
	MaxNodes int
	// IncrementalThreshold enables the dirty-region rebuild engine.
	// When a mutation batch touches at most this fraction of the
	// previous generation's communities, the rebuild runs OCA scoped to
	// the dirty region (mutated endpoints plus members of touched
	// communities), merges fresh discoveries into the carried cover
	// through postprocess.MergeInto and patches the index and stats —
	// O(|dirty region|) work instead of O(n). Batches touching no
	// community and adding no edges skip OCA entirely (ModeFastpath).
	// Above the fraction — or at the default 0 — every rebuild takes
	// the full path. Ignored when DisableWarmStart or AssignOrphans is
	// set (both are whole-graph semantics), and a rebuild that
	// re-derives c always runs full so the cover is scored under one
	// parameter. Incremental generations publish their covers in the
	// same canonical size-sorted order as full rebuilds (patched in
	// patch order, then permuted — see cover.Less), so cover ordering
	// is deterministic across rebuild modes.
	IncrementalThreshold float64
	// RederiveCAfter, when positive, re-derives c = -1/λmin from the
	// then-current graph's spectrum during a rebuild once the cumulative
	// number of applied mutations since the last derivation exceeds this
	// fraction of the graph's edge count — so a drifting graph does not
	// serve a stale startup parameter forever. 0 pins the inherited c
	// across all rebuilds (the cheap default).
	RederiveCAfter float64
	// BuildSnapshot, when set, assembles each rebuild's published
	// Snapshot in place of NewSnapshot — the shard layer filters
	// ghost-only communities and attaches ownership metadata (Aux) here.
	// It must leave Gen zero (the worker assigns it) and may not mutate
	// its inputs.
	BuildSnapshot func(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration) *Snapshot
	// PatchSnapshot, when set, assembles the published Snapshot for
	// fastpath and incremental rebuilds from a description of exactly
	// what the batch changed (see PatchContext), so a custom snapshot
	// layer can patch its index, stats and metadata in O(|dirty
	// region|) instead of rebuilding them from scratch — the reason the
	// shard layer's ghost filtering no longer forces per-shard index
	// rebuilds on the incremental path. Full rebuilds still go through
	// BuildSnapshot. Like BuildSnapshot it must leave Gen zero and may
	// not mutate its inputs; when nil, fastpath and incremental
	// rebuilds fall back to BuildSnapshot (or the built-in patch path).
	PatchSnapshot func(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration, pc *PatchContext) *Snapshot
	// LogBatch, when set, is called by Enqueue after a batch passes
	// validation and the backlog check but before it is queued, with the
	// worker's cumulative op count including the batch. An error rejects
	// the batch with no effect — accepted and logged are the same event,
	// which is what makes the write-ahead log authoritative. It runs
	// under the worker's mutex, so a durable (fsyncing) implementation
	// serializes mutation intake; see docs/PERSISTENCE.md for the
	// tradeoff.
	LogBatch func(add, remove [][2]int32, seq uint64) error
	// OnSwap, when set, is called from the worker goroutine after each
	// new generation is published (for logging/metrics).
	OnSwap func(*Snapshot)
}

// Status is a point-in-time view of the worker for observability
// endpoints. It is JSON-serializable: the shard wire protocol ships it
// verbatim in health probes.
type Status struct {
	// Gen is the current snapshot's generation.
	Gen uint64 `json:"generation"`
	// Pending counts queued mutations not yet part of any snapshot.
	Pending int `json:"pending"`
	// Rebuilding reports whether a rebuild is in flight.
	Rebuilding bool `json:"rebuilding"`
	// Rebuilds counts completed rebuilds (successful or carried-over).
	Rebuilds uint64 `json:"rebuilds"`
	// LastBuild is the duration of the current snapshot's build.
	LastBuild time.Duration `json:"last_build_nanos"`
	// BuiltAt is when the current snapshot was published.
	BuiltAt time.Time `json:"built_at"`
	// LastErr is the error of the most recent rebuild's OCA run, empty
	// when it succeeded.
	LastErr string `json:"last_error,omitempty"`
	// OldestPending is when the oldest queued mutation was enqueued
	// (zero when the queue is empty) — the age signal behind the
	// queue-depth gauges at /debug/metrics.
	OldestPending time.Time `json:"oldest_pending"`
}

type op struct {
	u, v int32
	del  bool
}

// Worker owns the snapshot and the background rebuild loop. Create with
// New, call Start once, and Close when done. All methods are safe for
// concurrent use.
type Worker struct {
	cfg Config
	cur atomic.Pointer[Snapshot]

	mu         sync.Mutex
	cond       *sync.Cond
	pending    []op
	pendingAt  time.Time // enqueue time of the oldest op still in pending
	takingAt   time.Time // enqueue time of the oldest op in the batch being rebuilt
	seq        uint64    // ops ever enqueued
	appliedSeq uint64    // ops included in (or superseded by) the current snapshot
	nextN      int       // node count including queued (not yet applied) growth
	maxNodes   int       // hard ceiling on nextN (initial N when growth is off)
	rebuilding bool
	rebuilds   uint64
	lastErr    error
	closed     bool
	forceFull  bool // a ForceRebuild is pending: rebuild even with no ops

	// opsSinceC counts mutations applied since c was last derived from
	// the spectrum; touched only by the rebuild goroutine.
	opsSinceC uint64

	kick    chan struct{} // wakes the loop; cap 1
	flushCh chan struct{} // skips the debounce wait; cap 1
	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
}

// New returns a Worker serving the given initial snapshot. If the
// snapshot has no generation yet it becomes generation 1. Start must be
// called for mutations to be applied.
func New(initial *Snapshot, cfg Config) *Worker {
	if cfg.Debounce == 0 {
		cfg.Debounce = 50 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if initial.Gen == 0 {
		initial.Gen = 1
	}
	w := &Worker{
		cfg:     cfg,
		kick:    make(chan struct{}, 1),
		flushCh: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.nextN = initial.Graph.N()
	w.seq = initial.Seq
	w.appliedSeq = initial.Seq
	w.maxNodes = cfg.MaxNodes
	if w.maxNodes < w.nextN {
		w.maxNodes = w.nextN // growth disabled: the node set stays fixed
	}
	w.cond = sync.NewCond(&w.mu)
	w.cur.Store(initial)
	return w
}

// Snapshot returns the current generation. It never blocks and the
// result is immutable; use one snapshot for an entire request.
func (w *Worker) Snapshot() *Snapshot { return w.cur.Load() }

// MaxPending reports the backlog capacity (Config.MaxPending after
// defaulting).
func (w *Worker) MaxPending() int { return w.cfg.MaxPending }

// Status returns a point-in-time view of the worker.
func (w *Worker) Status() Status {
	snap := w.cur.Load()
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{
		Gen:        snap.Gen,
		Pending:    len(w.pending),
		Rebuilding: w.rebuilding,
		Rebuilds:   w.rebuilds,
		LastBuild:  snap.BuildTime,
		BuiltAt:    snap.BuiltAt,
	}
	if w.lastErr != nil {
		st.LastErr = w.lastErr.Error()
	}
	// The oldest mutation not yet reflected in any snapshot: a batch
	// taken by an in-flight rebuild keeps aging (takingAt) until its
	// generation publishes — an operator's staleness alert must not
	// reset just because the rebuild started.
	st.OldestPending = w.takingAt
	if st.OldestPending.IsZero() {
		st.OldestPending = w.pendingAt
	}
	return st
}

// ValidateBatch validates a mutation batch against a node set of n
// nodes with growth capped at maxNodes: self loops and negative ids are
// rejected, added edges may name new ids in [n, maxNodes), and removals
// may only name ids already present (including ids the batch's own adds
// grow to). It returns the node count after the batch's growth. The
// worker and the shard router share it, so both layers accept exactly
// the same batches — the router's cross-shard atomicity depends on
// that.
func ValidateBatch(add, remove [][2]int32, n, maxNodes int) (int, error) {
	batchN := n
	for _, e := range add {
		if e[0] == e[1] {
			return 0, fmt.Errorf("refresh: edge (%d, %d) is a self loop", e[0], e[1])
		}
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= maxNodes || int(e[1]) >= maxNodes {
			return 0, fmt.Errorf("refresh: edge (%d, %d) out of range [0, %d)", e[0], e[1], maxNodes)
		}
		for _, v := range e {
			if int(v) >= batchN {
				batchN = int(v) + 1
			}
		}
	}
	for _, e := range remove {
		if e[0] == e[1] {
			return 0, fmt.Errorf("refresh: edge (%d, %d) is a self loop", e[0], e[1])
		}
		// Removals never grow: both endpoints must already exist, at
		// least as pending growth from this or an earlier batch.
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= batchN || int(e[1]) >= batchN {
			return 0, fmt.Errorf("refresh: edge (%d, %d) out of range [0, %d)", e[0], e[1], batchN)
		}
	}
	return batchN, nil
}

// Enqueue validates and queues a batch of edge mutations. The batch is
// atomic: any invalid edge rejects the whole batch with no effect.
// Added edges may name node ids beyond the current node set when
// Config.MaxNodes allows it, growing the graph at the next rebuild;
// removals may only name nodes that exist (or are pending growth).
// It returns the generation current at enqueue time — once a later
// generation is visible, the batch is reflected in it — and the number
// of operations queued.
func (w *Worker) Enqueue(add, remove [][2]int32) (gen uint64, queued int, err error) {
	snap := w.cur.Load()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return snap.Gen, 0, ErrClosed
	}
	// Validation runs under the lock so the growth bound (nextN) cannot
	// move between checking a batch and accepting it.
	batchN, err := ValidateBatch(add, remove, w.nextN, w.maxNodes)
	if err != nil {
		w.mu.Unlock()
		return snap.Gen, 0, err
	}
	total := len(add) + len(remove)
	if len(w.pending)+total > w.cfg.MaxPending {
		w.mu.Unlock()
		return snap.Gen, 0, ErrBacklogFull
	}
	if w.cfg.LogBatch != nil && total > 0 {
		if err := w.cfg.LogBatch(add, remove, w.seq+uint64(total)); err != nil {
			w.mu.Unlock()
			return snap.Gen, 0, fmt.Errorf("refresh: logging batch: %w", err)
		}
	}
	if len(w.pending) == 0 && total > 0 {
		w.pendingAt = time.Now()
	}
	for _, e := range add {
		w.pending = append(w.pending, op{u: e[0], v: e[1]})
	}
	for _, e := range remove {
		w.pending = append(w.pending, op{u: e[0], v: e[1], del: true})
	}
	w.nextN = batchN
	w.seq += uint64(total)
	gen = w.cur.Load().Gen
	w.mu.Unlock()

	select {
	case w.kick <- struct{}{}:
	default:
	}
	return gen, total, nil
}

// ForceRebuild queues a full rebuild even when no mutations are
// pending — the hook a partition-map change uses to re-evaluate
// ownership (a migrated range's donor drops it, the receiver adopts
// it) and a halo refresh uses to re-score against re-synced ghost
// edges. The rebuild publishes generation+1 like any other; it counts
// as one virtual operation so a subsequent Flush waits for it. Returns
// the generation current at the call.
func (w *Worker) ForceRebuild() (uint64, error) {
	snap := w.cur.Load()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return snap.Gen, ErrClosed
	}
	w.forceFull = true
	w.seq++
	if len(w.pending) == 0 {
		w.pendingAt = time.Now()
	}
	gen := w.cur.Load().Gen
	w.mu.Unlock()

	select {
	case w.kick <- struct{}{}:
	default:
	}
	return gen, nil
}

// Flush blocks until every mutation enqueued before the call is
// reflected in the current snapshot (skipping the debounce wait), then
// returns that snapshot. It respects ctx cancellation.
func (w *Worker) Flush(ctx context.Context) (*Snapshot, error) {
	w.mu.Lock()
	target := w.seq
	w.mu.Unlock()

	// Wake the loop and tell it to skip the debounce.
	select {
	case w.flushCh <- struct{}{}:
	default:
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}

	// A helper goroutine turns ctx cancellation into a cond broadcast.
	waitDone := make(chan struct{})
	defer close(waitDone)
	go func() {
		select {
		case <-ctx.Done():
			w.cond.Broadcast()
		case <-waitDone:
		}
	}()

	w.mu.Lock()
	defer w.mu.Unlock()
	for w.appliedSeq < target {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w.closed {
			return nil, ErrClosed
		}
		w.cond.Wait()
	}
	return w.cur.Load(), nil
}

// Start launches the background rebuild loop. It is a no-op when called
// more than once.
func (w *Worker) Start() {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go w.loop()
}

// Close stops the rebuild loop and wakes any Flush waiters with
// ErrClosed. Queued but unapplied mutations are dropped. Safe to call
// multiple times; the snapshot remains readable after Close.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	w.cond.Broadcast()
	if w.started.Load() {
		<-w.done
	} else {
		close(w.done)
	}
}

func (w *Worker) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
		}
		if d := w.cfg.Debounce; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-w.stop:
				t.Stop()
				return
			case <-w.flushCh:
				t.Stop()
			case <-t.C:
			}
		}
		// Drain a stale flush token so it cannot skip a future debounce.
		select {
		case <-w.flushCh:
		default:
		}
		w.rebuild()
	}
}

// rebuild takes the queued mutations, applies them copy-on-write, runs
// OCA (full, scoped to the dirty region, or not at all — see
// planRebuild) and publishes the next generation.
func (w *Worker) rebuild() {
	w.mu.Lock()
	ops := w.pending
	w.pending = nil
	taken := w.seq
	growTo := w.nextN
	force := w.forceFull
	w.forceFull = false
	if len(ops) == 0 && !force {
		w.mu.Unlock()
		return
	}
	// The taken batch keeps its age until its generation publishes (see
	// Status); ops enqueued mid-rebuild restart pendingAt.
	w.takingAt = w.pendingAt
	w.pendingAt = time.Time{}
	w.rebuilding = true
	w.mu.Unlock()

	old := w.cur.Load()
	start := time.Now()
	d := graph.NewDelta(old.Graph)
	d.GrowTo(growTo)
	for _, o := range ops {
		// Validated at Enqueue against the same node range, so errors
		// here are impossible; Delta re-checks defensively.
		if o.del {
			_ = d.RemoveEdge(o.u, o.v)
		} else {
			_ = d.AddEdge(o.u, o.v)
		}
	}
	ng := d.Apply()

	if ng == old.Graph && !force {
		// Every operation was a no-op: nothing to recompute, the batch
		// is trivially reflected in the current snapshot.
		w.finish(taken, nil)
		return
	}

	buildSnap := w.cfg.BuildSnapshot
	if buildSnap == nil {
		buildSnap = NewSnapshot
	}
	opt := w.cfg.OCA
	w.opsSinceC += uint64(len(ops))
	rederive := w.cfg.RederiveCAfter > 0 && ng.M() > 0 &&
		float64(w.opsSinceC) >= w.cfg.RederiveCAfter*float64(ng.M())
	switch {
	case rederive:
		// Enough of the graph has churned that the startup-era spectrum
		// may no longer describe it: let this run re-derive c = -1/λmin
		// from the current graph instead of reusing the active value.
		opt.C = 0
	case w.cfg.RederiveCAfter > 0 && old.C > 0:
		// Drift tracking enabled: between re-derivations, follow the
		// previous generation's active c (the latest derivation), not
		// the startup-era configured value it may have replaced.
		opt.C = old.C
	case opt.C == 0 && old.C > 0:
		// An unpinned c resolves from the spectrum once (the first
		// rebuild, or the initial snapshot) and is reused afterwards:
		// re-deriving it per mutation batch would dominate refresh cost.
		opt.C = old.C
	}
	touched := d.Touched()
	mode, touchedComms := w.planRebuild(old, touched, ops, rederive)
	if force {
		// A forced rebuild re-evaluates the whole cover (ownership
		// filtering changed, or halo edges were re-synced): incremental
		// and fastpath shortcuts would skip exactly the re-evaluation
		// being asked for.
		mode, touchedComms = ModeFull, nil
	}

	var (
		snap *Snapshot
		err  error
	)
	switch mode {
	case ModeFastpath:
		snap = w.fastpathSnapshot(old, ng, ops, buildSnap, start)
		// The cover is untouched, but the graph changed at the mutated
		// endpoints: results computed there are not reusable downstream.
		snap.Dirty = touched
	case ModeIncremental:
		snap, err = w.incrementalSnapshot(old, ng, opt, ops, touched, touchedComms, start)
	}
	if snap == nil {
		// ModeFull, or an incremental run that errored and falls back to
		// the carry-over below.
		if !w.cfg.DisableWarmStart && old.Cover != nil {
			opt.Warm = carryUnaffected(old.Cover, touched)
			if force && len(touched) == 0 {
				// Forced rebuild of an unchanged graph: every previous
				// community is a valid warm start.
				opt.Warm = old.Cover.Communities
			}
		}
		var res *core.Result
		if err == nil {
			res, err = core.Run(ng, opt)
		}
		if err != nil {
			// Publish the new graph with the previous cover carried over:
			// mutations never shrink the node set, so the old communities
			// are still a valid (if stale) cover, and readers keep getting
			// answers.
			snap = buildSnap(ng, old.Cover, nil, old.C, time.Since(start))
		} else {
			if rederive {
				w.opsSinceC = 0
			}
			snap = buildSnap(ng, res.Cover, res, res.C, time.Since(start))
		}
		snap.RebuildMode = ModeFull
	}
	snap.Gen = old.Gen + 1
	snap.Seq = taken
	w.cur.Store(snap)
	w.finish(taken, err)
	if w.cfg.OnSwap != nil {
		w.cfg.OnSwap(snap)
	}
}

func (w *Worker) finish(taken uint64, err error) {
	w.mu.Lock()
	w.rebuilding = false
	w.takingAt = time.Time{}
	if taken > w.appliedSeq {
		w.appliedSeq = taken
	}
	w.rebuilds++
	w.lastErr = err
	w.mu.Unlock()
	w.cond.Broadcast()
}

// carryUnaffected returns the communities of cv containing none of the
// touched nodes — the ones whose member neighborhoods the mutation batch
// provably did not change, safe to hand to OCA as warm starts. The
// returned communities alias cv's (immutable) member slices.
func carryUnaffected(cv *cover.Cover, touched []int32) []cover.Community {
	if len(touched) == 0 {
		return nil
	}
	hit := make(map[int32]struct{}, len(touched))
	for _, v := range touched {
		hit[v] = struct{}{}
	}
	var warm []cover.Community
	for _, c := range cv.Communities {
		affected := false
		for _, v := range c {
			if _, ok := hit[v]; ok {
				affected = true
				break
			}
		}
		if !affected {
			warm = append(warm, c)
		}
	}
	return warm
}
