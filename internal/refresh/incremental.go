package refresh

// The dirty-region rebuild engine: make a rebuild cost proportional to
// the mutation batch, not the graph. The paper's fitness L(S) depends
// only on |S| and Ein(S), so a mutation can change the optimality of a
// community only if it touches the community's neighborhood — every
// community containing no mutated endpoint is exactly as locally
// optimal as before. A small batch therefore dirties only the mutated
// endpoints plus the members of the communities they touch; OCA is
// re-seeded over that region alone (core.Options.Restrict), fresh
// discoveries are folded into the carried cover incrementally
// (postprocess.MergeInto) and the inverted index and overlap stats are
// patched (index.Patch, cover.PatchStats) instead of rebuilt.

import (
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/postprocess"
)

// planRebuild decides how the taken batch is applied: ModeFastpath
// (publish without OCA), ModeIncremental (dirty-region scoped run) or
// ModeFull (today's whole-graph path). touchedComms are the previous
// generation's communities containing a mutated endpoint, nil unless
// the incremental engine is eligible.
func (w *Worker) planRebuild(old *Snapshot, touched []int32, ops []op, rederive bool) (mode string, touchedComms []int32) {
	if w.cfg.IncrementalThreshold <= 0 || w.cfg.DisableWarmStart ||
		w.cfg.OCA.AssignOrphans || rederive || old.Cover == nil || old.Index == nil {
		return ModeFull, nil
	}
	// MergeInto's premise is that the carried cover is a Merge fixpoint
	// (warm pairs need no re-testing). A generation with no Result —
	// a preloaded cover file, or a carry-over after a failed rebuild —
	// never went through the merge, so near-duplicates could persist
	// forever on the incremental path; one full rebuild restores the
	// invariant and re-enables the engine.
	if old.Result == nil {
		return ModeFull, nil
	}
	touchedComms = touchedCommunities(old.Index, touched)
	if len(touchedComms) == 0 {
		// No community contains a mutated endpoint. Removals between
		// uncovered nodes cannot create or destroy structure: publish
		// the new graph with the cover untouched. Additions can seed new
		// structure in an uncovered region, so they take the scoped run
		// (with an empty touched set the dirty region is just the
		// endpoints — the cheapest possible OCA, and the path that
		// bootstraps covers on initially empty graphs).
		if !hasEffectiveAdd(old.Graph, ops) {
			return ModeFastpath, nil
		}
		return ModeIncremental, nil
	}
	if float64(len(touchedComms)) > w.cfg.IncrementalThreshold*float64(old.Cover.Len()) {
		return ModeFull, nil
	}
	return ModeIncremental, touchedComms
}

// hasEffectiveAdd reports whether any operation adds an edge absent
// from g (adds of existing edges and removals never create structure).
func hasEffectiveAdd(g *graph.Graph, ops []op) bool {
	n := g.N()
	for _, o := range ops {
		if o.del {
			continue
		}
		if int(o.u) >= n || int(o.v) >= n || !g.HasEdge(o.u, o.v) {
			return true
		}
	}
	return false
}

// touchedCommunities returns the sorted distinct communities of ix
// containing any of the touched nodes.
func touchedCommunities(ix *index.Membership, touched []int32) []int32 {
	seen := make([]bool, ix.NumCommunities())
	var out []int32
	for _, v := range touched {
		for _, ci := range ix.Communities(v) {
			if !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	// Recover ascending order with one pass over the flags instead of a
	// sort (out is small but unordered: touched nodes interleave ids).
	out = out[:0]
	for ci, s := range seen {
		if s {
			out = append(out, int32(ci))
		}
	}
	return out
}

// dirtyRegion is the node set an incremental rebuild re-seeds over: the
// mutated endpoints plus every member of a touched community, deduped.
func dirtyRegion(cv *cover.Cover, touched, touchedComms []int32, n int) []int32 {
	seen := ds.NewBitset(n)
	dirty := make([]int32, 0, len(touched))
	for _, v := range touched {
		if int(v) < n && seen.Add(v) {
			dirty = append(dirty, v)
		}
	}
	for _, ci := range touchedComms {
		for _, v := range cv.Communities[ci] {
			if int(v) < n && seen.Add(v) {
				dirty = append(dirty, v)
			}
		}
	}
	return dirty
}

// PatchContext describes what a fastpath or incremental rebuild
// changed relative to the previous generation, handed to the
// Config.PatchSnapshot hook so a custom snapshot layer can patch its
// derived state instead of rebuilding it.
type PatchContext struct {
	// Old is the previous generation the new cover was derived from.
	Old *Snapshot
	// Removed flags the previous generation's communities absent from
	// the new cover: the ones touched by the batch plus carried
	// communities that absorbed a fresh discovery during the
	// incremental merge. Nil on the fastpath (nothing removed). Indexed
	// by previous community id; suitable for index.Patch.
	Removed []bool
	// Kept counts the carried communities: the new cover's
	// Communities[:Kept] are survivors of the previous generation in
	// their previous relative order, Communities[Kept:] are fresh. On
	// the fastpath Kept is the whole (pointer-identical) cover.
	Kept int
	// Add and Remove are the batch's edge operations in the graph's own
	// id space (already applied to the new graph; adds of existing
	// edges and removals of absent ones are included and changed
	// nothing).
	Add, Remove [][2]int32
}

// splitOps separates a taken batch back into add and remove pairs for
// the PatchContext.
func splitOps(ops []op) (add, remove [][2]int32) {
	for _, o := range ops {
		if o.del {
			remove = append(remove, [2]int32{o.u, o.v})
		} else {
			add = append(add, [2]int32{o.u, o.v})
		}
	}
	return add, remove
}

// fastpathSnapshot publishes ng with the previous cover carried over
// unchanged: no OCA, the index extended (shared outright when the node
// set did not grow) and the stats reused.
func (w *Worker) fastpathSnapshot(old *Snapshot, ng *graph.Graph, ops []op, buildSnap func(*graph.Graph, *cover.Cover, *core.Result, float64, time.Duration) *Snapshot, start time.Time) *Snapshot {
	var snap *Snapshot
	if w.cfg.PatchSnapshot != nil {
		// The custom patch assembler (the shard layer) extends its index
		// and metadata in place; the graph still changed, so it is told
		// which edges did.
		add, remove := splitOps(ops)
		snap = w.cfg.PatchSnapshot(ng, old.Cover, old.Result, old.C, time.Since(start), &PatchContext{
			Old:    old,
			Kept:   old.Cover.Len(),
			Add:    add,
			Remove: remove,
		})
	} else if w.cfg.BuildSnapshot != nil {
		// A custom snapshot assembler (the shard layer) owns index and
		// metadata construction; only the OCA run is skipped.
		snap = buildSnap(ng, old.Cover, old.Result, old.C, time.Since(start))
	} else {
		snap = &Snapshot{
			Graph:     ng,
			Cover:     old.Cover,
			Index:     index.Patch(old.Index, nil, nil, ng.N()),
			Stats:     old.Stats,
			Result:    old.Result,
			C:         old.C,
			MaxDegree: ng.MaxDegree(),
			BuildTime: time.Since(start),
			BuiltAt:   time.Now(),
		}
	}
	snap.RebuildMode = ModeFastpath
	return snap
}

// incrementalSnapshot runs the dirty-region rebuild: a scoped OCA run
// seeded only over the dirty region, MergeInto against the carried
// cover, and index/stats patching. Errors fall back to the caller's
// carry-over path.
func (w *Worker) incrementalSnapshot(old *Snapshot, ng *graph.Graph, opt core.Options, ops []op, touched, touchedComms []int32, start time.Time) (*Snapshot, error) {
	dirty := dirtyRegion(old.Cover, touched, touchedComms, ng.N())

	removed := make([]bool, old.Cover.Len())
	for _, ci := range touchedComms {
		removed[ci] = true
	}
	warm := make([]cover.Community, 0, old.Cover.Len()-len(touchedComms))
	warmOldID := make([]int32, 0, old.Cover.Len()-len(touchedComms))
	for ci, c := range old.Cover.Communities {
		if !removed[ci] {
			warm = append(warm, c)
			warmOldID = append(warmOldID, int32(ci))
		}
	}

	// The scoped run: warm communities steer seeding and halting away
	// from known structure but are not re-merged globally — merging is
	// done incrementally below, against candidates from the previous
	// generation's index.
	opt.Warm = warm
	opt.Restrict = dirty
	opt.DisableMerge = true
	res, err := core.Run(ng, opt)
	if err != nil {
		return nil, err
	}

	var (
		cv      *cover.Cover
		kept    int
		keptOld []int32
	)
	if w.cfg.OCA.DisableMerge {
		comms := make([]cover.Community, 0, len(warm)+len(res.Fresh))
		comms = append(comms, warm...)
		comms = append(comms, res.Fresh...)
		cv, kept, keptOld = cover.NewCover(comms), len(warm), warmOldID
	} else {
		mt := w.cfg.OCA.MergeThreshold
		if mt <= 0 {
			mt = postprocess.DefaultMergeThreshold
		}
		cv, kept, keptOld = postprocess.MergeInto(warm, warmOldID, old.Index, res.Fresh, mt)
	}
	res.Cover = cv

	// removedAll covers both the touched communities and the warm ones
	// that absorbed a fresh discovery.
	removedAll := make([]bool, old.Cover.Len())
	for i := range removedAll {
		removedAll[i] = true
	}
	for _, id := range keptOld {
		removedAll[id] = false
	}
	added := cv.Communities[kept:]

	var snap *Snapshot
	switch {
	case w.cfg.PatchSnapshot != nil:
		// The custom patch assembler (the shard layer) applies its own
		// derived-state patches (ghost-filtered index, ownership
		// metadata) from the same removal/addition description the
		// built-in path below patches from.
		add, remove := splitOps(ops)
		snap = w.cfg.PatchSnapshot(ng, cv, res, res.C, time.Since(start), &PatchContext{
			Old:     old,
			Removed: removedAll,
			Kept:    kept,
			Add:     add,
			Remove:  remove,
		})
	case w.cfg.BuildSnapshot != nil:
		// A custom assembler without a patch hook rebuilds index/stats
		// itself; the scoped OCA run and incremental merge are still the
		// bulk of the savings.
		snap = w.cfg.BuildSnapshot(ng, cv, res, res.C, time.Since(start))
	default:
		ix := index.Patch(old.Index, removedAll, added, ng.N())
		affected := AffectedNodes(old.Cover, removedAll, added, ng.N())
		stats := cover.PatchStats(old.Stats, cv, ng.N(), affected, old.Index.Degree, ix.Degree)
		snap = &Snapshot{
			Graph:     ng,
			Cover:     cv,
			Index:     ix,
			Stats:     stats,
			Result:    res,
			C:         res.C,
			MaxDegree: ng.MaxDegree(),
			BuildTime: time.Since(start),
			BuiltAt:   time.Now(),
		}
	}
	canonicalizeOrder(snap)
	snap.RebuildMode = ModeIncremental
	snap.DirtyNodes = len(dirty)
	snap.Dirty = dirty
	return snap, nil
}

// canonicalizeOrder re-publishes snap's cover in the canonical
// size-sorted order (cover.Less) with the inverted index permuted to
// match, so incremental generations expose the same deterministic
// ordering as full rebuilds (core.Run sorts before returning). It must
// run after all patch-order consumers: index.Patch's kept-prefix
// contract and the PatchSnapshot hook both describe the cover in patch
// order, so sorting is the last assembly step — O(k log k +
// memberships) against the O(|dirty region|) patch, and only when the
// order actually changed. The fastpath is exempt: it aliases the
// previous (already canonical) generation's cover, which must stay
// immutable.
func canonicalizeOrder(snap *Snapshot) {
	if snap.Cover == nil || snap.Index == nil {
		return
	}
	perm, sorted := snap.Cover.SortPerm()
	if sorted {
		return
	}
	snap.Cover.ApplyPerm(perm)
	snap.Index = index.Permute(snap.Index, perm)
}

// AffectedNodes lists (once each) the nodes whose membership degree may
// differ between the previous cover and a patched one: members of
// removed previous communities and of added ones. It is the node set a
// stats patch must re-tally (see cover.PatchStats); the shard layer's
// PatchSnapshot hook uses it with the same contract.
func AffectedNodes(oldCv *cover.Cover, removed []bool, added []cover.Community, n int) []int32 {
	seen := ds.NewBitset(n)
	var out []int32
	for ci, c := range oldCv.Communities {
		if !removed[ci] {
			continue
		}
		for _, v := range c {
			if v >= 0 && int(v) < n && seen.Add(v) {
				out = append(out, v)
			}
		}
	}
	for _, c := range added {
		for _, v := range c {
			if v >= 0 && int(v) < n && seen.Add(v) {
				out = append(out, v)
			}
		}
	}
	return out
}
