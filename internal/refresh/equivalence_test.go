package refresh

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/spectral"
)

// TestIncrementalEquivalence guards the warm-start path against drift:
// a cover reached through N incremental refreshes must match a cold
// full OCA run on the final graph (NMI ≥ 0.99 on an LFR benchmark).
//
// Construction: generate the final LFR graph, strip a random batch of
// edges to get the starting graph, cold-run OCA there, then feed the
// stripped edges back through the worker in several batches. The
// incremental end state is compared to a cold run on the final graph
// with identical options (c pinned so both paths search with the same
// inner-product parameter).
func TestIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OCA-run equivalence test")
	}
	// Well-separated communities (µ = 0.02, average degree 14): in this
	// regime OCA recovers the planted structure exactly, so any gap
	// between the incremental and cold covers is warm-start drift, not
	// algorithmic noise.
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	final := bench.Graph
	n := final.N()

	// Pin c from the final graph for both paths.
	c, err := spectral.C(final, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}
	opt := core.Options{Seed: 11, C: c}

	// Strip a random 40-edge sample to form the starting graph.
	var all [][2]int32
	final.Edges(func(u, v int32) bool {
		all = append(all, [2]int32{u, v})
		return true
	})
	rng := rand.New(rand.NewSource(13))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	removed := all[:40]
	d := graph.NewDelta(final)
	for _, e := range removed {
		if err := d.RemoveEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	start := d.Apply()

	w := New(testSnapshot(t, start, opt), Config{OCA: opt, Debounce: time.Millisecond})
	w.Start()
	defer w.Close()

	// Re-add the stripped edges in 4 incremental batches.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const batches = 4
	per := (len(removed) + batches - 1) / batches
	var snap *Snapshot
	for i := 0; i < len(removed); i += per {
		end := i + per
		if end > len(removed) {
			end = len(removed)
		}
		if _, _, err := w.Enqueue(removed[i:end], nil); err != nil {
			t.Fatalf("Enqueue batch at %d: %v", i, err)
		}
		if snap, err = w.Flush(ctx); err != nil {
			t.Fatalf("Flush batch at %d: %v", i, err)
		}
	}

	// The incremental graph must equal the final graph exactly.
	if snap.Graph.N() != n || snap.Graph.M() != final.M() {
		t.Fatalf("incremental graph n=%d m=%d, want n=%d m=%d", snap.Graph.N(), snap.Graph.M(), n, final.M())
	}
	mismatch := false
	final.Edges(func(u, v int32) bool {
		if !snap.Graph.HasEdge(u, v) {
			mismatch = true
			return false
		}
		return true
	})
	if mismatch {
		t.Fatal("incremental graph is missing an edge of the final graph")
	}

	cold, err := core.Run(final, opt)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	nmi := metrics.NMI(snap.Cover, cold.Cover, n)
	if nmi < 0.99 {
		t.Errorf("NMI(incremental, cold) = %.4f, want ≥ 0.99 (incremental %d communities, cold %d)",
			nmi, snap.Cover.Len(), cold.Cover.Len())
	}
	// Both paths must also actually recover the planted structure, so a
	// trivially degenerate pair (e.g. both empty) cannot pass.
	if truthNMI := metrics.NMI(cold.Cover, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("cold run vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}
}
