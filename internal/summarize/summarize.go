// Package summarize implements the paper's second §VI future-work item:
// "graph summarization for graphs containing overlapped communities".
//
// Given a graph and a (possibly overlapping) community cover, it builds
// a lossless summary in the correction-list style (Navlakha et al.):
// every node is assigned to a primary supernode (the community holding
// most of its edges; overlap information is preserved separately);
// dense supernode pairs — and dense supernode interiors — are encoded
// as superedges meaning "all pairs present", with explicit exception
// lists for the missing pairs, while sparse pairs list their edges
// individually. Reconstruct inverts the encoding exactly.
package summarize

import (
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
)

// Summary is a lossless community-based compression of a graph.
type Summary struct {
	// N is the node count of the original graph.
	N int
	// Primary maps each node to its supernode (primary community index,
	// or a singleton supernode for uncovered nodes).
	Primary []int32
	// Supernodes lists the members of each supernode (a partition of
	// the node set, unlike the overlapping input cover).
	Supernodes [][]int32
	// SelfDense[i] reports whether supernode i is encoded as "all
	// internal pairs present" (with exceptions) rather than listing
	// internal edges.
	SelfDense []bool
	// Superedges lists the supernode pairs (i < j) encoded as "all
	// cross pairs present" (with exceptions).
	Superedges [][2]int32
	// Additions are concrete edges present in the graph but not implied
	// by any dense encoding.
	Additions [][2]int32
	// Exceptions are pairs implied by a dense encoding that are absent
	// from the graph.
	Exceptions [][2]int32
}

// Cost is the summary's size in list entries: superedges + dense
// supernodes + additions + exceptions. Comparing it against the
// original edge count m gives the compression ratio.
func (s *Summary) Cost() int64 {
	cost := int64(len(s.Superedges)) + int64(len(s.Additions)) + int64(len(s.Exceptions))
	for _, d := range s.SelfDense {
		if d {
			cost++
		}
	}
	return cost
}

// Build summarizes g under the given cover. Nodes covered by several
// communities are assigned to the one containing most of their
// neighbors (ties to the lower community index); uncovered nodes become
// singleton supernodes. A supernode interior or supernode pair is
// encoded densely exactly when that costs fewer list entries than
// listing its edges (the standard MDL-style rule).
func Build(g *graph.Graph, cv *cover.Cover) (*Summary, error) {
	n := g.N()
	for _, c := range cv.Communities {
		for _, v := range c {
			if int(v) >= n {
				return nil, fmt.Errorf("summarize: community node %d outside graph of %d nodes", v, n)
			}
		}
	}
	s := &Summary{N: n, Primary: make([]int32, n)}
	for i := range s.Primary {
		s.Primary[i] = -1
	}

	// Primary assignment: community with most of the node's neighbors.
	membership := index.Build(cv, n)
	memberSet := make([]map[int32]struct{}, cv.Len())
	for ci, c := range cv.Communities {
		set := make(map[int32]struct{}, len(c))
		for _, v := range c {
			set[v] = struct{}{}
		}
		memberSet[ci] = set
	}
	for v := int32(0); v < int32(n); v++ {
		ms := membership.Communities(v)
		if len(ms) == 0 {
			continue
		}
		best, bestScore := ms[0], -1
		for _, ci := range ms {
			score := 0
			for _, w := range g.Neighbors(v) {
				if _, ok := memberSet[ci][w]; ok {
					score++
				}
			}
			if score > bestScore || (score == bestScore && ci < best) {
				best, bestScore = ci, score
			}
		}
		s.Primary[v] = best
	}
	// Dense remap: used communities first, then singletons for the rest.
	remap := make([]int32, cv.Len())
	for i := range remap {
		remap[i] = -1
	}
	for v := int32(0); v < int32(n); v++ {
		if p := s.Primary[v]; p >= 0 {
			if remap[p] == -1 {
				remap[p] = int32(len(s.Supernodes))
				s.Supernodes = append(s.Supernodes, nil)
			}
			s.Primary[v] = remap[p]
			s.Supernodes[s.Primary[v]] = append(s.Supernodes[s.Primary[v]], v)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if s.Primary[v] == -1 {
			s.Primary[v] = int32(len(s.Supernodes))
			s.Supernodes = append(s.Supernodes, []int32{v})
		}
	}
	s.SelfDense = make([]bool, len(s.Supernodes))

	// Count edges per supernode pair and within supernodes.
	within := make(map[int32]int64)
	between := make(map[uint64]int64)
	g.Edges(func(u, v int32) bool {
		pu, pv := s.Primary[u], s.Primary[v]
		if pu == pv {
			within[pu]++
			return true
		}
		a, b := pu, pv
		if a > b {
			a, b = b, a
		}
		between[uint64(a)<<32|uint64(uint32(b))]++
		return true
	})

	// Interior encoding decision per supernode: dense costs
	// 1 + (pairs - edges) entries, sparse costs edges entries.
	for i, members := range s.Supernodes {
		sz := int64(len(members))
		pairs := sz * (sz - 1) / 2
		edges := within[int32(i)]
		if pairs > 0 && 1+(pairs-edges) < edges {
			s.SelfDense[i] = true
			// Exceptions: missing internal pairs.
			for ai := 0; ai < len(members); ai++ {
				for bi := ai + 1; bi < len(members); bi++ {
					if !g.HasEdge(members[ai], members[bi]) {
						s.Exceptions = append(s.Exceptions, orient(members[ai], members[bi]))
					}
				}
			}
		}
	}
	// Pair encoding decision.
	dense := make(map[uint64]bool)
	for key, edges := range between {
		i, j := int32(key>>32), int32(uint32(key))
		pairs := int64(len(s.Supernodes[i])) * int64(len(s.Supernodes[j]))
		if 1+(pairs-edges) < edges {
			dense[key] = true
			s.Superedges = append(s.Superedges, [2]int32{i, j})
			for _, u := range s.Supernodes[i] {
				for _, v := range s.Supernodes[j] {
					if !g.HasEdge(u, v) {
						s.Exceptions = append(s.Exceptions, orient(u, v))
					}
				}
			}
		}
	}
	// Additions: edges not implied by any dense encoding.
	g.Edges(func(u, v int32) bool {
		pu, pv := s.Primary[u], s.Primary[v]
		if pu == pv {
			if !s.SelfDense[pu] {
				s.Additions = append(s.Additions, orient(u, v))
			}
			return true
		}
		a, b := pu, pv
		if a > b {
			a, b = b, a
		}
		if !dense[uint64(a)<<32|uint64(uint32(b))] {
			s.Additions = append(s.Additions, orient(u, v))
		}
		return true
	})
	sortPairs(s.Superedges)
	sortPairs(s.Additions)
	sortPairs(s.Exceptions)
	return s, nil
}

// Reconstruct rebuilds the exact original graph from the summary.
func Reconstruct(s *Summary) *graph.Graph {
	b := graph.NewBuilderHint(s.N, int64(len(s.Additions)))
	except := make(map[uint64]struct{}, len(s.Exceptions))
	for _, e := range s.Exceptions {
		except[pairKey(e[0], e[1])] = struct{}{}
	}
	emit := func(u, v int32) {
		if u == v {
			return
		}
		if _, skip := except[pairKey(u, v)]; skip {
			return
		}
		b.AddEdge(u, v)
	}
	for i, denseSelf := range s.SelfDense {
		if !denseSelf {
			continue
		}
		members := s.Supernodes[i]
		for ai := 0; ai < len(members); ai++ {
			for bi := ai + 1; bi < len(members); bi++ {
				emit(members[ai], members[bi])
			}
		}
	}
	for _, se := range s.Superedges {
		for _, u := range s.Supernodes[se[0]] {
			for _, v := range s.Supernodes[se[1]] {
				emit(u, v)
			}
		}
	}
	for _, e := range s.Additions {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func orient(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func pairKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

func sortPairs(ps [][2]int32) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}
