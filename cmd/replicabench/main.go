// Command replicabench gates the shard-replication layer: it boots a
// real K-shard wire-protocol deployment (shard servers, `-follow`-style
// replica mirrors, a replicated dial) on this machine and measures the
// replica set's read path under a mixed read/write load.
//
// Replica capacity is modeled explicitly so the gate is meaningful on
// any host, including single-CPU CI runners: every server's lookup
// endpoint passes through a concurrency gate of S slots, each holding a
// slot for a fixed service time. Read throughput is then slot-bound —
// K×1 offers K·S slots, K×(1+R) offers K·S·(1+R) — and the replicated
// deployment must convert the extra slots into throughput without
// giving up tail latency.
//
// Three legs:
//
//  1. Throughput: the same closed-loop mixed load (batch lookups plus a
//     mutating writer with flush barriers) against K×1 and K×3; gate:
//     replicated throughput ≥ 2× the single-member baseline at no worse
//     p99.
//  2. Hedging: lookups against one shard's replica set while every
//     member stalls a small fraction of requests by ~150 ms (the
//     tail-at-scale scenario); gate: the hedged p99 beats the
//     hedging-disabled p99 by ≥ 3×.
//  3. Monotonicity: throughout both legs every reader tracks the
//     generation of each reply and every flush is followed by an
//     immediate read; gate: zero generation regressions and zero
//     reads below a flushed floor — always enforced, even with -short.
//
// With -short it runs a scaled-down smoke version (CI): the paths are
// exercised and the monotonicity/hedge-fired gates enforced, but
// latency ratios are reported without being judged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lfr"
	"repro/internal/shard"
	"repro/internal/spectral"
	"repro/internal/transport"
)

// capacityGate models a replica's finite serving capacity: lookups
// acquire one of S slots and hold it for the service time; everything
// else (health polls, snapshot sync) passes untouched so replication
// lag stays realistic. With stall injection armed, a request first
// sleeps the stall duration with probability stallP *outside* the
// slot — a request-level scheduling/network hiccup, the tail hedging
// can rescue. (A stall that held a serving slot would instead model
// lost capacity: 3% × 150ms is a full slot-second per second, the
// group saturates, and every request — hedged or not — queues.)
type capacityGate struct {
	h      http.Handler
	slots  chan struct{}
	hold   time.Duration
	stall  atomic.Bool
	stallP float64
	stallD time.Duration
}

func (g *capacityGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == transport.PathLookup {
		if g.stall.Load() && rand.Float64() < g.stallP {
			time.Sleep(g.stallD)
		}
		g.slots <- struct{}{}
		defer func() { <-g.slots }()
		time.Sleep(g.hold)
	}
	g.h.ServeHTTP(w, r)
}

// testbed is the full process-shaped deployment: K primary shard
// servers and R replica mirrors per shard, every lookup surface behind
// its own capacity gate.
type testbed struct {
	n         int
	k         int
	primaries []string
	replicas  [][]string
	gates     [][]*capacityGate // [shard][member], member 0 = primary
	closers   []func()
}

func (tb *testbed) close() {
	for i := len(tb.closers) - 1; i >= 0; i-- {
		tb.closers[i]()
	}
}

// setStall arms/disarms stall injection on every member of one shard.
func (tb *testbed) setStall(s int, on bool) {
	for _, g := range tb.gates[s] {
		g.stall.Store(on)
	}
}

func buildTestbed(bench *lfr.Benchmark, k, replicasPer, slots int, hold time.Duration, c float64, seed int64) (*testbed, error) {
	g := bench.Graph
	pieces, err := shard.Split(g, k)
	if err != nil {
		return nil, err
	}
	tb := &testbed{n: g.N(), k: k}
	newGate := func(h http.Handler) *capacityGate {
		return &capacityGate{
			h: h, slots: make(chan struct{}, slots), hold: hold,
			stallP: 0.03, stallD: 150 * time.Millisecond,
		}
	}
	clientCfg := transport.ClientConfig{
		RequestTimeout:  2 * time.Second,
		SnapshotTimeout: 5 * time.Second,
		PollInterval:    10 * time.Millisecond,
	}
	for s := 0; s < k; s++ {
		w, err := shard.NewWorker(pieces[s], k, shard.Config{
			OCA:                  core.Options{Seed: seed, C: c},
			Debounce:             time.Millisecond,
			IncrementalThreshold: 0.5,
		}, g.N())
		if err != nil {
			tb.close()
			return nil, fmt.Errorf("shard %d worker: %w", s, err)
		}
		tb.closers = append(tb.closers, w.Close)
		ss := transport.NewShardServer(w, transport.ServerConfig{GlobalNodes: g.N(), MaxNodes: g.N()})
		pg := newGate(ss.Handler())
		ts := httptest.NewServer(pg)
		tb.closers = append(tb.closers, ts.Close)
		tb.primaries = append(tb.primaries, ts.URL)
		tb.gates = append(tb.gates, []*capacityGate{pg})

		var reps []string
		for r := 0; r < replicasPer; r++ {
			rs, err := transport.NewReplica(context.Background(), ts.URL, transport.ReplicaConfig{
				Client:         clientCfg,
				ConnectTimeout: 60 * time.Second,
			})
			if err != nil {
				tb.close()
				return nil, fmt.Errorf("shard %d replica %d: %w", s, r, err)
			}
			tb.closers = append(tb.closers, rs.Close)
			rg := newGate(rs.Handler())
			rts := httptest.NewServer(rg)
			tb.closers = append(tb.closers, rts.Close)
			reps = append(reps, rts.URL)
			tb.gates[s] = append(tb.gates[s], rg)
		}
		tb.replicas = append(tb.replicas, reps)
	}
	return tb, nil
}

// dialGroups dials the testbed with the given per-shard replica lists
// and hedge budget, returning the replica groups, a router for writes,
// and a closer.
func dialGroups(tb *testbed, replicas [][]string, hedgeFraction float64) ([]*transport.ReplicaGroup, *shard.Router, func(), error) {
	opt := transport.Options{
		Client: transport.ClientConfig{
			RequestTimeout:  2 * time.Second,
			SnapshotTimeout: 5 * time.Second,
			PollInterval:    10 * time.Millisecond,
		},
		ConnectTimeout: 60 * time.Second,
		Replicas:       replicas,
		Replication:    shard.ReplicaSetConfig{HedgeFraction: hedgeFraction},
	}
	backends, info, err := transport.DialBackends(context.Background(), tb.primaries, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	groups := make([]*transport.ReplicaGroup, len(backends))
	for i, b := range backends {
		grp, ok := b.(*transport.ReplicaGroup)
		if !ok {
			for _, bb := range backends {
				bb.Close()
			}
			return nil, nil, nil, fmt.Errorf("backend %d is %T, want ReplicaGroup", i, b)
		}
		groups[i] = grp
	}
	rt, err := shard.NewRouterBackends(backends, info.CurN, info.MaxNodes, 0)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, nil, nil, err
	}
	return groups, rt, rt.Close, nil
}

// monoCounters aggregate leg 3 across every load run.
type monoCounters struct {
	reads           atomic.Int64
	regressions     atomic.Int64
	floorChecks     atomic.Int64
	floorViolations atomic.Int64
	readErrors      atomic.Int64
}

type loadStats struct {
	Ops     int     `json:"ops"`
	QPS     float64 `json:"qps"`
	P50ms   float64 `json:"p50_ms"`
	P99ms   float64 `json:"p99_ms"`
	Errors  int64   `json:"errors"`
	Hedges  uint64  `json:"hedges"`
	HedgeW  uint64  `json:"hedge_wins"`
	Members int     `json:"members_per_shard"`
}

// runLoad drives a closed loop of readers (and optionally one writer
// with flush barriers) over the groups for the duration, tracking
// generation monotonicity per reader.
func runLoad(groups []*transport.ReplicaGroup, rt *shard.Router, readers int, dur time.Duration, writer bool, n int, mono *monoCounters) loadStats {
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		latMu    sync.Mutex
		allLats  []time.Duration
		totalOps atomic.Int64
	)
	startHedges, startWins := uint64(0), uint64(0)
	for _, g := range groups {
		st := g.ReplicaStats()
		startHedges += st.Hedges
		startWins += st.HedgeWins
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastGen := make([]uint64, len(groups))
			lats := make([]time.Duration, 0, 4096)
			for {
				select {
				case <-stop:
					latMu.Lock()
					allLats = append(allLats, lats...)
					latMu.Unlock()
					return
				default:
				}
				gi := rng.Intn(len(groups))
				ids := []int32{int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
				t0 := time.Now()
				resp, _, err := groups[gi].LookupAny(context.Background(), ids, false)
				if err != nil {
					mono.readErrors.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
				totalOps.Add(1)
				mono.reads.Add(1)
				if resp.Generation < lastGen[gi] {
					mono.regressions.Add(1)
				}
				if resp.Generation > lastGen[gi] {
					lastGen[gi] = resp.Generation
				}
			}
		}(int64(1000 + r))
	}
	if writer && rt != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(7))
			tick := time.NewTicker(40 * time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u == v {
					continue
				}
				if _, _, _, err := rt.Enqueue(context.Background(), [][2]int32{{u, v}}, nil); err != nil {
					continue
				}
				if i%4 != 3 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				vec, err := rt.Flush(ctx, nil)
				cancel()
				if err != nil {
					continue
				}
				// Flush-floor assertion: an immediate read through each
				// group must answer at or past its flushed generation.
				for gi, g := range groups {
					resp, _, err := g.LookupAny(context.Background(), []int32{int32(rng.Intn(n))}, false)
					mono.floorChecks.Add(1)
					if err != nil {
						mono.readErrors.Add(1)
						continue
					}
					if resp.Generation < vec[gi].Gen {
						mono.floorViolations.Add(1)
					}
				}
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()

	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	st := loadStats{
		Ops:     len(allLats),
		QPS:     float64(totalOps.Load()) / dur.Seconds(),
		Errors:  mono.readErrors.Load(),
		Members: 1,
	}
	if len(allLats) > 0 {
		st.P50ms = float64(allLats[len(allLats)/2].Microseconds()) / 1000
		st.P99ms = float64(allLats[len(allLats)*99/100].Microseconds()) / 1000
	}
	for _, g := range groups {
		s := g.ReplicaStats()
		st.Hedges += s.Hedges
		st.HedgeW += s.HedgeWins
		st.Members = len(s.Members)
	}
	st.Hedges -= startHedges
	st.HedgeW -= startWins
	return st
}

type benchReport struct {
	Nodes       int     `json:"nodes"`
	Edges       int64   `json:"edges"`
	Shards      int     `json:"shards"`
	ReplicasPer int     `json:"replicas_per_shard"`
	Slots       int     `json:"slots_per_member"`
	HoldMS      float64 `json:"service_time_ms"`
	Readers     int     `json:"readers"`
	Short       bool    `json:"short"`

	Baseline   loadStats `json:"baseline_kx1"`
	Replicated loadStats `json:"replicated_kx3"`
	Speedup    float64   `json:"read_speedup"`

	HedgeOff       loadStats `json:"stalled_hedge_off"`
	HedgeOn        loadStats `json:"stalled_hedge_on"`
	HedgeP99Ratio  float64   `json:"hedge_p99_improvement"`
	StallFraction  float64   `json:"stall_fraction"`
	StallMS        float64   `json:"stall_ms"`
	HedgeDelayMaxS string    `json:"hedge_delay_max"`

	MonoReads           int64 `json:"monotone_reads"`
	MonoRegressions     int64 `json:"generation_regressions"`
	FloorChecks         int64 `json:"flush_floor_checks"`
	FloorViolations     int64 `json:"flush_floor_violations"`
	ReadErrors          int64 `json:"read_errors"`
	GatesEnforced       bool  `json:"perf_gates_enforced"`
	GeneratedUnixMillis int64 `json:"generated_unix_ms"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replicabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replicabench", flag.ContinueOnError)
	n := fs.Int("n", 1200, "LFR graph size")
	out := fs.String("out", "BENCH_replica.json", "output report path")
	seed := fs.Int64("seed", 42, "randomness seed (graph + OCA)")
	readers := fs.Int("readers", 16, "closed-loop reader goroutines")
	slots := fs.Int("slots", 2, "lookup concurrency slots per member (capacity model)")
	hold := fs.Duration("hold", 4*time.Millisecond, "modeled lookup service time per slot")
	legDur := fs.Duration("dur", 3*time.Second, "duration of each load leg")
	short := fs.Bool("short", false, "CI smoke mode: small graph, short legs; monotonicity and hedge-fired gates enforced, latency ratios reported but not judged")
	minSpeedup := fs.Float64("min-speedup", 2, "fail unless replicated read throughput beats the K×1 baseline by this factor (ignored with -short)")
	minHedge := fs.Float64("min-hedge-improvement", 3, "fail unless hedging improves the stalled p99 by this factor (ignored with -short)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *short {
		*n = 400
		*legDur = 1200 * time.Millisecond
	}
	const k, replicasPer = 2, 2

	log.Printf("generating LFR graph n=%d", *n)
	bench, err := lfr.Generate(lfr.Params{
		N: *n, AvgDeg: 12, MaxDeg: 30, Mu: 0.02,
		MinCom: *n / 20, MaxCom: *n / 8, Seed: *seed,
	})
	if err != nil {
		return fmt.Errorf("lfr: %w", err)
	}
	c, err := spectral.C(bench.Graph, spectral.Options{})
	if err != nil {
		return fmt.Errorf("spectral.C: %w", err)
	}
	log.Printf("booting %d shards × (1 primary + %d replicas), %d slots × %v per member", k, replicasPer, *slots, *hold)
	tb, err := buildTestbed(bench, k, replicasPer, *slots, *hold, c, *seed)
	if err != nil {
		return err
	}
	defer tb.close()

	mono := &monoCounters{}
	report := benchReport{
		Nodes: bench.Graph.N(), Edges: bench.Graph.M(),
		Shards: k, ReplicasPer: replicasPer,
		Slots: *slots, HoldMS: float64(hold.Microseconds()) / 1000,
		Readers: *readers, Short: *short,
		StallFraction: 0.03, StallMS: 150,
		HedgeDelayMaxS:      "25ms",
		GatesEnforced:       !*short,
		GeneratedUnixMillis: time.Now().UnixMilli(),
	}

	// Leg 1a: K×1 baseline — same code path (single-member groups), so
	// the comparison isolates the extra members, not the routing layer.
	emptyLists := make([][]string, k)
	for i := range emptyLists {
		emptyLists[i] = nil
	}
	groups, rt, closeFn, err := dialGroups(tb, emptyLists, 0.05)
	if err != nil {
		return fmt.Errorf("dial baseline: %w", err)
	}
	log.Printf("leg 1a: K×1 mixed load for %v", *legDur)
	report.Baseline = runLoad(groups, rt, *readers, *legDur, true, tb.n, mono)
	closeFn()

	// Leg 1b: K×(1+R) replicated under the identical load.
	groups, rt, closeFn, err = dialGroups(tb, tb.replicas, 0.05)
	if err != nil {
		return fmt.Errorf("dial replicated: %w", err)
	}
	log.Printf("leg 1b: K×%d mixed load for %v", 1+replicasPer, *legDur)
	report.Replicated = runLoad(groups, rt, *readers, *legDur, true, tb.n, mono)
	closeFn()
	if report.Baseline.QPS > 0 {
		report.Speedup = report.Replicated.QPS / report.Baseline.QPS
	}

	// Leg 2: tail-at-scale stalls on shard 0's members; hedging off vs
	// on, reads restricted to the stalled shard.
	tb.setStall(0, true)
	groups, rt, closeFn, err = dialGroups(tb, tb.replicas, -1)
	if err != nil {
		return fmt.Errorf("dial hedge-off: %w", err)
	}
	log.Printf("leg 2a: stalled members, hedging disabled, %v", *legDur)
	report.HedgeOff = runLoad(groups[:1], rt, *readers/2, *legDur, false, tb.n, mono)
	closeFn()

	// A stalled request holds a slot for the full stall, so each stall
	// convoys several queued requests past the hedge delay; the budget
	// must cover the convoy, not just the 3% stall rate, or real stalls
	// lose hedges to their own victims.
	groups, rt, closeFn, err = dialGroups(tb, tb.replicas, 0.30)
	if err != nil {
		return fmt.Errorf("dial hedge-on: %w", err)
	}
	log.Printf("leg 2b: stalled members, hedging on, %v", *legDur)
	report.HedgeOn = runLoad(groups[:1], rt, *readers/2, *legDur, false, tb.n, mono)
	closeFn()
	tb.setStall(0, false)
	if report.HedgeOn.P99ms > 0 {
		report.HedgeP99Ratio = report.HedgeOff.P99ms / report.HedgeOn.P99ms
	}

	report.MonoReads = mono.reads.Load()
	report.MonoRegressions = mono.regressions.Load()
	report.FloorChecks = mono.floorChecks.Load()
	report.FloorViolations = mono.floorViolations.Load()
	report.ReadErrors = mono.readErrors.Load()

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("report written to %s", *out)
	log.Printf("throughput: K×1 %.0f qps (p99 %.1fms) → K×%d %.0f qps (p99 %.1fms), %.2fx",
		report.Baseline.QPS, report.Baseline.P99ms, 1+replicasPer,
		report.Replicated.QPS, report.Replicated.P99ms, report.Speedup)
	log.Printf("hedging: stalled p99 %.1fms → %.1fms (%.2fx, %d hedges / %d wins)",
		report.HedgeOff.P99ms, report.HedgeOn.P99ms, report.HedgeP99Ratio,
		report.HedgeOn.Hedges, report.HedgeOn.HedgeW)
	log.Printf("monotonicity: %d reads, %d regressions; %d floor checks, %d violations; %d read errors",
		report.MonoReads, report.MonoRegressions, report.FloorChecks, report.FloorViolations, report.ReadErrors)

	// Gates. Monotonicity and liveness always hold; the latency/ratio
	// gates are judged only in full mode.
	failed := false
	if report.MonoRegressions != 0 {
		log.Printf("GATE FAIL: %d generation regressions (want 0)", report.MonoRegressions)
		failed = true
	}
	if report.FloorViolations != 0 {
		log.Printf("GATE FAIL: %d flush-floor violations (want 0)", report.FloorViolations)
		failed = true
	}
	if report.ReadErrors != 0 {
		log.Printf("GATE FAIL: %d read errors (want 0)", report.ReadErrors)
		failed = true
	}
	if report.HedgeOn.Hedges == 0 {
		log.Printf("GATE FAIL: hedging leg fired no hedges")
		failed = true
	}
	if !*short {
		if report.Speedup < *minSpeedup {
			log.Printf("GATE FAIL: replicated read speedup %.2fx < %.1fx", report.Speedup, *minSpeedup)
			failed = true
		}
		if report.Replicated.P99ms > report.Baseline.P99ms*1.1 {
			log.Printf("GATE FAIL: replicated p99 %.1fms worse than baseline %.1fms", report.Replicated.P99ms, report.Baseline.P99ms)
			failed = true
		}
		if report.HedgeP99Ratio < *minHedge {
			log.Printf("GATE FAIL: hedge p99 improvement %.2fx < %.1fx", report.HedgeP99Ratio, *minHedge)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("gates failed (see log)")
	}
	log.Printf("all gates passed")
	return nil
}
