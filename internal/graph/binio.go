package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: magic, version, node count, directed-edge count, then
// the raw CSR arrays. Little-endian throughout. Reading is a single
// sequential pass, ~30× faster than the text edge list for the
// 10⁷-edge graphs of the scalability experiments.
var binMagic = [4]byte{'O', 'C', 'A', 'G'}

const binVersion = 1

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	header := []int64{binVersion, int64(g.N()), int64(len(g.adj))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary, validating the
// CSR invariants (monotone offsets, in-range sorted adjacency,
// symmetry is trusted) before constructing the graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	return ReadBinaryLimits(r, ReadLimits{})
}

// ReadBinaryLimits is ReadBinary with hard caps on the declared graph
// size, for parsing untrusted input with bounded memory.
func ReadBinaryLimits(r io.Reader, lim ReadLimits) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %v", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q, not a binary graph file", magic)
	}
	var version, n, halfEdges int64
	for _, p := range []*int64{&version, &n, &halfEdges} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %v", err)
		}
	}
	if version != binVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	const maxN = 1 << 31
	if n < 0 || n > maxN || halfEdges < 0 || halfEdges%2 != 0 {
		return nil, fmt.Errorf("graph: corrupt binary header (n=%d, half-edges=%d)", n, halfEdges)
	}
	if lim.MaxNodes > 0 && n > int64(lim.MaxNodes) {
		return nil, fmt.Errorf("graph: declared node count %d exceeds limit %d", n, lim.MaxNodes)
	}
	if lim.MaxEdges > 0 && halfEdges/2 > lim.MaxEdges {
		return nil, fmt.Errorf("graph: declared edge count %d exceeds limit %d", halfEdges/2, lim.MaxEdges)
	}
	// Read both arrays in chunks so a corrupt header claiming an absurd
	// length fails on the truncated stream instead of pre-allocating it.
	offsets, err := readInt64Chunked(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %v", err)
	}
	adj, err := readInt32Chunked(br, halfEdges)
	if err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %v", err)
	}
	// Validate CSR invariants.
	if offsets[0] != 0 || offsets[n] != halfEdges {
		return nil, fmt.Errorf("graph: corrupt offsets (first=%d, last=%d, want 0, %d)", offsets[0], offsets[n], halfEdges)
	}
	// Validate all offsets before slicing with any of them: a corrupt
	// intermediate offset can be monotone so far yet far beyond len(adj),
	// and slicing with it would panic before the check reached it.
	for v := int64(0); v < n; v++ {
		if offsets[v] > offsets[v+1] || offsets[v+1] > halfEdges {
			return nil, fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
	}
	for v := int64(0); v < n; v++ {
		list := adj[offsets[v]:offsets[v+1]]
		for i, w := range list {
			if w < 0 || int64(w) >= n {
				return nil, fmt.Errorf("graph: adjacency of node %d out of range: %d", v, w)
			}
			if i > 0 && list[i-1] >= w {
				return nil, fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
		}
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}

const readChunk = 1 << 20 // entries per chunked read

func readInt64Chunked(r io.Reader, total int64) ([]int64, error) {
	out := make([]int64, 0, min64(total, readChunk))
	buf := make([]int64, readChunk)
	for int64(len(out)) < total {
		want := total - int64(len(out))
		if want > readChunk {
			want = readChunk
		}
		chunk := buf[:want]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt32Chunked(r io.Reader, total int64) ([]int32, error) {
	out := make([]int32, 0, min64(total, readChunk))
	buf := make([]int32, readChunk)
	for int64(len(out)) < total {
		want := total - int64(len(out))
		if want > readChunk {
			want = readChunk
		}
		chunk := buf[:want]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ReadAuto detects the format (binary magic vs text edge list) and
// parses accordingly.
func ReadAuto(r io.Reader) (*Graph, error) {
	return ReadAutoLimits(r, ReadLimits{})
}

// ReadAutoLimits is ReadAuto with hard caps on the declared graph size.
func ReadAutoLimits(r io.Reader, lim ReadLimits) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && [4]byte(head) == binMagic {
		return ReadBinaryLimits(br, lim)
	}
	return ReadEdgeListLimits(br, lim)
}
