// Package server implements the HTTP query service behind the ocad
// daemon: the paper's community *search* served interactively over a
// graph that may keep changing. It loads a graph, computes (or is
// handed) an overlapping community cover, builds the inverted
// node→community index, and answers
//
//	GET  /healthz                    liveness + refresh state (never blocks)
//	GET  /v1/cover/stats             cover-wide overlap statistics
//	GET  /v1/cover/export            NDJSON streaming bulk export
//	GET  /v1/node/{id}/communities   membership lookup via the index
//	POST /v1/nodes/communities       batch lookup, one snapshot for all ids
//	POST /v1/search                  on-demand seeded community search
//	POST /v1/edges                   queue graph mutations for refresh
//
// The served state lives in a generation-numbered immutable
// refresh.Snapshot behind an atomic pointer: every handler loads the
// snapshot once and answers the whole request from it, so any number of
// concurrent readers proceed lock-free and each response is internally
// consistent with exactly one generation. Mutations posted to /v1/edges
// are queued to a background refresh.Worker that rebuilds the graph
// copy-on-write, re-runs OCA (warm-started from unaffected communities)
// and publishes the next generation — readers never block on a rebuild.
// Seeded searches draw reusable search.State buffers from a bounded
// pool (capped at SearchWorkers in-flight searches); states bound to a
// superseded graph generation are replaced lazily at checkout. Search
// results are additionally memoized in a generation-keyed LRU cache
// with singleflight coalescing and publish-time carry-forward (see
// cache.go), so hot seeds answer without consuming pool workers.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/refresh"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/shard"
	"repro/internal/spectral"
)

// Config tunes a Server. The zero value serves with the paper's OCA
// defaults, an eagerly built cover, GOMAXPROCS search workers and a
// 30-second request deadline.
type Config struct {
	// OCA configures the batch run that builds the served cover and
	// supplies defaults (c, neighbor probability, step caps) for
	// per-request searches and background refresh re-runs.
	OCA core.Options
	// Lazy delays the OCA run until the first request that needs the
	// cover; /healthz and /v1/search never wait for a lazy cover.
	Lazy bool
	// SearchWorkers bounds concurrent /v1/search searches; each worker
	// owns one reusable search.State. Default runtime.GOMAXPROCS(0).
	SearchWorkers int
	// RequestTimeout is the per-request deadline enforced by Handler.
	// Default 30s.
	RequestTimeout time.Duration
	// MaxRequestBody caps the /v1/search, /v1/edges and batch-lookup
	// body sizes. Default 1 MiB.
	MaxRequestBody int64
	// MaxBatchIDs caps ids answered per batch lookup; longer requests
	// are clamped (and flagged), not rejected. Default 10000.
	MaxBatchIDs int
	// RefreshDebounce is how long queued mutations coalesce before a
	// rebuild. Default 50ms (refresh.Config's default).
	RefreshDebounce time.Duration
	// MaxPendingMutations caps the refresh backlog; /v1/edges sheds
	// load with 503 beyond it. Default 1<<20 operations.
	MaxPendingMutations int
	// DisableWarmStart forces cold OCA re-runs on refresh instead of
	// carrying communities untouched by the mutations.
	DisableWarmStart bool
	// Shards partitions the graph and cover across K node-disjoint
	// shards behind a fan-out router (modulo-K node assignment, ghost
	// halos for boundary neighborhoods, one refresh worker per shard).
	// Values below 2 serve the original single-snapshot path. Sharding
	// is incompatible with Lazy and with precomputed covers.
	Shards int
	// MaxNodes, when larger than the graph, lets POST /v1/edges grow
	// the node set: an added edge naming an id in [N, MaxNodes) extends
	// the graph at the next rebuild. 0 keeps the node set fixed.
	MaxNodes int
	// RederiveCAfter re-derives c = -1/λmin during a rebuild once the
	// cumulative applied mutations exceed this fraction of the graph's
	// edges (per shard when sharded). 0 pins the startup value. Ignored
	// when OCA.C pins c explicitly.
	RederiveCAfter float64
	// IncrementalThreshold enables the dirty-region rebuild engine
	// (refresh.Config.IncrementalThreshold): mutation batches touching
	// at most this fraction of the served communities rebuild
	// incrementally (or skip OCA entirely when they touch none). 0 —
	// the default — keeps every rebuild on the full path. Per shard
	// when sharded.
	IncrementalThreshold float64
	// Persist, when set, makes the served state durable: every accepted
	// /v1/edges batch is logged to the store's WAL before it is
	// acknowledged, published generations append publish markers (and
	// periodically seal snapshot segments), the startup snapshot is
	// sealed so the WAL always replays onto something, and Close seals a
	// final segment so a clean restart recovers without replay. The
	// caller owns the store's lifecycle: Open (and Load/ReplaySingle for
	// recovery) before constructing the server, Close after Server.Close.
	// Unsupported with in-process sharding (Shards > 1) and the
	// provider-backed router role — per-shard durability lives in the
	// shard server processes.
	Persist *persist.Store
	// SearchCacheSize bounds the generation-keyed /v1/search result
	// cache, in entries. 0 means the default (4096); negative disables
	// caching entirely — every request then runs its own search and no
	// singleflight coalescing happens.
	SearchCacheSize int
	// SearchCacheRho is the ρ-similarity floor for the cache's
	// carry-forward spot checks: on an incremental or fastpath publish,
	// carried entries are validated by recomputing a sample fresh and
	// comparing with metrics.Rho; below the floor the carry is dropped.
	// 0 means the default (0.95); values above 1 clamp to 1.
	SearchCacheRho float64
}

// Server answers community-search queries over one evolving graph.
// Construct with New or NewWithCover; all methods are safe for
// concurrent use. Call Close to stop the background refresh worker.
type Server struct {
	g       *graph.Graph // construction-time graph (generation 1's base)
	cfg     Config
	maxDeg  int
	stepCap int // ceiling on per-request search step budgets

	// pool bounds in-flight searches at SearchWorkers; each checkout
	// keeps one reusable state per shard, so interleaved searches across
	// shards don't thrash the O(n)-to-build buffers (slots start nil
	// and are allocated on first use). Slots are generation-stamped:
	// graph-pointer identity alone cannot tell a state built for a
	// superseded generation apart when a publish reuses the graph (the
	// lazy gen-0 → gen-1 case), so checkout compares both.
	pool      chan []poolSlot
	poolWidth int          // states per checkout: one per shard
	streams   atomic.Int64 // rng stream counter for unseeded searches

	// cache is the generation-keyed seeded-search result cache with
	// singleflight coalescing (nil when disabled by config).
	cache *searchCache

	cOnce  sync.Once
	cErr   error
	cReady atomic.Bool
	c      float64 // inner-product parameter used for searches

	coverOnce  sync.Once
	coverReady atomic.Bool
	coverErr   error
	worker     *refresh.Worker
	preloaded  bool
	preCv      *cover.Cover
	restored   *refresh.Snapshot // recovered pre-shutdown state (NewWithSnapshot)

	// persistErr holds the last asynchronous persistence failure (a
	// publish marker or segment write from the worker goroutine, where
	// there is no request to fail); /healthz surfaces it and flips the
	// status to degraded. WAL append failures are synchronous and reject
	// the batch instead.
	persistErr atomic.Value // string

	// sp is the seam every handler resolves snapshots through; multi is
	// set when it fans out across shards (in-process router or remote
	// transport provider) and selects the sharded response shapes.
	sp      SnapshotProvider
	multi   bool
	metrics *httpMetrics

	closeMu sync.Mutex
	closed  bool
}

// New returns a Server that obtains its cover by running OCA on g —
// at construction unless cfg.Lazy is set. With cfg.Shards > 1 the
// graph is partitioned and every shard's cover is built eagerly.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if cfg.Shards > 1 {
		return newSharded(g, cfg)
	}
	s := newServer(g, cfg)
	if cfg.OCA.C != 0 {
		// Validate an explicit c up front even when lazy — it's free,
		// and a bad value would otherwise surface as a 500 on every
		// request instead of a launch failure.
		if err := s.ensureC(); err != nil {
			return nil, err
		}
	}
	if !cfg.Lazy {
		if err := s.ensureCover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newSharded builds the fan-out topology: a shard.Router owning one
// refresh worker per shard, with the Server reduced to the HTTP layer
// in front of it.
func newSharded(g *graph.Graph, cfg Config) (*Server, error) {
	if cfg.Lazy {
		return nil, fmt.Errorf("server: lazy cover builds are not supported with %d shards", cfg.Shards)
	}
	if cfg.Persist != nil {
		// In-process sharding routes mutations through Router.Apply, which
		// grows each shard's translation table out of band — growth the WAL
		// cannot replay. Durability is a shard-server deployment feature.
		return nil, fmt.Errorf("server: persistence is not supported with %d in-process shards; run shard servers with their own data directories", cfg.Shards)
	}
	s := newServer(g, cfg)
	rcfg := shard.Config{
		OCA:                  cfg.OCA,
		DisableWarmStart:     cfg.DisableWarmStart,
		Debounce:             cfg.RefreshDebounce,
		MaxPending:           cfg.MaxPendingMutations,
		MaxNodes:             cfg.MaxNodes,
		RederiveCAfter:       cfg.RederiveCAfter,
		IncrementalThreshold: cfg.IncrementalThreshold,
	}
	if cfg.OCA.C != 0 {
		// An explicitly pinned c is never re-derived behind the
		// operator's back.
		rcfg.RederiveCAfter = 0
	}
	if s.cache != nil {
		// Each shard worker announces its publishes so the cache can
		// prune that shard's superseded entries and carry survivors
		// forward across incremental rebuilds.
		rcfg.OnSwap = func(shardID int, sn *refresh.Snapshot) {
			s.cache.carryForward(shardID, sn, s.cacheSpotCheck(shardID, sn))
		}
	}
	rt, err := shard.NewRouter(g, cfg.Shards, rcfg)
	if err != nil {
		return nil, fmt.Errorf("server: building shard router: %w", err)
	}
	s.sp = rt
	s.multi = true
	return s, nil
}

// NewWithProvider returns a Server that fronts an externally
// constructed SnapshotProvider — the multi-process router role, where
// transport.Dial assembled a shard.Router over remote shard backends.
// The server owns no graph or worker of its own: every request
// resolves through the provider, and Close closes it (stopping mirror
// pollers; the shard processes keep running).
func NewWithProvider(sp SnapshotProvider, cfg Config) (*Server, error) {
	if sp == nil {
		return nil, errors.New("server: nil provider")
	}
	if cfg.Persist != nil {
		return nil, errors.New("server: persistence belongs on the shard servers, not the router role")
	}
	cfg.Shards = sp.NumShards()
	s := newServer(nil, cfg)
	s.sp = sp
	s.multi = true
	return s, nil
}

// sharded reports whether this server fans out across shards.
func (s *Server) sharded() bool { return s.multi }

// NewWithCover returns a Server that serves a precomputed cover (for
// example one loaded from an oca-run output file) instead of running
// OCA itself. The inner-product parameter for /v1/search is still
// cfg.OCA.C, or derived from the spectrum — lazily, on the first
// request that needs it, so serving a precomputed cover never pays for
// a whole-graph eigenvalue computation at startup. Mutations posted to
// /v1/edges re-run OCA, replacing the preloaded cover from the second
// generation on.
func NewWithCover(g *graph.Graph, cv *cover.Cover, cfg Config) (*Server, error) {
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("server: precomputed covers are not supported with %d shards (partitioning a cover loses boundary context)", cfg.Shards)
	}
	s := newServer(g, cfg)
	s.preloaded = true
	s.preCv = cv
	// Fail fast on a cover/graph mismatch: index.Build would silently
	// drop out-of-range members, serving member lists whose own lookups
	// 404 and stats where coverage exceeds 1.
	for ci, c := range cv.Communities {
		for _, v := range c {
			if v < 0 || int(v) >= g.N() {
				return nil, fmt.Errorf("server: cover community %d contains node %d outside graph range [0, %d)", ci, v, g.N())
			}
		}
	}
	if cfg.OCA.C != 0 {
		// An explicit override is validated up front (it's free).
		if err := s.ensureC(); err != nil {
			return nil, err
		}
	}
	if err := s.ensureCover(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewWithSnapshot returns a Server that serves an already-built
// snapshot — the recovery path: persist.ReplaySingle hands back the
// pre-shutdown state and the server starts from it without an OCA run.
// Generation and sequence numbering continue from the snapshot's own,
// so the restart is invisible to generation-tracking clients. The
// snapshot's inner-product parameter is reused for searches unless
// cfg.OCA.C overrides it explicitly.
func NewWithSnapshot(snap *refresh.Snapshot, cfg Config) (*Server, error) {
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("server: recovered snapshots are not supported with %d in-process shards", cfg.Shards)
	}
	if snap == nil || snap.Graph == nil || snap.Cover == nil {
		return nil, errors.New("server: nil or incomplete snapshot")
	}
	s := newServer(snap.Graph, cfg)
	s.restored = snap
	if cfg.OCA.C != 0 {
		if err := s.ensureC(); err != nil {
			return nil, err
		}
	} else if snap.C != 0 {
		// The snapshot carries the c it was built with; restarting must
		// not re-derive the spectrum (and must answer searches with the
		// same parameter the served cover was computed under).
		s.cOnce.Do(func() {
			s.c = snap.C
			s.cReady.Store(true)
		})
	}
	if err := s.ensureCover(); err != nil {
		return nil, err
	}
	return s, nil
}

func newServer(g *graph.Graph, cfg Config) *Server {
	if cfg.SearchWorkers <= 0 {
		cfg.SearchWorkers = defaultWorkers()
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxRequestBody <= 0 {
		cfg.MaxRequestBody = 1 << 20
	}
	if cfg.MaxBatchIDs <= 0 {
		cfg.MaxBatchIDs = 10000
	}
	s := &Server{g: g, cfg: cfg}
	if g != nil {
		// g is nil only on the provider-backed router role, where every
		// handler resolves through the sharded provider paths and the
		// single-graph fields stay unused.
		s.maxDeg = g.MaxDegree()
	}
	// Requests may lower the step budget but never raise it past the
	// server's own cap: searches are not context-cancellable, so a giant
	// finite budget would hold a pool worker past the deadline just like
	// a negative ("unlimited") one.
	s.stepCap = cfg.OCA.MaxSteps
	if s.stepCap <= 0 {
		s.stepCap = 100000 // core's MaxSteps default
	}
	// Pool slots start nil; states are allocated on first checkout so a
	// lookup-only deployment never pays for SearchWorkers × O(maxDegree)
	// queue buffers.
	s.poolWidth = cfg.Shards
	if s.poolWidth < 1 {
		s.poolWidth = 1
	}
	s.pool = make(chan []poolSlot, cfg.SearchWorkers)
	for i := 0; i < cfg.SearchWorkers; i++ {
		s.pool <- nil
	}
	if cfg.SearchCacheSize >= 0 {
		size := cfg.SearchCacheSize
		if size == 0 {
			size = defaultSearchCacheSize
		}
		rho := cfg.SearchCacheRho
		if rho == 0 {
			rho = defaultSearchCacheRho
		}
		if rho > 1 {
			rho = 1
		}
		s.cache = newSearchCache(size, rho)
	}
	s.sp = singleProvider{s}
	s.metrics = newHTTPMetrics()
	return s
}

func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// ensureC resolves the inner-product parameter exactly once: the
// configured override, or -1/λmin from the power method over the
// construction-time graph. It is separate from ensureCover so a lazy
// server can answer /v1/search without first paying for a full OCA run.
func (s *Server) ensureC() error {
	s.cOnce.Do(func() {
		if c := s.cfg.OCA.C; c != 0 {
			if c < 0 || c >= 1 {
				s.cErr = fmt.Errorf("server: c=%g out of range (0, 1)", c)
				return
			}
			s.c = c
			s.cReady.Store(true)
			return
		}
		c, err := spectral.C(s.g, s.cfg.OCA.Spectral)
		if err != nil {
			s.cErr = fmt.Errorf("server: computing c: %w", err)
			return
		}
		s.c = c
		s.cReady.Store(true)
	})
	return s.cErr
}

// ensureCover builds the first snapshot and starts the refresh worker,
// exactly once.
func (s *Server) ensureCover() error {
	s.coverOnce.Do(func() {
		start := time.Now()
		var snap *refresh.Snapshot
		switch {
		case s.restored != nil:
			// Recovery: the snapshot arrives fully built (segment load +
			// WAL replay); there is nothing to compute.
			snap = s.restored
		case s.preloaded:
			// A preloaded cover does not need c; deriving it stays
			// deferred to the first /v1/search or stats request.
			var snapC float64
			if s.cReady.Load() {
				snapC = s.c
			}
			snap = refresh.NewSnapshot(s.g, s.preCv, nil, snapC, time.Since(start))
		default:
			if s.coverErr = s.ensureC(); s.coverErr != nil {
				return
			}
			opt := s.cfg.OCA
			opt.C = s.c // single source of truth for the parameter
			var res *core.Result
			res, s.coverErr = core.Run(s.g, opt)
			if s.coverErr != nil {
				return
			}
			snap = refresh.NewSnapshot(s.g, res.Cover, res, s.c, time.Since(start))
		}
		opt := s.cfg.OCA
		if s.cReady.Load() {
			// Pin the resolved c for rebuilds: re-deriving the spectrum
			// per mutation batch would dominate refresh cost, and edge
			// churn moves λmin only marginally. A preloaded cover with
			// no resolved c leaves OCA.C = 0, so the first rebuild
			// derives it from the then-current graph.
			opt.C = s.c
		}
		rederive := s.cfg.RederiveCAfter
		if s.cfg.OCA.C != 0 {
			// An explicitly pinned c is never re-derived behind the
			// operator's back.
			rederive = 0
		}
		rcfg := refresh.Config{
			OCA:                  opt,
			DisableWarmStart:     s.cfg.DisableWarmStart,
			Debounce:             s.cfg.RefreshDebounce,
			MaxPending:           s.cfg.MaxPendingMutations,
			MaxNodes:             s.cfg.MaxNodes,
			RederiveCAfter:       rederive,
			IncrementalThreshold: s.cfg.IncrementalThreshold,
		}
		if p := s.cfg.Persist; p != nil {
			if snap.Gen == 0 {
				snap.Gen = 1 // the normalization refresh.New would apply
			}
			// Seal the startup snapshot first so the WAL always has a
			// segment to replay onto (a no-op when a clean shutdown already
			// sealed this generation), then start the live WAL at its
			// generation. Only then may mutations be accepted.
			if s.coverErr = p.Seal(snap, nil); s.coverErr != nil {
				s.coverErr = fmt.Errorf("server: sealing startup segment: %w", s.coverErr)
				return
			}
			if s.coverErr = p.Begin(snap.Gen); s.coverErr != nil {
				return
			}
			rcfg.LogBatch = p.LogBatch
			rcfg.OnSwap = func(sn *refresh.Snapshot) {
				if err := p.OnPublish(sn, nil); err != nil {
					// Publishing proceeds — readers keep getting fresh
					// state — but the durability gap is surfaced loudly on
					// /healthz rather than swallowed.
					s.persistErr.Store(err.Error())
				}
			}
		}
		if s.cache != nil {
			// Chain after the persistence hook: durability markers first,
			// then cache maintenance (prune superseded generations, carry
			// survivors across incremental publishes).
			prev := rcfg.OnSwap
			rcfg.OnSwap = func(sn *refresh.Snapshot) {
				if prev != nil {
					prev(sn)
				}
				s.cache.carryForward(0, sn, s.cacheSpotCheck(0, sn))
			}
		}
		w := refresh.New(snap, rcfg)
		s.closeMu.Lock()
		s.worker = w
		closed := s.closed
		s.closeMu.Unlock()
		if closed {
			w.Close()
		} else {
			w.Start()
		}
		s.coverReady.Store(true)
	})
	return s.coverErr
}

// snapshot returns the current generation, building the first one on
// demand. The caller must answer its whole request from the returned
// snapshot.
func (s *Server) snapshot() (*refresh.Snapshot, error) {
	if err := s.ensureCover(); err != nil {
		return nil, err
	}
	return s.worker.Snapshot(), nil
}

// Close stops the background refresh worker(s) and drops queued
// mutations. Read endpoints keep serving the last published snapshot;
// /v1/edges fails afterwards. Safe to call multiple times.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	w := s.worker
	s.closeMu.Unlock()
	if w != nil {
		w.Close()
	}
	if s.sp != nil {
		s.sp.Close()
	}
	if p := s.cfg.Persist; p != nil && w != nil && s.coverReady.Load() {
		// Clean shutdown: seal the final snapshot so the next start
		// recovers with a pure segment load, no WAL replay. The worker is
		// already stopped, so this snapshot is final. Failures only cost
		// the next start a replay; surface them like async persist errors.
		if err := p.Seal(w.Snapshot(), nil); err != nil {
			s.persistErr.Store(err.Error())
		}
	}
}

// lastPersistError returns the last asynchronous persistence failure
// ("" when persistence is healthy or disabled).
func (s *Server) lastPersistError() string {
	if v, ok := s.persistErr.Load().(string); ok {
		return v
	}
	return ""
}

// C returns the inner-product parameter the server searches with.
func (s *Server) C() (float64, error) {
	if err := s.ensureC(); err != nil {
		return 0, err
	}
	return s.c, nil
}

// Cover returns the currently served cover, forcing a lazy build if
// necessary. The returned cover must not be mutated. On a sharded
// server there is no single global cover — use Views via the HTTP API
// instead — so Cover returns an error.
func (s *Server) Cover() (*cover.Cover, error) {
	if s.sharded() {
		return nil, fmt.Errorf("server: no single cover with %d shards; covers are per shard", s.sp.NumShards())
	}
	snap, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Cover, nil
}

// Generation returns the currently served snapshot generation (0 until
// the first cover is built; the highest shard generation when sharded).
func (s *Server) Generation() uint64 {
	if s.sharded() {
		views, _ := s.sp.Views()
		var max uint64
		for _, v := range views {
			if v.Snap != nil && v.Snap.Gen > max {
				max = v.Snap.Gen
			}
		}
		return max
	}
	if !s.coverReady.Load() {
		return 0
	}
	return s.worker.Snapshot().Gen
}

// route is one entry of the serving mux: the registration pattern plus
// how it is mounted (instrumented behind the request deadline, or
// streaming outside it).
type route struct {
	pattern    string
	handler    func(*Server) http.HandlerFunc
	streaming  bool // mounted outside the TimeoutHandler (NDJSON export)
	bareMetric bool // not instrumented (the metrics endpoint itself)
}

// routeTable is the manifest of every route Handler registers. Routes
// derives the public list docs/PROTOCOL.md must stay in sync with;
// Handler registers exactly these patterns, so manifest and mux cannot
// drift apart.
var routeTable = []route{
	{pattern: "GET /healthz", handler: func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{pattern: "GET /v1/cover/stats", handler: func(s *Server) http.HandlerFunc { return s.handleStats }},
	{pattern: "GET /v1/cover/export", handler: func(s *Server) http.HandlerFunc { return s.handleExport }, streaming: true},
	{pattern: "GET /v1/node/{id}/communities", handler: func(s *Server) http.HandlerFunc { return s.handleNodeCommunities }},
	{pattern: "POST /v1/nodes/communities", handler: func(s *Server) http.HandlerFunc { return s.handleBatchCommunities }},
	{pattern: "POST /v1/search", handler: func(s *Server) http.HandlerFunc { return s.handleSearch }},
	{pattern: "POST /v1/edges", handler: func(s *Server) http.HandlerFunc { return s.handleEdges }},
	// Mounted outside the TimeoutHandler: a slice transfer may
	// legitimately outlast the read-path request deadline, and cutting
	// it at the deadline would force a needless abort.
	{pattern: "POST /v1/admin/rebalance", handler: func(s *Server) http.HandlerFunc { return s.handleRebalance }, streaming: true},
	{pattern: "POST /v1/admin/halo-refresh", handler: func(s *Server) http.HandlerFunc { return s.handleHaloRefresh }, streaming: true},
	{pattern: "GET /debug/metrics", handler: func(s *Server) http.HandlerFunc { return s.handleDebugMetrics }, bareMetric: true},
}

// Routes returns every (method, pattern) the service registers — the
// public API manifest the documentation sync test compares against
// docs/PROTOCOL.md.
func Routes() []string {
	out := make([]string, len(routeTable))
	for i, rt := range routeTable {
		out[i] = rt.pattern
	}
	return out
}

// Handler returns the service's http.Handler: all routes wrapped with
// per-endpoint request metrics and the per-request deadline, except
// the NDJSON export, which streams (http.TimeoutHandler buffers whole
// responses, so it would turn the export into a giant in-memory blob
// and defeat mid-stream backpressure).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	root := http.NewServeMux()
	for _, rt := range routeTable {
		h := rt.handler(s)
		switch {
		case rt.streaming:
			root.HandleFunc(rt.pattern, s.metrics.instrument(rt.pattern, h))
		case rt.bareMetric:
			mux.HandleFunc(rt.pattern, h)
		default:
			mux.HandleFunc(rt.pattern, s.metrics.instrument(rt.pattern, h))
		}
	}
	th := http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	root.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// TimeoutHandler writes its timeout body with no Content-Type;
		// pre-setting it here keeps error responses uniformly JSON (the
		// handlers overwrite the header on every non-timeout path).
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	}))
	return root
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status     string `json:"status"`
	Nodes      int    `json:"nodes"`
	Edges      int64  `json:"edges"`
	CoverReady bool   `json:"cover_ready"`
	// Generation is the served snapshot's generation (0 until built).
	Generation uint64 `json:"generation"`
	// PendingMutations counts queued edge mutations not yet reflected
	// in any snapshot; with Rebuilding it is the staleness signal.
	PendingMutations int  `json:"pending_mutations"`
	Rebuilding       bool `json:"rebuilding"`
	// SnapshotAgeMillis is how long ago the served generation was
	// published.
	SnapshotAgeMillis int64 `json:"snapshot_age_millis"`
	// LastRebuildMillis is the build duration of the served generation.
	LastRebuildMillis int64  `json:"last_rebuild_millis"`
	LastRefreshError  string `json:"last_refresh_error,omitempty"`
	// Epoch (sharded servers only) is the partition-map epoch the
	// router currently routes under; Rebalance carries the migration
	// counters. Both absent on providers that cannot rebalance.
	Epoch     uint64                 `json:"epoch,omitempty"`
	Rebalance *shard.RebalanceStatus `json:"rebalance,omitempty"`
	// Shards (sharded servers only) is the per-shard state vector.
	Shards []healthShard `json:"shards,omitempty"`
	// Requests summarizes per-endpoint traffic (full histograms at
	// GET /debug/metrics).
	Requests *requestsSummary `json:"requests,omitempty"`
	// Persistence (servers with a data directory only) is the durability
	// state: retained segments, the live WAL, and what startup recovery
	// found. A non-empty LastPersistError (an async publish-marker or
	// segment-write failure) flips Status to "degraded".
	Persistence      *persist.Stats `json:"persistence,omitempty"`
	LastPersistError string         `json:"last_persist_error,omitempty"`
	// SearchCache summarizes the seeded-search result cache: occupancy
	// and the hit/coalesce/carry-forward counters (absent when caching
	// is disabled). The same counters are exported by /debug/metrics.
	SearchCache *searchCacheStats `json:"search_cache,omitempty"`
}

// healthShard is one shard's entry in the /healthz vector. Nodes and
// Edges count what the shard owns (ghost halos excluded), so they sum
// to the global dimensions. Error marks the shard degraded: its
// backend is unreachable and the other fields describe its last
// mirrored state.
type healthShard struct {
	Shard             int     `json:"shard"`
	Generation        uint64  `json:"generation"`
	Nodes             int     `json:"nodes"`
	Edges             int64   `json:"edges"`
	C                 float64 `json:"c,omitempty"`
	PendingMutations  int     `json:"pending_mutations"`
	Rebuilding        bool    `json:"rebuilding"`
	SnapshotAgeMillis int64   `json:"snapshot_age_millis"`
	LastRebuildMillis int64   `json:"last_rebuild_millis"`
	LastRefreshError  string  `json:"last_refresh_error,omitempty"`
	Error             string  `json:"error,omitempty"`
	// Replicas (replicated routers only) is the shard's replica-set
	// member vector: per-member generation, lag, load and health.
	Replicas []shard.ReplicaStat `json:"replicas,omitempty"`
	// Resilience (remote backends only) is the shard's breaker/retry/
	// deadline counter block; replicated shards aggregate their members.
	Resilience *resilience.Stats `json:"resilience,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.sharded() {
		s.handleHealthzSharded(w)
		return
	}
	resp := healthzResponse{
		Status:     "ok",
		Nodes:      s.g.N(),
		Edges:      s.g.M(),
		CoverReady: s.coverReady.Load(),
		Requests:   s.metrics.summary(),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		resp.SearchCache = &cs
	}
	if p := s.cfg.Persist; p != nil {
		st := p.Stats()
		resp.Persistence = &st
		if resp.LastPersistError = s.lastPersistError(); resp.LastPersistError != "" {
			resp.Status = "degraded"
		}
	}
	if resp.CoverReady {
		// Report the *served* graph — mutations change the edge count
		// across generations — with every snapshot-derived field read
		// from ONE snapshot load, so a swap between loads cannot pair
		// generation N with generation N+1's dimensions. Status supplies
		// only the queue-side fields, which belong to no generation.
		snap := s.worker.Snapshot()
		st := s.worker.Status()
		resp.Nodes = snap.Graph.N()
		resp.Edges = snap.Graph.M()
		resp.Generation = snap.Gen
		resp.PendingMutations = st.Pending
		resp.Rebuilding = st.Rebuilding
		resp.SnapshotAgeMillis = time.Since(snap.BuiltAt).Milliseconds()
		resp.LastRebuildMillis = snap.BuildTime.Milliseconds()
		resp.LastRefreshError = st.LastErr
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthzSharded aggregates every shard's snapshot and worker
// status into one liveness view plus the per-shard vector. Each shard
// contributes one atomic snapshot (or mirror) load; nothing blocks on
// rebuilds. Any degraded shard flips the top-level status to
// "degraded" with the transport error on that shard's entry.
func (s *Server) handleHealthzSharded(w http.ResponseWriter) {
	views, _ := s.sp.Views()
	statuses := s.sp.Statuses()
	var reps []*shard.ReplicaSetStats
	if rp, ok := s.sp.(interface {
		ReplicaStats() []*shard.ReplicaSetStats
	}); ok {
		reps = rp.ReplicaStats()
	}
	var res []*resilience.Stats
	if rp, ok := s.sp.(interface {
		ResilienceStats() []*resilience.Stats
	}); ok {
		res = rp.ResilienceStats()
	}
	resp := healthzResponse{
		Status:     "ok",
		CoverReady: true,
		Requests:   s.metrics.summary(),
		Shards:     make([]healthShard, len(views)),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		resp.SearchCache = &cs
	}
	if rb, ok := s.sp.(Rebalancer); ok {
		st := rb.RebalanceStatus()
		resp.Epoch = st.Epoch
		resp.Rebalance = &st
	}
	for i, v := range views {
		if v.Err != nil {
			resp.Status = "degraded"
		}
		snap, meta := v.Snap, v.Meta()
		if snap == nil || meta == nil {
			hs := healthShard{Shard: v.Shard, Error: errString(v.Err)}
			if i < len(reps) && reps[i] != nil {
				hs.Replicas = reps[i].Members
			}
			if i < len(res) {
				hs.Resilience = res[i]
			}
			resp.Shards[i] = hs
			if resp.LastRefreshError == "" && v.Err != nil {
				resp.LastRefreshError = fmt.Sprintf("shard %d: %v", v.Shard, v.Err)
			}
			continue
		}
		st := statuses[i].Status
		hs := healthShard{
			Shard:             v.Shard,
			Generation:        snap.Gen,
			Nodes:             meta.OwnedNodes,
			Edges:             meta.OwnedEdges,
			C:                 snap.C,
			PendingMutations:  st.Pending,
			Rebuilding:        st.Rebuilding,
			SnapshotAgeMillis: time.Since(snap.BuiltAt).Milliseconds(),
			LastRebuildMillis: snap.BuildTime.Milliseconds(),
			LastRefreshError:  st.LastErr,
			Error:             errString(v.Err),
		}
		if i < len(reps) && reps[i] != nil {
			hs.Replicas = reps[i].Members
		}
		if i < len(res) {
			hs.Resilience = res[i]
		}
		resp.Shards[i] = hs
		resp.Nodes += hs.Nodes
		resp.Edges += hs.Edges
		if hs.Generation > resp.Generation {
			resp.Generation = hs.Generation
		}
		resp.PendingMutations += hs.PendingMutations
		resp.Rebuilding = resp.Rebuilding || hs.Rebuilding
		if hs.SnapshotAgeMillis > resp.SnapshotAgeMillis {
			resp.SnapshotAgeMillis = hs.SnapshotAgeMillis
		}
		if hs.LastRebuildMillis > resp.LastRebuildMillis {
			resp.LastRebuildMillis = hs.LastRebuildMillis
		}
		if hs.LastRefreshError != "" && resp.LastRefreshError == "" {
			resp.LastRefreshError = fmt.Sprintf("shard %d: %s", v.Shard, hs.LastRefreshError)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /v1/cover/stats body.
type statsResponse struct {
	Nodes            int     `json:"nodes"`
	Edges            int64   `json:"edges"`
	Generation       uint64  `json:"generation"`
	C                float64 `json:"c,omitempty"` // absent until first derived (preloaded covers)
	Communities      int     `json:"communities"`
	CoveredNodes     int     `json:"covered_nodes"`
	Coverage         float64 `json:"coverage"`
	OverlapNodes     int     `json:"overlap_nodes"`
	MinSize          int     `json:"min_size"`
	MaxSize          int     `json:"max_size"`
	MeanSize         float64 `json:"mean_size"`
	MeanMembership   float64 `json:"mean_membership"`
	MaxMembership    int     `json:"max_membership"`
	SeedsTried       int     `json:"seeds_tried,omitempty"`
	Steps            int64   `json:"steps,omitempty"`
	RawCommunities   int     `json:"raw_communities,omitempty"`
	BuildMillis      int64   `json:"build_millis"`
	PendingMutations int     `json:"pending_mutations"`
	// RebuildMode is how the served generation was computed (full /
	// incremental / fastpath); DirtyNodes is the dirty-region size of an
	// incremental rebuild. Sharded servers quote the most recently
	// rebuilt shard's mode here and the per-shard values below.
	RebuildMode string `json:"rebuild_mode,omitempty"`
	DirtyNodes  int    `json:"dirty_nodes,omitempty"`
	// Shards (sharded servers only) carries each shard's generation and
	// active c — shards derive and re-derive c independently, so the
	// parameter is per shard, not global.
	Shards []statsShard `json:"shards,omitempty"`
}

// statsShard is one shard's entry in the /v1/cover/stats vector.
// Error marks the shard degraded; its other fields then describe the
// last mirrored generation.
type statsShard struct {
	Shard            int     `json:"shard"`
	Generation       uint64  `json:"generation"`
	C                float64 `json:"c,omitempty"`
	Communities      int     `json:"communities"`
	CoveredNodes     int     `json:"covered_nodes"`
	OverlapNodes     int     `json:"overlap_nodes"`
	PendingMutations int     `json:"pending_mutations"`
	BuildMillis      int64   `json:"build_millis"`
	RebuildMode      string  `json:"rebuild_mode,omitempty"`
	DirtyNodes       int     `json:"dirty_nodes,omitempty"`
	Error            string  `json:"error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.sharded() {
		s.handleStatsSharded(w)
		return
	}
	snap, err := s.snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	n := snap.Graph.N()
	st := snap.Stats
	resp := statsResponse{
		Nodes:            n,
		Edges:            snap.Graph.M(),
		Generation:       snap.Gen,
		Communities:      st.Communities,
		CoveredNodes:     st.CoveredNodes,
		OverlapNodes:     st.OverlapNodes,
		MinSize:          st.MinSize,
		MaxSize:          st.MaxSize,
		MeanSize:         st.MeanSize,
		MeanMembership:   st.MeanMember,
		MaxMembership:    st.MaxMembership,
		BuildMillis:      snap.BuildTime.Milliseconds(),
		PendingMutations: s.worker.Status().Pending,
		RebuildMode:      snap.RebuildMode,
		DirtyNodes:       snap.DirtyNodes,
	}
	// Never force the spectral derivation just to fill this field; on a
	// preloaded cover c appears once the first search resolves it.
	switch {
	case snap.C > 0:
		resp.C = snap.C
	case s.cReady.Load():
		resp.C = s.c
	}
	if n > 0 {
		resp.Coverage = float64(st.CoveredNodes) / float64(n)
	}
	if snap.Result != nil {
		resp.SeedsTried = snap.Result.SeedsTried
		resp.Steps = snap.Result.Steps
		resp.RawCommunities = snap.Result.RawCommunities
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStatsSharded aggregates per-shard cover statistics. Coverage
// counts only owned nodes (each global node exactly once); size
// distributions describe the served communities, whose member lists
// may include ghost copies of boundary nodes.
func (s *Server) handleStatsSharded(w http.ResponseWriter) {
	views, _ := s.sp.Views()
	statuses := s.sp.Statuses()
	resp := statsResponse{
		Shards:  make([]statsShard, len(views)),
		MinSize: -1,
	}
	var (
		totalMembers float64
		ownedMembers int64
		latestBuilt  time.Time
	)
	for i, v := range views {
		if v.Snap == nil || v.Meta() == nil {
			resp.Shards[i] = statsShard{Shard: v.Shard, Error: errString(v.Err)}
			continue
		}
		snap, meta, st := v.Snap, v.Meta(), statuses[i].Status
		entry := statsShard{
			Shard:            v.Shard,
			Error:            errString(v.Err),
			Generation:       snap.Gen,
			C:                snap.C,
			Communities:      snap.Cover.Len(),
			CoveredNodes:     meta.CoveredOwned,
			OverlapNodes:     meta.OverlapOwned,
			PendingMutations: st.Pending,
			BuildMillis:      snap.BuildTime.Milliseconds(),
			RebuildMode:      snap.RebuildMode,
			DirtyNodes:       snap.DirtyNodes,
		}
		if snap.BuiltAt.After(latestBuilt) {
			latestBuilt = snap.BuiltAt
			resp.RebuildMode = snap.RebuildMode
			resp.DirtyNodes = snap.DirtyNodes
		}
		resp.Shards[i] = entry
		resp.Nodes += meta.OwnedNodes
		resp.Edges += meta.OwnedEdges
		if entry.Generation > resp.Generation {
			resp.Generation = entry.Generation
		}
		resp.Communities += entry.Communities
		resp.CoveredNodes += entry.CoveredNodes
		resp.OverlapNodes += entry.OverlapNodes
		resp.PendingMutations += entry.PendingMutations
		if entry.BuildMillis > resp.BuildMillis {
			resp.BuildMillis = entry.BuildMillis
		}
		cs := snap.Stats
		if cs.Communities > 0 {
			if resp.MinSize == -1 || cs.MinSize < resp.MinSize {
				resp.MinSize = cs.MinSize
			}
			if cs.MaxSize > resp.MaxSize {
				resp.MaxSize = cs.MaxSize
			}
			totalMembers += cs.MeanSize * float64(cs.Communities)
		}
		// Owned-only max: a ghost copy can carry more memberships in a
		// foreign halo than its owning shard serves, and lookups always
		// route to the owner — quote only numbers a lookup can return.
		if meta.MaxMembershipOwned > resp.MaxMembership {
			resp.MaxMembership = meta.MaxMembershipOwned
		}
		ownedMembers += meta.OwnedMemberships
		if snap.Result != nil {
			resp.SeedsTried += snap.Result.SeedsTried
			resp.Steps += snap.Result.Steps
			resp.RawCommunities += snap.Result.RawCommunities
		}
	}
	if resp.MinSize == -1 {
		resp.MinSize = 0
	}
	if resp.Communities > 0 {
		resp.MeanSize = totalMembers / float64(resp.Communities)
	}
	if resp.CoveredNodes > 0 {
		resp.MeanMembership = float64(ownedMembers) / float64(resp.CoveredNodes)
	}
	if resp.Nodes > 0 {
		resp.Coverage = float64(resp.CoveredNodes) / float64(resp.Nodes)
	}
	writeJSON(w, http.StatusOK, resp)
}

// communityRef describes one community a node belongs to. On sharded
// servers the id is scoped to its shard (the Shard field); member lists
// are always global node ids.
type communityRef struct {
	ID      int32   `json:"id"`
	Shard   *int    `json:"shard,omitempty"`
	Size    int     `json:"size"`
	Members []int32 `json:"members,omitempty"`
}

// nodeCommunitiesResponse is the /v1/node/{id}/communities body.
type nodeCommunitiesResponse struct {
	Node        int32          `json:"node"`
	Generation  uint64         `json:"generation"`
	Count       int            `json:"count"`
	Communities []communityRef `json:"communities"`
	// Shards (sharded servers only) is the (shard, generation) the
	// answer came from: the node's owning shard.
	Shards shard.GenVector `json:"shards,omitempty"`
}

func (s *Server) handleNodeCommunities(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid node id %q", r.PathValue("id"))
		return
	}
	v := int32(id)
	view, local, ok, err := s.sp.ViewFor(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	if view.Err != nil {
		// The owning shard is unreachable: an explicit 503, never a
		// silently stale answer (the mirror may be generations behind).
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "shard %d unavailable: %v", view.Shard, view.Err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "node %d out of range [0, %d)", v, s.sp.NodeBound())
		return
	}
	withMembers := queryBool(r, "members")
	ids := view.Snap.Index.Communities(local)
	resp := nodeCommunitiesResponse{
		Node:        v,
		Generation:  view.Snap.Gen,
		Count:       len(ids),
		Communities: make([]communityRef, len(ids)),
	}
	if view.Sharded() {
		resp.Shards = shard.GenVector{{Shard: view.Shard, Gen: view.Snap.Gen}}
	}
	for i, ci := range ids {
		resp.Communities[i] = communityRefFor(view, ci, withMembers)
	}
	writeJSON(w, http.StatusOK, resp)
}

// communityRefFor renders one community of a view, translating member
// lists to global ids on the sharded path.
func communityRefFor(view shard.View, ci int32, withMembers bool) communityRef {
	c := view.Snap.Cover.Communities[ci]
	ref := communityRef{ID: ci, Size: len(c)}
	if view.Sharded() {
		sh := view.Shard
		ref.Shard = &sh
	}
	if withMembers {
		ref.Members = view.Members(c)
	}
	return ref
}

func queryBool(r *http.Request, key string) bool {
	switch r.URL.Query().Get(key) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// SearchRequest is the /v1/search body. Zero-valued fields fall back to
// the server's OCA options (and, for C, the spectrum-derived value).
type SearchRequest struct {
	// Seed is the node the local search grows from.
	Seed int32 `json:"seed"`
	// C overrides the inner-product parameter for this request.
	C float64 `json:"c,omitempty"`
	// NeighborProb overrides the initial neighbor-inclusion probability.
	NeighborProb float64 `json:"neighbor_prob,omitempty"`
	// MaxSteps overrides the greedy step cap; values above the server's
	// own cap are clamped to it.
	MaxSteps int `json:"max_steps,omitempty"`
	// MaxCommunitySize stops additions at that size when positive.
	MaxCommunitySize int `json:"max_community_size,omitempty"`
	// RNGSeed fixes the randomness; responses with equal RNGSeed and
	// parameters are identical (over the same graph generation). When 0
	// the server picks a fresh stream.
	RNGSeed int64 `json:"rng_seed,omitempty"`
}

// SearchResponse is the /v1/search body. Generation is the snapshot
// generation the search ran over (absent only on a lazy server before
// its first cover build). Shard is set only by sharded servers: the
// search ran over the seed's owning shard's halo graph. Cached marks a
// response served from the generation-keyed result cache — including
// one computed by a concurrent coalesced request — rather than by a
// search this request ran itself.
type SearchResponse struct {
	Seed       int32   `json:"seed"`
	C          float64 `json:"c"`
	Size       int     `json:"size"`
	Fitness    float64 `json:"fitness"`
	Members    []int32 `json:"members"`
	Shard      *int    `json:"shard,omitempty"`
	Generation uint64  `json:"generation,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid search request: %v", err)
		return
	}
	if s.sharded() {
		s.handleSearchSharded(w, r, req)
		return
	}
	// Search over the served generation when there is one; a lazy
	// server answers over the construction-time graph without forcing
	// the OCA run (searches need only c, not the cover). gen stays 0
	// there, which also disables caching — pre-cover results have no
	// generation to key on or carry forward from.
	g, maxDeg := s.g, s.maxDeg
	var gen uint64
	var snap *refresh.Snapshot
	if s.coverReady.Load() {
		snap = s.worker.Snapshot()
		g, maxDeg = snap.Graph, snap.MaxDegree
		gen = snap.Gen
	}
	if req.Seed < 0 || int(req.Seed) >= g.N() {
		writeError(w, http.StatusNotFound, "seed %d out of range [0, %d)", req.Seed, g.N())
		return
	}
	if !searchParamsValid(w, req) {
		return
	}
	c := req.C
	if c == 0 {
		if snap != nil && snap.C > 0 {
			c = snap.C
		} else {
			var err error
			if c, err = s.C(); err != nil {
				writeError(w, http.StatusInternalServerError, "computing c: %v", err)
				return
			}
		}
	}
	if c < 0 || c >= 1 {
		// 0 never reaches here — it is the "use the server's c"
		// sentinel — so the effective range is (0, 1).
		writeError(w, http.StatusBadRequest, "c=%g out of range (0, 1)", c)
		return
	}
	s.runSearch(w, r, req, g, maxDeg, gen, req.Seed, c, nil)
}

// handleSearchSharded runs a seeded search over the owning shard's halo
// graph: the seed's full neighborhood (including cross-shard ghosts) is
// present there, so the local search behaves as it would unsharded, and
// members translate back to global ids. Validation order mirrors
// handleSearch; the execution tail is the shared runSearch.
func (s *Server) handleSearchSharded(w http.ResponseWriter, r *http.Request, req SearchRequest) {
	view, local, ok, _ := s.sp.ViewFor(req.Seed)
	if view.Err != nil {
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "shard %d unavailable: %v", view.Shard, view.Err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "seed %d out of range [0, %d)", req.Seed, s.sp.NodeBound())
		return
	}
	if !searchParamsValid(w, req) {
		return
	}
	c := req.C
	if c == 0 {
		if c = view.Snap.C; c == 0 {
			writeError(w, http.StatusInternalServerError, "shard %d has no inner-product parameter yet (no edges)", view.Shard)
			return
		}
	}
	if c < 0 || c >= 1 {
		writeError(w, http.StatusBadRequest, "c=%g out of range (0, 1)", c)
		return
	}
	s.runSearch(w, r, req, view.Snap.Graph, view.Snap.MaxDegree, view.Snap.Gen, local, c, &view)
}

// searchParamsValid rejects out-of-range overrides with a 400 and
// reports whether the request may proceed. Negative means "unlimited"
// in core.Options — never allowed from the network, where an uncapped
// search would hold a pool worker far past the request deadline.
func searchParamsValid(w http.ResponseWriter, req SearchRequest) bool {
	if req.MaxSteps < 0 || req.NeighborProb < 0 || req.MaxCommunitySize < 0 {
		writeError(w, http.StatusBadRequest, "max_steps, neighbor_prob and max_community_size must be non-negative")
		return false
	}
	if req.NeighborProb > 1 {
		writeError(w, http.StatusBadRequest, "neighbor_prob=%g out of range [0, 1]", req.NeighborProb)
		return false
	}
	return true
}

// poolSlot is one shard's reusable search state within a pool
// checkout, stamped with the generation it was built for. The stamp is
// what invalidates the state when a publish reuses the previous graph
// pointer (a lazy server's first cover build serves the construction
// graph as generation 1): Graph() identity alone would keep the stale
// state, and a cached search could then run over buffers sized for a
// superseded snapshot.
type poolSlot struct {
	st  *search.State
	gen uint64
}

// searchOptions resolves the effective core.Options for one request:
// the server's OCA defaults with the request's overrides applied and
// the step budget clamped. The result is part of the cache identity,
// so two requests spelling the same effective parameters differently
// (e.g. an explicit MaxSteps equal to the server cap vs. none) share
// one cache entry.
func (s *Server) searchOptions(req SearchRequest) core.Options {
	opt := s.cfg.OCA
	if req.NeighborProb > 0 {
		opt.NeighborProb = req.NeighborProb
	}
	if req.MaxSteps > 0 {
		opt.MaxSteps = req.MaxSteps
	}
	// Unconditional clamp: neither a request override nor a negative
	// ("unlimited") configured OCA.MaxSteps may exceed the cap here.
	if opt.MaxSteps <= 0 || opt.MaxSteps > s.stepCap {
		opt.MaxSteps = s.stepCap
	}
	if req.MaxCommunitySize > 0 {
		opt.MaxCommunitySize = req.MaxCommunitySize
	}
	return opt
}

// executeSearch checks a state out of the bounded pool and runs one
// greedy local search. It is the only path that consumes a pool
// worker; cache hits and coalesced waiters never reach it. Waiting
// for a slot respects ctx (the request deadline).
func (s *Server) executeSearch(ctx context.Context, g *graph.Graph, maxDeg int, gen uint64, slot int, seed int32, c float64, rngSeed int64, opt core.Options) (cover.Community, float64, error) {
	var slots []poolSlot
	select {
	case slots = <-s.pool:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	if slots == nil {
		slots = make([]poolSlot, s.poolWidth)
	}
	defer func() { s.pool <- slots }()
	ps := &slots[slot]
	if ps.st == nil || ps.st.Graph() != g || ps.gen != gen {
		// First use of the slot's shard entry, or its state is bound to
		// a superseded snapshot (by graph identity or by generation):
		// (re)build it over the one this request saw.
		ps.st = search.NewState(g, maxDeg)
		ps.gen = gen
	}
	rng := rand.New(rand.NewSource(rngSeed))
	community, fitness := core.FindCommunityWith(g, ps.st, seed, c, rng, opt)
	return community, fitness, nil
}

// writeSearchError maps an executeSearch (or coalesced-wait) failure
// to the response the pool wait has always produced: 503s, with the
// client's own cancellation distinguished from real saturation so logs
// don't send operators chasing phantom load.
func writeSearchError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, "client canceled request")
		return
	}
	setRetryAfter(w, time.Second)
	writeError(w, http.StatusServiceUnavailable, "search pool saturated: %v", err)
}

// runSearch is the execution tail shared by the single and sharded
// search paths. With caching enabled and a published generation to key
// on, the request first consults the generation-keyed cache: a hit
// answers immediately, concurrent identical requests coalesce onto one
// underlying search, and a miss computes, caches and answers. origin
// is non-nil on the sharded path; members then translate back to
// global ids and the response carries the owning shard.
func (s *Server) runSearch(w http.ResponseWriter, r *http.Request, req SearchRequest, g *graph.Graph, maxDeg int, gen uint64, seed int32, c float64, origin *shard.View) {
	opt := s.searchOptions(req)
	slot := 0
	if origin != nil {
		slot = origin.Shard
	}

	compute := func() (*searchEntry, error) {
		rngSeed := req.RNGSeed
		if rngSeed == 0 {
			rngSeed = s.streams.Add(1)
		}
		community, fitness, err := s.executeSearch(r.Context(), g, maxDeg, gen, slot, seed, c, rngSeed, opt)
		if err != nil {
			return nil, err
		}
		resp := SearchResponse{
			Seed:       req.Seed,
			C:          c,
			Size:       len(community),
			Fitness:    fitness,
			Members:    community,
			Generation: gen,
		}
		if origin != nil {
			sh := origin.Shard
			resp.Shard = &sh
			resp.Members = origin.Members(community)
		}
		return &searchEntry{
			resp:      resp,
			local:     community,
			localSeed: seed,
			c:         c,
			rngUsed:   rngSeed,
			opt:       opt,
		}, nil
	}

	if s.cache != nil && gen > 0 {
		key := searchKey{
			shard:   slot,
			gen:     gen,
			seed:    req.Seed,
			c:       c,
			prob:    opt.NeighborProb,
			steps:   opt.MaxSteps,
			maxSize: opt.MaxCommunitySize,
			// The raw request value, not the resolved stream: an explicit
			// seed keys a deterministic replay, and 0 groups every
			// "server picks a stream" request for these parameters onto
			// one shared result — the hot-seed case the cache serves.
			rngSeed: req.RNGSeed,
		}
		ent, fresh, err := s.cache.getOrCompute(r.Context(), key, compute)
		if err != nil {
			writeSearchError(w, err)
			return
		}
		// Entries are shared between requests and with the cache:
		// annotate a value copy, never the entry itself.
		resp := ent.resp
		resp.Cached = !fresh
		writeJSON(w, http.StatusOK, resp)
		return
	}

	ent, err := compute()
	if err != nil {
		writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ent.resp)
}
