// Command ocad is the community-search query daemon: it loads a graph,
// obtains an overlapping community cover (by running OCA or loading a
// precomputed cover file), builds the inverted node→community index,
// and serves JSON over HTTP until terminated. Edge mutations posted at
// runtime are applied by a background refresh worker that re-runs OCA
// and atomically swaps in the new generation; readers never block.
//
// With -shards K the graph and its cover are partitioned across K
// node-disjoint shards (modulo-K node assignment, ghost halos for
// boundary neighborhoods), each kept live by its own refresh worker; a
// router fans lookups out to the owning shards and every response
// quotes a (shard, generation) vector so clients can detect a lagging
// shard.
//
// The sharded deployment also runs multi-process: each shard in its own
// process with `-serve-shard i`, hosting that shard's worker behind the
// wire protocol documented in docs/PROTOCOL.md, and a router process
// with `-shard-addrs` fanning out to them over HTTP. See "Running
// multi-process" in README.md.
//
// Each shard may additionally be served by read replicas: `-follow`
// starts a process that mirrors a primary shard server over the same
// snapshot resolution a router uses and re-serves it read-only, and the
// router's `-replica-addrs` fans reads out across each shard's replica
// set (least-loaded selection, generation-floor routing, hedged
// requests) while writes keep going to the primaries only.
//
// Usage:
//
//	ocad -in graph.txt [-addr :8080] [-shards K] [flags]            # single process (K in-process shards)
//	ocad -in graph.txt -shards K -serve-shard i [-addr :9301]       # shard-server role (one per shard)
//	ocad -follow host:9301 [-addr :9401]                            # replica role (read-only mirror of one shard server)
//	ocad -shard-addrs host:9301,host:9302,... [-addr :8080]         # router role over shard processes
//	     [-replica-addrs host:9401,host:9402;host:9501]             #   (per-shard replica lists: ';' between shards, ',' within)
//
// Endpoints (router / single-process):
//
//	GET  /healthz                    liveness, refresh state, per-shard vector, request summary
//	GET  /v1/cover/stats             cover-wide overlap statistics (+ per-shard c)
//	GET  /v1/cover/export            NDJSON streaming bulk export
//	GET  /v1/node/{id}/communities   which communities contain this node
//	POST /v1/nodes/communities       batch lookup fanned out to the owning shards
//	POST /v1/search                  run one seeded community search
//	POST /v1/edges                   add/remove edges (may grow the node set), triggering refreshes
//	GET  /debug/metrics              per-endpoint request counts + latency histograms
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -shutdown-timeout (a shard server stops
// accepting mutations first, so nothing accepted is lost silently).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cover"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/refresh"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ocad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// ContinueOnError keeps parse failures on run()'s error-return path
	// (ExitOnError would os.Exit inside Parse, killing test binaries).
	fs := flag.NewFlagSet("ocad", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests using :0)")
	in := fs.String("in", "", "input graph (edge list or oca binary format; required except with -shard-addrs)")
	coverPath := fs.String("cover", "", "serve this precomputed cover file instead of running OCA")
	lazy := fs.Bool("lazy", false, "delay the OCA run until the first request that needs the cover")
	seed := fs.Int64("seed", 1, "random seed for the OCA run")
	c := fs.Float64("c", 0, "inner-product parameter override (0 = derive -1/λmin from the spectrum)")
	workers := fs.Int("workers", 0, "OCA worker goroutines (0 = GOMAXPROCS)")
	searchWorkers := fs.Int("search-workers", 0, "max concurrent /v1/search searches (0 = GOMAXPROCS)")
	searchCacheSize := fs.Int("search-cache-size", 0, "generation-keyed /v1/search result cache capacity in entries (0 = default 4096, negative = disable caching and coalescing)")
	searchCacheRho := fs.Float64("search-cache-rho", 0, "ρ-similarity floor for cache carry-forward spot checks across incremental rebuilds (0 = default 0.95)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
	refreshDebounce := fs.Duration("refresh-debounce", 50*time.Millisecond, "how long queued /v1/edges mutations coalesce before an OCA re-run")
	maxBatchIDs := fs.Int("max-batch-ids", 10000, "ids answered per batch lookup before clamping")
	coldRefresh := fs.Bool("cold-refresh", false, "re-run OCA from scratch on refresh instead of warm-starting from unaffected communities")
	shards := fs.Int("shards", 1, "partition the graph and cover across K node-disjoint shards behind a fan-out router")
	maxNodes := fs.Int("max-nodes", -1, "max node-set size /v1/edges growth may reach (-1 = 8x the initial graph, 0 = fixed node set)")
	rederiveC := fs.Float64("rederive-c", 0.25, "re-derive c=-1/λmin during a rebuild once applied mutations exceed this fraction of the graph's edges (0 = pin the startup value; ignored when -c is set)")
	incrementalThreshold := fs.Float64("incremental-threshold", 0.25, "rebuild incrementally (dirty-region scoped OCA, patched index) when a mutation batch touches at most this fraction of the served communities; batches touching none skip OCA entirely (0 = always rebuild fully)")
	dataDir := fs.String("data-dir", "", "durable data directory (snapshot segments + mutation WAL, docs/PERSISTENCE.md): boot recovers the newest valid segment and replays the WAL tail; single-graph and -serve-shard roles only")
	walFsync := fs.Bool("wal-fsync", true, "fsync each WAL record before acknowledging the batch (off: the tail's durability is bounded by the OS flush interval)")
	segmentEvery := fs.Uint64("segment-every", 8, "seal a snapshot segment every N published generations (a clean shutdown always seals a final one)")
	retainSegments := fs.Int("retain-segments", 3, "snapshot segments kept on disk; retained generations answer /v1/cover/export?generation=")
	serveShard := fs.Int("serve-shard", -1, "shard-server role: host shard i of the -shards K split behind the wire protocol (docs/PROTOCOL.md)")
	shardAddrs := fs.String("shard-addrs", "", "router role: comma-separated shard-server addresses (addr i hosts shard i); serves the public API over them")
	connectTimeout := fs.Duration("shard-connect-timeout", 60*time.Second, "router role: how long to wait for all shard servers to answer at startup")
	pollInterval := fs.Duration("shard-poll-interval", 100*time.Millisecond, "router role: shard generation poll cadence")
	shardReqTimeout := fs.Duration("shard-request-timeout", 0, "router and replica roles: per-RPC deadline against shard servers (0 = default 5s)")
	follow := fs.String("follow", "", "replica role: mirror this primary shard server and re-serve it read-only behind the wire protocol")
	replicaAddrs := fs.String("replica-addrs", "", "router role: per-shard replica lists, ';' between shards and ',' within (e.g. \"r0a,r0b;r1a\"); reads fan out across each shard's primary+replicas")
	hedgeFraction := fs.Float64("hedge-fraction", 0.05, "router role with -replica-addrs: budget for hedged (backup) reads as a fraction of all reads (negative = disable hedging)")
	faultPlan := fs.String("fault-plan", "", "DEV ONLY: JSON fault-injection plan (docs/OPERATIONS.md) applied to this process's HTTP surface; also serves the runtime "+faultinject.ControlPath+" control endpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	// Normalize here so the handler deadline and http.Server's
	// WriteTimeout are derived from the same value (server.Config also
	// defaults non-positive timeouts to 30s).
	if *reqTimeout <= 0 {
		*reqTimeout = 30 * time.Second
	}
	inj, err := loadFaultInjector(*faultPlan)
	if err != nil {
		return err
	}

	cfg := server.Config{
		Lazy:                 *lazy,
		SearchWorkers:        *searchWorkers,
		RequestTimeout:       *reqTimeout,
		RefreshDebounce:      *refreshDebounce,
		MaxBatchIDs:          *maxBatchIDs,
		DisableWarmStart:     *coldRefresh,
		Shards:               *shards,
		RederiveCAfter:       *rederiveC,
		IncrementalThreshold: *incrementalThreshold,
		SearchCacheSize:      *searchCacheSize,
		SearchCacheRho:       *searchCacheRho,
	}
	cfg.OCA.Seed = *seed
	cfg.OCA.C = *c
	cfg.OCA.Workers = *workers

	if *serveShard >= 0 && *shardAddrs != "" {
		return errors.New("-serve-shard and -shard-addrs are different roles; pick one")
	}
	if *follow != "" {
		if *serveShard >= 0 || *shardAddrs != "" {
			return errors.New("-follow is its own role; it cannot combine with -serve-shard or -shard-addrs")
		}
		if *in != "" || *coverPath != "" || *lazy || *dataDir != "" {
			return errors.New("-follow mirrors its primary; -in, -cover, -lazy and -data-dir are not supported")
		}
		return runReplica(*follow, *addr, *addrFile, *connectTimeout, *pollInterval, *shardReqTimeout, *shutdownTimeout, inj)
	}
	if *replicaAddrs != "" && *shardAddrs == "" {
		return errors.New("-replica-addrs requires the router role (-shard-addrs)")
	}
	if *dataDir != "" {
		if *shardAddrs != "" {
			return errors.New("-data-dir is not supported in the router role (durability lives in the shard servers)")
		}
		if *shards > 1 && *serveShard < 0 {
			return errors.New("-data-dir with -shards > 1 requires the multi-process deployment (-serve-shard per process): in-process sharding routes growth the WAL cannot replay")
		}
		if *coverPath != "" {
			return errors.New("-cover is not supported with -data-dir (the data directory owns the served state)")
		}
	}
	if *shardAddrs != "" {
		if *coverPath != "" || *lazy {
			return errors.New("-cover and -lazy are not supported in the router role (shard servers own the covers)")
		}
		replicas, err := parseReplicaAddrs(*replicaAddrs, len(strings.Split(*shardAddrs, ",")))
		if err != nil {
			return err
		}
		return runRouter(cfg, strings.Split(*shardAddrs, ","), replicas, *hedgeFraction, *shards, *in,
			*addr, *addrFile, *connectTimeout, *pollInterval, *shardReqTimeout, *shutdownTimeout, inj)
	}
	if *in == "" {
		fs.Usage()
		return errors.New("missing required -in graph file")
	}
	pf := persistFlags{dir: *dataDir, fsync: *walFsync, segmentEvery: *segmentEvery, retain: *retainSegments}
	if *serveShard >= 0 {
		if *serveShard >= *shards {
			return fmt.Errorf("-serve-shard %d out of range for -shards %d", *serveShard, *shards)
		}
		if *coverPath != "" || *lazy {
			return errors.New("-cover and -lazy are not supported in the shard-server role")
		}
		return runShardServer(cfg, *in, *serveShard, *shards, *maxNodes, pf,
			*addr, *addrFile, *shutdownTimeout, inj)
	}
	if *shards > 1 && *coverPath != "" {
		return errors.New("-cover is not supported with -shards > 1 (precomputed covers cannot be partitioned)")
	}
	if *shards > 1 && *lazy {
		return errors.New("-lazy is not supported with -shards > 1 (every shard's cover is built at startup)")
	}

	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	log.Printf("loaded graph: %d nodes, %d edges", g.N(), g.M())
	cfg.MaxNodes = resolveMaxNodes(*maxNodes, g.N())

	// With a data directory, disk is the source of truth: a recovered
	// snapshot supersedes the -in graph (which only bootstraps an empty
	// directory), and every accepted mutation is WAL-logged from here on.
	var recovered *refresh.Snapshot
	var store *persist.Store
	if pf.dir != "" && *shards == 1 {
		store, err = persist.Open(persist.Options{
			Dir: pf.dir, FsyncEveryBatch: pf.fsync,
			SegmentEvery: pf.segmentEvery, Retain: pf.retain,
			MaxNodes: cfg.MaxNodes,
		})
		if err != nil {
			return err
		}
		st, err := store.Load()
		if err != nil {
			return err
		}
		recovered, err = persist.ReplaySingle(st, persist.ReplayConfig{Refresh: refresh.Config{
			OCA:                  cfg.OCA,
			DisableWarmStart:     cfg.DisableWarmStart,
			MaxNodes:             cfg.MaxNodes,
			IncrementalThreshold: cfg.IncrementalThreshold,
		}})
		if err != nil {
			return err
		}
		cfg.Persist = store
		if recovered != nil {
			if cfg.MaxNodes < st.Segment.MaxNodes {
				cfg.MaxNodes = st.Segment.MaxNodes
			}
			rs := store.Stats().Recovered
			log.Printf("recovered generation %d from %s (%s, %d batches replayed)",
				recovered.Gen, pf.dir, rs.Source, rs.ReplayedBatches)
			// The segment stays open: the recovered snapshot's graph may be
			// served zero-copy straight from the mapping, for the life of
			// the process.
		}
	}

	var srv *server.Server
	if recovered != nil {
		srv, err = server.NewWithSnapshot(recovered, cfg)
		if err != nil {
			return err
		}
	} else if *coverPath != "" {
		cv, err := loadCover(*coverPath)
		if err != nil {
			return err
		}
		log.Printf("loaded cover: %d communities", cv.Len())
		srv, err = server.NewWithCover(g, cv, cfg)
		if err != nil {
			return err
		}
	} else if *shards > 1 {
		log.Printf("running OCA across %d shards (seed %d)...", *shards, *seed)
		start := time.Now()
		srv, err = server.New(g, cfg)
		if err != nil {
			return err
		}
		log.Printf("%d shard covers ready in %v", *shards, time.Since(start).Round(time.Millisecond))
	} else {
		if !*lazy {
			log.Printf("running OCA (seed %d)...", *seed)
		}
		start := time.Now()
		srv, err = server.New(g, cfg)
		if err != nil {
			return err
		}
		if !*lazy {
			cv, err := srv.Cover()
			if err != nil {
				return err
			}
			log.Printf("cover ready: %d communities in %v", cv.Len(), time.Since(start).Round(time.Millisecond))
		}
	}

	httpSrv := &http.Server{
		Handler:           faulty(inj, srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout backs up the handler-level deadline with slack
		// for response transmission.
		WriteTimeout: *reqTimeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	closeFn := srv.Close
	if store != nil {
		closeFn = func() {
			srv.Close() // seals the final segment
			store.Close()
		}
	}
	return serveUntilSignal(httpSrv, *addr, *addrFile, *shutdownTimeout, closeFn, nil)
}

// loadFaultInjector turns the -fault-plan flag into an Injector (nil
// when the flag is unset — zero overhead on the serving path). The
// plan's faults and its runtime control endpoint are strictly a dev
// and chaos-testing facility, never for production traffic.
func loadFaultInjector(path string) (*faultinject.Injector, error) {
	if path == "" {
		return nil, nil
	}
	plan, err := faultinject.LoadPlan(path)
	if err != nil {
		return nil, fmt.Errorf("-fault-plan: %w", err)
	}
	log.Printf("FAULT INJECTION ENABLED (dev only): plan %s, %d rules, seed %d; control at %s",
		path, len(plan.Rules), plan.Seed, faultinject.ControlPath)
	return faultinject.New(plan), nil
}

// faulty wraps a role's handler with the fault injector (plus its
// control endpoint, registered outside the injected wrapper so a
// blackhole-everything plan can still be lifted); identity when no
// plan was given.
func faulty(inj *faultinject.Injector, h http.Handler) http.Handler {
	if inj == nil {
		return h
	}
	return inj.Handler(h)
}

// persistFlags carries the -data-dir flag group to the role runners.
type persistFlags struct {
	dir          string
	fsync        bool
	segmentEvery uint64
	retain       int
}

// parseReplicaAddrs splits the -replica-addrs value into per-shard
// replica lists: ';' separates shards, ',' separates replicas within a
// shard, and empty entries mean "this shard has no replicas". Returns
// nil for an empty flag (plain unreplicated topology).
func parseReplicaAddrs(s string, k int) ([][]string, error) {
	if s == "" {
		return nil, nil
	}
	groups := strings.Split(s, ";")
	if len(groups) != k {
		return nil, fmt.Errorf("-replica-addrs names %d shard groups for %d -shard-addrs (separate shards with ';')", len(groups), k)
	}
	out := make([][]string, k)
	for i, g := range groups {
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				out[i] = append(out[i], a)
			}
		}
	}
	return out, nil
}

// runReplica is the replica role: mirror one primary shard server over
// the snapshot resolution and re-serve it read-only behind the same
// wire surface, so routers can fan reads out to it.
func runReplica(primary, addr, addrFile string, connectTimeout, pollInterval, reqTimeout, shutdownTimeout time.Duration, inj *faultinject.Injector) error {
	log.Printf("following primary %s...", primary)
	start := time.Now()
	rs, err := transport.NewReplica(context.Background(), primary, transport.ReplicaConfig{
		Client:         transport.ClientConfig{PollInterval: pollInterval, RequestTimeout: reqTimeout},
		ConnectTimeout: connectTimeout,
	})
	if err != nil {
		return err
	}
	log.Printf("shard %d mirrored at generation %d in %v", rs.Shard(), rs.Gen(), time.Since(start).Round(time.Millisecond))
	httpSrv := &http.Server{
		Handler:           faulty(inj, rs.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Drain order mirrors the shard server: advertise draining first so
	// replica sets route new reads elsewhere, let in-flight reads finish,
	// then stop the follow poller.
	return serveUntilSignal(httpSrv, addr, addrFile, shutdownTimeout, rs.Close,
		func() { rs.SetDraining(true) })
}

// runRouter is the multi-process router role: dial the shard servers,
// assemble a remote-backed provider, and serve the public API over it.
// The graph lives in the shard processes; -in is accepted but unused
// beyond a consistency log line.
func runRouter(cfg server.Config, addrs []string, replicas [][]string, hedgeFraction float64, shardsFlag int, in, addr, addrFile string, connectTimeout, pollInterval, reqTimeout time.Duration, shutdownTimeout time.Duration, inj *faultinject.Injector) error {
	if shardsFlag > 1 && shardsFlag != len(addrs) {
		return fmt.Errorf("-shards %d disagrees with %d -shard-addrs", shardsFlag, len(addrs))
	}
	if in != "" {
		log.Printf("router role: -in %s ignored (shard servers own the graph)", in)
	}
	nrep := 0
	for _, g := range replicas {
		nrep += len(g)
	}
	log.Printf("dialing %d shard servers (+%d replicas)...", len(addrs), nrep)
	start := time.Now()
	rt, err := transport.Dial(context.Background(), addrs, transport.Options{
		Client:         transport.ClientConfig{PollInterval: pollInterval, RequestTimeout: reqTimeout},
		ConnectTimeout: connectTimeout,
		MaxPending:     cfg.MaxPendingMutations,
		Replicas:       replicas,
		Replication:    shard.ReplicaSetConfig{HedgeFraction: hedgeFraction},
	})
	if err != nil {
		return err
	}
	log.Printf("%d shard mirrors ready in %v", len(addrs)+nrep, time.Since(start).Round(time.Millisecond))
	srv, err := server.NewWithProvider(rt, cfg)
	if err != nil {
		rt.Close()
		return err
	}
	httpSrv := &http.Server{
		Handler:           faulty(inj, srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      cfg.RequestTimeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return serveUntilSignal(httpSrv, addr, addrFile, shutdownTimeout, srv.Close, nil)
}

// runShardServer is the shard-server role: split the graph
// deterministically (or recover this shard's slice from its data
// directory), host this process's shard behind the wire protocol, and
// drain mutations before shutting down.
func runShardServer(cfg server.Config, in string, shardIdx, k, maxNodesFlag int, pf persistFlags, addr, addrFile string, shutdownTimeout time.Duration, inj *faultinject.Injector) error {
	g, err := loadGraph(in)
	if err != nil {
		return err
	}
	maxN := resolveMaxNodes(maxNodesFlag, g.N())
	if maxN < g.N() {
		maxN = g.N()
	}
	log.Printf("loaded graph: %d nodes, %d edges; serving shard %d of %d", g.N(), g.M(), shardIdx, k)
	scfg := shard.Config{
		OCA:                  cfg.OCA,
		DisableWarmStart:     cfg.DisableWarmStart,
		Debounce:             cfg.RefreshDebounce,
		MaxPending:           cfg.MaxPendingMutations,
		RederiveCAfter:       cfg.RederiveCAfter,
		IncrementalThreshold: cfg.IncrementalThreshold,
	}
	if cfg.OCA.C != 0 {
		// An explicitly pinned c is never re-derived behind the
		// operator's back (matches the in-process sharded path).
		scfg.RederiveCAfter = 0
	}

	// With a data directory, each shard process owns a per-shard
	// subdirectory (so K processes can share one -data-dir value), every
	// applied fan-out batch is WAL-logged with its translation-table
	// growth, and boot replays the tail through ApplyBatch.
	var (
		store *persist.Store
		w     *shard.Worker
	)
	if pf.dir != "" {
		dir := filepath.Join(pf.dir, fmt.Sprintf("shard-%d", shardIdx))
		store, err = persist.Open(persist.Options{
			Dir: dir, FsyncEveryBatch: pf.fsync,
			SegmentEvery: pf.segmentEvery, Retain: pf.retain,
			Shard: shardIdx, Shards: k, MaxNodes: maxN,
		})
		if err != nil {
			return err
		}
		st, err := store.Load()
		if err != nil {
			return err
		}
		scfg.LogBatch = func(b shard.Batch, seq uint64) error {
			return store.LogEdgeBatch(wal.EdgeBatch{Seq: seq, Base: b.Base, NewLocals: b.NewLocals, Add: b.Add, Remove: b.Remove})
		}
		scfg.OnSwap = func(_ int, sn *refresh.Snapshot) {
			// w is assigned before the transport server exists, so no
			// mutation (and hence no publish) can precede it.
			if err := store.OnPublish(sn, w.Table()[:sn.Graph.N()]); err != nil {
				log.Printf("persist: publishing generation %d: %v", sn.Gen, err)
			}
		}
		if st.Segment != nil {
			if maxN < st.Segment.MaxNodes {
				maxN = st.Segment.MaxNodes
			}
			// Recover the partition map the shard was routed under and
			// validate it against the flags before serving anything: a
			// -shards value that disagrees with the persisted partition
			// must fail loudly here, not misroute silently later.
			pm, err := st.PartitionMap()
			if err != nil {
				return err
			}
			if pm != nil {
				if pm.K != k {
					return fmt.Errorf("shard %d: persisted partition map is %d-way at epoch %d but -shards is %d — restart with -shards %d, or point -data-dir at a fresh directory to resplit",
						shardIdx, pm.K, pm.Epoch, k, pm.K)
				}
				scfg.PartitionMap = pm
				log.Printf("shard %d recovered partition map at epoch %d (%d overrides)", shardIdx, pm.Epoch, len(pm.Ranges))
			}
			snap, table, err := persist.ReplayShard(st, shardIdx, k, scfg, maxN)
			if err != nil {
				return err
			}
			w = shard.NewWorkerFromSnapshot(snap, table, shardIdx, k, scfg, maxN)
			rs := store.Stats().Recovered
			log.Printf("shard %d recovered generation %d from %s (%s, %d batches replayed)",
				shardIdx, snap.Gen, dir, rs.Source, rs.ReplayedBatches)
			// The segment stays open: the recovered graph may be served
			// zero-copy straight from the mapping.
		}
	}
	if w == nil {
		piece, err := shard.SplitOne(g, k, shardIdx)
		if err != nil {
			return err
		}
		log.Printf("running OCA for shard %d (%d local nodes, seed %d)...", shardIdx, piece.Graph.N(), cfg.OCA.Seed)
		start := time.Now()
		w, err = shard.NewWorker(piece, k, scfg, maxN)
		if err != nil {
			return err
		}
		log.Printf("shard %d cover ready in %v", shardIdx, time.Since(start).Round(time.Millisecond))
	}
	closeFn := w.Close
	if store != nil {
		// Seal the boot snapshot so the WAL always replays onto a segment,
		// then start logging. Only after this may mutations be accepted.
		snap := w.Snapshot()
		if err := store.Seal(snap, w.Table()[:snap.Graph.N()]); err != nil {
			return err
		}
		if err := store.Begin(snap.Gen); err != nil {
			return err
		}
		closeFn = func() {
			w.Close()
			// Clean shutdown: seal the final state so the next boot is a
			// pure segment load. A failure only costs that boot a replay.
			snap := w.Snapshot()
			if err := store.Seal(snap, w.Table()[:snap.Graph.N()]); err != nil {
				log.Printf("persist: sealing final segment: %v", err)
			}
			store.Close()
		}
	}
	tcfg := transport.ServerConfig{GlobalNodes: g.N(), MaxNodes: maxN}
	if store != nil {
		// A final (non-pending) map install is acknowledged only after
		// it is durable: the store stamps the new epoch and reseals, so
		// a crash right after the flip recovers at the flipped epoch.
		tcfg.OnMapChange = func(pm *shard.PartitionMap) error {
			store.SetPartition(pm.Epoch, pm.Encode())
			snap := w.Snapshot()
			return store.Seal(snap, w.Table()[:snap.Graph.N()])
		}
	}
	ss := transport.NewShardServer(w, tcfg)
	httpSrv := &http.Server{
		Handler:           faulty(inj, ss.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		// No WriteTimeout: flush responses block until the rebuild
		// publishes, bounded by the router's request deadline instead.
		IdleTimeout: 2 * time.Minute,
	}
	// Drain order: refuse new mutations first (503 "closed", the router
	// sheds load), let in-flight applies/flushes finish with the worker
	// still running, then stop the worker.
	return serveUntilSignal(httpSrv, addr, addrFile, shutdownTimeout, closeFn,
		func() { ss.SetDraining(true) })
}

// serveUntilSignal runs the HTTP server on an explicit listener
// (reporting the bound address, optionally to -addr-file, so scripts
// can use :0), then drains gracefully on SIGINT/SIGTERM: preShutdown
// (when set) gates new work, in-flight requests drain within the
// budget, and closeFn stops the background workers.
func serveUntilSignal(httpSrv *http.Server, addr, addrFile string, shutdownTimeout time.Duration, closeFn func(), preShutdown func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", ln.Addr())
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests...")
	if preShutdown != nil {
		preShutdown()
	} else {
		// Public-API roles stop their refresh workers first: new
		// mutations are refused while in-flight reads keep answering
		// from the last published snapshot.
		closeFn()
		closeFn = nil
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err = httpSrv.Shutdown(drainCtx)
	if closeFn != nil {
		closeFn()
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("bye")
	return <-errCh
}

// resolveMaxNodes turns the -max-nodes flag into a concrete cap:
// negative means "auto" (8x the initial graph, so growth works out of
// the box without being unbounded), 0 keeps the node set fixed, and a
// positive value is used as-is.
func resolveMaxNodes(flagVal, n int) int {
	if flagVal >= 0 {
		return flagVal
	}
	return 8 * n
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadAuto(f)
	if err != nil {
		return nil, fmt.Errorf("reading graph %s: %w", path, err)
	}
	return g, nil
}

func loadCover(path string) (*cover.Cover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cv, err := cover.Read(f)
	if err != nil {
		return nil, fmt.Errorf("reading cover %s: %w", path, err)
	}
	return cv, nil
}
