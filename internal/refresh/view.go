package refresh

import "time"

// SnapshotInfo is the wire-serializable summary of a Snapshot: the
// scalar facts about a published generation, without the graph, cover
// or index payloads. The shard transport quotes it in health probes and
// snapshot headers so a remote reader can decide whether (and what) to
// sync before paying for the full state transfer.
type SnapshotInfo struct {
	// Gen is the snapshot's generation number.
	Gen uint64 `json:"generation"`
	// Seq is the cumulative op count reflected in the generation (see
	// Snapshot.Seq); the persistence layer stores it in segment metadata
	// to position WAL replay.
	Seq uint64 `json:"seq,omitempty"`
	// Nodes and Edges are the snapshot graph's dimensions.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
	// Communities counts the served cover's communities.
	Communities int `json:"communities"`
	// C is the generation's inner-product parameter (0 when not yet
	// derived).
	C float64 `json:"c,omitempty"`
	// RebuildMode and DirtyNodes record how the generation was computed
	// (see Snapshot).
	RebuildMode string `json:"rebuild_mode,omitempty"`
	DirtyNodes  int    `json:"dirty_nodes,omitempty"`
	// BuildMillis is the generation's build duration; BuiltAtUnixMs is
	// its publication time (Unix milliseconds, the sender's clock).
	BuildMillis   int64 `json:"build_millis"`
	BuiltAtUnixMs int64 `json:"built_at_unix_ms"`
}

// Info summarizes the snapshot for the wire.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{
		Gen:           s.Gen,
		Seq:           s.Seq,
		Nodes:         s.Graph.N(),
		Edges:         s.Graph.M(),
		Communities:   s.Cover.Len(),
		C:             s.C,
		RebuildMode:   s.RebuildMode,
		DirtyNodes:    s.DirtyNodes,
		BuildMillis:   s.BuildTime.Milliseconds(),
		BuiltAtUnixMs: s.BuiltAt.UnixMilli(),
	}
}

// Restore applies the scalar facts of an Info back onto a locally
// reassembled Snapshot — the receiving half of the wire transfer, after
// the graph and cover have been decoded and NewSnapshot has rebuilt the
// derived index and stats deterministically from them.
func (s *Snapshot) Restore(info SnapshotInfo) {
	s.Gen = info.Gen
	s.Seq = info.Seq
	s.C = info.C
	s.RebuildMode = info.RebuildMode
	s.DirtyNodes = info.DirtyNodes
	s.BuildTime = time.Duration(info.BuildMillis) * time.Millisecond
	s.BuiltAt = time.UnixMilli(info.BuiltAtUnixMs)
}
