package cpm

import (
	"testing"

	"repro/internal/lfr"
)

func benchLFR(b *testing.B, n int) *lfr.Benchmark {
	b.Helper()
	bench, err := lfr.Generate(lfr.Params{
		N: n, AvgDeg: 16, MaxDeg: 50, Mu: 0.2,
		MinCom: 20, MaxCom: 60, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bench
}

// BenchmarkTrianglePercolation measures the fast k=3 path (forward
// triangle enumeration + edge DSU).
func BenchmarkTrianglePercolation(b *testing.B) {
	bench := benchLFR(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bench.Graph, Options{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCFinderPipeline measures the faithful CFinder path (maximal
// cliques + quadratic overlap matrix) on a deliberately small graph —
// its asymptotics are the point of the paper's Fig. 5.
func BenchmarkCFinderPipeline(b *testing.B) {
	bench := benchLFR(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCFinder(bench.Graph, Options{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneralK4 measures explicit 4-clique percolation.
func BenchmarkGeneralK4(b *testing.B) {
	bench := benchLFR(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bench.Graph, Options{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
