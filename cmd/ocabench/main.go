// Command ocabench regenerates every table and figure of the paper's
// evaluation (Section V): Table I, Figures 2–6 and the Wikipedia run,
// plus the ablation experiments documented in DESIGN.md §6.
//
// Usage:
//
//	ocabench [flags] table1|fig2|fig3|fig4|fig5|fig6|wiki|fig2ov|ablate-c|ablate-merge|all
//
// Defaults are scaled down to finish in minutes; -full switches to the
// paper-scale parameters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "paper-scale workloads (slow)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "OCA parallelism (1 = comparable to single-threaded baselines)")
	trials := flag.Int("trials", 1, "instances to average over")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	verbose := flag.Bool("v", false, "log progress to stderr")
	timeLimit := flag.Duration("timelimit", 0, "drop an algorithm from a timing sweep after this long (0 = default)")
	wikiScale := flag.Int("wikiscale", 0, "override the Wikipedia-substitute scale (0 = quick 15 / full 20)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ocabench: need an experiment: table1 fig2 fig3 fig4 fig5 fig6 wiki fig2ov ablate-c ablate-merge scale all")
		os.Exit(2)
	}
	cfg := bench.Config{
		Full:      *full,
		Seed:      *seed,
		Workers:   *workers,
		Trials:    *trials,
		TimeLimit: *timeLimit,
		WikiScale: *wikiScale,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	experiments := flag.Args()
	if len(experiments) == 1 && experiments[0] == "all" {
		experiments = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "wiki"}
	}
	for _, exp := range experiments {
		start := time.Now()
		if err := runOne(exp, cfg, *csv, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ocabench %s: %v\n", exp, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", exp, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
}

func runOne(exp string, cfg bench.Config, csv bool, w io.Writer) error {
	switch exp {
	case "table1":
		t, err := bench.RunTable1(cfg)
		if err != nil {
			return err
		}
		if csv {
			return t.CSV(w)
		}
		return t.Render(w)
	case "fig2":
		return renderFigure(bench.RunFig2(cfg))(csv, w)
	case "fig3":
		return renderFigure(bench.RunFig3(cfg))(csv, w)
	case "fig4":
		r, err := bench.RunFig4(cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	case "fig5":
		return renderFigure(bench.RunFig5(cfg))(csv, w)
	case "fig6":
		return renderFigure(bench.RunFig6(cfg))(csv, w)
	case "wiki":
		r, err := bench.RunWiki(cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	case "fig2ov":
		return renderFigure(bench.RunFig2Overlap(cfg))(csv, w)
	case "ablate-c":
		return renderFigure(bench.RunAblateC(cfg))(csv, w)
	case "ablate-merge":
		return renderFigure(bench.RunAblateMerge(cfg))(csv, w)
	case "scale":
		return renderFigure(bench.RunScale(cfg))(csv, w)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// renderFigure adapts (figure, error) to a curried renderer so the
// switch above stays flat.
func renderFigure(fig *bench.Figure, err error) func(csv bool, w io.Writer) error {
	return func(csv bool, w io.Writer) error {
		if err != nil {
			return err
		}
		if csv {
			return fig.CSV(w)
		}
		return fig.Render(w)
	}
}
