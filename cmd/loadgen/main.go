// Command loadgen gates the seeded-search hot path: it stands up two
// identical ocad serving stacks over one LFR graph — one with the
// generation-keyed result cache, one with caching disabled — drives a
// mixed read/write load against each (skewed seed popularity so the
// cache is actually exercised, interleaved mutations so invalidation
// and carry-forward are too), and compares hot-seed tail latency.
//
// The SLO gate: cached hot-seed p99 must beat uncached by at least
// -min-speedup (default 5×), while the cached results stay
// NMI-equivalent to fresh recomputation (carry-forward must not trade
// correctness for latency). Two targeted sub-phases assert the
// machinery deterministically: a stampede of identical concurrent
// requests must coalesce onto one search, and an incremental publish
// whose dirty region avoids a cached community must carry the entry
// forward.
//
//	loadgen [-n 20000] [-readers 48] [-duration 8s] [-out BENCH_search.json]
//
// With -short it runs a scaled-down smoke version (CI): every phase is
// exercised and the functional gates (coalescing, carry-forward, NMI)
// are enforced, but latencies are reported without being judged.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/spectral"
)

// phaseStats is one server's measured slice of the mixed-load phase.
type phaseStats struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Shed       int     `json:"shed_503"`
	Throughput float64 `json:"throughput_rps"`
	HotP50MS   float64 `json:"hot_p50_ms"`
	HotP99MS   float64 `json:"hot_p99_ms"`
	ColdP99MS  float64 `json:"cold_p99_ms"`
	HitRate    float64 `json:"hit_rate"`
}

// cacheCounters mirrors the server's /debug/metrics search_cache
// object (the JSON shape is part of the protocol).
type cacheCounters struct {
	Entries        int     `json:"entries"`
	Capacity       int     `json:"capacity"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	Coalesced      uint64  `json:"coalesced"`
	CarriedForward uint64  `json:"carried_forward"`
	CarryDropped   uint64  `json:"carry_dropped"`
	Evicted        uint64  `json:"evicted"`
	StalePruned    uint64  `json:"stale_pruned"`
	HitRate        float64 `json:"hit_rate"`
}

type benchReport struct {
	Nodes         int        `json:"nodes"`
	Edges         int64      `json:"edges"`
	C             float64    `json:"c"`
	Seed          int64      `json:"seed"`
	Short         bool       `json:"short"`
	Readers       int        `json:"readers"`
	SearchWorkers int        `json:"search_workers"`
	HotSeeds      int        `json:"hot_seeds"`
	HotFraction   float64    `json:"hot_fraction"`
	Cached        phaseStats `json:"cached"`
	Uncached      phaseStats `json:"uncached"`
	// Speedup is uncached hot p99 / cached hot p99 — the SLO gate.
	Speedup float64 `json:"hot_p99_speedup"`
	// NMI compares the cover assembled from cached-server answers
	// (including carried entries) with fresh uncached recomputation
	// over the same mutation history.
	NMI float64 `json:"nmi_cached_vs_fresh"`
	// StampedeCoalesced and CarriedForward are the targeted sub-phase
	// counters; both must move for the run to pass.
	StampedeCoalesced uint64        `json:"stampede_coalesced"`
	CarriedForward    uint64        `json:"carried_forward"`
	FinalCounters     cacheCounters `json:"final_cache_counters"`
	GeneratedUnix     int64         `json:"generated_unix"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	n := fs.Int("n", 20000, "LFR graph size")
	out := fs.String("out", "BENCH_search.json", "output report path")
	seed := fs.Int64("seed", 42, "randomness seed (graph, load mix, mutations)")
	readers := fs.Int("readers", 64, "concurrent load clients per phase")
	searchWorkers := fs.Int("search-workers", 4, "server-side search pool size (readers >> workers makes queueing visible)")
	duration := fs.Duration("duration", 8*time.Second, "mixed-load phase length per server")
	hotSeeds := fs.Int("hot-seeds", 16, "distinct hot seeds the skewed load concentrates on")
	hotFraction := fs.Float64("hot-fraction", 0.97, "fraction of requests aimed at a hot seed")
	mutateEvery := fs.Duration("mutate-every", 1200*time.Millisecond, "mutation batch cadence during the load phase")
	cacheSize := fs.Int("cache-size", 1024, "server search-cache capacity (entries) on the cached stack")
	evalSeeds := fs.Int("eval-seeds", 200, "seeds in the NMI equivalence sweep")
	short := fs.Bool("short", false, "CI smoke mode: small graph, functional gates only, latencies reported but not judged")
	minSpeedup := fs.Float64("min-speedup", 5, "fail unless cached hot-seed p99 beats uncached by this factor (ignored with -short)")
	minNMI := fs.Float64("min-nmi", 0.99, "fail when NMI(cached answers, fresh answers) drops below this")
	maxErrors := fs.Float64("max-errors", 0.01, "fail when the cached server's non-200 rate exceeds this budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *short {
		if *n == 20000 {
			*n = 1500
		}
		if *duration == 8*time.Second {
			*duration = 1500 * time.Millisecond
		}
		if *readers == 64 {
			*readers = 16
		}
		if *mutateEvery == 1200*time.Millisecond {
			*mutateEvery = 400 * time.Millisecond
		}
		if *evalSeeds == 200 {
			*evalSeeds = 60
		}
		if *minNMI == 0.99 {
			// The smoke graph's communities are small enough that one
			// divergent carried entry moves the score; the full-scale
			// floor is the one that gates.
			*minNMI = 0.9
		}
	}

	log.Printf("generating LFR graph: n=%d", *n)
	// Community sizes well above the average degree make each uncached
	// search genuinely expensive (the greedy growth must add every
	// member, evaluating the boundary each step), which is the regime
	// the cache exists for: a hit costs HTTP handling alone, a miss
	// costs HTTP plus the full search.
	// A dense graph makes each uncached search genuinely expensive —
	// greedy growth evaluates the boundary every step, and the boundary
	// scales with degree — which is the regime the cache exists for: a
	// hit costs HTTP handling alone, a miss costs HTTP plus the search.
	// Heterogeneous community sizes keep the roles distinct: hot seeds
	// go to the largest communities, mutations to the smallest (cheap
	// incremental rebuilds, usually far from the hot set).
	avgDeg, maxDeg := 48.0, 120
	minCom, maxCom := 150, 400
	if *n < 5000 {
		avgDeg, maxDeg, minCom, maxCom = 12, 30, 20, 60
	}
	bench, err := lfr.Generate(lfr.Params{
		N: *n, AvgDeg: avgDeg, MaxDeg: maxDeg, Mu: 0.05,
		MinCom: minCom, MaxCom: maxCom, Seed: *seed,
	})
	if err != nil {
		return fmt.Errorf("lfr.Generate: %w", err)
	}
	g := bench.Graph
	log.Printf("graph ready: %d nodes, %d edges, %d planted communities", g.N(), g.M(), bench.Communities.Len())

	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		return fmt.Errorf("spectral.C: %w", err)
	}
	log.Printf("c = %.4f", c)

	mkConfig := func(cacheSize int) server.Config {
		return server.Config{
			OCA:                  core.Options{Seed: *seed, C: c},
			SearchWorkers:        *searchWorkers,
			RefreshDebounce:      10 * time.Millisecond,
			IncrementalThreshold: 0.5,
			MaxNodes:             g.N(),
			SearchCacheSize:      cacheSize,
		}
	}
	// Both stacks serve the planted cover (the preloaded-cover path), so
	// startup needs no OCA run and the two servers start byte-identical.
	cached, err := server.NewWithCover(g, bench.Communities, mkConfig(*cacheSize))
	if err != nil {
		return fmt.Errorf("cached server: %w", err)
	}
	defer cached.Close()
	control, err := server.NewWithCover(g, bench.Communities, mkConfig(-1))
	if err != nil {
		return fmt.Errorf("control server: %w", err)
	}
	defer control.Close()
	tsCached := httptest.NewServer(cached.Handler())
	defer tsCached.Close()
	tsControl := httptest.NewServer(control.Handler())
	defer tsControl.Close()

	// Prime both stacks past the mandatory full rebuild a preloaded
	// cover forces on its first mutation batch, so the load phase's
	// publishes take the incremental engine (identical batch on both —
	// the mutation histories must match for the NMI sweep to compare
	// like with like).
	prime := bench.Communities.Communities[0]
	primeEdge := [2]int32{prime[0], prime[1]}
	for _, u := range []string{tsCached.URL, tsControl.URL} {
		log.Printf("priming %s (full rebuild)...", u)
		if err := postEdges(u, [][2]int32{primeEdge}, nil, true); err != nil {
			return fmt.Errorf("priming rebuild: %w", err)
		}
	}

	hot := pickHotSeeds(bench.Communities, *hotSeeds)
	report := benchReport{
		Nodes: g.N(), Edges: g.M(), C: c, Seed: *seed, Short: *short,
		Readers: *readers, SearchWorkers: *searchWorkers,
		HotSeeds: *hotSeeds, HotFraction: *hotFraction,
	}

	// Pre-mutation eval sweep on the cached server: populate cache
	// entries the mutation phase will carry (or drop), so the NMI sweep
	// afterwards actually measures carried answers, not fresh ones.
	evals := pickEvalSeeds(bench.Communities, *evalSeeds)
	log.Printf("pre-caching %d eval seeds...", len(evals))
	preStart := time.Now()
	var totalMembers int
	for i, s := range evals {
		r, err := search(tsCached.URL, s, 1000+int64(i))
		if err != nil {
			return fmt.Errorf("eval pre-cache: %w", err)
		}
		totalMembers += len(r.Members)
	}
	log.Printf("  %.2fms/search sequential, mean community %d members",
		float64(time.Since(preStart))/float64(time.Millisecond)/float64(len(evals)), totalMembers/len(evals))

	// Mixed-load phases, one server at a time so the two measurements
	// see the same CPU budget. Identical seeded load and mutation
	// scripts per server.
	log.Printf("load phase: cached server (%v, %d readers)...", *duration, *readers)
	report.Cached, err = loadPhase(tsCached.URL, g.N(), hot, *readers, *hotFraction, *duration, *mutateEvery, *seed, bench.Communities)
	if err != nil {
		return err
	}
	report.Cached.HitRate = mustCounters(tsCached.URL).HitRate
	log.Printf("load phase: control server...")
	report.Uncached, err = loadPhase(tsControl.URL, g.N(), hot, *readers, *hotFraction, *duration, *mutateEvery, *seed, bench.Communities)
	if err != nil {
		return err
	}
	if report.Cached.HotP99MS > 0 {
		report.Speedup = report.Uncached.HotP99MS / report.Cached.HotP99MS
	}
	log.Printf("hot p99: cached %.3fms, uncached %.3fms (%.1fx); cached hit rate %.2f",
		report.Cached.HotP99MS, report.Uncached.HotP99MS, report.Speedup, report.Cached.HitRate)
	log.Printf("  cached:   p50 %.3fms cold-p99 %.3fms %d req %d shed %.0f rps",
		report.Cached.HotP50MS, report.Cached.ColdP99MS, report.Cached.Requests, report.Cached.Shed, report.Cached.Throughput)
	log.Printf("  uncached: p50 %.3fms cold-p99 %.3fms %d req %d shed %.0f rps",
		report.Uncached.HotP50MS, report.Uncached.ColdP99MS, report.Uncached.Requests, report.Uncached.Shed, report.Uncached.Throughput)

	// NMI equivalence: replay the eval keys on both servers. The cached
	// server answers from whatever survived the mutation churn (carried
	// entries included); the control recomputes everything fresh over
	// the identical history.
	log.Printf("NMI equivalence sweep (%d seeds)...", len(evals))
	var cachedCover, freshCover cover.Cover
	for i, s := range evals {
		rc, err := search(tsCached.URL, s, 1000+int64(i))
		if err != nil {
			return fmt.Errorf("eval cached: %w", err)
		}
		rf, err := search(tsControl.URL, s, 1000+int64(i))
		if err != nil {
			return fmt.Errorf("eval fresh: %w", err)
		}
		cachedCover.Communities = append(cachedCover.Communities, rc.Members)
		freshCover.Communities = append(freshCover.Communities, rf.Members)
	}
	report.NMI = metrics.NMI(&cachedCover, &freshCover, g.N())
	log.Printf("NMI(cached, fresh) = %.4f", report.NMI)

	// Targeted sub-phase: stampede. A burst of identical requests for a
	// never-seen key must run exactly one search between them — every
	// other caller is served from the in-flight search or the entry it
	// inserts, never a recompute. The pool is saturated with
	// distinct-key work first so the leader queues for a slot, giving
	// followers a window to coalesce; how many actually land in that
	// window (vs arriving as cache hits just after) is scheduling- and
	// core-count-dependent, so coalesced is reported, not gated.
	busySeeds := pickEvalSeeds(bench.Communities, 4**searchWorkers)
	before := mustCounters(tsCached.URL)
	// The warm key (evals[0], 1000) is cached at the current generation
	// by the sweep above, so warming is pure hits and leaves the miss
	// accounting to the burst key and the pool fillers alone.
	stampede(tsCached.URL, evals[0], 999, 1000, busySeeds)
	after := mustCounters(tsCached.URL)
	report.StampedeCoalesced = after.Coalesced - before.Coalesced
	if got, want := after.Misses-before.Misses, uint64(1+len(busySeeds)*stampedeFillRounds); got != want {
		return fmt.Errorf("stampede ran %d searches, want exactly %d (1 + %d pool-filler keys)", got, want, len(busySeeds)*stampedeFillRounds)
	}
	served := (after.Hits - before.Hits - stampedeBurst) + report.StampedeCoalesced
	if served != stampedeBurst-1 {
		return fmt.Errorf("stampede: %d of %d identical requests served without recompute, want %d",
			served, stampedeBurst, stampedeBurst-1)
	}
	log.Printf("stampede: 1 search for %d identical requests (%d coalesced in-flight, %d as hits)",
		stampedeBurst, report.StampedeCoalesced, served-report.StampedeCoalesced)
	// On a multi-core host followers genuinely overlap the leader, so
	// the in-flight coalescing window must be observable; a 1-CPU host
	// serializes sub-ms searches before followers arrive, so there the
	// counter stays report-only.
	if runtime.GOMAXPROCS(0) > 1 && report.StampedeCoalesced == 0 {
		return fmt.Errorf("stampede: coalesced counter stayed 0 on a %d-proc host; singleflight window never exercised",
			runtime.GOMAXPROCS(0))
	}

	// Targeted sub-phase: carry-forward. Cache a seed, mutate a far
	// community, and the entry must survive to the new generation with
	// identical bytes. Communities are tried until one pair is disjoint
	// from the publish's dirty region (with low mixing nearly always
	// the first).
	carried, err := carryForwardProbe(tsCached.URL, bench.Communities)
	if err != nil {
		return err
	}
	report.CarriedForward = carried
	report.FinalCounters = mustCounters(tsCached.URL)
	report.GeneratedUnix = time.Now().Unix()

	// Gates.
	if errRate := float64(report.Cached.Errors) / float64(max(report.Cached.Requests, 1)); errRate > *maxErrors {
		return fmt.Errorf("cached server error rate %.4f exceeds budget %.4f", errRate, *maxErrors)
	}
	if report.NMI < *minNMI {
		return fmt.Errorf("NMI(cached, fresh) = %.4f below floor %.4f", report.NMI, *minNMI)
	}
	if report.CarriedForward == 0 {
		return fmt.Errorf("no cache entry survived an untouched incremental publish")
	}
	if !*short {
		if report.Cached.HitRate < 0.5 {
			return fmt.Errorf("cached hit rate %.2f below 0.5 — the skewed load is not exercising the cache", report.Cached.HitRate)
		}
		if report.Speedup < *minSpeedup {
			return fmt.Errorf("hot-seed p99 speedup %.2fx below the %.1fx gate", report.Speedup, *minSpeedup)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("PASS: report written to %s", *out)
	return nil
}

// pickHotSeeds takes one seed from each of the k largest communities:
// distinct communities so hot traffic exercises different cache keys,
// and the largest because that is the regime the cache pays for —
// popular seeds sit in big communities, which are exactly the most
// expensive to recompute and the cheapest to answer from cache.
func pickHotSeeds(cv *cover.Cover, k int) []int32 {
	order := make([]int, cv.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(cv.Communities[order[a]]) > len(cv.Communities[order[b]])
	})
	seeds := make([]int32, 0, k)
	for _, i := range order {
		if len(seeds) == k {
			break
		}
		seeds = append(seeds, cv.Communities[i][0])
	}
	return seeds
}

// pickEvalSeeds takes one mid-list member from every community, up to
// k, for the NMI sweep.
func pickEvalSeeds(cv *cover.Cover, k int) []int32 {
	seeds := make([]int32, 0, k)
	for i := 0; i < cv.Len() && len(seeds) < k; i++ {
		c := cv.Communities[i]
		seeds = append(seeds, c[len(c)/2])
	}
	return seeds
}

// loadPhase drives the skewed mixed read/write load against one server
// and reports its latency distribution. The mutator thread applies a
// deterministic seeded batch sequence (intra-community edge additions)
// at the configured cadence with Wait=false, so publishes interleave
// with reads exactly as they would in production.
func loadPhase(url string, n int, hot []int32, readers int, hotFraction float64, d, mutateEvery time.Duration, seed int64, cv *cover.Cover) (phaseStats, error) {
	var (
		mu       sync.Mutex
		hotLat   []float64
		coldLat  []float64
		errs     atomic.Int64
		shed     atomic.Int64
		requests atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: deterministic intra-community additions, one community
	// per batch, chosen by the seeded rng from the smaller half of the
	// cover — churn concentrates in small groups, keeping each
	// incremental rebuild cheap and usually clear of the hot set.
	// Wait=false — readers must never be blocked behind a rebuild.
	order := make([]int, cv.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(cv.Communities[order[a]]) < len(cv.Communities[order[b]])
	})
	small := order[:max(1, len(order)/2)]
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 7))
		tick := time.NewTicker(mutateEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c := cv.Communities[small[rng.Intn(len(small))]]
				u, v := c[rng.Intn(len(c))], c[rng.Intn(len(c))]
				if u == v {
					continue
				}
				_ = postEdges(url, [][2]int32{{u, v}}, nil, false)
			}
		}
	}()

	// The default transport keeps only 2 idle conns per host; dozens of
	// readers would re-dial constantly and the dial cost would swamp
	// the cheap (cache-hit) responses being measured.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        readers * 2,
		MaxIdleConnsPerHost: readers * 2,
	}}
	defer client.CloseIdleConnections()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(r)*101))
			for {
				select {
				case <-stop:
					return
				default:
				}
				isHot := rng.Float64() < hotFraction
				var s int32
				if isHot {
					s = hot[rng.Intn(len(hot))]
				} else {
					s = int32(rng.Intn(n))
				}
				start := time.Now()
				code, err := searchStatus(client, url, s, 0)
				lat := float64(time.Since(start)) / float64(time.Millisecond)
				requests.Add(1)
				switch {
				case err != nil || (code != http.StatusOK && code != http.StatusServiceUnavailable):
					errs.Add(1)
				case code == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					mu.Lock()
					if isHot {
						hotLat = append(hotLat, lat)
					} else {
						coldLat = append(coldLat, lat)
					}
					mu.Unlock()
				}
			}
		}(r)
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	st := phaseStats{
		Requests:   int(requests.Load()),
		Errors:     int(errs.Load()),
		Shed:       int(shed.Load()),
		Throughput: float64(requests.Load()) / d.Seconds(),
		HotP50MS:   percentile(hotLat, 0.50),
		HotP99MS:   percentile(hotLat, 0.99),
		ColdP99MS:  percentile(coldLat, 0.99),
	}
	if len(hotLat) == 0 {
		return st, fmt.Errorf("load phase recorded no successful hot-seed requests")
	}
	return st, nil
}

// stampede fires one burst of identical concurrent requests for a
// fresh (seed, rngSeed) key. Two tricks keep the burst genuinely
// concurrent with the leader's compute rather than trailing it:
// every burst client first issues a request for warmKey (already
// cached — pure hits) so its keep-alive connection is established
// before the barrier drops, and busySeeds are queued with distinct
// never-cached keys to occupy the search pool so the leader has to
// wait for a slot. Each filler runs stampedeFillRounds distinct keys
// so the pool stays busy well past the burst's arrival.
const (
	stampedeBurst      = 64
	stampedeFillRounds = 8
)

func stampede(url string, seed int32, rngSeed, warmRNG int64, busySeeds []int32) {
	const burst = stampedeBurst
	const fillRounds = stampedeFillRounds
	clients := make([]*http.Client, burst)
	var warm sync.WaitGroup
	for i := range clients {
		clients[i] = &http.Client{}
		warm.Add(1)
		go func(c *http.Client) {
			defer warm.Done()
			_, _ = clientSearch(c, url, seed, warmRNG)
		}(clients[i])
	}
	warm.Wait()

	var busy sync.WaitGroup
	for i, s := range busySeeds {
		busy.Add(1)
		go func(s int32, i int) {
			defer busy.Done()
			for r := 0; r < fillRounds; r++ {
				_, _ = search(url, s, 7000+int64(i*fillRounds+r))
			}
		}(s, i)
	}
	time.Sleep(5 * time.Millisecond) // let the filler work queue on the pool

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(c *http.Client) {
			defer wg.Done()
			<-start
			_, _ = clientSearch(c, url, seed, rngSeed)
		}(clients[i])
	}
	close(start)
	wg.Wait()
	busy.Wait()
}

// carryForwardProbe caches one community's search, mutates a far
// community (incremental publish whose dirty region is disjoint), and
// verifies the entry is served carried — same members, new generation.
// Returns the carried_forward counter delta.
func carryForwardProbe(url string, cv *cover.Cover) (uint64, error) {
	before := mustCounters(url)
	for attempt := 0; attempt < 8; attempt++ {
		seedCom := cv.Communities[attempt%cv.Len()]
		farCom := cv.Communities[(attempt+cv.Len()/2)%cv.Len()]
		s := seedCom[0]
		pre, err := search(url, s, 5000+int64(attempt))
		if err != nil {
			return 0, fmt.Errorf("carry probe pre-search: %w", err)
		}
		if err := postEdges(url, [][2]int32{{farCom[0], farCom[len(farCom)-1]}}, nil, true); err != nil {
			return 0, fmt.Errorf("carry probe mutation: %w", err)
		}
		post, err := search(url, s, 5000+int64(attempt))
		if err != nil {
			return 0, fmt.Errorf("carry probe post-search: %w", err)
		}
		if !post.Cached || post.Generation <= pre.Generation {
			continue // dirty region reached the cached community; try another pair
		}
		if !equalMembers(pre.Members, post.Members) {
			return 0, fmt.Errorf("carried entry mutated: %v -> %v", pre.Members, post.Members)
		}
		after := mustCounters(url)
		log.Printf("carry-forward probe: entry survived publish (gen %d -> %d, %d carried)",
			pre.Generation, post.Generation, after.CarriedForward-before.CarriedForward)
		return after.CarriedForward - before.CarriedForward, nil
	}
	return 0, fmt.Errorf("no carry-forward observed in 8 attempts")
}

type searchResponse struct {
	Seed       int32   `json:"seed"`
	Size       int     `json:"size"`
	Fitness    float64 `json:"fitness"`
	Members    []int32 `json:"members"`
	Generation uint64  `json:"generation"`
	Cached     bool    `json:"cached"`
}

func searchBody(seed int32, rngSeed int64) []byte {
	body, _ := json.Marshal(map[string]any{"seed": seed, "rng_seed": rngSeed})
	return body
}

func search(url string, seed int32, rngSeed int64) (*searchResponse, error) {
	return clientSearch(http.DefaultClient, url, seed, rngSeed)
}

func clientSearch(client *http.Client, url string, seed int32, rngSeed int64) (*searchResponse, error) {
	resp, err := client.Post(url+"/v1/search", "application/json", bytes.NewReader(searchBody(seed, rngSeed)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("search seed %d: status %d: %s", seed, resp.StatusCode, data)
	}
	var out searchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// searchStatus is the hot-path variant: status only, body drained.
func searchStatus(client *http.Client, url string, seed int32, rngSeed int64) (int, error) {
	resp, err := client.Post(url+"/v1/search", "application/json", bytes.NewReader(searchBody(seed, rngSeed)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func postEdges(url string, add, remove [][2]int32, wait bool) error {
	body, _ := json.Marshal(map[string]any{"add": add, "remove": remove, "wait": wait})
	resp, err := http.Post(url+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("edges: status %d: %s", resp.StatusCode, data)
	}
	return nil
}

// mustCounters reads the search_cache object from /debug/metrics.
func mustCounters(url string) cacheCounters {
	resp, err := http.Get(url + "/debug/metrics")
	if err != nil {
		log.Fatalf("debug/metrics: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		SearchCache *cacheCounters `json:"search_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatalf("debug/metrics decode: %v", err)
	}
	if body.SearchCache == nil {
		return cacheCounters{}
	}
	return *body.SearchCache
}

func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func equalMembers(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
