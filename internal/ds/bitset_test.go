package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() < 130 {
		t.Fatalf("cap=%d, want >=130", b.Cap())
	}
	if !b.Add(0) || !b.Add(64) || !b.Add(129) {
		t.Fatal("fresh adds should return true")
	}
	if b.Add(64) {
		t.Fatal("second add of 64 should return false")
	}
	if b.Len() != 3 {
		t.Fatalf("len=%d, want 3", b.Len())
	}
	if !b.Contains(129) || b.Contains(1) {
		t.Fatal("membership wrong")
	}
	if !b.Remove(64) || b.Remove(64) {
		t.Fatal("remove semantics wrong")
	}
	got := b.Members()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("members=%v, want [0 129]", got)
	}
	b.Clear()
	if b.Len() != 0 || b.Contains(0) {
		t.Fatal("clear failed")
	}
}

// TestBitsetMatchesMap cross-checks against map[int32]bool.
func TestBitsetMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		b := NewBitset(n)
		model := map[int32]bool{}
		for op := 0; op < 400; op++ {
			v := int32(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				if b.Add(v) == model[v] {
					return false
				}
				model[v] = true
			case 1:
				if b.Remove(v) != model[v] {
					return false
				}
				delete(model, v)
			default:
				if b.Contains(v) != model[v] {
					return false
				}
			}
			if b.Len() != len(model) {
				return false
			}
		}
		members := b.Members()
		if len(members) != len(model) {
			return false
		}
		for _, m := range members {
			if !model[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := NewBitset(256)
	for _, v := range []int32{200, 3, 77, 64, 63} {
		b.Add(v)
	}
	prev := int32(-1)
	b.ForEach(func(i int32) {
		if i <= prev {
			t.Fatalf("ForEach not increasing: %d after %d", i, prev)
		}
		prev = i
	})
}
