// Package lfk implements the LFK baseline (Lancichinetti, Fortunato,
// Kertész 2008), the fitness-maximization overlapping community
// algorithm the paper compares OCA against: the natural community of a
// seed is grown by greedily adding the neighbor with the highest fitness
// gain and removing any member whose fitness contribution turns
// negative, under the fitness
//
//	f(S) = kin / (kin + kout)^α
//
// with kin twice the internal edge count and kout the boundary degree.
// The paper uses α = 1 ("the standard parameter").
package lfk

import (
	"math"

	"repro/internal/cover"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/xrand"
)

// gainTol mirrors core's tolerance: every applied move must strictly
// improve f(S), which both guarantees termination and filters float
// noise.
const gainTol = 1e-12

// Options configure a Run.
type Options struct {
	// Alpha is the fitness exponent. Default 1 (the paper's choice).
	Alpha float64
	// Seed drives the random order in which uncovered nodes become
	// search seeds.
	Seed int64
	// MaxSteps caps add/remove operations per seed (safety valve; the
	// search terminates on its own because f strictly increases).
	// Default 100000. Negative means unlimited.
	MaxSteps int
	// MaxSeeds bounds the number of natural communities grown. Default
	// n (the algorithm stops earlier once every node is covered).
	MaxSeeds int
	// MinCommunitySize drops smaller communities. Default 1: LFK's
	// schedule covers every node, isolated nodes legitimately end up in
	// singleton communities.
	MinCommunitySize int
}

func (o Options) withDefaults(n int) Options {
	if o.Alpha <= 0 {
		o.Alpha = 1
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.MaxSeeds <= 0 {
		o.MaxSeeds = n
	}
	if o.MinCommunitySize <= 0 {
		o.MinCommunitySize = 1
	}
	return o
}

// Result is the outcome of a Run.
type Result struct {
	Cover      *cover.Cover
	SeedsTried int
	Steps      int64
}

// Run executes LFK on g: natural communities are grown from randomly
// ordered seeds until every node belongs to at least one community.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	opt = opt.withDefaults(n)
	res := &Result{Cover: cover.NewCover(nil)}
	if n == 0 {
		return res, nil
	}

	rng := xrand.New(opt.Seed, -1)
	order := rng.Perm(n)
	covered := ds.NewBitset(n)
	st := search.NewState(g, g.MaxDegree())

	var communities []cover.Community
	for _, v := range order {
		if covered.Contains(int32(v)) {
			continue
		}
		if res.SeedsTried >= opt.MaxSeeds {
			break
		}
		res.SeedsTried++
		st.Reset()
		steps := naturalCommunity(g, st, int32(v), opt)
		res.Steps += int64(steps)
		members := st.Members()
		for _, m := range members {
			covered.Add(m)
		}
		if len(members) >= opt.MinCommunitySize {
			communities = append(communities, cover.Community(members))
		}
	}
	cv := cover.NewCover(communities)
	cv.SortBySize()
	res.Cover = cv
	return res, nil
}

// fitness returns f(S) = kin/(kin+kout)^α given Ein(S) and vol(S).
// kin = 2·Ein and kin + kout = vol. The empty and volume-zero cases are
// defined as 0.
func fitness(ein, vol int64, alpha float64) float64 {
	if vol <= 0 {
		return 0
	}
	return 2 * float64(ein) / math.Pow(float64(vol), alpha)
}

// naturalCommunity grows the natural community of seed in place in st and
// returns the number of add/remove operations applied.
func naturalCommunity(g *graph.Graph, st *search.State, seed int32, opt Options) int {
	st.Add(seed)
	steps := 0
	for opt.MaxSteps <= 0 || steps < opt.MaxSteps {
		cur := fitness(st.Ein(), st.Volume(), opt.Alpha)

		// Removal phase: evict the member with the most negative node
		// fitness, repeat until all contributions are non-negative.
		if st.Size() > 1 {
			if u, gain := worstRemoval(g, st, cur, opt.Alpha); gain > gainTol {
				st.Remove(u)
				steps++
				continue
			}
		}

		// Growth phase: add the frontier node with the best positive gain.
		v, gain := bestAddition(g, st, cur, opt.Alpha)
		if gain <= gainTol {
			return steps
		}
		st.Add(v)
		steps++
	}
	return steps
}

// bestAddition scans the frontier for the node maximizing
// f(S∪{v}) − f(S). Ties break toward the smallest node id so runs are
// deterministic regardless of map iteration order.
func bestAddition(g *graph.Graph, st *search.State, cur, alpha float64) (int32, float64) {
	bestV := int32(-1)
	bestGain := math.Inf(-1)
	ein, vol := st.Ein(), st.Volume()
	st.ForEachFrontier(func(v int32, dS int32) {
		f := fitness(ein+int64(dS), vol+int64(g.Degree(v)), alpha)
		gain := f - cur
		if gain > bestGain || (gain == bestGain && v < bestV) {
			bestV, bestGain = v, gain
		}
	})
	return bestV, bestGain
}

// worstRemoval scans the members for the node whose removal most
// increases the fitness, i.e. the node with the most negative node
// fitness f(S) − f(S\{u}). Ties break toward the smallest node id.
func worstRemoval(g *graph.Graph, st *search.State, cur, alpha float64) (int32, float64) {
	bestU := int32(-1)
	bestGain := math.Inf(-1)
	ein, vol := st.Ein(), st.Volume()
	st.ForEachMember(func(u int32, dS int32) {
		f := fitness(ein-int64(dS), vol-int64(g.Degree(u)), alpha)
		gain := f - cur
		if gain > bestGain || (gain == bestGain && u < bestU) {
			bestU, bestGain = u, gain
		}
	})
	return bestU, bestGain
}
