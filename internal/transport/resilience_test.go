package transport

// Deterministic unit tests for the client's resilience wiring: which
// RPCs retry (and which never do), how the breaker trips and fast-
// fails, how caller hang-ups are classified, and how the deadline
// header is stamped and enforced. Everything here runs against local
// scripted HTTP servers — no processes, no sleeps beyond the faults
// themselves.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lfr"
	"repro/internal/shard"
)

// scriptedBackend is an httptest server whose handler is swappable per
// test leg, counting hits per path.
type scriptedBackend struct {
	*httptest.Server
	hits    atomic.Int64
	handler atomic.Value // http.HandlerFunc
}

func newScriptedBackend(t *testing.T) *scriptedBackend {
	t.Helper()
	sb := &scriptedBackend{}
	sb.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unscripted", http.StatusTeapot)
	}))
	sb.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sb.hits.Add(1)
		sb.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(sb.Close)
	return sb
}

func (sb *scriptedBackend) script(h http.HandlerFunc) { sb.handler.Store(h) }

// abort kills the connection mid-response: the client observes a
// transport-level error, which is what the retryer classifies as
// transient.
func abort(http.ResponseWriter, *http.Request) { panic(http.ErrAbortHandler) }

// TestApplyNeverRetries: a failed apply reaches the server exactly
// once — mutations are not idempotent at this layer, so the retry
// policy must never touch them.
func TestApplyNeverRetries(t *testing.T) {
	sb := newScriptedBackend(t)
	sb.script(abort)
	c := newClient(sb.URL, 0, 1, ClientConfig{RequestTimeout: 2 * time.Second})
	defer c.Close()

	err := c.Apply(context.Background(), [][2]int32{{0, 1}}, nil)
	if err == nil {
		t.Fatal("apply against aborting backend succeeded")
	}
	if !errors.Is(err, shard.ErrUnavailable) {
		t.Errorf("apply error = %v, want ErrUnavailable", err)
	}
	if got := sb.hits.Load(); got != 1 {
		t.Fatalf("failed apply hit the server %d times, want exactly 1 (apply must never retry)", got)
	}
	if st := c.ResilienceStats(); st.Retries != 0 {
		t.Errorf("retries = %d after failed apply, want 0", st.Retries)
	}
}

// TestLookupRetriesTransientFailure: a torn connection on the first
// lookup attempt is retried and the second attempt's answer is
// returned — with the spend visible in the retry counter.
func TestLookupRetriesTransientFailure(t *testing.T) {
	sb := newScriptedBackend(t)
	var attempt atomic.Int64
	sb.script(func(w http.ResponseWriter, r *http.Request) {
		if attempt.Add(1) == 1 {
			abort(w, r)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(LookupResponse{Generation: 3})
	})
	c := newClient(sb.URL, 0, 1, ClientConfig{RequestTimeout: 2 * time.Second})
	defer c.Close()

	resp, err := c.LookupRemote(context.Background(), []int32{0}, false)
	if err != nil {
		t.Fatalf("LookupRemote with one torn attempt: %v", err)
	}
	if resp.Generation != 3 {
		t.Errorf("generation = %d, want 3 (the retried attempt's answer)", resp.Generation)
	}
	if got := sb.hits.Load(); got != 2 {
		t.Errorf("lookup hit the server %d times, want 2 (fail, retry)", got)
	}
	if st := c.ResilienceStats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

// TestBreakerTripsAndFastFails: consecutive transport failures open
// the breaker; once open, RPCs are refused locally (no network hit)
// and the refusal is counted and non-retryable.
func TestBreakerTripsAndFastFails(t *testing.T) {
	sb := newScriptedBackend(t)
	sb.script(abort)
	c := newClient(sb.URL, 0, 1, ClientConfig{RequestTimeout: 2 * time.Second})
	defer c.Close()

	// Each lookup burns up to MaxAttempts failures; a handful is more
	// than the breaker threshold.
	for i := 0; i < 3; i++ {
		if _, err := c.LookupRemote(context.Background(), []int32{0}, false); err == nil {
			t.Fatal("lookup against aborting backend succeeded")
		}
	}
	st := c.ResilienceStats()
	if st.BreakerState != "open" || st.BreakerTrips < 1 {
		t.Fatalf("breaker after failure burst: %+v, want open with >= 1 trip", st)
	}
	if !c.BreakerOpen() {
		t.Error("BreakerOpen() = false with an open breaker")
	}

	before := sb.hits.Load()
	_, err := c.LookupRemote(context.Background(), []int32{0}, false)
	if err == nil {
		t.Fatal("lookup with open breaker succeeded")
	}
	if !errors.Is(err, shard.ErrUnavailable) {
		t.Errorf("fast-fail error = %v, want ErrUnavailable", err)
	}
	if got := sb.hits.Load(); got != before {
		t.Errorf("open breaker still sent %d requests to the backend", got-before)
	}
	if st := c.ResilienceStats(); st.BreakerFastFails < 1 {
		t.Errorf("fast fails = %d, want >= 1", st.BreakerFastFails)
	}
}

// TestCancelCountsDeadlineNotBreaker: a caller hang-up says nothing
// about the backend's health — it must increment the deadline-exceeded
// counter and leave the breaker closed.
func TestCancelCountsDeadlineNotBreaker(t *testing.T) {
	sb := newScriptedBackend(t)
	release := make(chan struct{})
	sb.script(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	})
	defer close(release)
	c := newClient(sb.URL, 0, 1, ClientConfig{RequestTimeout: 30 * time.Second})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.LookupRemote(ctx, []int32{0}, false); err == nil {
		t.Fatal("lookup survived caller cancellation")
	}
	st := c.ResilienceStats()
	if st.DeadlineExceeded < 1 {
		t.Errorf("deadline_exceeded = %d after caller hang-up, want >= 1", st.DeadlineExceeded)
	}
	if st.BreakerState != "closed" || st.BreakerTrips != 0 {
		t.Errorf("breaker after caller hang-up: %+v, want closed with 0 trips (cancellation is not backend failure evidence)", st)
	}
}

// TestDeadlineHeaderStamped: RPCs under a context deadline carry
// Ocad-Deadline-Ms with the remaining budget; RPCs without one omit
// it.
func TestDeadlineHeaderStamped(t *testing.T) {
	sb := newScriptedBackend(t)
	var header atomic.Value
	sb.script(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(HeaderDeadline))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(LookupResponse{Generation: 1})
	})
	c := newClient(sb.URL, 0, 1, ClientConfig{RequestTimeout: 10 * time.Second})
	defer c.Close()

	// The client always bounds lookups by RequestTimeout, so the header
	// must be present and positive, at most the full budget.
	if _, err := c.LookupRemote(context.Background(), []int32{0}, false); err != nil {
		t.Fatalf("LookupRemote: %v", err)
	}
	raw, _ := header.Load().(string)
	if raw == "" {
		t.Fatal("lookup RPC carried no Ocad-Deadline-Ms header")
	}
	var ms int64
	if _, err := fmt.Sscanf(raw, "%d", &ms); err != nil || ms < 1 || ms > 10_000 {
		t.Errorf("Ocad-Deadline-Ms = %q, want integer in [1, 10000]", raw)
	}
}

// TestDeadlineHeaderEnforced: the shard server's middleware rejects a
// malformed header with 400 bad_request, and a budget that lapses
// while a flush waits on its publish sheds the request with 504
// deadline_exceeded — visible in the health counter.
func TestDeadlineHeaderEnforced(t *testing.T) {
	// A graph big enough that a full rebuild takes ~10ms — so a flush
	// carrying a 1ms budget always lapses mid-wait. The shed path needs
	// a handler that genuinely blocks; lookups answer too fast to ever
	// observe an expired budget.
	bench, err := lfr.Generate(lfr.Params{
		N: 2000, AvgDeg: 10, MaxDeg: 30, Mu: 0.2,
		MinCom: 10, MaxCom: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := bench.Graph
	pieces, err := shard.Split(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := shard.NewWorker(pieces[0], 1, shard.Config{
		OCA:      testOCA(),
		Debounce: time.Minute,
	}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ss := NewShardServer(w, ServerConfig{GlobalNodes: g.N(), MaxNodes: g.N()})
	ts := httptest.NewServer(ss.Handler())
	defer ts.Close()
	base := ts.URL

	send := func(deadline string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+PathLookup,
			strings.NewReader(fmt.Sprintf(`{"protocol":%d,"ids":[0]}`, Version)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderDeadline, deadline)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er.Code
	}

	for _, bad := range []string{"soon", "-5", "0", "1.5"} {
		if code, ec := send(bad); code != http.StatusBadRequest || ec != CodeBadRequest {
			t.Errorf("deadline header %q = %d %q, want 400 bad_request", bad, code, ec)
		}
	}
	// A generous budget passes through untouched.
	if code, _ := send("30000"); code != http.StatusOK {
		t.Errorf("lookup with 30s budget = %d, want 200", code)
	}

	// Park a mutation behind the minute-long debounce, then flush with
	// a 1ms budget: the wait outlives the budget, and the server sheds
	// the flush rather than holding an abandoned connection.
	c := newClient(base, 0, 1, ClientConfig{RequestTimeout: 2 * time.Second})
	defer c.Close()
	if err := c.Apply(context.Background(), [][2]int32{{0, 1}}, nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+PathFlush,
		strings.NewReader(fmt.Sprintf(`{"protocol":%d}`, Version)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderDeadline, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || er.Code != CodeDeadlineExceeded {
		t.Fatalf("flush with lapsed budget = %d %q, want 504 deadline_exceeded",
			resp.StatusCode, er.Code)
	}
	h, err := c.health(context.Background())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.DeadlineShed < 1 {
		t.Errorf("health deadline_shed = %d, want >= 1", h.DeadlineShed)
	}
}

// TestRetryAfterOn503: protocol 503s advertise a Retry-After the
// caller can act on.
func TestRetryAfterOn503(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 1, 0, testOCA())
	base := cl.addrs[0]

	cl.shards[0].SetDraining(true)
	defer cl.shards[0].SetDraining(false)
	resp, err := http.Post(base+PathApply, "application/json",
		strings.NewReader(fmt.Sprintf(`{"protocol":%d,"batch":{"base":0}}`, Version)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("apply while draining = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Errorf("draining 503 Retry-After = %q, want integer >= 1", ra)
	}
}

// TestBreakerRecoversViaPoller: the generation poller is the breaker's
// half-open probe vehicle — when the backend comes back, the breaker
// closes without any foreground traffic.
func TestBreakerRecoversViaPoller(t *testing.T) {
	sb := newScriptedBackend(t)
	var broken atomic.Bool
	broken.Store(true)
	sb.script(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			abort(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case PathHealth:
			_ = json.NewEncoder(w).Encode(Health{Protocol: Version})
		default:
			_ = json.NewEncoder(w).Encode(LookupResponse{Generation: 1})
		}
	})
	c := newClient(sb.URL, 0, 1, ClientConfig{
		RequestTimeout: time.Second,
		PollInterval:   5 * time.Millisecond,
	})
	defer c.Close()
	c.startPolling()

	// Trip the breaker with foreground traffic.
	for i := 0; i < 3; i++ {
		_, _ = c.LookupRemote(context.Background(), []int32{0}, false)
	}
	if !c.BreakerOpen() {
		t.Fatalf("breaker not open after failure burst: %+v", c.ResilienceStats())
	}

	// Heal the backend; the poller's next admitted probe must close the
	// breaker (cooldown is 500ms).
	broken.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for c.BreakerOpen() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after the backend healed: %+v", c.ResilienceStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
