package resilience

// Stats is a point-in-time snapshot of one backend's resilience
// counters, assembled by the owner of the breaker/retryer pair and
// surfaced through /healthz, /debug/metrics JSON, and the ocad_*
// Prometheus series. Counter fields are cumulative since process
// start; reads may tear across fields, which is fine for monitoring.
type Stats struct {
	// BreakerState is the breaker's position: closed, open, half_open.
	BreakerState string `json:"breaker_state"`
	// BreakerTrips counts transitions to open.
	BreakerTrips uint64 `json:"breaker_trips"`
	// BreakerFastFails counts requests rejected without touching the
	// backend while the breaker was open or half-open.
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	// Retries counts retry attempts launched against the backend.
	Retries uint64 `json:"retries"`
	// RetryBudgetExhausted counts retries the token bucket refused.
	RetryBudgetExhausted uint64 `json:"retry_budget_exhausted"`
	// DeadlineExceeded counts RPCs abandoned because a deadline fired
	// or the caller hung up mid-flight.
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
}

// Add accumulates o's counters into s (for aggregating a replica
// set's members). BreakerState aggregates pessimistically: any open
// member reports open, else any half-open reports half_open.
func (s *Stats) Add(o Stats) {
	s.BreakerTrips += o.BreakerTrips
	s.BreakerFastFails += o.BreakerFastFails
	s.Retries += o.Retries
	s.RetryBudgetExhausted += o.RetryBudgetExhausted
	s.DeadlineExceeded += o.DeadlineExceeded
	switch {
	case s.BreakerState == Open.String() || o.BreakerState == Open.String():
		s.BreakerState = Open.String()
	case s.BreakerState == HalfOpen.String() || o.BreakerState == HalfOpen.String():
		s.BreakerState = HalfOpen.String()
	default:
		s.BreakerState = Closed.String()
	}
}
