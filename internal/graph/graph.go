// Package graph provides the compact immutable graph substrate shared by
// every algorithm in this repository: a CSR (compressed sparse row)
// representation of a simple undirected graph, a builder that
// deduplicates edges, text/binary serialization, traversal helpers and
// summary statistics.
//
// Nodes are dense int32 ids 0..N()-1. All graphs are simple (no self
// loops, no parallel edges) and undirected: every edge {u,v} appears in
// both adjacency lists.
package graph

import "sort"

// Graph is an immutable simple undirected graph in CSR form.
// Adjacency lists are sorted ascending, enabling O(log d) edge queries
// and linear-time sorted-list intersections.
type Graph struct {
	offsets []int64 // len N+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
}

// NewFromCSR constructs a Graph directly from CSR arrays. The caller
// must guarantee CSR validity: len(offsets) = n+1, offsets non-decreasing,
// offsets[n] = len(adj), each list sorted ascending with no duplicates or
// self references, and symmetry (u lists v iff v lists u). Intended for
// generators that build CSR natively; use a Builder otherwise.
func NewFromCSR(offsets []int64, adj []int32) *Graph {
	return &Graph{offsets: offsets, adj: adj}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns the largest degree in the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn once per undirected edge with u < v. It stops early if
// fn returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// EdgesWithin counts the edges of g with both endpoints in the set
// described by member (member must answer for every node id). It is the
// Ein(S) of the paper.
func (g *Graph) EdgesWithin(nodes []int32, member func(int32) bool) int64 {
	var m int64
	for _, u := range nodes {
		for _, v := range g.Neighbors(u) {
			if v > u && member(v) {
				m++
			}
		}
	}
	return m
}

// DegreeSum returns the sum of degrees of the given nodes (the volume of
// the set).
func (g *Graph) DegreeSum(nodes []int32) int64 {
	var s int64
	for _, v := range nodes {
		s += int64(g.Degree(v))
	}
	return s
}
