package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRouteStatsObserve(t *testing.T) {
	rs := newRouteStats()
	rs.observe(500*time.Microsecond, 200) // bucket 0 (≤ 1ms)
	rs.observe(3*time.Millisecond, 200)   // bucket 2 (≤ 5ms)
	rs.observe(time.Minute, 503)          // +Inf bucket, error
	if got := rs.count.Load(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := rs.errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	for i, want := range map[int]uint64{0: 1, 2: 1, len(rs.buckets) - 1: 1} {
		if got := rs.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestInstrumentRecordsStatusAndSummary(t *testing.T) {
	m := newHTTPMetrics()
	h := m.instrument("GET /x", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	ok := m.instrument("GET /y", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("implicit 200"))
	})
	for i := 0; i < 3; i++ {
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	}
	ok(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/y", nil))

	sum := m.summary()
	if sum.Total != 4 {
		t.Errorf("summary total = %d, want 4", sum.Total)
	}
	if rx := sum.Routes["GET /x"]; rx.Count != 3 || rx.Errors != 3 {
		t.Errorf("route x summary = %+v, want 3 requests, 3 errors", rx)
	}
	if ry := sum.Routes["GET /y"]; ry.Count != 1 || ry.Errors != 0 {
		t.Errorf("route y summary = %+v, want 1 request, 0 errors", ry)
	}
}
