package synth

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestBarabasiAlbertBasics(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	// Each of the n-m-1 arriving nodes adds m edges; seed clique adds
	// C(m+1,2). Duplicates impossible within a step (distinct targets).
	wantM := int64(3*4/2) + int64(500-4)*3
	if g.M() != wantM {
		t.Fatalf("m=%d, want %d", g.M(), wantM)
	}
	// Minimum degree is m.
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) < 3 {
			t.Fatalf("node %d degree %d < m", v, g.Degree(v))
		}
	}
	// Heavy tail: max degree well above average.
	avg := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 3*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
	// Connected by construction.
	if _, count := graph.Components(g); count != 1 {
		t.Fatalf("components=%d", count)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(5, 5, 1); err == nil {
		t.Fatal("expected error for n <= m")
	}
	if _, err := BarabasiAlbert(5, 0, 1); err == nil {
		t.Fatal("expected error for m < 1")
	}
}

func TestGNMExactEdges(t *testing.T) {
	g, err := GNM(200, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || g.M() != 1000 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestGNMValidation(t *testing.T) {
	if _, err := GNM(1, 0, 1); err == nil {
		t.Fatal("expected error for n < 2")
	}
	if _, err := GNM(10, 40, 1); err == nil {
		t.Fatal("expected error for m too dense")
	}
}

func TestRMATBasics(t *testing.T) {
	g, err := RMAT(RMATParams{Scale: 12, EdgeFactor: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4096 {
		t.Fatalf("n=%d, want 4096", g.N())
	}
	// Dedup and loop removal lose some edges but most survive.
	if g.M() < int64(4096*8)*6/10 {
		t.Fatalf("m=%d, too many dropped", g.M())
	}
	// Skewed degrees: R-MAT hubs dominate.
	avg := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d not skewed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	p := RMATParams{Scale: 10, EdgeFactor: 4, Seed: 7}
	a, err := RMAT(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATParams{Scale: 0, EdgeFactor: 4}); err == nil {
		t.Fatal("expected scale error")
	}
	if _, err := RMAT(RMATParams{Scale: 5, EdgeFactor: 0}); err == nil {
		t.Fatal("expected edge factor error")
	}
	if _, err := RMAT(RMATParams{Scale: 5, EdgeFactor: 2, A: 0.9, B: 0.3, C: 0.2, D: 0.1}); err == nil {
		t.Fatal("expected probability sum error")
	}
}

func TestWikipediaLikeDensity(t *testing.T) {
	g, err := WikipediaLike(13, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Matched to the paper's Wikipedia ratio 176.5M/17.0M = 10.4, modulo
	// the stub-matching deficit.
	ratio := float64(g.M()) / float64(g.N())
	if ratio < 8 || ratio > 12 {
		t.Fatalf("edges/nodes=%.2f, want ≈10.4", ratio)
	}
	// Heavy tail must be present.
	avg := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
	if _, err := WikipediaLike(3, 1); err == nil {
		t.Fatal("expected scale range error")
	}
}

// TestDegreeDistributionSkew compares the degree tails: BA and RMAT
// should both have much larger 99th-percentile/median ratios than GNM.
func TestDegreeDistributionSkew(t *testing.T) {
	ba, err := BarabasiAlbert(2000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	er, err := GNM(2000, ba.M(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p99 := func(g *graph.Graph) float64 {
		degs := make([]int, g.N())
		for v := range degs {
			degs[v] = g.Degree(int32(v))
		}
		sort.Ints(degs)
		return float64(degs[g.N()*99/100]) / (float64(degs[g.N()/2]) + 1)
	}
	if p99(ba) <= p99(er) {
		t.Fatalf("BA tail ratio %.2f not heavier than ER %.2f", p99(ba), p99(er))
	}
}
