package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestStateBasics(t *testing.T) {
	g := complete(4)
	s := NewState(g, g.MaxDegree())
	if s.Size() != 0 || s.Ein() != 0 || s.FrontierLen() != 0 {
		t.Fatal("fresh state not empty")
	}
	s.Add(0)
	if s.Size() != 1 || s.Ein() != 0 || s.Volume() != 3 {
		t.Fatalf("after Add(0): size=%d ein=%d vol=%d", s.Size(), s.Ein(), s.Volume())
	}
	if s.FrontierLen() != 3 {
		t.Fatalf("frontier=%d, want 3", s.FrontierLen())
	}
	s.Add(1)
	if s.Ein() != 1 || s.Volume() != 6 {
		t.Fatalf("after Add(1): ein=%d vol=%d", s.Ein(), s.Volume())
	}
	if v, d, ok := s.BestAddition(); !ok || d != 2 || (v != 2 && v != 3) {
		t.Fatalf("BestAddition=%d/%d/%v", v, d, ok)
	}
	if v, d, ok := s.WorstMember(); !ok || d != 1 || (v != 0 && v != 1) {
		t.Fatalf("WorstMember=%d/%d/%v", v, d, ok)
	}
	s.Remove(1)
	if s.Size() != 1 || s.Ein() != 0 || s.Volume() != 3 {
		t.Fatalf("after Remove(1): size=%d ein=%d vol=%d", s.Size(), s.Ein(), s.Volume())
	}
	if !s.Contains(0) || s.Contains(1) {
		t.Fatal("membership wrong")
	}
}

func TestStatePanics(t *testing.T) {
	g := complete(3)
	s := NewState(g, g.MaxDegree())
	s.Add(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Add should panic")
			}
		}()
		s.Add(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Remove of non-member should panic")
			}
		}()
		s.Remove(2)
	}()
}

// naiveSnapshot recomputes every invariant from scratch.
type naiveSnapshot struct {
	size     int
	ein      int64
	vol      int64
	frontier map[int32]int32 // non-member -> d_S
	memberD  map[int32]int32
}

func snapshot(g *graph.Graph, member map[int32]bool) naiveSnapshot {
	ns := naiveSnapshot{frontier: map[int32]int32{}, memberD: map[int32]int32{}}
	for v := range member {
		ns.size++
		ns.vol += int64(g.Degree(v))
		var d int32
		for _, w := range g.Neighbors(v) {
			if member[w] {
				d++
			}
		}
		ns.memberD[v] = d
		ns.ein += int64(d)
	}
	ns.ein /= 2
	for v := range member {
		for _, w := range g.Neighbors(v) {
			if !member[w] {
				ns.frontier[w]++
			}
		}
	}
	return ns
}

// TestStateMatchesNaive performs random add/remove sequences on random
// graphs and cross-checks all incremental quantities against a from-
// scratch recomputation.
func TestStateMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		s := NewState(g, g.MaxDegree())
		member := map[int32]bool{}
		for op := 0; op < 120; op++ {
			v := int32(rng.Intn(n))
			if member[v] {
				s.Remove(v)
				delete(member, v)
			} else {
				s.Add(v)
				member[v] = true
			}
			ns := snapshot(g, member)
			if s.Size() != ns.size || s.Ein() != ns.ein || s.Volume() != ns.vol {
				return false
			}
			if s.FrontierLen() != len(ns.frontier) {
				return false
			}
			for w, d := range ns.frontier {
				if s.DS(w) != d {
					return false
				}
			}
			for w, d := range ns.memberD {
				if s.DS(w) != d {
					return false
				}
			}
			// Queue answers must match brute-force arg-extremes.
			if len(member) > 0 {
				_, dmin, ok := s.WorstMember()
				if !ok {
					return false
				}
				bruteMin := int32(1 << 30)
				for _, d := range ns.memberD {
					if d < bruteMin {
						bruteMin = d
					}
				}
				if dmin != bruteMin {
					return false
				}
			}
			if len(ns.frontier) > 0 {
				_, dmax, ok := s.BestAddition()
				if !ok {
					return false
				}
				bruteMax := int32(-1)
				for _, d := range ns.frontier {
					if d > bruteMax {
						bruteMax = d
					}
				}
				if dmax != bruteMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachAndMembers(t *testing.T) {
	g := complete(5)
	s := NewState(g, g.MaxDegree())
	s.Add(1)
	s.Add(3)
	members := s.Members()
	if len(members) != 2 || members[0] != 1 || members[1] != 3 {
		t.Fatalf("Members=%v", members)
	}
	seenF := map[int32]int32{}
	s.ForEachFrontier(func(v, d int32) { seenF[v] = d })
	if len(seenF) != 3 || seenF[0] != 2 || seenF[2] != 2 || seenF[4] != 2 {
		t.Fatalf("frontier=%v", seenF)
	}
	seenM := map[int32]int32{}
	s.ForEachMember(func(v, d int32) { seenM[v] = d })
	if len(seenM) != 2 || seenM[1] != 1 || seenM[3] != 1 {
		t.Fatalf("members iter=%v", seenM)
	}
}

func TestReset(t *testing.T) {
	g := complete(6)
	s := NewState(g, g.MaxDegree())
	s.Add(0)
	s.Add(1)
	s.Reset()
	if s.Size() != 0 || s.Ein() != 0 || s.Volume() != 0 || s.FrontierLen() != 0 {
		t.Fatal("reset incomplete")
	}
	// State must be fully usable after reset.
	s.Add(2)
	s.Add(3)
	if s.Ein() != 1 || s.FrontierLen() != 4 {
		t.Fatalf("post-reset state wrong: ein=%d frontier=%d", s.Ein(), s.FrontierLen())
	}
}
