package server

// The live-serving endpoints: graph mutation intake, batch membership
// lookup and streaming bulk export. All three resolve through the
// SnapshotProvider seam and answer from exactly one view per shard per
// request, so their responses are internally consistent with a single
// generation per shard even while rebuilds swap the served state
// underneath them. On sharded servers every response carries the
// (shard, generation) vector so clients can detect a lagging shard.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/refresh"
	"repro/internal/shard"
)

// setRetryAfter stamps a Retry-After header of d rounded up to whole
// seconds (minimum 1 — the header speaks integer seconds). Every 503
// this server sheds with carries one so clients back off by advice
// instead of guessing.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// retryAfterBacklog stamps Retry-After from the deepest shard backlog:
// the fuller the queue, the longer the advised wait.
func (s *Server) retryAfterBacklog(w http.ResponseWriter) {
	pending := 0
	for _, st := range s.sp.Statuses() {
		if st.Status.Pending > pending {
			pending = st.Status.Pending
		}
	}
	setRetryAfter(w, refresh.RetryAfter(pending, refresh.DefaultMaxPending))
}

// EdgesRequest is the /v1/edges body: edge endpoints are [u, v] pairs
// of node ids. The batch is validated atomically — one invalid edge
// rejects the whole request and queues nothing. When the server allows
// node growth (MaxNodes), added edges may name ids beyond the current
// node set, extending the graph.
type EdgesRequest struct {
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
	// Wait blocks the request until the mutations are reflected in a
	// published generation (subject to the request deadline) instead of
	// returning 202 immediately.
	Wait bool `json:"wait,omitempty"`
}

// EdgesResponse is the /v1/edges body.
type EdgesResponse struct {
	// Queued is the number of operations accepted.
	Queued int `json:"queued"`
	// Generation: with wait, the generation that includes the batch;
	// without, the generation current at enqueue time (any strictly
	// larger generation includes the batch). On sharded servers this is
	// the highest shard generation; Shards has the full vector.
	Generation uint64 `json:"generation"`
	// Applied reports whether the batch is already reflected (wait).
	Applied bool `json:"applied"`
	// Shards (sharded servers only) is the per-shard generation vector
	// at enqueue (or, with wait, apply) time.
	Shards shard.GenVector `json:"shards,omitempty"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var req EdgesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid edges request: %v", err)
		return
	}
	if len(req.Add)+len(req.Remove) == 0 {
		writeError(w, http.StatusBadRequest, "edges request must add or remove at least one edge")
		return
	}
	vec, queued, touched, err := s.sp.Enqueue(r.Context(), req.Add, req.Remove)
	var buildErr coverBuildError
	switch {
	case errors.Is(err, refresh.ErrBacklogFull):
		s.retryAfterBacklog(w)
		writeError(w, http.StatusServiceUnavailable, "refresh backlog full, retry later")
		return
	case errors.Is(err, refresh.ErrClosed):
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case errors.Is(err, shard.ErrUnavailable):
		// A target shard process is down or unreachable: shed load, the
		// client retries once the shard is back (edge operations are
		// idempotent, so a retry after a partial fan-out is safe too).
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.As(err, &buildErr):
		writeError(w, http.StatusInternalServerError, "building cover: %v", buildErr.err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, s.edgesResponse(queued, vec, false))
		return
	}
	vec, err = s.sp.Flush(r.Context(), touched)
	if err != nil {
		if errors.Is(err, refresh.ErrClosed) {
			setRetryAfter(w, time.Second)
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		// Deadline or client cancellation while waiting: the batch stays
		// queued and will still be applied.
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "queued but not yet applied: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.edgesResponse(queued, vec, true))
}

func (s *Server) edgesResponse(queued int, vec shard.GenVector, applied bool) EdgesResponse {
	resp := EdgesResponse{Queued: queued, Generation: vec.Max(), Applied: applied}
	if s.sharded() {
		resp.Shards = vec
	}
	return resp
}

// BatchCommunitiesRequest is the POST /v1/nodes/communities body.
type BatchCommunitiesRequest struct {
	// IDs are the nodes to look up; duplicates are answered per
	// occurrence. Requests longer than the server's batch cap are
	// clamped, not rejected.
	IDs []int32 `json:"ids"`
	// Members includes each community's member list in the response.
	Members bool `json:"members,omitempty"`
	// Shared additionally intersects: the communities containing every
	// requested node.
	Shared bool `json:"shared,omitempty"`
}

// batchResult is one per-id answer. Out-of-range ids yield Error
// instead of failing the whole batch.
type batchResult struct {
	Node        int32          `json:"node"`
	Count       int            `json:"count"`
	Communities []communityRef `json:"communities,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// batchCommunitiesResponse is the POST /v1/nodes/communities body. All
// results come from one view per shard: answers for duplicate ids are
// identical and cross-id comparisons are generation-consistent per
// shard; the Shards vector exposes each shard's generation so clients
// can detect a lagging shard.
type batchCommunitiesResponse struct {
	Generation uint64        `json:"generation"`
	Count      int           `json:"count"`
	Clamped    bool          `json:"clamped,omitempty"`
	Results    []batchResult `json:"results"`
	// Shared (present only when requested, unsharded servers) lists the
	// communities containing every requested node.
	Shared *[]int32 `json:"shared,omitempty"`
	// SharedRefs (present whenever requested on sharded servers, even
	// when empty) lists shard-scoped communities containing every
	// requested node — a boundary community can hold all the ids even
	// when they live on different shards, because halos include ghost
	// members.
	SharedRefs *[]communityRef `json:"shared_refs,omitempty"`
	// Shards (sharded servers only) is the per-shard generation vector
	// this batch was answered from.
	Shards shard.GenVector `json:"shards,omitempty"`
}

func (s *Server) handleBatchCommunities(w http.ResponseWriter, r *http.Request) {
	var req BatchCommunitiesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid batch request: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must name at least one node")
		return
	}
	// One view per shard for the whole batch: the fan-out happens here,
	// and every id is answered from its owning shard's view.
	views, err := s.sp.Views()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	ids := req.IDs
	clamped := false
	if len(ids) > s.cfg.MaxBatchIDs {
		ids = ids[:s.cfg.MaxBatchIDs]
		clamped = true
	}
	resp := batchCommunitiesResponse{
		Count:   len(ids),
		Clamped: clamped,
		Results: make([]batchResult, len(ids)),
	}
	if s.sharded() {
		resp.Shards = shard.VectorOf(views)
		resp.Generation = resp.Shards.Max()
	} else {
		resp.Generation = views[0].Snap.Gen
	}
	for i, v := range ids {
		if v < 0 {
			resp.Results[i] = batchResult{Node: v, Error: "node out of range"}
			continue
		}
		view := views[s.sp.ShardOf(v)]
		if view.Err != nil {
			// Partial results with an explicit per-id (and per-shard, via
			// the vector) error: ids on healthy shards still answer, ids
			// on the unreachable shard are never served stale silently.
			resp.Results[i] = batchResult{Node: v, Error: fmt.Sprintf("shard %d unavailable: %v", view.Shard, view.Err)}
			continue
		}
		local, ok := view.Local(v)
		if !ok {
			resp.Results[i] = batchResult{Node: v, Error: "node out of range"}
			continue
		}
		cis := view.Snap.Index.Communities(local)
		res := batchResult{Node: v, Count: len(cis), Communities: make([]communityRef, len(cis))}
		for j, ci := range cis {
			res.Communities[j] = communityRefFor(view, ci, req.Members)
		}
		resp.Results[i] = res
	}
	if req.Shared {
		s.fillShared(&resp, views, ids)
	}
	writeJSON(w, http.StatusOK, resp)
}

// fillShared answers the "which groups do all these people share?"
// option. Unsharded, it is one index intersection. Sharded, each shard
// intersects over its own (owned + ghost) membership — ids unknown to a
// shard empty that shard's intersection — and the union of surviving
// shard-scoped communities is reported.
func (s *Server) fillShared(resp *batchCommunitiesResponse, views []shard.View, ids []int32) {
	if !s.sharded() {
		shared := views[0].Snap.Index.Common(ids)
		if shared == nil {
			shared = []int32{}
		}
		resp.Shared = &shared
		return
	}
	refs := []communityRef{}
	locals := make([]int32, len(ids))
	for _, view := range views {
		if view.Err != nil {
			// A degraded shard contributes nothing: the intersection is
			// best-effort partial, flagged by the response's shard vector.
			continue
		}
		for i, v := range ids {
			if l, ok := view.Local(v); ok {
				locals[i] = l
			} else {
				locals[i] = -1 // unknown here: intersection is empty
			}
		}
		for _, ci := range view.Snap.Index.Common(locals) {
			refs = append(refs, communityRefFor(view, ci, false))
		}
	}
	resp.SharedRefs = &refs
}

// exportMeta is the first NDJSON line of /v1/cover/export.
type exportMeta struct {
	Generation  uint64 `json:"generation"`
	Nodes       int    `json:"nodes"`
	Edges       int64  `json:"edges"`
	Communities int    `json:"communities"`
	// Shards (sharded servers only) is the per-shard generation vector
	// the export streams from.
	Shards shard.GenVector `json:"shards,omitempty"`
}

// exportCommunity is one community line of /v1/cover/export. Members
// are always global node ids; Shard scopes the id on sharded servers.
type exportCommunity struct {
	ID      int32   `json:"id"`
	Shard   *int    `json:"shard,omitempty"`
	Size    int     `json:"size"`
	Members []int32 `json:"members"`
}

// exportFlushEvery bounds how many communities are encoded between
// context checks and flushes, so a disconnected client stops the
// stream early instead of the handler encoding the whole cover into a
// dead connection.
const exportFlushEvery = 256

// handleExport streams the whole served cover as NDJSON: one meta line
// (generation, dimensions), then one line per community, shard by shard
// on sharded servers. Views are loaded once, so the export is a
// consistent view of exactly one generation per shard even while
// rebuilds publish newer ones mid-stream. With ?generation=N on a
// server with a data directory, a retained snapshot segment serves that
// past generation instead of the live state. Mounted outside the
// TimeoutHandler, which would buffer the entire body.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if genStr := r.URL.Query().Get("generation"); genStr != "" {
		s.handleExportGeneration(w, r, genStr)
		return
	}
	views, err := s.sp.Views()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	meta := exportMeta{}
	if s.sharded() {
		meta.Shards = shard.VectorOf(views)
		for _, v := range views {
			if v.Err != nil || v.Snap == nil {
				// A degraded shard's communities are omitted from the
				// stream; its vector entry carries the error so the
				// consumer knows the export is partial.
				continue
			}
			m := v.Meta()
			meta.Nodes += m.OwnedNodes
			meta.Edges += m.OwnedEdges
			meta.Communities += v.Snap.Cover.Len()
		}
		meta.Generation = meta.Shards.Max()
	} else {
		snap := views[0].Snap
		meta = exportMeta{
			Generation:  snap.Gen,
			Nodes:       snap.Graph.N(),
			Edges:       snap.Graph.M(),
			Communities: snap.Cover.Len(),
		}
	}
	// Clear the connection's write deadline: the export is mounted
	// outside the TimeoutHandler to stream arbitrarily large covers, and
	// the http.Server's WriteTimeout would otherwise sever the stream
	// mid-body. Slow-client backpressure is bounded by the flush loop's
	// context checks instead.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	written := 0
	for _, view := range views {
		if view.Err != nil || view.Snap == nil {
			continue
		}
		var shardPtr *int
		if view.Sharded() {
			sh := view.Shard
			shardPtr = &sh
		}
		for i, c := range view.Snap.Cover.Communities {
			if written%exportFlushEvery == 0 && written > 0 {
				if bw.Flush() != nil || r.Context().Err() != nil {
					return // client gone; stop encoding
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if err := enc.Encode(exportCommunity{ID: int32(i), Shard: shardPtr, Size: len(c), Members: view.Members(c)}); err != nil {
				return
			}
			written++
		}
	}
	_ = bw.Flush()
}

// handleExportGeneration answers a point-in-time export: the requested
// generation is served from a retained snapshot segment (or from the
// live snapshot when it is the current, not-yet-sealed one). Single-node
// only — sharded servers have no single global generation to pin.
func (s *Server) handleExportGeneration(w http.ResponseWriter, r *http.Request, genStr string) {
	if s.sharded() {
		writeError(w, http.StatusBadRequest, "point-in-time export is not supported on sharded servers")
		return
	}
	p := s.cfg.Persist
	if p == nil {
		writeError(w, http.StatusBadRequest, "point-in-time export requires a data directory (-data-dir)")
		return
	}
	gen, err := strconv.ParseUint(genStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid generation %q", genStr)
		return
	}
	seg, err := p.OpenGeneration(gen)
	if err != nil {
		// The live generation may postdate the newest sealed segment.
		if snap, serr := s.snapshot(); serr == nil && snap.Gen == gen {
			s.exportSnapshot(w, r, snap)
			return
		}
		writeError(w, http.StatusNotFound, "generation %d is not retained (retained: %v)", gen, p.Generations())
		return
	}
	defer seg.Close()
	s.exportSnapshot(w, r, seg.Snapshot())
}

// exportSnapshot streams one unsharded snapshot in the export's NDJSON
// shape. Shared by the live single-node path's point-in-time variant;
// the snapshot may be backed by a mapped segment, which the caller
// keeps open for the duration.
func (s *Server) exportSnapshot(w http.ResponseWriter, r *http.Request, snap *refresh.Snapshot) {
	meta := exportMeta{
		Generation:  snap.Gen,
		Nodes:       snap.Graph.N(),
		Edges:       snap.Graph.M(),
		Communities: snap.Cover.Len(),
	}
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	for i, c := range snap.Cover.Communities {
		if i%exportFlushEvery == 0 && i > 0 {
			if bw.Flush() != nil || r.Context().Err() != nil {
				return // client gone; stop encoding
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err := enc.Encode(exportCommunity{ID: int32(i), Size: len(c), Members: c}); err != nil {
			return
		}
	}
	_ = bw.Flush()
}
