package persist

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/refresh"
	"repro/internal/shard"
	"repro/internal/wal"
)

// State is what recovery found on disk: the newest valid segment (nil
// on a cold start) and the WAL tail not yet included in it, ordered by
// sequence number, plus the generation/sequence high-water mark from
// the publish markers so replay can restore exact pre-crash generation
// numbering.
type State struct {
	// Segment is the newest valid segment (nil: cold start).
	Segment *Segment
	// Tail holds the WAL batches with Seq beyond the segment's, in
	// order. Replaying them through the incremental engine reproduces
	// the pre-crash state in O(batch) per record.
	Tail []wal.EdgeBatch
	// Publishes are the publish markers beyond the segment, in order.
	// They record how the live worker grouped Tail into rebuilds; replay
	// flushes at the same boundaries so the recovered cover is
	// bit-identical to the pre-crash one, not merely equivalent.
	Publishes []wal.Publish
	// LastGen/LastSeq are the newest published generation and its op
	// count according to the publish markers — at least the segment's
	// own. The recovered snapshot's generation is forced to LastGen so
	// clients see no generation regression across the restart.
	LastGen uint64
	LastSeq uint64
	// Stats summarizes the scan for /healthz.
	Stats RecoveryStats
}

// PartitionMap decodes the partition map the recovered segment was
// sealed under. It returns (nil, nil) on a cold start or for segments
// sealed at the epoch-0 base map (no map bytes on disk). A segment
// whose recorded epoch and map bytes disagree is corrupt and errors
// loudly rather than letting the shard rejoin under the wrong
// ownership.
func (st *State) PartitionMap() (*shard.PartitionMap, error) {
	if st.Segment == nil {
		return nil, nil
	}
	if len(st.Segment.PMap) == 0 {
		if st.Segment.Epoch != 0 {
			return nil, fmt.Errorf("persist: %s records partition epoch %d but carries no map — segment corrupt; remove it to fall back to an older one", st.Segment.Path, st.Segment.Epoch)
		}
		return nil, nil
	}
	pm, err := shard.DecodePartitionMap(st.Segment.PMap)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: decoding persisted partition map: %w", st.Segment.Path, err)
	}
	if pm.Epoch != st.Segment.Epoch {
		return nil, fmt.Errorf("persist: %s: partition map is at epoch %d but segment meta records %d — segment corrupt; remove it to fall back to an older one", st.Segment.Path, pm.Epoch, st.Segment.Epoch)
	}
	return pm, nil
}

// Load scans the data directory for the newest valid segment and the
// WAL tail beyond it. Corrupt or torn segments are skipped in favor of
// older ones; a torn WAL tail is cut at its last intact record. An
// empty directory is a clean cold start, not an error. Load does not
// start the live WAL — call Begin once the serving snapshot is known.
func (s *Store) Load() (*State, error) {
	st := &State{}

	// Newest valid segment wins; anything that fails validation is
	// passed over (crash mid-rename leaves only a tmp file, which the
	// directory scan never lists — but a corrupted file body lands
	// here).
	segs := s.listSegments()
	for i := len(segs) - 1; i >= 0; i-- {
		seg, err := LoadSegment(filepath.Join(s.opts.Dir, SegmentName(segs[i])))
		if err == nil {
			if err = s.checkIdentity(seg); err != nil {
				seg.Close()
				return nil, err
			}
			st.Segment = seg
			break
		}
		st.Stats.SkippedSegments++
	}

	var baseSeq uint64
	if st.Segment != nil {
		baseSeq = st.Segment.Info.Seq
		st.LastGen = st.Segment.Info.Gen
		st.LastSeq = baseSeq
		st.Stats.Source = "segment"
		st.Stats.SegmentGen = st.Segment.Info.Gen
	} else if st.Stats.SkippedSegments > 0 {
		return nil, fmt.Errorf("persist: %d segment file(s) present but none valid in %s", st.Stats.SkippedSegments, s.opts.Dir)
	} else {
		st.Stats.Source = "cold"
	}

	// Read every WAL file in base-generation order and keep the records
	// beyond the segment's sequence. Normally only one WAL matters, but
	// a crash between sealing a segment and pruning can leave several;
	// filtering by sequence number makes the scan insensitive to that.
	for _, gen := range s.listWALs() {
		_, recs, _, err := wal.ReadLogFile(filepath.Join(s.opts.Dir, WALName(gen)))
		if err != nil {
			if !errors.Is(err, wal.ErrTorn) {
				return nil, fmt.Errorf("persist: reading WAL %d: %w", gen, err)
			}
			st.Stats.TornTail = true
		}
		for _, rec := range recs {
			switch rec.Type {
			case wal.RecEdgeBatch:
				b, err := wal.DecodeEdgeBatch(rec.Payload)
				if err != nil {
					return nil, fmt.Errorf("persist: WAL %d: %w", gen, err)
				}
				if b.Seq > baseSeq {
					st.Tail = append(st.Tail, b)
					st.Stats.ReplayedBatches++
					st.Stats.ReplayedOps += len(b.Add) + len(b.Remove)
				}
			case wal.RecPublish:
				p, err := wal.DecodePublish(rec.Payload)
				if err != nil {
					return nil, fmt.Errorf("persist: WAL %d: %w", gen, err)
				}
				if p.Seq > baseSeq {
					st.Publishes = append(st.Publishes, p)
				}
				if p.Gen > st.LastGen {
					st.LastGen, st.LastSeq = p.Gen, p.Seq
				}
			}
		}
	}
	if st.Segment == nil && len(st.Tail) > 0 {
		// A WAL without any segment means generation 1 was never
		// persisted; its batches cannot replay onto anything. Treat as
		// cold — the caller rebuilds from its input graph.
		st.Tail = nil
		st.Publishes = nil
		st.Stats.ReplayedBatches, st.Stats.ReplayedOps = 0, 0
	}
	if len(st.Tail) > 0 {
		st.Stats.Source = "segment+wal"
	}

	s.mu.Lock()
	s.recovered = st.Stats
	if st.Segment != nil {
		// Carry the recovered partition facts forward: seals after a
		// restart keep stamping the epoch the shard rejoined at, even
		// if no map change happens in this process's lifetime.
		s.epoch, s.pmap = st.Segment.Epoch, st.Segment.PMap
		s.sealedEpoch = st.Segment.Epoch
	}
	s.mu.Unlock()
	return st, nil
}

// replayGroups feeds the WAL tail to a worker, flushing at the exact
// publish boundaries the live worker used. The markers record which
// batches each published generation coalesced; replaying with the same
// grouping makes the recovered cover bit-identical to the pre-crash
// one — the incremental engine's output depends on how mutations were
// batched into rebuilds, not just on their union. Batches past the last
// marker (accepted but never published before the crash) get one final
// flush of their own.
func replayGroups(st *State, apply func(wal.EdgeBatch) error, flush func() error) error {
	i, pending := 0, 0
	step := func(upTo uint64) error {
		for i < len(st.Tail) && st.Tail[i].Seq <= upTo {
			if err := apply(st.Tail[i]); err != nil {
				return fmt.Errorf("persist: replaying batch seq %d: %w", st.Tail[i].Seq, err)
			}
			i++
			pending++
		}
		if pending == 0 {
			return nil
		}
		pending = 0
		if err := flush(); err != nil {
			return fmt.Errorf("persist: flushing replay: %w", err)
		}
		return nil
	}
	for _, p := range st.Publishes {
		if err := step(p.Seq); err != nil {
			return err
		}
	}
	return step(^uint64(0))
}

// ReplayConfig tunes the throwaway worker ReplaySingle drives the WAL
// tail through.
type ReplayConfig struct {
	// Refresh carries the serving rebuild options (OCA, incremental
	// threshold, warm start, MaxNodes). Debounce and the persistence
	// hooks are overridden: replay never logs to the WAL it is reading.
	Refresh refresh.Config
}

// ReplaySingle reproduces the pre-shutdown snapshot for the
// single-graph role: the segment's snapshot plus the WAL tail applied
// through the incremental rebuild engine, with the generation forced to
// the last published one so the restart is invisible to generation-
// tracking clients. A nil-segment state returns nil (cold start).
func ReplaySingle(st *State, cfg ReplayConfig) (*refresh.Snapshot, error) {
	if st.Segment == nil {
		return nil, nil
	}
	snap := st.Segment.Snapshot()
	if len(st.Tail) > 0 {
		rcfg := cfg.Refresh
		rcfg.Debounce = -1 // replay has no bursts to coalesce
		rcfg.LogBatch = nil
		rcfg.OnSwap = nil
		if rcfg.OCA.C == 0 {
			// Pin the recovered inner-product parameter: re-deriving the
			// spectrum per replayed batch would turn an O(batch) replay
			// into repeated whole-graph eigenvalue runs.
			rcfg.OCA.C = snap.C
		}
		if rcfg.MaxNodes < st.Segment.MaxNodes {
			rcfg.MaxNodes = st.Segment.MaxNodes
		}
		w := refresh.New(snap, rcfg)
		w.Start()
		defer w.Close()
		err := replayGroups(st, func(b wal.EdgeBatch) error {
			_, _, err := w.Enqueue(b.Add, b.Remove)
			return err
		}, func() error {
			_, err := w.Flush(context.Background())
			return err
		})
		if err != nil {
			return nil, err
		}
		snap = w.Snapshot()
	}
	if st.LastGen > snap.Gen {
		forced := *snap
		forced.Gen = st.LastGen
		snap = &forced
	}
	return snap, nil
}

// ReplayShard reproduces a shard's pre-shutdown state: a throwaway
// shard worker is rebuilt from the segment (no OCA run), the WAL tail
// replays through ApplyBatch — reconciling the logged translation-table
// growth exactly like the original fan-out did — and the resulting
// snapshot's generation is forced to the last published one. It
// returns the final snapshot and the full translation table, from
// which the caller builds the serving worker
// (shard.NewWorkerFromSnapshot). A nil-segment state returns nils
// (cold start).
func ReplayShard(st *State, shardID, k int, cfg shard.Config, maxNodes int) (*refresh.Snapshot, []int32, error) {
	if st.Segment == nil {
		return nil, nil, nil
	}
	if st.Segment.Shards != k || st.Segment.Shard != shardID {
		return nil, nil, fmt.Errorf("persist: segment %s belongs to shard %d/%d, replaying as %d/%d — the -shard/-shards flags disagree with the persisted partition; restart with -shard %d -shards %d, or point -data-dir at a fresh directory to resplit",
			st.Segment.Path, st.Segment.Shard, st.Segment.Shards, shardID, k, st.Segment.Shard, st.Segment.Shards)
	}
	if cfg.PartitionMap == nil && st.Segment.Epoch != 0 {
		// Replaying under the base map a history that was routed under
		// a rebalanced one would reproduce the wrong ownership; the
		// caller must decode State.PartitionMap into the config first.
		return nil, nil, fmt.Errorf("persist: segment %s was sealed at partition epoch %d; replay requires the persisted map (State.PartitionMap) in the config", st.Segment.Path, st.Segment.Epoch)
	}
	rcfg := cfg
	rcfg.Debounce = -1
	rcfg.LogBatch = nil
	rcfg.OnSwap = nil
	if maxNodes < st.Segment.MaxNodes {
		maxNodes = st.Segment.MaxNodes
	}
	w := shard.NewWorkerFromSnapshot(st.Segment.Snapshot(), st.Segment.Table, shardID, k, rcfg, maxNodes)
	defer w.Close()
	err := replayGroups(st, func(b wal.EdgeBatch) error {
		_, _, err := w.ApplyBatch(shard.Batch{Base: b.Base, NewLocals: b.NewLocals, Add: b.Add, Remove: b.Remove})
		return err
	}, func() error {
		_, err := w.Flush(context.Background())
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	snap := w.Snapshot()
	if st.LastGen > snap.Gen {
		forced := *snap
		forced.Gen = st.LastGen
		snap = &forced
	}
	return snap, w.Table(), nil
}
