// Package cover defines the community model shared by all algorithms: a
// Community is a set of node ids, a Cover is a (possibly overlapping)
// family of communities over a graph. Covers are the common currency
// between the search algorithms, the post-processing steps, the quality
// metrics and the file formats.
package cover

import (
	"sort"
)

// Community is a set of node ids, stored sorted ascending without
// duplicates. Construct one with NewCommunity (or sort/dedup manually
// when the invariant is already guaranteed).
type Community []int32

// NewCommunity copies, sorts and deduplicates the given members.
func NewCommunity(members []int32) Community {
	c := make(Community, len(members))
	copy(c, members)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, v := range c {
		if i > 0 && c[i-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Contains reports membership of v via binary search.
func (c Community) Contains(v int32) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= v })
	return i < len(c) && c[i] == v
}

// IntersectionSize returns |c ∩ d| by merging the sorted member lists.
func (c Community) IntersectionSize(d Community) int {
	i, j, n := 0, 0, 0
	for i < len(c) && j < len(d) {
		switch {
		case c[i] < d[j]:
			i++
		case c[i] > d[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Union returns the sorted union of c and d as a new Community.
func (c Community) Union(d Community) Community {
	out := make(Community, 0, len(c)+len(d))
	i, j := 0, 0
	for i < len(c) && j < len(d) {
		switch {
		case c[i] < d[j]:
			out = append(out, c[i])
			i++
		case c[i] > d[j]:
			out = append(out, d[j])
			j++
		default:
			out = append(out, c[i])
			i++
			j++
		}
	}
	out = append(out, c[i:]...)
	out = append(out, d[j:]...)
	return out
}

// Equal reports whether c and d have identical members.
func (c Community) Equal(d Community) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Cover is a family of communities. Communities may overlap and need not
// cover every node of the underlying graph.
type Cover struct {
	Communities []Community
}

// NewCover wraps the given communities (taking ownership).
func NewCover(cs []Community) *Cover { return &Cover{Communities: cs} }

// Len returns the number of communities.
func (cv *Cover) Len() int { return len(cv.Communities) }

// CoveredNodes returns the sorted set of nodes appearing in at least one
// community.
func (cv *Cover) CoveredNodes() []int32 {
	seen := make(map[int32]struct{})
	for _, c := range cv.Communities {
		for _, v := range c {
			seen[v] = struct{}{}
		}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverage returns the fraction of the n graph nodes covered by at least
// one community.
func (cv *Cover) Coverage(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(len(cv.CoveredNodes())) / float64(n)
}

// MembershipIndex returns, for each node id < n, the list of community
// indices containing it (ascending). Useful for overlap analysis and
// inverted-index style matching; hot membership consumers use
// internal/index, which serves the same mapping from flat CSR slices
// (it cannot be used here — it imports this package).
func (cv *Cover) MembershipIndex(n int) [][]int32 {
	idx := make([][]int32, n)
	for ci, c := range cv.Communities {
		for _, v := range c {
			if v >= 0 && int(v) < n {
				idx[v] = append(idx[v], int32(ci))
			}
		}
	}
	return idx
}

// OverlapStats summarizes how much the cover overlaps.
type OverlapStats struct {
	Communities   int
	MinSize       int
	MaxSize       int
	MeanSize      float64
	CoveredNodes  int
	OverlapNodes  int     // nodes in >= 2 communities
	MeanMember    float64 // average memberships per covered node
	MaxMembership int
	Memberships   int64 // total (node, community) pairs
}

// Stats computes OverlapStats for a graph with n nodes.
func (cv *Cover) Stats(n int) OverlapStats {
	st := OverlapStats{Communities: cv.Len()}
	if cv.Len() == 0 {
		return st
	}
	st.MinSize = len(cv.Communities[0])
	total := 0
	for _, c := range cv.Communities {
		if len(c) < st.MinSize {
			st.MinSize = len(c)
		}
		if len(c) > st.MaxSize {
			st.MaxSize = len(c)
		}
		total += len(c)
	}
	st.MeanSize = float64(total) / float64(cv.Len())
	counts := make(map[int32]int)
	for _, c := range cv.Communities {
		for _, v := range c {
			counts[v]++
		}
	}
	st.CoveredNodes = len(counts)
	for _, k := range counts {
		st.Memberships += int64(k)
		if k >= 2 {
			st.OverlapNodes++
		}
		if k > st.MaxMembership {
			st.MaxMembership = k
		}
	}
	if st.CoveredNodes > 0 {
		st.MeanMember = float64(st.Memberships) / float64(st.CoveredNodes)
	}
	return st
}

// PatchStats returns the OverlapStats of a cover derived from a
// previous one by removing and adding whole communities, without
// re-tallying every membership the way Stats does: size statistics are
// re-derived from the new cover's community lengths (O(communities)),
// and the node-membership tallies are adjusted only for the affected
// nodes — the members of the removed and added communities.
//
// affected must list each such node once; oldDeg and newDeg report a
// node's membership count in the previous and the new cover (an
// inverted index's Degree on either side). n is the new cover's node
// range, consulted only in the rare full re-scan below.
//
// MaxMembership can shrink only when a node holding the previous
// maximum lost memberships; exactly then newDeg is re-scanned over all
// n nodes — a flat pass with no allocation, still far cheaper than
// re-tallying, and skipped entirely on the common grow-or-stable case.
func PatchStats(prev OverlapStats, cv *Cover, n int, affected []int32, oldDeg, newDeg func(int32) int) OverlapStats {
	st := OverlapStats{
		Communities:   cv.Len(),
		CoveredNodes:  prev.CoveredNodes,
		OverlapNodes:  prev.OverlapNodes,
		MaxMembership: prev.MaxMembership,
		Memberships:   prev.Memberships,
	}
	if cv.Len() > 0 {
		st.MinSize = len(cv.Communities[0])
		total := 0
		for _, c := range cv.Communities {
			if len(c) < st.MinSize {
				st.MinSize = len(c)
			}
			if len(c) > st.MaxSize {
				st.MaxSize = len(c)
			}
			total += len(c)
		}
		st.MeanSize = float64(total) / float64(cv.Len())
	}
	maxMayDrop := false
	for _, v := range affected {
		od, nd := oldDeg(v), newDeg(v)
		if od == nd {
			continue
		}
		st.Memberships += int64(nd - od)
		switch {
		case od == 0 && nd > 0:
			st.CoveredNodes++
		case od > 0 && nd == 0:
			st.CoveredNodes--
		}
		switch {
		case od <= 1 && nd >= 2:
			st.OverlapNodes++
		case od >= 2 && nd <= 1:
			st.OverlapNodes--
		}
		if nd > st.MaxMembership {
			st.MaxMembership = nd
		}
		if nd < od && od >= prev.MaxMembership {
			maxMayDrop = true
		}
	}
	if maxMayDrop {
		m := 0
		for v := int32(0); int(v) < n; v++ {
			if d := newDeg(v); d > m {
				m = d
			}
		}
		st.MaxMembership = m
	}
	if st.CoveredNodes > 0 {
		st.MeanMember = float64(st.Memberships) / float64(st.CoveredNodes)
	}
	return st
}

// Clone deep-copies the cover.
func (cv *Cover) Clone() *Cover {
	out := make([]Community, len(cv.Communities))
	for i, c := range cv.Communities {
		cc := make(Community, len(c))
		copy(cc, c)
		out[i] = cc
	}
	return &Cover{Communities: out}
}

// Less reports whether community a precedes b in the canonical cover
// order: decreasing size, ties broken by lexicographic member
// comparison. The order is a pure function of the community sets, so
// two covers holding the same communities sort identically regardless
// of construction history — full and incremental rebuilds of the same
// cover publish byte-identical orderings.
func Less(a, b Community) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// SortBySize orders communities canonically (see Less) for stable,
// reproducible output.
func (cv *Cover) SortBySize() {
	sort.SliceStable(cv.Communities, func(i, j int) bool {
		return Less(cv.Communities[i], cv.Communities[j])
	})
}

// SortPerm returns the permutation canonical sorting would apply —
// perm[old] is the sorted position of cv.Communities[old] — plus
// whether the cover is already canonically ordered (then perm is nil).
// It does not modify the cover: callers that maintain a derived
// structure keyed by community id (an inverted index) compute the
// permutation first and apply it to both sides.
func (cv *Cover) SortPerm() (perm []int32, sorted bool) {
	k := len(cv.Communities)
	order := make([]int32, k)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return Less(cv.Communities[order[i]], cv.Communities[order[j]])
	})
	sorted = true
	for i, o := range order {
		if int32(i) != o {
			sorted = false
			break
		}
	}
	if sorted {
		return nil, true
	}
	perm = make([]int32, k)
	for pos, o := range order {
		perm[o] = int32(pos)
	}
	return perm, false
}

// ApplyPerm reorders the communities by a permutation from SortPerm:
// the community at previous position i moves to perm[i].
func (cv *Cover) ApplyPerm(perm []int32) {
	out := make([]Community, len(cv.Communities))
	for i, c := range cv.Communities {
		out[perm[i]] = c
	}
	cv.Communities = out
}
