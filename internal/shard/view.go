package shard

import (
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/postprocess"
	"repro/internal/refresh"
)

// Meta is the shard-layer metadata attached to every per-shard
// refresh.Snapshot (as Snapshot.Aux): the local→global translation
// table for exactly that generation's node set, plus the shard's
// contribution to global aggregates, precomputed once per rebuild so
// observability endpoints stay O(K) per request.
type Meta struct {
	// Shard and K identify the shard within its partition; Epoch is the
	// partition-map epoch ownership was evaluated under.
	Shard int
	K     int
	Epoch uint64
	// Locals maps the snapshot graph's local node ids to global ids;
	// its length equals the snapshot graph's node count. The table is a
	// stable prefix of the shard's append-only mapping, so it is safe
	// for any number of concurrent readers.
	Locals []int32
	// OwnedNodes counts nodes this shard owns (non-ghosts).
	OwnedNodes int
	// OwnedEdges counts the global edges this shard is accountable for:
	// internal edges between two owned nodes, plus cross-shard edges
	// whose smaller-global-id endpoint is owned here. Summed over all
	// shards this is exactly the global edge count.
	OwnedEdges int64
	// CoveredOwned, OverlapOwned, OwnedMemberships and
	// MaxMembershipOwned tally cover membership over owned nodes only,
	// so aggregating across shards counts every global node exactly
	// once — and quotes numbers a lookup routed to the owning shard can
	// actually return (ghost copies may carry more memberships here
	// than their owner serves).
	CoveredOwned       int
	OverlapOwned       int
	OwnedMemberships   int64
	MaxMembershipOwned int
}

// buildMeta computes a snapshot's Meta from its graph, index and
// translation table. Ownership is evaluated under pm — the modulo-K
// base plus any rebalanced range overrides.
func buildMeta(shardID int, pm *PartitionMap, g *graph.Graph, ix *index.Membership, locals []int32) *Meta {
	m := &Meta{Shard: shardID, K: pm.K, Epoch: pm.Epoch, Locals: locals}
	owns := func(local int32) bool {
		return pm.ShardOf(locals[local]) == shardID
	}
	for l := int32(0); int(l) < g.N(); l++ {
		if owns(l) {
			m.OwnedNodes++
			if d := ix.Degree(l); d > m.MaxMembershipOwned {
				m.MaxMembershipOwned = d
			}
		}
	}
	g.Edges(func(lu, lv int32) bool {
		gu, gv := locals[lu], locals[lv]
		ou, ov := pm.ShardOf(gu) == shardID, pm.ShardOf(gv) == shardID
		switch {
		case ou && ov:
			m.OwnedEdges++
		case ou && gu < gv, ov && gv < gu:
			m.OwnedEdges++
		}
		return true
	})
	m.CoveredOwned, m.OverlapOwned, m.OwnedMemberships = ix.CoverageCounts(owns)
	return m
}

// filterOwned drops communities containing no owned node — artifacts of
// ghost-seeded searches that some other shard serves authoritatively.
// When nothing is dropped the input cover is returned as-is.
func filterOwned(cv *cover.Cover, locals []int32, pm *PartitionMap, shardID int) *cover.Cover {
	if cv == nil {
		return cover.NewCover(nil)
	}
	kept := cv.Communities[:0:0]
	dropped := false
	for _, c := range cv.Communities {
		owned := false
		for _, l := range c {
			if pm.ShardOf(locals[l]) == shardID {
				owned = true
				break
			}
		}
		if owned {
			kept = append(kept, c)
		} else {
			dropped = true
		}
	}
	if !dropped {
		return cv
	}
	return cover.NewCover(kept)
}

// View is one shard's published generation plus the id translation a
// reader needs: handlers load one View per shard per request and answer
// entirely from it. The zero value is invalid; obtain Views from a
// provider (the Router, or SingleView for the unsharded path).
type View struct {
	// Shard is the shard index this view belongs to.
	Shard int
	// Snap is the generation the view reads from.
	Snap *refresh.Snapshot
	// Err is non-nil when the shard's backend is degraded — a remote
	// shard process down or unreachable. Snap is then the last mirrored
	// generation (possibly stale); handlers must answer the shard's
	// nodes with an explicit error instead of silently serving it.
	// Always nil for in-process shards.
	Err error
	// lookup resolves a global node id to this shard's local id; nil
	// means the identity mapping (the unsharded path).
	lookup func(int32) (int32, bool)
}

// RemoteView assembles a View for a mirrored remote shard snapshot —
// the transport package's client constructs its views through it. err
// marks the view degraded (see View.Err).
func RemoteView(shardID int, snap *refresh.Snapshot, lookup func(int32) (int32, bool), err error) View {
	return View{Shard: shardID, Snap: snap, Err: err, lookup: lookup}
}

// SingleView wraps an unsharded snapshot as shard 0's view with the
// identity translation, letting the single-graph and sharded serving
// paths share one code path.
func SingleView(snap *refresh.Snapshot) View { return View{Snap: snap} }

// Sharded reports whether this view translates ids (false on the
// unsharded path).
func (v View) Sharded() bool { return v.lookup != nil }

// Meta returns the shard metadata of the viewed snapshot, nil on the
// unsharded path (and on a degraded view with no snapshot).
func (v View) Meta() *Meta {
	if v.Snap == nil {
		return nil
	}
	m, _ := v.Snap.Aux.(*Meta)
	return m
}

// Local resolves a global node id to the viewed snapshot's local id. It
// reports false for ids unknown to this generation — never seen, or
// pending growth not yet published.
func (v View) Local(global int32) (int32, bool) {
	if global < 0 || v.Snap == nil {
		return 0, false
	}
	if v.lookup == nil {
		if int(global) >= v.Snap.Graph.N() {
			return 0, false
		}
		return global, true
	}
	l, ok := v.lookup(global)
	if !ok || int(l) >= v.Snap.Graph.N() {
		return 0, false
	}
	return l, true
}

// Global translates a local node id of the viewed snapshot back to its
// global id.
func (v View) Global(local int32) int32 {
	if m := v.Meta(); m != nil {
		return m.Locals[local]
	}
	return local
}

// Members translates a community's local member list to global ids. On
// the unsharded path the input slice is returned unchanged (no copy),
// preserving the zero-allocation lookup path.
func (v View) Members(ms []int32) []int32 {
	m := v.Meta()
	if m == nil {
		return ms
	}
	out := make([]int32, len(ms))
	for i, l := range ms {
		out[i] = m.Locals[l]
	}
	return out
}

// MergeCovers assembles the global cover the sharded deployment serves:
// every shard's communities translated to global ids, with the paper's
// ρ-threshold merge collapsing the per-shard variants of boundary
// communities (a community spanning several shards is recovered — with
// slightly different halo visibility — by each of them; their union is
// the community). This is the offline/analysis view; the serving path
// keeps covers per shard so each rebuilds independently.
func MergeCovers(views []View) *cover.Cover {
	var comms []cover.Community
	for _, view := range views {
		for _, c := range view.Snap.Cover.Communities {
			comms = append(comms, cover.NewCommunity(view.Members(c)))
		}
	}
	return postprocess.Merge(cover.NewCover(comms), postprocess.DefaultMergeThreshold)
}

// ShardGen is one entry of a response's (shard, generation) vector.
// Err, when non-empty, marks the shard degraded: its backend could not
// be reached and Gen is the last generation the router mirrored (0 if
// none) — the explicit per-shard error a client checks before trusting
// a partial answer.
type ShardGen struct {
	Shard int    `json:"shard"`
	Gen   uint64 `json:"generation"`
	Err   string `json:"error,omitempty"`
}

// GenVector is the per-shard generation vector quoted in responses so
// clients can detect a lagging shard: entry i is shard i's generation
// at the time the response was assembled.
type GenVector []ShardGen

// VectorOf assembles the generation vector of a set of views, carrying
// each degraded view's error.
func VectorOf(views []View) GenVector {
	gv := make(GenVector, len(views))
	for i, v := range views {
		e := ShardGen{Shard: v.Shard}
		if v.Snap != nil {
			e.Gen = v.Snap.Gen
		}
		if v.Err != nil {
			e.Err = v.Err.Error()
		}
		gv[i] = e
	}
	return gv
}

// Max returns the highest generation in the vector (0 for an empty
// vector) — the scalar summary used where a single number is wanted.
func (gv GenVector) Max() uint64 {
	var max uint64
	for _, e := range gv {
		if e.Gen > max {
			max = e.Gen
		}
	}
	return max
}

// WorkerStatus pairs one shard's refresh.Status with its identity and
// active inner-product parameter, for observability endpoints.
type WorkerStatus struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// C is the inner-product parameter active in the shard's current
	// snapshot (0 when not yet derived, e.g. an edgeless shard).
	C float64 `json:"c,omitempty"`
	// Status is the shard worker's point-in-time view. For a remote
	// shard it is the last successful health probe.
	Status refresh.Status `json:"status"`
	// Err, when non-empty, marks the status stale: the shard's backend
	// is unreachable and Status is the last probe that succeeded.
	// Always empty for in-process shards.
	Err string `json:"error,omitempty"`
}
