package shard

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestPartitionMapMoveNearMaxInt32 moves a range reaching the top of
// the id space: firstOfClass used to compute lo + rem in int32, which
// overflows when lo is within K of MaxInt32 — the negative id made
// ShardOf report a bogus owner and the whole Move fail via Validate.
func TestPartitionMapMoveNearMaxInt32(t *testing.T) {
	m, err := NewPartitionMap(4)
	if err != nil {
		t.Fatal(err)
	}
	const lo = math.MaxInt32 - 2 // 2147483645, class 1 mod 4
	next, err := m.Move(lo, math.MaxInt32, 1, 2)
	if err != nil {
		t.Fatalf("Move([%d, MaxInt32) 1→2): %v", int32(lo), err)
	}
	if got := next.ShardOf(lo); got != 2 {
		t.Errorf("ShardOf(%d) = %d after the move, want 2", int32(lo), got)
	}
	if got := next.ShardOf(lo - 4); got != 1 { // same class, below the range
		t.Errorf("ShardOf(%d) = %d, want base class 1", int32(lo-4), got)
	}
	if got := next.ShardOf(math.MaxInt32 - 1); got != 2 { // class 2, untouched
		t.Errorf("ShardOf(MaxInt32-1) = %d, want base class 2", got)
	}
}

func TestPartitionMapBase(t *testing.T) {
	if _, err := NewPartitionMap(0); err == nil {
		t.Error("NewPartitionMap(0) succeeded")
	}
	pm, err := NewPartitionMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Epoch != 0 || len(pm.Ranges) != 0 {
		t.Fatalf("base map = %+v, want epoch 0 with no overrides", pm)
	}
	for v := int32(0); v < 40; v++ {
		if got := pm.ShardOf(v); got != int(v%4) {
			t.Fatalf("ShardOf(%d) = %d under the base map, want %d", v, got, v%4)
		}
	}
}

func TestPartitionMapValidate(t *testing.T) {
	cases := []struct {
		name string
		m    PartitionMap
		want string // substring of the error, "" = valid
	}{
		{"base", PartitionMap{K: 3}, ""},
		{"one override", PartitionMap{K: 3, Ranges: []Range{{Lo: 0, Hi: 9, From: 1, To: 2}}}, ""},
		{"disjoint same class", PartitionMap{K: 3, Ranges: []Range{
			{Lo: 0, Hi: 9, From: 1, To: 2}, {Lo: 9, Hi: 18, From: 1, To: 0}}}, ""},
		{"same span different class", PartitionMap{K: 3, Ranges: []Range{
			{Lo: 0, Hi: 9, From: 1, To: 2}, {Lo: 0, Hi: 9, From: 2, To: 0}}}, ""},
		{"zero K", PartitionMap{K: 0}, "at least 1"},
		{"empty range", PartitionMap{K: 3, Ranges: []Range{{Lo: 5, Hi: 5, From: 0, To: 1}}}, "empty or inverted"},
		{"inverted range", PartitionMap{K: 3, Ranges: []Range{{Lo: 9, Hi: 3, From: 0, To: 1}}}, "empty or inverted"},
		{"negative lo", PartitionMap{K: 3, Ranges: []Range{{Lo: -1, Hi: 3, From: 0, To: 1}}}, "empty or inverted"},
		{"from out of range", PartitionMap{K: 3, Ranges: []Range{{Lo: 0, Hi: 3, From: 3, To: 1}}}, "outside"},
		{"to out of range", PartitionMap{K: 3, Ranges: []Range{{Lo: 0, Hi: 3, From: 0, To: -1}}}, "outside"},
		{"self move", PartitionMap{K: 3, Ranges: []Range{{Lo: 0, Hi: 3, From: 1, To: 1}}}, "self-move"},
		{"overlap", PartitionMap{K: 3, Ranges: []Range{
			{Lo: 0, Hi: 9, From: 1, To: 2}, {Lo: 6, Hi: 12, From: 1, To: 0}}}, "overlap"},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want ok", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPartitionMapMove(t *testing.T) {
	pm, _ := NewPartitionMap(4)

	// Bad arguments never produce a map.
	for _, bad := range []struct{ lo, hi int32 }{{5, 5}, {9, 3}, {-1, 4}} {
		if _, err := pm.Move(bad.lo, bad.hi, 0, 1); err == nil {
			t.Errorf("Move([%d,%d)) succeeded", bad.lo, bad.hi)
		}
	}
	if _, err := pm.Move(0, 8, 1, 1); err == nil {
		t.Error("self-move succeeded")
	}
	if _, err := pm.Move(0, 8, 0, 4); err == nil {
		t.Error("move to out-of-range shard succeeded")
	}
	// Shard 2 owns nothing in [0, 2) — nothing to hand off.
	if _, err := pm.Move(0, 2, 2, 0); err == nil {
		t.Error("empty-slice move succeeded")
	}

	// One move: class-1 nodes of [0, 12) belong to shard 3 at epoch 1.
	m1, err := pm.Move(0, 12, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != 1 {
		t.Fatalf("epoch after one move = %d, want 1", m1.Epoch)
	}
	for v := int32(0); v < 24; v++ {
		want := int(v % 4)
		if v < 12 && want == 1 {
			want = 3
		}
		if got := m1.ShardOf(v); got != want {
			t.Fatalf("after move, ShardOf(%d) = %d, want %d", v, got, want)
		}
	}
	if pm.Epoch != 0 || len(pm.Ranges) != 0 {
		t.Fatal("Move mutated its receiver")
	}

	// Re-migrating a sub-slice splits the override. The move is
	// owner-based: everything shard 3 owns in [4, 8) goes — the
	// migrated class-1 node 5 and the base class-3 node 7.
	m2, err := m1.Move(4, 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 24; v++ {
		want := int(v % 4)
		if want == 1 && v < 12 {
			want = 3
		}
		if v == 5 || v == 7 {
			want = 2
		}
		if got := m2.ShardOf(v); got != want {
			t.Fatalf("after split, ShardOf(%d) = %d, want %d", v, got, want)
		}
	}

	// Moving a slice back home cancels its override entirely.
	s1, err := pm.Move(1, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s1.Move(1, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Ranges) != 0 {
		t.Fatalf("after round trip the map still carries %d overrides: %+v", len(s2.Ranges), s2.Ranges)
	}
	if s2.Epoch != 2 {
		t.Fatalf("epoch after round trip = %d, want 2", s2.Epoch)
	}

	// Adjacent equal-owner pieces merge into one canonical override.
	a, err := pm.Move(0, 8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Move(8, 16, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Ranges) != 1 || b.Ranges[0] != (Range{Lo: 0, Hi: 16, From: 1, To: 3}) {
		t.Fatalf("adjacent moves did not merge: %+v", b.Ranges)
	}
}

// TestPartitionMapMoveRandomSequences is the map-level property test:
// arbitrary valid migration sequences composed through Move must always
// yield a valid (disjoint, canonical) map whose ShardOf agrees with a
// brute-force replay of the same moves over an explicit ownership
// array.
func TestPartitionMapMoveRandomSequences(t *testing.T) {
	const n = 96
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		pm, _ := NewPartitionMap(k)
		owner := make([]int, n)
		for v := range owner {
			owner[v] = v % k
		}
		for step := 0; step < 40; step++ {
			lo := int32(rng.Intn(n))
			hi := lo + 1 + int32(rng.Intn(n-int(lo)))
			from := rng.Intn(k)
			to := rng.Intn(k)
			next, err := pm.Move(lo, hi, from, to)
			if err != nil {
				continue // self-move or empty slice: legal rejection
			}
			if err := next.Validate(); err != nil {
				t.Fatalf("seed %d step %d: Move produced an invalid map: %v", seed, step, err)
			}
			if next.Epoch != pm.Epoch+1 {
				t.Fatalf("seed %d step %d: epoch %d after %d", seed, step, next.Epoch, pm.Epoch)
			}
			for v := int32(lo); v < hi; v++ {
				if owner[v] == from {
					owner[v] = to
				}
			}
			pm = next
			for v := 0; v < n; v++ {
				if got := pm.ShardOf(int32(v)); got != owner[v] {
					t.Fatalf("seed %d step %d: ShardOf(%d) = %d, brute force says %d (map %+v)",
						seed, step, v, got, owner[v], pm.Ranges)
				}
			}
		}
	}
}

func TestPartitionMapAffectsShard(t *testing.T) {
	pm, _ := NewPartitionMap(4)
	m1, err := pm.Move(0, 12, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range []bool{false, true, false, true} {
		if got := m1.AffectsShard(pm, s); got != want {
			t.Errorf("AffectsShard(base, %d) = %v, want %v", s, got, want)
		}
	}
	if m1.AffectsShard(m1, 1) || m1.AffectsShard(m1, 3) {
		t.Error("identical maps report an ownership change")
	}
}

func TestPartitionMapEncodeDecode(t *testing.T) {
	maps := []*PartitionMap{
		{K: 1},
		{K: 4},
		{Epoch: 9, K: 4, Ranges: []Range{{Lo: 0, Hi: 12, From: 1, To: 3}}},
		{Epoch: 1 << 40, K: 7, Ranges: []Range{
			{Lo: 3, Hi: 9, From: 2, To: 0}, {Lo: 9, Hi: 14, From: 2, To: 5}, {Lo: 0, Hi: 100, From: 6, To: 1}}},
	}
	for _, m := range maps {
		got, err := DecodePartitionMap(m.Encode())
		if err != nil {
			t.Fatalf("round trip of %+v: %v", m, err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip of %+v came back %+v", m, got)
		}
	}

	valid := maps[2].Encode()
	bad := [][]byte{
		nil,
		valid[:10],                               // truncated header
		valid[:len(valid)-1],                     // truncated body
		append(valid[:len(valid):len(valid)], 0), // trailing byte
		bytes.Replace(valid, MagicPMap[:], []byte("XXXX"), 1),
	}
	vers := append([]byte(nil), valid...)
	vers[4] = VersionPMap + 1
	bad = append(bad, vers)
	for i, data := range bad {
		if _, err := DecodePartitionMap(data); err == nil {
			t.Errorf("corrupt input %d decoded", i)
		}
	}
}

// FuzzPartitionMap hammers the decode path — the bytes every shard
// accepts over POST /shard/v1/map. Whatever the input, decoding must
// not panic, and anything that decodes must be a valid map (disjoint
// per-class overrides, shards in range) that re-encodes to the exact
// same bytes — canonicality is what lets Equal compare maps
// structurally.
func FuzzPartitionMap(f *testing.F) {
	f.Add([]byte(nil))
	base, _ := NewPartitionMap(4)
	f.Add(base.Encode())
	one, _ := base.Move(0, 12, 1, 3)
	f.Add(one.Encode())
	two, _ := one.Move(4, 8, 3, 2)
	f.Add(two.Encode())
	overlap := &PartitionMap{K: 3, Ranges: []Range{
		{Lo: 0, Hi: 9, From: 1, To: 2}, {Lo: 6, Hi: 12, From: 1, To: 0}}}
	f.Add(overlap.Encode())
	gapped := &PartitionMap{K: 3, Ranges: []Range{{Lo: 5, Hi: 5, From: 0, To: 1}}}
	f.Add(gapped.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePartitionMap(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded map fails Validate: %v", err)
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, got)
		}
		// ShardOf must stay in range for arbitrary valid maps.
		for _, v := range []int32{0, 1, 2, 31, 1 << 20} {
			if s := m.ShardOf(v); s < 0 || s >= m.K {
				t.Fatalf("ShardOf(%d) = %d outside [0, %d)", v, s, m.K)
			}
		}
	})
}
