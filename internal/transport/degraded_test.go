package transport

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// degradedHarness boots a K=3 remote deployment and returns the public
// API test server plus the knobs to break shard 2: stop its process or
// make it slower than every client timeout.
func degradedHarness(t *testing.T) (ts *httptest.Server, breakShard func(mode string)) {
	t.Helper()
	g := twoCliques(t)
	cl, slows := startCluster(t, g, 3, 64, testOCA())
	rt := dialCluster(t, cl)
	srv, err := server.NewWithProvider(rt, server.Config{})
	if err != nil {
		t.Fatalf("NewWithProvider: %v", err)
	}
	t.Cleanup(srv.Close)
	ts = httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, func(mode string) {
		switch mode {
		case "down":
			cl.servers[2].Close()
		case "slow":
			slows[2].setDelay(3 * time.Second) // past every client timeout
		default:
			t.Fatalf("unknown break mode %q", mode)
		}
		// Wait until the poller observes the failure (a slow shard needs
		// one health probe to time out first) so the asserted requests
		// exercise the degraded path, not the detection race.
		waitForStatus(t, ts.URL, "degraded")
	}
}

// waitForStatus polls /healthz until it reports the wanted status.
func waitForStatus(t *testing.T, base, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var hr struct {
			Status string `json:"status"`
		}
		if getJSON(t, base+"/healthz", &hr) == http.StatusOK && hr.Status == want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("healthz never reported %q", want)
}

// TestDegradedShard is the degraded-transport contract, table-driven
// over failure modes: with shard 2 down or slow, batch lookups answer
// the healthy shards' ids and report shard 2's ids — and the
// generation-vector entry — with an explicit error; single lookups on
// shard 2 shed load with 503; health reports "degraded"; and every
// response returns within a bound instead of hanging.
func TestDegradedShard(t *testing.T) {
	for _, mode := range []string{"down", "slow"} {
		t.Run(mode, func(t *testing.T) {
			ts, breakShard := degradedHarness(t)

			// Healthy baseline: every id answers, vector clean.
			var br struct {
				Results []struct {
					Node  int32  `json:"node"`
					Error string `json:"error"`
				} `json:"results"`
				Shards shard.GenVector `json:"shards"`
			}
			if code := postJSON(t, ts.URL+"/v1/nodes/communities", map[string]any{"ids": []int32{0, 1, 2}}, &br); code != http.StatusOK {
				t.Fatalf("healthy batch status = %d", code)
			}
			for _, res := range br.Results {
				if res.Error != "" {
					t.Fatalf("healthy batch: node %d errored: %s", res.Node, res.Error)
				}
			}

			breakShard(mode)
			deadline := 5 * time.Second
			start := time.Now()

			// Partial batch: ids 0 and 1 (shards 0, 1) answer, id 2
			// (shard 2) carries an explicit error, as does the vector.
			br.Results = nil
			br.Shards = nil
			if code := postJSON(t, ts.URL+"/v1/nodes/communities", map[string]any{"ids": []int32{0, 1, 2}}, &br); code != http.StatusOK {
				t.Fatalf("degraded batch status = %d, want 200 with partial results", code)
			}
			if len(br.Results) != 3 {
				t.Fatalf("degraded batch: %d results, want 3", len(br.Results))
			}
			if br.Results[0].Error != "" || br.Results[1].Error != "" {
				t.Errorf("healthy shards' ids errored: %+v", br.Results)
			}
			if br.Results[2].Error == "" {
				t.Error("id on the degraded shard answered without an error")
			}
			degradedVec := false
			for _, e := range br.Shards {
				if e.Shard == 2 && e.Err != "" {
					degradedVec = true
				}
				if e.Shard != 2 && e.Err != "" {
					t.Errorf("healthy shard %d marked degraded: %s", e.Shard, e.Err)
				}
			}
			if !degradedVec {
				t.Errorf("generation vector does not flag shard 2: %+v", br.Shards)
			}

			// Single lookup on the degraded shard: explicit 503.
			if code := getJSON(t, ts.URL+"/v1/node/2/communities", nil); code != http.StatusServiceUnavailable {
				t.Errorf("lookup on degraded shard = %d, want 503", code)
			}
			// Healthy shards unaffected.
			if code := getJSON(t, ts.URL+"/v1/node/0/communities", nil); code != http.StatusOK {
				t.Errorf("lookup on healthy shard = %d, want 200", code)
			}

			// Health flips to degraded with the per-shard error.
			var hr struct {
				Status string `json:"status"`
				Shards []struct {
					Shard int    `json:"shard"`
					Error string `json:"error"`
				} `json:"shards"`
			}
			if code := getJSON(t, ts.URL+"/healthz", &hr); code != http.StatusOK {
				t.Fatalf("healthz status = %d", code)
			}
			if hr.Status != "degraded" {
				t.Errorf("healthz status = %q, want degraded", hr.Status)
			}
			if len(hr.Shards) != 3 || hr.Shards[2].Error == "" {
				t.Errorf("healthz shard vector: %+v", hr.Shards)
			}

			// Mutations owned by the degraded shard shed load.
			if code := postJSON(t, ts.URL+"/v1/edges", map[string]any{"add": [][2]int32{{2, 5}}}, nil); code != http.StatusServiceUnavailable {
				t.Errorf("edges touching degraded shard = %d, want 503", code)
			}

			// Search seeded on the degraded shard: 503; healthy seed works.
			if code := postJSON(t, ts.URL+"/v1/search", map[string]any{"seed": 2}, nil); code != http.StatusServiceUnavailable {
				t.Errorf("search on degraded shard = %d, want 503", code)
			}
			if code := postJSON(t, ts.URL+"/v1/search", map[string]any{"seed": 0}, nil); code != http.StatusOK {
				t.Errorf("search on healthy shard = %d, want 200", code)
			}

			// Stats stay available, flagging the degraded entry.
			var sr struct {
				Shards []struct {
					Shard int    `json:"shard"`
					Error string `json:"error"`
				} `json:"shards"`
			}
			if code := getJSON(t, ts.URL+"/v1/cover/stats", &sr); code != http.StatusOK {
				t.Fatalf("stats status = %d", code)
			}
			if len(sr.Shards) != 3 || sr.Shards[2].Error == "" {
				t.Errorf("stats shard vector: %+v", sr.Shards)
			}

			// "Never a hang": the whole degraded battery stayed bounded.
			if elapsed := time.Since(start); elapsed > deadline {
				t.Errorf("degraded requests took %v, want < %v", elapsed, deadline)
			}
		})
	}
}

// TestDegradedRecovery: a shard that comes back is picked up by the
// poller and serving returns to normal without restarting the router.
func TestDegradedRecovery(t *testing.T) {
	g := twoCliques(t)
	cl, slows := startCluster(t, g, 3, 64, testOCA())
	rt := dialCluster(t, cl)
	srv, err := server.NewWithProvider(rt, server.Config{})
	if err != nil {
		t.Fatalf("NewWithProvider: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	slows[2].setDelay(3 * time.Second)
	waitForStatus(t, ts.URL, "degraded")
	if code := getJSON(t, ts.URL+"/v1/node/2/communities", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("lookup while degraded = %d, want 503", code)
	}

	slows[2].setDelay(0)
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		time.Sleep(20 * time.Millisecond)
		ok = getJSON(t, fmt.Sprintf("%s/v1/node/2/communities", ts.URL), nil) == http.StatusOK
	}
	if !ok {
		t.Fatal("shard never recovered after the slowdown cleared")
	}
	var hr struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &hr)
	if hr.Status != "ok" {
		t.Errorf("healthz after recovery = %q, want ok", hr.Status)
	}
}
