package hierarchy

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
)

// twoGroupsOfCliques builds 4 cliques of size k: cliques 0,1 are densely
// interlinked, cliques 2,3 are densely interlinked, and the two pairs
// are joined by a single weak edge. The planted hierarchy is
// {{0,1},{2,3}} above the four cliques.
func twoGroupsOfCliques(k int) (*graph.Graph, *cover.Cover) {
	b := graph.NewBuilder(4 * k)
	addClique := func(off int32) {
		for i := int32(0); i < int32(k); i++ {
			for j := i + 1; j < int32(k); j++ {
				b.AddEdge(off+i, off+j)
			}
		}
	}
	for c := int32(0); c < 4; c++ {
		addClique(c * int32(k))
	}
	// Dense links inside each pair: every i-th node to the i-th node of
	// the sibling clique, plus one extra per node.
	link := func(a, c int32) {
		for i := int32(0); i < int32(k); i++ {
			b.AddEdge(a*int32(k)+i, c*int32(k)+i)
			b.AddEdge(a*int32(k)+i, c*int32(k)+(i+1)%int32(k))
		}
	}
	link(0, 1)
	link(2, 3)
	// One weak edge between the groups.
	b.AddEdge(0, 3*int32(k))
	g := b.Build()

	cs := make([]cover.Community, 4)
	for c := 0; c < 4; c++ {
		members := make([]int32, k)
		for i := range members {
			members[i] = int32(c*k + i)
		}
		cs[c] = cover.NewCommunity(members)
	}
	return g, cover.NewCover(cs)
}

func TestQuotientWeights(t *testing.T) {
	g, base := twoGroupsOfCliques(6)
	q, weights := Quotient(g, base, 1, 3)
	if q.N() != 4 {
		t.Fatalf("quotient nodes=%d, want 4", q.N())
	}
	// Pairs (0,1) and (2,3) carry 2k cross edges each; (0,3) carries 1.
	w01 := weights[uint64(0)<<32|1]
	w23 := weights[uint64(2)<<32|3]
	w03 := weights[uint64(0)<<32|3]
	if w01 != 12 || w23 != 12 {
		t.Fatalf("pair weights w01=%d w23=%d, want 12", w01, w23)
	}
	if w03 != 1 {
		t.Fatalf("weak weight=%d, want 1", w03)
	}
	// MinWeight 2 drops the weak edge.
	q2, _ := Quotient(g, base, 2, 3)
	if q2.HasEdge(0, 3) {
		t.Fatal("weak edge should be filtered at MinWeight=2")
	}
	if !q2.HasEdge(0, 1) || !q2.HasEdge(2, 3) {
		t.Fatal("strong edges missing")
	}
}

func TestQuotientSharedMembers(t *testing.T) {
	// Two communities overlapping in 2 nodes, no cross edges beyond the
	// overlap: shared members alone must relate them.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	cv := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3}),
		cover.NewCommunity([]int32{2, 3, 4, 5}),
	})
	_, weights := Quotient(g, cv, 1, 3)
	// Shared nodes 2,3 contribute 2·3 = 6; the edge {2,3} lies in both
	// communities (bump skips same-community pairs only when cu == cv),
	// cross contributions: {1,2}: com0 x {com0,com1} -> (0,1) +1;
	// {3,4}: similar +1; {2,3}: (0,1) +2 (both orders). Total ≥ 6.
	w := weights[uint64(0)<<32|1]
	if w < 6 {
		t.Fatalf("overlap weight=%d, want ≥ 6", w)
	}
}

func TestBuildRecoversTwoLevelStructure(t *testing.T) {
	g, base := twoGroupsOfCliques(6)
	levels, err := Build(g, base, Options{MinWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 2 {
		t.Fatalf("levels=%d, want ≥ 2", len(levels))
	}
	if levels[0].Cover.Len() != 4 {
		t.Fatalf("level 0 communities=%d", levels[0].Cover.Len())
	}
	l1 := levels[1].Cover
	if l1.Len() != 2 {
		t.Fatalf("level 1 communities=%d, want 2: %v", l1.Len(), l1.Communities)
	}
	// Each super-community must be exactly one of the planted groups.
	want0 := base.Communities[0].Union(base.Communities[1])
	want1 := base.Communities[2].Union(base.Communities[3])
	got := l1.Communities
	matches := func(c cover.Community) bool {
		return c.Equal(want0) || c.Equal(want1)
	}
	if !matches(got[0]) || !matches(got[1]) || got[0].Equal(got[1]) {
		t.Fatalf("super-communities wrong: %v", got)
	}
}

func TestBuildTerminatesOnTrivialCovers(t *testing.T) {
	g, base := twoGroupsOfCliques(4)
	// Empty base.
	levels, err := Build(g, cover.NewCover(nil), Options{})
	if err != nil || len(levels) != 1 {
		t.Fatalf("empty base: %v, %d levels", err, len(levels))
	}
	// Single community: nothing to coarsen.
	single := cover.NewCover([]cover.Community{base.Communities[0]})
	levels, err = Build(g, single, Options{})
	if err != nil || len(levels) != 1 {
		t.Fatalf("single community: %v, %d levels", err, len(levels))
	}
}

func TestBuildDisconnectedQuotient(t *testing.T) {
	// Two cliques with no relation at all: quotient has no edges, so the
	// hierarchy stops at the base level.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j)
			b.AddEdge(4+i, 4+j)
		}
	}
	g := b.Build()
	base := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3}),
		cover.NewCommunity([]int32{4, 5, 6, 7}),
	})
	levels, err := Build(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 {
		t.Fatalf("levels=%d, want 1 (no relations to coarsen)", len(levels))
	}
	if levels[0].Quotient == nil || levels[0].Quotient.M() != 0 {
		t.Fatal("quotient should exist and be edgeless")
	}
}

func TestBuildRespectsMaxLevels(t *testing.T) {
	g, base := twoGroupsOfCliques(6)
	levels, err := Build(g, base, Options{MinWeight: 2, MaxLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) > 2 { // base + at most one coarsening
		t.Fatalf("levels=%d, want ≤ 2 with MaxLevels=1", len(levels))
	}
}

func TestQuotientWeightsExposed(t *testing.T) {
	g, base := twoGroupsOfCliques(6)
	levels, err := Build(g, base, Options{MinWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if levels[0].Quotient == nil || len(levels[0].QuotientWeights) == 0 {
		t.Fatal("level 0 should expose its quotient graph and weights")
	}
}
