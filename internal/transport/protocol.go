package transport

import (
	"repro/internal/refresh"
	"repro/internal/shard"
)

// Protocol constants. The wire protocol is versioned as a whole: a
// server answers only its own major version (the Ocad-Shard-Protocol
// header), and any schema change that is not purely additive bumps
// Version and the path prefix together. docs/PROTOCOL.md is the
// normative description; TestProtocolDocSync keeps the two in lockstep.
const (
	// Version is the protocol major version spoken by this build.
	Version = 1

	// HeaderProtocol is the header both sides stamp with Version.
	HeaderProtocol = "Ocad-Shard-Protocol"

	// HeaderDeadline carries the caller's remaining time budget in
	// integer milliseconds. Optional and additive (no version bump):
	// clients with a context deadline stamp it on every request, servers
	// that understand it shed work the caller has already abandoned. A
	// missing header means "no deadline"; a malformed one is rejected
	// with 400/bad_request.
	HeaderDeadline = "Ocad-Deadline-Ms"

	// ContentTypeSnapshot is the snapshot transfer's media type: one
	// JSON header line, then the binary CSR graph (graph.WriteBinary).
	ContentTypeSnapshot = "application/x-ocad-snapshot"

	PathHealth   = "/shard/v1/health"
	PathSnapshot = "/shard/v1/snapshot"
	PathApply    = "/shard/v1/apply"
	PathFlush    = "/shard/v1/flush"
	PathLookup   = "/shard/v1/lookup"
	// PathMap reads (GET) and installs (POST) the shard's partition
	// map. Additive v1 extension — see docs/PROTOCOL.md "Partition map
	// & rebalancing".
	PathMap = "/shard/v1/map"
	// PathIngest is the slice-transfer endpoint: Apply semantics on a
	// dedicated path, so migration traffic is distinguishable from
	// normal writes (access logs, fault injection).
	PathIngest = "/shard/v1/ingest"
)

// Routes is the manifest of every (method, pattern) a shard server
// registers — the list docs/PROTOCOL.md must stay in sync with.
var Routes = []string{
	"GET " + PathHealth,
	"GET " + PathSnapshot,
	"POST " + PathApply,
	"POST " + PathFlush,
	"POST " + PathLookup,
	"GET " + PathMap,
	"POST " + PathMap,
	"POST " + PathIngest,
}

// ReplicaRoutes is the manifest a replica server registers: the same
// surface as a primary so routers and tooling need no special casing —
// apply, flush, map installs and ingest answer, but always with
// 503/not_primary.
var ReplicaRoutes = []string{
	"GET " + PathHealth,
	"GET " + PathSnapshot,
	"POST " + PathApply,
	"POST " + PathFlush,
	"POST " + PathLookup,
	"GET " + PathMap,
	"POST " + PathMap,
	"POST " + PathIngest,
}

// Role values carried in Health.Role. An empty Role (pre-replication
// servers) means primary.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// Machine-readable error codes carried in errorResponse.Code so clients
// branch on semantics, not message strings.
const (
	// CodeBacklogFull: the shard's mutation backlog is at capacity;
	// nothing was queued, retry the whole batch later.
	CodeBacklogFull = "backlog_full"
	// CodeClosed: the shard is shutting down (draining) and refuses new
	// mutations; reads keep serving.
	CodeClosed = "closed"
	// CodeTableConflict: the shipped translation-table update
	// contradicts the shard's table — a second writer grew it, which
	// the protocol forbids. Not retryable.
	CodeTableConflict = "table_conflict"
	// CodeProtocolMismatch: the request's Ocad-Shard-Protocol header
	// names a version this server does not speak.
	CodeProtocolMismatch = "protocol_mismatch"
	// CodeBadRequest: malformed request body or parameters.
	CodeBadRequest = "bad_request"
	// CodeInterrupted: a flush wait was cancelled (the client's request
	// deadline elapsed or it disconnected). The applied mutations stay
	// queued and will still publish; re-flushing is safe.
	CodeInterrupted = "interrupted"
	// CodeNotPrimary: a mutation (apply/flush) was sent to a replica.
	// Replicas are read-only mirrors; route writes to the primary. Not
	// retryable against the same server.
	CodeNotPrimary = "not_primary"
	// CodeDeadlineExceeded: the caller's Ocad-Deadline-Ms budget ran out
	// while the server was still working; the work was shed. For flush,
	// queued mutations stay queued and will still publish — identical
	// recovery to interrupted.
	CodeDeadlineExceeded = "deadline_exceeded"
)

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Health is the GET /shard/v1/health body: the generation/liveness
// probe plus the identity facts a router handshake validates.
type Health struct {
	Protocol int `json:"protocol"`
	// Shard and Shards identify this server's slice of the K-way
	// partition.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// GlobalNodes is the global node count of the graph the shard was
	// split from; MaxNodes the global growth ceiling. All K servers of
	// one deployment must agree on both.
	GlobalNodes int `json:"global_nodes"`
	MaxNodes    int `json:"max_nodes"`
	// TableLen is the current translation-table length, including
	// entries pending publication.
	TableLen int `json:"table_len"`
	// Epoch is the partition-map epoch the shard currently evaluates
	// ownership under; Map is the map itself in its binary encoding
	// (base64 in JSON). Additive: pre-rebalancing servers omit both,
	// which routers read as the epoch-0 modulo-K map.
	Epoch uint64 `json:"epoch,omitempty"`
	Map   []byte `json:"map,omitempty"`
	// Draining reports a shutdown in progress: mutations are refused,
	// reads still answer.
	Draining bool `json:"draining"`
	// DeadlineShed counts requests abandoned because the caller's
	// Ocad-Deadline-Ms budget expired before the server finished.
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
	// Role distinguishes a writable primary from a read-only replica
	// mirror; empty (pre-replication builds) means primary. Primary is
	// the upstream a replica follows, set only when Role is "replica".
	Role    string `json:"role,omitempty"`
	Primary string `json:"primary,omitempty"`
	// Snapshot summarizes the published generation; Status is the
	// refresh worker's point-in-time state.
	Snapshot refresh.SnapshotInfo `json:"snapshot"`
	Status   shard.WorkerStatus   `json:"status"`
}

// SnapshotHeader is the JSON first line of a snapshot transfer; the
// binary CSR graph follows it on the same stream.
type SnapshotHeader struct {
	Protocol int `json:"protocol"`
	Shard    int `json:"shard"`
	Shards   int `json:"shards"`
	// Info carries the generation's scalar facts (gen, c, rebuild mode,
	// dimensions); the receiver rebuilds index and stats from the cover
	// deterministically and restores these on top.
	Info refresh.SnapshotInfo `json:"info"`
	// Table is the full local→global translation table — at least
	// Info.Nodes entries; entries beyond are growth pending publication,
	// shipped so a reconnecting router resumes replication mid-growth.
	Table []int32 `json:"table"`
	// Cover is the served communities as local-id member lists, in
	// served order.
	Cover [][]int32 `json:"cover"`
	// Meta is the shard's ownership aggregates for this generation.
	Meta MetaWire `json:"meta"`
}

// MetaWire is shard.Meta without its Locals table (derived from
// SnapshotHeader.Table on the receiving side).
type MetaWire struct {
	// Epoch is the partition-map epoch the generation's ownership was
	// evaluated under (0 on pre-rebalancing senders).
	Epoch              uint64 `json:"epoch,omitempty"`
	OwnedNodes         int    `json:"owned_nodes"`
	OwnedEdges         int64  `json:"owned_edges"`
	CoveredOwned       int    `json:"covered_owned"`
	OverlapOwned       int    `json:"overlap_owned"`
	OwnedMemberships   int64  `json:"owned_memberships"`
	MaxMembershipOwned int    `json:"max_membership_owned"`
}

// MapRequest is the POST /shard/v1/map body: a partition map to
// install, in its binary encoding. Pending marks a transfer-window
// install (the receiver's map during a migration): the shard adopts it
// for ownership evaluation but must NOT persist it, so a crash during
// the window recovers at the old epoch. Final installs (Pending false)
// are flushed and persisted before the response — the server's 200 is
// the durability acknowledgment the flip relies on.
type MapRequest struct {
	Protocol int    `json:"protocol"`
	Map      []byte `json:"map"`
	Pending  bool   `json:"pending,omitempty"`
}

// MapResponse answers both GET and POST /shard/v1/map with the shard's
// (now) active map.
type MapResponse struct {
	Epoch uint64 `json:"epoch"`
	Map   []byte `json:"map"`
}

// ApplyRequest is the POST /shard/v1/apply body: one shard's slice of a
// mutation fan-out, local-id operations plus the translation-table
// entries appended since the router's last successful ship (see
// shard.Batch for the reconciliation rules; re-shipping is idempotent,
// so retrying a failed apply is safe).
type ApplyRequest struct {
	Protocol int `json:"protocol"`
	shard.Batch
}

// ApplyResponse reports the accepted batch: Generation is the
// generation current at enqueue time (any strictly larger published
// generation includes the batch), Queued the operations accepted.
type ApplyResponse struct {
	Generation uint64 `json:"generation"`
	Queued     int    `json:"queued"`
}

// FlushRequest is the POST /shard/v1/flush body. The server blocks
// until every previously applied mutation is reflected in a published
// generation — bounded by the client's request deadline, never by the
// server.
type FlushRequest struct {
	Protocol int `json:"protocol"`
}

// FlushResponse quotes the generation that includes everything applied
// before the flush.
type FlushResponse struct {
	Generation uint64 `json:"generation"`
}

// LookupRequest is the POST /shard/v1/lookup body: a batch membership
// lookup answered directly from the shard's current snapshot — the
// query path for clients that do not mirror snapshots (and the
// replication read path the ROADMAP plans to ride on this seam).
type LookupRequest struct {
	Protocol int `json:"protocol"`
	// IDs are global node ids; ids this shard does not own still answer
	// (ghost memberships are the shard's own view, see PROTOCOL.md).
	IDs []int32 `json:"ids"`
	// Members includes each community's member list (global ids).
	Members bool `json:"members,omitempty"`
}

// LookupResult is one id's answer.
type LookupResult struct {
	Node  int32 `json:"node"`
	Count int   `json:"count"`
	// Communities lists the shard-scoped communities containing the
	// node; member lists are global ids.
	Communities []LookupCommunity `json:"communities,omitempty"`
	// Error is set per id (unknown here / out of range) instead of
	// failing the batch.
	Error string `json:"error,omitempty"`
}

// LookupCommunity is one community reference in a lookup answer.
type LookupCommunity struct {
	ID      int32   `json:"id"`
	Size    int     `json:"size"`
	Members []int32 `json:"members,omitempty"`
}

// LookupResponse is the POST /shard/v1/lookup body: all results from
// one snapshot load, Generation its consistency token.
type LookupResponse struct {
	Generation uint64         `json:"generation"`
	Results    []LookupResult `json:"results"`
}
