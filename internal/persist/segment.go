package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/wal"
)

// The on-disk constants below are normative: docs/PERSISTENCE.md
// describes them and TestPersistenceDocSync fails if the two diverge.

// MagicSegment opens every snapshot segment file.
var MagicSegment = [4]byte{'O', 'C', 'S', 'G'}

// VersionSegment is the segment format version this package reads and
// writes.
const VersionSegment = 1

// Section tags, in the order segments write them. Unknown tags are
// skippable (sections are length-prefixed), so additive sections do not
// require a version bump.
var (
	// SecMeta is the JSON generation metadata (segMeta).
	SecMeta = [4]byte{'M', 'E', 'T', 'A'}
	// SecGraph is 4 alignment pad bytes followed by the binary CSR graph
	// exactly as graph.WriteBinary emits it.
	SecGraph = [4]byte{'G', 'R', 'P', 'H'}
	// SecCover is the served communities (count, then length-prefixed
	// member lists, int32 LE).
	SecCover = [4]byte{'C', 'O', 'V', 'R'}
	// SecTable is the local→global translation table prefix for this
	// generation's node set; empty on the single-graph role.
	SecTable = [4]byte{'T', 'A', 'B', 'L'}
	// SecEnd terminates a segment. A file without it is a torn write and
	// is never served.
	SecEnd = [4]byte{'E', 'N', 'D', 'S'}
)

// File-name patterns inside a data dir. The hex field is the snapshot
// generation (segments) or the base generation whose publication the
// log's records follow (WAL).
const (
	SegmentPattern = "seg-%016x.ocaseg"
	WALPattern     = "wal-%016x.ocawal"
)

// segHeaderSize is the segment file header: magic, version u32.
const segHeaderSize = 4 + 4

// secHeaderSize is the per-section header: tag, reserved u32 (zero),
// payload length u64, CRC-32C u32 over the payload, pad u32 (zero).
// 24 bytes keeps every payload 8-byte aligned (payloads themselves are
// zero-padded to the next 8-byte boundary), which is what lets the
// mmap path hand the graph's int64 offsets array straight to the CPU.
const secHeaderSize = 4 + 4 + 8 + 4 + 4

// maxSectionBytes caps a section's declared length when parsing, so a
// corrupt header cannot demand an absurd allocation. Segments for the
// scalability experiments' 10⁷-edge graphs stay well under it.
const maxSectionBytes = int64(1) << 36

// SegmentName returns the file name for generation gen.
func SegmentName(gen uint64) string { return fmt.Sprintf(SegmentPattern, gen) }

// WALName returns the WAL file name for base generation gen.
func WALName(gen uint64) string { return fmt.Sprintf(WALPattern, gen) }

// segMeta is the META section payload.
type segMeta struct {
	Info refresh.SnapshotInfo `json:"info"`
	// Shard/Shards identify the slice of a K-way partition this segment
	// belongs to; Shards 0 marks the single-graph role.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// MaxNodes is the growth ceiling the generation was serving under.
	MaxNodes int `json:"max_nodes"`
	// Epoch/PMap record the partition map the generation was routed
	// under (see docs/PROTOCOL.md "Partition map & rebalancing"). Both
	// are omitted at epoch 0 — the base v mod Shards map — so segments
	// written before rebalancing existed decode identically.
	Epoch uint64 `json:"epoch,omitempty"`
	PMap  []byte `json:"pmap,omitempty"`
}

// Segment is one decoded snapshot segment. When the file was mmap'd the
// graph's CSR arrays alias the mapping: the Segment must stay unclosed
// for as long as the graph is referenced.
type Segment struct {
	// Path is the file this segment was loaded from.
	Path string
	// Info carries the generation's scalar facts (gen, seq, c, …).
	Info refresh.SnapshotInfo
	// Shard/Shards/MaxNodes are the identity facts from the META
	// section (Shards 0 = single-graph role).
	Shard    int
	Shards   int
	MaxNodes int
	// Epoch/PMap are the persisted partition map facts (zero/nil for
	// segments written at the epoch-0 base map).
	Epoch uint64
	PMap  []byte
	// Graph and Cover are the persisted state.
	Graph *graph.Graph
	Cover *cover.Cover
	// Table is the local→global translation for Graph's nodes (nil on
	// the single role).
	Table []int32

	mapping []byte // non-nil when Graph aliases an mmap
}

// Mapped reports whether the graph serves straight from an mmap of the
// segment file.
func (s *Segment) Mapped() bool { return s.mapping != nil }

// Close releases the segment's mapping, if any. The graph (and any
// snapshot holding it) must not be used afterwards.
func (s *Segment) Close() error {
	if s.mapping == nil {
		return nil
	}
	m := s.mapping
	s.mapping = nil
	return unmapFile(m)
}

// Snapshot reassembles the refresh-level snapshot this segment
// persisted: index and stats are rebuilt deterministically from the
// cover, then the recorded scalar facts are restored on top.
//
// The snapshot carries a synthetic Result: segments only ever persist
// published generations, whose covers went through the merge, so the
// merge-fixpoint invariant the incremental engine checks via a non-nil
// Result holds. Leaving it nil would force the first post-recovery
// rebuild onto the full path — diverging from the live history that
// WAL replay must reproduce exactly. The run counters stay zero: this
// process did none of that work.
func (s *Segment) Snapshot() *refresh.Snapshot {
	snap := refresh.NewSnapshot(s.Graph, s.Cover, &core.Result{Cover: s.Cover, C: s.Info.C}, s.Info.C, 0)
	snap.Restore(s.Info)
	return snap
}

// SegmentData is the state WriteSegment persists.
type SegmentData struct {
	Info     refresh.SnapshotInfo
	Shard    int
	Shards   int
	MaxNodes int
	// Epoch/PMap stamp the partition map the shard routes under (zero
	// value = the epoch-0 base map, omitted on disk).
	Epoch uint64
	PMap  []byte
	Graph *graph.Graph
	Cover *cover.Cover
	Table []int32
}

// WriteSegment atomically writes a segment file at path: the bytes land
// in a temporary file in the same directory, are fsynced, renamed over
// path, and the directory is fsynced — so the file either exists
// completely or not at all.
func WriteSegment(path string, d SegmentData) error {
	var buf bytes.Buffer
	buf.Write(MagicSegment[:])
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], VersionSegment)
	buf.Write(v[:])

	meta, err := json.Marshal(segMeta{Info: d.Info, Shard: d.Shard, Shards: d.Shards, MaxNodes: d.MaxNodes, Epoch: d.Epoch, PMap: d.PMap})
	if err != nil {
		return fmt.Errorf("persist: encoding segment meta: %w", err)
	}
	writeSection(&buf, SecMeta, meta)

	var gbuf bytes.Buffer
	gbuf.Write([]byte{0, 0, 0, 0}) // aligns the CSR offsets array at +32
	if err := graph.WriteBinary(&gbuf, d.Graph); err != nil {
		return fmt.Errorf("persist: encoding segment graph: %w", err)
	}
	writeSection(&buf, SecGraph, gbuf.Bytes())
	writeSection(&buf, SecCover, encodeCover(d.Cover))
	writeSection(&buf, SecTable, encodeTable(d.Table))
	writeSection(&buf, SecEnd, nil)

	return atomicWrite(path, buf.Bytes())
}

func writeSection(buf *bytes.Buffer, tag [4]byte, payload []byte) {
	var head [secHeaderSize]byte
	copy(head[:4], tag[:])
	binary.LittleEndian.PutUint64(head[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(head[16:20], wal.Checksum(payload))
	buf.Write(head[:])
	buf.Write(payload)
	if pad := (8 - len(payload)%8) % 8; pad > 0 {
		buf.Write(make([]byte, pad))
	}
}

// atomicWrite lands data at path via tmp + fsync + rename + dir fsync.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadSegment opens, validates and decodes the segment at path,
// mmapping the file where the platform supports it so the graph's CSR
// arrays are served straight from the page cache (zero copy); elsewhere
// the file is read into memory. Every section's checksum is verified
// and the terminating ENDS section is required, so a torn or corrupted
// segment fails here instead of serving bad state.
func LoadSegment(path string) (*Segment, error) {
	data, mapping, err := readSegmentBytes(path)
	if err != nil {
		return nil, err
	}
	seg, err := decodeSegment(path, data, mapping != nil)
	if err != nil {
		if mapping != nil {
			_ = unmapFile(mapping)
		}
		return nil, err
	}
	seg.mapping = mapping
	return seg, nil
}

// readSegmentBytes returns the file's bytes, mmap'd when possible
// (mapping non-nil) and heap-read otherwise.
func readSegmentBytes(path string) (data, mapping []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if m, err := mapFile(f, st.Size()); err == nil && m != nil {
		return m, m, nil
	}
	data, err = os.ReadFile(path)
	return data, nil, err
}

func decodeSegment(path string, data []byte, mapped bool) (*Segment, error) {
	if len(data) < segHeaderSize {
		return nil, fmt.Errorf("persist: %s: %d bytes, shorter than a segment header", path, len(data))
	}
	if [4]byte(data[:4]) != MagicSegment {
		return nil, fmt.Errorf("persist: %s: bad magic %q, not a segment", path, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != VersionSegment {
		return nil, fmt.Errorf("persist: %s: unsupported segment version %d", path, v)
	}

	seg := &Segment{Path: path}
	var sawEnd, sawMeta, sawGraph, sawCover bool
	off := int64(segHeaderSize)
	for off < int64(len(data)) && !sawEnd {
		if int64(len(data))-off < secHeaderSize {
			return nil, fmt.Errorf("persist: %s: truncated section header at offset %d", path, off)
		}
		head := data[off : off+secHeaderSize]
		tag := [4]byte(head[:4])
		plen := int64(binary.LittleEndian.Uint64(head[8:16]))
		crc := binary.LittleEndian.Uint32(head[16:20])
		if plen < 0 || plen > maxSectionBytes {
			return nil, fmt.Errorf("persist: %s: section %q declares %d bytes", path, tag[:], plen)
		}
		body := off + secHeaderSize
		if body+plen > int64(len(data)) {
			return nil, fmt.Errorf("persist: %s: section %q truncated (%d bytes declared at offset %d)", path, tag[:], plen, off)
		}
		payload := data[body : body+plen]
		if got := wal.Checksum(payload); got != crc {
			return nil, fmt.Errorf("persist: %s: section %q checksum %08x != %08x", path, tag[:], got, crc)
		}
		switch tag {
		case SecMeta:
			var m segMeta
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, fmt.Errorf("persist: %s: decoding meta: %w", path, err)
			}
			seg.Info, seg.Shard, seg.Shards, seg.MaxNodes = m.Info, m.Shard, m.Shards, m.MaxNodes
			seg.Epoch, seg.PMap = m.Epoch, m.PMap
			sawMeta = true
		case SecGraph:
			g, err := decodeGraphPayload(payload, mapped)
			if err != nil {
				return nil, fmt.Errorf("persist: %s: %w", path, err)
			}
			seg.Graph = g
			sawGraph = true
		case SecCover:
			cv, err := decodeCover(payload)
			if err != nil {
				return nil, fmt.Errorf("persist: %s: %w", path, err)
			}
			seg.Cover = cv
			sawCover = true
		case SecTable:
			tb, err := decodeTable(payload)
			if err != nil {
				return nil, fmt.Errorf("persist: %s: %w", path, err)
			}
			seg.Table = tb
		case SecEnd:
			sawEnd = true
		default:
			// Length-prefixed unknown sections are forward-compatible:
			// skip.
		}
		off = body + plen + int64((8-plen%8)%8)
	}
	if !sawEnd {
		return nil, fmt.Errorf("persist: %s: missing ENDS section — torn segment write", path)
	}
	if !sawMeta || !sawGraph || !sawCover {
		return nil, fmt.Errorf("persist: %s: incomplete segment (meta %v, graph %v, cover %v)", path, sawMeta, sawGraph, sawCover)
	}
	if n := seg.Graph.N(); seg.Info.Nodes != n {
		return nil, fmt.Errorf("persist: %s: meta declares %d nodes, graph has %d", path, seg.Info.Nodes, n)
	}
	for _, c := range seg.Cover.Communities {
		for _, v := range c {
			if v < 0 || int(v) >= seg.Graph.N() {
				return nil, fmt.Errorf("persist: %s: cover member %d outside graph of %d nodes", path, v, seg.Graph.N())
			}
		}
	}
	if seg.Table != nil && len(seg.Table) != seg.Graph.N() {
		return nil, fmt.Errorf("persist: %s: table has %d entries for a %d-node graph", path, len(seg.Table), seg.Graph.N())
	}
	return seg, nil
}

// decodeGraphPayload parses a GRPH section: 4 pad bytes, then the
// binary CSR format of graph.WriteBinary. With zeroCopy the CSR arrays
// alias the payload (the caller guarantees it is an 8-byte-aligned
// mmap); the structural invariants are vouched for by the section
// checksum, so only the header/dimension facts are re-checked.
func decodeGraphPayload(p []byte, zeroCopy bool) (*graph.Graph, error) {
	const graphHead = 4 + 4 + 8 + 8 + 8 // pad, magic, version/n/halfEdges
	if len(p) < graphHead {
		return nil, fmt.Errorf("graph section %d bytes, shorter than its header", len(p))
	}
	if !zeroCopy || uintptr(unsafe.Pointer(&p[0]))%8 != 0 {
		// Portable path: the stock reader validates the full CSR.
		g, err := graph.ReadBinary(bytes.NewReader(p[4:]))
		if err != nil {
			return nil, fmt.Errorf("graph section: %w", err)
		}
		return g, nil
	}
	if string(p[4:8]) != "OCAG" {
		return nil, fmt.Errorf("graph section: bad inner magic %q", p[4:8])
	}
	version := int64(binary.LittleEndian.Uint64(p[8:16]))
	n := int64(binary.LittleEndian.Uint64(p[16:24]))
	he := int64(binary.LittleEndian.Uint64(p[24:32]))
	if version != 1 {
		return nil, fmt.Errorf("graph section: unsupported inner version %d", version)
	}
	want := int64(graphHead) + 8*(n+1) + 4*he
	if n < 0 || he < 0 || int64(len(p)) != want {
		return nil, fmt.Errorf("graph section: %d bytes, dimensions (n=%d, half-edges=%d) demand %d", len(p), n, he, want)
	}
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&p[graphHead])), n+1)
	var adj []int32
	if he > 0 {
		adj = unsafe.Slice((*int32)(unsafe.Pointer(&p[graphHead+8*(n+1)])), he)
	}
	if offsets[0] != 0 || offsets[n] != he {
		return nil, fmt.Errorf("graph section: corrupt offsets (first=%d, last=%d, want 0, %d)", offsets[0], offsets[n], he)
	}
	return graph.NewFromCSR(offsets, adj), nil
}

func encodeCover(cv *cover.Cover) []byte {
	n := 4
	for _, c := range cv.Communities {
		n += 4 + 4*len(c)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cv.Communities)))
	for _, c := range cv.Communities {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c)))
		for _, v := range c {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	}
	return out
}

func decodeCover(p []byte) (*cover.Cover, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("cover section %d bytes, want >= 4", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	// Every community costs at least its length prefix: a corrupt count
	// cannot demand more memory than the section provides.
	if int64(count)*4 > int64(len(p)) {
		return nil, fmt.Errorf("cover section declares %d communities in %d bytes", count, len(p))
	}
	cs := make([]cover.Community, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("cover section truncated at community %d", i)
		}
		m := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if int64(m)*4 > int64(len(p)) {
			return nil, fmt.Errorf("cover section: community %d declares %d members in %d bytes", i, m, len(p))
		}
		members := make(cover.Community, m)
		for j := range members {
			members[j] = int32(binary.LittleEndian.Uint32(p[4*j:]))
		}
		p = p[4*m:]
		cs = append(cs, members)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("cover section has %d trailing bytes", len(p))
	}
	return cover.NewCover(cs), nil
}

func encodeTable(table []int32) []byte {
	out := make([]byte, 0, 4+4*len(table))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(table)))
	for _, v := range table {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

func decodeTable(p []byte) ([]int32, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("table section %d bytes, want >= 4", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if int64(count)*4 != int64(len(p)) {
		return nil, fmt.Errorf("table section declares %d entries in %d bytes", count, len(p))
	}
	if count == 0 {
		return nil, nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out, nil
}
