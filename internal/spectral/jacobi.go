package spectral

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// ExactEigenvalues computes all adjacency eigenvalues of g with the cyclic
// Jacobi rotation method on a dense copy of A, returned in ascending
// order. It is O(n^3) per sweep and materializes an n×n matrix, so it is
// intended for validation and for tiny graphs only (it refuses n > 512).
func ExactEigenvalues(g *graph.Graph, tol float64) []float64 {
	n := g.N()
	if n > 512 {
		panic("spectral: ExactEigenvalues limited to n <= 512")
	}
	if n == 0 {
		return nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for v := int32(0); v < int32(n); v++ {
		for _, w := range g.Neighbors(v) {
			a[v][w] = 1
		}
	}
	jacobi(a, tol)
	eig := make([]float64, n)
	for i := range eig {
		eig[i] = a[i][i]
	}
	sort.Float64s(eig)
	return eig
}

// jacobi reduces symmetric matrix a to (numerically) diagonal form in
// place using cyclic Jacobi rotations.
func jacobi(a [][]float64, tol float64) {
	n := len(a)
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if math.Sqrt(2*off) < tol {
			return
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < tol/float64(n*n) {
					continue
				}
				rotate(a, p, q)
			}
		}
	}
}

// rotate applies the Jacobi rotation annihilating a[p][q].
func rotate(a [][]float64, p, q int) {
	n := len(a)
	apq := a[p][q]
	theta := (a[q][q] - a[p][p]) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	app, aqq := a[p][p], a[q][q]
	a[p][p] = app - t*apq
	a[q][q] = aqq + t*apq
	a[p][q] = 0
	a[q][p] = 0
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = c*aip - s*aiq
		a[p][i] = a[i][p]
		a[i][q] = s*aip + c*aiq
		a[q][i] = a[i][q]
	}
}
