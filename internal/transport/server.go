package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/refresh"
	"repro/internal/shard"
)

// ServerConfig identifies the deployment a shard server belongs to.
type ServerConfig struct {
	// GlobalNodes is the node count of the global graph the shard was
	// split from; MaxNodes is the global growth ceiling. The router
	// handshake cross-checks both across all K servers.
	GlobalNodes int
	MaxNodes    int
	// MaxRequestBody caps apply/lookup body sizes. Default 32 MiB (a
	// mutation fan-out slice can legitimately be large).
	MaxRequestBody int64
	// OnMapChange, when set, is called after a final (non-pending)
	// partition-map install has been adopted and flushed — the
	// persistence hook: cmd/ocad records the map and seals a segment so
	// a crash right after the flip recovers at the new epoch. An error
	// fails the install request (the map stays adopted in memory).
	OnMapChange func(pm *shard.PartitionMap) error
}

// ShardServer hosts one shard.Worker behind the wire protocol: the
// `ocad -serve-shard` role. It serves snapshot resolution, batch
// lookup, mutation apply (with ghost-table updates shipped in the
// fan-out), flush, and the generation/health probe. Reads answer from
// the worker's atomic snapshot and never block on rebuilds; apply and
// flush refuse work while draining so a shutdown never loses accepted
// mutations silently.
type ShardServer struct {
	w        *shard.Worker
	cfg      ServerConfig
	draining atomic.Bool
	shed     atomic.Uint64
}

// NewShardServer wraps a shard worker for serving.
func NewShardServer(w *shard.Worker, cfg ServerConfig) *ShardServer {
	if cfg.MaxRequestBody <= 0 {
		cfg.MaxRequestBody = 32 << 20
	}
	return &ShardServer{w: w, cfg: cfg}
}

// SetDraining flips the shutdown gate: while draining, apply and flush
// answer 503 (code "closed") and reads keep serving the last published
// generation. Called before the HTTP listener starts its drain so no
// accepted mutation can race the worker's Close.
func (s *ShardServer) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the shard protocol's http.Handler — exactly the
// Routes manifest.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	mux.HandleFunc("GET "+PathSnapshot, s.handleSnapshot)
	mux.HandleFunc("POST "+PathApply, s.handleApply)
	mux.HandleFunc("POST "+PathFlush, s.handleFlush)
	mux.HandleFunc("POST "+PathLookup, s.handleLookup)
	mux.HandleFunc("GET "+PathMap, s.handleMapGet)
	mux.HandleFunc("POST "+PathMap, s.handleMapPost)
	mux.HandleFunc("POST "+PathIngest, s.handleApply)
	return protocolMiddleware(mux, &s.shed)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

func (s *ShardServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	pm := s.w.PartitionMap()
	writeJSON(w, http.StatusOK, Health{
		Protocol:     Version,
		Shard:        s.w.Shard(),
		Shards:       s.w.K(),
		GlobalNodes:  s.cfg.GlobalNodes,
		MaxNodes:     s.cfg.MaxNodes,
		TableLen:     len(s.w.Table()),
		Draining:     s.draining.Load(),
		DeadlineShed: s.shed.Load(),
		Epoch:        pm.Epoch,
		Map:          pm.Encode(),
		Role:         RolePrimary,
		Snapshot:     s.w.Snapshot().Info(),
		Status:       s.w.Status(),
	})
}

// handleMapGet answers the shard's active partition map.
func (s *ShardServer) handleMapGet(w http.ResponseWriter, _ *http.Request) {
	pm := s.w.PartitionMap()
	writeJSON(w, http.StatusOK, MapResponse{Epoch: pm.Epoch, Map: pm.Encode()})
}

// handleMapPost installs a partition map. A pending install is
// transfer-window state: adopted for ownership evaluation, never
// persisted, so a crash mid-migration rejoins at the old epoch. A final
// install flushes the worker (the forced ownership rebuild publishes
// under the new map) and then fires the persistence hook — the 200 is
// the durability acknowledgment the router's flip broadcast waits for.
func (s *ShardServer) handleMapPost(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeClosed, "shard draining")
		return
	}
	var req MapRequest
	if !s.decode(w, r, &req) {
		return
	}
	pm, err := shard.DecodePartitionMap(req.Map)
	if err != nil {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if err := s.w.SetPartitionMap(pm); err != nil {
		if errors.Is(err, refresh.ErrClosed) {
			retryAfter(w, time.Second)
			writeCode(w, http.StatusServiceUnavailable, CodeClosed, "%v", err)
			return
		}
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if !req.Pending {
		if _, err := s.w.Flush(r.Context()); err != nil {
			retryAfter(w, time.Second)
			writeCode(w, http.StatusServiceUnavailable, CodeInterrupted, "map adopted, rebuild wait interrupted: %v", err)
			return
		}
		if s.cfg.OnMapChange != nil {
			if err := s.cfg.OnMapChange(pm); err != nil {
				writeCode(w, http.StatusInternalServerError, CodeBadRequest, "map adopted but not persisted: %v", err)
				return
			}
		}
	}
	act := s.w.PartitionMap()
	writeJSON(w, http.StatusOK, MapResponse{Epoch: act.Epoch, Map: act.Encode()})
}

// handleSnapshot streams the published generation, or 304 when the
// client's ?since generation is already current. The table is captured
// after the snapshot load: the mapping is append-only, so the capture
// is always a superset of the generation's prefix and the next apply's
// base reconciliation stays consistent.
func (s *ShardServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.w.Snapshot()
	if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
		since, err := strconv.ParseUint(sinceStr, 10, 64)
		if err != nil {
			writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid since=%q", sinceStr)
			return
		}
		if snap.Gen <= since {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", ContentTypeSnapshot)
	_ = encodeSnapshot(w, s.w.Shard(), s.w.K(), snap, s.w.Table())
}

func (s *ShardServer) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeJSONBody(w, r, s.cfg.MaxRequestBody, v)
}

func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBody int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *ShardServer) handleApply(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeClosed, "shard draining")
		return
	}
	var req ApplyRequest
	if !s.decode(w, r, &req) {
		return
	}
	gen, queued, err := s.w.ApplyBatch(req.Batch)
	switch {
	case errors.Is(err, refresh.ErrBacklogFull):
		retryAfter(w, refresh.RetryAfter(s.w.Status().Status.Pending, s.w.MaxPending()))
		writeCode(w, http.StatusServiceUnavailable, CodeBacklogFull, "%v", err)
	case errors.Is(err, refresh.ErrClosed):
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeClosed, "%v", err)
	case errors.Is(err, shard.ErrTableConflict):
		writeCode(w, http.StatusConflict, CodeTableConflict, "%v", err)
	case err != nil:
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusOK, ApplyResponse{Generation: gen, Queued: queued})
	}
}

// handleFlush blocks until previously applied mutations are published.
// The wait is bounded by the client's request deadline (a disconnect
// cancels r.Context()), never by this server — "never hang" is the
// caller's own timeout to enforce.
func (s *ShardServer) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeClosed, "shard draining")
		return
	}
	var req FlushRequest
	if !s.decode(w, r, &req) {
		return
	}
	gen, err := s.w.Flush(r.Context())
	switch {
	case errors.Is(err, refresh.ErrClosed):
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeClosed, "%v", err)
	case err != nil && fromDeadlineHeader(r.Context()):
		// The caller's propagated budget ran out mid-wait: shed the work
		// and say so — the batch stays queued and will still publish.
		s.shed.Add(1)
		writeCode(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "flush abandoned: %v", err)
	case err != nil:
		// Context cancellation: the batch stays queued and will still be
		// applied; the client decides whether to re-flush.
		retryAfter(w, time.Second)
		writeCode(w, http.StatusServiceUnavailable, CodeInterrupted, "flush interrupted: %v", err)
	default:
		writeJSON(w, http.StatusOK, FlushResponse{Generation: gen})
	}
}

// handleLookup answers a batch membership lookup from one snapshot
// load. Ids not materialized on this shard answer a per-id error; the
// caller decides whether another shard owns them.
func (s *ShardServer) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req LookupRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "ids must name at least one node")
		return
	}
	writeJSON(w, http.StatusOK, answerLookup(s.w.View(), req))
}

// answerLookup resolves a lookup batch against one consistent view —
// shared by the primary (worker view) and replica (mirror view) paths.
func answerLookup(view shard.View, req LookupRequest) LookupResponse {
	resp := LookupResponse{
		Generation: view.Snap.Gen,
		Results:    make([]LookupResult, len(req.IDs)),
	}
	for i, id := range req.IDs {
		local, ok := view.Local(id)
		if !ok {
			resp.Results[i] = LookupResult{Node: id, Error: "node not materialized on this shard"}
			continue
		}
		cis := view.Snap.Index.Communities(local)
		res := LookupResult{Node: id, Count: len(cis)}
		if len(cis) > 0 {
			res.Communities = make([]LookupCommunity, len(cis))
			for j, ci := range cis {
				members := view.Snap.Cover.Communities[ci]
				lc := LookupCommunity{ID: ci, Size: len(members)}
				if req.Members {
					lc.Members = view.Members(members)
				}
				res.Communities[j] = lc
			}
		}
		resp.Results[i] = res
	}
	return resp
}
