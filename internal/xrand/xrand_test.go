package xrand

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values from the SplitMix64 specification (seed 0).
	got := SplitMix64(0)
	if got != 0xe220a8397b1dcdaf {
		t.Fatalf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestDeriveDeterministicAndSpread(t *testing.T) {
	if Derive(1, 2) != Derive(1, 2) {
		t.Fatal("Derive not deterministic")
	}
	seen := map[int64]bool{}
	for stream := int64(0); stream < 1000; stream++ {
		s := Derive(42, stream)
		if seen[s] {
			t.Fatalf("collision at stream %d", stream)
		}
		seen[s] = true
	}
}

func TestDeriveIndependentOfNearbyBases(t *testing.T) {
	f := func(base int64) bool {
		return Derive(base, 0) != Derive(base+1, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewStreamsDiffer(t *testing.T) {
	a := New(7, 0)
	b := New(7, 1)
	same := 0
	for i := 0; i < 20; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different streams produced identical sequences")
	}
}
