// Package persist is the durability layer under ocad: it writes each
// published snapshot generation to an mmap-able segment file (graph,
// cover, translation table and generation metadata, each section
// CRC-protected), keeps a mutation write-ahead log (internal/wal)
// between segments, and on startup recovers the latest valid segment
// plus the WAL tail so a restart replays O(mutations since last
// segment) instead of cold-running OCA over the whole graph.
//
// The package owns file placement, rotation, retention and the
// recovery scan; the WAL record framing lives in internal/wal and the
// graph payload reuses internal/graph's binary CSR wire format
// verbatim. docs/PERSISTENCE.md is the normative on-disk
// specification; TestPersistenceDocSync fails when it and the
// constants here diverge.
//
// Crash-safety model: segments become visible only by atomic rename
// after an fsync, and carry a terminating ENDS section, so a partial
// segment write is never mistaken for a valid one — recovery skips it
// and falls back to the previous segment. A WAL tail torn by a crash
// mid-write is truncated at the last intact record (wal.ErrTorn). A
// batch is acknowledged to the client only after its WAL record is
// written (and fsynced, with -wal-fsync), so acknowledged mutations
// survive kill -9.
package persist
