package ds

// BucketQueue is an integer-keyed priority structure over int32 item ids.
// Keys must lie in [0, maxKey]. It supports O(1) insert, remove and
// key update, and amortized O(1) Max/Min queries under the ±1 key drifts
// produced by the greedy community searches (the high/low watermarks move
// at most one bucket per update on average).
//
// Items are arbitrary non-negative int32 ids; each id may be present at
// most once. The zero value is unusable; create one with NewBucketQueue.
type BucketQueue struct {
	buckets [][]int32       // key -> stack of ids (with holes compacted lazily)
	pos     map[int32]entry // id -> location
	n       int
	hi, lo  int // watermarks: no items above hi / below lo
}

type entry struct {
	key int32
	idx int32 // index within buckets[key]
}

// NewBucketQueue returns an empty queue accepting keys in [0, maxKey].
func NewBucketQueue(maxKey int) *BucketQueue {
	if maxKey < 0 {
		maxKey = 0
	}
	return &BucketQueue{
		buckets: make([][]int32, maxKey+1),
		pos:     make(map[int32]entry),
		hi:      -1,
		lo:      maxKey + 1,
	}
}

// Len returns the number of items in the queue.
func (q *BucketQueue) Len() int { return q.n }

// Contains reports whether id is in the queue.
func (q *BucketQueue) Contains(id int32) bool {
	_, ok := q.pos[id]
	return ok
}

// Key returns the key of id and whether id is present.
func (q *BucketQueue) Key(id int32) (int, bool) {
	e, ok := q.pos[id]
	return int(e.key), ok
}

// Add inserts id with the given key. It panics if id is already present
// or key is out of range; both indicate a bug in the caller.
func (q *BucketQueue) Add(id int32, key int) {
	if _, ok := q.pos[id]; ok {
		panic("ds: BucketQueue.Add of existing id")
	}
	if key < 0 || key >= len(q.buckets) {
		panic("ds: BucketQueue key out of range")
	}
	b := q.buckets[key]
	q.pos[id] = entry{key: int32(key), idx: int32(len(b))}
	q.buckets[key] = append(b, id)
	q.n++
	if key > q.hi {
		q.hi = key
	}
	if key < q.lo {
		q.lo = key
	}
}

// Remove deletes id from the queue. It panics if id is absent.
func (q *BucketQueue) Remove(id int32) {
	e, ok := q.pos[id]
	if !ok {
		panic("ds: BucketQueue.Remove of missing id")
	}
	q.removeAt(e)
	delete(q.pos, id)
	q.n--
}

func (q *BucketQueue) removeAt(e entry) {
	b := q.buckets[e.key]
	last := len(b) - 1
	if int(e.idx) != last {
		moved := b[last]
		b[e.idx] = moved
		me := q.pos[moved]
		me.idx = e.idx
		q.pos[moved] = me
	}
	q.buckets[e.key] = b[:last]
}

// Update changes id's key to newKey. It panics if id is absent.
func (q *BucketQueue) Update(id int32, newKey int) {
	e, ok := q.pos[id]
	if !ok {
		panic("ds: BucketQueue.Update of missing id")
	}
	if int(e.key) == newKey {
		return
	}
	if newKey < 0 || newKey >= len(q.buckets) {
		panic("ds: BucketQueue key out of range")
	}
	q.removeAt(e)
	b := q.buckets[newKey]
	q.pos[id] = entry{key: int32(newKey), idx: int32(len(b))}
	q.buckets[newKey] = append(b, id)
	if newKey > q.hi {
		q.hi = newKey
	}
	if newKey < q.lo {
		q.lo = newKey
	}
}

// Max returns an item with the largest key. ok is false when empty.
func (q *BucketQueue) Max() (id int32, key int, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	for len(q.buckets[q.hi]) == 0 {
		q.hi--
	}
	b := q.buckets[q.hi]
	return b[len(b)-1], q.hi, true
}

// Min returns an item with the smallest key. ok is false when empty.
func (q *BucketQueue) Min() (id int32, key int, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	for len(q.buckets[q.lo]) == 0 {
		q.lo++
	}
	b := q.buckets[q.lo]
	return b[len(b)-1], q.lo, true
}
