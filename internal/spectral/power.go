// Package spectral computes the adjacency-spectrum quantities OCA needs:
// the extreme eigenvalues of a graph's adjacency matrix and the derived
// inner-product parameter c = -1/λmin of the virtual vector
// representation (Lovász), all matrix-free over the CSR graph.
package spectral

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Options control the power iterations.
type Options struct {
	// MaxIter bounds the iterations of each power loop. Default 1000.
	MaxIter int
	// Tol is the relative convergence tolerance on the Rayleigh quotient.
	// Default 1e-7.
	Tol float64
	// Seed seeds the random starting vector. The result is deterministic
	// for a fixed seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// ErrNoEdges is returned when an eigenvalue of an edgeless graph is
// requested; its adjacency spectrum is identically zero and c is
// undefined.
var ErrNoEdges = errors.New("spectral: graph has no edges")

// LambdaMax estimates the largest adjacency eigenvalue of g by power
// iteration on A + I. The +I shift makes the dominant eigenvalue of the
// iterated matrix strictly largest in magnitude even on bipartite graphs
// (whose spectrum is symmetric, λmin = -λmax).
func LambdaMax(g *graph.Graph, opt Options) (float64, error) {
	opt = opt.withDefaults()
	if g.M() == 0 {
		return 0, ErrNoEdges
	}
	// Iterate x <- (A + I) x. Rayleigh quotient of A recovered as
	// q(A+I) - 1.
	q, err := powerIterate(g, opt, 1)
	if err != nil {
		return 0, err
	}
	return q - 1, nil
}

// LambdaMin estimates the most negative adjacency eigenvalue of g. It
// first estimates λmax, then runs power iteration on A - λmax·I whose
// spectrum lies in [λmin-λmax, 0], so the dominant (largest magnitude)
// eigenvalue is λmin - λmax.
func LambdaMin(g *graph.Graph, opt Options) (float64, error) {
	opt = opt.withDefaults()
	lmax, err := LambdaMax(g, opt)
	if err != nil {
		return 0, err
	}
	// Iterate x <- (A - lmax·I) x; Rayleigh quotient converges to
	// λmin - λmax (strictly dominant unless the graph is edgeless).
	q, err := powerIterate(g, opt, -lmax)
	if err != nil {
		return 0, err
	}
	lmin := q + lmax
	// Numerical guard: adjacency eigenvalues satisfy λmin <= -1 for any
	// graph with at least one edge (interlacing with a single-edge
	// subgraph), and λmin >= -λmax.
	if lmin > -1 {
		lmin = -1
	}
	if lmin < -lmax {
		lmin = -lmax
	}
	return lmin, nil
}

// CMax is the exclusive upper bound for the inner-product parameter c;
// Definition 1 of the paper requires c < 1.
const CMax = 0.999

// C returns the paper's inner-product parameter c = -1/λmin, clamped to
// (0, CMax]. For an edgeless graph it returns 0 (every fitness optimum is
// then a singleton, which is the sensible degenerate answer).
func C(g *graph.Graph, opt Options) (float64, error) {
	lmin, err := LambdaMin(g, opt)
	if err == ErrNoEdges {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	c := -1 / lmin
	if c > CMax {
		c = CMax
	}
	return c, nil
}

// powerIterate runs power iteration for M = A + shift·I and returns the
// final Rayleigh quotient x'Mx / x'x. The quotient is insensitive to the
// sign flips a negative dominant eigenvalue induces on x, so it converges
// for both shifted problems used above.
func powerIterate(g *graph.Graph, opt Options, shift float64) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, ErrNoEdges
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	normalize(x)
	prev := math.Inf(1)
	for iter := 0; iter < opt.MaxIter; iter++ {
		matVec(g, x, y, shift)
		q := dot(x, y) // Rayleigh quotient since ||x|| = 1
		ny := norm(y)
		if ny == 0 {
			// x landed in the null space; restart from a fresh vector.
			for i := range x {
				x[i] = rng.Float64() - 0.5
			}
			normalize(x)
			prev = math.Inf(1)
			continue
		}
		inv := 1 / ny
		for i := range y {
			x[i] = y[i] * inv
		}
		if math.Abs(q-prev) <= opt.Tol*math.Max(1, math.Abs(q)) {
			return q, nil
		}
		prev = q
	}
	return prev, nil
}

// matVec computes y = A·x + shift·x.
func matVec(g *graph.Graph, x, y []float64, shift float64) {
	for v := range y {
		sum := shift * x[v]
		for _, w := range g.Neighbors(int32(v)) {
			sum += x[w]
		}
		y[v] = sum
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}
