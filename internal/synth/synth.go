// Package synth provides synthetic large-graph generators. They stand in
// for the paper's Wikipedia link graph (16 986 429 nodes, 176 454 501
// edges), which is not redistributable at that vintage: an R-MAT or
// preferential-attachment graph with matched density exercises exactly
// the same OCA code paths (power method, seeded local search, merging)
// with a realistic heavy-tailed degree distribution. See DESIGN.md §3.6.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/xrand"
)

// BarabasiAlbert generates a preferential-attachment graph: nodes arrive
// one at a time and connect m edges to existing nodes chosen
// proportionally to their current degree (via the repeated-endpoints
// trick). The first m+1 nodes form a seed clique.
func BarabasiAlbert(n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("synth: BarabasiAlbert needs 1 <= m < n, got n=%d m=%d", n, m)
	}
	rng := xrand.New(seed, 0)
	b := graph.NewBuilderHint(n, int64(n)*int64(m))
	// endpoints holds every edge endpoint; sampling uniformly from it is
	// degree-proportional sampling.
	endpoints := make([]int32, 0, 2*n*m)
	for i := 0; i <= m; i++ {
		for j := 0; j < i; j++ {
			b.AddEdge(int32(i), int32(j))
			endpoints = append(endpoints, int32(i), int32(j))
		}
	}
	targets := make(map[int32]struct{}, m)
	for v := m + 1; v < n; v++ {
		clear(targets)
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			targets[t] = struct{}{}
		}
		for t := range targets {
			b.AddEdge(int32(v), t)
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return b.Build(), nil
}

// GNM generates a uniform random simple graph with exactly m distinct
// edges (Erdős–Rényi G(n, m)). m must not exceed half the possible pairs
// so rejection sampling stays fast.
func GNM(n int, m int64, seed int64) (*graph.Graph, error) {
	maxPairs := int64(n) * int64(n-1) / 2
	if n < 2 || m < 0 || m > maxPairs/2+1 {
		return nil, fmt.Errorf("synth: GNM(n=%d, m=%d) out of range (max %d)", n, m, maxPairs/2+1)
	}
	rng := xrand.New(seed, 0)
	seen := make(map[uint64]struct{}, m)
	b := graph.NewBuilderHint(n, m)
	for int64(len(seen)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build(), nil
}

// RMATParams configure an R-MAT generation (Chakrabarti et al.; the
// Graph500 generator). The graph has 2^Scale nodes and approximately
// EdgeFactor·2^Scale distinct edges (duplicates and self loops are
// dropped, as in the reference implementation).
type RMATParams struct {
	Scale      int
	EdgeFactor int
	// A, B, C, D are the quadrant probabilities; they must be positive
	// and sum to 1. Zero values default to the Graph500 constants
	// (0.57, 0.19, 0.19, 0.05).
	A, B, C, D float64
	// NoisePerLevel perturbs the quadrant probabilities at every
	// recursion level (the standard "smoothing" that avoids exact
	// self-similarity). Default 0.1.
	NoisePerLevel float64
	Seed          int64
}

func (p RMATParams) withDefaults() RMATParams {
	if p.A == 0 && p.B == 0 && p.C == 0 && p.D == 0 {
		p.A, p.B, p.C, p.D = 0.57, 0.19, 0.19, 0.05
	}
	if p.NoisePerLevel == 0 {
		p.NoisePerLevel = 0.1
	}
	return p
}

// RMAT generates an R-MAT graph.
func RMAT(p RMATParams) (*graph.Graph, error) {
	p = p.withDefaults()
	if p.Scale < 1 || p.Scale > 30 {
		return nil, fmt.Errorf("synth: RMAT scale %d out of [1, 30]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return nil, fmt.Errorf("synth: RMAT edge factor %d < 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("synth: RMAT probabilities (%g,%g,%g,%g) must be positive and sum to 1",
			p.A, p.B, p.C, p.D)
	}
	rng := xrand.New(p.Seed, 0)
	n := 1 << uint(p.Scale)
	m := int64(n) * int64(p.EdgeFactor)
	b := graph.NewBuilderHint(n, m)
	for e := int64(0); e < m; e++ {
		u, v := rmatEdge(rng, p)
		b.AddEdge(u, v) // self loops and duplicates dropped at Build
	}
	return b.Build(), nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(rng *rand.Rand, p RMATParams) (int32, int32) {
	var u, v int32
	for level := 0; level < p.Scale; level++ {
		a, bq, c := p.A, p.B, p.C
		if p.NoisePerLevel > 0 {
			// Multiplicative noise, renormalized.
			na := a * (1 - p.NoisePerLevel + 2*p.NoisePerLevel*rng.Float64())
			nb := bq * (1 - p.NoisePerLevel + 2*p.NoisePerLevel*rng.Float64())
			nc := c * (1 - p.NoisePerLevel + 2*p.NoisePerLevel*rng.Float64())
			nd := p.D * (1 - p.NoisePerLevel + 2*p.NoisePerLevel*rng.Float64())
			s := na + nb + nc + nd
			a, bq, c = na/s, nb/s, nc/s
		}
		r := rng.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+bq:
			v |= 1
		case r < a+bq+c:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

// WikipediaLike builds the Table-I "Wikipedia" substitute: an LFR graph
// with 2^scale nodes matching the three properties of the paper's
// Wikipedia link graph that its experiment exercises — edge/node ratio
// ≈ 10.4 (176 454 501 / 16 986 429), a heavy-tailed degree distribution,
// and genuine (overlapping) community structure for OCA to find ("we
// ran OCA on the Wikipedia dataset, and found all relevant communities").
// A pure R-MAT graph fails the third property: with no planted clusters,
// c = -1/λmin collapses toward 0 on hub-dominated spectra and every
// local optimum is a singleton, which is not the regime the paper
// measured. Scale 24 approaches the paper's node count; the harness
// defaults to a smaller scale and reports throughput instead of hours.
func WikipediaLike(scale int, seed int64) (*graph.Graph, error) {
	if scale < 8 || scale > 24 {
		return nil, fmt.Errorf("synth: WikipediaLike scale %d out of [8, 24]", scale)
	}
	n := 1 << uint(scale)
	maxDeg := clampInt(n/16, 64, 1000)
	maxCom := clampInt(n/8, 40, 1000)
	bench, err := lfr.Generate(lfr.Params{
		N:            n,
		AvgDeg:       20.8, // paper's 2m/n
		MaxDeg:       maxDeg,
		DegExp:       2.2, // web-graph-like tail
		ComExp:       1.5,
		Mu:           0.3,
		MinCom:       20,
		MaxCom:       maxCom,
		OverlapNodes: n / 20, // 5% of articles sit in several topics
		OverlapMemb:  2,
		Seed:         seed,
	})
	if err != nil {
		return nil, fmt.Errorf("synth: WikipediaLike: %w", err)
	}
	return bench.Graph, nil
}
