package graph

import (
	"fmt"
	"sort"
)

// Delta accumulates edge additions and removals against an existing
// immutable CSR graph and applies them in one pass, producing a new
// Graph that shares nothing with (and never mutates) the original.
// It is the cheap copy-on-write path behind live cover refresh: a
// rebuild costs O(n + m + Δ log Δ) instead of re-sorting all m edges
// through a full Builder.
//
// Operations are recorded in arrival order; when the same edge is both
// added and removed, the last operation wins. Adding an edge that
// already exists and removing one that does not are no-ops at Apply
// time. The node set is fixed unless GrowTo raises it: endpoints
// outside the current bound are rejected, as are self loops. A Delta is
// not safe for concurrent use.
type Delta struct {
	g    *Graph
	ops  []deltaOp
	grow int // node count of Apply's result when > g.N()
}

type deltaOp struct {
	u, v int32 // normalized u < v
	del  bool
}

// NewDelta returns an empty Delta over g.
func NewDelta(g *Graph) *Delta {
	return &Delta{g: g}
}

// Len returns the number of recorded operations (before no-op
// elimination at Apply time).
func (d *Delta) Len() int { return len(d.ops) }

// N returns the node count Apply's result will have: the base graph's,
// or the GrowTo target when larger.
func (d *Delta) N() int {
	if d.grow > d.g.N() {
		return d.grow
	}
	return d.g.N()
}

// GrowTo raises the delta's node bound to n, so subsequent operations
// may name nodes in [0, n) and Apply's result has n nodes (new nodes
// are isolated until edges name them). Shrinking is not supported:
// targets at or below the current bound are no-ops. This is the
// mutation path behind serving graphs whose node set keeps growing —
// the base CSR graph stays untouched.
func (d *Delta) GrowTo(n int) {
	if n > d.N() {
		d.grow = n
	}
}

func (d *Delta) record(u, v int32, del bool) error {
	if u == v {
		return fmt.Errorf("graph: delta edge (%d, %d) is a self loop", u, v)
	}
	if u < 0 || v < 0 || int(u) >= d.N() || int(v) >= d.N() {
		return fmt.Errorf("graph: delta edge (%d, %d) out of range [0, %d)", u, v, d.N())
	}
	if u > v {
		u, v = v, u
	}
	d.ops = append(d.ops, deltaOp{u: u, v: v, del: del})
	return nil
}

// AddEdge records the addition of the undirected edge {u, v}. Unlike
// Builder.AddEdge it returns an error instead of panicking: deltas are
// fed from network input, where a bad endpoint is a client mistake, not
// a programming bug.
func (d *Delta) AddEdge(u, v int32) error { return d.record(u, v, false) }

// RemoveEdge records the removal of the undirected edge {u, v}.
func (d *Delta) RemoveEdge(u, v int32) error { return d.record(u, v, true) }

// Touched returns the sorted distinct endpoints of all recorded
// operations — the nodes whose neighborhoods may differ between the
// base graph and Apply's result. Refresh uses it to decide which
// communities of the previous cover can be carried over unchanged.
func (d *Delta) Touched() []int32 {
	seen := make(map[int32]struct{}, 2*len(d.ops))
	for _, o := range d.ops {
		seen[o.u] = struct{}{}
		seen[o.v] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply merges the recorded operations into the base graph's CSR arrays
// and returns the resulting Graph. The base graph is untouched; when no
// operation changes anything, the base graph itself is returned. The
// Delta may keep accumulating operations afterwards, but they remain
// relative to the base graph, not to Apply's result.
func (d *Delta) Apply() *Graph {
	n := d.N()
	base := d.g.N()
	if len(d.ops) == 0 {
		if n == base {
			return d.g
		}
		// Pure growth: the new nodes are isolated, so the adjacency is
		// unchanged and only the offsets table extends.
		offsets := make([]int64, n+1)
		copy(offsets, d.g.offsets)
		for v := base + 1; v <= n; v++ {
			offsets[v] = offsets[base]
		}
		return &Graph{offsets: offsets, adj: d.g.adj}
	}

	// Resolve to one effective operation per edge: stable sort by edge
	// keeps arrival order within a pair, then the last entry wins.
	ops := make([]deltaOp, len(d.ops))
	copy(ops, d.ops)
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].u != ops[j].u {
			return ops[i].u < ops[j].u
		}
		return ops[i].v < ops[j].v
	})
	// Per-node change lists. Because ops are sorted by (u, v) and u < v,
	// each node's adds/dels come out ascending without a per-node sort:
	// entries with the node on the v side (partners < node) all precede
	// entries with it on the u side (partners > node).
	adds := make(map[int32][]int32)
	dels := make(map[int32][]int32)
	changed := false
	for i, o := range ops {
		if i+1 < len(ops) && ops[i+1].u == o.u && ops[i+1].v == o.v {
			continue // superseded by a later op on the same edge
		}
		// Edges naming grown nodes cannot pre-exist in the base graph
		// (and HasEdge would index past its offsets table).
		exists := int(o.v) < base && d.g.HasEdge(o.u, o.v)
		switch {
		case o.del && exists:
			dels[o.u] = append(dels[o.u], o.v)
			dels[o.v] = append(dels[o.v], o.u)
			changed = true
		case !o.del && !exists:
			adds[o.u] = append(adds[o.u], o.v)
			adds[o.v] = append(adds[o.v], o.u)
			changed = true
		}
	}
	if !changed && n == base {
		return d.g
	}

	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		var deg int64
		if v < base {
			deg = int64(d.g.Degree(int32(v)))
		}
		deg += int64(len(adds[int32(v)]) - len(dels[int32(v)]))
		offsets[v+1] = offsets[v] + deg
	}
	adj := make([]int32, offsets[n])
	for v := int32(0); int(v) < n; v++ {
		out := adj[offsets[v]:offsets[v]:offsets[v+1]]
		var old []int32
		if int(v) < base {
			old = d.g.Neighbors(v)
		}
		add, del := adds[v], dels[v]
		i, j := 0, 0 // cursors into old and add
		for i < len(old) || j < len(add) {
			// dels is a subset of old, consumed in step with old.
			if i < len(old) && len(del) > 0 && old[i] == del[0] {
				i++
				del = del[1:]
				continue
			}
			if j >= len(add) || (i < len(old) && old[i] < add[j]) {
				out = append(out, old[i])
				i++
			} else {
				out = append(out, add[j])
				j++
			}
		}
		if int64(len(out)) != offsets[v+1]-offsets[v] {
			panic(fmt.Sprintf("graph: delta merge for node %d produced %d neighbors, want %d", v, len(out), offsets[v+1]-offsets[v]))
		}
	}
	return &Graph{offsets: offsets, adj: adj}
}
