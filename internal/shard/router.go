package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/spectral"
)

// Config tunes a Router. The zero value runs each shard's OCA with the
// paper's defaults (per-shard c derived from each shard graph's
// spectrum) and refresh.Config's debounce/backlog defaults.
type Config struct {
	// OCA configures every shard's cover runs. When OCA.C is 0 each
	// shard derives its own c = -1/λmin from its halo graph's spectrum —
	// the "active c" quoted per shard in /v1/cover/stats.
	OCA core.Options
	// DisableWarmStart forces cold per-shard OCA re-runs on refresh.
	DisableWarmStart bool
	// Debounce is each shard worker's mutation-coalescing window.
	Debounce time.Duration
	// MaxPending caps each shard worker's mutation backlog.
	MaxPending int
	// MaxNodes caps global node-set growth via mutations; 0 fixes the
	// node set at the initial graph's size. Shard workers always accept
	// local growth up to this bound, because even a fixed global node
	// set grows shards locally when new ghosts materialize.
	MaxNodes int
	// RederiveCAfter is each shard worker's c-drift threshold (see
	// refresh.Config.RederiveCAfter); shards re-derive independently, so
	// a churn-heavy shard refreshes its c while quiet shards keep
	// theirs.
	RederiveCAfter float64
	// IncrementalThreshold enables each shard worker's dirty-region
	// rebuild engine (see refresh.Config.IncrementalThreshold). The
	// fraction is judged against each shard's own cover, so a batch
	// concentrated on one shard rebuilds that shard incrementally while
	// untouched shards don't rebuild at all.
	IncrementalThreshold float64
	// OnSwap, when set, is called from a shard's worker goroutine after
	// that shard publishes a new generation.
	OnSwap func(shard int, snap *refresh.Snapshot)

	// workerOCA, when set, overrides the OCA options handed to one
	// shard's refresh worker (not its initial build). Test-only
	// failure-injection hook; unexported on purpose.
	workerOCA func(shard int, opt core.Options) core.Options
}

// Router owns K partitioned shards, each serving its slice of the
// graph through its own live refresh.Worker, and fans queries and
// mutations out to the owning shards. All methods are safe for
// concurrent use; reads are lock-free per shard (one atomic snapshot
// load), mutations serialize on the router so the global→local
// translation tables grow consistently.
type Router struct {
	part   Partition
	cfg    Config
	maxN   int // global node-set ceiling
	shards []*shardState

	mu     sync.Mutex // serializes Enqueue; guards curN and closed
	curN   int        // global node ids in [0, curN) are valid (incl. pending growth)
	closed bool
}

// shardState is one shard's mutable identity state: the append-only
// global↔local mapping plus its refresh worker. locals/index grow only
// under mu (while the router's Enqueue lock is held); readers take the
// read lock briefly to resolve ids, and published snapshots carry a
// stable prefix of locals in their Meta.
type shardState struct {
	id int
	k  int

	mu     sync.RWMutex
	locals []int32
	index  map[int32]int32

	worker *refresh.Worker
}

func (st *shardState) lookup(global int32) (int32, bool) {
	st.mu.RLock()
	l, ok := st.index[global]
	st.mu.RUnlock()
	return l, ok
}

// ensureLocal returns the local id for a global node, appending a new
// mapping entry when unseen. Caller must hold the router's Enqueue
// lock (mapping growth is serialized); the shard lock still guards
// against concurrent readers.
func (st *shardState) ensureLocal(global int32) int32 {
	if l, ok := st.lookup(global); ok {
		return l
	}
	st.mu.Lock()
	l := int32(len(st.locals))
	st.locals = append(st.locals, global)
	st.index[global] = l
	st.mu.Unlock()
	return l
}

// localsPrefix returns the stable local→global table for a graph of n
// nodes. The mapping is append-only, so the prefix never changes after
// capture.
func (st *shardState) localsPrefix(n int) []int32 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.locals[:n:n]
}

// buildSnapshot is the refresh.Config.BuildSnapshot hook: it drops
// ghost-only communities and attaches the shard Meta for this
// generation's node set.
func (st *shardState) buildSnapshot(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, buildTime time.Duration) *refresh.Snapshot {
	locals := st.localsPrefix(g.N())
	snap := refresh.NewSnapshot(g, filterOwned(cv, locals, st.k, st.id), res, c, buildTime)
	snap.Aux = buildMeta(st.id, st.k, g, snap.Index, locals)
	return snap
}

// NewRouter splits g into k shards, runs the initial per-shard OCA
// covers (in parallel), and starts one refresh worker per shard. A
// shard with no edges gets an empty cover and no c until mutations give
// it edges.
func NewRouter(g *graph.Graph, k int, cfg Config) (*Router, error) {
	pieces, err := Split(g, k)
	if err != nil {
		return nil, err
	}
	part, _ := NewPartition(k)
	r := &Router{
		part:   part,
		cfg:    cfg,
		curN:   g.N(),
		maxN:   cfg.MaxNodes,
		shards: make([]*shardState, k),
	}
	if r.maxN < g.N() {
		r.maxN = g.N() // growth disabled
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for s := range pieces {
		st := &shardState{id: s, k: k, locals: pieces[s].Locals}
		st.index = make(map[int32]int32, len(st.locals))
		for l, gv := range st.locals {
			st.index[gv] = int32(l)
		}
		r.shards[s] = st
		wg.Add(1)
		go func(s int, pg *graph.Graph) {
			defer wg.Done()
			errs[s] = r.initShard(s, pg)
		}(s, pieces[s].Graph)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return r, nil
}

// initShard computes shard s's first generation and starts its worker.
func (r *Router) initShard(s int, pg *graph.Graph) error {
	st := r.shards[s]
	start := time.Now()
	var (
		cv  *cover.Cover
		res *core.Result
		c   = r.cfg.OCA.C
	)
	if pg.M() == 0 {
		// No edges: nothing to search, and the spectrum (hence c) is
		// undefined. Serve an empty cover; mutations can populate it.
		cv = cover.NewCover(nil)
		c = 0
	} else {
		if c == 0 {
			var err error
			if c, err = spectral.C(pg, r.cfg.OCA.Spectral); err != nil {
				return fmt.Errorf("deriving c: %w", err)
			}
		}
		opt := r.cfg.OCA
		opt.C = c
		var err error
		if res, err = core.Run(pg, opt); err != nil {
			return fmt.Errorf("initial OCA: %w", err)
		}
		cv = res.Cover
	}
	snap := st.buildSnapshot(pg, cv, res, c, time.Since(start))

	wopt := r.cfg.OCA
	wopt.C = c // pin the shard's derived c; RederiveCAfter handles drift
	if r.cfg.workerOCA != nil {
		wopt = r.cfg.workerOCA(s, wopt)
	}
	wcfg := refresh.Config{
		OCA:              wopt,
		DisableWarmStart: r.cfg.DisableWarmStart,
		Debounce:         r.cfg.Debounce,
		MaxPending:       r.cfg.MaxPending,
		// Local growth must always be possible even under a fixed global
		// node set: a cross-shard edge can materialize a new ghost here.
		// A shard's locals never exceed the global node count.
		MaxNodes:             r.maxN,
		RederiveCAfter:       r.cfg.RederiveCAfter,
		IncrementalThreshold: r.cfg.IncrementalThreshold,
		BuildSnapshot:        st.buildSnapshot,
	}
	if r.cfg.OnSwap != nil {
		wcfg.OnSwap = func(snap *refresh.Snapshot) { r.cfg.OnSwap(s, snap) }
	}
	st.worker = refresh.New(snap, wcfg)
	st.worker.Start()
	return nil
}

// NumShards returns K.
func (r *Router) NumShards() int { return r.part.K() }

// Ready always reports true: the router builds every shard's first
// generation at construction.
func (r *Router) Ready() bool { return true }

// Views returns one View per shard, each loaded atomically from its
// worker. Use one call's result for a whole request: per shard the view
// is one immutable generation, and the vector of generations is the
// response's consistency token.
func (r *Router) Views() ([]View, error) {
	views := make([]View, len(r.shards))
	for s, st := range r.shards {
		views[s] = View{Shard: s, Snap: st.worker.Snapshot(), lookup: st.lookup}
	}
	return views, nil
}

// ViewFor returns the owning shard's view for a global node id, with
// the node's local id in that view. ok is false when the id is negative
// or not materialized in the shard's published generation (never seen,
// or growth still pending) — the view is still returned for shard and
// generation context when the id maps to a valid shard.
func (r *Router) ViewFor(global int32) (View, int32, bool, error) {
	if global < 0 {
		return View{}, 0, false, nil
	}
	s := r.part.Shard(global)
	st := r.shards[s]
	view := View{Shard: s, Snap: st.worker.Snapshot(), lookup: st.lookup}
	local, ok := view.Local(global)
	return view, local, ok, nil
}

// NodeBound is the exclusive upper bound on valid global node ids,
// including accepted-but-pending growth.
func (r *Router) NodeBound() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curN
}

// genVector snapshots every shard's current generation.
func (r *Router) genVector() GenVector {
	gv := make(GenVector, len(r.shards))
	for s, st := range r.shards {
		gv[s] = ShardGen{Shard: s, Gen: st.worker.Snapshot().Gen}
	}
	return gv
}

// Enqueue validates a batch of global edge mutations, translates each
// edge to the owning shards' local id spaces (materializing new ghost
// mappings as needed) and queues the per-shard operations. The batch
// is atomic across shards: one invalid edge — or one full shard
// backlog — rejects the whole batch with nothing queued and no mapping
// state touched anywhere. The returned vector holds each shard's
// generation at enqueue time, queued counts the accepted global
// operations, and touched lists the shards that received work (the
// ones a waiting client needs to flush).
func (r *Router) Enqueue(add, remove [][2]int32) (vec GenVector, queued int, touched []int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.genVector(), 0, nil, refresh.ErrClosed
	}
	// Shared with refresh.Worker.Enqueue so router and workers accept
	// exactly the same batches — a batch that passes here cannot fail
	// per-shard validation later.
	batchN, err := refresh.ValidateBatch(add, remove, r.curN, r.maxN)
	if err != nil {
		return r.genVector(), 0, nil, err
	}

	// Resolve removals first — pure lookups, no mapping growth — and
	// count per-shard add operations, so the backlog admission check
	// below runs before any state is touched.
	type shardOps struct{ add, remove [][2]int32 }
	ops := make([]shardOps, len(r.shards))
	counts := make([]int, len(r.shards))
	for _, e := range remove {
		for _, s := range [2]int{r.part.Shard(e[0]), r.part.Shard(e[1])} {
			lu, ok1 := r.shards[s].lookup(e[0])
			lv, ok2 := r.shards[s].lookup(e[1])
			if ok1 && ok2 {
				ops[s].remove = append(ops[s].remove, [2]int32{lu, lv})
				counts[s]++
			} // else: endpoint never materialized here, removal is a no-op
			if r.part.Shard(e[1]) == s {
				break // same-shard edge: don't queue it twice
			}
		}
	}
	for _, e := range add {
		su, sv := r.part.Shard(e[0]), r.part.Shard(e[1])
		counts[su]++
		if sv != su {
			counts[sv]++
		}
	}

	// Admission check before queuing or materializing anything:
	// mutation intake serializes on r.mu and rebuilds only shrink
	// backlogs, so a batch that passes here cannot fail admission — the
	// whole batch lands on every owning shard or on none (and no ghost
	// mapping outlives a rejected batch), so a 503 really does mean
	// "nothing happened, retry the batch".
	maxPending := r.cfg.MaxPending
	if maxPending <= 0 {
		maxPending = 1 << 20 // refresh.Config's default
	}
	for s, n := range counts {
		if n > 0 && r.shards[s].worker.Status().Pending+n > maxPending {
			return r.genVector(), 0, nil, fmt.Errorf("shard %d: %w", s, refresh.ErrBacklogFull)
		}
	}

	for _, e := range add {
		su, sv := r.part.Shard(e[0]), r.part.Shard(e[1])
		// Both endpoint shards record the edge; the non-owned endpoint
		// materializes as a ghost. Shards merely ghosting both endpoints
		// are not updated — their halos are refreshed only by their own
		// rebuilds, which is an accepted approximation (ghost
		// neighborhoods steer OCA quality, never ownership).
		lu, lv := r.shards[su].ensureLocal(e[0]), r.shards[su].ensureLocal(e[1])
		ops[su].add = append(ops[su].add, [2]int32{lu, lv})
		if sv != su {
			lu, lv = r.shards[sv].ensureLocal(e[0]), r.shards[sv].ensureLocal(e[1])
			ops[sv].add = append(ops[sv].add, [2]int32{lu, lv})
		}
	}
	for s := range ops {
		if len(ops[s].add)+len(ops[s].remove) == 0 {
			continue
		}
		if _, _, err := r.shards[s].worker.Enqueue(ops[s].add, ops[s].remove); err != nil {
			return r.genVector(), 0, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		touched = append(touched, s)
	}
	r.curN = batchN
	return r.genVector(), len(add) + len(remove), touched, nil
}

// ShardOf returns the shard owning a (non-negative) global node id.
func (r *Router) ShardOf(global int32) int { return r.part.Shard(global) }

// Flush blocks until the listed shards (every shard when nil) have
// reflected their previously enqueued mutations, then returns the full
// generation vector. Waiting clients pass the touched set from their
// Enqueue so an unrelated shard's deep backlog doesn't stall them.
func (r *Router) Flush(ctx context.Context, shards []int) (GenVector, error) {
	if shards == nil {
		shards = make([]int, len(r.shards))
		for s := range shards {
			shards[s] = s
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, s := range shards {
		wg.Add(1)
		go func(i int, w *refresh.Worker) {
			defer wg.Done()
			_, errs[i] = w.Flush(ctx)
		}(i, r.shards[s].worker)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return r.genVector(), fmt.Errorf("shard %d: %w", shards[i], err)
		}
	}
	return r.genVector(), nil
}

// Statuses returns every shard's point-in-time worker status with its
// active c. It never blocks on rebuilds.
func (r *Router) Statuses() []WorkerStatus {
	out := make([]WorkerStatus, len(r.shards))
	for s, st := range r.shards {
		out[s] = WorkerStatus{
			Shard:  s,
			C:      st.worker.Snapshot().C,
			Status: st.worker.Status(),
		}
	}
	return out
}

// Close stops every shard's refresh worker. Reads keep serving the last
// published generations; mutations fail afterwards. Safe to call
// multiple times, including on a partially constructed router.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	for _, st := range r.shards {
		if st != nil && st.worker != nil {
			st.worker.Close()
		}
	}
}
