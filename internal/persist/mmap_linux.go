//go:build linux

package persist

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. A nil, nil return (empty
// file) makes the caller fall back to the heap-read path.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(m []byte) error { return syscall.Munmap(m) }
