package server

// SnapshotProvider is the seam between the HTTP handlers and where the
// served state lives. Every handler resolves its snapshot(s) through
// this interface, so the same handler code serves both topologies:
//
//   - the single-graph path (singleProvider): one refresh.Worker, one
//     snapshot per request, identity id translation — exactly PR 2's
//     behavior, byte-for-byte, including lazy cover builds;
//   - the sharded path (shard.Router): K partitioned workers, one view
//     per shard per request, global↔local id translation, and a
//     (shard, generation) vector quoted in responses.
//
// A later multi-process deployment slots in as a third implementation
// whose Views/Enqueue go over the wire; the handlers don't change.

import (
	"context"

	"repro/internal/shard"
)

// SnapshotProvider abstracts the source of served snapshots. All
// methods are safe for concurrent use.
type SnapshotProvider interface {
	// NumShards returns the partition width (1 on the single path).
	NumShards() int
	// Ready reports whether a first generation exists without forcing a
	// lazy build (observability endpoints must never block on OCA).
	Ready() bool
	// Views returns one immutable view per shard, building the first
	// generation if necessary. Handlers must answer a whole request
	// from one call's result.
	Views() ([]shard.View, error)
	// ViewFor resolves a global node id to its owning shard's view and
	// local id. ok is false for ids not materialized in the published
	// generation; err reports a failed (lazy) cover build.
	ViewFor(global int32) (view shard.View, local int32, ok bool, err error)
	// ShardOf returns the shard owning a non-negative global node id —
	// the index into Views() a batch handler fans that id out to. The
	// topology (modulo-K today, rebalanced ranges tomorrow) stays the
	// provider's business.
	ShardOf(global int32) int
	// NodeBound is the exclusive upper bound on currently valid global
	// node ids, for error messages. It never forces a lazy build.
	NodeBound() int
	// Enqueue validates and queues a batch of global edge mutations,
	// returning each shard's generation at enqueue time, the number of
	// accepted operations, and the shards that received work (what a
	// waiting client passes to Flush). ctx bounds the remote fan-out on
	// multi-process providers; in-process queues never block on it.
	Enqueue(ctx context.Context, add, remove [][2]int32) (vec shard.GenVector, queued int, touched []int, err error)
	// Flush blocks until the listed shards (all when nil) have
	// reflected their previously enqueued mutations, returning the full
	// generation vector — waiting on only the touched shards keeps one
	// client's wait=true independent of another shard's deep backlog.
	Flush(ctx context.Context, shards []int) (shard.GenVector, error)
	// Statuses returns every shard's worker status without blocking.
	// Nil until Ready.
	Statuses() []shard.WorkerStatus
	// Close stops background rebuild workers; reads keep serving.
	Close()
}

// singleProvider adapts the Server's original single-worker machinery
// (lazy cover build, preloaded covers, spectral c derivation) to the
// SnapshotProvider seam with zero behavior change.
type singleProvider struct {
	s *Server
}

func (p singleProvider) NumShards() int { return 1 }

func (p singleProvider) Ready() bool { return p.s.coverReady.Load() }

func (p singleProvider) Views() ([]shard.View, error) {
	snap, err := p.s.snapshot()
	if err != nil {
		return nil, err
	}
	return []shard.View{shard.SingleView(snap)}, nil
}

func (p singleProvider) ViewFor(global int32) (shard.View, int32, bool, error) {
	if global < 0 {
		return shard.View{}, 0, false, nil
	}
	if int(global) >= p.s.g.N() {
		// Beyond the construction-time node set. Growth can only have
		// happened through Enqueue (which builds the first cover), so an
		// unready cover — or an id past the growth cap — means a cheap
		// 404 without forcing a lazy OCA run.
		if int(global) >= p.s.cfg.MaxNodes || !p.s.coverReady.Load() {
			return shard.View{}, 0, false, nil
		}
	}
	snap, err := p.s.snapshot()
	if err != nil {
		return shard.View{}, 0, false, err
	}
	view := shard.SingleView(snap)
	local, ok := view.Local(global)
	return view, local, ok, nil
}

func (p singleProvider) ShardOf(int32) int { return 0 }

func (p singleProvider) NodeBound() int {
	if p.s.coverReady.Load() {
		return p.s.worker.Snapshot().Graph.N()
	}
	return p.s.g.N()
}

// coverBuildError marks a failed (lazy) cover build inside Enqueue so
// handleEdges can answer 500 instead of treating it as a 400 validation
// failure.
type coverBuildError struct{ err error }

func (e coverBuildError) Error() string { return e.err.Error() }
func (e coverBuildError) Unwrap() error { return e.err }

func (p singleProvider) Enqueue(_ context.Context, add, remove [][2]int32) (shard.GenVector, int, []int, error) {
	// Mutating a lazy server materializes the first cover: there must
	// be a generation 1 for the rebuild to start from.
	if err := p.s.ensureCover(); err != nil {
		return nil, 0, nil, coverBuildError{err}
	}
	gen, queued, err := p.s.worker.Enqueue(add, remove)
	return shard.GenVector{{Shard: 0, Gen: gen}}, queued, []int{0}, err
}

func (p singleProvider) Flush(ctx context.Context, _ []int) (shard.GenVector, error) {
	snap, err := p.s.worker.Flush(ctx)
	if err != nil {
		return nil, err
	}
	return shard.GenVector{{Shard: 0, Gen: snap.Gen}}, nil
}

func (p singleProvider) Statuses() []shard.WorkerStatus {
	if !p.s.coverReady.Load() {
		return nil
	}
	return []shard.WorkerStatus{{
		Shard:  0,
		C:      p.s.worker.Snapshot().C,
		Status: p.s.worker.Status(),
	}}
}

func (p singleProvider) Close() {} // Server.Close owns worker shutdown
