package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testBatch(seq uint64) EdgeBatch {
	return EdgeBatch{
		Seq:       seq,
		Base:      7,
		NewLocals: []int32{100, 205},
		Add:       [][2]int32{{0, 1}, {2, 3}},
		Remove:    [][2]int32{{4, 5}},
	}
}

func writeLog(t *testing.T, recs ...func(*Log) error) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-0000000000000001.ocawal")
	l, err := Create(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range recs {
		if err := fn(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestLogRoundTrip(t *testing.T) {
	b1, b2 := testBatch(3), EdgeBatch{Seq: 9, Add: [][2]int32{{8, 9}}}
	pub := Publish{Gen: 4, Seq: 9}
	path, raw := writeLog(t,
		func(l *Log) error { return l.AppendEdgeBatch(b1) },
		func(l *Log) error { return l.AppendPublish(pub) },
		func(l *Log) error { return l.AppendEdgeBatch(b2) },
	)

	hdr, recs, valid, err := ReadLogFile(path)
	if err != nil {
		t.Fatalf("ReadLogFile: %v", err)
	}
	if hdr.Version != VersionLog || hdr.BaseGen != 1 {
		t.Errorf("header = %+v, want version %d baseGen 1", hdr, VersionLog)
	}
	if valid != int64(len(raw)) {
		t.Errorf("valid = %d, want whole file %d", valid, len(raw))
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	got1, err := DecodeEdgeBatch(recs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, b1) {
		t.Errorf("batch 1 = %+v, want %+v", got1, b1)
	}
	gotPub, err := DecodePublish(recs[1].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotPub != pub {
		t.Errorf("publish = %+v, want %+v", gotPub, pub)
	}
	got2, err := DecodeEdgeBatch(recs[2].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, b2) {
		t.Errorf("batch 2 = %+v, want %+v", got2, b2)
	}
}

// TestTornTail proves the crash-mid-write semantics: any truncation of
// the file strictly inside a record yields ErrTorn with the intact
// prefix preserved, and truncation at a record boundary reads cleanly.
func TestTornTail(t *testing.T) {
	path, raw := writeLog(t,
		func(l *Log) error { return l.AppendEdgeBatch(testBatch(3)) },
		func(l *Log) error { return l.AppendEdgeBatch(testBatch(6)) },
	)
	_, recs, _, err := ReadLogFile(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("full read: %d recs, err %v", len(recs), err)
	}
	// The first record ends where the second frame starts; compute it
	// from the full read by re-reading a prefix-truncated buffer.
	rec1End := headerSize + frameHead + len(recs[0].Payload)

	for cut := rec1End + 1; cut < len(raw); cut++ {
		_, got, valid, err := ReadLog(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: err = %v, want ErrTorn", cut, err)
		}
		if len(got) != 1 || valid != int64(rec1End) {
			t.Fatalf("cut at %d: %d recs valid %d, want 1 recs valid %d", cut, len(got), valid, rec1End)
		}
	}
	// A boundary cut is a clean (not torn) end.
	_, got, valid, err := ReadLog(bytes.NewReader(raw[:rec1End]))
	if err != nil || len(got) != 1 || valid != int64(rec1End) {
		t.Fatalf("boundary cut: %d recs valid %d err %v", len(got), valid, err)
	}
}

func TestChecksumFlip(t *testing.T) {
	_, raw := writeLog(t, func(l *Log) error { return l.AppendEdgeBatch(testBatch(3)) })
	// Flip one payload bit: the record must be rejected as torn.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x01
	_, recs, valid, err := ReadLog(bytes.NewReader(flipped))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	if len(recs) != 0 || valid != headerSize {
		t.Errorf("got %d recs valid %d, want 0 recs valid %d", len(recs), valid, headerSize)
	}
}

func TestBadHeader(t *testing.T) {
	for name, raw := range map[string][]byte{
		"empty":       {},
		"short":       {'O', 'C', 'A', 'W', 1},
		"wrong magic": append([]byte("NOPE"), make([]byte, 12)...),
		"wrong version": func() []byte {
			b := append([]byte{}, MagicLog[:]...)
			return append(b, []byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}...)
		}(),
	} {
		if _, _, _, err := ReadLog(bytes.NewReader(raw)); err == nil || errors.Is(err, ErrTorn) {
			t.Errorf("%s: err = %v, want hard (non-torn) error", name, err)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	_, raw := writeLog(t)
	frame := make([]byte, frameHead)
	frame[0] = 0xFF
	frame[1] = 0xFF
	frame[2] = 0xFF
	frame[3] = 0x7F // declared payload ~2 GiB
	_, _, _, err := ReadLog(bytes.NewReader(append(raw, frame...)))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn for oversize declaration", err)
	}
}

func TestDecodeEdgeBatchRejectsLengthMismatch(t *testing.T) {
	b := testBatch(1).encode()
	if _, err := DecodeEdgeBatch(b[:len(b)-2]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeEdgeBatch(append(b, 0)); err == nil {
		t.Error("padded payload decoded without error")
	}
	if _, err := DecodeEdgeBatch(nil); err == nil {
		t.Error("empty payload decoded without error")
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ocawal")
	l, err := Create(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.AppendEdgeBatch(testBatch(1)); err == nil {
		t.Error("append after close succeeded")
	}
}
