package transport

import (
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/server"
)

// routesFromDoc extracts the fenced route list following the given
// marker comment in docs/PROTOCOL.md.
func routesFromDoc(t *testing.T, doc, marker string) []string {
	t.Helper()
	_, after, found := strings.Cut(doc, marker)
	if !found {
		t.Fatalf("docs/PROTOCOL.md: marker %q missing", marker)
	}
	_, after, found = strings.Cut(after, "```")
	if !found {
		t.Fatalf("docs/PROTOCOL.md: no fenced block after %q", marker)
	}
	block, _, found := strings.Cut(after, "```")
	if !found {
		t.Fatalf("docs/PROTOCOL.md: unterminated fenced block after %q", marker)
	}
	var routes []string
	for _, line := range strings.Split(block, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			routes = append(routes, line)
		}
	}
	return routes
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// TestProtocolDocSync is the documentation lint: the endpoint lists in
// docs/PROTOCOL.md must equal the route manifests the binaries
// register. Adding, renaming or removing an endpoint without updating
// the protocol document fails here.
func TestProtocolDocSync(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading docs/PROTOCOL.md: %v", err)
	}
	doc := string(raw)

	for _, tc := range []struct {
		marker string
		want   []string
	}{
		{"<!-- routes:shard -->", Routes},
		{"<!-- routes:replica -->", ReplicaRoutes},
		{"<!-- routes:public -->", server.Routes()},
	} {
		got := sortedCopy(routesFromDoc(t, doc, tc.marker))
		want := sortedCopy(tc.want)
		if len(got) != len(want) {
			t.Errorf("%s: doc lists %d routes, binaries register %d\n doc: %v\n reg: %v",
				tc.marker, len(got), len(want), got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: doc route %q != registered route %q", tc.marker, got[i], want[i])
			}
		}
	}
}

// TestManifestsMatchMuxes proves the manifests aren't themselves stale:
// every listed route is actually served by the corresponding mux
// (anything unregistered would answer 404/405).
func TestManifestsMatchMuxes(t *testing.T) {
	g := twoCliques(t)
	cl, _ := startCluster(t, g, 2, 0, testOCA())

	check := func(h http.Handler, routes []string) {
		t.Helper()
		for _, rt := range routes {
			method, path, ok := strings.Cut(rt, " ")
			if !ok {
				t.Fatalf("malformed manifest entry %q", rt)
			}
			path = strings.ReplaceAll(path, "{id}", "0")
			req := httptest.NewRequest(method, path, strings.NewReader("{}"))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusNotFound || rec.Code == http.StatusMethodNotAllowed {
				t.Errorf("manifest route %q answers %d — not registered on the mux", rt, rec.Code)
			}
		}
	}
	check(cl.shards[0].Handler(), Routes)

	rs, _, _ := startReplica(t, cl.addrs[0])
	check(rs.Handler(), ReplicaRoutes)

	srv, err := server.New(twoCliques(t), server.Config{OCA: testOCA()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	check(srv.Handler(), server.Routes())
}
