package shard

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/lfr"
	"repro/internal/refresh"
	"repro/internal/spectral"
)

// verifyDerivedState checks that a shard's published snapshot's derived
// state — inverted index, overlap stats, ownership metadata — is
// exactly what a from-scratch rebuild over the same (graph, cover)
// produces. Patched and rebuilt generations must be indistinguishable.
func verifyDerivedState(t *testing.T, w *Worker) {
	t.Helper()
	snap := w.Snapshot()
	g, cv := snap.Graph, snap.Cover
	wantIx := index.Build(cv, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		got, want := snap.Index.Communities(v), wantIx.Communities(v)
		if len(got) != len(want) {
			t.Fatalf("shard %d gen %d node %d: %d memberships, want %d", w.id, snap.Gen, v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d gen %d node %d: memberships %v, want %v", w.id, snap.Gen, v, got, want)
			}
		}
	}
	if want := cv.Stats(g.N()); snap.Stats != want {
		t.Fatalf("shard %d gen %d (%s): stats %+v, want %+v", w.id, snap.Gen, snap.RebuildMode, snap.Stats, want)
	}
	meta, ok := snap.Aux.(*Meta)
	if !ok {
		t.Fatalf("shard %d gen %d: snapshot has no Meta", w.id, snap.Gen)
	}
	if len(meta.Locals) != g.N() {
		t.Fatalf("shard %d gen %d: Locals has %d entries for %d nodes", w.id, snap.Gen, len(meta.Locals), g.N())
	}
	want := buildMeta(w.id, w.PartitionMap(), g, wantIx, meta.Locals)
	if meta.OwnedNodes != want.OwnedNodes || meta.OwnedEdges != want.OwnedEdges ||
		meta.CoveredOwned != want.CoveredOwned || meta.OverlapOwned != want.OverlapOwned ||
		meta.OwnedMemberships != want.OwnedMemberships || meta.MaxMembershipOwned != want.MaxMembershipOwned {
		t.Fatalf("shard %d gen %d (%s): meta %+v, want %+v", w.id, snap.Gen, snap.RebuildMode, *meta, *want)
	}
}

// TestShardPatchEquivalence drives a K=3 router with the incremental
// engine enabled through a churn sequence (edge adds, removals, node
// growth) and proves after every generation that the patched per-shard
// index/stats/Meta equal a from-scratch rebuild — the ghost-filtering
// path no longer forces full per-shard index rebuilds, and the patch
// must be invisible to readers.
func TestShardPatchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OCA-run equivalence test")
	}
	bench, err := lfr.Generate(lfr.Params{
		N: 120, AvgDeg: 10, MaxDeg: 20, Mu: 0.05,
		MinCom: 15, MaxCom: 30, Seed: 3,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}

	var (
		modeMu sync.Mutex
		modes  = map[string]int{}
	)
	const k = 3
	r, err := NewRouter(g, k, Config{
		OCA:                  core.Options{Seed: 5, C: c},
		Debounce:             time.Millisecond,
		MaxNodes:             g.N() + 16,
		IncrementalThreshold: 0.4,
		OnSwap: func(_ int, snap *refresh.Snapshot) {
			modeMu.Lock()
			modes[snap.RebuildMode]++
			modeMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(17))
	randomEdge := func(n int) [2]int32 {
		for {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				return [2]int32{u, v}
			}
		}
	}
	apply := func(add, remove [][2]int32) {
		t.Helper()
		_, _, touched, err := r.Enqueue(context.Background(), add, remove)
		if err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if _, err := r.Flush(ctx, touched); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	verifyAll := func() {
		t.Helper()
		for _, b := range r.backends {
			verifyDerivedState(t, b.(*Worker))
		}
	}

	n := g.N()
	var added [][2]int32
	for round := 0; round < 4; round++ {
		batch := [][2]int32{randomEdge(n), randomEdge(n)}
		added = append(added, batch...)
		apply(batch, nil)
		verifyAll()
	}
	// Remove what was added (some removals are no-ops when a pair was
	// added twice — the patch accounting must absorb that too).
	apply(nil, added)
	verifyAll()
	// Node growth: a cross-shard edge between two brand-new global ids
	// materializes owned nodes on two shards and ghosts besides.
	apply([][2]int32{{int32(n), int32(n + 1)}, {int32(n + 1), int32(n + 2)}}, nil)
	verifyAll()

	modeMu.Lock()
	defer modeMu.Unlock()
	if modes[refresh.ModeIncremental] == 0 {
		t.Fatalf("no shard rebuild took the incremental path (modes: %v) — the patch seam went unexercised", modes)
	}
}

// TestShardPatchFastpath: removing the uncovered fringe edge takes the
// fastpath on both owning shards — the carried community slices stay
// pointer-identical (no OCA, no filtering pass) while the ownership
// metadata still reflects the edge delta.
func TestShardPatchFastpath(t *testing.T) {
	b := graph.NewBuilder(14)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(12, 13)
	g := b.Build()

	r, err := NewRouter(g, 2, Config{
		OCA:                  core.Options{Seed: 3, C: 0.5},
		Debounce:             time.Millisecond,
		IncrementalThreshold: 0.5,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	before := make([]*refresh.Snapshot, 2)
	for s, b := range r.backends {
		before[s] = b.(*Worker).Snapshot()
	}

	_, _, touched, err := r.Enqueue(context.Background(), nil, [][2]int32{{12, 13}})
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := r.Flush(ctx, touched); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	for s, b := range r.backends {
		w := b.(*Worker)
		snap := w.Snapshot()
		if snap.Gen != before[s].Gen+1 {
			t.Fatalf("shard %d generation = %d, want %d", s, snap.Gen, before[s].Gen+1)
		}
		if snap.RebuildMode != refresh.ModeFastpath {
			t.Fatalf("shard %d rebuild mode = %q, want %q", s, snap.RebuildMode, refresh.ModeFastpath)
		}
		if snap.Cover != before[s].Cover {
			t.Fatalf("shard %d: fastpath rebuilt the cover, want the carried pointer", s)
		}
		verifyDerivedState(t, w)
	}
}
