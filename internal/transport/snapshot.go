package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/shard"
)

// encodeSnapshot writes one generation as the snapshot media type: the
// JSON header (one value, newline-terminated by the encoder), then the
// binary CSR graph. table must be the full translation table captured
// at or after the snapshot load (append-only, so any later capture is a
// superset of the generation's prefix).
func encodeSnapshot(w io.Writer, shardID, k int, snap *refresh.Snapshot, table []int32) error {
	meta, _ := snap.Aux.(*shard.Meta)
	if meta == nil {
		return fmt.Errorf("transport: snapshot generation %d has no shard metadata", snap.Gen)
	}
	hdr := SnapshotHeader{
		Protocol: Version,
		Shard:    shardID,
		Shards:   k,
		Info:     snap.Info(),
		Table:    table,
		Cover:    make([][]int32, snap.Cover.Len()),
		Meta: MetaWire{
			Epoch:              meta.Epoch,
			OwnedNodes:         meta.OwnedNodes,
			OwnedEdges:         meta.OwnedEdges,
			CoveredOwned:       meta.CoveredOwned,
			OverlapOwned:       meta.OverlapOwned,
			OwnedMemberships:   meta.OwnedMemberships,
			MaxMembershipOwned: meta.MaxMembershipOwned,
		},
	}
	for i, c := range snap.Cover.Communities {
		hdr.Cover[i] = c
	}
	if err := json.NewEncoder(w).Encode(hdr); err != nil {
		return err
	}
	return graph.WriteBinary(w, snap.Graph)
}

// decodeSnapshot parses a snapshot transfer and reassembles the
// generation: the graph is decoded from the binary tail, the inverted
// index and overlap stats are rebuilt deterministically from the cover
// (identical to the sender's, which derived them from the same cover),
// and the scalar facts and ownership metadata are restored from the
// header. It validates the header against the expected shard identity
// and that every cover member is a valid local node.
func decodeSnapshot(r io.Reader, wantShard, wantK int) (*refresh.Snapshot, []int32, error) {
	dec := json.NewDecoder(r)
	var hdr SnapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, nil, fmt.Errorf("transport: decoding snapshot header: %w", err)
	}
	if hdr.Protocol != Version {
		return nil, nil, fmt.Errorf("transport: snapshot protocol %d, want %d", hdr.Protocol, Version)
	}
	if hdr.Shard != wantShard || hdr.Shards != wantK {
		return nil, nil, fmt.Errorf("transport: snapshot identifies as shard %d/%d, want %d/%d",
			hdr.Shard, hdr.Shards, wantShard, wantK)
	}
	// The JSON decoder buffers past the value it parsed; the binary
	// graph starts in that buffer (after the encoder's newline) and
	// continues on the stream.
	rest := bufio.NewReader(io.MultiReader(dec.Buffered(), r))
	if b, err := rest.ReadByte(); err == nil && b != '\n' {
		_ = rest.UnreadByte()
	}
	g, err := graph.ReadBinary(rest)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: decoding snapshot graph: %w", err)
	}
	if g.N() != hdr.Info.Nodes || g.M() != hdr.Info.Edges {
		return nil, nil, fmt.Errorf("transport: snapshot graph is %d nodes/%d edges, header says %d/%d",
			g.N(), g.M(), hdr.Info.Nodes, hdr.Info.Edges)
	}
	if len(hdr.Table) < g.N() {
		return nil, nil, fmt.Errorf("transport: snapshot table has %d entries for %d nodes", len(hdr.Table), g.N())
	}
	comms := make([]cover.Community, len(hdr.Cover))
	for i, ms := range hdr.Cover {
		for _, v := range ms {
			if v < 0 || int(v) >= g.N() {
				return nil, nil, fmt.Errorf("transport: snapshot community %d member %d outside graph range [0, %d)", i, v, g.N())
			}
		}
		comms[i] = cover.Community(ms)
	}
	snap := refresh.NewSnapshot(g, cover.NewCover(comms), nil,
		hdr.Info.C, 0)
	snap.Restore(hdr.Info)
	snap.Aux = &shard.Meta{
		Shard:              hdr.Shard,
		K:                  hdr.Shards,
		Epoch:              hdr.Meta.Epoch,
		Locals:             hdr.Table[:g.N():g.N()],
		OwnedNodes:         hdr.Meta.OwnedNodes,
		OwnedEdges:         hdr.Meta.OwnedEdges,
		CoveredOwned:       hdr.Meta.CoveredOwned,
		OverlapOwned:       hdr.Meta.OverlapOwned,
		OwnedMemberships:   hdr.Meta.OwnedMemberships,
		MaxMembershipOwned: hdr.Meta.MaxMembershipOwned,
	}
	return snap, hdr.Table, nil
}
