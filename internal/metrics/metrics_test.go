package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
)

func com(vs ...int32) cover.Community { return cover.NewCommunity(vs) }

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestRhoKnownValues(t *testing.T) {
	approx(t, "identical", Rho(com(1, 2, 3), com(1, 2, 3)), 1)
	approx(t, "disjoint", Rho(com(1, 2), com(3, 4)), 0)
	approx(t, "half", Rho(com(1, 2, 3), com(2, 3, 4)), 0.5)
	approx(t, "subset", Rho(com(1, 2, 3, 4), com(1, 2)), 0.5)
	approx(t, "both empty", Rho(com(), com()), 1)
	approx(t, "one empty", Rho(com(1), com()), 0)
}

// TestRhoEmptyAndNil: ρ must be total — no division by zero, no NaN —
// for every combination of nil, empty and populated communities. The
// cache carry-forward spot check compares communities that may have
// shrunk to nothing mid-rebuild, so these edges are load-bearing.
func TestRhoEmptyAndNil(t *testing.T) {
	cases := []struct {
		name string
		c, d cover.Community
		want float64
	}{
		{"nil nil", nil, nil, 1},
		{"nil empty", nil, com(), 1},
		{"empty nil", com(), nil, 1},
		{"empty empty", com(), com(), 1},
		{"nil vs populated", nil, com(1, 2, 3), 0},
		{"populated vs nil", com(1, 2, 3), nil, 0},
		{"empty vs populated", com(), com(7), 0},
		{"populated vs empty", com(7), com(), 0},
		{"singleton equal", com(7), com(7), 1},
		{"singleton disjoint", com(7), com(8), 0},
	}
	for _, tc := range cases {
		got := Rho(tc.c, tc.d)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: Rho = %v, want a finite value", tc.name, got)
		}
		approx(t, tc.name, got, tc.want)
	}
}

// TestRhoMatchesPaperFormula verifies ρ = 1 − (|C\D|+|D\C|)/|C∪D|
// literally against set arithmetic on random sets.
func TestRhoMatchesPaperFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() (cover.Community, map[int32]bool) {
			m := map[int32]bool{}
			var vals []int32
			for i := 0; i < rng.Intn(30); i++ {
				v := int32(rng.Intn(40))
				m[v] = true
				vals = append(vals, v)
			}
			return cover.NewCommunity(vals), m
		}
		c, cm := mk()
		d, dm := mk()
		onlyC, onlyD, union := 0, 0, 0
		for v := range cm {
			union++
			if !dm[v] {
				onlyC++
			}
		}
		for v := range dm {
			if !cm[v] {
				onlyD++
				union++
			}
		}
		var want float64
		if union == 0 {
			want = 1
		} else {
			want = 1 - float64(onlyC+onlyD)/float64(union)
		}
		return math.Abs(Rho(c, d)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRhoProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() cover.Community {
			var vals []int32
			for i := 0; i < rng.Intn(25); i++ {
				vals = append(vals, int32(rng.Intn(40)))
			}
			return cover.NewCommunity(vals)
		}
		c, d := mk(), mk()
		r := Rho(c, d)
		// Symmetric, bounded, identity.
		return r >= 0 && r <= 1 &&
			math.Abs(r-Rho(d, c)) < 1e-15 &&
			Rho(c, c) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaPerfectMatch(t *testing.T) {
	ref := cover.NewCover([]cover.Community{com(0, 1, 2), com(3, 4, 5)})
	obs := cover.NewCover([]cover.Community{com(3, 4, 5), com(0, 1, 2)})
	approx(t, "Θ exact", Theta(ref, obs), 1)
}

func TestThetaTotallyDifferent(t *testing.T) {
	ref := cover.NewCover([]cover.Community{com(0, 1), com(2, 3)})
	obs := cover.NewCover([]cover.Community{com(10, 11)})
	approx(t, "Θ disjoint", Theta(ref, obs), 0)
}

func TestThetaPartial(t *testing.T) {
	// One reference community found exactly, the other missed entirely:
	// Θ = (1 + 0)/2.
	ref := cover.NewCover([]cover.Community{com(0, 1, 2), com(5, 6, 7)})
	obs := cover.NewCover([]cover.Community{com(0, 1, 2)})
	approx(t, "Θ half", Theta(ref, obs), 0.5)
}

func TestThetaAveragesWithinVi(t *testing.T) {
	// Two observed communities both match ref community 0: one exactly
	// (ρ=1), one with ρ=0.5; V_0 average is 0.75 and ℓ=1.
	ref := cover.NewCover([]cover.Community{com(0, 1, 2)})
	obs := cover.NewCover([]cover.Community{com(0, 1, 2), com(1, 2, 9)})
	approx(t, "Θ V_i average", Theta(ref, obs), 0.75)
}

func TestThetaEdgeCases(t *testing.T) {
	empty := cover.NewCover(nil)
	some := cover.NewCover([]cover.Community{com(1, 2)})
	approx(t, "empty ref", Theta(empty, some), 0)
	approx(t, "empty obs", Theta(some, empty), 0)
}

func TestThetaBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkCover := func() *cover.Cover {
			k := 1 + rng.Intn(5)
			cs := make([]cover.Community, k)
			for i := range cs {
				var vals []int32
				for j := 0; j < 1+rng.Intn(10); j++ {
					vals = append(vals, int32(rng.Intn(30)))
				}
				cs[i] = cover.NewCommunity(vals)
			}
			return cover.NewCover(cs)
		}
		ref, obs := mkCover(), mkCover()
		th := Theta(ref, obs)
		if th < 0 || th > 1 {
			return false
		}
		// Self-comparison of a cover with distinct communities is 1 when
		// each community is its own best match; at minimum it is positive.
		return Theta(ref, ref) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestMatchF1(t *testing.T) {
	a := cover.NewCover([]cover.Community{com(0, 1, 2), com(3, 4)})
	approx(t, "identical F1", BestMatchF1(a, a.Clone()), 1)
	b := cover.NewCover([]cover.Community{com(10, 11)})
	approx(t, "disjoint F1", BestMatchF1(a, b), 0)
	if BestMatchF1(a, cover.NewCover(nil)) != 0 {
		t.Fatal("empty cover should score 0")
	}
	// Symmetry.
	c := cover.NewCover([]cover.Community{com(0, 1), com(2, 3, 4)})
	if math.Abs(BestMatchF1(a, c)-BestMatchF1(c, a)) > 1e-15 {
		t.Fatal("BestMatchF1 not symmetric")
	}
}

func TestOmegaIndex(t *testing.T) {
	a := cover.NewCover([]cover.Community{com(0, 1, 2), com(3, 4)})
	got := OmegaIndex(a, a.Clone(), 6)
	approx(t, "identical omega", got, 1)

	// Completely different pair structure scores below identical.
	b := cover.NewCover([]cover.Community{com(0, 3), com(1, 4)})
	if o := OmegaIndex(a, b, 6); o >= 0.99 {
		t.Fatalf("different covers omega=%g, want < 0.99", o)
	}
	if o := OmegaIndex(a, b, 6); math.Abs(o-OmegaIndex(b, a, 6)) > 1e-12 {
		t.Fatal("omega not symmetric")
	}
	if OmegaIndex(a, b, 1) != 1 {
		t.Fatal("n<2 should return 1")
	}
}

func TestOmegaOverlapSensitive(t *testing.T) {
	// Cover where nodes 1,2 share two communities vs a cover where they
	// share one: counts differ so the pair disagrees.
	a := cover.NewCover([]cover.Community{com(1, 2, 3), com(1, 2)})
	b := cover.NewCover([]cover.Community{com(1, 2, 3)})
	if o := OmegaIndex(a, b, 4); o >= 1 {
		t.Fatalf("omega=%g, want < 1 for different multiplicity", o)
	}
}

// TestThetaSelfIdentity: a cover with pairwise-distinct communities
// scores Θ = 1 against itself.
func TestThetaSelfIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		seen := map[string]bool{}
		var cs []cover.Community
		for len(cs) < k {
			var vals []int32
			for j := 0; j < 1+rng.Intn(12); j++ {
				vals = append(vals, int32(rng.Intn(40)))
			}
			c := cover.NewCommunity(vals)
			key := fmt.Sprint(c)
			if seen[key] {
				continue
			}
			seen[key] = true
			cs = append(cs, c)
		}
		cv := cover.NewCover(cs)
		return math.Abs(Theta(cv, cv)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNMIIdenticalCovers(t *testing.T) {
	cv := cover.NewCover([]cover.Community{{0, 1, 2, 3}, {3, 4, 5, 6}, {7, 8, 9}})
	if got := NMI(cv, cv, 10); got != 1 {
		t.Errorf("NMI(cv, cv) = %v, want 1", got)
	}
}

func TestNMISymmetricAndBounded(t *testing.T) {
	a := cover.NewCover([]cover.Community{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	b := cover.NewCover([]cover.Community{{0, 1, 2, 5, 6}, {3, 4, 7, 8, 9}})
	ab, ba := NMI(a, b, 10), NMI(b, a, 10)
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("NMI not symmetric: %v vs %v", ab, ba)
	}
	if ab < 0 || ab > 1 {
		t.Errorf("NMI = %v out of [0, 1]", ab)
	}
	// The crossed split shares half of each community: clearly below a
	// perfect match.
	if ab > 0.5 {
		t.Errorf("NMI of crossed split = %v, want well below 1", ab)
	}
}

func TestNMIOrdersByAgreement(t *testing.T) {
	truth := cover.NewCover([]cover.Community{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	near := cover.NewCover([]cover.Community{{0, 1, 2, 3}, {5, 6, 7, 8, 9}})
	far := cover.NewCover([]cover.Community{{0, 5, 1, 6}, {2, 7, 3, 8}})
	n, f := NMI(truth, near, 10), NMI(truth, far, 10)
	if n <= f {
		t.Errorf("NMI(near)=%v not above NMI(far)=%v", n, f)
	}
	if n < 0.7 {
		t.Errorf("NMI of near-identical covers = %v, unexpectedly low", n)
	}
}

func TestNMIEdgeCases(t *testing.T) {
	empty := cover.NewCover(nil)
	some := cover.NewCover([]cover.Community{{0, 1}})
	if got := NMI(empty, empty, 5); got != 1 {
		t.Errorf("NMI(empty, empty) = %v, want 1", got)
	}
	if got := NMI(empty, some, 5); got != 0 {
		t.Errorf("NMI(empty, some) = %v, want 0", got)
	}
	// All-node communities carry no information; two such covers match.
	all := cover.NewCover([]cover.Community{{0, 1, 2, 3, 4}})
	if got := NMI(all, all, 5); got != 1 {
		t.Errorf("NMI(all, all) = %v, want 1", got)
	}
}
