package core

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

// twoCliquesBridge builds two K_k cliques joined by a single edge.
// Nodes 0..k-1 form clique A, k..2k-1 form clique B, bridge {k-1, k}.
func twoCliquesBridge(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
			b.AddEdge(int32(k)+i, int32(k)+j)
		}
	}
	b.AddEdge(int32(k-1), int32(k))
	return b.Build()
}

// overlappingCliques builds two K_k cliques sharing `shared` nodes.
func overlappingCliques(k, shared int) *graph.Graph {
	n := 2*k - shared
	b := graph.NewBuilder(n)
	// Clique A: 0..k-1. Clique B: k-shared..n-1.
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(k - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestRunOnTwoCliques(t *testing.T) {
	g := twoCliquesBridge(6)
	res, err := Run(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.C <= 0 || res.C >= 1 {
		t.Fatalf("c=%v out of range", res.C)
	}
	want := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5}),
		cover.NewCommunity([]int32{6, 7, 8, 9, 10, 11}),
	})
	th := metrics.Theta(want, res.Cover)
	if th < 0.95 {
		t.Fatalf("Θ=%v, want ≥0.95; got cover %v", th, res.Cover.Communities)
	}
}

func TestRunFindsOverlap(t *testing.T) {
	g := overlappingCliques(8, 2)
	res, err := Run(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The two shared nodes (ids 6 and 7) must belong to two communities.
	idx := res.Cover.MembershipIndex(g.N())
	if len(idx[6]) < 2 || len(idx[7]) < 2 {
		t.Fatalf("shared nodes not overlapping: memberships %v / %v (cover %v)",
			idx[6], idx[7], res.Cover.Communities)
	}
	want := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5, 6, 7}),
		cover.NewCommunity([]int32{6, 7, 8, 9, 10, 11, 12, 13}),
	})
	if th := metrics.Theta(want, res.Cover); th < 0.9 {
		t.Fatalf("Θ=%v, want ≥0.9; cover %v", th, res.Cover.Communities)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := twoCliquesBridge(8)
	var covers []*cover.Cover
	for _, workers := range []int{1, 4} {
		res, err := Run(g, Options{Seed: 99, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		covers = append(covers, res.Cover)
	}
	if covers[0].Len() != covers[1].Len() {
		t.Fatalf("worker counts changed community count: %d vs %d",
			covers[0].Len(), covers[1].Len())
	}
	for i := range covers[0].Communities {
		if !covers[0].Communities[i].Equal(covers[1].Communities[i]) {
			t.Fatalf("community %d differs between 1 and 4 workers", i)
		}
	}
}

func TestRunEmptyAndEdgelessGraphs(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).Build(), Options{Seed: 1})
	if err != nil || res.Cover.Len() != 0 {
		t.Fatalf("empty graph: err=%v len=%d", err, res.Cover.Len())
	}
	// Edgeless: c = 0, all optima are singletons, dropped by MinCommunitySize.
	res, err = Run(graph.NewBuilder(10).Build(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 0 {
		t.Fatalf("edgeless graph produced %d communities", res.Cover.Len())
	}
}

func TestRunRejectsBadC(t *testing.T) {
	g := twoCliquesBridge(4)
	if _, err := Run(g, Options{Seed: 1, C: 1.5}); err == nil {
		t.Fatal("expected error for c >= 1")
	}
	if _, err := Run(g, Options{Seed: 1, C: -0.2}); err == nil {
		t.Fatal("expected error for negative c")
	}
}

func TestRunHaltingMaxSeeds(t *testing.T) {
	g := twoCliquesBridge(6)
	res, err := Run(g, Options{
		Seed:    3,
		Halting: Halting{MaxSeeds: 2, TargetCoverage: 1, Patience: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedsTried > 2 {
		t.Fatalf("tried %d seeds, budget was 2", res.SeedsTried)
	}
}

func TestRunMaxCommunitySize(t *testing.T) {
	g := overlappingCliques(10, 0) // two disjoint K10s
	res, err := Run(g, Options{Seed: 5, MaxCommunitySize: 4, DisableMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cover.Communities {
		if len(c) > 4 {
			t.Fatalf("community of size %d exceeds cap 4", len(c))
		}
	}
}

func TestFindCommunitySingleSeed(t *testing.T) {
	g := twoCliquesBridge(6)
	rng := xrand.New(11, 0)
	c := 0.7
	com, fit := FindCommunity(g, 0, c, rng, Options{})
	if len(com) == 0 {
		t.Fatal("empty community")
	}
	if fit <= 0 {
		t.Fatalf("fitness=%v", fit)
	}
	// Seed 0 lives in clique A (nodes 0..5); the local optimum from it
	// must contain the seed and stay within/near clique A.
	if !com.Contains(0) {
		t.Fatal("community lost its seed")
	}
	outside := 0
	for _, v := range com {
		if v >= 6 {
			outside++
		}
	}
	if outside > 1 {
		t.Fatalf("community leaked into the other clique: %v", com)
	}
}

// TestLocalOptimumIsStable: the set localSearch returns admits no
// improving single move, checked exhaustively.
func TestLocalOptimumIsStable(t *testing.T) {
	g := overlappingCliques(7, 2)
	c := 0.8
	for seedNode := int32(0); seedNode < int32(g.N()); seedNode++ {
		rng := xrand.New(21, int64(seedNode))
		com, _ := FindCommunity(g, seedNode, c, rng, Options{})
		member := map[int32]bool{}
		for _, v := range com {
			member[v] = true
		}
		s := len(com)
		m := g.EdgesWithin([]int32(com), func(v int32) bool { return member[v] })
		cur := L(s, m, c)
		// No addition improves.
		for v := int32(0); v < int32(g.N()); v++ {
			if member[v] {
				continue
			}
			var d int32
			for _, w := range g.Neighbors(v) {
				if member[w] {
					d++
				}
			}
			if d == 0 {
				continue // not on the frontier
			}
			if L(s+1, m+int64(d), c) > cur+1e-9 {
				t.Fatalf("seed %d: adding %d improves L", seedNode, v)
			}
		}
		// No removal improves (when s > 1).
		if s > 1 {
			for _, v := range com {
				var d int32
				for _, w := range g.Neighbors(v) {
					if member[w] {
						d++
					}
				}
				if L(s-1, m-int64(d), c) > cur+1e-9 {
					t.Fatalf("seed %d: removing %d improves L", seedNode, v)
				}
			}
		}
	}
}

func TestRunWithOrphanAssignment(t *testing.T) {
	// Two K6s plus a pendant node attached to clique A: the pendant is
	// never a community member on its own but orphan assignment adopts it.
	k := 6
	b := graph.NewBuilder(2*k + 1)
	for i := int32(0); i < int32(k); i++ {
		for j := i + 1; j < int32(k); j++ {
			b.AddEdge(i, j)
			b.AddEdge(int32(k)+i, int32(k)+j)
		}
	}
	pendant := int32(2 * k)
	b.AddEdge(0, pendant)
	g := b.Build()
	res, err := Run(g, Options{Seed: 8, AssignOrphans: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Cover.Communities {
		if c.Contains(pendant) {
			found = true
		}
	}
	if !found {
		t.Fatalf("pendant node not assigned: %v", res.Cover.Communities)
	}
}

func TestSeedStrategies(t *testing.T) {
	g := twoCliquesBridge(8)
	want := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5, 6, 7}),
		cover.NewCommunity([]int32{8, 9, 10, 11, 12, 13, 14, 15}),
	})
	for _, strat := range []SeedStrategy{SeedUncovered, SeedUniform, SeedHighDegree} {
		res, err := Run(g, Options{Seed: 13, Seeding: strat})
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if th := metrics.Theta(want, res.Cover); th < 0.9 {
			t.Fatalf("strategy %d: Θ=%v, cover=%v", strat, th, res.Cover.Communities)
		}
	}
}

func TestSeedHighDegreeProbesHubsFirst(t *testing.T) {
	// A star plus a triangle: the hub has the highest degree, so the
	// first high-degree seed must be the hub (node 0).
	b := graph.NewBuilder(10)
	for i := int32(1); i <= 6; i++ {
		b.AddEdge(0, i)
	}
	b.AddEdge(7, 8)
	b.AddEdge(8, 9)
	b.AddEdge(7, 9)
	g := b.Build()
	d := newSeedDriver(g, SeedHighDegree, xrand.New(1, 0), nil)
	seeds := d.drawSeeds(3)
	if seeds[0] != 0 {
		t.Fatalf("first high-degree seed %d, want hub 0", seeds[0])
	}
	// Seeds are consumed: the first n draws are distinct nodes.
	total := append(seeds, d.drawSeeds(7)...)
	distinct := map[int32]bool{}
	for _, s := range total {
		distinct[s] = true
	}
	if len(distinct) != 10 {
		t.Fatalf("first 10 high-degree seeds not distinct: %v", total)
	}
}

// TestRunDeterministicProperty: identical options always produce
// identical covers across random graphs.
func TestRunDeterministicProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := xrand.New(int64(trial), 0)
		n := 10 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		opt := Options{Seed: int64(trial * 7), Workers: 3}
		a, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cover.Len() != c.Cover.Len() {
			t.Fatalf("trial %d: nondeterministic community count", trial)
		}
		for i := range a.Cover.Communities {
			if !a.Cover.Communities[i].Equal(c.Cover.Communities[i]) {
				t.Fatalf("trial %d: community %d differs", trial, i)
			}
		}
		if a.C != c.C || a.SeedsTried != c.SeedsTried {
			t.Fatalf("trial %d: run stats differ", trial)
		}
	}
}

func TestRunWarmStart(t *testing.T) {
	g := twoCliquesBridge(6)
	warm := cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5}) // clique A, given
	res, err := Run(g, Options{Seed: 42, C: 0.5, Warm: []cover.Community{warm}})
	if err != nil {
		t.Fatal(err)
	}
	// The warm community survives into the result and clique B is still
	// discovered by the run itself.
	want := cover.NewCover([]cover.Community{
		warm,
		cover.NewCommunity([]int32{6, 7, 8, 9, 10, 11}),
	})
	if th := metrics.Theta(want, res.Cover); th < 0.95 {
		t.Fatalf("Θ=%v, want ≥0.95; got cover %v", th, res.Cover.Communities)
	}
	// The warm members count as covered: a fully warm graph stops
	// immediately without trying a single seed.
	full, err := Run(g, Options{Seed: 1, C: 0.5, Warm: []cover.Community{
		warm, cover.NewCommunity([]int32{6, 7, 8, 9, 10, 11}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if full.SeedsTried != 0 {
		t.Errorf("fully warm run tried %d seeds, want 0", full.SeedsTried)
	}
	if full.Cover.Len() != 2 {
		t.Errorf("fully warm run produced %d communities, want 2", full.Cover.Len())
	}
}

func TestRunWarmStartRejectsOutOfRange(t *testing.T) {
	g := twoCliquesBridge(3)
	_, err := Run(g, Options{C: 0.5, Warm: []cover.Community{{0, 99}}})
	if err == nil {
		t.Fatal("warm community with out-of-range member accepted")
	}
}
