package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/refresh"
	"repro/internal/resilience"
	"repro/internal/shard"
)

// Client is one remote shard's Backend: it replicates the shard's
// translation table (shipping growth with each mutation fan-out),
// mirrors the shard's published snapshots so reads stay local and
// lock-free, and maps transport failures to shard.ErrUnavailable so
// the serving layer degrades explicitly instead of hanging.
//
// Consistency model: reads serve the mirror, refreshed by a background
// generation poller — bounded staleness, like the in-process path's
// debounce. Flush records the returned generation as a floor; a View
// whose mirror is behind the floor resynchronizes synchronously (with
// a deadline) before answering, so a client that waited for its
// mutations reads its own writes through this router. A shard that
// cannot be reached within the request timeout yields views and
// statuses with an explicit error — partial results, never a hang.
type Client struct {
	base    string // http://host:port
	shardID int
	k       int

	hc      *http.Client
	reqTO   time.Duration
	snapTO  time.Duration
	pollIvl time.Duration

	tabMu   sync.RWMutex
	locals  []int32
	index   map[int32]int32
	shipped int // table entries the server has acknowledged

	// mirror is read lock-free; every writer load-modify-stores under
	// mirMu so a concurrent poller status refresh cannot clobber a
	// just-synced newer snapshot (generation vectors must never
	// regress).
	mirror   atomic.Pointer[mirrorState]
	mirMu    sync.Mutex
	minGen   atomic.Uint64 // read-your-writes floor set by Flush
	lastFail atomic.Int64  // unix nanos of the last failed contact

	syncMu sync.Mutex // singleflight for snapshot sync

	// draining mirrors the remote's advertised shutdown state (from the
	// last health probe) so a replica set stops routing reads to a
	// member that is about to go away.
	draining atomic.Bool

	// remoteMap mirrors the remote's advertised partition map (from the
	// last health probe): the epoch a router's boot validation compares,
	// and what a replica re-serves on GET /shard/v1/map.
	remoteMap atomic.Pointer[MapResponse]

	// breaker trips on consecutive transport-level failures so a dead
	// backend costs a fast-fail, not a timeout; the generation poller is
	// its half-open probe vehicle. retryer re-runs idempotent reads
	// (lookup, snapshot) under the shared budget — never apply, which
	// stays at-least-once via table reconciliation. deadlineExceeded
	// counts RPCs abandoned to a deadline or caller hang-up.
	breaker          *resilience.Breaker
	retryer          *resilience.Retryer
	budget           *resilience.Budget
	deadlineExceeded atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	done     chan struct{}
}

// mirrorState is the atomically swapped read state: the last decoded
// generation, the last health probe, and the degradation error (nil
// when the shard was reachable at last contact).
type mirrorState struct {
	snap   *refresh.Snapshot
	status shard.WorkerStatus
	err    error
}

// ClientConfig tunes one shard client. Zero values use the defaults
// noted per field.
type ClientConfig struct {
	// RequestTimeout bounds health, apply, and lookup RPCs (default
	// 5s); SnapshotTimeout bounds a full snapshot transfer (default
	// 60s). Flush is bounded by the caller's context instead.
	RequestTimeout  time.Duration
	SnapshotTimeout time.Duration
	// PollInterval is the generation poller's cadence (default 100ms).
	PollInterval time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.SnapshotTimeout <= 0 {
		c.SnapshotTimeout = 60 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	return c
}

// newClient performs no I/O; Dial handshakes and starts the poller.
func newClient(base string, shardID, k int, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	budget := resilience.NewBudget(0, 0) // package defaults
	return &Client{
		base:    base,
		shardID: shardID,
		k:       k,
		hc:      &http.Client{},
		reqTO:   cfg.RequestTimeout,
		snapTO:  cfg.SnapshotTimeout,
		pollIvl: cfg.PollInterval,
		index:   make(map[int32]int32),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		breaker: resilience.NewBreaker(resilience.BreakerConfig{}),
		retryer: resilience.NewRetryer(resilience.RetryConfig{}, budget),
		budget:  budget,
	}
}

// Addr returns the client's base URL.
func (c *Client) Addr() string { return c.base }

// Draining reports whether the remote advertised a shutdown in progress
// at its last successful health probe.
func (c *Client) Draining() bool { return c.draining.Load() }

// MirrorGen returns the mirrored snapshot's generation (0 before the
// first sync) without triggering any I/O.
func (c *Client) MirrorGen() uint64 {
	if m := c.mirror.Load(); m != nil && m.snap != nil {
		return m.snap.Gen
	}
	return 0
}

// tableLen returns the replicated translation-table length.
func (c *Client) tableLen() int {
	c.tabMu.RLock()
	defer c.tabMu.RUnlock()
	return len(c.locals)
}

// tableCopy returns a snapshot copy of the replicated translation
// table, safe to encode without holding the lock.
func (c *Client) tableCopy() []int32 {
	c.tabMu.RLock()
	defer c.tabMu.RUnlock()
	return append([]int32(nil), c.locals...)
}

// unavailable wraps a transport failure with the sentinel the serving
// layer maps to 503.
func (c *Client) unavailable(err error) error {
	return fmt.Errorf("shard %d (%s): %w: %v", c.shardID, c.base, shard.ErrUnavailable, err)
}

// errBreakerOpen marks a fast-fail: the RPC was refused locally because
// the backend's circuit breaker is open. Kept in the error chain (the
// retry classifier must see it: fast-fails never retry).
var errBreakerOpen = errors.New("circuit breaker open")

// unavailableCause is unavailable with the cause kept inspectable by
// errors.Is — used for local refusals the caller branches on.
func (c *Client) unavailableCause(err error) error {
	return fmt.Errorf("shard %d (%s): %w: %w", c.shardID, c.base, shard.ErrUnavailable, err)
}

// noteFailure classifies a transport-level failure for the breaker. A
// caller hang-up (context.Canceled) says nothing about the backend's
// health, so it only counts toward deadlineExceeded; a timeout counts
// both ways; everything else is pure backend failure evidence.
func (c *Client) noteFailure(err error) {
	if errors.Is(err, context.Canceled) {
		c.deadlineExceeded.Add(1)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		c.deadlineExceeded.Add(1)
	}
	c.breaker.Failure()
}

// retryable decides whether a failed idempotent read may re-run:
// transport-level unavailability retries, a breaker fast-fail never
// does (the breaker's verdict overrides the retry policy), and protocol
// errors (conflict, bad request, backlog) surface immediately.
func (c *Client) retryable(err error) bool {
	return errors.Is(err, shard.ErrUnavailable) && !errors.Is(err, errBreakerOpen)
}

// doJSON posts a JSON body and decodes a JSON response, translating
// protocol error codes to the sentinel errors the router and serving
// layer branch on.
func (c *Client) doJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	if !c.breaker.Allow() {
		return c.unavailableCause(errBreakerOpen)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderProtocol, strconv.Itoa(Version))
	stampDeadline(req, ctx)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.noteFailure(err)
		return c.unavailable(err)
	}
	c.breaker.Success()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er)
		switch er.Code {
		case CodeBacklogFull:
			return fmt.Errorf("shard %d: %w", c.shardID, refresh.ErrBacklogFull)
		case CodeClosed:
			return fmt.Errorf("shard %d: %w", c.shardID, refresh.ErrClosed)
		case CodeTableConflict:
			return fmt.Errorf("shard %d: %w: %s", c.shardID, shard.ErrTableConflict, er.Error)
		}
		return fmt.Errorf("shard %d: %s %s: http %d: %s", c.shardID, path, c.base, resp.StatusCode, er.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// health probes the remote generation and worker status. Deliberately
// not gated by the breaker: the poller's health probe IS the breaker's
// recovery signal (its outcome feeds Success/Failure), and gating it
// would leave an open breaker no way back.
func (c *Client) health(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return Health{}, err
	}
	req.Header.Set(HeaderProtocol, strconv.Itoa(Version))
	stampDeadline(req, ctx)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.noteFailure(err)
		return Health{}, c.unavailable(err)
	}
	c.breaker.Success()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, c.unavailable(fmt.Errorf("health: http %d", resp.StatusCode))
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, c.unavailable(fmt.Errorf("decoding health: %v", err))
	}
	if len(h.Map) > 0 {
		c.remoteMap.Store(&MapResponse{Epoch: h.Epoch, Map: h.Map})
	}
	return h, nil
}

// RemoteMap returns the partition map the remote advertised at its last
// successful health probe (nil before first contact, or when the remote
// predates rebalancing and advertises none).
func (c *Client) RemoteMap() *MapResponse { return c.remoteMap.Load() }

// syncSnapshot fetches the remote snapshot if newer than the mirror,
// swapping the mirror on success and recording the failure (with the
// previous snapshot retained for identification) on error. Singleflight:
// concurrent callers wait for one transfer.
func (c *Client) syncSnapshot() error { return c.syncSnapshotCtx(context.Background()) }

// syncSnapshotCtx is syncSnapshot bounded by a parent context besides
// the transfer timeout — Dial passes its handshake deadline so
// ConnectTimeout really bounds router startup.
func (c *Client) syncSnapshotCtx(parent context.Context) error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()

	// Negative cache: when the shard just failed, report the recorded
	// error instead of paying another timeout per caller — a down shard
	// costs one failed contact per poll interval, and degraded requests
	// stay fast instead of queueing behind serial timeouts.
	cur := c.mirror.Load()
	if cur != nil && cur.err != nil &&
		time.Since(time.Unix(0, c.lastFail.Load())) < c.pollIvl {
		return cur.err
	}
	var since uint64
	if cur != nil && cur.snap != nil {
		since = cur.snap.Gen
	}

	ctx, cancel := context.WithTimeout(parent, c.snapTO)
	defer cancel()
	url := c.base + PathSnapshot
	if since > 0 {
		url += "?since=" + strconv.FormatUint(since, 10)
	}
	// The transfer is idempotent (a pure read of the published
	// generation), so transient failures — including a torn stream
	// mid-decode — retry under the shared budget.
	var (
		snap        *refresh.Snapshot
		table       []int32
		notModified bool
	)
	err := c.retryer.Do(ctx, c.retryable, func() error {
		if !c.breaker.Allow() {
			return c.unavailableCause(errBreakerOpen)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set(HeaderProtocol, strconv.Itoa(Version))
		stampDeadline(req, ctx)
		resp, err := c.hc.Do(req)
		if err != nil {
			c.noteFailure(err)
			return c.unavailable(err)
		}
		c.breaker.Success()
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNotModified:
			notModified = true
			return nil
		case http.StatusOK:
		default:
			return c.unavailable(fmt.Errorf("snapshot: http %d", resp.StatusCode))
		}
		snap, table, err = decodeSnapshot(resp.Body, c.shardID, c.k)
		if err != nil {
			return c.unavailable(err)
		}
		return nil
	})
	if err != nil {
		return c.fail(err)
	}
	if notModified {
		c.clearErr()
		return nil
	}
	c.adoptTable(table)
	// Carry the last health probe's status forward (the poller refreshes
	// it); a successful sync clears any degradation.
	c.mirMu.Lock()
	st := shard.WorkerStatus{Shard: c.shardID, C: snap.C}
	if cur = c.mirror.Load(); cur != nil {
		st = cur.status
		st.Err = ""
	}
	if st.Status.Gen < snap.Gen {
		st.Status.Gen = snap.Gen
	}
	st.C = snap.C
	c.mirror.Store(&mirrorState{snap: snap, status: st})
	c.mirMu.Unlock()
	return nil
}

// fail records a degraded mirror (keeping the stale snapshot and last
// status for identification) and returns err.
func (c *Client) fail(err error) error {
	c.lastFail.Store(time.Now().UnixNano())
	c.mirMu.Lock()
	cur := c.mirror.Load()
	ns := &mirrorState{err: err}
	if cur != nil {
		ns.snap, ns.status = cur.snap, cur.status
	}
	ns.status.Err = err.Error()
	c.mirror.Store(ns)
	c.mirMu.Unlock()
	return err
}

// clearErr marks the shard reachable again without changing the
// mirrored snapshot.
func (c *Client) clearErr() {
	c.mirMu.Lock()
	defer c.mirMu.Unlock()
	cur := c.mirror.Load()
	if cur == nil || cur.err == nil {
		return
	}
	st := cur.status
	st.Err = ""
	c.mirror.Store(&mirrorState{snap: cur.snap, status: st})
}

// adoptTable reconciles a received full table into the local replica.
// The replica may be ahead (entries not yet shipped); received entries
// must be a prefix-consistent subset, which Dial and the single-router
// protocol guarantee.
func (c *Client) adoptTable(table []int32) {
	c.tabMu.Lock()
	defer c.tabMu.Unlock()
	for i := len(c.locals); i < len(table); i++ {
		c.locals = append(c.locals, table[i])
		c.index[table[i]] = int32(i)
	}
	if len(table) > c.shipped {
		c.shipped = len(table)
	}
}

// startPolling launches the background generation poller (once).
func (c *Client) startPolling() {
	if c.started.CompareAndSwap(false, true) {
		go c.poll()
	}
}

// poll is the background generation poller: health probes at the
// configured cadence, snapshot sync when the remote generation moved.
func (c *Client) poll() {
	defer close(c.done)
	t := time.NewTicker(c.pollIvl)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		// The poller is the breaker's probe vehicle: while open, skip the
		// doomed RPC until the cooldown admits a half-open probe; the
		// probe's health outcome then closes or reopens the breaker.
		if c.breaker.State() != resilience.Closed && !c.breaker.Probe() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.reqTO)
		h, err := c.health(ctx)
		cancel()
		if err != nil {
			_ = c.fail(err)
			continue
		}
		c.draining.Store(h.Draining)
		// A reachable health endpoint alone does not clear degradation:
		// if the snapshot transfer is what keeps failing, the error (and
		// the negative cache it feeds) must survive until a sync
		// succeeds, or stale reads would be served silently.
		c.mirMu.Lock()
		cur := c.mirror.Load()
		ns := &mirrorState{status: h.Status}
		if cur != nil {
			ns.snap, ns.err = cur.snap, cur.err
		}
		if ns.err != nil {
			ns.status.Err = ns.err.Error()
		}
		c.mirror.Store(ns)
		c.mirMu.Unlock()
		if ns.snap == nil || h.Snapshot.Gen > ns.snap.Gen || ns.err != nil {
			_ = c.syncSnapshot()
		}
	}
}

// --- shard.Backend ---

// Lookup resolves a global id in the replicated translation table.
func (c *Client) Lookup(global int32) (int32, bool) {
	c.tabMu.RLock()
	l, ok := c.index[global]
	c.tabMu.RUnlock()
	return l, ok
}

// EnsureLocal appends a new replica entry for an unseen global id. The
// router's mutation lock serializes callers; the append ships to the
// shard with the next Apply.
func (c *Client) EnsureLocal(global int32) int32 {
	if l, ok := c.Lookup(global); ok {
		return l
	}
	c.tabMu.Lock()
	l := int32(len(c.locals))
	c.locals = append(c.locals, global)
	c.index[global] = l
	c.tabMu.Unlock()
	return l
}

// Apply ships the translated batch plus any table growth since the
// last acknowledged ship. Bounded by the caller's context as well as
// the request timeout, so a canceled client request cancels the
// downstream RPC. This layer never auto-retries apply — delivery is
// at-least-once only because the server reconciles re-shipped table
// entries; the caller owns any re-send.
func (c *Client) Apply(ctx context.Context, add, remove [][2]int32) error {
	c.tabMu.RLock()
	batch := shard.Batch{
		Base:      c.shipped,
		NewLocals: c.locals[c.shipped:len(c.locals):len(c.locals)],
		Add:       add,
		Remove:    remove,
	}
	c.tabMu.RUnlock()
	ctx, cancel := context.WithTimeout(ctx, c.reqTO)
	defer cancel()
	var resp ApplyResponse
	if err := c.doJSON(ctx, PathApply, ApplyRequest{Protocol: Version, Batch: batch}, &resp); err != nil {
		return err
	}
	c.tabMu.Lock()
	if s := batch.Base + len(batch.NewLocals); s > c.shipped {
		c.shipped = s
	}
	c.tabMu.Unlock()
	return nil
}

// Ingest ships slice-transfer edges over the dedicated migration path.
// Identical semantics to Apply — translated local-id operations plus
// pending table growth — on a separate endpoint so migration traffic is
// distinguishable from normal writes. Implements the router's optional
// slicer extension.
func (c *Client) Ingest(ctx context.Context, add, remove [][2]int32) error {
	c.tabMu.RLock()
	batch := shard.Batch{
		Base:      c.shipped,
		NewLocals: c.locals[c.shipped:len(c.locals):len(c.locals)],
		Add:       add,
		Remove:    remove,
	}
	c.tabMu.RUnlock()
	ctx, cancel := context.WithTimeout(ctx, c.reqTO)
	defer cancel()
	var resp ApplyResponse
	if err := c.doJSON(ctx, PathIngest, ApplyRequest{Protocol: Version, Batch: batch}, &resp); err != nil {
		return err
	}
	c.tabMu.Lock()
	if s := batch.Base + len(batch.NewLocals); s > c.shipped {
		c.shipped = s
	}
	c.tabMu.Unlock()
	return nil
}

// InstallPartitionMap pushes a partition map to the remote shard.
// Implements the router's mapInstaller extension: pending installs are
// transfer-window state the remote adopts but does not persist; a final
// install returns only after the remote has flushed the resulting
// ownership rebuild and persisted the map. Bounded by the caller's ctx
// (cancelling the admin rebalance call cancels in-flight installs) and
// the snapshot timeout — a final install can carry a full rebuild.
func (c *Client) InstallPartitionMap(ctx context.Context, pm *shard.PartitionMap, pending bool) error {
	ctx, cancel := context.WithTimeout(ctx, c.snapTO)
	defer cancel()
	var resp MapResponse
	return c.doJSON(ctx, PathMap, MapRequest{Protocol: Version, Map: pm.Encode(), Pending: pending}, &resp)
}

// View returns the mirrored generation. When the mirror is behind the
// read-your-writes floor (a Flush saw a newer generation) it
// resynchronizes first; when the shard is marked unreachable the view
// carries the stale mirror with an explicit error immediately —
// recovery detection belongs to the background poller, so degraded
// reads never queue behind per-request transfer timeouts.
func (c *Client) View() shard.View {
	m := c.mirror.Load()
	floor := c.minGen.Load()
	if m == nil || (m.err == nil && (m.snap == nil || m.snap.Gen < floor)) {
		_ = c.syncSnapshot()
		m = c.mirror.Load()
	}
	var (
		snap *refresh.Snapshot
		err  error
	)
	if m != nil {
		snap, err = m.snap, m.err
	}
	if err == nil && snap == nil {
		err = c.unavailable(fmt.Errorf("no snapshot mirrored yet"))
	}
	if err == nil && snap.Gen < floor {
		err = c.unavailable(fmt.Errorf("mirror at generation %d behind flushed generation %d", snap.Gen, floor))
	}
	return shard.RemoteView(c.shardID, snap, c.Lookup, err)
}

// Flush blocks until the shard has published everything applied before
// the call, raises the read-your-writes floor to the returned
// generation and synchronizes the mirror to it.
func (c *Client) Flush(ctx context.Context) (uint64, error) {
	var resp FlushResponse
	if err := c.doJSON(ctx, PathFlush, FlushRequest{Protocol: Version}, &resp); err != nil {
		return 0, err
	}
	for {
		cur := c.minGen.Load()
		if resp.Generation <= cur || c.minGen.CompareAndSwap(cur, resp.Generation) {
			break
		}
	}
	// Bring the mirror forward now so the caller's next read — the
	// /v1/edges wait=true contract — sees the flushed generation without
	// paying a sync on the read path. Bounded by the caller's context:
	// a client that already hung up shouldn't fund a snapshot transfer.
	_ = c.syncSnapshotCtx(ctx)
	return resp.Generation, nil
}

// Status returns the last health probe; Err marks it stale when the
// shard is unreachable.
func (c *Client) Status() shard.WorkerStatus {
	if m := c.mirror.Load(); m != nil {
		return m.status
	}
	return shard.WorkerStatus{Shard: c.shardID, Err: "no contact yet"}
}

// Lookup RPC: answer a membership batch directly from the remote
// shard's current snapshot, bypassing the mirror (used by tooling and
// tests; the serving path reads the mirror).
// Idempotent, so transient transport failures retry (jittered backoff,
// shared budget); breaker fast-fails and protocol errors do not.
func (c *Client) LookupRemote(ctx context.Context, ids []int32, members bool) (LookupResponse, error) {
	var resp LookupResponse
	err := c.retryer.Do(ctx, c.retryable, func() error {
		actx, cancel := context.WithTimeout(ctx, c.reqTO)
		defer cancel()
		resp = LookupResponse{}
		return c.doJSON(actx, PathLookup, LookupRequest{Protocol: Version, IDs: ids, Members: members}, &resp)
	})
	return resp, err
}

// BreakerOpen reports whether the circuit breaker currently refuses
// regular traffic (open or half-open). Replica sets exclude such
// members from read routing before paying a timeout.
func (c *Client) BreakerOpen() bool { return c.breaker.State() != resilience.Closed }

// ResilienceStats snapshots the client's breaker, retry, and deadline
// counters for /healthz and /debug/metrics.
func (c *Client) ResilienceStats() resilience.Stats {
	return resilience.Stats{
		BreakerState:         c.breaker.State().String(),
		BreakerTrips:         c.breaker.Trips(),
		BreakerFastFails:     c.breaker.FastFails(),
		Retries:              c.retryer.Retries(),
		RetryBudgetExhausted: c.budget.Exhausted(),
		DeadlineExceeded:     c.deadlineExceeded.Load(),
	}
}

// Close stops the poller. The remote process keeps running.
func (c *Client) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}
