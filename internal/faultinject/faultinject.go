// Package faultinject provides deterministic, seed-driven fault
// injection for the wire protocol: added latency, error rates,
// blackholes and torn responses, targeted per endpoint path. It exists
// for the chaos gate (`make test-chaos`) and for manual staging drills
// (`ocad -fault-plan`, docs/OPERATIONS.md "Failure modes & tuning") —
// never enable it in production.
//
// Determinism: every probabilistic decision draws from one PRNG seeded
// by Plan.Seed, and swapping a plan (SetPlan, or PUT on the control
// endpoint) re-seeds it, so a scripted fault storm makes the same
// decisions on every run. Decisions are drawn in request-arrival
// order; concurrent arrivals race for draw order, so plans that need
// strict per-request determinism use rates of 0 or 1.
package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule is one fault applied to matching requests. Faults compose in
// field order: latency is added first, then the request may be
// errored, blackholed, or served with a torn response.
type Rule struct {
	// Path selects requests whose URL path contains this substring;
	// empty matches every request. The first matching rule wins.
	Path string `json:"path,omitempty"`
	// LatencyMs is added before the request proceeds; JitterMs adds a
	// uniform random extra in [0, JitterMs).
	LatencyMs int `json:"latency_ms,omitempty"`
	JitterMs  int `json:"jitter_ms,omitempty"`
	// ErrorRate is the probability in [0, 1] of answering 500 without
	// invoking the handler.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// TruncateRate is the probability in [0, 1] of a torn response:
	// the handler runs but its response is aborted mid-body.
	TruncateRate float64 `json:"truncate_rate,omitempty"`
	// Blackhole holds matching requests open without answering until
	// the client gives up — a partition, as seen from one side.
	Blackhole bool `json:"blackhole,omitempty"`
}

// Plan is a fault-injection scenario: a PRNG seed plus an ordered rule
// list. The zero Plan injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules,omitempty"`
}

// Validate rejects rates outside [0, 1] and negative latencies.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		if r.ErrorRate < 0 || r.ErrorRate > 1 || r.TruncateRate < 0 || r.TruncateRate > 1 {
			return fmt.Errorf("faultinject: rule %d: rates must be in [0, 1]", i)
		}
		if r.LatencyMs < 0 || r.JitterMs < 0 {
			return fmt.Errorf("faultinject: rule %d: latencies must be non-negative", i)
		}
	}
	return nil
}

// LoadPlan reads a JSON plan file.
func LoadPlan(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("faultinject: parsing %s: %w", path, err)
	}
	return p, p.Validate()
}

// Counters reports what an Injector has done, for assertions and the
// control endpoint's GET body.
type Counters struct {
	Matched    uint64 `json:"matched"`
	Delayed    uint64 `json:"delayed"`
	Errored    uint64 `json:"errored"`
	Blackholed uint64 `json:"blackholed"`
	Truncated  uint64 `json:"truncated"`
}

// Injector applies a Plan at the HTTP layer. One Injector wraps one
// server (Handler/Middleware) or one client transport (RoundTripper);
// the plan is swappable at runtime. Safe for concurrent use.
type Injector struct {
	mu   sync.Mutex
	plan Plan
	rng  *rand.Rand

	matched    atomic.Uint64
	delayed    atomic.Uint64
	errored    atomic.Uint64
	blackholed atomic.Uint64
	truncated  atomic.Uint64
}

// New returns an Injector executing plan.
func New(plan Plan) *Injector {
	in := &Injector{}
	in.SetPlan(plan)
	return in
}

// Plan returns the active plan.
func (in *Injector) Plan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan
}

// SetPlan swaps the active plan and re-seeds the PRNG from it, so
// re-applying a plan replays its decision sequence.
func (in *Injector) SetPlan(p Plan) {
	in.mu.Lock()
	in.plan = p
	in.rng = rand.New(rand.NewSource(p.Seed))
	in.mu.Unlock()
}

// Counters returns a snapshot of the injection counters.
func (in *Injector) Counters() Counters {
	return Counters{
		Matched:    in.matched.Load(),
		Delayed:    in.delayed.Load(),
		Errored:    in.errored.Load(),
		Blackholed: in.blackholed.Load(),
		Truncated:  in.truncated.Load(),
	}
}

// verdict is the pre-drawn fate of one request, so all randomness is
// consumed under the lock in arrival order.
type verdict struct {
	delay     time.Duration
	errored   bool
	blackhole bool
	truncate  bool
}

// decide matches path against the plan and draws the request's fate.
func (in *Injector) decide(path string) (verdict, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.plan.Rules {
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		var v verdict
		if r.LatencyMs > 0 || r.JitterMs > 0 {
			ms := r.LatencyMs
			if r.JitterMs > 0 {
				ms += in.rng.Intn(r.JitterMs)
			}
			v.delay = time.Duration(ms) * time.Millisecond
		}
		if r.ErrorRate > 0 && in.rng.Float64() < r.ErrorRate {
			v.errored = true
		}
		v.blackhole = r.Blackhole
		if r.TruncateRate > 0 && in.rng.Float64() < r.TruncateRate {
			v.truncate = true
		}
		return v, true
	}
	return verdict{}, false
}

// Middleware wraps an http.Handler with the injector's faults.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v, ok := in.decide(r.URL.Path)
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		in.matched.Add(1)
		if v.delay > 0 {
			in.delayed.Add(1)
			t := time.NewTimer(v.delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		if v.blackhole {
			// Hold the request open until the client gives up; abort the
			// connection rather than letting net/http write an empty 200.
			in.blackholed.Add(1)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		if v.errored {
			in.errored.Add(1)
			http.Error(w, `{"error":"fault injected"}`, http.StatusInternalServerError)
			return
		}
		if v.truncate {
			in.truncated.Add(1)
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, remaining: tornResponseBytes}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// tornResponseBytes is how much of a truncated response escapes before
// the connection is torn — enough for a client to start decoding,
// never enough to finish.
const tornResponseBytes = 16

// truncatingWriter lets a few bytes through, then aborts the
// connection mid-response (net/http recognizes ErrAbortHandler and
// drops the connection without logging a panic).
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(b []byte) (int, error) {
	if t.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(b) > t.remaining {
		_, _ = t.ResponseWriter.Write(b[:t.remaining])
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		t.remaining = 0
		panic(http.ErrAbortHandler)
	}
	t.remaining -= len(b)
	return t.ResponseWriter.Write(b)
}

func (t *truncatingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// ControlPath is the dev-only runtime plan endpoint: GET returns the
// active plan plus counters, PUT (or POST) swaps the plan. cmd/ocad
// registers it outside the injected wrapper so a blackhole-everything
// plan can still be lifted. It is NOT part of the versioned wire
// protocol (docs/PROTOCOL.md) — no compatibility promises.
const ControlPath = "/debug/fault-plan"

// Handler wraps next with the faults plus the ControlPath endpoint.
func (in *Injector) Handler(next http.Handler) http.Handler {
	faulty := in.Middleware(next)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != ControlPath {
			faulty.ServeHTTP(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(struct {
				Plan     Plan     `json:"plan"`
				Injected Counters `json:"injected"`
			}{in.Plan(), in.Counters()})
		case http.MethodPut, http.MethodPost:
			var p Plan
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&p); err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
				return
			}
			if err := p.Validate(); err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
				return
			}
			in.SetPlan(p)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"ok":true}` + "\n"))
		default:
			http.Error(w, `{"error":"GET or PUT"}`, http.StatusMethodNotAllowed)
		}
	})
}

// RoundTripper wraps an http.RoundTripper with the same faults, for
// injecting at the client side in unit tests. Errored and blackholed
// requests surface as transport errors (what a breaker counts).
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		v, ok := in.decide(r.URL.Path)
		if !ok {
			return next.RoundTrip(r)
		}
		in.matched.Add(1)
		if v.delay > 0 {
			in.delayed.Add(1)
			t := time.NewTimer(v.delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return nil, r.Context().Err()
			}
		}
		if v.blackhole {
			in.blackholed.Add(1)
			<-r.Context().Done()
			return nil, r.Context().Err()
		}
		if v.errored {
			in.errored.Add(1)
			return nil, fmt.Errorf("faultinject: injected error for %s", r.URL.Path)
		}
		resp, err := next.RoundTrip(r)
		if err == nil && v.truncate {
			in.truncated.Add(1)
			resp.Body = &truncatedBody{rc: resp.Body, remaining: tornResponseBytes}
		}
		return resp, err
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// truncatedBody yields a few real bytes, then an abrupt EOF-like
// error, imitating a torn TCP stream.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, fmt.Errorf("faultinject: torn response")
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= n
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }
