#!/bin/sh
# Spawn a local multi-process ocad deployment: SHARDS shard-server
# processes plus one router fronting them (see "Running multi-process"
# in README.md and docs/PROTOCOL.md). Intended for development — the
# production deployment runs the same commands under your process
# supervisor of choice.
#
#   SHARDS     number of shard processes (default 3)
#   REPLICAS   read replicas per shard, following the shard's primary
#              (default 0; reads fan out across primary + replicas)
#   GRAPH      input graph file (default: generate a demo LFR graph)
#   ADDR       router listen address (default :8080)
#   BASE_PORT  first shard-server port (default 9301); replicas take
#              the ports after the primaries
#   FAULT_PLAN dev only: path to a fault-plan JSON (docs/OPERATIONS.md)
#              passed to every process via -fault-plan, for rehearsing
#              the failure modes the chaos gate scripts
set -eu

SHARDS="${SHARDS:-3}"
REPLICAS="${REPLICAS:-0}"
GRAPH="${GRAPH:-}"
ADDR="${ADDR:-:8080}"
BASE_PORT="${BASE_PORT:-9301}"
FAULT_PLAN="${FAULT_PLAN:-}"

# $fault_flags is intentionally left unquoted at use sites: empty when
# FAULT_PLAN is unset.
fault_flags=""
if [ -n "$FAULT_PLAN" ]; then
    fault_flags="-fault-plan $FAULT_PLAN"
    echo "run-cluster: FAULT INJECTION ENABLED (dev only): $FAULT_PLAN"
fi

workdir="$(mktemp -d)"
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $pids; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

if [ -z "$GRAPH" ]; then
    GRAPH="$workdir/graph.txt"
    echo "run-cluster: no GRAPH set, generating a demo LFR graph at $GRAPH"
    go run ./cmd/oca gen -type lfr -n 2000 -out "$GRAPH"
fi

echo "run-cluster: building ocad..."
go build -o "$workdir/ocad" ./cmd/ocad

addrs=""
i=0
while [ "$i" -lt "$SHARDS" ]; do
    port=$((BASE_PORT + i))
    "$workdir/ocad" -in "$GRAPH" -shards "$SHARDS" -serve-shard "$i" \
        -addr "127.0.0.1:$port" $fault_flags &
    pids="$pids $!"
    addrs="${addrs:+$addrs,}127.0.0.1:$port"
    i=$((i + 1))
done

# Replicas follow their shard's primary; the router learns about them
# via -replica-addrs (';' between shards, ',' within a shard).
replica_flags=""
if [ "$REPLICAS" -gt 0 ]; then
    replica_lists=""
    port=$((BASE_PORT + SHARDS))
    i=0
    while [ "$i" -lt "$SHARDS" ]; do
        primary="127.0.0.1:$((BASE_PORT + i))"
        list=""
        r=0
        while [ "$r" -lt "$REPLICAS" ]; do
            "$workdir/ocad" -follow "$primary" -addr "127.0.0.1:$port" $fault_flags &
            pids="$pids $!"
            list="${list:+$list,}127.0.0.1:$port"
            port=$((port + 1))
            r=$((r + 1))
        done
        replica_lists="${replica_lists:+$replica_lists;}$list"
        i=$((i + 1))
    done
    replica_flags="-replica-addrs $replica_lists"
    echo "run-cluster: $REPLICAS replica(s) per shard: $replica_lists"
fi

echo "run-cluster: shard servers at $addrs; router on $ADDR (Ctrl-C stops everything)"
# Foreground: the router waits for every shard's cover before serving.
# $replica_flags is intentionally unquoted: empty when REPLICAS=0.
"$workdir/ocad" -shard-addrs "$addrs" -shards "$SHARDS" -addr "$ADDR" $replica_flags $fault_flags
