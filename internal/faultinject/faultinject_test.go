package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true,"pad":"....................................."}`))
	})
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		plan Plan
		ok   bool
	}{
		{Plan{}, true},
		{Plan{Rules: []Rule{{ErrorRate: 0.5, LatencyMs: 10}}}, true},
		{Plan{Rules: []Rule{{ErrorRate: 1.5}}}, false},
		{Plan{Rules: []Rule{{TruncateRate: -0.1}}}, false},
		{Plan{Rules: []Rule{{LatencyMs: -1}}}, false},
	}
	for i, tc := range cases {
		if err := tc.plan.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, tc.ok)
		}
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed":7,"rules":[{"path":"/shard/","latency_ms":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}
	if p.Seed != 7 || len(p.Rules) != 1 || p.Rules[0].Path != "/shard/" {
		t.Fatalf("loaded plan: %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte(`{"rules":[{"error_rate":2}]}`), 0o644)
	if _, err := LoadPlan(bad); err == nil {
		t.Error("invalid plan loaded")
	}
}

// TestMiddlewarePathTargeting: only matching paths are touched, and
// the first matching rule wins.
func TestMiddlewarePathTargeting(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{
		{Path: "/shard/v1/lookup", ErrorRate: 1},
		{Path: "/shard/", ErrorRate: 0},
	}})
	ts := httptest.NewServer(in.Middleware(okHandler()))
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get("/shard/v1/lookup"); code != http.StatusInternalServerError {
		t.Errorf("targeted path = %d, want 500", code)
	}
	if code := get("/shard/v1/health"); code != http.StatusOK {
		t.Errorf("first-match rule should pass health through, got %d", code)
	}
	if code := get("/v1/other"); code != http.StatusOK {
		t.Errorf("unmatched path = %d, want 200", code)
	}
	if c := in.Counters(); c.Errored == 0 || c.Matched < 2 {
		t.Errorf("counters: %+v", c)
	}
}

// TestDeterministicReplay: same seed, same request sequence → same
// fault decisions; SetPlan re-seeds.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{{ErrorRate: 0.5}}}
	run := func() []int {
		in := New(plan)
		ts := httptest.NewServer(in.Middleware(okHandler()))
		defer ts.Close()
		var codes []int
		for i := 0; i < 32; i++ {
			resp, err := http.Get(ts.URL + "/x")
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at request %d: %v vs %v", i, a, b)
		}
	}
	// Both outcomes must actually occur at rate 0.5 over 32 draws.
	saw := map[int]bool{}
	for _, c := range a {
		saw[c] = true
	}
	if !saw[200] || !saw[500] {
		t.Fatalf("error_rate 0.5 produced one-sided outcomes: %v", a)
	}
}

// TestLatencyInjection: a latency rule delays matching requests.
func TestLatencyInjection(t *testing.T) {
	in := New(Plan{Rules: []Rule{{LatencyMs: 60, JitterMs: 20}}})
	ts := httptest.NewServer(in.Middleware(okHandler()))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("request took %v, want >= 60ms", d)
	}
	if c := in.Counters(); c.Delayed != 1 {
		t.Errorf("delayed = %d, want 1", c.Delayed)
	}
}

// TestBlackhole: the request hangs until the client's deadline, and
// the client sees a transport-level failure, not a clean response.
func TestBlackhole(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Blackhole: true}}})
	ts := httptest.NewServer(in.Middleware(okHandler()))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("blackholed request answered")
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Errorf("blackholed request failed after %v, want to hang to the deadline", d)
	}
	if c := in.Counters(); c.Blackholed != 1 {
		t.Errorf("blackholed = %d, want 1", c.Blackholed)
	}
}

// TestTornResponse: a truncated response lets a prefix through and
// then breaks the body mid-stream.
func TestTornResponse(t *testing.T) {
	in := New(Plan{Rules: []Rule{{TruncateRate: 1}}})
	ts := httptest.NewServer(in.Middleware(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) > tornResponseBytes {
			t.Fatalf("torn response delivered %d clean bytes: %q", len(body), body)
		}
	}
	if c := in.Counters(); c.Truncated != 1 {
		t.Errorf("truncated = %d, want 1", c.Truncated)
	}
}

// TestControlEndpoint: GET reads the plan, PUT swaps it (and bad plans
// are refused), faults apply immediately after the swap.
func TestControlEndpoint(t *testing.T) {
	in := New(Plan{})
	ts := httptest.NewServer(in.Handler(okHandler()))
	defer ts.Close()

	// Initially clean.
	resp, err := http.Get(ts.URL + "/x")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-plan request: %v %v", resp, err)
	}
	resp.Body.Close()

	put := func(body string) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+ControlPath, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := put(`{"seed":1,"rules":[{"error_rate":1}]}`); code != http.StatusOK {
		t.Fatalf("PUT plan = %d", code)
	}
	resp, err = http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("post-plan request = %d, want 500", resp.StatusCode)
	}

	// GET returns the active plan and counters; the control path itself
	// is never injected.
	resp, err = http.Get(ts.URL + ControlPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Plan     Plan     `json:"plan"`
		Injected Counters `json:"injected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding control GET: %v", err)
	}
	if len(got.Plan.Rules) != 1 || got.Plan.Rules[0].ErrorRate != 1 || got.Injected.Errored == 0 {
		t.Errorf("control GET: %+v", got)
	}

	if code := put(`{"rules":[{"error_rate":9}]}`); code != http.StatusBadRequest {
		t.Errorf("invalid plan PUT = %d, want 400", code)
	}
	if code := put(`not json`); code != http.StatusBadRequest {
		t.Errorf("garbage PUT = %d, want 400", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+ControlPath, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE = %d, want 405", dresp.StatusCode)
	}

	// Clearing the plan restores clean serving.
	if code := put(`{}`); code != http.StatusOK {
		t.Fatalf("clearing PUT = %d", code)
	}
	resp2, err := http.Get(ts.URL + "/x")
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-clear request: %v %v", resp2, err)
	}
	resp2.Body.Close()
}

// TestRoundTripperFaults: client-side injection surfaces errors and
// blackholes as transport failures.
func TestRoundTripperFaults(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()

	in := New(Plan{Rules: []Rule{{ErrorRate: 1}}})
	cl := &http.Client{Transport: in.RoundTripper(nil)}
	if _, err := cl.Get(ts.URL + "/x"); err == nil {
		t.Error("errored round trip returned no error")
	}

	in.SetPlan(Plan{Rules: []Rule{{Blackhole: true}}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	if _, err := cl.Do(req); err == nil {
		t.Error("blackholed round trip returned no error")
	}

	in.SetPlan(Plan{Rules: []Rule{{TruncateRate: 1}}})
	resp, err := cl.Get(ts.URL + "/x")
	if err != nil {
		t.Fatalf("truncated round trip failed at transport: %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Errorf("torn body read cleanly: %q", body)
	}
	if len(body) > tornResponseBytes {
		t.Errorf("torn body delivered %d bytes, cap %d", len(body), tornResponseBytes)
	}

	in.SetPlan(Plan{})
	resp, err = cl.Get(ts.URL + "/x")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("clean round trip: %v %v", resp, err)
	}
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `"ok":true`) {
		t.Errorf("clean body: %q", buf.String())
	}
}
